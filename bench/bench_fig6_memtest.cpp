// Figure 6 reproduction: the overhead of Ninja migration on the memtest
// micro-benchmark, broken into migration / hotplug / link-up, for array
// sizes 2-16 GiB. 8 VMs (20 GiB each) on the InfiniBand cluster; the whole
// job migrates IB -> IB (each VM rotates to the next blade) with HCAs
// re-attached; hotplug runs under whole-cluster "migration noise" (x3,
// calibrated from the paper's observation in §IV-B2).
//
// Paper values [seconds] (migration / hotplug / link-up):
//   2 GiB : 53.7 / 14.6 / 28.5
//   4 GiB : 35.9 / 13.5 / 28.5
//   8 GiB : 38.7 / 12.5 / 28.5
//   16 GiB: 44.2 / 11.3 / 28.6
// Shape to reproduce: migration is dominated by the full 20 GiB traversal
// (memtest pages are uniform and compress to 9-byte markers), so it depends
// only weakly on the array size; hotplug and link-up are constant.
#include <iostream>

#include "bench/common.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/testbed.h"
#include "util/table.h"
#include "workloads/memtest.h"

namespace {

using namespace nm;

core::NinjaStats run_case(Bytes array_size) {
  core::TestbedConfig tcfg;
  tcfg.hotplug.noise_factor = 3.0;  // whole-cluster migration noise
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.name = "memtest";
  cfg.vm_count = 8;
  cfg.ranks_per_vm = 1;
  core::MpiJob job(tb, cfg);
  job.init();

  workloads::MemtestConfig mcfg;
  mcfg.array_size = array_size;
  mcfg.passes = 1000;
  job.launch([&job, mcfg](mpi::RankId me) -> sim::Task {
    co_await workloads::run_memtest_rank(job, me, mcfg, nullptr);
  });

  // IB -> IB rotation: VM i moves to blade (i+1) mod 8 and re-attaches
  // that blade's HCA.
  core::MigrationPlan plan;
  plan.vms = job.vms();
  for (int i = 0; i < 8; ++i) {
    plan.destinations.push_back(tb.ib_host((i + 1) % 8).name());
  }
  plan.attach_host_pci = core::Testbed::kHcaPciAddr;
  plan.ranks_per_vm = 1;

  core::NinjaStats stats;
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j, core::MigrationPlan p,
                    core::NinjaStats& st) -> sim::Task {
    co_await t.sim().delay(Duration::seconds(5.0));
    co_await j.ninja().execute(std::move(p), &st);
  }(tb, job, plan, stats));
  tb.sim().run_for(Duration::minutes(10));
  return stats;
}

}  // namespace

int main() {
  bench::print_header("Figure 6",
                      "Ninja migration overhead on memtest, by array size [seconds]");

  struct PaperRow {
    double migration, hotplug, linkup;
  };
  const PaperRow paper[] = {
      {53.7, 14.6, 28.5}, {35.9, 13.5, 28.5}, {38.7, 12.5, 28.5}, {44.2, 11.3, 28.6}};
  const Bytes sizes[] = {Bytes::gib(2), Bytes::gib(4), Bytes::gib(8), Bytes::gib(16)};
  const Duration confirm = symvirt::CoordinatorTiming{}.confirm;

  StackedBarChart chart("Ninja overhead breakdown (this repro)",
                        {"migration", "hotplug", "linkup"});
  TextTable table({"array", "migration (paper/ours)", "hotplug (paper/ours)",
                   "linkup (paper/ours)", "total (paper/ours)"});
  for (int i = 0; i < 4; ++i) {
    const auto stats = run_case(sizes[i]);
    const double mig = stats.migration.to_seconds();
    const double hot = stats.hotplug(confirm).to_seconds();
    const double link = stats.linkup_excl_confirm(confirm).to_seconds();
    chart.add_bar(std::to_string(sizes[i].count() >> 30) + "GB", {mig, hot, link});
    const auto& p = paper[i];
    table.add_row({std::to_string(sizes[i].count() >> 30) + "GB",
                   TextTable::num(p.migration) + " / " + TextTable::num(mig),
                   TextTable::num(p.hotplug) + " / " + TextTable::num(hot),
                   TextTable::num(p.linkup) + " / " + TextTable::num(link),
                   TextTable::num(p.migration + p.hotplug + p.linkup) + " / " +
                       TextTable::num(mig + hot + link)});
  }
  table.render(std::cout);
  std::cout << "\n";
  chart.render(std::cout);
  std::cout << "\nShape checks: migration is dominated by traversing all 20 GiB of\n"
            << "guest memory (memtest pages compress), so it varies only weakly\n"
            << "with the array size; hotplug (~3x the self-migration time under\n"
            << "migration noise) and the ~30 s InfiniBand link-up are constant.\n";
  return 0;
}
