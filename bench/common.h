// Shared helpers for the reproduction benches: headers, paper-vs-measured
// tables, and stacked-bar rendering of overhead breakdowns.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "util/table.h"

namespace nm::bench {

inline void print_header(const std::string& experiment_id, const std::string& description) {
  std::cout << "\n=================================================================\n"
            << experiment_id << " — " << description << "\n"
            << "Testbed: modelled AIST AGC cluster (Table I): 16 blades, 8-core\n"
            << "Xeon E5540, 48 GiB; QDR InfiniBand (8 nodes) + 10 GbE (16 nodes);\n"
            << "QEMU/KVM-model VMs, NFS-model shared storage. Deterministic\n"
            << "simulation — no error bars; the paper reports best-of-3.\n"
            << "=================================================================\n";
}

/// One paper-vs-measured row.
struct CompareRow {
  std::string label;
  double paper = 0.0;
  double measured = 0.0;
};

inline void print_compare(const std::string& metric, const std::vector<CompareRow>& rows) {
  TextTable table({"case", metric + " (paper)", metric + " (this repro)", "ratio"});
  for (const auto& row : rows) {
    const double ratio = row.paper > 0 ? row.measured / row.paper : 0.0;
    table.add_row({row.label, TextTable::num(row.paper), TextTable::num(row.measured),
                   row.paper > 0 ? TextTable::num(ratio) : "-"});
  }
  table.render(std::cout);
}

}  // namespace nm::bench
