// Figure 8 reproduction: fallback and recovery migration under the
// bcast+reduce workload ("8 GB data per node", 40 iteration steps). The
// scenario is the paper's:
//     4 hosts (IB) -> 2 hosts (TCP) -> 4 hosts (IB) -> 4 hosts (TCP)
// with Ninja launched every 10 iteration steps (episodes land in steps
// 11, 21, 31). Run twice: 1 process/VM (4 ranks) and 8 processes/VM
// (32 ranks).
//
// Shape to reproduce:
//   - per-iteration time tracks the interconnect (IB fast, TCP slow,
//     consolidated "2 hosts (TCP)" slowest with 8 procs/VM due to CPU
//     over-commit);
//   - steps 11/21/31 carry the migration overhead on top;
//   - 8 procs/VM iterations are faster than 1 proc/VM (except the
//     over-committed phase);
//   - total overhead does not grow with the rank count.
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/testbed.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/bcast_reduce.h"

namespace {

using namespace nm;

struct ScenarioParams {
  int vms = 4;
  int iterations = 40;
  std::uint64_t per_node_gib = 8;
};

struct ScenarioResult {
  std::vector<double> iter_seconds;
  core::NinjaStats episodes[3];
};

ScenarioResult run_scenario(std::size_t ranks_per_vm, const ScenarioParams& params) {
  core::Testbed tb;
  core::JobConfig cfg;
  cfg.name = "bcastreduce";
  cfg.vm_count = params.vms;
  cfg.ranks_per_vm = ranks_per_vm;
  core::MpiJob job(tb, cfg);
  job.init();

  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::gib(params.per_node_gib);
  wcfg.iterations = params.iterations;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });

  ScenarioResult result;
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j,
                    std::shared_ptr<workloads::BcastReduceBench> b,
                    ScenarioResult& out) -> sim::Task {
    // Step 10 -> fallback onto 2 Ethernet hosts (consolidation).
    co_await b->wait_step(10);
    co_await j.fallback_migration(/*host_count=*/2, &out.episodes[0]);
    // Step 20 -> recovery onto 4 InfiniBand hosts (HCAs re-attached).
    co_await b->wait_step(20);
    co_await j.recovery_migration(j.config().vm_count, &out.episodes[1]);
    // Step 30 -> Ethernet hosts 1:1, TCP only.
    co_await b->wait_step(30);
    std::vector<std::string> dsts;
    for (int i = 0; i < j.config().vm_count; ++i) {
      dsts.push_back(t.eth_host(i).name());
    }
    co_await j.tcp_migration(dsts, &out.episodes[2]);
  }(tb, job, bench, result));

  tb.sim().run();
  result.iter_seconds = bench->iteration_seconds();
  return result;
}

void report(const char* label, const ScenarioResult& r) {
  std::cout << "\n--- " << label << " ---\n";
  TextTable table({"steps", "phase", "mean iter [s]", "note"});
  auto mean_of = [&](int lo, int hi) {  // 1-based inclusive, skip episodes
    double sum = 0;
    int n = 0;
    for (int s = lo; s <= hi && s <= static_cast<int>(r.iter_seconds.size()); ++s) {
      if (s == 11 || s == 21 || s == 31) {
        continue;
      }
      sum += r.iter_seconds[static_cast<std::size_t>(s - 1)];
      ++n;
    }
    return n > 0 ? sum / n : 0.0;
  };
  table.add_row({"1-10", "4 hosts (IB)", TextTable::num(mean_of(1, 10)), ""});
  table.add_row({"11-20", "2 hosts (TCP)", TextTable::num(mean_of(11, 20)),
                 "consolidated, CPU over-commit"});
  table.add_row({"21-30", "4 hosts (IB)", TextTable::num(mean_of(21, 30)), "recovered"});
  table.add_row({"31-40", "4 hosts (TCP)", TextTable::num(mean_of(31, 40)), ""});
  table.render(std::cout);

  TextTable mig({"episode", "at step", "iter incl. overhead [s]", "ninja total [s]",
                 "migration", "hotplug+linkup"});
  const char* names[3] = {"fallback -> 2xEth", "recovery -> 4xIB", "fallback -> 4xEth"};
  const int steps[3] = {11, 21, 31};
  const Duration confirm = symvirt::CoordinatorTiming{}.confirm;
  for (int e = 0; e < 3; ++e) {
    const auto& st = r.episodes[e];
    mig.add_row({names[e], std::to_string(steps[e]),
                 TextTable::num(r.iter_seconds[static_cast<std::size_t>(steps[e] - 1)]),
                 TextTable::num(st.total.to_seconds()),
                 TextTable::num(st.migration.to_seconds()),
                 TextTable::num(st.hotplug(confirm).to_seconds() +
                                st.linkup_excl_confirm(confirm).to_seconds())});
  }
  mig.render(std::cout);

  StackedBarChart chart("per-iteration time (top of bar at steps 11/21/31 = overhead)",
                        {"iteration"});
  for (std::size_t i = 0; i < r.iter_seconds.size(); ++i) {
    chart.add_bar("step " + std::to_string(i + 1), {r.iter_seconds[i]});
  }
  chart.set_width(50);
  chart.render(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.has("help")) {
    std::cout << ArgParser::usage(args.program(),
                                  {{"vms", "VMs in the job", "4"},
                                   {"iterations", "bcast+reduce steps", "40"},
                                   {"gib-per-node", "payload per node in GiB", "8"}});
    return 0;
  }
  ScenarioParams params;
  params.vms = static_cast<int>(args.get_int("vms", 4));
  params.iterations = static_cast<int>(args.get_int("iterations", 40));
  params.per_node_gib = static_cast<std::uint64_t>(args.get_int("gib-per-node", 8));

  bench::print_header("Figure 8",
                      "Fallback and recovery migration, bcast+reduce of 8 GB per node, "
                      "40 steps, Ninja at steps 11/21/31");

  const auto r1 = run_scenario(1, params);
  report("a) 1 process / VM", r1);
  const auto r8 = run_scenario(8, params);
  report("b) 8 processes / VM", r8);

  // Cross-run shape checks.
  auto total_overhead = [](const ScenarioResult& r) {
    double t = 0;
    for (const auto& e : r.episodes) {
      t += e.total.to_seconds();
    }
    return t;
  };
  std::cout << "\nTotal Ninja overhead: 1 proc/VM " << total_overhead(r1) << " s, 8 procs/VM "
            << total_overhead(r8)
            << " s (paper: \"the total overhead is identical as the number of\n"
               "processes per VM increases from 1 to 8\").\n";
  return 0;
}
