// Ablation benches for the design choices DESIGN.md calls out and the
// optimizations discussed in the paper's §V:
//   A. dup-page compression on/off (why memtest migrations are cheap);
//   B. TCP vs RDMA-based migration (the §V CPU-bottleneck discussion:
//      "the network throughput of migration is less than 1.3 Gbps ...
//      RDMA-based migration can reduce CPU utilization and improve the
//      throughput");
//   C. ompi_cr_continue_like_restart on/off (whether a recovery migration
//      re-acquires InfiniBand, §III-C);
//   D. InfiniBand link-up time sweep (what fixing the ~30 s port training
//      — an open issue in §V — would buy per episode).
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/testbed.h"
#include "util/table.h"
#include "workloads/bcast_reduce.h"
#include "workloads/memtest.h"

// Forward declaration for study E (defined below main's helpers).

namespace {

using namespace nm;

double migrate_20gib_memtest(bool compress, bool rdma) {
  core::TestbedConfig tcfg;
  tcfg.migration.compress_dup_pages = compress;
  tcfg.migration.use_rdma = rdma;
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.vm_count = 1;
  cfg.ranks_per_vm = 1;
  core::MpiJob job(tb, cfg);
  job.init();
  workloads::MemtestConfig mcfg;
  mcfg.array_size = Bytes::gib(8);
  mcfg.passes = 500;
  job.launch([&job, mcfg](mpi::RankId me) -> sim::Task {
    co_await workloads::run_memtest_rank(job, me, mcfg, nullptr);
  });
  core::NinjaStats stats;
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j, core::NinjaStats& st) -> sim::Task {
    co_await t.sim().delay(Duration::seconds(5.0));
    co_await j.fallback_migration(1, &st);
  }(tb, job, stats));
  tb.sim().run_for(Duration::minutes(20));
  return stats.migration.to_seconds();
}

double recovery_iteration_time(bool continue_like_restart) {
  core::Testbed tb;
  core::JobConfig cfg;
  cfg.vm_count = 4;
  cfg.ranks_per_vm = 1;
  cfg.on_ib_cluster = false;
  cfg.with_hca = false;
  cfg.mpi.continue_like_restart = continue_like_restart;
  core::MpiJob job(tb, cfg);
  job.init();
  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::gib(2);
  wcfg.iterations = 20;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });
  tb.sim().spawn([](core::MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b)
                     -> sim::Task {
    co_await b->wait_step(5);
    co_await j.recovery_migration(4);
  }(job, bench));
  tb.sim().run();
  // Mean of the post-recovery steady iterations.
  const auto& t = bench->iteration_seconds();
  double sum = 0;
  int n = 0;
  for (std::size_t i = 14; i < t.size(); ++i) {
    sum += t[i];
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

double episode_total_with_linkup(double linkup_seconds) {
  core::TestbedConfig tcfg;
  tcfg.ib.linkup_time = Duration::seconds(linkup_seconds);
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.vm_count = 4;
  cfg.ranks_per_vm = 1;
  core::MpiJob job(tb, cfg);
  job.init();
  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::gib(2);
  wcfg.iterations = 30;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });
  core::NinjaStats stats;
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j,
                    std::shared_ptr<workloads::BcastReduceBench> b,
                    core::NinjaStats& st) -> sim::Task {
    co_await b->wait_step(3);
    // IB -> IB rotation keeps the link-up on the critical path.
    core::MigrationPlan plan;
    plan.vms = j.vms();
    for (int i = 0; i < 4; ++i) {
      plan.destinations.push_back(t.ib_host((i + 1) % 4).name());
    }
    plan.attach_host_pci = core::Testbed::kHcaPciAddr;
    plan.ranks_per_vm = 1;
    co_await j.ninja().execute(std::move(plan), &st);
  }(tb, job, bench, stats));
  tb.sim().run();
  return stats.total.to_seconds();
}

double consolidated_iteration_time(bool sriov) {
  // 4 VMs consolidated on 2 InfiniBand blades. With plain passthrough
  // (vf=1) only one VM per blade can hold the HCA, so the job must run
  // TCP; with SR-IOV (vf>=2) every VM keeps a virtual function and the
  // consolidated job stays on InfiniBand — a configuration the paper's
  // testbed could not express.
  core::TestbedConfig tcfg;
  tcfg.hca_vfs = sriov ? 4 : 1;
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.vm_count = 4;
  cfg.ranks_per_vm = 1;
  cfg.on_ib_cluster = true;
  cfg.with_hca = false;  // start without; episode decides the transport
  core::MpiJob job(tb, cfg);
  job.init();
  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::gib(2);
  wcfg.iterations = 24;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j,
                    std::shared_ptr<workloads::BcastReduceBench> b, bool vf) -> sim::Task {
    co_await b->wait_step(3);
    core::MigrationPlan plan;
    plan.vms = j.vms();
    plan.destinations = {t.ib_host(4).name(), t.ib_host(5).name()};  // 2 blades
    plan.ranks_per_vm = 1;
    if (vf) {
      plan.attach_host_pci = core::Testbed::kHcaPciAddr;  // a VF for every VM
    }
    co_await j.ninja().execute(std::move(plan));
  }(tb, job, bench, sriov));
  tb.sim().run();
  const auto& t = bench->iteration_seconds();
  double sum = 0;
  int n = 0;
  for (std::size_t i = 14; i < t.size(); ++i) {
    sum += t[i];
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace

int main() {
  bench::print_header("Ablations", "design-choice and §V-optimization studies");

  std::cout << "\nA/B. Migration of a 20 GiB memtest VM (8 GiB uniform array):\n";
  TextTable ab({"configuration", "migration time [s]"});
  const double tcp_comp = migrate_20gib_memtest(true, false);
  const double tcp_raw = migrate_20gib_memtest(false, false);
  const double rdma_comp = migrate_20gib_memtest(true, true);
  const double rdma_raw = migrate_20gib_memtest(false, true);
  ab.add_row({"TCP + dup-page compression (QEMU default)", TextTable::num(tcp_comp)});
  ab.add_row({"TCP, no compression", TextTable::num(tcp_raw)});
  ab.add_row({"RDMA + compression (paper SS V optimization)", TextTable::num(rdma_comp)});
  ab.add_row({"RDMA, no compression", TextTable::num(rdma_raw)});
  ab.render(std::cout);
  std::cout << "Compression hides the uniform array; RDMA removes the 1.3 Gb/s\n"
               "single-thread TCP cap (biggest win when pages do not compress).\n";

  std::cout << "\nC. ompi_cr_continue_like_restart (recovery migration Eth -> IB):\n";
  TextTable c({"flag", "post-recovery iteration [s]", "transport"});
  const double with_flag = recovery_iteration_time(true);
  const double without_flag = recovery_iteration_time(false);
  c.add_row({"set (paper's configuration)", TextTable::num(with_flag), "openib"});
  c.add_row({"unset", TextTable::num(without_flag), "tcp (never upgrades)"});
  c.render(std::cout);

  std::cout << "\nD. InfiniBand link-up time sweep (SS V open issue):\n";
  TextTable d({"linkup_time [s]", "ninja episode total [s]"});
  for (const double linkup : {29.9, 10.0, 1.0, 0.0}) {
    d.add_row({TextTable::num(linkup), TextTable::num(episode_total_with_linkup(linkup))});
  }
  d.render(std::cout);
  std::cout << "Eliminating the ~30 s port training is worth about that much per\n"
               "episode — the single biggest optimization opportunity the paper\n"
               "identifies.\n";

  std::cout << "\nE. SR-IOV extension: consolidating 4 VMs onto 2 IB blades:\n";
  TextTable e({"HCA mode", "post-consolidation iteration [s]", "transport"});
  const double tcp_iter = consolidated_iteration_time(false);
  const double vf_iter = consolidated_iteration_time(true);
  e.add_row({"PCI passthrough (paper's hardware)", TextTable::num(tcp_iter),
             "tcp (HCA cannot be shared)"});
  e.add_row({"SR-IOV, 4 VFs", TextTable::num(vf_iter), "openib (one VF per VM)"});
  e.render(std::cout);
  std::cout << "SR-IOV removes the only reason consolidated placements had to fall\n"
               "back to TCP — an extension experiment beyond the paper's testbed.\n";
  return 0;
}
