// Ablation benches for the design choices DESIGN.md calls out and the
// optimizations discussed in the paper's §V:
//   A. dup-page compression on/off (why memtest migrations are cheap);
//   B. TCP vs RDMA-based migration (the §V CPU-bottleneck discussion:
//      "the network throughput of migration is less than 1.3 Gbps ...
//      RDMA-based migration can reduce CPU utilization and improve the
//      throughput");
//   C. ompi_cr_continue_like_restart on/off (whether a recovery migration
//      re-acquires InfiniBand, §III-C);
//   D. InfiniBand link-up time sweep (what fixing the ~30 s port training
//      — an open issue in §V — would buy per episode);
//   F. migration-decision policies under live service load (`--policies`
//      runs only this study and emits BENCH_ablation_policies.json for the
//      CI key pin; exits non-zero unless SloThrottlePolicy improves the
//      pre-copy p99 over StaticPolicy with the blackout still <= 30 ms).
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/service_episode.h"
#include "core/testbed.h"
#include "policy/policies.h"
#include "util/table.h"
#include "workloads/bcast_reduce.h"
#include "workloads/kv_service.h"
#include "workloads/memtest.h"

// Forward declaration for study E (defined below main's helpers).

namespace {

using namespace nm;

double migrate_20gib_memtest(bool compress, bool rdma) {
  core::TestbedConfig tcfg;
  tcfg.migration.compress_dup_pages = compress;
  tcfg.migration.use_rdma = rdma;
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.vm_count = 1;
  cfg.ranks_per_vm = 1;
  core::MpiJob job(tb, cfg);
  job.init();
  workloads::MemtestConfig mcfg;
  mcfg.array_size = Bytes::gib(8);
  mcfg.passes = 500;
  job.launch([&job, mcfg](mpi::RankId me) -> sim::Task {
    co_await workloads::run_memtest_rank(job, me, mcfg, nullptr);
  });
  core::NinjaStats stats;
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j, core::NinjaStats& st) -> sim::Task {
    co_await t.sim().delay(Duration::seconds(5.0));
    co_await j.fallback_migration(1, &st);
  }(tb, job, stats));
  tb.sim().run_for(Duration::minutes(20));
  return stats.migration.to_seconds();
}

double recovery_iteration_time(bool continue_like_restart) {
  core::Testbed tb;
  core::JobConfig cfg;
  cfg.vm_count = 4;
  cfg.ranks_per_vm = 1;
  cfg.on_ib_cluster = false;
  cfg.with_hca = false;
  cfg.mpi.continue_like_restart = continue_like_restart;
  core::MpiJob job(tb, cfg);
  job.init();
  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::gib(2);
  wcfg.iterations = 20;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });
  tb.sim().spawn([](core::MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b)
                     -> sim::Task {
    co_await b->wait_step(5);
    co_await j.recovery_migration(4);
  }(job, bench));
  tb.sim().run();
  // Mean of the post-recovery steady iterations.
  const auto& t = bench->iteration_seconds();
  double sum = 0;
  int n = 0;
  for (std::size_t i = 14; i < t.size(); ++i) {
    sum += t[i];
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

double episode_total_with_linkup(double linkup_seconds) {
  core::TestbedConfig tcfg;
  tcfg.ib.linkup_time = Duration::seconds(linkup_seconds);
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.vm_count = 4;
  cfg.ranks_per_vm = 1;
  core::MpiJob job(tb, cfg);
  job.init();
  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::gib(2);
  wcfg.iterations = 30;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });
  core::NinjaStats stats;
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j,
                    std::shared_ptr<workloads::BcastReduceBench> b,
                    core::NinjaStats& st) -> sim::Task {
    co_await b->wait_step(3);
    // IB -> IB rotation keeps the link-up on the critical path.
    core::MigrationPlan plan;
    plan.vms = j.vms();
    for (int i = 0; i < 4; ++i) {
      plan.destinations.push_back(t.ib_host((i + 1) % 4).name());
    }
    plan.attach_host_pci = core::Testbed::kHcaPciAddr;
    plan.ranks_per_vm = 1;
    co_await j.ninja().execute(std::move(plan), &st);
  }(tb, job, bench, stats));
  tb.sim().run();
  return stats.total.to_seconds();
}

double consolidated_iteration_time(bool sriov) {
  // 4 VMs consolidated on 2 InfiniBand blades. With plain passthrough
  // (vf=1) only one VM per blade can hold the HCA, so the job must run
  // TCP; with SR-IOV (vf>=2) every VM keeps a virtual function and the
  // consolidated job stays on InfiniBand — a configuration the paper's
  // testbed could not express.
  core::TestbedConfig tcfg;
  tcfg.hca_vfs = sriov ? 4 : 1;
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.vm_count = 4;
  cfg.ranks_per_vm = 1;
  cfg.on_ib_cluster = true;
  cfg.with_hca = false;  // start without; episode decides the transport
  core::MpiJob job(tb, cfg);
  job.init();
  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::gib(2);
  wcfg.iterations = 24;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j,
                    std::shared_ptr<workloads::BcastReduceBench> b, bool vf) -> sim::Task {
    co_await b->wait_step(3);
    core::MigrationPlan plan;
    plan.vms = j.vms();
    plan.destinations = {t.ib_host(4).name(), t.ib_host(5).name()};  // 2 blades
    plan.ranks_per_vm = 1;
    if (vf) {
      plan.attach_host_pci = core::Testbed::kHcaPciAddr;  // a VF for every VM
    }
    co_await j.ninja().execute(std::move(plan));
  }(tb, job, bench, sriov));
  tb.sim().run();
  const auto& t = bench->iteration_seconds();
  double sum = 0;
  int n = 0;
  for (std::size_t i = 14; i < t.size(); ++i) {
    sum += t[i];
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

// --- Study F: decision policies under live service load ---------------------

struct PolicyRunMetrics {
  std::string key;  // JSON key prefix
  std::uint64_t digest = 0;
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  bool episode_done = false;
  std::int64_t precopy_p99_ns = 0;
  std::uint64_t precopy_misses = 0;
  std::int64_t blackout_ns = 0;
  std::int64_t total_ns = 0;
};

enum class PolicyVariant { kStatic, kSloThrottle, kQuietPause };

// The examples/live_service scenario: 4 loaded KV servers (per-server
// utilisation ~0.9), kv0 migrated off its draining host at t=2 s while 4
// fleets keep an open loop of 10,400 req/s on the service.
PolicyRunMetrics run_policy_episode(PolicyVariant variant) {
  core::TestbedConfig config;
  config.fluid_shards = 2;
  core::Testbed testbed(config);

  workloads::KvServiceConfig svc;
  svc.replicas = 2;
  svc.service_core_seconds = 1.38e-3;
  svc.worker_threads = 8;
  svc.zipf_s = 0.7;
  svc.deadline = Duration::millis(20);
  svc.write_fraction = 0.4;
  svc.value_bytes = Bytes::kib(8);
  workloads::KvService service(testbed, svc);

  std::vector<std::shared_ptr<vmm::Vm>> vms;
  for (int i = 0; i < 4; ++i) {
    vmm::VmSpec spec;
    spec.name = "kv" + std::to_string(i);
    spec.memory = Bytes::mib(256);
    spec.base_os_footprint = Bytes::mib(96);
    vms.push_back(testbed.boot_vm(testbed.eth_host(i), spec, /*with_hca=*/false));
    service.add_server(vms.back());
  }
  for (int i = 0; i < 4; ++i) {
    workloads::ClientFleetConfig fleet;
    fleet.name = "fleet" + std::to_string(i);
    fleet.rate_per_sec = 2600.0;
    fleet.window = Duration::seconds(10);
    service.add_fleet(testbed.ib_host(i), fleet);
  }
  testbed.settle();

  core::ServiceEpisode episode(testbed.sim());
  service.observe_migration(&episode.live());
  service.start();
  core::EpisodeSpec spec(vms[0], testbed.eth_host(4));
  spec.after(Duration::seconds(2)).observe(service.observation_source());
  policy::PolicySet policies;
  PolicyRunMetrics m;
  switch (variant) {
    case PolicyVariant::kStatic:
      m.key = "static";
      break;
    case PolicyVariant::kSloThrottle:
      m.key = "slo_throttle";
      policies.use(policy::Hook::kPreCopyRound,
                   std::make_shared<policy::SloThrottlePolicy>());
      break;
    case PolicyVariant::kQuietPause:
      m.key = "quiet_pause";
      policies.use(policy::Hook::kPauseDecision,
                   std::make_shared<policy::QuietPausePolicy>());
      break;
  }
  spec.with(std::move(policies), config.seed);
  (void)episode.start(std::move(spec));
  testbed.sim().run_for(Duration::seconds(40));

  m.digest = service.digest();
  m.generated = service.generated();
  m.completed = service.completed();
  m.episode_done = episode.done();
  const auto& precopy = service.phase(vmm::MigrationPhase::kPreCopy);
  m.precopy_misses = precopy.deadline_misses;
  if (precopy.latency.count() > 0) {
    m.precopy_p99_ns = precopy.latency.percentile(0.99).count_nanos();
  }
  if (m.episode_done) {
    m.blackout_ns = episode.report().blackout.count_nanos();
    m.total_ns = episode.report().total.count_nanos();
  }
  return m;
}

int run_policies(bool json_only) {
  // The SLO loop must actually close: throttling has to buy pre-copy tail
  // latency, and it must never buy it from the blackout (round caps do not
  // apply to the stop-and-copy drain).
  constexpr std::int64_t kBlackoutCeilingNs = 30'000'000;
  if (!json_only) {
    std::cout << "\nF. Decision policies under live service load (the\n"
                 "   examples/live_service scenario: 10,400 req/s open-loop, kv0\n"
                 "   migrated off its draining host at t=2 s):\n";
  }
  std::vector<PolicyRunMetrics> runs;
  runs.push_back(run_policy_episode(PolicyVariant::kStatic));
  runs.push_back(run_policy_episode(PolicyVariant::kSloThrottle));
  runs.push_back(run_policy_episode(PolicyVariant::kQuietPause));

  TextTable table({"policy", "pre-copy p99 [ms]", "pre-copy misses", "blackout [ms]",
                   "episode total [ms]"});
  bool ok = true;
  for (const auto& m : runs) {
    ok = ok && m.episode_done && m.completed == m.generated && m.precopy_p99_ns > 0;
    table.add_row({m.key, TextTable::num(static_cast<double>(m.precopy_p99_ns) / 1e6, 2),
                   std::to_string(m.precopy_misses),
                   TextTable::num(static_cast<double>(m.blackout_ns) / 1e6, 2),
                   TextTable::num(static_cast<double>(m.total_ns) / 1e6, 2)});
  }
  const PolicyRunMetrics& st = runs[0];
  const PolicyRunMetrics& throttle = runs[1];
  if (throttle.precopy_p99_ns >= st.precopy_p99_ns) {
    std::cout << "FAIL: slo-throttle did not improve the pre-copy p99 ("
              << throttle.precopy_p99_ns << " vs static " << st.precopy_p99_ns << " ns)\n";
    ok = false;
  }
  if (throttle.blackout_ns > kBlackoutCeilingNs) {
    std::cout << "FAIL: slo-throttle blackout " << throttle.blackout_ns
              << " ns exceeds the " << kBlackoutCeilingNs << " ns ceiling\n";
    ok = false;
  }
  if (!json_only) {
    table.render(std::cout);
    std::cout << "SloThrottlePolicy trades episode length for user tail latency;\n"
                 "QuietPausePolicy re-times the pause into an arrival gap. Neither\n"
                 "touches the stop-and-copy drain, so max_downtime holds for all.\n";
  } else {
    table.render(std::cout);
  }

  std::ofstream out("BENCH_ablation_policies.json");
  out << "{\n  \"requests\": " << st.generated << ",\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& m = runs[i];
    out << "  \"" << m.key << "_digest\": " << m.digest << ",\n"
        << "  \"" << m.key << "_precopy_p99_ns\": " << m.precopy_p99_ns << ",\n"
        << "  \"" << m.key << "_precopy_misses\": " << m.precopy_misses << ",\n"
        << "  \"" << m.key << "_blackout_ns\": " << m.blackout_ns << ",\n"
        << "  \"" << m.key << "_total_ns\": " << m.total_ns
        << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // `--policies` runs only study F and emits BENCH_ablation_policies.json;
  // CI pins its key set with tools/check_bench_keys.sh and the run itself
  // gates the SLO-loop win (see run_policies).
  if (argc > 1 && std::strcmp(argv[1], "--policies") == 0) {
    return run_policies(/*json_only=*/true);
  }
  bench::print_header("Ablations", "design-choice and §V-optimization studies");

  std::cout << "\nA/B. Migration of a 20 GiB memtest VM (8 GiB uniform array):\n";
  TextTable ab({"configuration", "migration time [s]"});
  const double tcp_comp = migrate_20gib_memtest(true, false);
  const double tcp_raw = migrate_20gib_memtest(false, false);
  const double rdma_comp = migrate_20gib_memtest(true, true);
  const double rdma_raw = migrate_20gib_memtest(false, true);
  ab.add_row({"TCP + dup-page compression (QEMU default)", TextTable::num(tcp_comp)});
  ab.add_row({"TCP, no compression", TextTable::num(tcp_raw)});
  ab.add_row({"RDMA + compression (paper SS V optimization)", TextTable::num(rdma_comp)});
  ab.add_row({"RDMA, no compression", TextTable::num(rdma_raw)});
  ab.render(std::cout);
  std::cout << "Compression hides the uniform array; RDMA removes the 1.3 Gb/s\n"
               "single-thread TCP cap (biggest win when pages do not compress).\n";

  std::cout << "\nC. ompi_cr_continue_like_restart (recovery migration Eth -> IB):\n";
  TextTable c({"flag", "post-recovery iteration [s]", "transport"});
  const double with_flag = recovery_iteration_time(true);
  const double without_flag = recovery_iteration_time(false);
  c.add_row({"set (paper's configuration)", TextTable::num(with_flag), "openib"});
  c.add_row({"unset", TextTable::num(without_flag), "tcp (never upgrades)"});
  c.render(std::cout);

  std::cout << "\nD. InfiniBand link-up time sweep (SS V open issue):\n";
  TextTable d({"linkup_time [s]", "ninja episode total [s]"});
  for (const double linkup : {29.9, 10.0, 1.0, 0.0}) {
    d.add_row({TextTable::num(linkup), TextTable::num(episode_total_with_linkup(linkup))});
  }
  d.render(std::cout);
  std::cout << "Eliminating the ~30 s port training is worth about that much per\n"
               "episode — the single biggest optimization opportunity the paper\n"
               "identifies.\n";

  std::cout << "\nE. SR-IOV extension: consolidating 4 VMs onto 2 IB blades:\n";
  TextTable e({"HCA mode", "post-consolidation iteration [s]", "transport"});
  const double tcp_iter = consolidated_iteration_time(false);
  const double vf_iter = consolidated_iteration_time(true);
  e.add_row({"PCI passthrough (paper's hardware)", TextTable::num(tcp_iter),
             "tcp (HCA cannot be shared)"});
  e.add_row({"SR-IOV, 4 VFs", TextTable::num(vf_iter), "openib (one VF per VM)"});
  e.render(std::cout);
  std::cout << "SR-IOV removes the only reason consolidated placements had to fall\n"
               "back to TCP — an extension experiment beyond the paper's testbed.\n";
  return run_policies(/*json_only=*/false);
}
