// Micro-benchmarks (google-benchmark) of the simulator substrate itself:
// event-loop throughput, fluid rebalancing cost, interval-map updates, and
// a full small Ninja episode. These guard the simulator's own performance,
// so the Fig 7/8 reproductions stay fast enough to iterate on.
//
// Besides the normal console output, a machine-readable summary (benchmark
// name -> items/sec) is written to BENCH_sim_micro.json in the working
// directory so the perf trajectory can be tracked across PRs.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/testbed.h"
#include "sim/fluid.h"
#include "sim/fluid_net.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "util/interval_map.h"
#include "workloads/bcast_reduce.h"

// GCC pairs the std::free in the replaced operator delete below against
// whatever allocation it inlined at each call site and warns; the pair is
// matched in fact (the replaced operator new routes through std::malloc).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

// Replaceable global allocation functions with an opt-in counter, so
// BM_PostHotPath can report allocations per posted event (must be zero:
// the queue entry holds the callback inline and the heap storage is
// warmed before counting starts).
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace nm;

void BM_EventLoopThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.post(Duration::nanos(i), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventLoopThroughput);

// Steady-state timer path: post carrying a 24-byte capture (a pointer plus
// two words — the size class std::function would have heap-allocated) into
// a pre-warmed queue, drain, repeat. Reports allocs_per_event, which the
// InlineCallback queue must keep at exactly zero.
void BM_PostHotPath(benchmark::State& state) {
  constexpr int kBatch = 1024;
  sim::Simulation sim;
  // Warm the queue's heap storage past the batch size so steady-state
  // posts never grow the vector.
  for (int i = 0; i < 4 * kBatch; ++i) {
    sim.post(Duration::nanos(i), [] {});
  }
  sim.run();

  std::int64_t events = 0;
  std::uint64_t sink = 0;
  std::uint64_t* sink_p = &sink;
  g_alloc_count.store(0, std::memory_order_relaxed);
  for (auto _ : state) {
    // Count only the post+drain region, not the benchmark library's own
    // iteration bookkeeping.
    g_count_allocs.store(true, std::memory_order_relaxed);
    for (int i = 0; i < kBatch; ++i) {
      sim.post(Duration::nanos(i + 1),
               [sink_p, a = static_cast<std::uint64_t>(i), b = events] { *sink_p += a + b; });
    }
    sim.run();
    g_count_allocs.store(false, std::memory_order_relaxed);
    events += kBatch;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(events);
  state.counters["allocs_per_event"] =
      benchmark::Counter(static_cast<double>(g_alloc_count.load(std::memory_order_relaxed)) /
                         static_cast<double>(events));
}
BENCHMARK(BM_PostHotPath);

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim.spawn([](sim::Simulation& s) -> sim::Task {
      for (int i = 0; i < 5'000; ++i) {
        co_await s.delay(Duration::micros(1));
      }
    }(sim));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 5'000);
}
BENCHMARK(BM_CoroutineDelayChain);

void BM_FluidRebalance(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::FluidScheduler sched(sim);
    sim::FluidResource nic("nic", 1e9);
    std::vector<sim::FlowPtr> live;
    live.reserve(static_cast<std::size_t>(flows));
    for (int i = 0; i < flows; ++i) {
      live.push_back(sched.start(sim::FlowSpec{.work = 1e6 * (i + 1)}.over(nic)));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidRebalance)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

// Asymptotics guard for the component-partitioned scheduler: H hosts each
// carry a steady background of flows on their own NIC, and one host churns
// small flows. With per-component solves the churn cost must not depend on
// how many other (clean) components exist, so items/sec should stay flat
// across H.
void BM_FluidRebalanceMultiHost(benchmark::State& state) {
  const auto hosts = static_cast<int>(state.range(0));
  constexpr int kFlowsPerHost = 32;
  constexpr int kChurn = 64;
  struct Env {
    sim::Simulation sim;
    sim::FluidScheduler sched{sim};
    std::vector<std::unique_ptr<sim::FluidResource>> nics;
    std::vector<sim::FlowPtr> background;
    explicit Env(int host_count) {
      for (int h = 0; h < host_count; ++h) {
        nics.push_back(std::make_unique<sim::FluidResource>(
            sched, "nic" + std::to_string(h), 1e9));
        for (int f = 0; f < kFlowsPerHost; ++f) {
          // Long-lived: never completes within the churn window.
          background.push_back(
              sched.start(sim::FlowSpec{.work = 1e16}.over(*nics[h])));
        }
      }
      sim.run_for(Duration::seconds(1));  // settle the background
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    auto env = std::make_unique<Env>(hosts);
    state.ResumeTiming();
    for (int c = 0; c < kChurn; ++c) {
      auto flow = env->sched.start(sim::FlowSpec{.work = 1e6}.over(*env->nics[0]));
      env->sim.run_for(Duration::seconds(1));
      benchmark::DoNotOptimize(flow->finished());
    }
    state.PauseTiming();
    env.reset();  // teardown cost scales with H; keep it out of the timing
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kChurn);
}
BENCHMARK(BM_FluidRebalanceMultiHost)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Exchange-aware batching guard: a depth-D domain chain with a tight head
// resource, slack middle resources soaked by local load, and one boundary
// flow spanning the whole chain. Every head-capacity toggle moves all the
// middle domains' capacity offers, but they stay far above the achieved
// rate — the exchange must store them and skip the re-solves, so the
// per-toggle settle cost grows only with the publish fan-out, not with
// extra re-solve rounds per domain.
void BM_DeepChainExchange(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  constexpr int kToggles = 64;
  struct Env {
    sim::Simulation sim;
    sim::FluidNet net{sim, 0};
    std::vector<std::unique_ptr<sim::FluidResource>> res;
    std::vector<sim::FlowPtr> flows;
    explicit Env(int d) {
      for (int i = 0; i < d; ++i) {
        // Lvalue suffix: the `const char* + string&&` overload trips a
        // GCC 12 -Wrestrict false positive under heavy inlining.
        const std::string tag = std::to_string(i);
        auto& dom = net.add_domain("d" + tag);
        res.push_back(std::make_unique<sim::FluidResource>(
            dom.scheduler(), "r" + tag, i == 0 ? 1e9 : 1e12));
      }
      sim::FlowSpec spec{.work = 1e15};
      for (auto& r : res) {
        spec.over(*r);
      }
      flows.push_back(net.start(std::move(spec)));
      for (int i = 1; i < d; ++i) {  // local load: offers track the ghost rate
        flows.push_back(net.start(sim::FlowSpec{.work = 1e15}.over(*res[i])));
      }
      sim.run_for(Duration::millis(1));  // converge the initial exchange
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    auto env = std::make_unique<Env>(depth);
    state.ResumeTiming();
    for (int t = 0; t < kToggles; ++t) {
      env->res[0]->set_capacity(t % 2 == 0 ? 1.1e9 : 1e9);
      env->sim.run_for(Duration::millis(1));
    }
    state.PauseTiming();
    env.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kToggles);
}
BENCHMARK(BM_DeepChainExchange)->Arg(4)->Arg(16)->Arg(64);

// Timer-wheel guard, far-horizon side: 32k timers parked an hour-plus out
// (level 2 and the overflow list) while the near-term path churns. The
// parked population must cost the hot path nothing — near posts see one
// wheel_min comparison per sync — and the loop must stay allocation-free,
// extending the allocs_per_event=0 gate over the wheel code path.
void BM_TimerWheelFarHorizon(benchmark::State& state) {
  constexpr int kFar = 32 * 1024;
  constexpr int kBatch = 1024;
  sim::Simulation sim;
  sim.post(Duration::nanos(1), [] {});  // anchor: far posts park behind it
  for (int i = 0; i < kFar; ++i) {
    sim.post(Duration::minutes(60.0 + i % 300), [] {});
  }
  for (int i = 0; i < 4 * kBatch; ++i) {  // warm the near-path storage
    sim.post(Duration::nanos(i + 2), [] {});
  }
  sim.run_for(Duration::millis(1));  // drain anchor + warm batch; far stays parked

  std::int64_t events = 0;
  std::uint64_t sink = 0;
  std::uint64_t* sink_p = &sink;
  g_alloc_count.store(0, std::memory_order_relaxed);
  for (auto _ : state) {
    g_count_allocs.store(true, std::memory_order_relaxed);
    for (int i = 0; i < kBatch; ++i) {
      sim.post(Duration::nanos(i + 1),
               [sink_p, a = static_cast<std::uint64_t>(i), b = events] { *sink_p += a + b; });
    }
    sim.run_for(Duration::micros(2));
    g_count_allocs.store(false, std::memory_order_relaxed);
    events += kBatch;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(events);
  state.counters["allocs_per_event"] =
      benchmark::Counter(static_cast<double>(g_alloc_count.load(std::memory_order_relaxed)) /
                         static_cast<double>(events));
}
BENCHMARK(BM_TimerWheelFarHorizon);

// Timer-wheel guard, cascade side: timers spread from 3ms to an hour all
// park, refile down the levels as their buckets come due, and promote back
// into the heap — the full flush machinery per timer.
void BM_TimerWheelCascade(benchmark::State& state) {
  const int timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim.post(Duration::nanos(1), [] {});
    for (int i = 0; i < timers; ++i) {
      sim.post(Duration::millis(3 + (i * 977) % 3'600'000), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * timers);
}
BENCHMARK(BM_TimerWheelCascade)->Arg(32768);

void BM_IntervalMapDirtyTracking(benchmark::State& state) {
  for (auto _ : state) {
    IntervalMap<int> map(5'242'880, 0);  // 20 GiB of 4 KiB pages
    for (std::uint64_t i = 0; i < 1'000; ++i) {
      const auto lo = (i * 37) % 5'000'000;
      map.assign(lo, lo + 4'096, static_cast<int>(i % 3));
    }
    benchmark::DoNotOptimize(map.run_count());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_IntervalMapDirtyTracking);

void BM_FullNinjaEpisode(benchmark::State& state) {
  for (auto _ : state) {
    core::Testbed tb;
    core::JobConfig cfg;
    cfg.vm_count = 2;
    cfg.ranks_per_vm = 1;
    cfg.vm_template.memory = Bytes::gib(4);
    cfg.vm_template.base_os_footprint = Bytes::mib(512);
    core::MpiJob job(tb, cfg);
    job.init();
    workloads::BcastReduceConfig wcfg;
    wcfg.per_node_bytes = Bytes::mib(256);
    wcfg.iterations = 10;
    auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
    job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });
    tb.sim().spawn([](core::MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b)
                       -> sim::Task {
      co_await b->wait_step(2);
      co_await j.fallback_migration(2);
    }(job, bench));
    tb.sim().run();
    benchmark::DoNotOptimize(bench->iteration_seconds().size());
  }
}
BENCHMARK(BM_FullNinjaEpisode)->Unit(benchmark::kMillisecond);

// Console output plus a {"name": items_per_sec} summary in
// BENCH_sim_micro.json for cross-PR perf tracking.
class JsonSummaryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        results_.emplace_back(run.benchmark_name(), static_cast<double>(it->second));
      }
    }
  }

  void Finalize() override {
    ConsoleReporter::Finalize();
    std::ofstream out("BENCH_sim_micro.json");
    out << "{\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      out << "  \"" << results_[i].first << "\": " << results_[i].second
          << (i + 1 < results_.size() ? "," : "") << "\n";
    }
    out << "}\n";
  }

 private:
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonSummaryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
