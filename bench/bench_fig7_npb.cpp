// Figure 7 reproduction: NPB 3.3 class D, 64 processes (8 VMs x 8 ranks),
// baseline vs proposed (one Ninja migration issued 3 minutes after start),
// with the overhead broken into migration / hotplug / link-up. The
// migration is IB -> IB (blade rotation with HCA re-attach), as in the
// paper ("both the source and the destination clusters use Infiniband
// only").
//
// Claims to reproduce:
//   1. no overhead during normal operation: the application segment of the
//      proposed bar equals the baseline bar;
//   2. the migration segment is basically proportional to the memory
//      footprint (NPB data is incompressible; footprints 2.3-16 GB per VM,
//      FT largest);
//   3. hotplug and link-up are constant across benchmarks.
#include <iostream>

#include "bench/common.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/testbed.h"
#include "util/table.h"
#include "workloads/npb.h"

namespace {

using namespace nm;

struct RunResult {
  double total = 0;
  core::NinjaStats ninja;
};

RunResult run_kernel(const workloads::NpbSpec& spec, bool with_migration) {
  core::TestbedConfig tcfg;
  tcfg.hotplug.noise_factor = 3.0;
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.name = spec.name;
  cfg.vm_count = 8;
  cfg.ranks_per_vm = 8;  // 64 processes
  core::MpiJob job(tb, cfg);
  job.init();

  const TimePoint t0 = tb.sim().now();
  workloads::NpbResult r0;
  job.launch([&job, spec, &r0](mpi::RankId me) -> sim::Task {
    co_await workloads::run_npb_rank(job, me, spec, me == 0 ? &r0 : nullptr);
  });

  RunResult result;
  if (with_migration) {
    core::MigrationPlan plan;
    plan.vms = job.vms();
    for (int i = 0; i < 8; ++i) {
      plan.destinations.push_back(tb.ib_host((i + 1) % 8).name());
    }
    plan.attach_host_pci = core::Testbed::kHcaPciAddr;
    plan.ranks_per_vm = 8;
    tb.sim().spawn([](core::Testbed& t, core::MpiJob& j, core::MigrationPlan p,
                      core::NinjaStats& st) -> sim::Task {
      co_await t.sim().delay(Duration::minutes(3));  // paper: 3 min after start
      co_await j.ninja().execute(std::move(p), &st);
    }(tb, job, plan, result.ninja));
  }
  tb.sim().run();
  (void)t0;
  result.total = r0.elapsed.to_seconds();
  return result;
}

}  // namespace

int main() {
  bench::print_header("Figure 7",
                      "NPB 3.3 class D, 64 processes: baseline vs proposed [seconds]");

  const Duration confirm = symvirt::CoordinatorTiming{}.confirm;
  StackedBarChart chart("baseline vs proposed (this repro)",
                        {"application", "migration", "hotplug", "linkup"});
  TextTable table({"bench", "baseline", "proposed", "overhead", "migration", "hotplug",
                   "linkup", "footprint/VM"});
  for (const auto& spec : workloads::npb_class_d_suite()) {
    const RunResult base = run_kernel(spec, false);
    const RunResult prop = run_kernel(spec, true);
    const double mig = prop.ninja.migration.to_seconds();
    const double hot = prop.ninja.hotplug(confirm).to_seconds();
    const double link = prop.ninja.linkup_excl_confirm(confirm).to_seconds();
    const double overhead = prop.total - base.total;
    chart.add_bar(spec.name + " base", {base.total, 0, 0, 0});
    chart.add_bar(spec.name + " prop", {prop.total - mig - hot - link, mig, hot, link});
    table.add_row({spec.name, TextTable::num(base.total), TextTable::num(prop.total),
                   TextTable::num(overhead), TextTable::num(mig), TextTable::num(hot),
                   TextTable::num(link),
                   TextTable::num(spec.footprint_per_vm.to_gib()) + "GiB"});
  }
  table.render(std::cout);
  std::cout << "\n";
  chart.render(std::cout);
  std::cout
      << "\nShape checks: (1) proposed - overhead == baseline (no overhead in\n"
      << "normal operation: the CR stack is dormant until triggered);\n"
      << "(2) migration grows with the per-VM footprint (FT largest);\n"
      << "(3) hotplug and link-up are constant across the four kernels.\n"
      << "The paper's Fig 7 bars (class D on real hardware) are 600-1100 s\n"
      << "with migration segments ordered by footprint — compare shapes, not\n"
      << "absolute seconds (see EXPERIMENTS.md).\n";
  return 0;
}
