// Scalability study (paper §V: "Our evaluation lacks scalability tests,
// but the proposed mechanism is essentially scalable. ... The migration
// time may significantly increase as the number of hosts increases due to
// network congestion").
//
// Sweeps:
//   1. episode total vs number of VMs (fallback IB -> Eth, 1:1 hosts) —
//      migrations run concurrently over disjoint host pairs, so the wall
//      time should be ~flat (the mechanism scales);
//   2. episode total vs ranks per VM — coordination is the only part that
//      can grow, and it is noise;
//   3. consolidation ratio (destination hosts < VMs) — incast onto fewer
//      receivers is where congestion actually shows up;
//   4. wide-area sweep: Ethernet fabric latency 30 us -> 50 ms (the §II
//      disaster-recovery / intercloud use case);
//   5. sharded federated pods: P isolated pods, each on its own
//      FluidDomain, constructed in parallel (one thread per pod) — the
//      merged timeline must stay bit-identical to the single-scheduler
//      serial build;
//   6. parallel dirty-domain solving: the SolvePool computes dirty pods on
//      worker threads, commits in canonical order — timeline bit-identical
//      to the serial drain;
//   7. cross-domain boundary flows: inter-pod transfers traverse a shared
//      spine switch in a separate core domain, so every transfer is a
//      boundary flow spanning three FluidDomains; the ghost-capacity
//      exchange must converge to the same timeline at every worker count
//      (`--sweep7` emits the machine-readable digest used by CI);
//   8. federated evacuation: two testbeds coupled by a calibrated 50 ms /
//      1 Gbps / 0.1 % WanLink, four VMs live-migrated cross-site onto two
//      hosts — the full §II disaster-recovery path with the WAN CapPolicy
//      folding into every boundary offer; timeline must stay bit-identical
//      at every worker count (`--sweep8` emits the CI digest).
//   9. planned mass evacuation over a 5-site mesh: MassEvacuation drains
//      every VM off the source site through the EvacuationPlanner's wave
//      schedule (one refuge two hops out, so multi-hop WAN routes carry
//      real traffic). Three gates: the evacuation timeline is bit-identical
//      at every worker count, the batched plan's makespan beats the
//      naive-sequential baseline, and every exchange converges (`--sweep9`
//      emits the CI digest).
//  10. SLO-visible migration under open-loop service load: a small KvService
//      (2 servers, 2 client fleets of Poisson/zipfian traffic) keeps serving
//      while one loaded server migrates. Four gates: the service+migration
//      timeline (request digest + final instant) is bit-identical at every
//      worker count, offered load is conserved (every generated request
//      completes), the overall p999 stays under a fixed ceiling, and every
//      exchange converges (`--sweep10` emits the CI digest).
//  11. oversubscribed Clos evacuation: the source site drains 24 VMs racked
//      under three 4:1-oversubscribed leaves into two 2-leaf refuges, with
//      the leaf-aware planner vs the topology-blind baseline. Four gates:
//      the aware timeline is bit-identical at every worker count, the
//      aware makespan is never worse than the blind one, every VM lands,
//      and every exchange converges (`--sweep11` emits the CI digest).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/evacuation_driver.h"
#include "core/federation.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/service_episode.h"
#include "core/testbed.h"
#include "hw/cluster.h"
#include "net/port.h"
#include "sim/fluid.h"
#include "sim/fluid_net.h"
#include "sim/solve_pool.h"
#include "util/table.h"
#include "workloads/kv_service.h"
#include "workloads/bcast_reduce.h"

namespace {

using namespace nm;

struct RunConfig {
  int vms = 4;
  std::size_t ranks_per_vm = 1;
  int dst_hosts = 4;
  Duration eth_latency = Duration::micros(30);
  bool rdma = false;
};

core::NinjaStats run_fallback(const RunConfig& rc) {
  core::TestbedConfig tcfg;
  tcfg.eth.latency = rc.eth_latency;
  tcfg.migration.use_rdma = rc.rdma;
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.vm_count = rc.vms;
  cfg.ranks_per_vm = rc.ranks_per_vm;
  cfg.vm_template.memory = Bytes::gib(8);
  cfg.vm_template.base_os_footprint = Bytes::gib(1);
  core::MpiJob job(tb, cfg);
  job.init();

  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::mib(512);
  wcfg.iterations = 200;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });

  core::NinjaStats stats;
  tb.sim().spawn([](core::MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b,
                    int hosts, core::NinjaStats& st) -> sim::Task {
    co_await b->wait_step(2);
    co_await j.fallback_migration(hosts, &st);
  }(job, bench, rc.dst_hosts, stats));
  tb.sim().run_until(TimePoint::origin() + Duration::minutes(60));
  return stats;
}

// --- Sweep 5: sharded pods with parallel construction -----------------------

constexpr int kNodesPerPod = 8192;
// The flow program runs over a slice of each pod: the sweep measures
// construction scaling, the flows only pin the merged-timeline digest.
constexpr int kFlowNodes = 64;

struct Pod {
  std::unique_ptr<hw::Cluster> cluster;
  std::vector<std::unique_ptr<net::NicPort>> ports;
};

// Builds one isolated pod (nodes + NIC ports) entirely inside `domain`.
// Pure resource registration: no simulation posts, so pods on distinct
// domains can be built from distinct threads.
Pod build_pod(sim::FluidDomain& domain, int p, int node_count = kNodesPerPod) {
  Pod pod;
  pod.cluster = std::make_unique<hw::Cluster>("pod" + std::to_string(p));
  pod.ports.reserve(static_cast<std::size_t>(node_count));
  for (int n = 0; n < node_count; ++n) {
    hw::NodeSpec spec;
    spec.name = "pod" + std::to_string(p) + ":n" + std::to_string(n);
    auto& node = pod.cluster->add_node(domain, spec);
    pod.ports.push_back(std::make_unique<net::NicPort>(node, spec.name + ":eth",
                                                       Bandwidth::gib_per_sec(10.0)));
  }
  return pod;
}

// Starts the pods' flow program serially (flow admission posts settle
// events on the shared clock) and drains the merged timeline. The returned
// final time is the cross-pod digest: it covers every pod's completion.
std::int64_t run_pod_flows(sim::Simulation& sim, std::vector<Pod>& pods,
                           const std::vector<sim::FluidDomain*>& pod_domain,
                           int flow_nodes = kFlowNodes) {
  for (std::size_t p = 0; p < pods.size(); ++p) {
    auto& sched = pod_domain[p]->scheduler();
    for (int n = 0; n < flow_nodes; ++n) {
      auto& node = pods[p].cluster->node(static_cast<std::size_t>(n));
      // A compute flow plus a ring transfer to the next node's NIC: the
      // slice forms one connected zone, so it must stay on one domain.
      sched.start(
          sim::FlowSpec{.work = (n + 1) * 0.05, .max_rate = 1.0}.over(node.cpu()));
      sched.start(sim::FlowSpec{.work = 1e8 * (n + 1)}
                      .over(pods[p].ports[static_cast<std::size_t>(n)]->tx())
                      .over(pods[p]
                                .ports[static_cast<std::size_t>((n + 1) % flow_nodes)]
                                ->rx()));
    }
  }
  return sim.run().count_nanos();
}

struct ShardResult {
  double construct_ms = 0.0;
  std::int64_t final_ns = 0;
};

ShardResult run_sharded(int pods, bool parallel) {
  sim::Simulation sim;
  std::vector<std::unique_ptr<sim::FluidDomain>> domains;
  std::vector<sim::FluidDomain*> pod_domain;
  if (parallel) {
    for (int p = 0; p < pods; ++p) {
      domains.push_back(std::make_unique<sim::FluidDomain>(sim, "pod" + std::to_string(p)));
      pod_domain.push_back(domains.back().get());
    }
  } else {
    domains.push_back(std::make_unique<sim::FluidDomain>(sim, "all-pods"));
    pod_domain.assign(static_cast<std::size_t>(pods), domains.front().get());
  }

  std::vector<Pod> built(static_cast<std::size_t>(pods));
  const auto start = std::chrono::steady_clock::now();
  if (parallel) {
    // One worker per hardware thread (not per pod): on a single-core host
    // this degrades gracefully to ~serial cost instead of paying thread
    // thrash for nothing.
    const int workers_n =
        std::min(pods, std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(workers_n));
    for (int w = 0; w < workers_n; ++w) {
      workers.emplace_back([&built, &pod_domain, pods, workers_n, w] {
        for (int p = w; p < pods; p += workers_n) {
          built[static_cast<std::size_t>(p)] =
              build_pod(*pod_domain[static_cast<std::size_t>(p)], p);
        }
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
  } else {
    for (int p = 0; p < pods; ++p) {
      built[static_cast<std::size_t>(p)] = build_pod(*pod_domain[static_cast<std::size_t>(p)], p);
    }
  }
  const auto built_at = std::chrono::steady_clock::now();

  ShardResult res;
  res.construct_ms =
      std::chrono::duration<double, std::milli>(built_at - start).count();
  res.final_ns = run_pod_flows(sim, built, pod_domain);
  return res;
}

// --- Sweep 6: parallel dirty-domain solving (SolvePool) ---------------------

// Each pod is a ring of NIC flows plus per-node compute flows — one fat
// ~N-flow component and N singletons per pod. Every pod runs the same
// program, so each completion instant dirties all P domains at once: the
// SolvePool's settle batches genuinely span domains, and the expensive
// progressive-filling re-solve of each pod's ring runs on a different
// worker. Workers=0 is the no-pool serial baseline.
constexpr int kSolvePodNodes = 128;

struct SolveSweepResult {
  double wall_ms = 0.0;
  std::int64_t final_ns = 0;
  std::size_t parallel_settles = 0;
  std::size_t max_batch = 0;
};

SolveSweepResult run_parallel_solve(int pods, int workers) {
  sim::Simulation sim;
  std::unique_ptr<sim::SolvePool> pool;
  if (workers > 0) {
    pool = std::make_unique<sim::SolvePool>(sim, workers);
  }
  std::vector<std::unique_ptr<sim::FluidDomain>> domains;
  std::vector<sim::FluidDomain*> pod_domain;
  for (int p = 0; p < pods; ++p) {
    domains.push_back(std::make_unique<sim::FluidDomain>(sim, "pod" + std::to_string(p)));
    if (pool != nullptr) {
      pool->attach(domains.back()->scheduler());
    }
    pod_domain.push_back(domains.back().get());
  }
  std::vector<Pod> built;
  built.reserve(static_cast<std::size_t>(pods));
  for (int p = 0; p < pods; ++p) {
    built.push_back(build_pod(*pod_domain[static_cast<std::size_t>(p)], p, kSolvePodNodes));
  }

  SolveSweepResult res;
  const auto start = std::chrono::steady_clock::now();
  res.final_ns = run_pod_flows(sim, built, pod_domain, kSolvePodNodes);
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  if (pool != nullptr) {
    res.parallel_settles = pool->parallel_settle_count();
    res.max_batch = pool->max_batch_size();
  }
  // Domains detach in ~Pod/domain destruction order; the pool (destroyed
  // last among locals) must outlive them, which the declaration order above
  // guarantees: pool > domains > built.
  return res;
}

// --- Sweep 7: cross-domain boundary flows through a shared spine ------------

// P pods, each its own FluidNet domain, plus a "core" domain holding one
// shared spine-switch resource. Every inter-pod transfer crosses three
// domains (source tx -> spine -> destination rx), so it is admitted as a
// boundary flow and settled through the ghost-capacity exchange. The local
// compute flows keep each pod's domain genuinely busy at the same instants,
// making the exchange batches span domains. The invariant is the same as
// sweeps 5/6: the merged timeline is bit-identical at every worker count.
constexpr int kCrossPodNodes = 32;

struct CrossDomainResult {
  double wall_ms = 0.0;
  std::int64_t final_ns = 0;
  std::size_t peak_boundary = 0;    // boundary flows registered after admission
  std::size_t exchange_rounds = 0;  // total exchange iterations across settles
  std::size_t unconverged = 0;      // settles that hit the round cap (must be 0)
};

CrossDomainResult run_cross_domain(int pods, int workers) {
  sim::Simulation sim;
  sim::FluidNet net(sim, workers);
  auto& core = net.add_domain("core");
  sim::FluidResource spine(core.scheduler(), "spine", 40e9);
  std::vector<sim::FluidDomain*> pod_domain;
  pod_domain.reserve(static_cast<std::size_t>(pods));
  for (int p = 0; p < pods; ++p) {
    pod_domain.push_back(&net.add_domain("pod" + std::to_string(p)));
  }
  std::vector<Pod> built;
  built.reserve(static_cast<std::size_t>(pods));
  for (int p = 0; p < pods; ++p) {
    built.push_back(build_pod(*pod_domain[static_cast<std::size_t>(p)], p, kCrossPodNodes));
  }

  for (int p = 0; p < pods; ++p) {
    auto& pod = built[static_cast<std::size_t>(p)];
    auto& next = built[static_cast<std::size_t>((p + 1) % pods)];
    for (int n = 0; n < kCrossPodNodes; ++n) {
      auto& node = pod.cluster->node(static_cast<std::size_t>(n));
      // Pod-local compute: stays inside the pod's own domain.
      net.start(sim::FlowSpec{.work = (n + 1) * 0.05, .max_rate = 1.0}.over(node.cpu()));
      if (n % 4 == 0) {
        // Inter-pod transfer to the neighbour pod through the spine: a
        // boundary flow spanning pod p, core, and pod p+1.
        net.start(sim::FlowSpec{.work = 1e8 * (n + 1)}
                      .over(pod.ports[static_cast<std::size_t>(n)]->tx())
                      .over(spine)
                      .over(next.ports[static_cast<std::size_t>(n)]->rx()));
      }
    }
  }

  CrossDomainResult res;
  res.peak_boundary = net.boundary_flow_count();
  const auto start = std::chrono::steady_clock::now();
  res.final_ns = sim.run().count_nanos();
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  res.exchange_rounds = net.exchange_round_count();
  res.unconverged = net.unconverged_exchange_count();
  return res;
}

// Deterministic digest of sweep 7 for the CI baseline diff: only the
// simulated-time results (never wall-clock) go into the JSON.
void write_sweep7_json(const std::vector<std::array<std::int64_t, 3>>& rows) {
  std::ofstream out("BENCH_scalability_sweep7.json");
  out << "{\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "  \"pods" << rows[i][0] << "_workers" << rows[i][1]
        << "_final_ns\": " << rows[i][2] << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "}\n";
}

int run_sweep7(bool json_only) {
  std::cout << "\n7. Cross-domain boundary flows (" << kCrossPodNodes
            << "-node pods, shared spine in a core domain, inter-pod transfers\n"
               "   span 3 domains via the ghost-capacity exchange):\n";
  TextTable t7({"pods", "workers", "drain [ms]", "boundary flows", "exch rounds",
                "timeline"});
  std::vector<std::array<std::int64_t, 3>> json_rows;
  bool diverged = false;
  for (const int pods : {2, 4}) {
    CrossDomainResult baseline;
    for (const int workers : {0, 1, 2, 4}) {
      const auto r = run_cross_domain(pods, workers);
      if (workers == 0) {
        baseline = r;
      }
      diverged = diverged || r.final_ns != baseline.final_ns || r.unconverged != 0;
      t7.add_row({std::to_string(pods),
                  workers == 0 ? "0 (serial)" : std::to_string(workers),
                  TextTable::num(r.wall_ms, 2), std::to_string(r.peak_boundary),
                  std::to_string(r.exchange_rounds),
                  r.final_ns == baseline.final_ns
                      ? (workers == 0 ? "baseline" : "bit-identical")
                      : "DIVERGED"});
      json_rows.push_back({pods, workers, r.final_ns});
    }
  }
  if (!json_only) {
    t7.render(std::cout);
    std::cout << "Each transfer's home flow lives in its source pod; ghost flows\n"
                 "mirror it onto the spine and the destination pod, and the settle\n"
                 "loop iterates publish/re-solve until the boundary rates reach a\n"
                 "fixed point. Commits still replay in canonical (domain, component)\n"
                 "order, so the timeline is bit-identical at every worker count.\n";
  }
  write_sweep7_json(json_rows);
  return diverged ? 1 : 0;
}

// --- Sweep 8: federated evacuation over a calibrated WAN --------------------

struct FederatedResult {
  std::int64_t final_ns = 0;
  std::int64_t evac_done_ns = 0;
  std::size_t exchange_rounds = 0;
  std::size_t unconverged = 0;
  double wall_ms = 0.0;
};

sim::Task evacuate_vm(vmm::Vm& vm, vmm::Host& dst) {
  co_await vm.host().migrate(vm, dst);
}

FederatedResult run_federated_evacuation(int workers) {
  core::FederationConfig fcfg;
  fcfg.site_a.ib_nodes = 0;
  fcfg.site_a.eth_nodes = 4;
  fcfg.site_b.ib_nodes = 0;
  fcfg.site_b.eth_nodes = 2;
  fcfg.wan.line_rate = Bandwidth::gbps(1);    // the paper's continental target
  fcfg.wan.rtt = Duration::millis(50);
  fcfg.wan.loss = 0.001;
  fcfg.solve_workers = workers;
  core::Federation fed(fcfg);

  std::vector<std::shared_ptr<vmm::Vm>> vms;
  for (int i = 0; i < 4; ++i) {
    vmm::VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    spec.memory = Bytes::gib(2);
    spec.base_os_footprint = Bytes::mib(256);
    auto vm = fed.site_a().boot_vm(fed.site_a().eth_host(i), spec, /*with_hca=*/false);
    vm->memory().write_data(Bytes::zero(), Bytes::mib(512));
    vms.push_back(std::move(vm));
  }
  fed.settle();

  FederatedResult res;
  const auto start = std::chrono::steady_clock::now();
  std::vector<sim::TaskRef> refs;
  for (int i = 0; i < 4; ++i) {
    // Consolidate 4 VMs onto the safe site's 2 hosts, all concurrently
    // sharing the Mathis-limited link.
    vmm::Host* dst = fed.find_host(i % 2 == 0 ? "b:eth0" : "b:eth1");
    refs.push_back(fed.sim().spawn(evacuate_vm(*vms[static_cast<std::size_t>(i)], *dst),
                                   "evac" + std::to_string(i)));
  }
  fed.sim().spawn([](core::Federation& f, std::vector<sim::TaskRef> r,
                     FederatedResult& out) -> sim::Task {
    co_await sim::join_all(std::move(r));
    out.evac_done_ns = f.sim().now().count_nanos();
  }(fed, std::move(refs), res));
  res.final_ns = fed.sim().run().count_nanos();
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  res.exchange_rounds = fed.exchange_round_count();
  res.unconverged = fed.unconverged_exchange_count();
  return res;
}

void write_sweep8_json(const std::vector<std::array<std::int64_t, 3>>& rows) {
  std::ofstream out("BENCH_scalability_sweep8.json");
  out << "{\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "  \"workers" << rows[i][0] << "_evac_done_ns\": " << rows[i][1] << ",\n"
        << "  \"workers" << rows[i][0] << "_final_ns\": " << rows[i][2]
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "}\n";
}

int run_sweep8(bool json_only) {
  std::cout << "\n8. Federated evacuation (two sites, 50 ms / 1 Gbps / 0.1 % WAN,\n"
               "   4 VMs live-migrated cross-site onto 2 hosts):\n";
  TextTable t8({"workers", "wall [ms]", "evac done [s]", "exch rounds", "timeline"});
  std::vector<std::array<std::int64_t, 3>> json_rows;
  bool diverged = false;
  FederatedResult baseline;
  for (const int workers : {0, 1, 2, 4}) {
    const auto r = run_federated_evacuation(workers);
    if (workers == 0) {
      baseline = r;
    }
    diverged = diverged || r.final_ns != baseline.final_ns ||
               r.evac_done_ns != baseline.evac_done_ns || r.unconverged != 0;
    t8.add_row({workers == 0 ? "0 (serial)" : std::to_string(workers),
                TextTable::num(r.wall_ms, 2),
                TextTable::num(static_cast<double>(r.evac_done_ns) / 1e9, 3),
                std::to_string(r.exchange_rounds),
                r.final_ns == baseline.final_ns && r.evac_done_ns == baseline.evac_done_ns
                    ? (workers == 0 ? "baseline" : "bit-identical")
                    : "DIVERGED"});
    json_rows.push_back({workers, r.evac_done_ns, r.final_ns});
  }
  if (!json_only) {
    t8.render(std::cout);
    std::cout << "Each pre-copy stream is a boundary flow through both sites' uplinks\n"
                 "and the WanLink endpoint pair; the link's CapPolicy folds the Mathis\n"
                 "ceiling into every published ghost cap, and the evacuation lands at\n"
                 "the same nanosecond at every worker count.\n";
  }
  write_sweep8_json(json_rows);
  return diverged ? 1 : 0;
}

// --- Sweep 9: planned mass evacuation over a 5-site mesh --------------------

struct MeshEvacResult {
  std::int64_t final_ns = 0;
  std::int64_t evac_done_ns = 0;
  std::int64_t makespan_ns = 0;
  int waves = 0;
  std::size_t evacuated = 0;
  std::size_t fleet = 0;
  std::size_t unconverged = 0;
  double wall_ms = 0.0;
};

MeshEvacResult run_mesh_evacuation(int workers, bool sequential) {
  // Same shape as examples/mass_evacuation.cpp, sized for CI: dc0 is the
  // failing site, dc1..dc3 are direct neighbours, dc4 is two hops out so
  // the planner's multi-hop routes carry real traffic.
  core::FederationConfig fcfg;
  core::TestbedConfig source;
  source.ib_nodes = 0;
  source.eth_nodes = 8;
  core::TestbedConfig refuge;
  refuge.ib_nodes = 0;
  refuge.eth_nodes = 4;
  fcfg.sites = {{"dc0", source}, {"dc1", refuge}, {"dc2", refuge},
                {"dc3", refuge}, {"dc4", refuge}};
  sim::WanLinkConfig metro;  // EXPERIMENTS.md metro calibration
  metro.line_rate = Bandwidth::gbps(1);
  metro.rtt = Duration::millis(5);
  metro.loss = 0.0001;
  fcfg.edges = {{0, 1, metro}, {0, 2, metro}, {0, 3, metro},
                {1, 4, metro}, {2, 4, metro}};
  fcfg.solve_workers = workers;
  core::Federation fed(fcfg);

  MeshEvacResult res;
  auto& src = fed.site(0);
  for (int h = 0; h < src.eth_host_count(); ++h) {
    for (int v = 0; v < 4; ++v) {
      vmm::VmSpec spec;
      spec.name = "vm" + std::to_string(h) + "_" + std::to_string(v);
      spec.memory = Bytes::gib(1);
      spec.base_os_footprint = Bytes::mib(128);
      auto vm = src.boot_vm(src.eth_host(h), spec, /*with_hca=*/false);
      vm->memory().write_data(Bytes::mib(128), Bytes::mib(128));
      ++res.fleet;
    }
  }
  fed.settle();

  core::EvacuationConfig ecfg;
  ecfg.source_site = 0;
  ecfg.sequential = sequential;
  core::MassEvacuation evac(fed, ecfg);
  core::EvacuationReport report;
  const auto start = std::chrono::steady_clock::now();
  fed.sim().spawn(evac.run(&report), "mass-evac");
  res.final_ns = fed.sim().run().count_nanos();
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  res.evac_done_ns = report.done_ns;
  res.makespan_ns = report.done_ns - report.started_ns;
  res.waves = report.waves;
  res.evacuated = report.evacuated;
  res.unconverged = fed.unconverged_exchange_count();
  return res;
}

void write_sweep9_json(const std::vector<std::array<std::int64_t, 3>>& rows,
                       std::int64_t planner_makespan_ns, std::int64_t sequential_makespan_ns) {
  std::ofstream out("BENCH_scalability_sweep9.json");
  out << "{\n";
  for (const auto& row : rows) {
    out << "  \"workers" << row[0] << "_evac_done_ns\": " << row[1] << ",\n"
        << "  \"workers" << row[0] << "_final_ns\": " << row[2] << ",\n";
  }
  out << "  \"planner_makespan_ns\": " << planner_makespan_ns << ",\n"
      << "  \"sequential_makespan_ns\": " << sequential_makespan_ns << "\n";
  out << "}\n";
}

int run_sweep9(bool json_only) {
  std::cout << "\n9. Planned mass evacuation (5-site mesh, 1 Gbps / 5 ms metro edges,\n"
               "   32 VMs drained off the source site by the wave planner):\n";
  TextTable t9({"workers", "wall [ms]", "makespan [s]", "waves", "evacuated", "timeline"});
  std::vector<std::array<std::int64_t, 3>> json_rows;
  bool diverged = false;
  MeshEvacResult baseline;
  for (const int workers : {0, 1, 2, 4}) {
    const auto r = run_mesh_evacuation(workers, /*sequential=*/false);
    if (workers == 0) {
      baseline = r;
    }
    diverged = diverged || r.final_ns != baseline.final_ns ||
               r.evac_done_ns != baseline.evac_done_ns || r.waves != baseline.waves ||
               r.evacuated != r.fleet || r.unconverged != 0;
    t9.add_row({workers == 0 ? "0 (serial)" : std::to_string(workers),
                TextTable::num(r.wall_ms, 2),
                TextTable::num(static_cast<double>(r.makespan_ns) / 1e9, 3),
                std::to_string(r.waves),
                std::to_string(r.evacuated) + "/" + std::to_string(r.fleet),
                r.final_ns == baseline.final_ns && r.evac_done_ns == baseline.evac_done_ns
                    ? (workers == 0 ? "baseline" : "bit-identical")
                    : "DIVERGED"});
    json_rows.push_back({workers, r.evac_done_ns, r.final_ns});
  }
  const auto naive = run_mesh_evacuation(/*workers=*/0, /*sequential=*/true);
  const bool planner_beats_sequential = baseline.makespan_ns < naive.makespan_ns;
  diverged = diverged || !planner_beats_sequential || naive.evacuated != naive.fleet ||
             naive.unconverged != 0;
  if (!json_only) {
    t9.render(std::cout);
    std::cout << "Naive-sequential baseline: "
              << TextTable::num(static_cast<double>(naive.makespan_ns) / 1e9, 3)
              << " s; the batched plan "
              << (planner_beats_sequential ? "wins" : "LOSES — GATE FAILED") << " ("
              << TextTable::num(static_cast<double>(naive.makespan_ns) /
                                    static_cast<double>(baseline.makespan_ns),
                                2)
              << "x). Every wave grant reads the live mesh and re-runs the max-min\n"
                 "rate assignment, yet all inputs are deterministic functions of\n"
                 "simulated state, so the whole evacuation lands at the same\n"
                 "nanosecond at every worker count.\n";
  }
  write_sweep9_json(json_rows, baseline.makespan_ns, naive.makespan_ns);
  return diverged ? 1 : 0;
}

// --- Sweep 10: SLO-visible migration under open-loop service load -----------

struct ServiceSloResult {
  std::int64_t final_ns = 0;
  std::uint64_t digest = 0;
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  std::uint64_t misses = 0;
  std::int64_t p999_ns = 0;
  std::int64_t blackout_ns = 0;
  std::size_t unconverged = 0;
  double wall_ms = 0.0;
};

ServiceSloResult run_service_slo(int workers) {
  // CI-sized cousin of examples/live_service: 2 KV servers under 2 fleets
  // of open-loop traffic, the loaded kv0 migrated onto a spare blade while
  // its clients keep hammering it.
  core::TestbedConfig config;
  config.solve_workers = workers;
  // Second (empty) shard: force the SolvePool on even at 0 workers so the
  // sweep compares the pool's settle schedule against itself and measures
  // parallelism alone (the legacy zero-delay path is a different — equally
  // deterministic — same-instant event order; see DESIGN.md §10).
  config.fluid_shards = 2;
  core::Testbed testbed(config);

  workloads::KvServiceConfig svc;
  svc.replicas = 2;
  svc.zipf_s = 0.7;
  svc.service_core_seconds = 1.0e-3;
  svc.worker_threads = 4;
  svc.deadline = Duration::millis(15);
  svc.write_fraction = 0.25;
  svc.value_bytes = Bytes::kib(8);
  workloads::KvService service(testbed, svc);

  std::vector<std::shared_ptr<vmm::Vm>> vms;
  for (int i = 0; i < 2; ++i) {
    vmm::VmSpec spec;
    spec.name = "kv" + std::to_string(i);
    spec.memory = Bytes::mib(192);
    spec.base_os_footprint = Bytes::mib(64);
    vms.push_back(testbed.boot_vm(testbed.eth_host(i), spec, /*with_hca=*/false));
    service.add_server(vms.back());
  }
  for (int i = 0; i < 2; ++i) {
    workloads::ClientFleetConfig fleet;
    fleet.name = "fleet" + std::to_string(i);
    fleet.rate_per_sec = 600.0;
    fleet.window = Duration::seconds(3);
    service.add_fleet(testbed.ib_host(i), fleet);
  }
  testbed.settle();

  core::ServiceEpisode episode(testbed.sim());
  service.observe_migration(&episode.live());
  service.start();
  (void)episode.start(
      core::EpisodeSpec(vms[0], testbed.eth_host(2)).after(Duration::millis(500)));

  const auto start = std::chrono::steady_clock::now();
  const TimePoint end = testbed.sim().run_for(Duration::seconds(23));
  ServiceSloResult res;
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  res.final_ns = end.count_nanos();
  res.digest = service.digest();
  res.generated = service.generated();
  res.completed = service.completed();
  res.misses = service.deadline_misses();
  res.p999_ns = service.overall().percentile(0.999).count_nanos();
  if (episode.done()) {
    res.blackout_ns = episode.report().blackout.count_nanos();
  }
  res.unconverged = testbed.unconverged_exchange_count();
  return res;
}

void write_sweep10_json(const std::vector<std::array<std::int64_t, 2>>& rows,
                        const ServiceSloResult& baseline) {
  std::ofstream out("BENCH_scalability_sweep10.json");
  out << "{\n";
  for (const auto& row : rows) {
    out << "  \"workers" << row[0] << "_final_ns\": " << row[1] << ",\n";
  }
  out << "  \"service_digest\": " << baseline.digest << ",\n"
      << "  \"requests\": " << baseline.generated << ",\n"
      << "  \"deadline_misses\": " << baseline.misses << ",\n"
      << "  \"p999_ns\": " << baseline.p999_ns << ",\n"
      << "  \"blackout_ns\": " << baseline.blackout_ns << "\n";
  out << "}\n";
}

int run_sweep10(bool json_only) {
  // Overall p999 ceiling: steady-state p999 in this scenario is ~6 ms; the
  // blackout cohort tops out around the ~20 ms pause. 50 ms of headroom
  // means the gate only trips on a real queueing regression.
  constexpr std::int64_t kP999CeilingNs = 50'000'000;
  std::cout << "\n10. Open-loop KV service under migration (2 servers, 1,200 req/s,\n"
               "    kv0 migrated at t=0.5 s while serving):\n";
  TextTable t10({"workers", "wall [ms]", "req/s (wall)", "requests", "p999 [ms]",
                 "blackout [ms]", "timeline"});
  std::vector<std::array<std::int64_t, 2>> json_rows;
  // Best-of over *throughput*: larger is better — the direction parameter
  // this sweep exists to exercise (a latency-style min would report the
  // slowest run as the best).
  BestOf throughput(BestOf::Direction::kLargerIsBetter);
  bool diverged = false;
  ServiceSloResult baseline;
  for (const int workers : {0, 1, 2, 4}) {
    const auto r = run_service_slo(workers);
    if (workers == 0) {
      baseline = r;
    }
    diverged = diverged || r.final_ns != baseline.final_ns || r.digest != baseline.digest ||
               r.completed != r.generated || r.p999_ns > kP999CeilingNs ||
               r.blackout_ns <= 0 || r.unconverged != 0;
    const double rps = static_cast<double>(r.completed) / (r.wall_ms / 1000.0);
    throughput.add(rps);
    t10.add_row({workers == 0 ? "0 (serial)" : std::to_string(workers),
                 TextTable::num(r.wall_ms, 2), TextTable::num(rps, 0),
                 std::to_string(r.completed) + "/" + std::to_string(r.generated),
                 TextTable::num(static_cast<double>(r.p999_ns) / 1e6, 2),
                 TextTable::num(static_cast<double>(r.blackout_ns) / 1e6, 2),
                 r.final_ns == baseline.final_ns && r.digest == baseline.digest
                     ? (workers == 0 ? "baseline" : "bit-identical")
                     : "DIVERGED"});
    NM_CHECK(throughput.best() >= rps,
             "BestOf(kLargerIsBetter) returned a non-maximal throughput");
    json_rows.push_back({workers, r.final_ns});
  }
  if (!json_only) {
    t10.render(std::cout);
    std::cout << "Every request is real fabric traffic competing with the migration\n"
              << "stream, yet arrivals are pre-drawn and pinned to absolute instants,\n"
              << "so the whole service timeline lands bit-identically at every worker\n"
              << "count. Best wall throughput: " << TextTable::num(throughput.best(), 0)
              << " req/s (spread " << TextTable::num(throughput.spread(), 0) << ").\n";
  }
  write_sweep10_json(json_rows, baseline);
  return diverged ? 1 : 0;
}

// --- Sweep 11: oversubscribed Clos evacuation, leaf-aware vs blind ----------

struct ClosEvacResult {
  std::int64_t final_ns = 0;
  std::int64_t evac_done_ns = 0;
  std::int64_t makespan_ns = 0;
  int waves = 0;
  std::size_t evacuated = 0;
  std::size_t fleet = 0;
  std::size_t unconverged = 0;
  double wall_ms = 0.0;
};

ClosEvacResult run_clos_evacuation(int workers, bool topology_blind) {
  // CI-sized cousin of `examples/mass_evacuation`'s Clos scenario: dc0
  // drains 12 hosts racked 4-per-leaf under three 4:1-oversubscribed
  // leaves into two 2-leaf 2:1 refuges. Equal VM sizes make the blind
  // big-first order equal the boot order, so a topology-blind first wave
  // piles onto leaf 0's single 1.25 GB/s uplink while the leaf-aware
  // planner spreads sources across racks and caps refuge-leaf incast.
  constexpr double kStreamCap = 500e6;  // bytes/s per migration thread
  core::FederationConfig fcfg;
  core::TestbedConfig source;
  source.ib_nodes = 0;
  source.eth_nodes = 12;
  source.clos.leaves = 3;
  source.clos.spines = 1;
  source.clos.hosts_per_leaf = 4;
  source.clos.oversubscription = 4.0;  // leaf uplink 1.25 GB/s vs 5 GB/s of hosts
  source.migration.thread_send_rate = kStreamCap;
  core::TestbedConfig refuge;
  refuge.ib_nodes = 0;
  refuge.eth_nodes = 4;
  refuge.clos.leaves = 2;
  refuge.clos.spines = 1;
  refuge.clos.hosts_per_leaf = 2;
  refuge.clos.oversubscription = 2.0;  // two 500 MB/s incast slots per leaf
  refuge.migration.thread_send_rate = kStreamCap;
  fcfg.sites = {{"dc0", source}, {"dc1", refuge}, {"dc2", refuge}};
  sim::WanLinkConfig wan;
  wan.line_rate = Bandwidth::gbps(40);
  wan.rtt = Duration::millis(5);
  wan.loss = 0.00001;
  fcfg.edges = {{0, 1, wan}, {0, 2, wan}};
  fcfg.uplink_rate = Bandwidth::gbps(100);  // WAN gateways are not the story
  fcfg.solve_workers = workers;
  core::Federation fed(fcfg);

  ClosEvacResult res;
  auto& src = fed.site(0);
  for (int h = 0; h < src.eth_host_count(); ++h) {
    for (int v = 0; v < 2; ++v) {
      vmm::VmSpec spec;
      spec.name = "vm" + std::to_string(h) + "_" + std::to_string(v);
      spec.memory = Bytes::gib(1);
      spec.base_os_footprint = Bytes::mib(128);
      auto vm = src.boot_vm(src.eth_host(h), spec, /*with_hca=*/false);
      vm->memory().write_data(Bytes::mib(128), Bytes::mib(768));
      ++res.fleet;
    }
  }
  fed.settle();

  core::EvacuationConfig ecfg;
  ecfg.source_site = 0;
  ecfg.topology_blind = topology_blind;
  ecfg.planner.stream_rate_cap = kStreamCap;
  core::MassEvacuation evac(fed, ecfg);
  core::EvacuationReport report;
  const auto start = std::chrono::steady_clock::now();
  fed.sim().spawn(evac.run(&report), "clos-evac");
  res.final_ns = fed.sim().run().count_nanos();
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  res.evac_done_ns = report.done_ns;
  res.makespan_ns = report.done_ns - report.started_ns;
  res.waves = report.waves;
  res.evacuated = report.evacuated;
  res.unconverged = fed.unconverged_exchange_count();
  return res;
}

void write_sweep11_json(const std::vector<std::array<std::int64_t, 3>>& rows,
                        std::int64_t aware_makespan_ns, std::int64_t blind_makespan_ns) {
  std::ofstream out("BENCH_scalability_sweep11.json");
  out << "{\n";
  for (const auto& row : rows) {
    out << "  \"workers" << row[0] << "_evac_done_ns\": " << row[1] << ",\n"
        << "  \"workers" << row[0] << "_final_ns\": " << row[2] << ",\n";
  }
  out << "  \"aware_makespan_ns\": " << aware_makespan_ns << ",\n"
      << "  \"blind_makespan_ns\": " << blind_makespan_ns << "\n";
  out << "}\n";
}

int run_sweep11(bool json_only) {
  std::cout << "\n11. Oversubscribed Clos evacuation (3x4:1 source leaves, 2-leaf 2:1\n"
               "    refuges, 24 VMs; leaf-aware planner vs topology-blind):\n";
  TextTable t11({"workers", "wall [ms]", "makespan [s]", "waves", "evacuated",
                 "timeline"});
  std::vector<std::array<std::int64_t, 3>> json_rows;
  bool diverged = false;
  ClosEvacResult baseline;
  for (const int workers : {0, 1, 2, 4}) {
    const auto r = run_clos_evacuation(workers, /*topology_blind=*/false);
    if (workers == 0) {
      baseline = r;
    }
    diverged = diverged || r.final_ns != baseline.final_ns ||
               r.evac_done_ns != baseline.evac_done_ns || r.waves != baseline.waves ||
               r.evacuated != r.fleet || r.unconverged != 0;
    t11.add_row({workers == 0 ? "0 (serial)" : std::to_string(workers),
                 TextTable::num(r.wall_ms, 2),
                 TextTable::num(static_cast<double>(r.makespan_ns) / 1e9, 3),
                 std::to_string(r.waves),
                 std::to_string(r.evacuated) + "/" + std::to_string(r.fleet),
                 r.final_ns == baseline.final_ns && r.evac_done_ns == baseline.evac_done_ns
                     ? (workers == 0 ? "baseline" : "bit-identical")
                     : "DIVERGED"});
    json_rows.push_back({workers, r.evac_done_ns, r.final_ns});
  }
  const auto blind = run_clos_evacuation(/*workers=*/0, /*topology_blind=*/true);
  const bool aware_never_worse = baseline.makespan_ns <= blind.makespan_ns;
  diverged = diverged || !aware_never_worse || blind.evacuated != blind.fleet ||
             blind.unconverged != 0;
  if (!json_only) {
    t11.render(std::cout);
    std::cout << "Topology-blind baseline: "
              << TextTable::num(static_cast<double>(blind.makespan_ns) / 1e9, 3)
              << " s; the leaf-aware plan "
              << (aware_never_worse ? "wins" : "LOSES — GATE FAILED") << " ("
              << TextTable::num(static_cast<double>(blind.makespan_ns) /
                                    static_cast<double>(baseline.makespan_ns),
                                2)
              << "x). Wave grants re-run the leaf-aware max-min against the live\n"
                 "fabric, ECMP picks are salted-hash deterministic, and the whole\n"
                 "evacuation lands at the same nanosecond at every worker count.\n";
  }
  write_sweep11_json(json_rows, baseline.makespan_ns, blind.makespan_ns);
  return diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--sweep7` runs only the cross-domain sweep and emits its JSON digest
  // (BENCH_scalability_sweep7.json); CI diffs it against the committed
  // baseline. Exit code 1 on timeline divergence or unconverged exchange.
  if (argc > 1 && std::strcmp(argv[1], "--sweep7") == 0) {
    return run_sweep7(/*json_only=*/true);
  }
  // `--sweep8` likewise: only the federated evacuation, with its digest in
  // BENCH_scalability_sweep8.json.
  if (argc > 1 && std::strcmp(argv[1], "--sweep8") == 0) {
    return run_sweep8(/*json_only=*/true);
  }
  // `--sweep9` likewise: only the planned mass evacuation, with its digest
  // in BENCH_scalability_sweep9.json.
  if (argc > 1 && std::strcmp(argv[1], "--sweep9") == 0) {
    return run_sweep9(/*json_only=*/true);
  }
  // `--sweep10` likewise: only the service-under-migration SLO run, with
  // its digest in BENCH_scalability_sweep10.json.
  if (argc > 1 && std::strcmp(argv[1], "--sweep10") == 0) {
    return run_sweep10(/*json_only=*/true);
  }
  // `--sweep11` likewise: only the oversubscribed Clos evacuation, with
  // its digest in BENCH_scalability_sweep11.json.
  if (argc > 1 && std::strcmp(argv[1], "--sweep11") == 0) {
    return run_sweep11(/*json_only=*/true);
  }
  bench::print_header("Scalability", "episode cost sweeps (paper SS V discussion)");

  std::cout << "\n1. VM count (1 VM per destination host, 8 GiB guests):\n";
  TextTable t1({"VMs", "episode total [s]", "migration [s]"});
  for (const int vms : {2, 4, 6, 8}) {
    RunConfig rc;
    rc.vms = vms;
    rc.dst_hosts = vms;
    const auto st = run_fallback(rc);
    t1.add_row({std::to_string(vms), TextTable::num(st.total.to_seconds()),
                TextTable::num(st.migration.to_seconds())});
  }
  t1.render(std::cout);
  std::cout << "Concurrent migrations over disjoint pairs: wall time ~flat — the\n"
               "mechanism itself scales, as the paper argues.\n";

  std::cout << "\n2. Ranks per VM (4 VMs):\n";
  TextTable t2({"ranks/VM", "total ranks", "episode total [s]", "coordination [s]"});
  for (const std::size_t rpv : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
    RunConfig rc;
    rc.ranks_per_vm = rpv;
    const auto st = run_fallback(rc);
    t2.add_row({std::to_string(rpv), std::to_string(4 * rpv),
                TextTable::num(st.total.to_seconds()),
                TextTable::num(st.coordination.to_seconds())});
  }
  t2.render(std::cout);

  std::cout << "\n3. Consolidation ratio (8 VMs onto fewer hosts — incast):\n";
  TextTable t3({"dst hosts", "VMs/host", "migration TCP [s]", "migration RDMA [s]"});
  for (const int hosts : {8, 4, 2, 1}) {
    RunConfig rc;
    rc.vms = 8;
    rc.dst_hosts = hosts;
    const auto tcp = run_fallback(rc);
    rc.rdma = true;
    const auto rdma = run_fallback(rc);
    t3.add_row({std::to_string(hosts), std::to_string(8 / hosts),
                TextTable::num(tcp.migration.to_seconds()),
                TextTable::num(rdma.migration.to_seconds())});
  }
  t3.render(std::cout);
  std::cout << "With the CPU-bound TCP sender (1.3 Gb/s each) the receivers never\n"
               "saturate; remove that cap (RDMA migration) and receiver-side\n"
               "congestion appears as VMs pile onto fewer hosts — the congestion\n"
               "effect the paper flags as the open scalability issue.\n";

  std::cout << "\n4. Wide-area latency sweep (4 VMs, disaster-recovery use case):\n";
  TextTable t4({"eth one-way latency", "episode total [s]", "migration [s]"});
  for (const double ms : {0.03, 2.0, 10.0, 50.0}) {
    RunConfig rc;
    rc.eth_latency = Duration::seconds(ms / 1000.0);
    const auto st = run_fallback(rc);
    t4.add_row({TextTable::num(ms, 2) + " ms", TextTable::num(st.total.to_seconds()),
                TextTable::num(st.migration.to_seconds())});
  }
  t4.render(std::cout);
  std::cout << "Bulk pre-copy is bandwidth-bound, so WAN latency barely moves the\n"
               "episode; the job's own traffic pays for it instead.\n";

  std::cout << "\n5. Sharded pods (" << kNodesPerPod
            << " nodes each; serial 1-scheduler build vs parallel per-pod domains, "
            << std::max(1U, std::thread::hardware_concurrency()) << " hw thread(s)):\n";
  TextTable t5({"pods", "serial build [ms]", "parallel build [ms]", "speedup",
                "timeline"});
  for (const int pods : {2, 4, 8}) {
    const auto serial = run_sharded(pods, /*parallel=*/false);
    const auto sharded = run_sharded(pods, /*parallel=*/true);
    t5.add_row({std::to_string(pods), TextTable::num(serial.construct_ms, 2),
                TextTable::num(sharded.construct_ms, 2),
                TextTable::num(serial.construct_ms / sharded.construct_ms, 2) + "x",
                serial.final_ns == sharded.final_ns ? "bit-identical" : "DIVERGED"});
  }
  t5.render(std::cout);
  std::cout << "Pods are disjoint zones, so per-pod FluidDomains are a valid\n"
               "sharding: domains solve independently, their timers merge through\n"
               "the one deterministic event queue, and the timeline matches the\n"
               "single-scheduler build bit for bit. Build speedup tracks the host's\n"
               "core count (on a 1-core container the column only shows thread\n"
               "overhead); the timeline column is the invariant that matters.\n";

  std::cout << "\n6. Parallel dirty-domain solving (" << kSolvePodNodes
            << "-node rings, 1 FluidDomain per pod, SolvePool settle; host has "
            << std::max(1U, std::thread::hardware_concurrency()) << " hw thread(s)):\n";
  TextTable t6({"pods", "workers", "drain [ms]", "speedup", "par settles",
                "max batch", "timeline"});
  for (const int pods : {2, 4}) {
    const auto baseline = run_parallel_solve(pods, /*workers=*/0);
    t6.add_row({std::to_string(pods), "0 (serial)", TextTable::num(baseline.wall_ms, 2),
                "1.00x", "-", "-", "baseline"});
    for (const int workers : {2, 4}) {
      const auto r = run_parallel_solve(pods, workers);
      t6.add_row({std::to_string(pods), std::to_string(workers),
                  TextTable::num(r.wall_ms, 2),
                  TextTable::num(baseline.wall_ms / r.wall_ms, 2) + "x",
                  std::to_string(r.parallel_settles), std::to_string(r.max_batch),
                  r.final_ns == baseline.final_ns ? "bit-identical" : "DIVERGED"});
    }
  }
  t6.render(std::cout);
  std::cout << "Every completion instant dirties all P pods at once, so the pool's\n"
               "settle batches span domains: compute runs on the workers, commits\n"
               "replay in canonical (domain, component) order, and the timeline\n"
               "stays bit-identical to the serial drain at every worker count.\n"
               "Speedup tracks min(pods, cores); on a 1-core host the pool only\n"
               "adds handoff overhead — the determinism column is the invariant.\n";
  const int sweep7 = run_sweep7(/*json_only=*/false);
  const int sweep8 = run_sweep8(/*json_only=*/false);
  const int sweep9 = run_sweep9(/*json_only=*/false);
  const int sweep10 = run_sweep10(/*json_only=*/false);
  const int sweep11 = run_sweep11(/*json_only=*/false);
  return sweep7 != 0   ? sweep7
         : sweep8 != 0 ? sweep8
         : sweep9 != 0 ? sweep9
         : sweep10 != 0 ? sweep10
                        : sweep11;
}
