// Scalability study (paper §V: "Our evaluation lacks scalability tests,
// but the proposed mechanism is essentially scalable. ... The migration
// time may significantly increase as the number of hosts increases due to
// network congestion").
//
// Sweeps:
//   1. episode total vs number of VMs (fallback IB -> Eth, 1:1 hosts) —
//      migrations run concurrently over disjoint host pairs, so the wall
//      time should be ~flat (the mechanism scales);
//   2. episode total vs ranks per VM — coordination is the only part that
//      can grow, and it is noise;
//   3. consolidation ratio (destination hosts < VMs) — incast onto fewer
//      receivers is where congestion actually shows up;
//   4. wide-area sweep: Ethernet fabric latency 30 us -> 50 ms (the §II
//      disaster-recovery / intercloud use case).
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/testbed.h"
#include "util/table.h"
#include "workloads/bcast_reduce.h"

namespace {

using namespace nm;

struct RunConfig {
  int vms = 4;
  std::size_t ranks_per_vm = 1;
  int dst_hosts = 4;
  Duration eth_latency = Duration::micros(30);
  bool rdma = false;
};

core::NinjaStats run_fallback(const RunConfig& rc) {
  core::TestbedConfig tcfg;
  tcfg.eth.latency = rc.eth_latency;
  tcfg.migration.use_rdma = rc.rdma;
  core::Testbed tb(tcfg);
  core::JobConfig cfg;
  cfg.vm_count = rc.vms;
  cfg.ranks_per_vm = rc.ranks_per_vm;
  cfg.vm_template.memory = Bytes::gib(8);
  cfg.vm_template.base_os_footprint = Bytes::gib(1);
  core::MpiJob job(tb, cfg);
  job.init();

  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::mib(512);
  wcfg.iterations = 200;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });

  core::NinjaStats stats;
  tb.sim().spawn([](core::MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b,
                    int hosts, core::NinjaStats& st) -> sim::Task {
    co_await b->wait_step(2);
    co_await j.fallback_migration(hosts, &st);
  }(job, bench, rc.dst_hosts, stats));
  tb.sim().run_until(TimePoint::origin() + Duration::minutes(60));
  return stats;
}

}  // namespace

int main() {
  bench::print_header("Scalability", "episode cost sweeps (paper SS V discussion)");

  std::cout << "\n1. VM count (1 VM per destination host, 8 GiB guests):\n";
  TextTable t1({"VMs", "episode total [s]", "migration [s]"});
  for (const int vms : {2, 4, 6, 8}) {
    RunConfig rc;
    rc.vms = vms;
    rc.dst_hosts = vms;
    const auto st = run_fallback(rc);
    t1.add_row({std::to_string(vms), TextTable::num(st.total.to_seconds()),
                TextTable::num(st.migration.to_seconds())});
  }
  t1.render(std::cout);
  std::cout << "Concurrent migrations over disjoint pairs: wall time ~flat — the\n"
               "mechanism itself scales, as the paper argues.\n";

  std::cout << "\n2. Ranks per VM (4 VMs):\n";
  TextTable t2({"ranks/VM", "total ranks", "episode total [s]", "coordination [s]"});
  for (const std::size_t rpv : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
    RunConfig rc;
    rc.ranks_per_vm = rpv;
    const auto st = run_fallback(rc);
    t2.add_row({std::to_string(rpv), std::to_string(4 * rpv),
                TextTable::num(st.total.to_seconds()),
                TextTable::num(st.coordination.to_seconds())});
  }
  t2.render(std::cout);

  std::cout << "\n3. Consolidation ratio (8 VMs onto fewer hosts — incast):\n";
  TextTable t3({"dst hosts", "VMs/host", "migration TCP [s]", "migration RDMA [s]"});
  for (const int hosts : {8, 4, 2, 1}) {
    RunConfig rc;
    rc.vms = 8;
    rc.dst_hosts = hosts;
    const auto tcp = run_fallback(rc);
    rc.rdma = true;
    const auto rdma = run_fallback(rc);
    t3.add_row({std::to_string(hosts), std::to_string(8 / hosts),
                TextTable::num(tcp.migration.to_seconds()),
                TextTable::num(rdma.migration.to_seconds())});
  }
  t3.render(std::cout);
  std::cout << "With the CPU-bound TCP sender (1.3 Gb/s each) the receivers never\n"
               "saturate; remove that cap (RDMA migration) and receiver-side\n"
               "congestion appears as VMs pile onto fewer hosts — the congestion\n"
               "effect the paper flags as the open scalability issue.\n";

  std::cout << "\n4. Wide-area latency sweep (4 VMs, disaster-recovery use case):\n";
  TextTable t4({"eth one-way latency", "episode total [s]", "migration [s]"});
  for (const double ms : {0.03, 2.0, 10.0, 50.0}) {
    RunConfig rc;
    rc.eth_latency = Duration::seconds(ms / 1000.0);
    const auto st = run_fallback(rc);
    t4.add_row({TextTable::num(ms, 2) + " ms", TextTable::num(st.total.to_seconds()),
                TextTable::num(st.migration.to_seconds())});
  }
  t4.render(std::cout);
  std::cout << "Bulk pre-copy is bandwidth-bound, so WAN latency barely moves the\n"
               "episode; the job's own traffic pays for it instead.\n";
  return 0;
}
