// Table II reproduction: elapsed time of hotplug and link-up for the four
// interconnect transitions, measured with self-migration (each VM migrates
// to a new QEMU on the same node), 8 VMs running memtest (2 GiB array),
// one MPI process per VM.
//
// Paper values [seconds]:
//   IB  -> IB  : hotplug 3.88, link-up 29.91
//   IB  -> Eth : hotplug 2.80, link-up  0.00
//   Eth -> IB  : hotplug 1.15, link-up 29.79
//   Eth -> Eth : hotplug 0.13, link-up  0.00
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/testbed.h"
#include "workloads/memtest.h"

namespace {

using namespace nm;

struct Case {
  const char* label;
  bool src_ib;   // VMs hold an HCA before the episode
  bool dst_ib;   // HCAs are re-attached after the self-migration
  double paper_hotplug;
  double paper_linkup;
};

core::NinjaStats run_case(const Case& c) {
  core::Testbed tb;
  core::JobConfig cfg;
  cfg.name = "memtest";
  cfg.vm_count = 8;
  cfg.ranks_per_vm = 1;
  cfg.on_ib_cluster = true;  // all 8 blades have both adapters
  cfg.with_hca = c.src_ib;
  core::MpiJob job(tb, cfg);
  job.init();

  workloads::MemtestConfig mcfg;
  mcfg.array_size = Bytes::gib(2);
  mcfg.passes = 400;  // keep the job alive across the episode
  job.launch([&job, mcfg](mpi::RankId me) -> sim::Task {
    co_await workloads::run_memtest_rank(job, me, mcfg, nullptr);
  });

  // Self-migration plan: each VM's destination is its current host.
  core::MigrationPlan plan;
  plan.vms = job.vms();
  for (const auto& vm : plan.vms) {
    plan.destinations.push_back(vm->host().name());
  }
  plan.ranks_per_vm = 1;
  if (c.dst_ib) {
    plan.attach_host_pci = core::Testbed::kHcaPciAddr;
  }

  core::NinjaStats stats;
  tb.sim().spawn([](core::Testbed& t, core::MpiJob& j, core::MigrationPlan p,
                    core::NinjaStats& st) -> sim::Task {
    co_await t.sim().delay(Duration::seconds(2.0));
    co_await j.ninja().execute(std::move(p), &st);
  }(tb, job, plan, stats));
  tb.sim().run_for(Duration::minutes(5));
  return stats;
}

}  // namespace

int main() {
  bench::print_header("Table II", "Elapsed time of hotplug and link-up [seconds]");

  const Case cases[] = {
      {"Infiniband -> Infiniband", true, true, 3.88, 29.91},
      {"Infiniband -> Ethernet", true, false, 2.80, 0.00},
      {"Ethernet -> Infiniband", false, true, 1.15, 29.79},
      {"Ethernet -> Ethernet", false, false, 0.13, 0.00},
  };
  const Duration confirm = symvirt::CoordinatorTiming{}.confirm;

  std::vector<bench::CompareRow> hotplug_rows;
  std::vector<bench::CompareRow> linkup_rows;
  for (const auto& c : cases) {
    const auto stats = run_case(c);
    hotplug_rows.push_back(
        {c.label, c.paper_hotplug, stats.hotplug(confirm).to_seconds()});
    linkup_rows.push_back(
        {c.label, c.paper_linkup, stats.linkup_excl_confirm(confirm).to_seconds()});
  }
  std::cout << "\nHotplug time (detach + re-attach + confirm):\n";
  bench::print_compare("hotplug [s]", hotplug_rows);
  std::cout << "\nLink-up time (wait until the port is usable in the guest):\n";
  bench::print_compare("link-up [s]", linkup_rows);
  std::cout << "\nCalibration identity: detach_ib=2.67 attach_ib=1.02 confirm=0.13\n"
            << "linkup_ib=29.9 reproduce all four paper rows (see DESIGN.md).\n";
  return 0;
}
