#include "vmm/vm.h"

#include <algorithm>

#include "util/log.h"
#include "vmm/host.h"

namespace nm::vmm {

Vm::Vm(sim::Simulation& sim, sim::FluidScheduler& scheduler, VmSpec spec, Host& host)
    : sim_(&sim),
      scheduler_(&scheduler),
      spec_(std::move(spec)),
      host_(&host),
      memory_(spec_.memory),
      vcpu_(scheduler, "vcpu:" + spec_.name, spec_.vcpus),
      run_gate_(sim, /*initially_open=*/true),
      hotplug_events_(sim),
      symvirt_cycle_(std::make_unique<sim::Event>(sim)),
      symvirt_entered_(std::make_unique<sim::Event>(sim)) {
  // The booted guest OS occupies incompressible memory from the start.
  if (!spec_.base_os_footprint.is_zero()) {
    memory_.write_data(Bytes::zero(), spec_.base_os_footprint);
  }
}

void Vm::set_host(Host& new_host) {
  host_ = &new_host;
  for (auto& device : devices_) {
    NM_CHECK(!device->vmm_bypass(),
             "VM " << name() << " still holds VMM-bypass device " << device->tag()
                   << " while changing hosts");
    device->host_changed(new_host.eth_uplink());
  }
}

void Vm::pause() {
  if (state_ == VmState::kPaused) {
    return;
  }
  state_ = VmState::kPaused;
  run_gate_.close();
  prune_tracked_flows();
  for (auto& weak : tracked_flows_) {
    if (auto flow = weak.lock()) {
      flow->suspend();
    }
  }
  NM_LOG_DEBUG("vmm") << name() << " paused";
}

void Vm::resume() {
  if (state_ == VmState::kRunning) {
    return;
  }
  state_ = VmState::kRunning;
  prune_tracked_flows();
  for (auto& weak : tracked_flows_) {
    if (auto flow = weak.lock()) {
      flow->resume();
    }
  }
  run_gate_.open();
  NM_LOG_DEBUG("vmm") << name() << " resumed";
}

sim::Task Vm::compute(double core_seconds) {
  co_await run_gate_.opened();
  std::vector<sim::ResourceShare> shares{{&vcpu_, 1.0}, {&host_->node().cpu(), 1.0}};
  // Routed through the host: after a migration the vCPU resource stays in
  // its boot domain while the current host's cores may live in another, so
  // guest work can be a boundary flow.
  auto flow = host_->router().start(
      sim::FlowSpec{core_seconds, std::move(shares), /*max_rate=*/1.0, {}});
  track_flow(flow);
  if (!flow->finished()) {
    co_await flow->completion().wait();
  }
}

void Vm::track_flow(const sim::FlowPtr& flow) {
  prune_tracked_flows();
  if (state_ == VmState::kPaused) {
    flow->suspend();
  }
  tracked_flows_.push_back(flow);
}

void Vm::prune_tracked_flows() {
  std::erase_if(tracked_flows_, [](const std::weak_ptr<sim::Flow>& w) {
    auto f = w.lock();
    return f == nullptr || f->finished();
  });
}

VmDevice& Vm::plug_device(std::unique_ptr<VmDevice> device) {
  NM_CHECK(device != nullptr, "plugging a null device");
  NM_CHECK(find_device(device->tag()) == nullptr,
           "device tag " << device->tag() << " already plugged into " << name());
  devices_.push_back(std::move(device));
  auto& dev = *devices_.back();
  hotplug_events_.send(
      HotplugEvent{HotplugEvent::Kind::kAdded, dev.tag(), std::string(dev.kind())});
  NM_LOG_DEBUG("vmm") << name() << ": device " << dev.tag() << " (" << dev.kind() << ") plugged";
  return dev;
}

std::unique_ptr<VmDevice> Vm::unplug_device(const std::string& tag) {
  auto it = std::find_if(devices_.begin(), devices_.end(),
                         [&](const auto& d) { return d->tag() == tag; });
  if (it == devices_.end()) {
    throw OperationError("VM " + name() + " has no device tagged '" + tag + "'");
  }
  std::unique_ptr<VmDevice> device = std::move(*it);
  devices_.erase(it);
  device->unplug();
  hotplug_events_.send(
      HotplugEvent{HotplugEvent::Kind::kRemoved, device->tag(), std::string(device->kind())});
  NM_LOG_DEBUG("vmm") << name() << ": device " << device->tag() << " unplugged";
  return device;
}

VmDevice* Vm::find_device(const std::string& tag) {
  for (auto& d : devices_) {
    if (d->tag() == tag) {
      return d.get();
    }
  }
  return nullptr;
}

VmDevice* Vm::find_device_by_kind(std::string_view kind) {
  for (auto& d : devices_) {
    if (d->kind() == kind) {
      return d.get();
    }
  }
  return nullptr;
}

std::vector<VmDevice*> Vm::devices() {
  std::vector<VmDevice*> out;
  out.reserve(devices_.size());
  for (auto& d : devices_) {
    out.push_back(d.get());
  }
  return out;
}

bool Vm::has_vmm_bypass_device() const {
  return std::any_of(devices_.begin(), devices_.end(),
                     [](const auto& d) { return d->vmm_bypass(); });
}

sim::Task Vm::symvirt_wait() {
  ++symvirt_waiting_;
  NM_LOG_TRACE("symvirt") << name() << ": wait (" << symvirt_waiting_ << " parked)";
  // Pulse "entered" so a VMM-side wait_for_symvirt_entries can recheck.
  symvirt_entered_->set();
  symvirt_entered_->reset();
  // Park until the next signal cycle.
  sim::Event& cycle = *symvirt_cycle_;
  co_await cycle.wait();
}

void Vm::symvirt_signal() {
  NM_LOG_TRACE("symvirt") << name() << ": signal (" << symvirt_waiting_ << " parked)";
  symvirt_waiting_ = 0;
  // Swap in a fresh cycle before waking, so that a woken task immediately
  // re-entering symvirt_wait parks on the new cycle.
  auto old = std::move(symvirt_cycle_);
  symvirt_cycle_ = std::make_unique<sim::Event>(*sim_);
  old->set();
  // Keep the fired event alive until its waiters have been resumed. The
  // post owns it, so teardown with the post pending frees it.
  sim_->post(Duration::zero(), [owned = std::move(old)]() mutable { owned.reset(); });
}

sim::Task Vm::wait_for_symvirt_entries(std::size_t n) {
  while (symvirt_waiting_ < n) {
    co_await symvirt_entered_->wait();
  }
}

}  // namespace nm::vmm
