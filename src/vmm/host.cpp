#include "vmm/host.h"

#include <algorithm>

#include "util/log.h"

namespace nm::vmm {

Host::Host(sim::Simulation& sim, sim::FlowRouter& router, hw::Node& node,
           SharedStorage& storage, HotplugTiming timing, MigrationConfig migration)
    : sim_(&sim),
      router_(&router),
      node_(&node),
      storage_(&storage),
      timing_(timing),
      migration_(migration) {}

void Host::connect_eth(net::EthFabric& fabric, net::NicPort& uplink) {
  NM_CHECK(eth_fabric_ == nullptr, name() << " already has an Ethernet uplink");
  eth_fabric_ = &fabric;
  eth_uplink_ = &uplink;
  eth_attachment_ = fabric.attach(uplink);
}

net::EthFabric& Host::eth_fabric() {
  NM_CHECK(eth_fabric_ != nullptr, name() << " has no Ethernet uplink");
  return *eth_fabric_;
}

net::NicPort& Host::eth_uplink() {
  NM_CHECK(eth_uplink_ != nullptr, name() << " has no Ethernet uplink");
  return *eth_uplink_;
}

net::AttachmentPtr Host::eth_attachment() {
  NM_CHECK(eth_attachment_ != nullptr, name() << " has no Ethernet uplink");
  return eth_attachment_;
}

void Host::register_hca(const std::string& host_pci_addr, net::IbFabric& fabric,
                        net::NicPort& port, int vf_count) {
  NM_CHECK(!hcas_.contains(host_pci_addr),
           name() << " already has an HCA at " << host_pci_addr);
  NM_CHECK(vf_count >= 1, "an HCA exposes at least one function");
  hcas_[host_pci_addr] = HcaSlot{&fabric, &port, vf_count, 0};
}

bool Host::hca_available(const std::string& host_pci_addr) const {
  auto it = hcas_.find(host_pci_addr);
  return it != hcas_.end() && it->second.vfs_in_use < it->second.vf_count;
}

net::IbFabric* Host::ib_fabric() {
  return hcas_.empty() ? nullptr : hcas_.begin()->second.fabric;
}

std::shared_ptr<Vm> Host::launch(VmSpec spec) {
  NM_CHECK(find_vm(spec.name) == nullptr, "VM name " << spec.name << " already in use");
  auto vm = std::make_shared<Vm>(*sim_, node_->scheduler(), std::move(spec), *this);
  vms_.push_back(vm);
  NM_LOG_INFO("vmm") << name() << ": launched VM " << vm->name() << " (" << vm->spec().vcpus
                     << " vCPUs, " << vm->spec().memory << ")";
  return vm;
}

bool Host::resident(const Vm& vm) const {
  return std::any_of(vms_.begin(), vms_.end(), [&](const auto& p) { return p.get() == &vm; });
}

std::shared_ptr<Vm> Host::find_vm(const std::string& vm_name) const {
  for (const auto& vm : vms_) {
    if (vm->name() == vm_name) {
      return vm;
    }
  }
  return nullptr;
}

VirtioNetDevice& Host::add_virtio_net(Vm& vm, const std::string& tag, VirtioNetCosts costs) {
  NM_CHECK(resident(vm), vm.name() << " is not resident on " << name());
  auto device = std::make_unique<VirtioNetDevice>(tag, "00:03.0", eth_fabric(), eth_uplink(),
                                                  costs);
  return static_cast<VirtioNetDevice&>(vm.plug_device(std::move(device)));
}

sim::Task Host::device_add(Vm& vm, std::string host_pci_addr, std::string tag) {
  if (!resident(vm)) {
    throw OperationError("device_add: VM " + vm.name() + " is not resident on " + name());
  }
  auto it = hcas_.find(host_pci_addr);
  if (it == hcas_.end()) {
    throw OperationError("device_add: no host device at " + host_pci_addr + " on " + name());
  }
  if (it->second.vfs_in_use >= it->second.vf_count) {
    throw OperationError("device_add: no free function on host device " + host_pci_addr +
                         " (in use " + std::to_string(it->second.vfs_in_use) + "/" +
                         std::to_string(it->second.vf_count) + ")");
  }
  // ACPI hotplug-add handshake (acpiphp in the guest + QEMU wiring).
  co_await sim_->delay(timing_.attach_ib * timing_.noise_factor);
  ++it->second.vfs_in_use;
  auto device = std::make_unique<IbHcaPassthroughDevice>(std::move(tag), "04:00.0",
                                                         host_pci_addr, *it->second.fabric,
                                                         *it->second.port);
  vm.plug_device(std::move(device));
  NM_LOG_INFO("vmm") << name() << ": HCA " << host_pci_addr << " attached to " << vm.name();
}

sim::Task Host::device_del(Vm& vm, std::string tag) {
  if (!resident(vm)) {
    throw OperationError("device_del: VM " + vm.name() + " is not resident on " + name());
  }
  VmDevice* device = vm.find_device(tag);
  if (device == nullptr) {
    throw OperationError("device_del: VM " + vm.name() + " has no device '" + tag + "'");
  }
  const bool is_hca = device->vmm_bypass();
  const Duration latency =
      (is_hca ? timing_.detach_ib : timing_.detach_eth) * timing_.noise_factor;
  // ACPI eject handshake with the guest.
  co_await sim_->delay(latency);
  auto removed = vm.unplug_device(tag);
  if (is_hca) {
    auto* hca = static_cast<IbHcaPassthroughDevice*>(removed.get());
    auto it = hcas_.find(hca->host_pci_addr());
    NM_CHECK(it != hcas_.end(), "unplugged HCA " << hca->host_pci_addr() << " unknown to host");
    NM_CHECK(it->second.vfs_in_use > 0, "VF accounting underflow on " << hca->host_pci_addr());
    --it->second.vfs_in_use;
  }
  NM_LOG_INFO("vmm") << name() << ": device " << removed->tag() << " detached from "
                     << vm.name();
}

sim::Task Host::migrate(Vm& vm, Host& dst, MigrationStats* stats, double bandwidth_cap,
                        const MigrationControl* control) {
  co_await migration_.migrate(vm, *this, dst, stats, bandwidth_cap, control);
}

void Host::adopt(std::shared_ptr<Vm> vm) {
  NM_CHECK(vm != nullptr, "adopting null VM");
  vms_.push_back(std::move(vm));
}

std::shared_ptr<Vm> Host::evict(Vm& vm) {
  auto it = std::find_if(vms_.begin(), vms_.end(), [&](const auto& p) { return p.get() == &vm; });
  NM_CHECK(it != vms_.end(), vm.name() << " is not resident on " << name());
  std::shared_ptr<Vm> out = std::move(*it);
  vms_.erase(it);
  return out;
}

}  // namespace nm::vmm
