// The host-side VMM (one QEMU/KVM instance manager per physical node):
// VM lifecycle, the host PCI inventory for passthrough devices, calibrated
// PCI hotplug operations, and live migration entry points.
#pragma once

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/node.h"
#include "net/eth_fabric.h"
#include "net/ib_fabric.h"
#include "net/port.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "vmm/migration.h"
#include "vmm/storage.h"
#include "vmm/vm.h"

namespace nm::vmm {

/// Calibrated PCI hotplug latencies. Defaults reproduce Table II exactly:
///   IB->IB  : detach + attach + confirm = 2.67+1.02+0.13 = 3.82 (~3.88)
///   IB->Eth : detach + confirm          = 2.67+0.13      = 2.80
///   Eth->IB : attach + confirm          = 1.02+0.13      = 1.15
///   Eth->Eth: confirm                   = 0.13
struct HotplugTiming {
  Duration detach_ib = Duration::seconds(2.67);
  Duration attach_ib = Duration::seconds(1.02);
  Duration detach_eth = Duration::millis(50);
  Duration attach_eth = Duration::millis(50);
  /// Guest-side coordinator confirmation step.
  Duration confirm = Duration::seconds(0.13);
  /// Empirical slowdown of hotplug while a whole-cluster migration is in
  /// flight ("migration noise", paper §IV-B2 observes ~3x).
  double noise_factor = 1.0;
};

class Host {
 public:
  /// `router` carries the host's guest-compute and shared-memory flows; a
  /// FluidNet router lets them span domains when hosts are carved into
  /// per-blade domains.
  Host(sim::Simulation& sim, sim::FlowRouter& router, hw::Node& node,
       SharedStorage& storage, HotplugTiming timing = {}, MigrationConfig migration = {});
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const std::string& name() const { return node_->name(); }
  [[nodiscard]] hw::Node& node() { return *node_; }
  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
  [[nodiscard]] sim::FlowRouter& router() { return *router_; }
  [[nodiscard]] SharedStorage& storage() { return *storage_; }
  [[nodiscard]] HotplugTiming& hotplug_timing() { return timing_; }
  [[nodiscard]] MigrationEngine& migration_engine() { return migration_; }

  // --- Network wiring ----------------------------------------------------
  /// Connects this host's Ethernet uplink (migration traffic + virtio
  /// bridging go through it) and gives the host its own IP.
  void connect_eth(net::EthFabric& fabric, net::NicPort& uplink);
  [[nodiscard]] net::EthFabric& eth_fabric();
  [[nodiscard]] net::NicPort& eth_uplink();
  [[nodiscard]] net::AttachmentPtr eth_attachment();

  /// Registers a passthrough-capable InfiniBand HCA present on this host
  /// (the paper's "04:00.0"). With `vf_count` > 1 the adapter is an SR-IOV
  /// device: up to vf_count VMs can each hold a virtual function, all
  /// sharing the physical port's bandwidth (the paper names SR-IOV next to
  /// PCI passthrough as the VMM-bypass technologies in scope).
  void register_hca(const std::string& host_pci_addr, net::IbFabric& fabric,
                    net::NicPort& port, int vf_count = 1);
  [[nodiscard]] bool has_hca() const { return !hcas_.empty(); }
  [[nodiscard]] bool hca_available(const std::string& host_pci_addr) const;
  [[nodiscard]] net::IbFabric* ib_fabric();

  // --- VM lifecycle ------------------------------------------------------
  std::shared_ptr<Vm> launch(VmSpec spec);
  [[nodiscard]] bool resident(const Vm& vm) const;
  [[nodiscard]] std::vector<std::shared_ptr<Vm>> vms() const { return vms_; }
  [[nodiscard]] std::shared_ptr<Vm> find_vm(const std::string& name) const;

  /// Boot-time convenience: adds a virtio NIC (no hotplug latency).
  VirtioNetDevice& add_virtio_net(Vm& vm, const std::string& tag,
                                  VirtioNetCosts costs = {});

  // --- Monitor-level operations (QEMU `device_add`/`device_del`/`migrate`)
  /// Hot-attaches the host HCA at `host_pci_addr` to `vm` as `tag`.
  /// Takes attach_ib * noise_factor; link training runs afterwards.
  [[nodiscard]] sim::Task device_add(Vm& vm, std::string host_pci_addr, std::string tag);
  /// Hot-detaches device `tag`; a passthrough HCA returns to the host pool.
  [[nodiscard]] sim::Task device_del(Vm& vm, std::string tag);
  /// Pre-copy live migration of `vm` to `dst`. `bandwidth_cap` optionally
  /// pins this one migration to a planned rate; `control` optionally
  /// routes the loop's decision points through a policy (see
  /// MigrationEngine::migrate).
  [[nodiscard]] sim::Task migrate(
      Vm& vm, Host& dst, MigrationStats* stats = nullptr,
      double bandwidth_cap = std::numeric_limits<double>::infinity(),
      const MigrationControl* control = nullptr);

 private:
  friend class MigrationEngine;
  void adopt(std::shared_ptr<Vm> vm);
  std::shared_ptr<Vm> evict(Vm& vm);

  struct HcaSlot {
    net::IbFabric* fabric = nullptr;
    net::NicPort* port = nullptr;
    int vf_count = 1;
    int vfs_in_use = 0;
  };

  sim::Simulation* sim_;
  sim::FlowRouter* router_;
  hw::Node* node_;
  SharedStorage* storage_;
  HotplugTiming timing_;
  MigrationEngine migration_;

  net::EthFabric* eth_fabric_ = nullptr;
  net::NicPort* eth_uplink_ = nullptr;
  net::AttachmentPtr eth_attachment_;

  std::map<std::string, HcaSlot> hcas_;
  std::vector<std::shared_ptr<Vm>> vms_;
};

}  // namespace nm::vmm
