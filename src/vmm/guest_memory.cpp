#include "vmm/guest_memory.h"

#include "util/error.h"

namespace nm::vmm {

GuestMemory::GuestMemory(Bytes size)
    : size_(size),
      pages_(size.count() / kPageSize),
      content_(pages_ == 0 ? 1 : pages_, PageContent{}),
      dirty_(pages_ == 0 ? 1 : pages_) {
  NM_CHECK(size.count() % kPageSize == 0, "guest memory must be page-aligned, got " << size);
  NM_CHECK(pages_ > 0, "guest memory must be non-empty");
}

std::uint64_t GuestMemory::page_of(Bytes offset) const { return offset.count() / kPageSize; }

void GuestMemory::mark_dirty(Bytes offset, Bytes len) {
  if (!logging_ || len.is_zero()) {
    return;
  }
  const auto first = page_of(offset);
  const auto last = (offset.count() + len.count() + kPageSize - 1) / kPageSize;
  dirty_.insert(first, last);
}

void GuestMemory::write_data(Bytes offset, Bytes len) {
  NM_CHECK(offset.count() + len.count() <= size_.count(),
           "write beyond guest memory: " << offset << "+" << len << " > " << size_);
  if (len.is_zero()) {
    return;
  }
  // Page-granular classification: any page touched by a data write becomes
  // incompressible.
  const auto first = page_of(offset);
  const auto last = (offset.count() + len.count() + kPageSize - 1) / kPageSize;
  content_.assign(first, last, PageContent{PageClass::kData, 0});
  mark_dirty(offset, len);
}

void GuestMemory::write_uniform(Bytes offset, Bytes len, std::uint8_t fill) {
  NM_CHECK(offset.count() + len.count() <= size_.count(),
           "write beyond guest memory: " << offset << "+" << len << " > " << size_);
  NM_CHECK(offset.count() % kPageSize == 0 && len.count() % kPageSize == 0,
           "uniform fills must be page-aligned to stay compressible");
  if (len.is_zero()) {
    return;
  }
  const auto first = page_of(offset);
  const auto last = page_of(offset + len);
  const PageClass cls = (fill == 0) ? PageClass::kZero : PageClass::kUniform;
  content_.assign(first, last, PageContent{cls, fill});
  mark_dirty(offset, len);
}

void GuestMemory::write_zero(Bytes offset, Bytes len) { write_uniform(offset, len, 0); }

PageContent GuestMemory::page_at(std::uint64_t page_index) const {
  return content_.at(page_index);
}

Bytes GuestMemory::data_bytes() const {
  const auto pages = content_.measure_where(
      0, pages_, [](const PageContent& c) { return c.cls == PageClass::kData; });
  return Bytes(pages * kPageSize);
}

void GuestMemory::start_dirty_logging() {
  logging_ = true;
  dirty_.insert(0, pages_);
}

void GuestMemory::stop_dirty_logging() {
  logging_ = false;
  dirty_.clear();
}

Bytes GuestMemory::dirty_bytes() const { return Bytes(dirty_.count() * kPageSize); }

GuestMemory::PageRange GuestMemory::pop_dirty(std::uint64_t max_pages) {
  const auto r = dirty_.pop_front(max_pages);
  return PageRange{r.lo, r.hi};
}

IntervalSet GuestMemory::take_dirty_snapshot() {
  IntervalSet snapshot(pages_);
  for (const auto& r : dirty_.ranges()) {
    snapshot.insert(r.lo, r.hi);
  }
  dirty_.clear();
  return snapshot;
}

Bytes GuestMemory::wire_size(const PageRange& range, bool compress_dup) const {
  if (range.empty()) {
    return Bytes::zero();
  }
  if (!compress_dup) {
    return Bytes(range.pages() * kPageWireBytes);
  }
  std::uint64_t wire = 0;
  content_.for_each_in(range.first_page, range.last_page,
                       [&](std::uint64_t lo, std::uint64_t hi, const PageContent& c) {
                         const auto n = hi - lo;
                         wire += (c.cls == PageClass::kData) ? n * kPageWireBytes
                                                             : n * kDupPageWireBytes;
                       });
  return Bytes(wire);
}

Bytes GuestMemory::dirty_wire_size(bool compress_dup) const {
  Bytes total = Bytes::zero();
  for (const auto& r : dirty_.ranges()) {
    total += wire_size(PageRange{r.lo, r.hi}, compress_dup);
  }
  return total;
}

Bytes GuestMemory::data_bytes_in(const PageRange& range) const {
  if (range.empty()) {
    return Bytes::zero();
  }
  const auto pages = content_.measure_where(
      range.first_page, range.last_page,
      [](const PageContent& c) { return c.cls == PageClass::kData; });
  return Bytes(pages * kPageSize);
}

}  // namespace nm::vmm
