// Shared storage model. QEMU pre-copy live migration requires the source
// and destination to see the same disk (the paper used NFSv3). Beyond the
// precondition check, the storage carries a throughput resource so that
// checkpoint/restore of VM images (the paper's §II proactive
// fault-tolerance use case) has a cost, and concurrent image writes
// contend.
#pragma once

#include <string>

#include "hw/node.h"
#include "sim/fluid.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::vmm {

class SharedStorage {
 public:
  /// The throughput resource registers into `home` eagerly; `router`
  /// carries the IO flows, which also cross the client node's CPU — with a
  /// FluidNet router that CPU may live in another domain (boundary flow).
  SharedStorage(sim::FlowRouter& router, sim::FluidScheduler& home, std::string name,
                Bandwidth throughput = Bandwidth::mib_per_sec(300))
      : router_(&router),
        name_(std::move(name)),
        throughput_(home, "nfs:" + name_, throughput.bytes_per_second()) {}
  /// Single-domain storage: the scheduler both homes the resource and
  /// routes the IO flows.
  SharedStorage(sim::FluidScheduler& scheduler, std::string name,
                Bandwidth throughput = Bandwidth::mib_per_sec(300))
      : SharedStorage(scheduler, scheduler, std::move(name), throughput) {}
  SharedStorage(const SharedStorage&) = delete;
  SharedStorage& operator=(const SharedStorage&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::FluidResource& throughput() { return throughput_; }

  /// Writes `bytes` from `via` to the store (NFS client CPU cost is
  /// charged to the writing node).
  [[nodiscard]] sim::Task write(hw::Node& via, Bytes bytes) { return io(via, bytes); }
  /// Reads `bytes` into `via`.
  [[nodiscard]] sim::Task read(hw::Node& via, Bytes bytes) { return io(via, bytes); }

 private:
  [[nodiscard]] sim::Task io(hw::Node& via, Bytes bytes) {
    // NFS over the shared server: server throughput shared by all
    // clients; client-side protocol cost ~1 core at 1 GiB/s.
    // Named spec, not a temporary: see the FlowLabel comment in fluid.h —
    // GCC 12 miscompiles FlowSpec temporaries that live across a co_await.
    sim::FlowSpec spec{.work = static_cast<double>(bytes.count())};
    spec.shares = {{&throughput_, 1.0},
                   {&via.cpu(), 1.0 / (1024.0 * 1024.0 * 1024.0)}};
    co_await router_->run(std::move(spec));
  }

  sim::FlowRouter* router_;
  std::string name_;
  sim::FluidResource throughput_;
};

}  // namespace nm::vmm
