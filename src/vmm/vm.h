// A virtual machine: vCPUs (a fluid resource that moves with the VM), guest
// memory, attached virtual PCI devices, a pause gate, and the SymVirt
// hypercall surface (wait/signal) that Ninja migration is built on.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/fluid.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "vmm/device.h"
#include "vmm/guest_memory.h"

namespace nm::vmm {

class Host;

struct VmSpec {
  std::string name;
  double vcpus = 8.0;
  Bytes memory = Bytes::gib(20);
  /// The paper boots Scientific Linux 6.2 guests; this much resident
  /// incompressible data (kernel, daemons, caches) exists before any
  /// workload runs and must travel on every migration.
  Bytes base_os_footprint = Bytes::mib(1536);
};

/// Guest-visible hotplug notification (delivered to the ACPI driver).
struct HotplugEvent {
  enum class Kind { kAdded, kRemoved };
  Kind kind;
  std::string tag;
  std::string device_kind;
};

enum class VmState { kRunning, kPaused };

class Vm {
 public:
  Vm(sim::Simulation& sim, sim::FluidScheduler& scheduler, VmSpec spec, Host& host);
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const VmSpec& spec() const { return spec_; }
  [[nodiscard]] GuestMemory& memory() { return memory_; }
  [[nodiscard]] const GuestMemory& memory() const { return memory_; }
  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
  [[nodiscard]] sim::FluidScheduler& scheduler() { return *scheduler_; }

  [[nodiscard]] Host& host() { return *host_; }
  /// Migration engine only: re-homes the VM and re-binds virtio devices.
  void set_host(Host& new_host);

  // --- Run state --------------------------------------------------------
  [[nodiscard]] VmState state() const { return state_; }
  [[nodiscard]] bool running() const { return state_ == VmState::kRunning; }
  /// Stops all guest progress: compute and tracked flows stall.
  void pause();
  void resume();
  [[nodiscard]] sim::Gate& run_gate() { return run_gate_; }

  // --- Guest execution --------------------------------------------------
  /// Runs `core_seconds` of single-threaded guest work. Respects the pause
  /// gate, the VM's vCPU allotment, and host CPU contention.
  [[nodiscard]] sim::Task compute(double core_seconds);
  /// Registers a flow to be suspended/resumed with the VM's run state.
  void track_flow(const sim::FlowPtr& flow);
  [[nodiscard]] sim::FluidResource& vcpu() { return vcpu_; }

  // --- Devices ----------------------------------------------------------
  VmDevice& plug_device(std::unique_ptr<VmDevice> device);
  std::unique_ptr<VmDevice> unplug_device(const std::string& tag);
  [[nodiscard]] VmDevice* find_device(const std::string& tag);
  /// First device of a kind (e.g. the guest's only virtio NIC).
  [[nodiscard]] VmDevice* find_device_by_kind(std::string_view kind);
  [[nodiscard]] std::vector<VmDevice*> devices();
  [[nodiscard]] bool has_vmm_bypass_device() const;
  /// Hotplug notifications consumed by the guest OS (ACPI model).
  [[nodiscard]] sim::Channel<HotplugEvent>& hotplug_events() { return hotplug_events_; }

  // --- SymVirt hypercalls (guest <-> VMM) --------------------------------
  /// Guest side: parks the calling guest task until symvirt_signal(). The
  /// VMM observes the entry via wait_entered()/symvirt_wait_count().
  [[nodiscard]] sim::Task symvirt_wait();
  /// VMM side: wakes every task parked in symvirt_wait.
  void symvirt_signal();
  [[nodiscard]] std::size_t symvirt_wait_count() const { return symvirt_waiting_; }
  /// VMM side: waits until at least `n` guest tasks are parked.
  [[nodiscard]] sim::Task wait_for_symvirt_entries(std::size_t n);

 private:
  void prune_tracked_flows();

  sim::Simulation* sim_;
  sim::FluidScheduler* scheduler_;
  VmSpec spec_;
  Host* host_;
  GuestMemory memory_;
  sim::FluidResource vcpu_;
  VmState state_ = VmState::kRunning;
  sim::Gate run_gate_;
  std::vector<std::weak_ptr<sim::Flow>> tracked_flows_;
  std::vector<std::unique_ptr<VmDevice>> devices_;
  sim::Channel<HotplugEvent> hotplug_events_;

  std::size_t symvirt_waiting_ = 0;
  std::unique_ptr<sim::Event> symvirt_cycle_;    // set on signal
  std::unique_ptr<sim::Event> symvirt_entered_;  // pulsed on each wait entry
};

}  // namespace nm::vmm
