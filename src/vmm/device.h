// Virtual PCI devices as seen by a guest. Two kinds matter for the paper:
//   - IbHcaPassthroughDevice: a VMM-bypass InfiniBand HCA handed to the VM
//     (zero virtualization overhead; pins the VM to its host until
//     detached; fresh LID + ~30 s link training on every attach);
//   - VirtioNetDevice: a para-virtual Ethernet NIC (per-byte CPU cost;
//     stable IP that follows the VM across hosts via fabric rebind).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "net/eth_fabric.h"
#include "net/fabric.h"
#include "net/ib_fabric.h"
#include "net/port.h"

namespace nm::vmm {

class VmDevice {
 public:
  VmDevice(std::string tag, std::string guest_pci_addr)
      : tag_(std::move(tag)), guest_pci_addr_(std::move(guest_pci_addr)) {}
  virtual ~VmDevice() = default;
  VmDevice(const VmDevice&) = delete;
  VmDevice& operator=(const VmDevice&) = delete;

  [[nodiscard]] const std::string& tag() const { return tag_; }
  [[nodiscard]] const std::string& guest_pci_addr() const { return guest_pci_addr_; }

  [[nodiscard]] virtual std::string_view kind() const = 0;
  /// True when the device bypasses the VMM (cannot migrate while attached).
  [[nodiscard]] virtual bool vmm_bypass() const = 0;
  [[nodiscard]] virtual net::Fabric& fabric() = 0;
  [[nodiscard]] virtual net::AttachmentPtr attachment() const = 0;
  /// Per-transfer cost shaping for traffic through this device.
  [[nodiscard]] virtual net::TransferOptions transfer_options() const = 0;

  /// Called when the device is unplugged from the VM.
  virtual void unplug() = 0;
  /// Called after the owning VM switched hosts (virtio re-binds; a
  /// passthrough device must never see this — it is detached first).
  virtual void host_changed(net::NicPort& new_uplink) = 0;

 private:
  std::string tag_;
  std::string guest_pci_addr_;
};

/// VMM-bypass InfiniBand HCA (Mellanox ConnectX model).
class IbHcaPassthroughDevice final : public VmDevice {
 public:
  IbHcaPassthroughDevice(std::string tag, std::string guest_pci_addr, std::string host_pci_addr,
                         net::IbFabric& fabric, net::NicPort& host_port)
      : VmDevice(std::move(tag), std::move(guest_pci_addr)),
        host_pci_addr_(std::move(host_pci_addr)),
        fabric_(&fabric),
        host_port_(&host_port) {
    attachment_ = fabric_->attach(*host_port_);  // link training starts now
  }

  [[nodiscard]] std::string_view kind() const override { return "ib-hca-passthrough"; }
  [[nodiscard]] bool vmm_bypass() const override { return true; }
  [[nodiscard]] net::Fabric& fabric() override { return *fabric_; }
  [[nodiscard]] net::IbFabric& ib_fabric() { return *fabric_; }
  [[nodiscard]] net::AttachmentPtr attachment() const override { return attachment_; }
  [[nodiscard]] const std::string& host_pci_addr() const { return host_pci_addr_; }

  [[nodiscard]] net::TransferOptions transfer_options() const override {
    return net::TransferOptions{};  // VMM-bypass: zero CPU cost
  }

  void unplug() override {
    if (attachment_ != nullptr) {
      fabric_->detach(attachment_);
      attachment_ = nullptr;
    }
  }

  void host_changed(net::NicPort& /*new_uplink*/) override {
    throw LogicError("a VMM-bypass HCA cannot follow a VM across hosts; detach it first");
  }

 private:
  std::string host_pci_addr_;
  net::IbFabric* fabric_;
  net::NicPort* host_port_;
  net::AttachmentPtr attachment_;
};

/// Costs of the para-virtual network path. Two distinct bottlenecks:
///   - the guest's TCP stack: one vCPU per stream, so a single connection
///     tops out near `single_stream_rate`;
///   - the VM's single vhost/virtio-queue thread: all of a VM's network
///     traffic is serialized through one host thread, capping the VM's
///     aggregate throughput regardless of how many ranks send (this is why
///     Fig 8's consolidated "2 hosts (TCP)" phase does not profit from 8
///     processes per VM).
struct VirtioNetCosts {
  /// Single TCP stream ceiling (guest-side processing), bytes/s.
  double single_stream_rate = 4.2e9 / 8.0;  // ~4.2 Gb/s
  /// Guest-side core-seconds per byte, charged to the host's cores.
  double guest_cpu_per_byte = 1.0 / (4.2e9 / 8.0);
  /// vhost-thread core-seconds per byte; the thread is a 1-core resource
  /// per device, so the VM aggregate tops out near 8 Gb/s.
  double vhost_cpu_per_byte = 1.0 / (8.0e9 / 8.0);
};

/// Para-virtual Ethernet NIC (virtio_net model).
class VirtioNetDevice final : public VmDevice {
 public:
  VirtioNetDevice(std::string tag, std::string guest_pci_addr, net::EthFabric& fabric,
                  net::NicPort& host_uplink, VirtioNetCosts costs = {})
      : VmDevice(std::move(tag), std::move(guest_pci_addr)),
        fabric_(&fabric),
        costs_(costs),
        vhost_(host_uplink.node().scheduler(), "vhost:" + this->tag(), 1.0) {
    attachment_ = fabric_->attach(host_uplink);  // IP assigned, stable
    // Inbound traffic also funnels through this VM's vhost thread.
    std::vector<sim::ResourceShare> rx{{&vhost_, costs_.vhost_cpu_per_byte}};
    attachment_->set_rx_shares(std::move(rx));
  }

  [[nodiscard]] std::string_view kind() const override { return "virtio-net"; }
  [[nodiscard]] bool vmm_bypass() const override { return false; }
  [[nodiscard]] net::Fabric& fabric() override { return *fabric_; }
  [[nodiscard]] net::AttachmentPtr attachment() const override { return attachment_; }
  [[nodiscard]] const VirtioNetCosts& costs() const { return costs_; }

  [[nodiscard]] net::TransferOptions transfer_options() const override {
    net::TransferOptions opts;
    // Guest TCP stack + vhost work both burn host cores ...
    opts.src_cpu_per_byte = costs_.guest_cpu_per_byte + costs_.vhost_cpu_per_byte;
    opts.dst_cpu_per_byte = costs_.guest_cpu_per_byte;
    // ... one stream is limited by one guest vCPU ...
    opts.max_rate = costs_.single_stream_rate;
    // ... and every stream of this VM shares the single vhost thread.
    opts.extras.push_back({const_cast<sim::FluidResource*>(&vhost_),
                           costs_.vhost_cpu_per_byte});
    return opts;
  }

  void unplug() override {
    if (attachment_ != nullptr) {
      fabric_->detach(attachment_);
    }
  }

  void host_changed(net::NicPort& new_uplink) override {
    fabric_->rebind(attachment_, new_uplink);
  }

  [[nodiscard]] sim::FluidResource& vhost() { return vhost_; }

 private:
  net::EthFabric* fabric_;
  VirtioNetCosts costs_;
  sim::FluidResource vhost_;
  net::AttachmentPtr attachment_;
};

}  // namespace nm::vmm
