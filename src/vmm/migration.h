// QEMU 1.1-style pre-copy live migration engine.
//
// Modelled behaviours (each one is observable in the paper's data):
//   - dirty-page logging starts with *all* pages dirty, so the first round
//     traverses the whole guest memory (Fig 6: migration time is dominated
//     by the 20 GiB scan even for a 2 GiB workload footprint);
//   - `is_dup_page` compression ships uniform pages as 9-byte markers
//     (memtest patterns compress; NPB data does not);
//   - the sender is a single thread: scanning and TCP transmission are
//     sequential work on one core, capping throughput near 1.3 Gb/s on a
//     10 GbE link (paper §V);
//   - iterative rounds continue until the estimated stop-and-copy downtime
//     drops below max_downtime (or a round cap), then the VM pauses for the
//     final copy and resumes on the destination.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string_view>

#include "sim/task.h"
#include "util/units.h"

namespace nm::vmm {

class Host;
class Vm;

struct MigrationConfig {
  /// CPU-bound TCP send rate of the single migration thread (bytes/s).
  double thread_send_rate = Bandwidth::gbps(1.3).bytes_per_second();
  /// Rate at which the thread walks pages and runs is_dup_page (bytes/s).
  Bandwidth scan_rate = Bandwidth::mib_per_sec(700);
  Duration max_downtime = Duration::millis(30);
  int max_rounds = 30;
  bool compress_dup_pages = true;
  /// Scan/send granularity (pages); smaller = finer interleaving.
  std::uint64_t chunk_pages = 65536;  // 256 MiB
  /// Fixed device-state + handshake overhead.
  Duration setup_time = Duration::millis(200);
  /// RDMA-based migration (paper §V optimization): bypasses the TCP send
  /// path — no per-byte CPU charge and no thread rate cap (line rate).
  bool use_rdma = false;
  /// Administrative bandwidth cap (QEMU `migrate_set_speed`); applied on
  /// top of the thread/CPU limits. Infinite by default.
  double max_bandwidth = std::numeric_limits<double>::infinity();
};

/// A VM image saved to shared storage (proactive fault tolerance, paper
/// §II: "we can restart VMs on an Ethernet cluster from checkpointed VM
/// images on an Infiniband cluster").
struct CheckpointStats {
  Bytes image_bytes = Bytes::zero();  // compressed image on the store
  Bytes scanned = Bytes::zero();
  Duration total = Duration::zero();
};

/// Which phase of a migration a request (or any interval of service time)
/// experienced — the key the service layer's per-phase SLO breakdown is
/// keyed on. kBlackout dominates: any overlap with the stop-and-copy pause
/// is the user-visible worst case, however long the rest of the interval.
enum class MigrationPhase {
  kSteady,    // no overlap with the episode (or no episode yet)
  kPreCopy,   // overlapped the iterative pre-copy (bandwidth/CPU contention)
  kBlackout,  // overlapped the stop-and-copy pause
  kPost,      // began at/after completion (the recovered service)
};
inline constexpr int kMigrationPhases = 4;
[[nodiscard]] std::string_view to_string(MigrationPhase phase);

struct MigrationStats {
  bool in_progress = false;
  int rounds = 0;
  Bytes scanned = Bytes::zero();       // guest bytes walked
  Bytes wire_bytes = Bytes::zero();    // bytes on the network
  Bytes dup_pages_saved = Bytes::zero();  // payload avoided by compression
  Duration total = Duration::zero();
  Duration downtime = Duration::zero();  // stop-and-copy pause
  /// When the VM paused for stop-and-copy; origin() until the blackout
  /// starts. A live reader can derive the in-progress pause as
  /// `now - pause_at` while `in_progress && pause_at != origin()`.
  TimePoint pause_at = TimePoint::origin();
  /// Migration start / completion instants (end_at stays origin() while
  /// in_progress) — evacuation reports aggregate these into per-VM
  /// timelines without having to wrap every migrate() call.
  TimePoint start_at = TimePoint::origin();
  TimePoint end_at = TimePoint::origin();

  /// Classifies the lifetime [begin, end] of one request against this
  /// episode's phase boundaries, readable mid-episode from the *live*
  /// stats object (`migrate`'s stats_out is mirrored on every chunk):
  ///   - overlap with the stop-and-copy pause (still open while the VM is
  ///     paused)                              -> kBlackout,
  ///   - else overlap with [start_at, pause)  -> kPreCopy,
  ///   - else begin at/after end_at           -> kPost,
  ///   - else (episode not started / interval fully before it) -> kSteady.
  [[nodiscard]] MigrationPhase phase_of(TimePoint begin, TimePoint end) const;
};

/// Clocked decision callbacks a policy layer injects into migrate() —
/// the actuation half of the policy:: framework's narrow API, kept down
/// here as plain std::functions so vmm stays below policy in the layering.
/// Every member is optional; a null member (or a null control pointer)
/// reproduces the legacy loop byte-for-byte. Callbacks run from the
/// migration task at clocked instants and must be pure reads — they may
/// not block or touch simulation state.
struct MigrationControl {
  /// Before pre-copy round `round` (0-based): extra bandwidth cap for that
  /// round's drain (bytes/s; min'd with the administrative and per-call
  /// caps). The downtime estimator and the stop-and-copy drain are NOT
  /// subject to it — a throttle shapes pre-copy interference, never the
  /// blackout.
  std::function<double(const MigrationStats& live, int round)> precopy_cap;
  /// After a round whose downtime estimate does not fit yet: force
  /// stop-and-copy now anyway (accepting downtime > max_downtime).
  std::function<bool(const MigrationStats& live, int round)> force_stop;
  /// When the estimate finally fits: pause now (true) or run another
  /// pre-copy round first (false)? Deferral is still bounded by the round
  /// cap, so a policy cannot postpone the blackout forever.
  std::function<bool(const MigrationStats& live, Duration estimated_downtime)> allow_pause;
};

class MigrationEngine {
 public:
  explicit MigrationEngine(MigrationConfig config) : config_(config) {}

  [[nodiscard]] const MigrationConfig& config() const { return config_; }
  void set_config(const MigrationConfig& config) { config_ = config; }

  /// Migrates `vm` from `src` to `dst`. Throws OperationError when the
  /// preconditions fail (different shared storage, VMM-bypass device still
  /// attached, VM not resident on src). `stats_out` is optional.
  /// `bandwidth_cap` is a per-call rate cap (bytes/s) min'd with the
  /// engine's max_bandwidth — evacuation planners pin each migration to
  /// its planned share so concurrent waves cannot oversubscribe a WAN
  /// edge (and the downtime estimator sees the rate it will actually get).
  /// `control` optionally routes the loop's clocked decision points
  /// (per-round cap, pause instant, forced stop) through a policy; null
  /// keeps the legacy loop byte-for-byte. The pointee must outlive the
  /// migration task.
  [[nodiscard]] sim::Task migrate(
      Vm& vm, Host& src, Host& dst, MigrationStats* stats_out = nullptr,
      double bandwidth_cap = std::numeric_limits<double>::infinity(),
      const MigrationControl* control = nullptr);

  /// Checkpoints `vm` to the shared store: the VM is paused, its memory is
  /// scanned (dup pages compress) and the image written out; the VM is
  /// then *off* (not resident anywhere) until restored.
  [[nodiscard]] sim::Task checkpoint_to_storage(std::shared_ptr<Vm> vm, Host& src,
                                                CheckpointStats* stats_out = nullptr);

  /// Restores a checkpointed VM onto `dst` (may be in a different cluster
  /// — that is the point): reads the image back and resumes the guest.
  [[nodiscard]] sim::Task restore_from_storage(std::shared_ptr<Vm> vm, Host& dst,
                                               CheckpointStats* stats_out = nullptr);

  /// Image registered for a checkpointed (currently off) VM, if any.
  [[nodiscard]] bool has_image(const Vm& vm) const;

 private:
  /// Ships every currently-dirty page; accumulates stats. When `live` is
  /// non-null, mirrors the accumulated stats into it after every chunk so
  /// an `info migrate`-style reader sees wire progress mid-drain (the
  /// stop-and-copy blackout would otherwise look frozen).
  [[nodiscard]] sim::Task drain_dirty(Vm& vm, Host& src, Host& dst, MigrationStats& stats,
                                      MigrationStats* live, double max_bandwidth);

  MigrationConfig config_;
  std::map<const Vm*, Bytes> images_;  // checkpointed image sizes
};

}  // namespace nm::vmm
