// Guest physical memory model. We do not store page contents — only each
// page's *content class*, because that is all the QEMU 1.1 migration path
// cares about: `is_dup_page()` sends a page filled with one repeated byte
// (e.g. a zero page) as a 9-byte marker instead of 4 KiB + header.
//
// Content classes and the dirty log are interval maps, so a 20 GiB guest
// costs O(#distinct runs), not O(#pages).
#pragma once

#include <cstdint>

#include "util/interval_map.h"
#include "util/units.h"

namespace nm::vmm {

inline constexpr std::uint64_t kPageSize = 4096;
/// Wire cost of a full page: payload + migration stream header.
inline constexpr std::uint64_t kPageWireBytes = kPageSize + 8;
/// Wire cost of a compressed duplicate page: header + fill byte.
inline constexpr std::uint64_t kDupPageWireBytes = 9;

enum class PageClass : std::uint8_t {
  kZero,     // never written (or explicitly zeroed)
  kUniform,  // filled with one repeated byte (memtest patterns)
  kData,     // incompressible content
};

struct PageContent {
  PageClass cls = PageClass::kZero;
  std::uint8_t fill = 0;  // meaningful for kUniform
  bool operator==(const PageContent&) const = default;
};

class GuestMemory {
 public:
  explicit GuestMemory(Bytes size);

  [[nodiscard]] Bytes size() const { return size_; }
  [[nodiscard]] std::uint64_t page_count() const { return pages_; }

  /// Guest writes incompressible data to [offset, offset+len).
  void write_data(Bytes offset, Bytes len);
  /// Guest writes a repeated byte pattern (compressible).
  void write_uniform(Bytes offset, Bytes len, std::uint8_t fill);
  /// Guest zeroes a region.
  void write_zero(Bytes offset, Bytes len);

  [[nodiscard]] PageContent page_at(std::uint64_t page_index) const;
  /// Bytes resident in incompressible (kData) pages.
  [[nodiscard]] Bytes data_bytes() const;

  // --- Dirty logging (migration support) -------------------------------
  /// Enables write tracking and marks *all* pages dirty, as QEMU does at
  /// migration start ("the VMM traverses the whole of the guest's memory").
  void start_dirty_logging();
  void stop_dirty_logging();
  [[nodiscard]] bool dirty_logging() const { return logging_; }
  [[nodiscard]] Bytes dirty_bytes() const;

  /// Removes up to `max_pages` pages from the front of the dirty set and
  /// returns the range (page indices). Empty range when clean.
  struct PageRange {
    std::uint64_t first_page = 0;
    std::uint64_t last_page = 0;  // exclusive
    [[nodiscard]] std::uint64_t pages() const { return last_page - first_page; }
    [[nodiscard]] Bytes bytes() const { return Bytes(pages() * kPageSize); }
    [[nodiscard]] bool empty() const { return first_page == last_page; }
  };
  [[nodiscard]] PageRange pop_dirty(std::uint64_t max_pages);

  /// Atomically takes the current dirty set, leaving it empty (QEMU syncs
  /// the dirty bitmap once per pre-copy round; pages dirtied afterwards
  /// belong to the next round).
  [[nodiscard]] IntervalSet take_dirty_snapshot();

  /// Wire bytes needed to ship the pages in `range`, with or without
  /// duplicate-page compression.
  [[nodiscard]] Bytes wire_size(const PageRange& range, bool compress_dup) const;
  /// Wire bytes needed to ship everything currently dirty (downtime
  /// estimation input for the pre-copy convergence test).
  [[nodiscard]] Bytes dirty_wire_size(bool compress_dup) const;
  /// Incompressible payload bytes within `range` (scan-cost input).
  [[nodiscard]] Bytes data_bytes_in(const PageRange& range) const;

 private:
  void mark_dirty(Bytes offset, Bytes len);
  [[nodiscard]] std::uint64_t page_of(Bytes offset) const;

  Bytes size_;
  std::uint64_t pages_;
  IntervalMap<PageContent> content_;
  IntervalSet dirty_;
  bool logging_ = false;
};

}  // namespace nm::vmm
