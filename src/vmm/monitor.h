// The per-VM monitor: the QEMU Monitor Protocol surface that SymVirt
// agents connect to. Commands are HMP-style text lines, mirroring the
// paper's use of `migrate`, `device_add` and `device_del` via QMP/telnet.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sim/task.h"
#include "vmm/host.h"
#include "vmm/migration.h"
#include "vmm/vm.h"

namespace nm::vmm {

struct MonitorResult {
  bool ok = false;
  std::string message;
};

class Monitor {
 public:
  /// Resolves a migration destination host by name (the cloud scheduler
  /// provides the mapping in a real deployment).
  using HostResolver = std::function<Host*(const std::string&)>;

  Monitor(std::shared_ptr<Vm> vm, HostResolver resolver);

  [[nodiscard]] Vm& vm() { return *vm_; }

  /// Executes one command line; supported commands:
  ///   device_add host=<pci>,id=<tag>
  ///   device_del <tag>
  ///   migrate <dst-host-name>
  ///   stop | cont
  ///   info status | info migrate
  /// Returns the command's result; errors are reported in-band (ok=false),
  /// never thrown, like a real monitor session.
  [[nodiscard]] sim::Task execute(std::string command, MonitorResult& result);

  [[nodiscard]] const MigrationStats& last_migration() const { return last_migration_; }

  /// Routes `migrate` commands through a policy control block (see
  /// MigrationEngine::migrate). Non-owning; the pointee must outlive any
  /// in-flight migrate command. Null restores the legacy loop.
  void set_migration_control(const MigrationControl* control) {
    migration_control_ = control;
  }

 private:
  [[nodiscard]] sim::Task dispatch(std::string command, MonitorResult& result);

  std::shared_ptr<Vm> vm_;
  HostResolver resolver_;
  MigrationStats last_migration_;
  const MigrationControl* migration_control_ = nullptr;
};

}  // namespace nm::vmm
