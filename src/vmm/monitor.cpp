#include "vmm/monitor.h"

#include <limits>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/log.h"

namespace nm::vmm {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) {
    tokens.push_back(tok);
  }
  return tokens;
}

/// Parses "key=value,key=value" argument syntax.
std::map<std::string, std::string> parse_kv(const std::string& s) {
  std::map<std::string, std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      out[item] = "";
    } else {
      out[item.substr(0, eq)] = item.substr(eq + 1);
    }
  }
  return out;
}

}  // namespace

Monitor::Monitor(std::shared_ptr<Vm> vm, HostResolver resolver)
    : vm_(std::move(vm)), resolver_(std::move(resolver)) {
  NM_CHECK(vm_ != nullptr, "monitor needs a VM");
}

sim::Task Monitor::execute(std::string command, MonitorResult& result) {
  NM_LOG_DEBUG("monitor") << vm_->name() << " <- '" << command << "'";
  try {
    co_await dispatch(std::move(command), result);
  } catch (const OperationError& e) {
    result.ok = false;
    result.message = e.what();
  }
  NM_LOG_DEBUG("monitor") << vm_->name() << " -> " << (result.ok ? "OK" : "ERR") << " "
                          << result.message;
}

sim::Task Monitor::dispatch(std::string command, MonitorResult& result) {
  const auto tokens = tokenize(command);
  if (tokens.empty()) {
    result = {false, "empty command"};
    co_return;
  }
  const std::string& cmd = tokens[0];
  auto& host = vm_->host();

  if (cmd == "device_add") {
    if (tokens.size() != 2) {
      result = {false, "usage: device_add host=<pci>,id=<tag>"};
      co_return;
    }
    auto kv = parse_kv(tokens[1]);
    if (!kv.contains("host") || !kv.contains("id")) {
      result = {false, "device_add needs host= and id="};
      co_return;
    }
    co_await host.device_add(*vm_, kv["host"], kv["id"]);
    result = {true, "device " + kv["id"] + " added"};
  } else if (cmd == "device_del") {
    if (tokens.size() != 2) {
      result = {false, "usage: device_del <tag>"};
      co_return;
    }
    co_await host.device_del(*vm_, tokens[1]);
    result = {true, "device " + tokens[1] + " deleted"};
  } else if (cmd == "migrate") {
    if (tokens.size() != 2) {
      result = {false, "usage: migrate <dst-host>"};
      co_return;
    }
    if (!resolver_) {
      result = {false, "no host resolver configured"};
      co_return;
    }
    Host* dst = resolver_(tokens[1]);
    if (dst == nullptr) {
      result = {false, "unknown destination host '" + tokens[1] + "'"};
      co_return;
    }
    co_await host.migrate(*vm_, *dst, &last_migration_,
                          std::numeric_limits<double>::infinity(), migration_control_);
    result = {true, "migration to " + tokens[1] + " completed"};
  } else if (cmd == "stop") {
    vm_->pause();
    result = {true, "paused"};
  } else if (cmd == "cont") {
    vm_->resume();
    result = {true, "running"};
  } else if (cmd == "info" && tokens.size() == 2 && tokens[1] == "status") {
    result = {true, std::string("VM status: ") + (vm_->running() ? "running" : "paused")};
  } else if (cmd == "migrate_set_speed") {
    if (tokens.size() != 2) {
      result = {false, "usage: migrate_set_speed <bytes_per_second>"};
      co_return;
    }
    const double limit = std::stod(tokens[1]);
    if (limit <= 0.0) {
      result = {false, "speed must be positive"};
      co_return;
    }
    auto config = host.migration_engine().config();
    config.max_bandwidth = limit;
    host.migration_engine().set_config(config);
    result = {true, "migration speed limited to " + tokens[1] + " B/s"};
  } else if (cmd == "info" && tokens.size() == 2 && tokens[1] == "migrate") {
    std::ostringstream os;
    if (last_migration_.in_progress) {
      os << "Migration status: active, round " << last_migration_.rounds << ", transferred "
         << last_migration_.wire_bytes;
    } else {
      os << "rounds " << last_migration_.rounds << ", transferred "
         << last_migration_.wire_bytes << ", downtime " << last_migration_.downtime
         << ", total " << last_migration_.total;
    }
    result = {true, os.str()};
  } else {
    result = {false, "unknown command '" + cmd + "'"};
  }
}

}  // namespace nm::vmm
