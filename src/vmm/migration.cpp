#include "vmm/migration.h"

#include <algorithm>

#include "util/log.h"
#include "vmm/host.h"
#include "vmm/vm.h"

namespace nm::vmm {

std::string_view to_string(MigrationPhase phase) {
  switch (phase) {
    case MigrationPhase::kSteady:
      return "steady";
    case MigrationPhase::kPreCopy:
      return "pre-copy";
    case MigrationPhase::kBlackout:
      return "blackout";
    case MigrationPhase::kPost:
      return "post";
  }
  return "?";
}

MigrationPhase MigrationStats::phase_of(TimePoint begin, TimePoint end) const {
  if (start_at == TimePoint::origin() && !in_progress) {
    return MigrationPhase::kSteady;  // no episode observed yet
  }
  if (pause_at != TimePoint::origin()) {
    // The blackout interval is [pause_at, pause_at + downtime]; while the
    // VM is still paused (in_progress with no recorded downtime yet) it is
    // open-ended, so anything completing now overlaps it.
    const TimePoint blackout_end =
        in_progress ? TimePoint::max() : pause_at + downtime;
    if (end >= pause_at && begin <= blackout_end) {
      return MigrationPhase::kBlackout;
    }
  }
  // Pre-copy runs from episode start until the pause (or until now while
  // no pause has happened yet).
  const TimePoint precopy_end = pause_at != TimePoint::origin() ? pause_at
                                : in_progress                   ? TimePoint::max()
                                                                : end_at;
  if (end >= start_at && begin <= precopy_end) {
    return MigrationPhase::kPreCopy;
  }
  if (!in_progress && end_at != TimePoint::origin() && begin >= end_at) {
    return MigrationPhase::kPost;
  }
  return MigrationPhase::kSteady;
}

sim::Task MigrationEngine::migrate(Vm& vm, Host& src, Host& dst, MigrationStats* stats_out,
                                   double bandwidth_cap, const MigrationControl* control) {
  // --- Preconditions (what QEMU would refuse / what the paper works
  // around with SymVirt + hotplug) --------------------------------------
  if (!src.resident(vm)) {
    throw OperationError("migrate: " + vm.name() + " is not resident on " + src.name());
  }
  if (vm.has_vmm_bypass_device()) {
    throw OperationError("migrate: " + vm.name() +
                         " has a VMM-bypass device attached; detach it first "
                         "(this is exactly why Ninja migration hot-unplugs the HCA)");
  }
  if (&src.storage() != &dst.storage()) {
    throw OperationError("migrate: " + src.name() + " and " + dst.name() +
                         " do not share storage (live migration needs shared disks)");
  }

  auto& sim = src.simulation();
  const TimePoint t0 = sim.now();
  // The per-call cap composes with the administrative one (both are hard
  // ceilings, so the tighter wins everywhere the engine plans or sends).
  const double max_bandwidth = std::min(config_.max_bandwidth, bandwidth_cap);
  MigrationStats stats;
  stats.in_progress = true;
  stats.start_at = t0;
  if (stats_out != nullptr) {
    *stats_out = stats;  // live progress for `info migrate`
  }
  auto& mem = vm.memory();
  const bool was_running = vm.running();

  NM_LOG_INFO("migration") << vm.name() << ": " << src.name() << " -> " << dst.name()
                           << " starting (memory " << mem.size() << ")";

  co_await sim.delay(config_.setup_time);
  mem.start_dirty_logging();  // marks everything dirty

  // --- Iterative pre-copy ----------------------------------------------
  while (true) {
    // A policy may throttle *this round's* drain; the downtime estimator
    // and the stop-and-copy drain below stay at the uncapped rate (the
    // throttle shapes pre-copy interference, never the blackout).
    double round_cap = max_bandwidth;
    if (control != nullptr && control->precopy_cap) {
      round_cap = std::min(round_cap, control->precopy_cap(stats, stats.rounds));
    }
    ++stats.rounds;
    co_await drain_dirty(vm, src, dst, stats, stats_out, round_cap);
    if (stats_out != nullptr) {
      *stats_out = stats;
    }

    const Bytes remaining_wire = mem.dirty_wire_size(config_.compress_dup_pages);
    // The stop-and-copy estimate must not exceed what the wire can carry:
    // even the CPU-bound TCP sender is capped by the path when the link is
    // slower than the thread (and RDMA always runs at path rate). The path
    // rate is the fabric's planning rate to the destination — for a
    // cross-site destination that folds in the WAN's *effective* (RTT/loss
    // model) rate, not the raw line rate; a model-blind estimate is
    // optimistic on lossy links, so the loop would stop pre-copying early
    // and blow through max_downtime.
    const double path_rate =
        src.eth_fabric().path_rate(src.eth_attachment(), dst.eth_attachment()->address());
    const double est_rate =
        std::min({max_bandwidth, path_rate,
                  config_.use_rdma ? path_rate : config_.thread_send_rate});
    // est_rate can hit 0 on a partitioned WAN path; treat the estimate as
    // unbounded (keep pre-copying — the drain itself stalls until heal)
    // instead of overflowing Duration.
    if (est_rate > 0.0 &&
        static_cast<double>(remaining_wire.count()) / est_rate <=
            config_.max_downtime.to_seconds()) {
      // The estimate fits; a policy may still defer the pause (wait for a
      // quieter instant), bounded by the round cap.
      if (control != nullptr && control->allow_pause && stats.rounds < config_.max_rounds) {
        const Duration est_downtime = Duration::seconds(
            static_cast<double>(remaining_wire.count()) / est_rate);
        if (!control->allow_pause(stats, est_downtime)) {
          continue;
        }
      }
      break;
    }
    if (stats.rounds >= config_.max_rounds) {
      NM_LOG_WARN("migration") << vm.name() << ": round cap hit with " << remaining_wire
                               << " still dirty; forcing stop-and-copy";
      break;
    }
    if (control != nullptr && control->force_stop &&
        control->force_stop(stats, stats.rounds)) {
      NM_LOG_WARN("migration") << vm.name() << ": policy forced stop-and-copy with "
                               << remaining_wire << " still dirty";
      break;
    }
  }

  // --- Stop-and-copy -----------------------------------------------------
  const TimePoint pause_at = sim.now();
  vm.pause();
  stats.pause_at = pause_at;
  if (stats_out != nullptr) {
    *stats_out = stats;  // readers see the blackout start immediately
  }
  co_await drain_dirty(vm, src, dst, stats, stats_out, max_bandwidth);
  mem.stop_dirty_logging();

  // Re-home the VM: storage is shared, the virtio NIC re-binds and keeps
  // its address. (Self-migration re-homes onto the same node.)
  if (&src != &dst) {
    auto owned = src.evict(vm);
    dst.adopt(owned);
    vm.set_host(dst);
  }
  if (was_running) {
    vm.resume();
  }
  stats.downtime = sim.now() - pause_at;
  stats.total = sim.now() - t0;
  stats.end_at = sim.now();
  stats.in_progress = false;

  NM_LOG_INFO("migration") << vm.name() << ": done in " << stats.total << " ("
                           << stats.rounds << " rounds, " << stats.wire_bytes << " on wire, "
                           << stats.downtime << " downtime)";
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
}

sim::Task MigrationEngine::checkpoint_to_storage(std::shared_ptr<Vm> vm, Host& src,
                                                 CheckpointStats* stats_out) {
  NM_CHECK(vm != nullptr, "checkpoint of null VM");
  if (!src.resident(*vm)) {
    throw OperationError("checkpoint: " + vm->name() + " is not resident on " + src.name());
  }
  if (vm->has_vmm_bypass_device()) {
    throw OperationError("checkpoint: " + vm->name() +
                         " has a VMM-bypass device attached; detach it first");
  }
  auto& sim = src.simulation();
  const TimePoint t0 = sim.now();
  CheckpointStats stats;
  auto& mem = vm->memory();

  vm->pause();
  // Scan the whole guest memory (dup pages compress) and stream the image
  // to the shared store.
  const GuestMemory::PageRange all{0, mem.page_count()};
  stats.scanned = mem.size();
  stats.image_bytes = mem.wire_size(all, config_.compress_dup_pages);
  const double scan_core_seconds =
      static_cast<double>(mem.size().count()) / config_.scan_rate.bytes_per_second();
  co_await src.node().compute(scan_core_seconds);
  co_await src.storage().write(src.node(), stats.image_bytes);

  // The VM is now off: not resident anywhere until restored.
  (void)src.evict(*vm);
  images_[vm.get()] = stats.image_bytes;
  stats.total = sim.now() - t0;
  NM_LOG_INFO("migration") << vm->name() << ": checkpointed to " << src.storage().name()
                           << " (" << stats.image_bytes << " image) in " << stats.total;
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
}

sim::Task MigrationEngine::restore_from_storage(std::shared_ptr<Vm> vm, Host& dst,
                                                CheckpointStats* stats_out) {
  NM_CHECK(vm != nullptr, "restore of null VM");
  auto it = images_.find(vm.get());
  if (it == images_.end()) {
    throw OperationError("restore: no checkpointed image for " + vm->name());
  }
  auto& sim = dst.simulation();
  const TimePoint t0 = sim.now();
  CheckpointStats stats;
  stats.image_bytes = it->second;

  co_await dst.storage().read(dst.node(), stats.image_bytes);
  images_.erase(it);
  dst.adopt(vm);
  vm->set_host(dst);
  vm->resume();
  stats.total = sim.now() - t0;
  NM_LOG_INFO("migration") << vm->name() << ": restored on " << dst.name() << " in "
                           << stats.total;
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
}

bool MigrationEngine::has_image(const Vm& vm) const { return images_.contains(&vm); }

sim::Task MigrationEngine::drain_dirty(Vm& vm, Host& src, Host& dst, MigrationStats& stats,
                                       MigrationStats* live, double max_bandwidth) {
  auto& mem = vm.memory();
  // Self-migration (Table II's micro-benchmark): a fresh QEMU on the same
  // node receives over loopback — no fabric, but the sender thread still
  // pays its CPU-bound transmission cost.
  const bool loopback = (&src == &dst);
  auto src_att = src.eth_attachment();
  const auto dst_addr = dst.eth_attachment()->address();

  // One pass over the dirty set as it stood at round start: pages dirtied
  // while this round transfers are the *next* round's work (otherwise a
  // fast-dirtying guest would trap us in an unbounded first round).
  auto snapshot = mem.take_dirty_snapshot();
  while (true) {
    const auto popped = snapshot.pop_front(config_.chunk_pages);
    const GuestMemory::PageRange range{popped.lo, popped.hi};
    if (range.empty()) {
      break;
    }
    const Bytes chunk = range.bytes();
    const Bytes wire = mem.wire_size(range, config_.compress_dup_pages);
    stats.scanned += chunk;
    stats.wire_bytes += wire;
    stats.dup_pages_saved += Bytes(range.pages() * kPageWireBytes) - wire;

    // Phase 1: the migration thread walks the pages (is_dup_page + header
    // assembly). Single-threaded: at most one core.
    const double scan_core_seconds =
        static_cast<double>(chunk.count()) / config_.scan_rate.bytes_per_second();
    co_await src.node().compute(scan_core_seconds);

    // Phase 2: the same thread pushes the chunk through TCP (or RDMA).
    if (loopback) {
      co_await src.node().compute(
          static_cast<double>(wire.count()) /
          std::min(config_.thread_send_rate, max_bandwidth));
    } else {
      net::TransferOptions opts;
      opts.max_rate = max_bandwidth;
      if (!config_.use_rdma) {
        opts.max_rate = std::min(opts.max_rate, config_.thread_send_rate);
        // Sending at the cap keeps one core busy.
        opts.src_cpu_per_byte = 1.0 / config_.thread_send_rate;
      }
      co_await src.eth_fabric().transfer(src_att, dst_addr, wire, opts);
    }
    if (live != nullptr) {
      *live = stats;  // chunk landed: publish wire progress mid-drain
    }
  }
}

}  // namespace nm::vmm
