// A cluster is a named set of nodes sharing an interconnect (the paper's
// "Infiniband cluster" / "Ethernet cluster" halves of the AGC testbed).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/node.h"
#include "util/error.h"

namespace nm::hw {

class Cluster {
 public:
  explicit Cluster(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  Node& add_node(sim::FluidScheduler& scheduler, NodeSpec spec) {
    nodes_.push_back(std::make_unique<Node>(scheduler, std::move(spec)));
    return *nodes_.back();
  }
  /// Domain-aware placement: the node's resources land on the domain's
  /// scheduler (see sim::FluidDomain for the connectivity constraint).
  Node& add_node(sim::FluidDomain& domain, NodeSpec spec) {
    return add_node(domain.scheduler(), std::move(spec));
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t i) {
    NM_CHECK(i < nodes_.size(), "node index " << i << " out of range in " << name_);
    return *nodes_[i];
  }
  [[nodiscard]] Node* find(const std::string& name) {
    for (auto& n : nodes_) {
      if (n->name() == name) {
        return n.get();
      }
    }
    return nullptr;
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace nm::hw
