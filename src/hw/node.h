// Physical machine model: a node has CPU cores (one fair-shared fluid
// resource), DRAM, and a memory-write bandwidth figure used by workload and
// migration cost models. Matches one blade of the paper's AGC cluster
// (Table I: 2x quad-core Xeon E5540, 48 GB DDR3-1066).
#pragma once

#include <memory>
#include <string>

#include "sim/fluid.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::hw {

struct NodeSpec {
  std::string name;
  double cores = 8.0;
  Bytes memory = Bytes::gib(48);
  /// Sustained single-core memory write bandwidth (memtest-style streaming
  /// stores). DDR3-1066 on the paper's Nehalem blades.
  Bandwidth mem_write_bw = Bandwidth::gib_per_sec(3.0);
  /// NUMA sockets; informational plus a small locality penalty hook.
  int sockets = 2;
};

class Node {
 public:
  Node(sim::FluidScheduler& scheduler, NodeSpec spec)
      : scheduler_(&scheduler),
        spec_(std::move(spec)),
        cpu_(scheduler, "cpu:" + spec_.name, spec_.cores) {}
  /// Places the node's resources on the domain's scheduler. Every resource
  /// a flow of this node can cross (its NIC ports, fabrics it attaches to,
  /// storage it mounts) must live in the same domain.
  Node(sim::FluidDomain& domain, NodeSpec spec) : Node(domain.scheduler(), std::move(spec)) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const NodeSpec& spec() const { return spec_; }
  [[nodiscard]] sim::FluidResource& cpu() { return cpu_; }
  [[nodiscard]] sim::FluidScheduler& scheduler() { return *scheduler_; }

  /// Starts `core_seconds` of single-threaded work on this node's CPU.
  /// Over-commit slows it down via fair sharing.
  [[nodiscard]] sim::FlowPtr start_compute(double core_seconds) {
    sim::FlowSpec spec{core_seconds, {}, /*max_rate=*/1.0, {}};
    spec.over(cpu_);
    return scheduler_->start(std::move(spec));
  }

  /// Coroutine: runs `core_seconds` of single-threaded work to completion.
  [[nodiscard]] sim::Task compute(double core_seconds) {
    auto flow = start_compute(core_seconds);
    if (!flow->finished()) {
      co_await flow->completion().wait();
    }
  }

  /// Core-seconds needed to stream-write `n` bytes of memory.
  [[nodiscard]] double mem_write_cost(Bytes n) const {
    return static_cast<double>(n.count()) / spec_.mem_write_bw.bytes_per_second();
  }

 private:
  sim::FluidScheduler* scheduler_;
  NodeSpec spec_;
  sim::FluidResource cpu_;
};

}  // namespace nm::hw
