// SymVirt coordinator — the guest-side half of SymVirt (the paper's
// libsymvirt.so, LD_PRELOADed into every MPI process). It registers as the
// OPAL CRS SELF component's callbacks and turns them into SymVirt
// wait/signal windows:
//
//   checkpoint callback: window A (controller detaches the HCA), then
//                        window B (controller migrates the VM);
//   continue callback:   window C (controller re-attaches, or no-ops),
//                        guest-side confirm, then waiting for the NIC the
//                        VM now has to become usable (the ~30 s InfiniBand
//                        link-up the paper measures, or nothing for
//                        Ethernet).
//
// The restart callback is intentionally unused, exactly as in the paper.
#pragma once

#include "mpi/cr.h"
#include "mpi/runtime.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::symvirt {

struct CoordinatorTiming {
  /// Guest-side confirmation step after the re-attach window (Table II's
  /// Eth->Eth "hotplug" of 0.13 s is exactly this).
  Duration confirm = Duration::seconds(0.13);
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorTiming timing = {}) : timing_(timing) {}

  [[nodiscard]] const CoordinatorTiming& timing() const { return timing_; }

  /// Registers the SELF callbacks with `runtime`'s CR service (what
  /// LD_PRELOAD + the SELF component achieve in the real system).
  void install(mpi::MpiRuntime& runtime);

  /// SELF "checkpoint" callback.
  [[nodiscard]] sim::Task on_checkpoint(mpi::Rank& rank);
  /// SELF "continue" callback.
  [[nodiscard]] sim::Task on_continue(mpi::Rank& rank);

 private:
  CoordinatorTiming timing_;
};

}  // namespace nm::symvirt
