// SymVirt controller + agents — the VMM-side half. The controller is the
// master program driving one migration episode over a set of VMs; it
// spawns one agent per VM, and each agent talks to that VM's QEMU monitor
// (device_del / migrate / device_add), mirroring Fig 3 and the Fig 5
// script API (wait_all / signal / device_detach / migration /
// device_attach).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"
#include "vmm/host.h"
#include "vmm/monitor.h"
#include "vmm/vm.h"

namespace nm::symvirt {

/// One agent per VM: a monitor client executing commands on behalf of the
/// controller.
class Agent {
 public:
  Agent(std::shared_ptr<vmm::Vm> vm, vmm::Monitor::HostResolver resolver)
      : vm_(std::move(vm)), monitor_(vm_, std::move(resolver)) {}

  [[nodiscard]] vmm::Vm& vm() { return *vm_; }
  [[nodiscard]] vmm::Monitor& monitor() { return monitor_; }

  /// Runs one monitor command; throws OperationError on failure.
  [[nodiscard]] sim::Task execute(std::string command);

 private:
  std::shared_ptr<vmm::Vm> vm_;
  vmm::Monitor monitor_;
};

class Controller {
 public:
  /// `ranks_per_vm`: how many SymVirt coordinators (MPI processes) must
  /// park in symvirt_wait before wait_all() considers a VM quiescent.
  Controller(sim::Simulation& sim, std::vector<std::shared_ptr<vmm::Vm>> vms,
             std::size_t ranks_per_vm, vmm::Monitor::HostResolver resolver);
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  [[nodiscard]] std::size_t vm_count() const { return agents_.size(); }
  [[nodiscard]] Agent& agent(std::size_t i);

  /// Blocks until every VM has all its coordinators parked in symvirt_wait.
  [[nodiscard]] sim::Task wait_all();
  /// Resumes every VM's parked coordinators.
  void signal();

  /// Detaches device `tag` from every VM (agents run concurrently).
  [[nodiscard]] sim::Task device_detach(const std::string& tag);
  /// Attaches the host device at `host_pci` to every VM as `tag`.
  [[nodiscard]] sim::Task device_attach(const std::string& host_pci, const std::string& tag);
  /// Migrates vm[i] to hosts[i % hosts.size()] (agents run concurrently),
  /// then signals the VMs — matching the Fig 5 script, where migration has
  /// no explicit signal.
  [[nodiscard]] sim::Task migration(const std::vector<std::string>& dst_hosts);

  /// Routes every agent's `migrate` commands through a policy control
  /// block (non-owning; must outlive the episode). Null = legacy loop.
  void set_migration_control(const vmm::MigrationControl* control);

  /// Disconnects (no-op in the model; kept for script parity).
  void quit() {}

 private:
  [[nodiscard]] sim::Task run_on_all(std::function<std::string(std::size_t)> command_for);

  sim::Simulation* sim_;
  std::size_t ranks_per_vm_;
  std::vector<std::unique_ptr<Agent>> agents_;
};

}  // namespace nm::symvirt
