// The paper's future work (§VII): "a generic communication layer to
// support a guest OS cooperative migration based on a SymVirt mechanism,
// which is independent on an MPI runtime."
//
// GenericCoordinator gives any distributed application the same
// three-window protocol the MPI stack gets from CRCP+CRS: the app
// registers quiesce/resume callbacks and calls service_point() from its
// main loop; the host-side controller drives detach/migrate/re-attach
// between the windows exactly as for MPI jobs.
#pragma once

#include <functional>
#include <memory>

#include "sim/sync.h"
#include "sim/task.h"
#include "symvirt/coordinator.h"
#include "vmm/vm.h"

namespace nm::symvirt {

class GenericCoordinator {
 public:
  struct Callbacks {
    /// Stop traffic and release transport resources (connections will be
    /// stale after migration — like the CRS pre-checkpoint phase).
    std::function<sim::Task()> quiesce;
    /// Re-resolve peers and reconnect (like BTL reconstruction).
    std::function<sim::Task()> resume;
  };

  explicit GenericCoordinator(std::shared_ptr<vmm::Vm> vm, CoordinatorTiming timing = {});
  GenericCoordinator(const GenericCoordinator&) = delete;
  GenericCoordinator& operator=(const GenericCoordinator&) = delete;

  [[nodiscard]] vmm::Vm& vm() { return *vm_; }
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Host side: arms an episode. The app will park at its next
  /// service_point(); wait_all on the VM then proceeds as usual.
  void request();
  [[nodiscard]] bool pending() const { return pending_; }
  /// Host side: resumes once the app has run its resume callback.
  [[nodiscard]] sim::Task wait_complete(std::uint64_t generation);
  [[nodiscard]] std::uint64_t generation() const { return requested_; }

  /// App side: call from the main loop. Free when no episode is pending;
  /// otherwise: quiesce -> window A -> window B -> window C -> confirm ->
  /// resume.
  [[nodiscard]] sim::Task service_point();

 private:
  std::shared_ptr<vmm::Vm> vm_;
  CoordinatorTiming timing_;
  Callbacks callbacks_;
  bool pending_ = false;
  std::uint64_t requested_ = 0;
  std::uint64_t completed_ = 0;
  sim::Notifier completion_;
};

}  // namespace nm::symvirt
