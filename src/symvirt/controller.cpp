#include "symvirt/controller.h"

#include "util/error.h"
#include "util/log.h"

namespace nm::symvirt {

sim::Task Agent::execute(std::string command) {
  vmm::MonitorResult result;
  co_await monitor_.execute(std::move(command), result);
  if (!result.ok) {
    throw OperationError("agent[" + vm_->name() + "]: " + result.message);
  }
}

Controller::Controller(sim::Simulation& sim, std::vector<std::shared_ptr<vmm::Vm>> vms,
                       std::size_t ranks_per_vm, vmm::Monitor::HostResolver resolver)
    : sim_(&sim), ranks_per_vm_(ranks_per_vm) {
  NM_CHECK(!vms.empty(), "controller needs at least one VM");
  NM_CHECK(ranks_per_vm > 0, "ranks_per_vm must be positive");
  agents_.reserve(vms.size());
  for (auto& vm : vms) {
    agents_.push_back(std::make_unique<Agent>(vm, resolver));
  }
}

Agent& Controller::agent(std::size_t i) {
  NM_CHECK(i < agents_.size(), "agent index out of range");
  return *agents_[i];
}

sim::Task Controller::wait_all() {
  for (auto& agent : agents_) {
    co_await agent->vm().wait_for_symvirt_entries(ranks_per_vm_);
  }
  NM_LOG_DEBUG("symvirt") << "controller: all " << agents_.size() << " VMs quiescent";
}

void Controller::signal() {
  for (auto& agent : agents_) {
    agent->vm().symvirt_signal();
  }
}

sim::Task Controller::run_on_all(std::function<std::string(std::size_t)> command_for) {
  std::vector<sim::TaskRef> refs;
  refs.reserve(agents_.size());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    refs.push_back(sim_->spawn(agents_[i]->execute(command_for(i)),
                               "agent:" + agents_[i]->vm().name()));
  }
  co_await sim::join_all(std::move(refs));
}

sim::Task Controller::device_detach(const std::string& tag) {
  co_await run_on_all([&tag](std::size_t) { return "device_del " + tag; });
}

sim::Task Controller::device_attach(const std::string& host_pci, const std::string& tag) {
  co_await run_on_all(
      [&](std::size_t) { return "device_add host=" + host_pci + ",id=" + tag; });
}

void Controller::set_migration_control(const vmm::MigrationControl* control) {
  for (auto& agent : agents_) {
    agent->monitor().set_migration_control(control);
  }
}

sim::Task Controller::migration(const std::vector<std::string>& dst_hosts) {
  NM_CHECK(!dst_hosts.empty(), "migration needs a destination host list");
  co_await run_on_all(
      [&](std::size_t i) { return "migrate " + dst_hosts[i % dst_hosts.size()]; });
  // The Fig 5 script issues no explicit signal after migration: the VMs
  // resume on their destinations and the controller releases them here.
  signal();
}

}  // namespace nm::symvirt
