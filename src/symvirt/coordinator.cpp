#include "symvirt/coordinator.h"

#include "util/log.h"

namespace nm::symvirt {

void Coordinator::install(mpi::MpiRuntime& runtime) {
  runtime.cr().register_self(
      [this](mpi::Rank& rank) { return on_checkpoint(rank); },
      [this](mpi::Rank& rank) { return on_continue(rank); },
      // SELF restart callback: SymVirt does not use it (paper §III-C).
      nullptr);
}

sim::Task Coordinator::on_checkpoint(mpi::Rank& rank) {
  auto& vm = rank.vm();
  NM_LOG_DEBUG("symvirt") << "rank " << rank.id() << " (" << vm.name()
                          << "): checkpoint callback, entering window A";
  // Window A: the controller detaches VMM-bypass devices.
  co_await vm.symvirt_wait();
  // Window B: the controller migrates the VM.
  co_await vm.symvirt_wait();
}

sim::Task Coordinator::on_continue(mpi::Rank& rank) {
  auto& vm = rank.vm();
  NM_LOG_DEBUG("symvirt") << "rank " << rank.id() << " (" << vm.name()
                          << "): continue callback, entering window C";
  // Window C: the controller re-attaches devices (or no-ops).
  co_await vm.symvirt_wait();
  // Guest-side confirmation of the new device situation.
  co_await vm.simulation().delay(timing_.confirm);
  // Wait for a usable adapter: InfiniBand needs its ~30 s link training;
  // the virtio NIC is up immediately.
  if (rank.ib_driver().present()) {
    co_await rank.ib_driver().wait_ready();
  } else {
    co_await rank.eth_driver().wait_ready();
  }
}

}  // namespace nm::symvirt
