#include "symvirt/generic.h"

#include "util/log.h"

namespace nm::symvirt {

GenericCoordinator::GenericCoordinator(std::shared_ptr<vmm::Vm> vm, CoordinatorTiming timing)
    : vm_(std::move(vm)), timing_(timing), completion_(vm_->simulation()) {
  NM_CHECK(vm_ != nullptr, "coordinator needs a VM");
}

void GenericCoordinator::request() {
  NM_CHECK(!pending_, "an episode is already pending on " << vm_->name());
  pending_ = true;
  ++requested_;
  NM_LOG_DEBUG("symvirt") << vm_->name() << ": generic episode #" << requested_
                          << " requested";
}

sim::Task GenericCoordinator::wait_complete(std::uint64_t generation) {
  while (completed_ < generation) {
    co_await completion_.wait();
  }
}

sim::Task GenericCoordinator::service_point() {
  if (!pending_) {
    co_return;
  }
  pending_ = false;
  if (callbacks_.quiesce) {
    co_await callbacks_.quiesce();
  }
  co_await vm_->symvirt_wait();  // window A: detach
  co_await vm_->symvirt_wait();  // window B: migrate
  co_await vm_->symvirt_wait();  // window C: re-attach
  co_await vm_->simulation().delay(timing_.confirm);
  if (callbacks_.resume) {
    co_await callbacks_.resume();
  }
  completed_ = requested_;
  completion_.notify_all();
  NM_LOG_DEBUG("symvirt") << vm_->name() << ": generic episode #" << completed_ << " done";
}

}  // namespace nm::symvirt
