// The modelled AGC testbed (paper Table I): 16 Dell M610 blades in one
// enclosure — 8 on the QDR InfiniBand switch (M3601Q) + all 16 on the
// 10 GbE switch (M8024) — NFS shared storage, one QEMU/KVM host per blade.
//
// Testbed is the composition root: it owns the simulation, the fluid
// scheduler, fabrics, nodes, ports, and hosts, and provides the host-name
// resolver used by monitors and the cloud scheduler.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "net/clos_fabric.h"
#include "net/eth_fabric.h"
#include "net/ib_fabric.h"
#include "net/port.h"
#include "sim/fluid.h"
#include "sim/fluid_net.h"
#include "sim/simulation.h"
#include "sim/solve_pool.h"
#include "vmm/host.h"
#include "vmm/storage.h"

namespace nm::core {

struct TestbedConfig {
  int ib_nodes = 8;   // blades with both IB HCA and 10 GbE
  int eth_nodes = 8;  // blades with 10 GbE only
  hw::NodeSpec blade_spec;  // name is per-node; other fields are defaults
  net::IbFabricConfig ib;
  net::EthFabricConfig eth;
  vmm::HotplugTiming hotplug;
  vmm::MigrationConfig migration;
  /// Intra-site Ethernet topology. Disabled (the default) keeps the flat
  /// single-switch enclosure byte-identical to the seed; enabled builds a
  /// net::ClosFabric behind the Ethernet fabric and assigns blade i to
  /// leaf i / hosts_per_leaf in boot order (ib blades first). host_rate
  /// should match eth.line_rate; the fabric must have at least
  /// ib_nodes + eth_nodes host ports. The IB fabric stays flat — the
  /// paper's M3601Q is a single non-blocking switch.
  net::ClosConfig clos;
  /// SR-IOV virtual functions per HCA (1 = plain PCI passthrough).
  int hca_vfs = 1;
  /// Number of FluidDomain shards the testbed's FluidNet starts with. With
  /// blade_domains off the whole (fully connected) enclosure lands on
  /// domain 0 and the remaining shards are free for caller-built disjoint
  /// zones. Timelines are bit-identical at every shard count
  /// (sim_sharding_test pins this).
  int fluid_shards = 1;
  /// Carve each blade — its CPU and its NIC ports — into its own fluid
  /// domain, bridged to the shared zone (fabrics + NFS storage stay on
  /// domain 0) by boundary flows: a transfer then crosses the source
  /// blade's tx, the destination blade's rx, and the shared resources as a
  /// cross-domain flow solved by the boundary exchange (DESIGN.md §6).
  bool blade_domains = false;
  /// Worker threads in the FluidNet's SolvePool, which settles dirty fluid
  /// domains in parallel at the end of each simulated instant. 0 (default)
  /// creates no threads; the pool itself exists only when workers > 0 or a
  /// second domain is added (boundary flows need its exchange loop), so a
  /// default testbed keeps the legacy zero-delay settle path exactly. Any
  /// worker count yields the same event timeline — the pool commits in
  /// canonical (domain, component) order (sim_sharding_test pins this).
  int solve_workers = 0;
  std::uint64_t seed = 1;

  TestbedConfig() {
    blade_spec.cores = 8.0;                       // 2x quad-core Xeon E5540
    blade_spec.memory = Bytes::gib(48);           // DDR3-1066
    blade_spec.mem_write_bw = Bandwidth::gib_per_sec(3.0);
  }
};

class Testbed {
 public:
  /// Standalone testbed: owns its Simulation, FluidNet and NFS storage.
  explicit Testbed(TestbedConfig config = {});
  /// Federated testbed: builds the same enclosure inside an externally
  /// owned simulation/net (one shared clock across sites; see
  /// core/federation.h). Every domain, fabric, host and node name is
  /// prefixed with "<site>:" so the two sites' namespaces stay disjoint,
  /// and `shared_storage` (when given) is mounted instead of a private NFS
  /// store — cross-site migration requires the shared mount. The config's
  /// `solve_workers` and `seed` are ignored here: both belong to the
  /// federation's shared simulation.
  Testbed(TestbedConfig config, sim::Simulation& sim, sim::FluidNet& net, std::string site,
          vmm::SharedStorage* shared_storage = nullptr);
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] const TestbedConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulation& sim() { return *sim_; }
  /// The domain-aware flow façade: routes a FlowSpec to the domain owning
  /// its resources, registering cross-domain specs as boundary flows.
  [[nodiscard]] sim::FluidNet& net() { return *net_; }
  /// The domain owning `res` (nullptr when unregistered or foreign).
  [[nodiscard]] sim::FluidDomain* domain_of(const sim::FluidResource& res) {
    return net_->domain_of(res);
  }
  [[nodiscard]] std::size_t domain_count() const { return net_->domain_count(); }
  [[nodiscard]] sim::FluidDomain& domain(std::size_t i) { return net_->domain(i); }
  /// The parallel settle pool; nullptr for a single-domain, zero-worker
  /// testbed (which settles via the legacy zero-delay path).
  [[nodiscard]] sim::SolvePool* solve_pool() { return net_->pool(); }
  [[nodiscard]] net::IbFabric& ib_fabric() { return *ib_fabric_; }
  [[nodiscard]] net::EthFabric& eth_fabric() { return *eth_fabric_; }
  /// The intra-site Clos topology behind the Ethernet fabric; nullptr for
  /// the flat seed enclosure.
  [[nodiscard]] net::ClosFabric* clos() { return clos_.get(); }
  /// Leaf of `host`'s Ethernet uplink; ClosFabric::kSpineAttach when flat.
  [[nodiscard]] int leaf_of(vmm::Host& host);
  [[nodiscard]] vmm::SharedStorage& storage() { return *storage_; }
  /// The domain holding this testbed's shared resources (fabrics, NFS):
  /// domain 0 standalone, this site's first domain under a federation. A
  /// WAN link's endpoint for this site registers here.
  [[nodiscard]] sim::FluidDomain& zone_domain() { return net_->domain(zone_index_); }
  /// "<site>:" under a federation, empty standalone.
  [[nodiscard]] const std::string& name_prefix() const { return prefix_; }

  /// Boundary-exchange visibility (DESIGN.md §6/§7): cumulative exchange
  /// rounds, settles that hit the round-cap safety valve (should stay 0),
  /// and the worst rounds a single settle needed.
  [[nodiscard]] std::size_t exchange_round_count() const { return net_->exchange_round_count(); }
  [[nodiscard]] std::size_t unconverged_exchange_count() const {
    return net_->unconverged_exchange_count();
  }
  [[nodiscard]] std::size_t max_exchange_rounds_per_settle() const {
    return net_->max_exchange_rounds_per_settle();
  }

  [[nodiscard]] int ib_host_count() const { return config_.ib_nodes; }
  [[nodiscard]] int eth_host_count() const { return config_.eth_nodes; }
  /// Host on the InfiniBand cluster ("ib0".."ib7").
  [[nodiscard]] vmm::Host& ib_host(int i);
  /// Host on the Ethernet-only cluster ("eth0".."eth7").
  [[nodiscard]] vmm::Host& eth_host(int i);
  [[nodiscard]] vmm::Host* find_host(const std::string& name);
  [[nodiscard]] std::vector<vmm::Host*> all_hosts();

  /// The PCI address every blade's HCA sits at (paper Fig 5).
  static constexpr const char* kHcaPciAddr = "04:00.0";

  /// Boots a VM on `host` with a virtio NIC; when `with_hca` is true the
  /// host's HCA is assigned at boot (no hotplug latency; link training
  /// still applies, so allow ~30 s of simulated time before traffic).
  std::shared_ptr<vmm::Vm> boot_vm(vmm::Host& host, vmm::VmSpec spec, bool with_hca);

  /// Lets every boot-time link finish training.
  void settle();

 private:
  /// Adds this testbed's `fluid_shards` initial domains to the net. The
  /// first one added (recorded as zone_index_) is the zone every shared
  /// resource registers into; under a federation the net already holds the
  /// other sites' domains, so the zone is not globally domain 0.
  void init_shards();
  /// Everything after simulation/net/prefix wiring: shards, storage (when
  /// not shared), fabrics, blades, hosts. Identical for both ownership
  /// modes so a standalone and a federated site are byte-for-byte the same
  /// enclosure.
  void build();

  TestbedConfig config_;
  // Standalone mode owns these; a federated testbed aliases the
  // federation's. Declared net-after-sim so destruction detaches the pool
  // (joining workers, removing the kernel hook) while the simulation is
  // alive — same invariant as before the Federation split.
  std::unique_ptr<sim::Simulation> owned_sim_;
  std::unique_ptr<sim::FluidNet> owned_net_;
  sim::Simulation* sim_ = nullptr;
  sim::FluidNet* net_ = nullptr;
  std::string prefix_;
  std::size_t zone_index_ = 0;
  std::unique_ptr<vmm::SharedStorage> owned_storage_;
  vmm::SharedStorage* storage_ = nullptr;
  std::unique_ptr<net::IbFabric> ib_fabric_;
  std::unique_ptr<net::EthFabric> eth_fabric_;
  std::unique_ptr<net::ClosFabric> clos_;
  hw::Cluster ib_cluster_;
  hw::Cluster eth_cluster_;
  std::vector<std::unique_ptr<net::NicPort>> ports_;
  std::vector<std::unique_ptr<vmm::Host>> hosts_;
};

}  // namespace nm::core
