// The modelled AGC testbed (paper Table I): 16 Dell M610 blades in one
// enclosure — 8 on the QDR InfiniBand switch (M3601Q) + all 16 on the
// 10 GbE switch (M8024) — NFS shared storage, one QEMU/KVM host per blade.
//
// Testbed is the composition root: it owns the simulation, the fluid
// scheduler, fabrics, nodes, ports, and hosts, and provides the host-name
// resolver used by monitors and the cloud scheduler.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "net/eth_fabric.h"
#include "net/ib_fabric.h"
#include "net/port.h"
#include "sim/fluid.h"
#include "sim/simulation.h"
#include "sim/solve_pool.h"
#include "vmm/host.h"
#include "vmm/storage.h"

namespace nm::core {

struct TestbedConfig {
  int ib_nodes = 8;   // blades with both IB HCA and 10 GbE
  int eth_nodes = 8;  // blades with 10 GbE only
  hw::NodeSpec blade_spec;  // name is per-node; other fields are defaults
  net::IbFabricConfig ib;
  net::EthFabricConfig eth;
  vmm::HotplugTiming hotplug;
  vmm::MigrationConfig migration;
  /// SR-IOV virtual functions per HCA (1 = plain PCI passthrough).
  int hca_vfs = 1;
  /// Number of FluidDomain shards the testbed creates. Placement is
  /// topology-aware: resources that one flow can cross must share a
  /// scheduler, and the AGC enclosure is a single connected zone (every
  /// blade hangs off the one 10 GbE switch and the shared NFS storage), so
  /// the whole testbed lands on domain 0 and the remaining shards are free
  /// for caller-built disjoint zones. Timelines are bit-identical at every
  /// shard count (sim_sharding_test pins this).
  int fluid_shards = 1;
  /// Worker threads in the shared SolvePool that settles dirty fluid
  /// domains in parallel at the end of each simulated instant. 0 (default)
  /// disables the pool: every scheduler settles itself with the legacy
  /// zero-delay post. Any worker count yields the same event timeline —
  /// the pool commits in canonical (domain, component) order
  /// (sim_sharding_test pins this).
  int solve_workers = 0;
  std::uint64_t seed = 1;

  TestbedConfig() {
    blade_spec.cores = 8.0;                       // 2x quad-core Xeon E5540
    blade_spec.memory = Bytes::gib(48);           // DDR3-1066
    blade_spec.mem_write_bw = Bandwidth::gib_per_sec(3.0);
  }
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] const TestbedConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  /// The connected AGC zone's scheduler (domain 0).
  [[nodiscard]] sim::FluidScheduler& scheduler() { return zone_domain().scheduler(); }
  [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }
  [[nodiscard]] sim::FluidDomain& domain(std::size_t i);
  /// The parallel settle pool, or nullptr when solve_workers == 0.
  [[nodiscard]] sim::SolvePool* solve_pool() { return solve_pool_.get(); }
  /// The domain holding every resource of the (fully connected) enclosure.
  [[nodiscard]] sim::FluidDomain& zone_domain() { return *domains_.front(); }
  [[nodiscard]] net::IbFabric& ib_fabric() { return *ib_fabric_; }
  [[nodiscard]] net::EthFabric& eth_fabric() { return *eth_fabric_; }
  [[nodiscard]] vmm::SharedStorage& storage() { return storage_; }

  [[nodiscard]] int ib_host_count() const { return config_.ib_nodes; }
  [[nodiscard]] int eth_host_count() const { return config_.eth_nodes; }
  /// Host on the InfiniBand cluster ("ib0".."ib7").
  [[nodiscard]] vmm::Host& ib_host(int i);
  /// Host on the Ethernet-only cluster ("eth0".."eth7").
  [[nodiscard]] vmm::Host& eth_host(int i);
  [[nodiscard]] vmm::Host* find_host(const std::string& name);
  [[nodiscard]] std::vector<vmm::Host*> all_hosts();

  /// The PCI address every blade's HCA sits at (paper Fig 5).
  static constexpr const char* kHcaPciAddr = "04:00.0";

  /// Boots a VM on `host` with a virtio NIC; when `with_hca` is true the
  /// host's HCA is assigned at boot (no hotplug latency; link training
  /// still applies, so allow ~30 s of simulated time before traffic).
  std::shared_ptr<vmm::Vm> boot_vm(vmm::Host& host, vmm::VmSpec spec, bool with_hca);

  /// Lets every boot-time link finish training.
  void settle();

 private:
  static std::vector<std::unique_ptr<sim::FluidDomain>> make_domains(sim::Simulation& sim,
                                                                     int shards);

  TestbedConfig config_;
  sim::Simulation sim_;
  // Destruction order matters: domains detach from the pool first, then the
  // pool joins its workers and removes its kernel hook, then the simulation
  // dies — so the pool is declared after sim_ and before domains_.
  std::unique_ptr<sim::SolvePool> solve_pool_;
  // Declared before storage_/fabrics: they register resources on domain 0.
  std::vector<std::unique_ptr<sim::FluidDomain>> domains_;
  vmm::SharedStorage storage_;
  std::unique_ptr<net::IbFabric> ib_fabric_;
  std::unique_ptr<net::EthFabric> eth_fabric_;
  hw::Cluster ib_cluster_;
  hw::Cluster eth_cluster_;
  std::vector<std::unique_ptr<net::NicPort>> ports_;
  std::vector<std::unique_ptr<vmm::Host>> hosts_;
};

}  // namespace nm::core
