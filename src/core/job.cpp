#include "core/job.h"

#include "util/error.h"

namespace nm::core {

MpiJob::MpiJob(Testbed& testbed, JobConfig config)
    : testbed_(&testbed), config_(std::move(config)), scheduler_(testbed) {
  NM_CHECK(config_.vm_count > 0, "job needs at least one VM");
  NM_CHECK(config_.ranks_per_vm > 0, "job needs at least one rank per VM");
  const int host_count =
      config_.on_ib_cluster ? testbed.ib_host_count() : testbed.eth_host_count();
  NM_CHECK(config_.vm_count <= host_count,
           "not enough hosts for " << config_.vm_count << " VMs");

  runtime_ = std::make_unique<mpi::MpiRuntime>(testbed.sim(), config_.mpi);
  for (int i = 0; i < config_.vm_count; ++i) {
    auto& host = config_.on_ib_cluster ? testbed.ib_host(i) : testbed.eth_host(i);
    vmm::VmSpec spec = config_.vm_template;
    spec.name = config_.name + "-vm" + std::to_string(i);
    const bool hca = config_.with_hca && config_.on_ib_cluster;
    vms_.push_back(testbed.boot_vm(host, spec, hca));
    guests_.push_back(std::make_unique<guest::GuestOs>(vms_.back()));
    for (std::size_t r = 0; r < config_.ranks_per_vm; ++r) {
      runtime_->add_rank(*guests_.back());
    }
  }
  NinjaConfig ninja_config;
  ninja_config.resolver = scheduler_.resolver();
  ninja_config.policies = config_.policies;
  ninja_config.source = config_.observation_source;
  ninja_config.seed = testbed.config().seed;
  ninja_ = std::make_unique<NinjaMigrator>(testbed.sim(), *runtime_, std::move(ninja_config));
}

guest::GuestOs& MpiJob::guest_os(int vm_index) {
  NM_CHECK(vm_index >= 0 && static_cast<std::size_t>(vm_index) < guests_.size(),
           "vm index out of range");
  return *guests_[static_cast<std::size_t>(vm_index)];
}

void MpiJob::init() {
  NM_CHECK(!initialized_, "job already initialized");
  testbed_->settle();  // boot-time HCA links train before MPI_Init
  runtime_->init();
  world_ = std::make_unique<mpi::Communicator>(mpi::Communicator::world(*runtime_));
  ninja_->install_coordinator();
  initialized_ = true;
}

std::vector<sim::TaskRef> MpiJob::launch(std::function<sim::Task(mpi::RankId)> body) {
  NM_CHECK(initialized_, "init() the job before launching ranks");
  // Pin the callable: the coroutine frames reference the closure object.
  bodies_.push_back(
      std::make_unique<std::function<sim::Task(mpi::RankId)>>(std::move(body)));
  auto& pinned = *bodies_.back();
  std::vector<sim::TaskRef> refs;
  refs.reserve(runtime_->size());
  for (std::size_t r = 0; r < runtime_->size(); ++r) {
    refs.push_back(testbed_->sim().spawn(pinned(static_cast<mpi::RankId>(r)),
                                         config_.name + ":rank" + std::to_string(r)));
  }
  return refs;
}

sim::Task MpiJob::fallback_migration(int host_count, NinjaStats* stats) {
  co_await ninja_->execute(scheduler_.fallback_plan(vms_, host_count, config_.ranks_per_vm),
                           stats);
}

sim::Task MpiJob::recovery_migration(int host_count, NinjaStats* stats) {
  co_await ninja_->execute(scheduler_.recovery_plan(vms_, host_count, config_.ranks_per_vm),
                           stats);
}

sim::Task MpiJob::tcp_migration(std::vector<std::string> destinations, NinjaStats* stats) {
  co_await ninja_->execute(
      scheduler_.tcp_plan(vms_, std::move(destinations), config_.ranks_per_vm), stats);
}

std::string MpiJob::current_transport() {
  NM_CHECK(initialized_, "job not initialized");
  if (runtime_->size() <= config_.ranks_per_vm) {
    return "sm";  // single-VM job: everything is shared memory
  }
  // First rank of VM 0 towards first rank of VM 1.
  return runtime_->rank(0).transport_to(static_cast<mpi::RankId>(config_.ranks_per_vm));
}

}  // namespace nm::core
