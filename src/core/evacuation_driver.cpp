#include "core/evacuation_driver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/sync.h"
#include "util/error.h"
#include "util/log.h"
#include "vmm/host.h"

namespace nm::core {

Duration EvacuationReport::downtime_percentile(double p) const {
  std::vector<Duration> sorted;
  for (const VmOutcome& vm : vms) {
    if (vm.done_ns >= 0) {
      sorted.push_back(vm.downtime);
    }
  }
  if (sorted.empty()) {
    return Duration::zero();
  }
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 1.0);
  std::size_t rank = static_cast<std::size_t>(std::ceil(clamped * sorted.size()));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

Duration EvacuationReport::downtime_max() const {
  Duration worst = Duration::zero();
  for (const VmOutcome& vm : vms) {
    if (vm.done_ns >= 0) {
      worst = std::max(worst, vm.downtime);
    }
  }
  return worst;
}

MassEvacuation::MassEvacuation(Federation& fed, EvacuationConfig config)
    : fed_(&fed), config_(std::move(config)) {
  NM_CHECK(config_.source_site < fed.site_count(),
           "evacuation source site " << config_.source_site << " out of range");
  NM_CHECK(config_.dst_slots_per_host > 0, "evacuation needs >= 1 slot per destination host");
  config_.policies.bind_seed(config_.seed);
}

std::size_t MassEvacuation::leaf_base(std::size_t site) const {
  std::size_t base = 0;
  for (std::size_t s = 0; s < site; ++s) {
    net::ClosFabric* clos = fed_->site(s).clos();
    if (clos != nullptr) {
      base += static_cast<std::size_t>(clos->leaf_count());
    }
  }
  return base;
}

plan::SiteGraph MassEvacuation::current_graph(bool nominal) const {
  plan::SiteGraph graph = fed_->site_graph();
  if (!nominal) {
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      graph.edges[e].rate = fed_->wan_link(e).effective_rate();
    }
  }
  // Leaf layer: each Clos site's leaves, in site order then leaf order —
  // the layout leaf_base() assumes. A leaf's uplink/downlink capacity is
  // its aggregate uplink bandwidth (both directions share the links), live
  // or nominal to match the edge rates above.
  for (std::size_t s = 0; s < fed_->site_count(); ++s) {
    net::ClosFabric* clos = fed_->site(s).clos();
    if (clos == nullptr) {
      continue;
    }
    for (int l = 0; l < clos->leaf_count(); ++l) {
      plan::LeafSpec leaf;
      leaf.name = fed_->site_name(s) + ":leaf" + std::to_string(l);
      leaf.site = s;
      leaf.pod = clos->pod_of_leaf(l);
      const double cap = clos->leaf_capacity(l, nominal);
      leaf.uplink_rate = cap;
      leaf.downlink_rate = cap;
      leaf.free_vm_slots = 0;  // filled below; stays 0 at the source
      graph.leaves.push_back(std::move(leaf));
    }
  }
  for (std::size_t s = 0; s < fed_->site_count(); ++s) {
    if (s == config_.source_site) {
      continue;
    }
    Testbed& site = fed_->site(s);
    const bool leafy = site.clos() != nullptr;
    const std::size_t base = leafy ? leaf_base(s) : 0;
    int slots = 0;
    std::vector<vmm::Host*> hosts = site.all_hosts();
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      int reserved = 0;
      if (s < reserved_by_site_.size() && h < reserved_by_site_[s].size()) {
        reserved = reserved_by_site_[s][h];
      }
      const int free = std::max(0, config_.dst_slots_per_host -
                                       static_cast<int>(hosts[h]->vms().size()) - reserved);
      slots += free;
      if (leafy) {
        const int leaf = site.leaf_of(*hosts[h]);
        if (leaf >= 0) {
          graph.leaves[base + static_cast<std::size_t>(leaf)].free_vm_slots += free;
        }
      }
    }
    graph.sites[s].free_vm_slots = slots;
  }
  return graph;
}

std::pair<vmm::Host*, std::size_t> MassEvacuation::pick_dst_host(std::size_t site,
                                                                 std::size_t dst_leaf) {
  auto& hosts = hosts_by_site_[site];
  auto& reserved = reserved_by_site_[site];
  const bool leaf_scoped = dst_leaf != plan::kNoLeaf && fed_->site(site).clos() != nullptr;
  const int want_leaf =
      leaf_scoped ? static_cast<int>(dst_leaf - leaf_base(site)) : net::ClosFabric::kSpineAttach;
  vmm::Host* best = nullptr;
  std::size_t best_index = 0;
  int best_free = 0;
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    if (leaf_scoped && fed_->site(site).leaf_of(*hosts[h]) != want_leaf) {
      continue;
    }
    const int free = config_.dst_slots_per_host - static_cast<int>(hosts[h]->vms().size()) -
                     reserved[h];
    if (free > best_free) {
      best_free = free;
      best = hosts[h];
      best_index = h;
    }
  }
  if (best == nullptr && leaf_scoped) {
    // The planned leaf filled since planning; place site-wide rather than
    // stall the wave.
    return pick_dst_host(site);
  }
  if (best != nullptr) {
    ++reserved[best_index];
  }
  return {best, best_index};
}

namespace {

sim::Task migrate_one(vmm::Host& src, vmm::Vm& vm, vmm::Host& dst, vmm::MigrationStats* stats,
                      double rate_cap) {
  co_await src.migrate(vm, dst, stats, rate_cap);
}

}  // namespace

sim::Task MassEvacuation::grant_wave(std::vector<Pending> members, int wave_index,
                                     EvacuationReport& report,
                                     std::vector<std::size_t>& deferred) {
  auto& sim = fed_->sim();
  // Keep the fabrics' static routes off partitioned edges wherever an
  // alternative exists, so this wave's (and in-flight next-chunk)
  // transfers take the detour instead of freezing on a dead edge. Pure
  // function of the links' current factors at the grant instant.
  fed_->recompute_routes();
  // Live mesh snapshot at the grant instant: effective rates decide both
  // reachability and the wave's rate assignment. A topology-blind driver
  // never looks at the leaf layer, so its rates may oversubscribe one.
  plan::SiteGraph live = current_graph(/*nominal=*/false);
  if (config_.topology_blind) {
    live = live.without_leaves();
  }
  std::vector<Pending> runnable;
  std::vector<std::vector<std::size_t>> routes;
  for (Pending& member : members) {
    std::vector<std::size_t> route = live.route(config_.source_site, member.dst_site, 0.0);
    // A dead source rack (every uplink down) or dead planned destination
    // leaf defers the member like a dead WAN route: the replan pass picks
    // a live leaf — or waits for the heal when none exists.
    bool leaf_dead = false;
    const std::size_t sl = moves_[member.vm_index].src_leaf;
    if (sl < live.leaves.size() && live.leaves[sl].uplink_rate <= 0.0) {
      leaf_dead = true;
    }
    if (member.dst_leaf < live.leaves.size() &&
        live.leaves[member.dst_leaf].downlink_rate <= 0.0) {
      leaf_dead = true;
    }
    if (route.empty() || leaf_dead) {
      ++report.vms[member.vm_index].deferrals;
      deferred.push_back(member.vm_index);
      continue;
    }
    runnable.push_back(member);
    routes.push_back(std::move(route));
  }
  if (runnable.empty()) {
    co_return;
  }

  plan::EvacuationPlanner rate_engine(live, config_.planner);
  std::vector<const std::vector<std::size_t>*> route_ptrs;
  route_ptrs.reserve(routes.size());
  for (const auto& route : routes) {
    route_ptrs.push_back(&route);
  }
  std::vector<double> caps(live.edges.size());
  for (std::size_t e = 0; e < live.edges.size(); ++e) {
    caps[e] = live.edges[e].rate;
  }
  std::vector<double> rates;
  if (!live.leaves.empty()) {
    const std::size_t n_leaves = live.leaves.size();
    std::vector<std::size_t> src_leaves;
    std::vector<std::size_t> dst_leaves;
    src_leaves.reserve(runnable.size());
    dst_leaves.reserve(runnable.size());
    for (const Pending& member : runnable) {
      const std::size_t sl = moves_[member.vm_index].src_leaf;
      src_leaves.push_back(sl < n_leaves ? sl : plan::kNoLeaf);
      dst_leaves.push_back(member.dst_leaf < n_leaves ? member.dst_leaf : plan::kNoLeaf);
    }
    std::vector<double> leaf_up(n_leaves, 0.0);
    std::vector<double> leaf_down(n_leaves, 0.0);
    for (std::size_t l = 0; l < n_leaves; ++l) {
      leaf_up[l] = std::max(0.0, live.leaves[l].uplink_rate);
      leaf_down[l] = std::max(0.0, live.leaves[l].downlink_rate);
    }
    rates = rate_engine.wave_rates(route_ptrs, caps, src_leaves, dst_leaves, leaf_up, leaf_down);
  } else {
    rates = rate_engine.wave_rates(route_ptrs, caps);
  }

  // kWaveGrant: ask the placement policy once per destination site for an
  // in-site host assignment (the site itself was fixed by the planner).
  // An empty assignment keeps the driver's own most-free-slots pick, so
  // the default StaticPolicy reproduces the historical placement
  // byte-for-byte. A non-empty one maps the site's members, in wave
  // order, to candidate host indices.
  std::vector<std::vector<int>> site_assignment(hosts_by_site_.size());
  std::vector<std::size_t> site_cursor(hosts_by_site_.size(), 0);
  std::vector<char> site_decided(hosts_by_site_.size(), 0);
  for (const Pending& member : runnable) {
    const std::size_t site = member.dst_site;
    if (site_decided[site] != 0) {
      continue;
    }
    site_decided[site] = 1;
    std::size_t site_vms = 0;
    for (const Pending& other : runnable) {
      site_vms += other.dst_site == site ? 1 : 0;
    }
    const auto& hosts = hosts_by_site_[site];
    const auto& reserved = reserved_by_site_[site];
    policy::Observation obs;
    obs.now = sim.now();
    obs.vm_count = site_vms;
    obs.sites = &live;
    obs.candidates.reserve(hosts.size());
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      policy::HostCandidate cand;
      cand.name = hosts[h]->name();
      cand.resident_vms = static_cast<int>(hosts[h]->vms().size());
      cand.free_slots =
          std::max(0, config_.dst_slots_per_host - cand.resident_vms - reserved[h]);
      obs.candidates.push_back(std::move(cand));
    }
    const policy::Action action = config_.policies.decide(policy::Hook::kWaveGrant, obs);
    if (!action.assignment.empty()) {
      site_assignment[site] = policy::resolve_assignment(
          action, site_vms, hosts.size(),
          "kWaveGrant on site " + std::string(fed_->site_name(site)));
    }
  }

  std::vector<sim::TaskRef> refs;
  std::vector<std::pair<std::size_t, std::size_t>> placements;  // (dst_site, host idx)
  refs.reserve(runnable.size());
  for (std::size_t k = 0; k < runnable.size(); ++k) {
    const Pending& member = runnable[k];
    vmm::Host* dst = nullptr;
    std::size_t host_index = 0;
    if (!site_assignment[member.dst_site].empty()) {
      // Policy placement: honor the assignment but keep the legacy slot
      // accounting (reserve now, release when the migration lands).
      auto& hosts = hosts_by_site_[member.dst_site];
      auto& reserved = reserved_by_site_[member.dst_site];
      host_index = static_cast<std::size_t>(
          site_assignment[member.dst_site][site_cursor[member.dst_site]++]);
      const int free = config_.dst_slots_per_host -
                       static_cast<int>(hosts[host_index]->vms().size()) -
                       reserved[host_index];
      if (free > 0) {
        dst = hosts[host_index];
        ++reserved[host_index];
      }
      NM_CHECK(dst != nullptr, "kWaveGrant assigned VM " << vms_[member.vm_index]->name()
                                                         << " to full host "
                                                         << hosts[host_index]->name());
    } else {
      std::tie(dst, host_index) = pick_dst_host(
          member.dst_site, config_.topology_blind ? plan::kNoLeaf : member.dst_leaf);
    }
    NM_CHECK(dst != nullptr, "evacuation wave " << wave_index << " has no free slot on site "
                                                << fed_->site_name(member.dst_site));
    placements.emplace_back(member.dst_site, host_index);
    VmOutcome& outcome = report.vms[member.vm_index];
    outcome.dst_host = dst->name();
    outcome.wave = wave_index;
    outcome.start_ns = sim.now().count_nanos();
    const double rate_cap =
        rates[k] > 0.0 ? rates[k] : std::numeric_limits<double>::infinity();
    refs.push_back(sim.spawn(migrate_one(*src_hosts_[member.vm_index], *vms_[member.vm_index],
                                         *dst, &stats_[member.vm_index], rate_cap),
                             "evac:" + vms_[member.vm_index]->name()));
  }
  co_await sim::join_all(std::move(refs));
  for (std::size_t k = 0; k < runnable.size(); ++k) {
    const std::size_t vm_index = runnable[k].vm_index;
    VmOutcome& outcome = report.vms[vm_index];
    outcome.done_ns = stats_[vm_index].end_at.count_nanos();
    outcome.downtime = stats_[vm_index].downtime;
    // The VM now counts as a resident; release the in-flight reservation.
    --reserved_by_site_[placements[k].first][placements[k].second];
  }
}

sim::Task MassEvacuation::run(EvacuationReport* report_out) {
  auto& sim = fed_->sim();
  EvacuationReport report;
  report.started_ns = sim.now().count_nanos();

  // --- Collect the fleet: every VM resident on the source site. ---------
  vms_.clear();
  src_hosts_.clear();
  moves_.clear();
  Testbed& source = fed_->site(config_.source_site);
  const std::size_t source_leaf_base =
      source.clos() != nullptr ? leaf_base(config_.source_site) : 0;
  std::vector<vmm::Host*> source_hosts = source.all_hosts();
  for (std::size_t h = 0; h < source_hosts.size(); ++h) {
    const bool compress = source_hosts[h]->migration_engine().config().compress_dup_pages;
    const int src_leaf = source.leaf_of(*source_hosts[h]);
    for (const auto& vm : source_hosts[h]->vms()) {
      auto& mem = vm->memory();
      plan::VmToMove move;
      move.name = vm->name();
      const vmm::GuestMemory::PageRange all{0, mem.page_count()};
      move.bytes = static_cast<double>(mem.wire_size(all, compress).count());
      move.scan_bytes = static_cast<double>(mem.size().count());
      move.src_host = h;
      if (src_leaf >= 0) {
        move.src_leaf = source_leaf_base + static_cast<std::size_t>(src_leaf);
      }
      moves_.push_back(std::move(move));
      vms_.push_back(vm);
      src_hosts_.push_back(source_hosts[h]);
    }
  }
  stats_.assign(vms_.size(), vmm::MigrationStats{});
  report.vms.resize(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    report.vms[i].vm = vms_[i]->name();
  }

  hosts_by_site_.assign(fed_->site_count(), {});
  reserved_by_site_.assign(fed_->site_count(), {});
  for (std::size_t s = 0; s < fed_->site_count(); ++s) {
    if (s == config_.source_site) {
      continue;
    }
    hosts_by_site_[s] = fed_->site(s).all_hosts();
    reserved_by_site_[s].assign(hosts_by_site_[s].size(), 0);
  }

  // --- Plan against the nominal mesh. -----------------------------------
  plan::SiteGraph nominal_graph = current_graph(/*nominal=*/true);
  if (config_.topology_blind) {
    nominal_graph = nominal_graph.without_leaves();
  }
  plan::EvacuationPlanner planner(std::move(nominal_graph), config_.planner);
  const plan::Plan plan = config_.sequential
                              ? planner.plan_sequential(config_.source_site, moves_)
                              : planner.plan(config_.source_site, moves_);
  report.sequential_fallback = plan.sequential_fallback;
  NM_LOG_INFO("evacuation") << "site " << fed_->site_name(config_.source_site) << ": "
                            << vms_.size() << " VMs, " << plan.wave_count << " planned waves"
                            << (plan.sequential_fallback ? " (sequential fallback)" : "")
                            << ", est. makespan " << Duration::seconds(plan.makespan);

  std::vector<std::vector<Pending>> waves(static_cast<std::size_t>(plan.wave_count));
  std::vector<std::size_t> deferred;
  for (const plan::Assignment& a : plan.assignments) {
    if (a.wave < 0) {
      deferred.push_back(a.vm);
    } else {
      waves[static_cast<std::size_t>(a.wave)].push_back(
          Pending{a.vm, a.dst_site, a.planned_rate, a.dst_leaf});
    }
  }
  for (auto& wave : waves) {
    if (!wave.empty()) {
      co_await grant_wave(std::move(wave), report.waves++, report, deferred);
    }
  }

  // --- Deferred VMs: replan against the live mesh until all land (or the
  // mesh is whole and they are still unschedulable — then give up). ------
  while (!deferred.empty()) {
    ++report.replans;
    plan::SiteGraph live = current_graph(/*nominal=*/false);
    if (config_.topology_blind) {
      live = live.without_leaves();
    }
    plan::EvacuationPlanner replanner(std::move(live), config_.planner);
    std::vector<plan::VmToMove> subset;
    subset.reserve(deferred.size());
    for (std::size_t vm_index : deferred) {
      subset.push_back(moves_[vm_index]);
    }
    const plan::Plan sub = replanner.plan(config_.source_site, subset);
    std::vector<std::vector<Pending>> sub_waves(static_cast<std::size_t>(sub.wave_count));
    std::vector<std::size_t> still_deferred;
    bool scheduled_any = false;
    for (const plan::Assignment& a : sub.assignments) {
      const std::size_t vm_index = deferred[a.vm];
      if (a.wave < 0) {
        still_deferred.push_back(vm_index);
      } else {
        scheduled_any = true;
        sub_waves[static_cast<std::size_t>(a.wave)].push_back(
            Pending{vm_index, a.dst_site, a.planned_rate, a.dst_leaf});
      }
    }
    if (!scheduled_any) {
      bool any_partitioned = false;
      for (std::size_t e = 0; e < fed_->edge_count(); ++e) {
        any_partitioned = any_partitioned || fed_->wan_link(e).partitioned();
      }
      // A dead intra-site link can make VMs unschedulable just like a
      // partitioned WAN edge — keep retrying until the fabric heals.
      for (std::size_t s = 0; s < fed_->site_count(); ++s) {
        net::ClosFabric* clos = fed_->site(s).clos();
        any_partitioned = any_partitioned || (clos != nullptr && clos->has_dead_link());
      }
      if (!any_partitioned) {
        NM_LOG_WARN("evacuation") << deferred.size()
                                  << " VM(s) permanently unschedulable (no reachable "
                                     "destination slots); giving up on them";
        break;
      }
      co_await sim.delay(config_.retry_period);
      continue;
    }
    deferred = std::move(still_deferred);
    for (auto& wave : sub_waves) {
      if (!wave.empty()) {
        co_await grant_wave(std::move(wave), report.waves++, report, deferred);
      }
    }
  }

  report.done_ns = sim.now().count_nanos();
  report.evacuated = 0;
  for (const VmOutcome& outcome : report.vms) {
    if (outcome.done_ns >= 0) {
      ++report.evacuated;
    }
  }
  NM_LOG_INFO("evacuation") << report.evacuated << "/" << report.vms.size()
                            << " VMs evacuated in " << report.makespan() << " over "
                            << report.waves << " waves (" << report.replans << " replans)";
  if (report_out != nullptr) {
    *report_out = report;
  }
}

}  // namespace nm::core
