// Service-aware migration episode runner: schedules one live migration at
// a chosen instant and keeps the *live* MigrationStats readable for the
// whole episode, so a request-serving workload (workloads::KvService) can
// classify every completion against the phase the service was actually in
// — steady, pre-copy, blackout, post — while the migration is still
// running. After completion it reports the phase spans and checks the
// blackout against the engine's max_downtime promise.
//
// Decisions (when to fire, which destination, per-round throttling, the
// pause instant) route through a policy::PolicySet carried by the
// EpisodeSpec; the default set is StaticPolicy everywhere, which is the
// historical behavior bit for bit.
#pragma once

#include <memory>
#include <vector>

#include "policy/policy.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "util/units.h"
#include "vmm/migration.h"

namespace nm::vmm {
class Host;
class Vm;
}  // namespace nm::vmm

namespace nm::core {

struct ServiceEpisodeReport {
  TimePoint start_at;
  TimePoint pause_at;
  TimePoint end_at;
  Duration precopy = Duration::zero();   // start -> pause
  Duration blackout = Duration::zero();  // stop-and-copy downtime
  Duration total = Duration::zero();
};

/// Everything one episode is built from (the FlowSpec idiom): the VM, its
/// primary destination, the firing delay, optional alternate destinations
/// for the placement policy to choose among, and the decision plug-ins.
struct EpisodeSpec {
  EpisodeSpec(std::shared_ptr<vmm::Vm> vm, vmm::Host& destination)
      : vm(std::move(vm)) {
    candidates.push_back(&destination);
  }

  /// Fire `d` after start() (default: immediately).
  EpisodeSpec& after(Duration d) {
    delay = d;
    return *this;
  }
  /// Adds an alternate destination the kEpisodeStart policy may pick
  /// instead of the primary (StaticPolicy always keeps the primary).
  EpisodeSpec& or_to(vmm::Host& alternate) {
    candidates.push_back(&alternate);
    return *this;
  }
  /// Installs the decision plug-ins; `seed` binds their Rng streams.
  EpisodeSpec& with(policy::PolicySet set, std::uint64_t rng_seed = 0) {
    policies = std::move(set);
    seed = rng_seed;
    return *this;
  }
  /// Wires the observation callbacks that feed the policies (e.g.
  /// KvService::observation_source()).
  EpisodeSpec& observe(policy::ObservationSource src) {
    source = std::move(src);
    return *this;
  }

  std::shared_ptr<vmm::Vm> vm;
  /// candidates[0] is the primary destination; the rest are alternates.
  std::vector<vmm::Host*> candidates;
  Duration delay = Duration::zero();
  policy::PolicySet policies;
  policy::ObservationSource source;
  std::uint64_t seed = 0;
};

class ServiceEpisode {
 public:
  explicit ServiceEpisode(sim::Simulation& sim) : sim_(&sim) {}
  ServiceEpisode(const ServiceEpisode&) = delete;
  ServiceEpisode& operator=(const ServiceEpisode&) = delete;

  /// Schedules the episode described by `spec`; returns the joinable ref
  /// (also retained internally for done()/report()). Reusable: a finished
  /// episode object may start() again (live() resets); a second start()
  /// while one is still in flight fails loudly.
  sim::TaskRef start(EpisodeSpec spec);

  /// Deprecated shim (one PR): `start({vm, dst}.after(delay))` with
  /// default (static) policies.
  [[deprecated("build an EpisodeSpec{vm, dst}.after(delay) instead")]]
  sim::TaskRef start(std::shared_ptr<vmm::Vm> vm, vmm::Host& dst, Duration delay);

  /// Compile guard for near-misses of the removed signature: extra
  /// arguments after the delay can only be policy state, which belongs in
  /// the EpisodeSpec.
  template <typename... Args>
  sim::TaskRef start(std::shared_ptr<vmm::Vm>, vmm::Host&, Duration, Args&&...) = delete;

  /// The live stats object the migration engine mirrors into per chunk —
  /// hand this to KvService::observe_migration before the episode starts.
  [[nodiscard]] const vmm::MigrationStats& live() const { return live_; }

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool done() const;

  /// Phase spans of the completed episode.
  [[nodiscard]] ServiceEpisodeReport report() const;

  /// True when the measured blackout stayed within the engine's configured
  /// max_downtime (with `slack` as a multiplicative allowance for the
  /// final-drain estimate error).
  [[nodiscard]] bool downtime_within(Duration max_downtime, double slack = 1.0) const;

 private:
  [[nodiscard]] sim::Task run(EpisodeSpec spec);

  sim::Simulation* sim_;
  vmm::MigrationStats live_;
  sim::TaskRef ref_;
  bool started_ = false;
};

}  // namespace nm::core
