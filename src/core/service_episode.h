// Service-aware migration episode runner: schedules one live migration at
// a chosen instant and keeps the *live* MigrationStats readable for the
// whole episode, so a request-serving workload (workloads::KvService) can
// classify every completion against the phase the service was actually in
// — steady, pre-copy, blackout, post — while the migration is still
// running. After completion it reports the phase spans and checks the
// blackout against the engine's max_downtime promise.
#pragma once

#include <memory>

#include "sim/simulation.h"
#include "sim/task.h"
#include "util/units.h"
#include "vmm/migration.h"

namespace nm::vmm {
class Host;
class Vm;
}  // namespace nm::vmm

namespace nm::core {

struct ServiceEpisodeReport {
  TimePoint start_at;
  TimePoint pause_at;
  TimePoint end_at;
  Duration precopy = Duration::zero();   // start -> pause
  Duration blackout = Duration::zero();  // stop-and-copy downtime
  Duration total = Duration::zero();
};

class ServiceEpisode {
 public:
  explicit ServiceEpisode(sim::Simulation& sim) : sim_(&sim) {}
  ServiceEpisode(const ServiceEpisode&) = delete;
  ServiceEpisode& operator=(const ServiceEpisode&) = delete;

  /// Schedules `vm`'s migration off its current host to `dst`, starting
  /// `delay` from now. One episode per object; returns the joinable ref
  /// (also retained internally for done()/report()).
  sim::TaskRef start(std::shared_ptr<vmm::Vm> vm, vmm::Host& dst, Duration delay);

  /// The live stats object the migration engine mirrors into per chunk —
  /// hand this to KvService::observe_migration before the episode starts.
  [[nodiscard]] const vmm::MigrationStats& live() const { return live_; }

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool done() const;

  /// Phase spans of the completed episode.
  [[nodiscard]] ServiceEpisodeReport report() const;

  /// True when the measured blackout stayed within the engine's configured
  /// max_downtime (with `slack` as a multiplicative allowance for the
  /// final-drain estimate error).
  [[nodiscard]] bool downtime_within(Duration max_downtime, double slack = 1.0) const;

 private:
  [[nodiscard]] sim::Task run(std::shared_ptr<vmm::Vm> vm, vmm::Host* dst, Duration delay);

  sim::Simulation* sim_;
  vmm::MigrationStats live_;
  sim::TaskRef ref_;
  bool started_ = false;
};

}  // namespace nm::core
