// Federation: two AGC testbeds coupled on one shared simulation clock by a
// calibrated WAN link (paper §II's disaster-recovery use case — evacuate a
// site across an inter-datacenter link, not across a hallway).
//
// Both sites are built inside one FluidNet, so a cross-site transfer is an
// ordinary boundary flow: its shares cross the source blade's tx, the
// site's switch uplink, the WanLink endpoint pair (whose CapPolicy folds
// the latency/bandwidth/loss model into the published ghost caps —
// DESIGN.md §7), the peer's uplink and the destination's rx. Determinism is
// inherited wholesale: one event queue, canonical-order commits, timelines
// bit-identical at every solve_workers count (wan_federation_test pins it).
//
// The sites mount one geo-replicated shared store (the cross-site
// equivalent of the paper's NFS mount) — live migration requires source and
// destination to share storage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "sim/wan_link.h"
#include "vmm/monitor.h"

namespace nm::core {

struct FederationConfig {
  TestbedConfig site_a;
  TestbedConfig site_b;
  /// The inter-datacenter link. Defaults to 1 Gbps with no impairments;
  /// calibrate rtt/loss/schedule per scenario (EXPERIMENTS.md lists the
  /// LAN / metro / WAN presets).
  sim::WanLinkConfig wan;
  /// Line rate of each site's WAN-facing switch uplink port.
  Bandwidth uplink_rate = Bandwidth::gbps(10);
  /// Throughput of the geo-replicated store both sites mount.
  Bandwidth geo_storage_rate = Bandwidth::mib_per_sec(300);
  /// Worker threads in the shared SolvePool (the per-site configs'
  /// solve_workers/seed are ignored; the clock and pool are federation-
  /// wide).
  int solve_workers = 0;
  std::uint64_t seed = 1;

  FederationConfig() {
    // Cross-site transfers resolve addresses locally first, so the sites'
    // address spaces must be disjoint or a peer destination could shadow a
    // local one and deliver to the wrong site.
    site_b.eth.address_base = 1u << 16;
  }
};

class Federation {
 public:
  explicit Federation(FederationConfig config = {});
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  [[nodiscard]] const FederationConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sim::FluidNet& net() { return net_; }
  [[nodiscard]] Testbed& site_a() { return *site_a_; }
  [[nodiscard]] Testbed& site_b() { return *site_b_; }
  [[nodiscard]] sim::WanLink& wan() { return *wan_; }
  [[nodiscard]] vmm::SharedStorage& storage() { return *storage_; }

  /// Looks a host up across both sites ("a:ib3", "b:eth0").
  [[nodiscard]] vmm::Host* find_host(const std::string& name);
  /// Resolver covering both sites — hand it to a CloudScheduler's
  /// set_secondary_resolver so migration plans may name peer-site hosts.
  [[nodiscard]] vmm::Monitor::HostResolver resolver();
  /// The domain owning `res`, across every site (nullptr when foreign).
  [[nodiscard]] sim::FluidDomain* domain_of(const sim::FluidResource& res) {
    return net_.domain_of(res);
  }

  /// Lets every boot-time link on both sites finish training.
  void settle();

  /// Federation-wide boundary-exchange stats (same counters Testbed
  /// exposes; here they aggregate both sites plus the WAN by construction
  /// since the pool is shared).
  [[nodiscard]] std::size_t exchange_round_count() const { return net_.exchange_round_count(); }
  [[nodiscard]] std::size_t unconverged_exchange_count() const {
    return net_.unconverged_exchange_count();
  }
  [[nodiscard]] std::size_t max_exchange_rounds_per_settle() const {
    return net_.max_exchange_rounds_per_settle();
  }

 private:
  FederationConfig config_;
  sim::Simulation sim_;
  // Destroyed after everything below: the net's pool detaches schedulers
  // and joins workers while the simulation is alive.
  sim::FluidNet net_;
  std::unique_ptr<vmm::SharedStorage> storage_;
  std::unique_ptr<Testbed> site_a_;
  std::unique_ptr<Testbed> site_b_;
  hw::Cluster gateways_{"wan-gw"};
  std::vector<std::unique_ptr<net::NicPort>> uplinks_;
  std::unique_ptr<sim::WanLink> wan_;
};

}  // namespace nm::core
