// Federation: N AGC testbeds coupled on one shared simulation clock by a
// mesh of calibrated WAN links (paper §II's disaster-recovery use case —
// evacuate a site across inter-datacenter links, not across a hallway).
//
// All sites are built inside one FluidNet, so a cross-site transfer is an
// ordinary boundary flow: its shares cross the source blade's tx, then for
// every WAN hop on the route the egress site's switch uplink, the WanLink
// endpoint pair (whose CapPolicy folds the latency/bandwidth/loss model
// into the published ghost caps — DESIGN.md §7) and the ingress site's
// uplink, and finally the destination's rx. Routes are fewest-hops over
// the edge mesh, computed with a deterministic BFS at construction and
// re-computable against the live mesh after partitions
// (recompute_routes()). Determinism is inherited wholesale: one event
// queue, canonical-order commits, timelines bit-identical at every
// solve_workers count (wan_federation_test pins it).
//
// The sites mount one geo-replicated shared store (the cross-site
// equivalent of the paper's NFS mount) — live migration requires source and
// destination to share storage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "plan/evacuation_planner.h"
#include "sim/wan_link.h"
#include "vmm/monitor.h"

namespace nm::core {

struct FederationSiteConfig {
  /// Site prefix for every host/fabric name ("tokyo" → "tokyo:eth0").
  /// Must be unique within the federation and contain no ':'.
  std::string name;
  TestbedConfig testbed;
};

struct FederationEdgeConfig {
  /// Indices into FederationConfig::sites.
  std::size_t a = 0;
  std::size_t b = 0;
  sim::WanLinkConfig wan;
};

struct FederationConfig {
  /// Two-site shorthand, used when `sites` is empty: site_a and site_b
  /// coupled by `wan` (named "a" and "b").
  TestbedConfig site_a;
  TestbedConfig site_b;
  /// The inter-datacenter link of the two-site shorthand. Defaults to
  /// 1 Gbps with no impairments; calibrate rtt/loss/schedule per scenario
  /// (EXPERIMENTS.md lists the LAN / metro / WAN presets).
  sim::WanLinkConfig wan;

  /// N-site mesh: named sites plus WAN edges between them. Non-empty
  /// `sites` overrides the two-site shorthand entirely. Every site should
  /// be reachable from every other (unconnected pairs simply cannot
  /// exchange traffic).
  std::vector<FederationSiteConfig> sites;
  std::vector<FederationEdgeConfig> edges;

  /// Line rate of each site's WAN-facing switch uplink ports (one per
  /// incident edge).
  Bandwidth uplink_rate = Bandwidth::gbps(10);
  /// Throughput of the geo-replicated store all sites mount.
  Bandwidth geo_storage_rate = Bandwidth::mib_per_sec(300);
  /// Worker threads in the shared SolvePool (the per-site configs'
  /// solve_workers/seed are ignored; the clock and pool are federation-
  /// wide).
  int solve_workers = 0;
  std::uint64_t seed = 1;
};

class Federation {
 public:
  explicit Federation(FederationConfig config = {});
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  [[nodiscard]] const FederationConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sim::FluidNet& net() { return net_; }
  [[nodiscard]] vmm::SharedStorage& storage() { return *storage_; }

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] Testbed& site(std::size_t i) { return *sites_[i]; }
  [[nodiscard]] const std::string& site_name(std::size_t i) const { return site_names_[i]; }
  /// Site by configured name; nullptr when absent.
  [[nodiscard]] Testbed* site_by_name(const std::string& name);
  /// Two-site shorthand accessors (sites 0 and 1).
  [[nodiscard]] Testbed& site_a() { return site(0); }
  [[nodiscard]] Testbed& site_b() { return site(1); }

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] sim::WanLink& wan_link(std::size_t e) { return *edges_[e].link; }
  /// Endpoint site indices of edge `e`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> edge_sites(std::size_t e) const {
    return {edges_[e].a, edges_[e].b};
  }
  /// The two-site shorthand's link (edge 0).
  [[nodiscard]] sim::WanLink& wan() { return wan_link(0); }

  /// Edge indices of the current fewest-hops route from site `i` to site
  /// `j` (empty when i == j or the pair was unreachable at the last route
  /// computation).
  [[nodiscard]] const std::vector<std::size_t>& route(std::size_t i, std::size_t j) const {
    return routes_[i][j];
  }

  /// Recomputes every pairwise route against the *live* mesh (edges whose
  /// WanLink is not partitioned) and re-registers the fabric routes. A
  /// pair with no live path keeps its previous route, so in-flight and new
  /// transfers on it freeze at rate 0 until the mesh heals rather than
  /// erroring. Deterministic: a pure function of the links' current
  /// factors; call from task context at fixed points in simulated time.
  void recompute_routes();

  /// The mesh as a planner site graph: one vertex per site (in site index
  /// order, free_vm_slots 0 — callers fill capacity), one edge per WAN
  /// link with the link's *nominal* rate (factor-1 line rate folded with
  /// the Mathis ceiling at the current RTT) and no schedule. Drivers
  /// re-check live effective rates at wave grant time instead.
  [[nodiscard]] plan::SiteGraph site_graph() const;

  /// Looks a host up across all sites ("a:ib3", "b:eth0").
  [[nodiscard]] vmm::Host* find_host(const std::string& name);
  /// Resolver covering every site — hand it to a CloudScheduler's
  /// set_secondary_resolver so migration plans may name peer-site hosts.
  [[nodiscard]] vmm::Monitor::HostResolver resolver();
  /// The domain owning `res`, across every site (nullptr when foreign).
  [[nodiscard]] sim::FluidDomain* domain_of(const sim::FluidResource& res) {
    return net_.domain_of(res);
  }

  /// Lets every boot-time link on all sites finish training.
  void settle();

  /// Federation-wide boundary-exchange stats (same counters Testbed
  /// exposes; here they aggregate every site plus the WAN mesh by
  /// construction since the pool is shared).
  [[nodiscard]] std::size_t exchange_round_count() const { return net_.exchange_round_count(); }
  [[nodiscard]] std::size_t unconverged_exchange_count() const {
    return net_.unconverged_exchange_count();
  }
  [[nodiscard]] std::size_t max_exchange_rounds_per_settle() const {
    return net_.max_exchange_rounds_per_settle();
  }

 private:
  struct Edge {
    std::size_t a = 0;
    std::size_t b = 0;
    net::NicPort* uplink_a = nullptr;
    net::NicPort* uplink_b = nullptr;
    std::unique_ptr<sim::WanLink> link;
  };

  /// Fewest-hops BFS over the edge subset for which `alive(e)` holds;
  /// deterministic (neighbours in edge-index order).
  template <typename AliveFn>
  [[nodiscard]] std::vector<std::size_t> bfs_route(std::size_t from, std::size_t to,
                                                   AliveFn alive) const;
  /// Registers routes_[i][j] into the sites' eth fabrics.
  void install_fabric_routes();

  FederationConfig config_;
  sim::Simulation sim_;
  // Destroyed after everything below: the net's pool detaches schedulers
  // and joins workers while the simulation is alive.
  sim::FluidNet net_;
  std::unique_ptr<vmm::SharedStorage> storage_;
  std::vector<std::string> site_names_;
  std::vector<std::unique_ptr<Testbed>> sites_;
  hw::Cluster gateways_{"wan-gw"};
  std::vector<std::unique_ptr<net::NicPort>> uplinks_;
  // After sites_: WanLink destructors detach cap policies from resources
  // registered in the sites' schedulers.
  std::vector<Edge> edges_;
  std::vector<std::vector<std::vector<std::size_t>>> routes_;
};

}  // namespace nm::core
