#include "core/service_episode.h"

#include <algorithm>
#include <utility>

#include "util/error.h"
#include "vmm/host.h"
#include "vmm/vm.h"

namespace nm::core {

sim::TaskRef ServiceEpisode::start(EpisodeSpec spec) {
  // Reuse is fine once the previous episode finished; mid-flight restarts
  // would corrupt live_ under the service's feet.
  NM_CHECK(!started_ || done(),
           "ServiceEpisode::start while a previous episode is still in flight");
  NM_CHECK(spec.vm != nullptr, "ServiceEpisode::start(nullptr)");
  NM_CHECK(!spec.candidates.empty(), "EpisodeSpec has no destination");
  for (vmm::Host* host : spec.candidates) {
    NM_CHECK(host != nullptr, "EpisodeSpec has a null destination candidate");
  }
  live_ = vmm::MigrationStats{};  // fresh phase boundaries for observers
  started_ = true;
  spec.policies.bind_seed(spec.seed);
  ref_ = sim_->spawn(run(std::move(spec)), "service-episode");
  return ref_;
}

sim::TaskRef ServiceEpisode::start(std::shared_ptr<vmm::Vm> vm, vmm::Host& dst,
                                   Duration delay) {
  return start(EpisodeSpec(std::move(vm), dst).after(delay));
}

bool ServiceEpisode::done() const { return ref_.valid() && ref_.done(); }

sim::Task ServiceEpisode::run(EpisodeSpec spec) {
  co_await sim_->delay(spec.delay);

  // kEpisodeStart: fire-or-defer, and the destination pick among the
  // spec's candidates (StaticPolicy: fire now, keep the primary).
  auto observe = [this, &spec] {
    policy::Observation obs;
    obs.now = sim_->now();
    if (spec.source.slo) {
      obs.slo = spec.source.slo();
    }
    obs.vm_count = 1;
    obs.candidates.reserve(spec.candidates.size());
    for (const vmm::Host* host : spec.candidates) {
      policy::HostCandidate cand;
      cand.name = host->name();
      cand.resident_vms = static_cast<int>(host->vms().size());
      obs.candidates.push_back(std::move(cand));
    }
    return obs;
  };
  policy::Action action = spec.policies.decide(policy::Hook::kEpisodeStart, observe());
  while (action.defer) {
    co_await sim_->delay(action.defer_for > Duration::zero() ? action.defer_for
                                                             : Duration::millis(100));
    action = spec.policies.decide(policy::Hook::kEpisodeStart, observe());
  }
  const auto picks = policy::resolve_assignment(action, /*vm_count=*/1,
                                                spec.candidates.size(), "service episode");
  vmm::Host* dst = spec.candidates[static_cast<std::size_t>(picks.front())];

  auto& src = spec.vm->host();  // resolved at fire time, not scheduling time
  const auto& mig = src.migration_engine().config();
  const double line_rate =
      mig.use_rdma ? mig.max_bandwidth : std::min(mig.thread_send_rate, mig.max_bandwidth);
  const vmm::MigrationControl control = policy::make_migration_control(
      spec.policies, spec.source, mig.max_downtime, line_rate);
  co_await src.migrate(*spec.vm, *dst, &live_,
                       std::numeric_limits<double>::infinity(), &control);
}

ServiceEpisodeReport ServiceEpisode::report() const {
  NM_CHECK(done(), "ServiceEpisode::report before the episode completed");
  ServiceEpisodeReport r;
  r.start_at = live_.start_at;
  r.pause_at = live_.pause_at;
  r.end_at = live_.end_at;
  r.precopy = live_.pause_at - live_.start_at;
  r.blackout = live_.downtime;
  r.total = live_.total;
  return r;
}

bool ServiceEpisode::downtime_within(Duration max_downtime, double slack) const {
  NM_CHECK(done(), "ServiceEpisode::downtime_within before the episode completed");
  return live_.downtime <= max_downtime * slack;
}

}  // namespace nm::core
