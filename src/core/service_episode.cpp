#include "core/service_episode.h"

#include "util/error.h"
#include "vmm/host.h"
#include "vmm/vm.h"

namespace nm::core {

sim::TaskRef ServiceEpisode::start(std::shared_ptr<vmm::Vm> vm, vmm::Host& dst,
                                   Duration delay) {
  NM_CHECK(!started_, "ServiceEpisode::start called twice");
  NM_CHECK(vm != nullptr, "ServiceEpisode::start(nullptr)");
  started_ = true;
  ref_ = sim_->spawn(run(std::move(vm), &dst, delay), "service-episode");
  return ref_;
}

bool ServiceEpisode::done() const { return ref_.valid() && ref_.done(); }

sim::Task ServiceEpisode::run(std::shared_ptr<vmm::Vm> vm, vmm::Host* dst, Duration delay) {
  co_await sim_->delay(delay);
  auto& src = vm->host();  // resolved at fire time, not at scheduling time
  co_await src.migrate(*vm, *dst, &live_);
}

ServiceEpisodeReport ServiceEpisode::report() const {
  NM_CHECK(done(), "ServiceEpisode::report before the episode completed");
  ServiceEpisodeReport r;
  r.start_at = live_.start_at;
  r.pause_at = live_.pause_at;
  r.end_at = live_.end_at;
  r.precopy = live_.pause_at - live_.start_at;
  r.blackout = live_.downtime;
  r.total = live_.total;
  return r;
}

bool ServiceEpisode::downtime_within(Duration max_downtime, double slack) const {
  NM_CHECK(done(), "ServiceEpisode::downtime_within before the episode completed");
  return live_.downtime <= max_downtime * slack;
}

}  // namespace nm::core
