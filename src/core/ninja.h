// Ninja migration: the paper's contribution. Orchestrates an
// interconnect-transparent migration of all the VMs of an MPI job between
// clusters with different interconnects, by composing:
//   - a checkpoint request into the MPI runtime (CRCP quiesce + SELF
//     callbacks = the SymVirt coordinators),
//   - a SymVirt controller + agents driving each VM's monitor through the
//     three windows (detach -> migrate -> re-attach),
//   - the cloud scheduler's knowledge of host lists and PCI ids (Fig 5).
//
// The phase timings it records are exactly the decomposition reported in
// Fig 4 / Table II / Fig 6: coordination, hotplug (detach + attach +
// confirm), migration, and link-up.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "policy/policy.h"
#include "util/timeline.h"
#include "mpi/runtime.h"
#include "symvirt/controller.h"
#include "symvirt/coordinator.h"
#include "symvirt/generic.h"
#include "vmm/migration.h"

namespace nm::core {

/// What the cloud scheduler hands Ninja for one migration episode.
struct MigrationPlan {
  std::vector<std::shared_ptr<vmm::Vm>> vms;
  /// Destination host *candidates*. The kEpisodeStart policy assigns each
  /// VM a candidate; StaticPolicy (the default) reproduces the historical
  /// round-robin `destinations[i % size]` expansion (fewer hosts than VMs
  /// = server consolidation).
  std::vector<std::string> destinations;
  /// Hot-detach this device tag in window A when present on the VMs.
  std::string hca_tag = "vf0";
  /// Relocate through shared storage (checkpoint on the source, restore on
  /// the destination) instead of live pre-copy — the paper's §II proactive
  /// fault-tolerance mode ("restart VMs on an Ethernet cluster from
  /// checkpointed VM images on an Infiniband cluster").
  bool via_storage = false;
  /// Re-attach the destination hosts' HCA in window C (recovery
  /// migration); leave empty for a fallback to an Ethernet-only cluster.
  std::string attach_host_pci;
  std::size_t ranks_per_vm = 1;
};

/// Phase breakdown of one Ninja episode.
struct NinjaStats {
  Duration coordination = Duration::zero();  // request -> all parked
  Duration detach = Duration::zero();
  Duration migration = Duration::zero();
  Duration attach = Duration::zero();
  /// Confirm + link training + BTL reconstruction (until the job resumes).
  Duration linkup = Duration::zero();
  Duration total = Duration::zero();
  std::vector<vmm::MigrationStats> per_vm;
  /// Phase spans on the simulated clock (render with timeline.render()).
  Timeline timeline;

  /// The paper's "hotplug" figure: detach + re-attach + confirm. The
  /// confirm constant is folded into linkup during measurement, so we
  /// report it explicitly.
  [[nodiscard]] Duration hotplug(Duration confirm) const {
    return detach + attach + confirm;
  }
  [[nodiscard]] Duration linkup_excl_confirm(Duration confirm) const {
    return linkup >= confirm ? linkup - confirm : Duration::zero();
  }
};

/// Everything a NinjaMigrator is built from (the PolicySet-bearing
/// config, mirroring the FlowSpec idiom): the cloud scheduler's name
/// resolver, coordinator timings, and the decision plug-ins consulted at
/// the episode's clocked hook points. A default-constructed `policies` is
/// StaticPolicy everywhere — the legacy behavior, bit for bit.
struct NinjaConfig {
  /// Maps destination host names (the cloud scheduler's host list) to VMM
  /// hosts. Required.
  vmm::Monitor::HostResolver resolver;
  symvirt::CoordinatorTiming timing = {};
  /// kEpisodeStart picks destinations / defers; kPreCopyRound and
  /// kPauseDecision steer each VM's migration loop.
  policy::PolicySet policies;
  /// Fills the SLO half of each Observation (null members are fine).
  policy::ObservationSource source;
  /// Seeds the policies' named Rng streams (testbed seed, normally).
  std::uint64_t seed = 0;
};

class NinjaMigrator {
 public:
  NinjaMigrator(sim::Simulation& sim, mpi::MpiRuntime& runtime, NinjaConfig config);

  /// Deprecated shim (one PR): forwards to the NinjaConfig constructor
  /// with default (static) policies.
  [[deprecated("build a NinjaConfig{resolver, timing, policies, ...} instead")]]
  NinjaMigrator(sim::Simulation& sim, mpi::MpiRuntime& runtime,
                vmm::Monitor::HostResolver resolver,
                symvirt::CoordinatorTiming timing = {});

  /// Compile guard for near-misses of the removed signature: anything
  /// after the timing argument can only be policy state, which belongs in
  /// NinjaConfig.
  template <typename... Args>
  NinjaMigrator(sim::Simulation&, mpi::MpiRuntime&, vmm::Monitor::HostResolver,
                symvirt::CoordinatorTiming, Args&&...) = delete;

  /// Installs the SymVirt coordinator as the job's SELF callbacks.
  void install_coordinator();
  [[nodiscard]] symvirt::Coordinator& coordinator() { return coordinator_; }
  [[nodiscard]] const NinjaConfig& config() const { return config_; }

  /// Runs one full Ninja episode (fallback or recovery, depending on
  /// whether `plan.attach_host_pci` is set). Completes when the job has
  /// resumed with reconstructed transports.
  [[nodiscard]] sim::Task execute(MigrationPlan plan, NinjaStats* stats = nullptr);

 private:
  sim::Simulation* sim_;
  mpi::MpiRuntime* runtime_;
  NinjaConfig config_;
  symvirt::Coordinator coordinator_;
};

/// Runs one Ninja episode for a *non-MPI* application coordinated through
/// symvirt::GenericCoordinator (one per VM; the paper's §VII future work).
/// Each coordinator must already have callbacks installed and its app must
/// call service_point() regularly. `policies`/`source`/`seed` plug the
/// same hook points as NinjaConfig; the defaults are the legacy behavior.
[[nodiscard]] sim::Task run_generic_episode(
    sim::Simulation& sim,
    const std::vector<std::shared_ptr<symvirt::GenericCoordinator>>& coordinators,
    MigrationPlan plan, vmm::Monitor::HostResolver resolver, NinjaStats* stats = nullptr,
    policy::PolicySet policies = {}, policy::ObservationSource source = {},
    std::uint64_t seed = 0);

/// The cloud scheduler: owns placement knowledge (which hosts form the
/// InfiniBand and Ethernet clusters, where the HCAs sit) and builds
/// migration plans from it.
class CloudScheduler {
 public:
  explicit CloudScheduler(Testbed& testbed) : testbed_(&testbed) {}

  /// Plan a fallback migration onto the first `host_count` Ethernet hosts.
  [[nodiscard]] MigrationPlan fallback_plan(std::vector<std::shared_ptr<vmm::Vm>> vms,
                                            int host_count, std::size_t ranks_per_vm) const;
  /// Plan a recovery migration back onto the InfiniBand hosts (HCAs are
  /// re-attached in window C).
  [[nodiscard]] MigrationPlan recovery_plan(std::vector<std::shared_ptr<vmm::Vm>> vms,
                                            int host_count, std::size_t ranks_per_vm) const;
  /// Plan a migration onto IB hosts *without* re-attaching HCAs ("4 hosts
  /// (TCP)" in Fig 8) or onto arbitrary hosts by name.
  [[nodiscard]] MigrationPlan tcp_plan(std::vector<std::shared_ptr<vmm::Vm>> vms,
                                       std::vector<std::string> destinations,
                                       std::size_t ranks_per_vm) const;

  /// Resolver consulted by migration monitors: the owning testbed first,
  /// then the secondary resolver (when set). Reads the secondary at call
  /// time, so installing one after jobs were constructed still takes
  /// effect.
  [[nodiscard]] vmm::Monitor::HostResolver resolver() const;

  /// Extends destination-name resolution beyond the owning testbed — e.g.
  /// a Federation::resolver() so evacuation plans may name peer-site hosts
  /// ("b:eth0").
  void set_secondary_resolver(vmm::Monitor::HostResolver fallback) {
    secondary_ = std::move(fallback);
  }

 private:
  Testbed* testbed_;
  vmm::Monitor::HostResolver secondary_;
};

}  // namespace nm::core
