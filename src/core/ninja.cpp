#include "core/ninja.h"

#include <algorithm>

#include "mpi/cr.h"
#include "util/log.h"

namespace nm::core {

namespace {

// The three SymVirt windows shared by the MPI and generic episodes: park →
// detach (A) → migrate (B) → re-attach (C) → quit. Runs after the caller
// has requested quiesce; the caller then awaits its own completion path
// (CRCP wait_complete vs per-coordinator waits) and stamps linkup/total.
// Keeping one body is what guarantees the two paths never drift again —
// the generic episode used to skip ctl.quit() and the timeline spans.
sim::Task run_windows(sim::Simulation& sim, symvirt::Controller& ctl, const MigrationPlan& plan,
                      const std::vector<std::string>& destinations,
                      const vmm::Monitor::HostResolver& resolver, NinjaStats& stats,
                      TimePoint t0) {
  co_await ctl.wait_all();
  stats.coordination = sim.now() - t0;
  stats.timeline.add_span("coordination", t0, sim.now());

  // Window A: detach VMM-bypass devices where present.
  const TimePoint detach_start = sim.now();
  const bool any_hca = [&] {
    for (const auto& vm : plan.vms) {
      if (vm->has_vmm_bypass_device()) {
        return true;
      }
    }
    return false;
  }();
  if (any_hca) {
    co_await ctl.device_detach(plan.hca_tag);
  }
  stats.detach = sim.now() - detach_start;
  stats.timeline.add_span("detach (window A)", detach_start, sim.now());
  ctl.signal();

  // Window B: move every VM (concurrently) to its destination — live
  // pre-copy through the monitors, or checkpoint/restore through the
  // shared store for the proactive-FT mode.
  co_await ctl.wait_all();
  const TimePoint mig_start = sim.now();
  if (plan.via_storage) {
    std::vector<sim::TaskRef> refs;
    for (std::size_t i = 0; i < plan.vms.size(); ++i) {
      auto& vm = plan.vms[i];
      vmm::Host* dst = resolver(destinations[i % destinations.size()]);
      NM_CHECK(dst != nullptr,
               "unknown destination " << destinations[i % destinations.size()]);
      refs.push_back(sim.spawn(
          [](std::shared_ptr<vmm::Vm> v, vmm::Host* destination) -> sim::Task {
            auto& engine = v->host().migration_engine();
            vmm::Host& src = v->host();
            co_await engine.checkpoint_to_storage(v, src);
            co_await engine.restore_from_storage(v, *destination);
          }(vm, dst),
          "ckpt:" + vm->name()));
    }
    co_await sim::join_all(std::move(refs));
    ctl.signal();
  } else {
    co_await ctl.migration(destinations);  // signals the VMs itself
    for (std::size_t i = 0; i < plan.vms.size(); ++i) {
      stats.per_vm.push_back(ctl.agent(i).monitor().last_migration());
    }
  }
  stats.migration = sim.now() - mig_start;
  stats.timeline.add_span(plan.via_storage ? "ckpt/restore (window B)" : "migration (window B)",
                          mig_start, sim.now());

  // Window C: re-attach HCAs for a recovery migration.
  co_await ctl.wait_all();
  const TimePoint attach_start = sim.now();
  if (!plan.attach_host_pci.empty()) {
    co_await ctl.device_attach(plan.attach_host_pci, plan.hca_tag);
  }
  stats.attach = sim.now() - attach_start;
  stats.timeline.add_span("re-attach (window C)", attach_start, sim.now());
  ctl.signal();
  ctl.quit();
}

// The kEpisodeStart hook: asks the policy whether/where to migrate, looping
// on deferral at clocked instants, then expands the plan's candidate list
// into one destination name per VM. StaticPolicy's empty assignment keeps
// the historical `destinations[i % size]` round-robin.
sim::Task episode_start_hook(sim::Simulation& sim, const policy::PolicySet& policies,
                             const policy::ObservationSource& source, const MigrationPlan& plan,
                             const vmm::Monitor::HostResolver& resolver,
                             std::vector<std::string>& destinations_out) {
  auto observe = [&] {
    policy::Observation obs;
    obs.now = sim.now();
    if (source.slo) {
      obs.slo = source.slo();
    }
    obs.vm_count = plan.vms.size();
    obs.candidates.reserve(plan.destinations.size());
    for (const auto& name : plan.destinations) {
      policy::HostCandidate cand;
      cand.name = name;
      // Unresolvable names stay a candidate with zero residents — the
      // legacy paths report unknown destinations themselves, with better
      // context.
      if (vmm::Host* host = resolver ? resolver(name) : nullptr) {
        cand.resident_vms = static_cast<int>(host->vms().size());
      }
      obs.candidates.push_back(std::move(cand));
    }
    return obs;
  };
  policy::Action action = policies.decide(policy::Hook::kEpisodeStart, observe());
  while (action.defer) {
    co_await sim.delay(action.defer_for > Duration::zero() ? action.defer_for
                                                           : Duration::millis(100));
    action = policies.decide(policy::Hook::kEpisodeStart, observe());
  }
  const auto picks = policy::resolve_assignment(action, plan.vms.size(),
                                                plan.destinations.size(), "ninja episode");
  destinations_out.clear();
  destinations_out.reserve(picks.size());
  for (const int c : picks) {
    destinations_out.push_back(plan.destinations[static_cast<std::size_t>(c)]);
  }
}

// Episode-wide migration control block: describes the engine configuration
// the policies will observe (first VM's source host; episodes migrate VMs
// booted with one shared engine config).
vmm::MigrationControl make_episode_control(const policy::PolicySet& policies,
                                           const policy::ObservationSource& source,
                                           const MigrationPlan& plan) {
  const auto& mig = plan.vms.front()->host().migration_engine().config();
  const double line_rate =
      mig.use_rdma ? mig.max_bandwidth : std::min(mig.thread_send_rate, mig.max_bandwidth);
  return policy::make_migration_control(policies, source, mig.max_downtime, line_rate);
}

}  // namespace

NinjaMigrator::NinjaMigrator(sim::Simulation& sim, mpi::MpiRuntime& runtime, NinjaConfig config)
    : sim_(&sim), runtime_(&runtime), config_(std::move(config)),
      coordinator_(config_.timing) {
  NM_CHECK(static_cast<bool>(config_.resolver), "NinjaConfig needs a host resolver");
  config_.policies.bind_seed(config_.seed);
}

NinjaMigrator::NinjaMigrator(sim::Simulation& sim, mpi::MpiRuntime& runtime,
                             vmm::Monitor::HostResolver resolver,
                             symvirt::CoordinatorTiming timing)
    : NinjaMigrator(sim, runtime,
                    NinjaConfig{.resolver = std::move(resolver), .timing = timing}) {}

void NinjaMigrator::install_coordinator() { coordinator_.install(*runtime_); }

sim::Task NinjaMigrator::execute(MigrationPlan plan, NinjaStats* stats_out) {
  NM_CHECK(!plan.vms.empty(), "empty migration plan");
  NM_CHECK(!plan.destinations.empty(), "migration plan has no destinations");

  NinjaStats stats;
  const TimePoint t0 = sim_->now();
  NM_LOG_INFO("ninja") << "episode start: " << plan.vms.size() << " VMs -> {"
                       << [&] {
                            std::string s;
                            for (const auto& d : plan.destinations) {
                              s += d + " ";
                            }
                            return s;
                          }()
                       << "}" << (plan.attach_host_pci.empty() ? " (fallback)" : " (recovery)");

  // 0) The kEpisodeStart policy may defer the trigger and picks each VM's
  //    destination from the plan's candidates (StaticPolicy = the legacy
  //    round-robin, immediately).
  std::vector<std::string> destinations;
  co_await episode_start_hook(*sim_, config_.policies, config_.source, plan,
                              config_.resolver, destinations);

  // 1) The cloud scheduler delivers the trigger to the MPI runtime: the
  //    CRCP quiesces the job and every rank's SymVirt coordinator parks
  //    the VM in window A.
  const auto generation = runtime_->cr().request();

  // 2)–4) The three windows (detach → migrate → re-attach), shared with
  //    the generic episode. Per-round and pause decisions route through
  //    the policy control block installed on every agent's monitor.
  symvirt::Controller ctl(*sim_, plan.vms, plan.ranks_per_vm, config_.resolver);
  const vmm::MigrationControl control =
      make_episode_control(config_.policies, config_.source, plan);
  ctl.set_migration_control(&control);
  co_await run_windows(*sim_, ctl, plan, destinations, config_.resolver, stats, t0);

  // 5) Guest side finishes: confirm, link-up wait, BTL reconstruction.
  const TimePoint linkup_start = sim_->now();
  co_await runtime_->cr().wait_complete(generation);
  stats.linkup = sim_->now() - linkup_start;
  stats.timeline.add_span("confirm+linkup+BTL rebuild", linkup_start, sim_->now());
  stats.total = sim_->now() - t0;

  NM_LOG_INFO("ninja") << "episode done in " << stats.total << " (coord " << stats.coordination
                       << ", detach " << stats.detach << ", migrate " << stats.migration
                       << ", attach " << stats.attach << ", linkup " << stats.linkup << ")";
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
}

sim::Task run_generic_episode(
    sim::Simulation& sim,
    const std::vector<std::shared_ptr<symvirt::GenericCoordinator>>& coordinators,
    MigrationPlan plan, vmm::Monitor::HostResolver resolver, NinjaStats* stats_out,
    policy::PolicySet policies, policy::ObservationSource source, std::uint64_t seed) {
  NM_CHECK(!coordinators.empty(), "no coordinators");
  NM_CHECK(coordinators.size() == plan.vms.size(),
           "one GenericCoordinator per VM is required");
  NinjaStats stats;
  const TimePoint t0 = sim.now();
  policies.bind_seed(seed);
  std::vector<std::string> destinations;
  co_await episode_start_hook(sim, policies, source, plan, resolver, destinations);
  std::vector<std::uint64_t> generations;
  generations.reserve(coordinators.size());
  for (const auto& coord : coordinators) {
    coord->request();
    generations.push_back(coord->generation());
  }

  // The same three windows as the MPI path — including ctl.quit() and the
  // timeline spans, which this path used to skip.
  symvirt::Controller ctl(sim, plan.vms, plan.ranks_per_vm, resolver);
  const vmm::MigrationControl control = make_episode_control(policies, source, plan);
  ctl.set_migration_control(&control);
  co_await run_windows(sim, ctl, plan, destinations, resolver, stats, t0);

  // Guest side finishes: each coordinator confirms independently (no CRCP
  // — the apps resume through their own resume callbacks).
  const TimePoint linkup_start = sim.now();
  for (std::size_t i = 0; i < coordinators.size(); ++i) {
    co_await coordinators[i]->wait_complete(generations[i]);
  }
  stats.linkup = sim.now() - linkup_start;
  stats.timeline.add_span("confirm+linkup", linkup_start, sim.now());
  stats.total = sim.now() - t0;
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
}

MigrationPlan CloudScheduler::fallback_plan(std::vector<std::shared_ptr<vmm::Vm>> vms,
                                            int host_count, std::size_t ranks_per_vm) const {
  MigrationPlan plan;
  plan.vms = std::move(vms);
  for (int i = 0; i < host_count; ++i) {
    plan.destinations.push_back(testbed_->eth_host(i).name());
  }
  plan.ranks_per_vm = ranks_per_vm;
  return plan;
}

MigrationPlan CloudScheduler::recovery_plan(std::vector<std::shared_ptr<vmm::Vm>> vms,
                                            int host_count, std::size_t ranks_per_vm) const {
  MigrationPlan plan;
  plan.vms = std::move(vms);
  for (int i = 0; i < host_count; ++i) {
    plan.destinations.push_back(testbed_->ib_host(i).name());
  }
  plan.attach_host_pci = Testbed::kHcaPciAddr;
  plan.ranks_per_vm = ranks_per_vm;
  return plan;
}

MigrationPlan CloudScheduler::tcp_plan(std::vector<std::shared_ptr<vmm::Vm>> vms,
                                       std::vector<std::string> destinations,
                                       std::size_t ranks_per_vm) const {
  MigrationPlan plan;
  plan.vms = std::move(vms);
  plan.destinations = std::move(destinations);
  plan.ranks_per_vm = ranks_per_vm;
  return plan;
}

vmm::Monitor::HostResolver CloudScheduler::resolver() const {
  // Captures the scheduler, not a snapshot: MpiJob builds its NinjaMigrator
  // from this resolver at construction, and a federation wires its
  // secondary resolver in afterwards — the lookup must see it.
  const CloudScheduler* self = this;
  return [self](const std::string& name) -> vmm::Host* {
    if (vmm::Host* host = self->testbed_->find_host(name)) {
      return host;
    }
    return self->secondary_ ? self->secondary_(name) : nullptr;
  };
}

}  // namespace nm::core
