#include "core/federation.h"

#include <algorithm>
#include <set>

#include "util/error.h"

namespace nm::core {

Federation::Federation(FederationConfig config)
    : config_(std::move(config)), sim_(config_.seed), net_(sim_, config_.solve_workers) {
  // Normalize the two-site shorthand into the mesh form so everything
  // downstream is N-site code.
  if (config_.sites.empty()) {
    config_.sites.push_back({"a", config_.site_a});
    config_.sites.push_back({"b", config_.site_b});
    config_.edges.push_back({0, 1, config_.wan});
  }
  const std::size_t n = config_.sites.size();
  NM_CHECK(n >= 2, "a federation needs at least two sites");
  {
    std::set<std::string> names;
    for (const FederationSiteConfig& site : config_.sites) {
      NM_CHECK(!site.name.empty() && site.name.find(':') == std::string::npos,
               "federation site name '" << site.name << "' must be non-empty and ':'-free");
      NM_CHECK(names.insert(site.name).second,
               "duplicate federation site name '" << site.name << "'");
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> edge_pairs;
  for (const FederationEdgeConfig& edge : config_.edges) {
    NM_CHECK(edge.a < n && edge.b < n && edge.a != edge.b,
             "federation edge (" << edge.a << ", " << edge.b << ") is not a valid site pair");
    NM_CHECK(edge_pairs.insert({std::min(edge.a, edge.b), std::max(edge.a, edge.b)}).second,
             "duplicate federation edge between sites " << edge.a << " and " << edge.b);
  }

  // Cross-site transfers resolve addresses locally first, so the sites'
  // eth address spaces must be pairwise disjoint or a routed destination
  // could shadow a local one and deliver to the wrong site. Respect
  // explicitly configured bases; re-base colliders onto the lowest free
  // 2^16-aligned block (N-safe — the old code special-cased exactly two
  // sites).
  {
    std::set<net::FabricAddress> used;
    for (FederationSiteConfig& site : config_.sites) {
      net::FabricAddress base = site.testbed.eth.address_base;
      for (net::FabricAddress block = 0; !used.insert(base).second; ++block) {
        base = block << 16;
      }
      site.testbed.eth.address_base = base;
    }
  }

  // The geo-replicated store lives in its own core domain: it is equally
  // remote from every site, and every VM's disk traffic reaches it as a
  // boundary flow regardless of which site the VM runs on.
  auto& core_domain = net_.add_domain("wan-core");
  storage_ = std::make_unique<vmm::SharedStorage>(net_, core_domain.scheduler(), "geo",
                                                  config_.geo_storage_rate);

  for (const FederationSiteConfig& site : config_.sites) {
    site_names_.push_back(site.name);
    sites_.push_back(
        std::make_unique<Testbed>(site.testbed, sim_, net_, site.name, storage_.get()));
  }

  // One WAN link per mesh edge, its endpoint resources registered in the
  // two incident sites' zone domains, so a flow crossing the edge always
  // finds exactly one endpoint foreign — the hook the exchange consults
  // the link's CapPolicy through. Each side gets its own gateway uplink
  // port (a site's edges don't share uplink queues).
  auto add_uplink = [&](std::size_t site, std::size_t edge_index) -> net::NicPort& {
    hw::NodeSpec spec;
    spec.name = site_names_[site] + ":gw" + std::to_string(edge_index);
    auto& node = gateways_.add_node(sites_[site]->zone_domain(), spec);
    uplinks_.push_back(
        std::make_unique<net::NicPort>(node, spec.name + ":uplink", config_.uplink_rate));
    return *uplinks_.back();
  };
  for (std::size_t e = 0; e < config_.edges.size(); ++e) {
    const FederationEdgeConfig& ec = config_.edges[e];
    Edge edge;
    edge.a = ec.a;
    edge.b = ec.b;
    edge.uplink_a = &add_uplink(ec.a, e);
    edge.uplink_b = &add_uplink(ec.b, e);
    edge.link = std::make_unique<sim::WanLink>(
        sim_, sites_[ec.a]->zone_domain().scheduler(), sites_[ec.b]->zone_domain().scheduler(),
        site_names_[ec.a] + "-" + site_names_[ec.b], ec.wan);
    edges_.push_back(std::move(edge));
  }

  routes_.assign(n, std::vector<std::vector<std::size_t>>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        routes_[i][j] = bfs_route(i, j, [](const Edge&) { return true; });
      }
    }
  }
  install_fabric_routes();
}

template <typename AliveFn>
std::vector<std::size_t> Federation::bfs_route(std::size_t from, std::size_t to,
                                               AliveFn alive) const {
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent_edge(sites_.size(), kUnvisited);
  std::vector<bool> seen(sites_.size(), false);
  std::vector<std::size_t> frontier{from};
  seen[from] = true;
  while (!frontier.empty() && !seen[to]) {
    std::vector<std::size_t> next;
    for (std::size_t site : frontier) {
      for (std::size_t e = 0; e < edges_.size(); ++e) {
        const Edge& edge = edges_[e];
        if (!alive(edge)) {
          continue;
        }
        std::size_t far;
        if (edge.a == site) {
          far = edge.b;
        } else if (edge.b == site) {
          far = edge.a;
        } else {
          continue;
        }
        if (seen[far]) {
          continue;
        }
        seen[far] = true;
        parent_edge[far] = e;
        next.push_back(far);
      }
    }
    frontier = std::move(next);
  }
  if (!seen[to]) {
    return {};
  }
  std::vector<std::size_t> hops;
  for (std::size_t site = to; site != from;) {
    std::size_t e = parent_edge[site];
    hops.push_back(e);
    site = edges_[e].a == site ? edges_[e].b : edges_[e].a;
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

void Federation::install_fabric_routes() {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      if (i == j || routes_[i][j].empty()) {
        continue;
      }
      std::vector<net::WanHop> hops;
      std::size_t cur = i;
      for (std::size_t e : routes_[i][j]) {
        const Edge& edge = edges_[e];
        const bool forward = edge.a == cur;
        const std::size_t far = forward ? edge.b : edge.a;
        hops.push_back(net::WanHop{forward ? edge.uplink_a : edge.uplink_b, edge.link.get(),
                                   forward ? edge.uplink_b : edge.uplink_a,
                                   &sites_[far]->eth_fabric()});
        cur = far;
      }
      sites_[i]->eth_fabric().add_route(sites_[j]->eth_fabric(), std::move(hops));
    }
  }
}

void Federation::recompute_routes() {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      if (i == j) {
        continue;
      }
      std::vector<std::size_t> live =
          bfs_route(i, j, [](const Edge& e) { return !e.link->partitioned(); });
      if (!live.empty()) {
        routes_[i][j] = std::move(live);
      }
      // else: keep the previous route — traffic freezes on the dead edge
      // instead of erroring, and heals in place.
    }
  }
  install_fabric_routes();
}

plan::SiteGraph Federation::site_graph() const {
  plan::SiteGraph graph;
  for (const std::string& name : site_names_) {
    graph.sites.push_back({name, 0});
  }
  for (const Edge& edge : edges_) {
    graph.edges.push_back({edge.a, edge.b, edge.link->nominal_rate(), {}});
  }
  return graph;
}

Testbed* Federation::site_by_name(const std::string& name) {
  for (std::size_t i = 0; i < site_names_.size(); ++i) {
    if (site_names_[i] == name) {
      return sites_[i].get();
    }
  }
  return nullptr;
}

vmm::Host* Federation::find_host(const std::string& name) {
  for (auto& site : sites_) {
    if (vmm::Host* host = site->find_host(name)) {
      return host;
    }
  }
  return nullptr;
}

vmm::Monitor::HostResolver Federation::resolver() {
  return [this](const std::string& name) { return find_host(name); };
}

void Federation::settle() {
  Duration window = Duration::zero();
  for (const FederationSiteConfig& site : config_.sites) {
    window = std::max(window, site.testbed.ib.linkup_time + site.testbed.hotplug.attach_ib +
                                  Duration::seconds(1.0));
  }
  sim_.run_for(window);
}

}  // namespace nm::core
