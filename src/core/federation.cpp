#include "core/federation.h"

#include <algorithm>

#include "util/error.h"

namespace nm::core {

Federation::Federation(FederationConfig config)
    : config_(std::move(config)), sim_(config_.seed), net_(sim_, config_.solve_workers) {
  // The geo-replicated store lives in its own core domain: it is equally
  // remote from both sites, and every VM's disk traffic reaches it as a
  // boundary flow regardless of which site the VM runs on.
  auto& core_domain = net_.add_domain("wan-core");
  storage_ = std::make_unique<vmm::SharedStorage>(net_, core_domain.scheduler(), "geo",
                                                  config_.geo_storage_rate);

  site_a_ = std::make_unique<Testbed>(config_.site_a, sim_, net_, "a", storage_.get());
  site_b_ = std::make_unique<Testbed>(config_.site_b, sim_, net_, "b", storage_.get());

  // One WAN endpoint per site, registered in that site's zone domain, so a
  // cross-site flow always finds exactly one of them foreign — the hook the
  // exchange consults the link's CapPolicy through.
  wan_ = std::make_unique<sim::WanLink>(sim_, site_a_->zone_domain().scheduler(),
                                        site_b_->zone_domain().scheduler(), "geo", config_.wan);

  // Each eth fabric exposes a switch uplink port as its federable edge.
  auto add_uplink = [&](Testbed& site, const std::string& name) -> net::NicPort& {
    hw::NodeSpec spec;
    spec.name = name;
    auto& node = gateways_.add_node(site.zone_domain(), spec);
    uplinks_.push_back(
        std::make_unique<net::NicPort>(node, name + ":uplink", config_.uplink_rate));
    return *uplinks_.back();
  };
  site_a_->eth_fabric().set_uplink(add_uplink(*site_a_, "a:gw"));
  site_b_->eth_fabric().set_uplink(add_uplink(*site_b_, "b:gw"));
  site_a_->eth_fabric().peer_with(site_b_->eth_fabric(), *wan_);
}

vmm::Host* Federation::find_host(const std::string& name) {
  if (vmm::Host* host = site_a_->find_host(name)) {
    return host;
  }
  return site_b_->find_host(name);
}

vmm::Monitor::HostResolver Federation::resolver() {
  return [this](const std::string& name) { return find_host(name); };
}

void Federation::settle() {
  const auto window = [](const TestbedConfig& c) {
    return c.ib.linkup_time + c.hotplug.attach_ib + Duration::seconds(1.0);
  };
  sim_.run_for(std::max(window(config_.site_a), window(config_.site_b)));
}

}  // namespace nm::core
