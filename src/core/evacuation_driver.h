// MassEvacuation: executes a plan::EvacuationPlanner schedule against a
// live Federation — the bridge between the pure planning layer and the
// simulated testbeds.
//
// Wave commit protocol (DESIGN.md §9): every scheduling decision is made
// at a wave *grant*, a fixed instant in simulated time reached from task
// context. At a grant the driver (1) recomputes the mesh routes
// (Federation::recompute_routes), so the fabrics detour around
// partitioned edges whenever an alternative path exists, (2) reads every
// WanLink's live effective rate and recomputes each wave member's route
// on the live mesh, (3) re-runs the max-min rate assignment against the
// live capacities, and (4) pins each migration to its planned rate via
// the per-call bandwidth cap. Members whose destination is unreachable
// are deferred and re-planned — rerouted when an alternate path exists,
// retried on a poll period until the mesh heals otherwise. Because planned rates
// never oversubscribe an edge, each migration realizes exactly its
// planned rate, so the pre-copy estimator is accurate and realized
// downtime respects MigrationConfig::max_downtime. All inputs to a grant
// are deterministic functions of simulated state at that instant, so
// evacuation timelines are bit-identical at every solve-worker count
// (pinned by wan_federation_test and bench_scalability sweep 9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/federation.h"
#include "plan/evacuation_planner.h"
#include "policy/policy.h"
#include "sim/task.h"

namespace nm::core {

struct EvacuationConfig {
  /// Site to evacuate (index into the federation's sites).
  std::size_t source_site = 0;
  plan::PlannerConfig planner;
  /// VM slots per destination host (bounds per-site intake together with
  /// the hosts' current residents).
  int dst_slots_per_host = 16;
  /// Poll period while every route to some un-evacuated VM's destination
  /// is dead.
  Duration retry_period = Duration::seconds(5);
  /// Execute the naive-sequential baseline instead of the batched plan.
  bool sequential = false;
  /// Plan and place as if every site were flat: the planner sees the
  /// leaf layer stripped (SiteGraph::without_leaves), wave rates ignore
  /// leaf capacities, and destination hosts are picked site-wide. On a
  /// Clos site the pinned rates can then oversubscribe leaf uplinks or a
  /// destination leaf, so streams realize less than planned — the
  /// topology-blind baseline the experiments compare against.
  bool topology_blind = false;
  /// Decision plug-ins: the kWaveGrant hook assigns destination *hosts*
  /// within each wave member's planned destination site. The default
  /// (static) set keeps the driver's own most-free-slots pick.
  policy::PolicySet policies;
  /// Seeds the policies' Rng streams.
  std::uint64_t seed = 0;
};

struct VmOutcome {
  std::string vm;
  std::string dst_host;
  int wave = -1;
  /// Grants at which this VM's destination was unreachable.
  int deferrals = 0;
  std::int64_t start_ns = -1;
  std::int64_t done_ns = -1;
  Duration downtime = Duration::zero();
};

struct EvacuationReport {
  std::int64_t started_ns = 0;
  std::int64_t done_ns = 0;
  int waves = 0;
  /// Grants that had to re-plan deferred VMs against the live mesh.
  int replans = 0;
  std::size_t evacuated = 0;
  bool sequential_fallback = false;
  std::vector<VmOutcome> vms;

  [[nodiscard]] Duration makespan() const {
    return Duration::nanos(done_ns - started_ns);
  }
  /// p in [0, 1]: nearest-rank percentile over per-VM downtimes.
  [[nodiscard]] Duration downtime_percentile(double p) const;
  [[nodiscard]] Duration downtime_max() const;
};

class MassEvacuation {
 public:
  explicit MassEvacuation(Federation& fed, EvacuationConfig config = {});

  [[nodiscard]] const EvacuationConfig& config() const { return config_; }

  /// The planner input the next run() would use: federation mesh (nominal
  /// edge rates when `nominal`, live effective rates otherwise) with
  /// destination slots derived from dst_slots_per_host minus current
  /// residents.
  [[nodiscard]] plan::SiteGraph current_graph(bool nominal = true) const;

  /// Evacuates every VM resident on the source site. Reports per-VM
  /// timeline/downtime and the overall makespan into `report`.
  [[nodiscard]] sim::Task run(EvacuationReport* report);

 private:
  struct Pending {
    std::size_t vm_index = 0;        // into vms_/moves_/report order
    std::size_t dst_site = 0;
    double planned_rate = 0.0;
    /// Planner-chosen destination leaf (index into the planning graph's
    /// leaf list); kNoLeaf on flat sites or under topology_blind.
    std::size_t dst_leaf = plan::kNoLeaf;
  };

  /// Grants one wave: live routes + rates, host selection, spawn + join.
  /// Members with no live route to their destination are appended to
  /// `deferred` instead of granted.
  [[nodiscard]] sim::Task grant_wave(std::vector<Pending> members, int wave_index,
                                     EvacuationReport& report,
                                     std::vector<std::size_t>& deferred);
  /// Destination host with the most free slots on `site` (tie: lowest
  /// index); reserves one slot. {nullptr, 0} when the site is full. With
  /// a `dst_leaf`, only hosts racked under that leaf are considered
  /// first, falling back to the whole site when the leaf has filled
  /// since planning.
  [[nodiscard]] std::pair<vmm::Host*, std::size_t> pick_dst_host(
      std::size_t site, std::size_t dst_leaf = plan::kNoLeaf);
  /// Index into the planning graph's leaf list where `site`'s leaves
  /// start (current_graph appends each Clos site's leaves in site order).
  [[nodiscard]] std::size_t leaf_base(std::size_t site) const;

  Federation* fed_;
  EvacuationConfig config_;
  // Per-run state (filled by run()).
  std::vector<std::shared_ptr<vmm::Vm>> vms_;
  std::vector<vmm::Host*> src_hosts_;
  std::vector<plan::VmToMove> moves_;
  std::vector<vmm::MigrationStats> stats_;
  std::vector<std::vector<vmm::Host*>> hosts_by_site_;
  /// In-flight reservations per destination host (parallel to
  /// hosts_by_site_); released once the migration lands (the VM then
  /// counts as a resident).
  std::vector<std::vector<int>> reserved_by_site_;
};

}  // namespace nm::core
