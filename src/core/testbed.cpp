#include "core/testbed.h"

#include "util/error.h"

namespace nm::core {

void Testbed::init_shards() {
  NM_CHECK(config_.fluid_shards >= 1,
           "testbed needs at least one fluid shard, got " << config_.fluid_shards);
  for (int i = 0; i < config_.fluid_shards; ++i) {
    net_->add_domain(prefix_ + "shard" + std::to_string(i));
  }
}

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      owned_sim_(std::make_unique<sim::Simulation>(config_.seed)),
      owned_net_(std::make_unique<sim::FluidNet>(*owned_sim_, config_.solve_workers)),
      sim_(owned_sim_.get()),
      net_(owned_net_.get()),
      ib_cluster_("agc-ib"),
      eth_cluster_("agc-eth") {
  build();
}

Testbed::Testbed(TestbedConfig config, sim::Simulation& sim, sim::FluidNet& net, std::string site,
                 vmm::SharedStorage* shared_storage)
    : config_(std::move(config)),
      sim_(&sim),
      net_(&net),
      prefix_(site.empty() ? std::string{} : site + ":"),
      storage_(shared_storage),
      ib_cluster_(prefix_ + "agc-ib"),
      eth_cluster_(prefix_ + "agc-eth") {
  build();
}

void Testbed::build() {
  // Shared-resource placement: every blade hangs off the one 10 GbE switch
  // and the NFS storage, so the fabrics and the store live on the zone
  // domain — the first of this testbed's shards (domain 0 standalone; the
  // net may already hold other sites' domains under a federation). With
  // blade_domains off the blades land there too (one connected zone → one
  // scheduler, additional shards stay empty for caller-built disjoint
  // zones); with it on, each blade's CPU and ports get their own domain and
  // the net bridges them at the shared switch via boundary flows.
  zone_index_ = net_->domain_count();
  init_shards();
  if (storage_ == nullptr) {
    owned_storage_ =
        std::make_unique<vmm::SharedStorage>(*net_, zone_domain().scheduler(), prefix_ + "agc");
    storage_ = owned_storage_.get();
  }
  ib_fabric_ = std::make_unique<net::IbFabric>(*net_, prefix_ + "ib:m3601q", config_.ib);
  eth_fabric_ = std::make_unique<net::EthFabric>(*net_, prefix_ + "eth:m8024", config_.eth);
  if (config_.clos.enabled()) {
    clos_ = std::make_unique<net::ClosFabric>(zone_domain().scheduler(), prefix_ + "clos",
                                              config_.clos);
    NM_CHECK(clos_->host_ports() >= config_.ib_nodes + config_.eth_nodes,
             prefix_ << "clos: " << clos_->host_ports() << " host ports < "
                     << config_.ib_nodes + config_.eth_nodes << " blades");
    eth_fabric_->set_topology(clos_.get());
  }

  auto make_host = [&](hw::Cluster& cluster, const std::string& name, bool with_hca) {
    hw::NodeSpec spec = config_.blade_spec;
    spec.name = name;
    sim::FluidDomain& home =
        config_.blade_domains ? net_->add_domain("blade:" + name) : zone_domain();
    auto& node = cluster.add_node(home, spec);
    auto host = std::make_unique<vmm::Host>(*sim_, *net_, node, *storage_, config_.hotplug,
                                            config_.migration);
    // 10 GbE uplink on every blade.
    ports_.push_back(
        std::make_unique<net::NicPort>(node, name + ":eth", config_.eth.line_rate));
    if (clos_ != nullptr) {
      // Blade i racks under leaf i / hosts_per_leaf, in boot order.
      clos_->assign_port(*ports_.back(),
                         static_cast<int>(hosts_.size()) / clos_->hosts_per_leaf());
    }
    host->connect_eth(*eth_fabric_, *ports_.back());
    if (with_hca) {
      ports_.push_back(
          std::make_unique<net::NicPort>(node, name + ":hca", config_.ib.data_rate));
      host->register_hca(kHcaPciAddr, *ib_fabric_, *ports_.back(), config_.hca_vfs);
    }
    hosts_.push_back(std::move(host));
  };

  for (int i = 0; i < config_.ib_nodes; ++i) {
    make_host(ib_cluster_, prefix_ + "ib" + std::to_string(i), /*with_hca=*/true);
  }
  for (int i = 0; i < config_.eth_nodes; ++i) {
    make_host(eth_cluster_, prefix_ + "eth" + std::to_string(i), /*with_hca=*/false);
  }
}

int Testbed::leaf_of(vmm::Host& host) {
  if (clos_ == nullptr) {
    return net::ClosFabric::kSpineAttach;
  }
  return clos_->leaf_of(host.eth_uplink());
}

vmm::Host& Testbed::ib_host(int i) {
  NM_CHECK(i >= 0 && i < config_.ib_nodes, "ib host index " << i << " out of range");
  return *hosts_[static_cast<std::size_t>(i)];
}

vmm::Host& Testbed::eth_host(int i) {
  NM_CHECK(i >= 0 && i < config_.eth_nodes, "eth host index " << i << " out of range");
  return *hosts_[static_cast<std::size_t>(config_.ib_nodes + i)];
}

vmm::Host* Testbed::find_host(const std::string& name) {
  for (auto& host : hosts_) {
    if (host->name() == name) {
      return host.get();
    }
  }
  return nullptr;
}

std::vector<vmm::Host*> Testbed::all_hosts() {
  std::vector<vmm::Host*> out;
  out.reserve(hosts_.size());
  for (auto& host : hosts_) {
    out.push_back(host.get());
  }
  return out;
}

std::shared_ptr<vmm::Vm> Testbed::boot_vm(vmm::Host& host, vmm::VmSpec spec, bool with_hca) {
  auto vm = host.launch(std::move(spec));
  host.add_virtio_net(*vm, "vnet0");
  if (with_hca) {
    NM_CHECK(host.hca_available(kHcaPciAddr),
             host.name() << " has no free HCA for " << vm->name());
    // Boot-time assignment (qemu -device on the command line): no hotplug
    // handshake, but the port still trains.
    sim_->spawn(host.device_add(*vm, kHcaPciAddr, "vf0"), "boot-hca:" + vm->name());
  }
  return vm;
}

void Testbed::settle() {
  sim_->run_for(config_.ib.linkup_time + config_.hotplug.attach_ib + Duration::seconds(1.0));
}

}  // namespace nm::core
