#include "core/testbed.h"

#include "util/error.h"

namespace nm::core {

sim::FluidDomain& Testbed::init_shards(sim::FluidNet& net, int shards) {
  NM_CHECK(shards >= 1, "testbed needs at least one fluid shard, got " << shards);
  for (int i = 0; i < shards; ++i) {
    net.add_domain("shard" + std::to_string(i));
  }
  return net.domain(0);
}

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      net_(sim_, config_.solve_workers),
      storage_(net_, init_shards(net_, config_.fluid_shards).scheduler(), "agc"),
      ib_cluster_("agc-ib"),
      eth_cluster_("agc-eth") {
  // Shared-resource placement: every blade hangs off the one 10 GbE switch
  // and the NFS storage, so the fabrics and the store live on domain 0.
  // With blade_domains off the blades land there too (one connected zone →
  // one scheduler, additional shards stay empty for caller-built disjoint
  // zones); with it on, each blade's CPU and ports get their own domain and
  // the net bridges them at the shared switch via boundary flows.
  ib_fabric_ = std::make_unique<net::IbFabric>(net_, "ib:m3601q", config_.ib);
  eth_fabric_ = std::make_unique<net::EthFabric>(net_, "eth:m8024", config_.eth);

  auto make_host = [&](hw::Cluster& cluster, const std::string& name, bool with_hca) {
    hw::NodeSpec spec = config_.blade_spec;
    spec.name = name;
    sim::FluidDomain& home =
        config_.blade_domains ? net_.add_domain("blade:" + name) : zone_domain();
    auto& node = cluster.add_node(home, spec);
    auto host = std::make_unique<vmm::Host>(sim_, net_, node, storage_, config_.hotplug,
                                            config_.migration);
    // 10 GbE uplink on every blade.
    ports_.push_back(
        std::make_unique<net::NicPort>(node, name + ":eth", config_.eth.line_rate));
    host->connect_eth(*eth_fabric_, *ports_.back());
    if (with_hca) {
      ports_.push_back(
          std::make_unique<net::NicPort>(node, name + ":hca", config_.ib.data_rate));
      host->register_hca(kHcaPciAddr, *ib_fabric_, *ports_.back(), config_.hca_vfs);
    }
    hosts_.push_back(std::move(host));
  };

  for (int i = 0; i < config_.ib_nodes; ++i) {
    make_host(ib_cluster_, "ib" + std::to_string(i), /*with_hca=*/true);
  }
  for (int i = 0; i < config_.eth_nodes; ++i) {
    make_host(eth_cluster_, "eth" + std::to_string(i), /*with_hca=*/false);
  }
}

vmm::Host& Testbed::ib_host(int i) {
  NM_CHECK(i >= 0 && i < config_.ib_nodes, "ib host index " << i << " out of range");
  return *hosts_[static_cast<std::size_t>(i)];
}

vmm::Host& Testbed::eth_host(int i) {
  NM_CHECK(i >= 0 && i < config_.eth_nodes, "eth host index " << i << " out of range");
  return *hosts_[static_cast<std::size_t>(config_.ib_nodes + i)];
}

vmm::Host* Testbed::find_host(const std::string& name) {
  for (auto& host : hosts_) {
    if (host->name() == name) {
      return host.get();
    }
  }
  return nullptr;
}

std::vector<vmm::Host*> Testbed::all_hosts() {
  std::vector<vmm::Host*> out;
  out.reserve(hosts_.size());
  for (auto& host : hosts_) {
    out.push_back(host.get());
  }
  return out;
}

std::shared_ptr<vmm::Vm> Testbed::boot_vm(vmm::Host& host, vmm::VmSpec spec, bool with_hca) {
  auto vm = host.launch(std::move(spec));
  host.add_virtio_net(*vm, "vnet0");
  if (with_hca) {
    NM_CHECK(host.hca_available(kHcaPciAddr),
             host.name() << " has no free HCA for " << vm->name());
    // Boot-time assignment (qemu -device on the command line): no hotplug
    // handshake, but the port still trains.
    sim_.spawn(host.device_add(*vm, kHcaPciAddr, "vf0"), "boot-hca:" + vm->name());
  }
  return vm;
}

void Testbed::settle() {
  sim_.run_for(config_.ib.linkup_time + config_.hotplug.attach_ib + Duration::seconds(1.0));
}

}  // namespace nm::core
