#include "core/testbed.h"

#include "util/error.h"

namespace nm::core {

std::vector<std::unique_ptr<sim::FluidDomain>> Testbed::make_domains(sim::Simulation& sim,
                                                                     int shards) {
  NM_CHECK(shards >= 1, "testbed needs at least one fluid shard, got " << shards);
  std::vector<std::unique_ptr<sim::FluidDomain>> domains;
  domains.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    domains.push_back(std::make_unique<sim::FluidDomain>(sim, "shard" + std::to_string(i)));
  }
  return domains;
}

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      solve_pool_(config_.solve_workers > 0
                      ? std::make_unique<sim::SolvePool>(sim_, config_.solve_workers)
                      : nullptr),
      domains_(make_domains(sim_, config_.fluid_shards)),
      storage_(zone_domain().scheduler(), "agc"),
      ib_cluster_("agc-ib"),
      eth_cluster_("agc-eth") {
  if (solve_pool_ != nullptr) {
    // Attach every shard before any flow can start; attach order fixes the
    // canonical domain ids the pool commits in.
    for (auto& d : domains_) {
      solve_pool_->attach(d->scheduler());
    }
  }
  // Topology-aware placement: the enclosure is one connected zone — every
  // blade shares the 10 GbE switch and the NFS storage, so any blade's
  // flows can reach any other blade's resources. One zone → one scheduler;
  // additional shards stay empty for caller-built disjoint zones.
  auto& zone = zone_domain().scheduler();
  ib_fabric_ = std::make_unique<net::IbFabric>(zone, "ib:m3601q", config_.ib);
  eth_fabric_ = std::make_unique<net::EthFabric>(zone, "eth:m8024", config_.eth);

  auto make_host = [&](hw::Cluster& cluster, const std::string& name, bool with_hca) {
    hw::NodeSpec spec = config_.blade_spec;
    spec.name = name;
    auto& node = cluster.add_node(zone_domain(), spec);
    auto host = std::make_unique<vmm::Host>(sim_, zone, node, storage_, config_.hotplug,
                                            config_.migration);
    // 10 GbE uplink on every blade.
    ports_.push_back(
        std::make_unique<net::NicPort>(node, name + ":eth", config_.eth.line_rate));
    host->connect_eth(*eth_fabric_, *ports_.back());
    if (with_hca) {
      ports_.push_back(
          std::make_unique<net::NicPort>(node, name + ":hca", config_.ib.data_rate));
      host->register_hca(kHcaPciAddr, *ib_fabric_, *ports_.back(), config_.hca_vfs);
    }
    hosts_.push_back(std::move(host));
  };

  for (int i = 0; i < config_.ib_nodes; ++i) {
    make_host(ib_cluster_, "ib" + std::to_string(i), /*with_hca=*/true);
  }
  for (int i = 0; i < config_.eth_nodes; ++i) {
    make_host(eth_cluster_, "eth" + std::to_string(i), /*with_hca=*/false);
  }
}

sim::FluidDomain& Testbed::domain(std::size_t i) {
  NM_CHECK(i < domains_.size(), "fluid domain index " << i << " out of range");
  return *domains_[i];
}

vmm::Host& Testbed::ib_host(int i) {
  NM_CHECK(i >= 0 && i < config_.ib_nodes, "ib host index " << i << " out of range");
  return *hosts_[static_cast<std::size_t>(i)];
}

vmm::Host& Testbed::eth_host(int i) {
  NM_CHECK(i >= 0 && i < config_.eth_nodes, "eth host index " << i << " out of range");
  return *hosts_[static_cast<std::size_t>(config_.ib_nodes + i)];
}

vmm::Host* Testbed::find_host(const std::string& name) {
  for (auto& host : hosts_) {
    if (host->name() == name) {
      return host.get();
    }
  }
  return nullptr;
}

std::vector<vmm::Host*> Testbed::all_hosts() {
  std::vector<vmm::Host*> out;
  out.reserve(hosts_.size());
  for (auto& host : hosts_) {
    out.push_back(host.get());
  }
  return out;
}

std::shared_ptr<vmm::Vm> Testbed::boot_vm(vmm::Host& host, vmm::VmSpec spec, bool with_hca) {
  auto vm = host.launch(std::move(spec));
  host.add_virtio_net(*vm, "vnet0");
  if (with_hca) {
    NM_CHECK(host.hca_available(kHcaPciAddr),
             host.name() << " has no free HCA for " << vm->name());
    // Boot-time assignment (qemu -device on the command line): no hotplug
    // handshake, but the port still trains.
    sim_.spawn(host.device_add(*vm, kHcaPciAddr, "vf0"), "boot-hca:" + vm->name());
  }
  return vm;
}

void Testbed::settle() {
  sim_.run_for(config_.ib.linkup_time + config_.hotplug.attach_ib + Duration::seconds(1.0));
}

}  // namespace nm::core
