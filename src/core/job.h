// MpiJob: the high-level composition a user of the library works with —
// "an MPI job on VMs of the modelled testbed, migratable with Ninja".
// It assembles VMs (+ guest OSes), an nMPI runtime with one rank per
// requested slot, the SymVirt coordinator, and a cloud scheduler, and
// exposes the Fig 1 operations: run the job, fall back to the Ethernet
// cluster, recover to the InfiniBand cluster.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ninja.h"
#include "core/testbed.h"
#include "guestos/guest_os.h"
#include "mpi/collectives.h"
#include "mpi/runtime.h"

namespace nm::core {

struct JobConfig {
  std::string name = "job";
  int vm_count = 4;
  std::size_t ranks_per_vm = 1;
  /// Launch on the InfiniBand cluster with passthrough HCAs?
  bool on_ib_cluster = true;
  bool with_hca = true;
  vmm::VmSpec vm_template;  // `name` is overwritten per VM
  mpi::MpiOptions mpi;
  /// Decision plug-ins for the job's Ninja episodes (default = static =
  /// the historical behavior) and the observation wiring that feeds them.
  policy::PolicySet policies;
  policy::ObservationSource observation_source;

  JobConfig() {
    vm_template.vcpus = 8.0;
    vm_template.memory = Bytes::gib(20);
    mpi.ft_enable_cr = true;
    mpi.continue_like_restart = true;
  }
};

class MpiJob {
 public:
  MpiJob(Testbed& testbed, JobConfig config);
  MpiJob(const MpiJob&) = delete;
  MpiJob& operator=(const MpiJob&) = delete;

  [[nodiscard]] Testbed& testbed() { return *testbed_; }
  [[nodiscard]] const JobConfig& config() const { return config_; }
  [[nodiscard]] mpi::MpiRuntime& runtime() { return *runtime_; }
  [[nodiscard]] mpi::Communicator& world() { return *world_; }
  [[nodiscard]] NinjaMigrator& ninja() { return *ninja_; }
  [[nodiscard]] CloudScheduler& scheduler() { return scheduler_; }

  [[nodiscard]] std::size_t rank_count() const { return runtime_->size(); }
  [[nodiscard]] std::vector<std::shared_ptr<vmm::Vm>> vms() const { return vms_; }
  [[nodiscard]] guest::GuestOs& guest_os(int vm_index);

  /// Lets boot-time HCA links train and initializes the MPI runtime.
  void init();

  /// Spawns one task per rank running `body(rank_id)`; returns the refs.
  /// The callable is kept alive for the job's lifetime, so capturing
  /// lambdas are safe (a lambda coroutine's captures live in the closure
  /// object, not the coroutine frame — C++ Core Guidelines CP.51).
  std::vector<sim::TaskRef> launch(std::function<sim::Task(mpi::RankId)> body);

  /// Fig 1 operations. `host_count` destinations; fewer hosts than VMs is
  /// a consolidation. Run these from a spawned task.
  [[nodiscard]] sim::Task fallback_migration(int host_count, NinjaStats* stats = nullptr);
  [[nodiscard]] sim::Task recovery_migration(int host_count, NinjaStats* stats = nullptr);
  /// Migration onto the IB cluster without HCA re-attach ("4 hosts (TCP)").
  [[nodiscard]] sim::Task tcp_migration(std::vector<std::string> destinations,
                                        NinjaStats* stats = nullptr);

  /// Transport rank 0 would use towards the first rank on another VM
  /// ("which interconnect is the job on right now?").
  [[nodiscard]] std::string current_transport();

 private:
  Testbed* testbed_;
  JobConfig config_;
  std::vector<std::shared_ptr<vmm::Vm>> vms_;
  std::vector<std::unique_ptr<guest::GuestOs>> guests_;
  std::unique_ptr<mpi::MpiRuntime> runtime_;
  std::unique_ptr<mpi::Communicator> world_;
  CloudScheduler scheduler_;
  std::unique_ptr<NinjaMigrator> ninja_;
  std::vector<std::unique_ptr<std::function<sim::Task(mpi::RankId)>>> bodies_;
  bool initialized_ = false;
};

}  // namespace nm::core
