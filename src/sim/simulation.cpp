#include "sim/simulation.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace nm::sim {

struct TaskRef::State {
  explicit State(Simulation& sim) : done_event(sim) {}
  Event done_event;
  bool finished = false;
};

bool TaskRef::done() const {
  NM_CHECK(state_ != nullptr, "TaskRef is empty");
  return state_->finished;
}

Event& TaskRef::completion() const {
  NM_CHECK(state_ != nullptr, "TaskRef is empty");
  return state_->done_event;
}

struct Simulation::Detached {
  Task::Handle handle;
  std::shared_ptr<TaskRef::State> state;
  std::string name;
};

namespace {
// Initial slab for the queue and callback pool. Sized so short-lived
// micro-episodes (a handful of flows plus their settle timers) never pay
// the cold geometric growths; steady-state behavior is unchanged because
// slots are free-listed and the vectors never shrink.
constexpr std::size_t kInitialSlab = 128;
}  // namespace

Simulation::Simulation(std::uint64_t seed) : seed_(seed) {
  queue_.reserve(kInitialSlab);
  callback_pool_.reserve(kInitialSlab);
  free_callback_slots_.reserve(kInitialSlab);
}

Simulation::~Simulation() {
  // Destroy any still-suspended detached tasks. Their frames may hold
  // awaiter state pointing at sim objects, so drop them before members die.
  for (auto& [id, d] : detached_) {
    if (d->handle) {
      d->handle.destroy();
    }
  }
  detached_.clear();
  drain_destroy_list();
}

void Simulation::enqueue(TimePoint at, std::coroutine_handle<> h, EventCallback fn) {
  NM_CHECK(at >= now_, "cannot schedule into the past");
  std::uint32_t slot = kNoCallback;
  if (fn) {
    if (!free_callback_slots_.empty()) {
      slot = free_callback_slots_.back();
      free_callback_slots_.pop_back();
      callback_pool_[slot] = std::move(fn);
    } else {
      slot = static_cast<std::uint32_t>(callback_pool_.size());
      callback_pool_.push_back(std::move(fn));
    }
  }
  const QueueEntry entry{at, next_seq_++, h, slot};
  // Park far-future entries on the wheel — but only when something earlier
  // is already pending. An entry that would be the heap front is promoted
  // at the very next sync anyway, so parking it is a pure round-trip cost
  // (the common idle-component case: one completion eta, empty heap).
  // Either placement dispatches identically; this is purely a heuristic,
  // and a deterministic one (heap front is part of simulation state).
  if (at.count_nanos() - now_.count_nanos() >= kWheelMinDelayNs && !queue_.empty() &&
      queue_.front().at < at) {
    wheel_insert(entry, now_.count_nanos());
    return;
  }
  heap_push(entry);
}

void Simulation::heap_push(const QueueEntry& e) {
  queue_.push_back(e);
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

void Simulation::wheel_insert(const QueueEntry& e, std::int64_t cursor_ns) {
  const std::int64_t delta = e.at.count_nanos() - cursor_ns;
  if (delta < kWheelMinDelayNs) {
    heap_push(e);
    return;
  }
  for (int level = 0; level < kWheelLevels; ++level) {
    if (delta < (std::int64_t{1} << kWheelShift[level + 1])) {
      const std::size_t idx =
          static_cast<std::size_t>(e.at.count_nanos() >> kWheelShift[level]) & (kWheelSlots - 1);
      const std::size_t bucket = static_cast<std::size_t>(level) * kWheelSlots + idx;
      WheelBucket& b = wheel_[bucket];
      if (b.entries.empty()) {
        active_buckets_.push_back(static_cast<std::uint32_t>(bucket));
      }
      b.entries.push_back(e);
      b.min_at = std::min(b.min_at, e.at);
      wheel_min_at_ = std::min(wheel_min_at_, e.at);
      ++wheel_count_;
      return;
    }
  }
  overflow_.push_back(e);
  overflow_min_ = std::min(overflow_min_, e.at);
  wheel_min_at_ = std::min(wheel_min_at_, e.at);
  ++wheel_count_;
}

void Simulation::sync_wheel() {
  // `<=` (not `<`): entries tied with the heap front must be promoted before
  // the front is popped so same-instant dispatch stays in `seq` order.
  while (wheel_count_ != 0 && (queue_.empty() || wheel_min_at_ <= queue_.front().at)) {
    flush_min_bucket();
  }
}

void Simulation::flush_min_bucket() {
  // Scan order over `active_buckets_` is insertion order, which is
  // deterministic; tie order between buckets cannot affect dispatch order
  // anyway — the heap restores the (at, seq) total order once everything
  // due is promoted.
  const TimePoint due = wheel_min_at_;
  std::size_t pos = active_buckets_.size();
  for (std::size_t i = 0; i < active_buckets_.size(); ++i) {
    if (wheel_[active_buckets_[i]].min_at == due) {
      pos = i;
      break;
    }
  }
  if (pos != active_buckets_.size()) {
    const std::uint32_t bucket = active_buckets_[pos];
    WheelBucket& b = wheel_[bucket];
    // Deactivate before refiling: a refile may push back into this very
    // bucket (later-epoch entries that hash onto the same slot), which
    // re-activates it with its new, strictly later minimum.
    active_buckets_[pos] = active_buckets_.back();
    active_buckets_.pop_back();
    const std::int64_t cursor = b.min_at.count_nanos();
    wheel_count_ -= b.entries.size();
    b.min_at = TimePoint::max();
    if (bucket < kWheelSlots) {
      // Level 0: promote everything. Entries from a later epoch that hashed
      // onto this slot reach the heap a little early, which is harmless —
      // the heap still pops them at their own (at, seq) position.
      for (const QueueEntry& e : b.entries) {
        heap_push(e);
      }
      b.entries.clear();
    } else {
      // Coarser level: refile by distance from the bucket minimum. The due
      // entry lands in the heap (delta 0); siblings spread into finer
      // buckets by their distance from it. Copy (not swap) into the
      // scratch: a swap would rotate storage between buckets, so a
      // bucket's grown capacity would wander off and steady-state refills
      // would re-allocate. Entries are 32-byte PODs — the copy is cheap.
      wheel_scratch_.assign(b.entries.begin(), b.entries.end());
      b.entries.clear();  // capacity retained, and it stays with this bucket
      for (const QueueEntry& e : wheel_scratch_) {
        wheel_insert(e, cursor);
      }
      wheel_scratch_.clear();
    }
  } else {
    NM_CHECK(overflow_min_ == due, "timer wheel min accounting out of sync");
    const std::int64_t cursor = overflow_min_.count_nanos();
    wheel_count_ -= overflow_.size();
    overflow_min_ = TimePoint::max();
    wheel_scratch_.assign(overflow_.begin(), overflow_.end());
    overflow_.clear();  // capacity retained
    for (const QueueEntry& e : wheel_scratch_) {
      wheel_insert(e, cursor);
    }
    wheel_scratch_.clear();
  }
  // Recompute the cached global minimum: the flushed bucket's stale minimum
  // may have been the cached value. Only occupied buckets are scanned.
  TimePoint m = overflow_min_;
  for (const std::uint32_t bucket : active_buckets_) {
    m = std::min(m, wheel_[bucket].min_at);
  }
  wheel_min_at_ = m;
}

Simulation::QueueEntry Simulation::pop_next() {
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  QueueEntry entry = std::move(queue_.back());
  queue_.pop_back();
  return entry;
}

void Simulation::post(Duration delay, EventCallback fn) {
  NM_CHECK(!delay.is_negative(), "negative delay");
  enqueue(now_ + delay, nullptr, std::move(fn));
}

void Simulation::post_at(TimePoint at, EventCallback fn) {
  NM_CHECK(at >= now_, "post_at instant is in the past");
  enqueue(at, nullptr, std::move(fn));
}

void Simulation::post_resume(Duration delay, std::coroutine_handle<> h) {
  NM_CHECK(!delay.is_negative(), "negative delay");
  NM_CHECK(h != nullptr, "null coroutine handle");
  enqueue(now_ + delay, h, {});
}

TaskRef Simulation::spawn(Task task, std::string name) {
  const std::uint64_t id = next_task_id_++;
  auto detached = std::make_unique<Detached>();
  detached->handle = task.release();
  detached->state = std::make_shared<TaskRef::State>(*this);
  detached->name = std::move(name);
  NM_CHECK(detached->handle != nullptr, "spawning an empty task");

  auto& promise = detached->handle.promise();
  promise.detached_owner = this;
  promise.detach_id = id;

  TaskRef ref{detached->state};
  enqueue(now_, detached->handle, {});
  detached_.emplace(id, std::move(detached));
  ++live_tasks_;
  return ref;
}

void Simulation::on_detached_done(std::uint64_t id, std::exception_ptr exception) {
  auto it = detached_.find(id);
  NM_CHECK(it != detached_.end(), "unknown detached task " << id);
  auto& d = *it->second;
  d.state->finished = true;
  d.state->done_event.set();
  if (exception && !pending_exception_) {
    pending_exception_ = exception;
  }
  destroy_list_.push_back(d.handle);
  d.handle = nullptr;
  detached_.erase(it);
  NM_CHECK(live_tasks_ > 0, "task accounting underflow");
  --live_tasks_;
}

void Simulation::drain_destroy_list() {
  for (auto h : destroy_list_) {
    h.destroy();
  }
  destroy_list_.clear();
}

std::uint64_t Simulation::add_settle_hook(std::function<void()> hook) {
  NM_CHECK(hook != nullptr, "null settle hook");
  const std::uint64_t id = next_settle_hook_id_++;
  settle_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Simulation::remove_settle_hook(std::uint64_t id) {
  for (auto it = settle_hooks_.begin(); it != settle_hooks_.end(); ++it) {
    if (it->first == id) {
      settle_hooks_.erase(it);
      return;
    }
  }
  NM_CHECK(false, "unknown settle hook " << id);
}

void Simulation::maybe_settle() {
  if (!settle_requested_) {
    return;
  }
  if (!queue_.empty() && queue_.front().at <= now_) {
    return;  // the current instant is still playing out; defer
  }
  settle_requested_ = false;
  for (auto& [id, hook] : settle_hooks_) {
    hook();
  }
}

void Simulation::dispatch_one() {
  const QueueEntry entry = pop_next();
  NM_CHECK(entry.at >= now_, "event queue went backwards");
  now_ = entry.at;
  if (entry.handle) {
    entry.handle.resume();
  } else {
    // Move the callback out and recycle its slot before invoking: the
    // callback may itself post (re-entering the pool).
    EventCallback cb = std::move(callback_pool_[entry.slot]);
    free_callback_slots_.push_back(entry.slot);
    cb();
  }
  drain_destroy_list();
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

bool Simulation::step() {
  // Settle hooks may arm timers (so the queue can refill) or complete
  // flows at `now_`, so they must run before the empty check. Parked wheel
  // entries are all strictly after `now_` (they were inserted at least
  // kWheelMinDelayNs out and due ones are promoted before time advances),
  // so they never defer a settle.
  maybe_settle();
  if (wheel_count_ != 0) {
    sync_wheel();  // after the hooks: they may post nearer entries
  }
  if (queue_.empty()) {
    return false;
  }
  dispatch_one();
  return true;
}

TimePoint Simulation::run() {
  while (step()) {
  }
  return now_;
}

TimePoint Simulation::run_until(TimePoint deadline) {
  while (true) {
    // A pending settle may arm timers at or before `deadline`, so it must
    // run before deciding whether anything is left to execute.
    maybe_settle();
    if (wheel_count_ != 0) {
      sync_wheel();  // the heap front must be the global minimum
    }
    if (queue_.empty() || queue_.front().at > deadline) {
      break;
    }
    dispatch_one();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

std::coroutine_handle<> Task::FinalAwaiter::await_suspend(Task::Handle h) noexcept {
  auto& promise = h.promise();
  if (promise.detached_owner != nullptr) {
    promise.detached_owner->on_detached_done(promise.detach_id, promise.exception);
    return std::noop_coroutine();
  }
  if (promise.continuation) {
    return promise.continuation;
  }
  return std::noop_coroutine();
}

}  // namespace nm::sim
