#include "sim/simulation.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace nm::sim {

struct TaskRef::State {
  explicit State(Simulation& sim) : done_event(sim) {}
  Event done_event;
  bool finished = false;
};

bool TaskRef::done() const {
  NM_CHECK(state_ != nullptr, "TaskRef is empty");
  return state_->finished;
}

Event& TaskRef::completion() const {
  NM_CHECK(state_ != nullptr, "TaskRef is empty");
  return state_->done_event;
}

struct Simulation::Detached {
  Task::Handle handle;
  std::shared_ptr<TaskRef::State> state;
  std::string name;
};

Simulation::Simulation(std::uint64_t seed) : seed_(seed) {}

Simulation::~Simulation() {
  // Destroy any still-suspended detached tasks. Their frames may hold
  // awaiter state pointing at sim objects, so drop them before members die.
  for (auto& [id, d] : detached_) {
    if (d->handle) {
      d->handle.destroy();
    }
  }
  detached_.clear();
  drain_destroy_list();
}

void Simulation::enqueue(TimePoint at, std::coroutine_handle<> h, EventCallback fn) {
  NM_CHECK(at >= now_, "cannot schedule into the past");
  std::uint32_t slot = kNoCallback;
  if (fn) {
    if (!free_callback_slots_.empty()) {
      slot = free_callback_slots_.back();
      free_callback_slots_.pop_back();
      callback_pool_[slot] = std::move(fn);
    } else {
      slot = static_cast<std::uint32_t>(callback_pool_.size());
      callback_pool_.push_back(std::move(fn));
    }
  }
  queue_.push_back(QueueEntry{at, next_seq_++, h, slot});
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

Simulation::QueueEntry Simulation::pop_next() {
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  QueueEntry entry = std::move(queue_.back());
  queue_.pop_back();
  return entry;
}

void Simulation::post(Duration delay, EventCallback fn) {
  NM_CHECK(!delay.is_negative(), "negative delay");
  enqueue(now_ + delay, nullptr, std::move(fn));
}

void Simulation::post_resume(Duration delay, std::coroutine_handle<> h) {
  NM_CHECK(!delay.is_negative(), "negative delay");
  NM_CHECK(h != nullptr, "null coroutine handle");
  enqueue(now_ + delay, h, {});
}

TaskRef Simulation::spawn(Task task, std::string name) {
  const std::uint64_t id = next_task_id_++;
  auto detached = std::make_unique<Detached>();
  detached->handle = task.release();
  detached->state = std::make_shared<TaskRef::State>(*this);
  detached->name = std::move(name);
  NM_CHECK(detached->handle != nullptr, "spawning an empty task");

  auto& promise = detached->handle.promise();
  promise.detached_owner = this;
  promise.detach_id = id;

  TaskRef ref{detached->state};
  enqueue(now_, detached->handle, {});
  detached_.emplace(id, std::move(detached));
  ++live_tasks_;
  return ref;
}

void Simulation::on_detached_done(std::uint64_t id, std::exception_ptr exception) {
  auto it = detached_.find(id);
  NM_CHECK(it != detached_.end(), "unknown detached task " << id);
  auto& d = *it->second;
  d.state->finished = true;
  d.state->done_event.set();
  if (exception && !pending_exception_) {
    pending_exception_ = exception;
  }
  destroy_list_.push_back(d.handle);
  d.handle = nullptr;
  detached_.erase(it);
  NM_CHECK(live_tasks_ > 0, "task accounting underflow");
  --live_tasks_;
}

void Simulation::drain_destroy_list() {
  for (auto h : destroy_list_) {
    h.destroy();
  }
  destroy_list_.clear();
}

bool Simulation::step() {
  if (queue_.empty()) {
    return false;
  }
  const QueueEntry entry = pop_next();
  NM_CHECK(entry.at >= now_, "event queue went backwards");
  now_ = entry.at;
  if (entry.handle) {
    entry.handle.resume();
  } else {
    // Move the callback out and recycle its slot before invoking: the
    // callback may itself post (re-entering the pool).
    EventCallback cb = std::move(callback_pool_[entry.slot]);
    free_callback_slots_.push_back(entry.slot);
    cb();
  }
  drain_destroy_list();
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
  return true;
}

TimePoint Simulation::run() {
  while (step()) {
  }
  return now_;
}

TimePoint Simulation::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.front().at <= deadline) {
    step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

std::coroutine_handle<> Task::FinalAwaiter::await_suspend(Task::Handle h) noexcept {
  auto& promise = h.promise();
  if (promise.detached_owner != nullptr) {
    promise.detached_owner->on_detached_done(promise.detach_id, promise.exception);
    return std::noop_coroutine();
  }
  if (promise.continuation) {
    return promise.continuation;
  }
  return std::noop_coroutine();
}

}  // namespace nm::sim
