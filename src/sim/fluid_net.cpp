#include "sim/fluid_net.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace nm::sim {

namespace {
/// Ghost flows must never complete on their own: their only job is to
/// mirror the home flow's demand, and their cap (the published home rate)
/// bounds how fast they could drain. 1e300 outlasts any simulable horizon.
constexpr double kGhostWork = 1e300;
/// Publish threshold: rates/caps that moved by less than this (relative)
/// are treated as converged, ending the exchange loop.
constexpr double kExchangeTol = 1e-12;
/// Work-drained threshold, mirroring the solver's completion test
/// (fluid.cpp's kEpsilon): a home flow at or below it has been (or is
/// about to be) declared finished by the compute phase just run.
constexpr double kWorkEpsilon = 1e-6;

bool moved(double a, double b) {
  if (a == b) {
    return false;  // covers equal infinities
  }
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return true;
  }
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) > kExchangeTol * scale;
}

/// True when `cap` clears `rate` with relative margin: the cap is not the
/// binding constraint for a flow running at `rate`. A cap that stays slack
/// on both sides of a move cannot change the solved allocation — the
/// max-min solution is determined by its binding constraints only — so the
/// exchange can store the new value without re-solving the component.
bool cap_slack(double rate, double cap) { return cap > rate * (1.0 + 1e-9); }
}  // namespace

FluidNet::FluidNet(Simulation& sim, int workers) : sim_(&sim), workers_(workers) {
  NM_CHECK(workers >= 0, "negative FluidNet worker count");
  if (workers_ > 0) {
    ensure_pool();
  }
}

FluidNet::~FluidNet() {
  if (pool_ != nullptr) {
    pool_->set_exchange(nullptr);
  }
}

FluidDomain& FluidNet::add_domain(std::string name) {
  domains_.push_back(std::make_unique<FluidDomain>(*sim_, std::move(name)));
  auto& dom = *domains_.back();
  if (pool_ == nullptr && domains_.size() > 1) {
    // Second domain: boundary flows become possible, so settling must go
    // through the pool (it owns the exchange loop). ensure_pool attaches
    // every domain added so far, this one included.
    ensure_pool();
  } else if (pool_ != nullptr) {
    pool_->attach(dom.scheduler());
  }
  return dom;
}

void FluidNet::ensure_pool() {
  pool_ = std::make_unique<SolvePool>(*sim_, workers_);
  pool_->set_exchange(this);
  for (auto& dom : domains_) {
    pool_->attach(dom->scheduler());
  }
}

FluidDomain& FluidNet::domain(std::size_t index) {
  NM_CHECK(index < domains_.size(), "domain index " << index << " out of range");
  return *domains_[index];
}

FluidDomain* FluidNet::domain_of(const FluidResource& res) {
  for (auto& dom : domains_) {
    if (&dom->scheduler() == res.scheduler_) {
      return dom.get();
    }
  }
  return nullptr;
}

FlowPtr FluidNet::start(FlowSpec spec) {
  NM_CHECK(!domains_.empty(), "FluidNet has no domains");
  NM_CHECK(!spec.shares.empty(), "a flow must cross at least one resource");

  // Home = owning domain of the first owned resource (matching the
  // first-touch lazy registration FluidScheduler::start applies to the
  // unowned ones); an all-unowned spec homes into domain 0.
  FluidScheduler* home = nullptr;
  bool cross = false;
  for (const auto& share : spec.shares) {
    NM_CHECK(share.resource != nullptr, "null resource in flow");
    FluidScheduler* owner = share.resource->scheduler_;
    if (owner == nullptr) {
      continue;
    }
    NM_CHECK(domain_of(*share.resource) != nullptr,
             "resource " << share.resource->name() << " is owned outside this FluidNet");
    if (home == nullptr) {
      home = owner;
    } else if (owner != home) {
      cross = true;
    }
  }
  if (home == nullptr) {
    home = &domains_.front()->scheduler();
  }
  if (!cross) {
    return home->start(std::move(spec));
  }

  // Boundary flow: the home flow carries the work and the home-domain
  // shares; each foreign domain gets a ghost flow over its share subset,
  // capped at the published home rate (0 until the first exchange).
  NM_CHECK(pool_ != nullptr, "cross-domain flow without a SolvePool");
  std::vector<ResourceShare> home_shares;
  std::vector<std::pair<FluidScheduler*, std::vector<ResourceShare>>> foreign;
  for (const auto& share : spec.shares) {
    FluidScheduler* owner = share.resource->scheduler_;
    if (owner == nullptr || owner == home) {
      home_shares.push_back(share);
      continue;
    }
    auto it = std::find_if(foreign.begin(), foreign.end(),
                           [owner](const auto& entry) { return entry.first == owner; });
    if (it == foreign.end()) {
      foreign.emplace_back(owner, std::vector<ResourceShare>{});
      it = std::prev(foreign.end());
    }
    it->second.push_back(share);
  }

  BoundaryFlow entry;
  entry.home_sched = home;
  entry.home = home->start(FlowSpec{spec.work, std::move(home_shares), spec.max_rate, spec.name});
  if (entry.home->finished_) {
    return entry.home;  // zero-work: nothing to mirror
  }
  for (auto& [sched, shares] : foreign) {
    auto ghost = sched->start(FlowSpec{kGhostWork, std::move(shares), 0.0, spec.name.str() + ":ghost"});
    ghost->ghost_ = true;
    entry.ghosts.push_back(GhostLink{sched, std::move(ghost)});
  }
  boundary_.push_back(std::move(entry));
  return boundary_.back().home;
}

void FluidNet::mark(FluidScheduler* sched, const Flow& flow,
                    std::vector<std::pair<FluidScheduler*, std::uint32_t>>& dirtied) {
  if (flow.comp_ != FluidScheduler::kNone) {
    dirtied.emplace_back(sched, flow.comp_);
  }
}

void FluidNet::exchange(std::vector<std::pair<FluidScheduler*, std::uint32_t>>& dirtied) {
  // Registration order; every step below is deterministic in the
  // post-compute state, so the exchange — and with it the whole settle —
  // is independent of worker count. For each boundary flow:
  //   1. Publish the home rate into each ghost's cap (the foreign domains
  //      then account rate × weight consumption on their resources).
  //   2. Fold the ghosts' capacity offers back into the home boundary cap.
  //      A resource's offer is the max-min level it last bound at (the
  //      ghost can always claim a fair share that high), or the ghost's
  //      current rate plus the resource's leftover headroom when it never
  //      bound — both read off the just-computed solve.
  for (std::size_t i = 0; i < boundary_.size();) {
    BoundaryFlow& bf = boundary_[i];
    Flow& home = *bf.home;
    // Retire on the solver's own completion test (not just finished_,
    // which commit sets later): the compute round just integrated the home
    // flow to `now`, so a drained one is about to be committed finished —
    // its ghosts must vanish in this same settle or they would keep
    // consuming foreign capacity until some unrelated dirtying.
    const bool drained =
        home.finished_ ||
        home.remaining_ <= std::max(kWorkEpsilon, home.rate_ * 0.5e-9);
    if (drained) {
      for (auto& link : bf.ghosts) {
        retire_ghost(*link.sched, *link.ghost, dirtied);
      }
      boundary_.erase(boundary_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    double cap = std::numeric_limits<double>::infinity();
    for (auto& link : bf.ghosts) {
      Flow& ghost = *link.ghost;
      if (moved(ghost.max_rate_, home.rate_)) {
        // Store the new cap unconditionally (the next round's moved() check
        // must see the published value, or the loop would re-publish
        // forever), but only re-solve the foreign component when the cap
        // was or becomes binding on the ghost. A slack-to-slack move leaves
        // the foreign solution — and therefore this resource's next offer —
        // untouched, so skipping the mark cannot change the fixed point.
        const double old_cap = ghost.max_rate_;
        ghost.max_rate_ = home.rate_;
        if (cap_slack(ghost.rate_, old_cap) && cap_slack(ghost.rate_, home.rate_)) {
          ++exchange_skips_;
        } else {
          mark(link.sched, ghost, dirtied);
        }
      }
      for (const auto& share : ghost.shares_) {
        const FluidResource& res = *share.resource;
        const double headroom = std::max(0.0, res.capacity_ - res.consume_rate_);
        double offer = std::max(res.bound_level_, ghost.rate_ + headroom / share.weight);
        if (res.cap_policy_ != nullptr) {
          // Calibrated boundary (e.g. a WanLink endpoint): the published cap
          // follows the policy's latency/bandwidth model instead of the raw
          // fair-share offer. Policies only ever tighten the offer, so the
          // Jacobi iteration keeps its fixed point and contraction.
          offer = res.cap_policy_->offer(res, share.weight, offer, sim_->now());
        }
        cap = std::min(cap, offer);
      }
    }
    if (moved(home.boundary_cap_, cap)) {
      // Same slack gate as the ghost publish, on the *effective* cap (the
      // solver reads min(max_rate_, boundary_cap_)): when the user cap is
      // the tighter constraint, the boundary cap can wander freely above it
      // without perturbing the home solve.
      const double old_eff = std::min(home.max_rate_, home.boundary_cap_);
      const double new_eff = std::min(home.max_rate_, cap);
      home.boundary_cap_ = cap;
      if (old_eff == new_eff ||
          (cap_slack(home.rate_, old_eff) && cap_slack(home.rate_, new_eff))) {
        ++exchange_skips_;
      } else {
        mark(bf.home_sched, home, dirtied);
      }
    }
    ++i;
  }
}

void FluidNet::retire_ghost(FluidScheduler& sched, Flow& ghost,
                            std::vector<std::pair<FluidScheduler*, std::uint32_t>>& dirtied) {
  if (ghost.finished_) {
    return;
  }
  const auto comp_id = ghost.comp_;
  if (comp_id != FluidScheduler::kNone) {
    auto& comp = *sched.comps_[comp_id];
    // The component may not have been solved at this instant yet: bank its
    // flows' progress (the ghost's included) before the ghost disappears
    // from the flow list.
    sched.integrate_component(comp);
    auto& flows = comp.flows;
    const auto pos = ghost.comp_index_;
    flows.erase(flows.begin() + pos);
    for (std::size_t i = pos; i < flows.size(); ++i) {
      flows[i]->comp_index_ = static_cast<std::uint32_t>(i);
    }
    ++comp.admission_gen;  // membership changed: the cached solve layout is stale
    dirtied.emplace_back(&sched, comp_id);
  }
  // Local + global retirement, minus the completion event: a ghost never
  // "finishes" for any waiter, it is torn down with its home flow.
  sched.finish_flow_local(ghost);
  sched.retire_flow_global(ghost);
}

}  // namespace nm::sim
