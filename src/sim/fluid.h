// Fluid-flow resource model with max-min fair sharing. One mechanism
// models every rate-limited resource in the system:
//   - a node's CPU (capacity = cores; a vCPU flow is capped at 1.0 core),
//   - a NIC's tx/rx bandwidth (capacity = bytes/s),
//   - QEMU's single-threaded migration sender (capacity = its CPU-bound
//     throughput).
// A *flow* progresses at one rate and consumes `rate * weight` from every
// resource it crosses. Weights convert between units: a TCP flow moving R
// bytes/s can cross the host CPU with weight = core-seconds-per-byte, which
// is how protocol-processing cost (virtio/TCP) is charged. The scheduler
// continuously assigns each flow its max-min fair rate and fires a
// completion event when its work is done. CPU over-commit contention
// (Fig 8 "2 hosts (TCP)") and the 1.3 Gb/s migration cap fall out of this.
//
// The solver is *incremental and component-partitioned*: the flow/resource
// bipartite graph is maintained as connected components, and a flow
// start/finish/cap change re-solves only the affected component. Each
// component carries its own next-completion timer, so activity on host A
// never costs O(all flows in the system) — per-event cost is O(component),
// independent of how many other (clean) components exist. See DESIGN.md §5
// "Scheduler incrementality" for the determinism argument.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"
#include "util/error.h"

namespace nm::sim {

class FluidScheduler;
class FluidNet;
class SolvePool;

/// "No rate cap" for a flow.
inline constexpr double kUncappedRate = std::numeric_limits<double>::infinity();

class FluidResource;

/// Pluggable published-capacity policy consulted by the FluidNet boundary
/// exchange (DESIGN.md §7). When a resource carries one, the exchange folds
/// the policy's offer into a ghost flow's capacity instead of publishing the
/// plain fair-share offer — this is how a WAN link (sim/wan_link.h) makes
/// its published caps follow a latency/bandwidth/loss model.
///
/// `fair_offer` is the fair-share offer the resource would extend to the
/// boundary flow (flow-rate units); `weight` is the ghost's consumption
/// weight on the resource, so a policy expressing a wire-rate model returns
/// `model_rate / weight` to convert into flow-rate units. Implementations
/// must be deterministic functions of simulation state (they run inside the
/// serial exchange, between parallel compute rounds), and must never offer
/// *more* than `fair_offer` would in steady state if the split-vs-merged
/// equivalence is to be preserved for the unimpaired case.
class CapPolicy {
 public:
  virtual ~CapPolicy() = default;
  [[nodiscard]] virtual double offer(const FluidResource& res, double weight, double fair_offer,
                                     TimePoint now) = 0;
};

/// A capacity-bearing resource. Units are caller-defined (cores, bytes/s).
/// A resource registers with exactly one scheduler — eagerly when
/// constructed with one (preferred: gives it a stable dense index up
/// front), or lazily on the first flow that crosses it.
class FluidResource {
 public:
  FluidResource(std::string name, double capacity) : name_(std::move(name)), capacity_(capacity) {
    NM_CHECK(capacity >= 0.0, "negative capacity for " << name_);
  }
  FluidResource(FluidScheduler& scheduler, std::string name, double capacity);
  ~FluidResource();
  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double capacity() const { return capacity_; }
  /// Changing capacity re-balances the flows crossing it (the component is
  /// re-solved before any simulated time passes).
  void set_capacity(double capacity);

  /// Number of flows currently crossing this resource.
  [[nodiscard]] std::size_t active_flows() const { return active_flows_; }

  /// Integrated consumption (resource-unit-seconds, e.g. core-seconds for
  /// a CPU): utilization accounting for experiments like the paper's
  /// "one CPU core is saturated at 100 %" migration observation. A pure
  /// O(1) read: each solve leaves the resource's aggregate consumption
  /// rate (capacity − residual) behind, so reading extrapolates over the
  /// constant-rate window since the last solve — no component is touched,
  /// idle or otherwise, and no simulation state changes.
  [[nodiscard]] double consumed() const;
  /// Mean utilization (fraction of capacity) over [since, until].
  [[nodiscard]] double utilization_over(double consumed_before, Duration window) const;

  /// Attaches a published-capacity policy consulted by the FluidNet ghost
  /// exchange when this resource hosts ghost shares (a WanLink attaches
  /// itself to its endpoint pair; see sim/wan_link.h). nullptr detaches.
  /// Plain single-scheduler solves never consult the policy.
  void set_cap_policy(CapPolicy* policy) { cap_policy_ = policy; }
  [[nodiscard]] CapPolicy* cap_policy() const { return cap_policy_; }

 private:
  friend class FluidScheduler;
  friend class FluidNet;
  static constexpr std::uint32_t kNoSlot = 0xffffffffU;

  std::string name_;
  double capacity_;
  std::size_t active_flows_ = 0;
  /// Σ weights of the unfinished flows crossing this resource, maintained
  /// incrementally at admission/finish so the kPartialSort solver can seed
  /// its weight-sum row without walking every flow's share list. Guard
  /// decisions use the integer `active_flows_`, never this sum: repeated
  /// add/subtract leaves fp residue behind.
  double active_wsum_ = 0.0;
  /// The progressive-filling level at which this resource became binding in
  /// its component's most recent solve (−inf when it never bound). A
  /// resource binds in at most one filling round, so the stamp is unique
  /// per solve. FluidNet's ghost-capacity offers read it to advertise the
  /// max-min fair level a boundary flow could claim here.
  double bound_level_ = -std::numeric_limits<double>::infinity();
  /// Consumption integrated up to `rate_since_` (written only at solve
  /// time, per flow-share in component-flow order, so the float summation
  /// order is independent of when readers sample).
  double consumed_ = 0.0;
  /// Aggregate consumption rate (Σ rate × weight over crossing flows) in
  /// effect since `rate_since_`; rates are piecewise constant between
  /// solves, so `consumed() = consumed_ + consume_rate_ × elapsed`.
  double consume_rate_ = 0.0;
  TimePoint rate_since_;
  FluidScheduler* scheduler_ = nullptr;
  CapPolicy* cap_policy_ = nullptr;
  /// Stable dense index in the owning scheduler's resource registry.
  std::uint32_t slot_ = kNoSlot;
};

/// One resource crossed by a flow, with the flow's consumption weight on it
/// (resource units consumed per unit of flow rate).
struct ResourceShare {
  FluidResource* resource = nullptr;
  double weight = 1.0;
};

/// FlowSpec's diagnostic label. Deliberately NOT a std::string: GCC 12
/// relocates temporaries that live across a co_await suspension point into
/// the coroutine frame bitwise, which corrupts std::string's SSO
/// self-pointer (the relocated copy still points at the old buffer and
/// free()s a frame address on destruction). A FlowSpec temporary inside a
/// `co_await router.run(FlowSpec{...}...)` statement is exactly such a
/// temporary, so every member must tolerate a bitwise move — vectors do
/// (heap pointers only), SSO strings do not. Empty labels (the hot path)
/// never allocate.
class FlowLabel {
 public:
  FlowLabel() = default;
  FlowLabel(const char* s) : chars_(s, s + std::char_traits<char>::length(s)) {}
  FlowLabel(const std::string& s) : chars_(s.begin(), s.end()) {}
  [[nodiscard]] bool empty() const { return chars_.empty(); }
  [[nodiscard]] std::string str() const { return {chars_.begin(), chars_.end()}; }

 private:
  std::vector<char> chars_;
};

/// Everything needed to start a flow, in one aggregate. Build it with
/// designated initializers, or chain `over()` to add weighted shares:
///
///   router.start(FlowSpec{.work = bytes, .name = "tx"}
///                    .over(tx).over(rx).over(cpu, 1e-9));
///
/// This is the one flow-creation entry point (see FlowRouter); the old
/// `FluidScheduler::start(work, shares, max_rate)` overloads are gone.
struct FlowSpec {
  /// Work units to move (bytes, core-seconds, ...). Zero-work flows
  /// complete immediately.
  double work = 0.0;
  /// Resources crossed, with consumption weight per unit of flow rate.
  std::vector<ResourceShare> shares;
  /// Rate cap; kUncappedRate for none.
  double max_rate = kUncappedRate;
  /// Diagnostic label carried by the flow (may be empty).
  FlowLabel name;

  FlowSpec& over(FluidResource& resource, double weight = 1.0) & {
    shares.push_back(ResourceShare{&resource, weight});
    return *this;
  }
  // By value, not FlowSpec&&: the rvalue chain must yield a prvalue so a
  // coroutine parameter initialized from `FlowSpec{...}.over(r)` never
  // binds a reference to the intermediate temporary (GCC 12 relocates such
  // temporaries into the coroutine frame bitwise, which corrupts the SSO
  // string's self-pointer).
  FlowSpec over(FluidResource& resource, double weight = 1.0) && {
    shares.push_back(ResourceShare{&resource, weight});
    return std::move(*this);
  }
};

/// Handle to an in-flight flow. Shared so both the issuing task and
/// modelling code (e.g. "pause the VM") can reach it.
class alignas(64) Flow {
 public:
  [[nodiscard]] bool finished() const;
  [[nodiscard]] double remaining() const;
  [[nodiscard]] double current_rate() const;
  [[nodiscard]] Event& completion() { return done_; }
  /// Diagnostic label from the FlowSpec (may be empty).
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Caps this flow's rate; 0 pauses it (e.g. its VM was paused). While the
  /// flow is suspended the new cap is stored and applied on resume() — it
  /// neither un-pauses the flow nor is clobbered by the pre-suspend cap.
  void set_max_rate(double max_rate);
  [[nodiscard]] double max_rate() const { return max_rate_; }
  [[nodiscard]] const std::vector<ResourceShare>& shares() const { return shares_; }

  /// Pause/resume preserving the original rate cap. Used when a VM is
  /// paused: all its flows stall without forgetting their caps.
  void suspend();
  void resume();
  [[nodiscard]] bool suspended() const { return suspended_; }

 private:
  friend class FluidScheduler;
  friend class FluidNet;
  Flow(Simulation& sim, double work, std::vector<ResourceShare> shares, double max_rate,
       std::string name)
      : remaining_(work),
        max_rate_(max_rate),
        shares_(std::move(shares)),
        name_(std::move(name)),
        done_(sim) {
    w0_ = shares_.empty() ? 0.0 : shares_.front().weight;
  }

  static constexpr std::uint32_t kNoIndex = 0xffffffffU;

  /// The cap the solver actually honors: the user cap min the tightest
  /// rate the foreign domains currently advertise (boundary flows only;
  /// boundary_cap_ stays +inf for local flows, so the min is exact).
  [[nodiscard]] double effective_cap() const { return std::min(max_rate_, boundary_cap_); }

  // Solver-hot fields first: the class is 64-byte aligned so everything the
  // per-solve passes touch (integration, completion test, cap gathering,
  // water-level freezing) lands on one cache line per flow.
  double remaining_;
  double rate_ = 0.0;
  double max_rate_;
  /// Cross-domain coupling (FluidNet): a ghost flow mirrors a boundary
  /// flow's demand into a foreign domain; the home flow's boundary_cap_
  /// is refreshed by the settle-time exchange from the ghosts' offers.
  double boundary_cap_ = std::numeric_limits<double>::infinity();
  TimePoint last_update_;
  /// Cached shares_.front().weight (shares are immutable after admission):
  /// lets the single-resource water-fill fast path skip the shares_ deref.
  double w0_ = 0.0;
  /// Connected component this flow belongs to, and its positions in the
  /// component's flow list and the scheduler's global flow list.
  std::uint32_t comp_ = kNoIndex;
  std::uint32_t comp_index_ = kNoIndex;
  std::uint32_t global_index_ = kNoIndex;
  bool ghost_ = false;
  bool suspended_ = false;
  bool finished_ = false;
  // Cold fields (admission-time or rare-path only) below.
  double saved_max_rate_ = 0.0;
  std::vector<ResourceShare> shares_;
  std::string name_;
  Event done_;  // inline member: Flow is heap-pinned, so the address is stable
  FluidScheduler* scheduler_ = nullptr;
  /// Admission order, scheduler-wide. Component flow lists are kept in this
  /// order (canonicalized on rebuild) so progressive filling sums floats in
  /// the same order the seed's global solver did.
  std::uint64_t seq_ = 0;
};

using FlowPtr = std::shared_ptr<Flow>;

/// Anything that can admit a FlowSpec: a single FluidScheduler, or the
/// multi-domain FluidNet façade (fluid_net.h) that routes each spec to the
/// owning domain and registers specs whose resources span domains as
/// boundary flows. Modelling code (fabrics, hosts, storage) holds a
/// FlowRouter& so it works unchanged under any domain partitioning.
class FlowRouter {
 public:
  virtual ~FlowRouter() = default;
  [[nodiscard]] virtual Simulation& simulation() = 0;
  /// Starts the described flow. Every resource must outlive the flow.
  virtual FlowPtr start(FlowSpec spec) = 0;
  /// Coroutine helper: start the flow and wait for its completion.
  [[nodiscard]] Task run(FlowSpec spec);
};

class FluidScheduler : public FlowRouter {
 public:
  explicit FluidScheduler(Simulation& sim) : sim_(&sim) {}
  ~FluidScheduler() override;
  FluidScheduler(const FluidScheduler&) = delete;
  FluidScheduler& operator=(const FluidScheduler&) = delete;

  [[nodiscard]] Simulation& simulation() override { return *sim_; }

  /// Starts a flow described by `spec`. A zero-work flow completes
  /// immediately. Every resource must outlive the flow; every resource must
  /// be unowned or owned by this scheduler (a spec that spans schedulers
  /// must go through FluidNet, which owns the boundary-flow machinery).
  FlowPtr start(FlowSpec spec) override;
  using FlowRouter::run;

  // Compile-time guard: the legacy start/run(work, shares-or-resources,
  // max_rate) shims served their one-PR deprecation window and were removed.
  // Any resurrected call site trips these deleted overloads instead of
  // silently re-growing the old surface — build the FlowSpec instead.
  template <typename... Args>
  FlowPtr start(double, Args&&...) = delete;
  template <typename... Args>
  Task run(double, Args&&...) = delete;

  [[nodiscard]] std::size_t active_flow_count() const { return flows_.size(); }
  /// Number of connected flow/resource components currently tracked.
  [[nodiscard]] std::size_t component_count() const;

  /// Which progressive-filling implementation solves components.
  /// `kPartialSort` is the production path: a cap min-heap plays the role of
  /// the partial sort (only the next cap band is ever ordered), binding
  /// resources freeze their flows through a transpose list, and all state
  /// streams through dense SoA arrays laid out per component. The legacy
  /// full-scan rounds are retained verbatim as `kFullScanReference` so tests
  /// can cross-check the two against each other and against brute force.
  /// Both compute the same max-min fair allocation; freeze ties are broken
  /// by admission seq in either path.
  enum class SolveMethod {
    kPartialSort,
    kFullScanReference,
  };
  void set_solve_method(SolveMethod method) { solve_method_ = method; }
  [[nodiscard]] SolveMethod solve_method() const { return solve_method_; }

  /// Re-balances every component now. Flow/resource mutations re-solve
  /// only the affected component, and defer that solve to the end of the
  /// current simulation instant (no simulated time passes in between), so
  /// this is only needed as a big-hammer external entry point.
  void rebalance();

 private:
  friend class Flow;
  friend class FluidResource;
  friend class FluidNet;
  friend class SolvePool;

  static constexpr std::uint32_t kNone = 0xffffffffU;

  /// A connected component of the flow/resource bipartite graph: the unit
  /// of incremental re-solving. `gen` invalidates its outstanding
  /// next-completion timer; it changes on every solve/merge/rebuild.
  struct Component {
    std::uint32_t id = kNone;
    std::uint32_t gen = 0;
    bool dirty = false;
    std::vector<Flow*> flows;
    std::vector<std::uint32_t> res_slots;
    /// Instant the component was last solved or integrated to. Every member
    /// flow with a nonzero rate shares it as `last_update_` (flows admitted
    /// later carry rate 0 until their first solve), so the solver hoists
    /// one uniform elapsed window instead of differencing per flow.
    /// merge_into integrates both sides first to keep the invariant.
    TimePoint last_solved;
    /// Admission generation: bumped whenever membership changes (a flow is
    /// admitted, completes, or is retired by the exchange; a resource slot
    /// joins or leaves). Pure rate/cap/capacity mutations leave it alone, so
    /// the cached solve layout below — and anything else keyed on flow
    /// ordering — survives the common re-solve.
    std::uint64_t admission_gen = 0;
    /// Cached transpose (resource → flows) for binding-resource freeze
    /// rounds. Built lazily on the second consecutive solve at the same
    /// `admission_gen`: churning components (flows admitted or completing
    /// every solve) never pay the build and use the admission-order flow
    /// scan instead, while stable components (e.g. exchange-coupled ones
    /// re-solved many times per settle) freeze through the list. Local
    /// flow index = position in `flows` (admission order); local resource
    /// index = position in `res_slots`.
    struct Layout {
      /// Sentinels distinct from any admission_gen so fresh components scan.
      std::uint64_t built_gen = ~0ull;
      /// Last admission generation a solve ran at; built_gen chases it.
      std::uint64_t seen_gen = ~0ull;
      std::uint32_t n_res = 0;
      /// CSR transpose: resource → local flow indices, in admission order.
      std::vector<std::uint32_t> rflow_off;  // n_res + 1
      std::vector<std::uint32_t> rflow_ids;
    };
    Layout layout;
  };

  /// Scratch for the pure compute phase of a solve, owned per worker (and
  /// once per scheduler for the serial path). Rows are slot-indexed into
  /// the owning scheduler's resource registry and initialized per component
  /// before use, so one scratch can serve components from any scheduler —
  /// it only ever needs to be grown, never cleared.
  struct SolveScratch {
    // Slot-indexed rows shared by both solvers (the kPartialSort path
    // addresses them through comp.res_slots[local]).
    std::vector<double> res_residual;
    std::vector<double> res_wsum;
    std::vector<std::uint32_t> res_unfrozen;
    std::vector<std::uint8_t> res_binding;
    std::vector<Flow*> unfrozen;
    /// Dense frozen flags for the kPartialSort solver; index = local flow
    /// index (position in Component::flows, admission order). Caps and
    /// residual work are read off the (cache-line-packed) Flow itself.
    std::vector<std::uint8_t> f_frozen;
    /// Local indices of resources that still carry unfrozen flows,
    /// compacted as rounds freeze them out.
    std::vector<std::uint32_t> r_live;
    /// Min-heap of (effective cap, local flow index): the "partial sort" —
    /// only the next cap band is ever in order, frozen entries are dropped
    /// lazily at pop. The pair compare breaks cap ties by admission index.
    std::vector<std::pair<double, std::uint32_t>> cap_heap;
    /// Flows freezing in the current round, restored to admission order
    /// before their subtractive updates run.
    std::vector<std::uint32_t> freeze_batch;
    /// Slot → local resource index, valid only inside one layout build.
    std::vector<std::uint32_t> slot_local;
    std::vector<std::uint32_t> rflow_cursor;
  };

  /// Everything a compute phase hands to the serial commit phase: the flows
  /// that completed (strong refs, in component order) and the earliest
  /// time-to-completion among the survivors.
  struct SolveResult {
    std::vector<FlowPtr> finished;
    double next_completion_s = std::numeric_limits<double>::infinity();
  };

  void register_resource(FluidResource& res);
  void unregister_resource(FluidResource& res);

  Component* component_of_flow(const Flow& flow) {
    return flow.comp_ == kNone ? nullptr : comps_[flow.comp_].get();
  }
  Component* component_of_slot(std::uint32_t slot) {
    const auto id = slot_comp_[slot];
    return id == kNone ? nullptr : comps_[id].get();
  }

  Component& make_component();
  /// Merges `src` into `dst` (flows, resources, dirtiness) and retires it.
  void merge_into(Component& dst, Component& src);
  void mark_dirty(Component& comp);
  /// Solves every dirty component, then considers a component rebuild.
  void settle_dirty();
  /// Brings one flow's component up to date (getter entry point).
  void ensure_settled(const Flow& flow);

  /// Integrate + complete + re-solve + re-arm timer for one component:
  /// compute_component + commit_component back to back (the serial path).
  void solve_component(Component& comp);
  /// The pure compute phase of a solve: integrates progress, detects
  /// completions, compacts the component's flow list, and re-solves rates
  /// and consumption stamps — touching only the component's own flows and
  /// resources plus the caller's scratch, so distinct components (of this
  /// or any other scheduler) can compute concurrently. Posts nothing and
  /// mutates no scheduler-global state; completions and the next timer are
  /// reported through `out` for commit_component.
  void compute_component(Component& comp, SolveScratch& scratch, SolveResult& out);
  /// The retained legacy compute phase (SolveMethod::kFullScanReference):
  /// full scans over slot-indexed rows and the unfrozen pointer list.
  void compute_component_reference(Component& comp, SolveScratch& scratch, SolveResult& out);
  /// Chases `comp.layout` toward `admission_gen`: builds the transpose only
  /// on the second consecutive solve at the same generation (stable
  /// membership), so churning components never pay the build.
  void ensure_layout(Component& comp, SolveScratch& scratch);
  /// Water-level filling over the dense arrays prepared by
  /// compute_component: alternates cap-band rounds (heap pops) and
  /// binding-resource rounds (transpose-list freezes). Returns the earliest
  /// time-to-completion in seconds (+inf if nothing progresses).
  double water_fill(Component& comp, SolveScratch& scratch);
  /// Multi-line diagnostic dump of a component's resources (capacity,
  /// residual bookkeeping, bound levels) and flows (demand, caps, shares)
  /// for solver no-progress failures. Cold path only.
  [[nodiscard]] std::string describe_component(const Component& comp) const;
  /// The serial commit phase: retires finished flows from the global list,
  /// arms the component's next-completion timer (or dissolves an emptied
  /// component), then fires completion events. Callers running computes in
  /// parallel must invoke commits one at a time, in canonical (domain id,
  /// component id) order, so every post into the shared Simulation queue
  /// draws the same sequence numbers as the single-threaded schedule.
  void commit_component(Component& comp, SolveResult& out);
  /// Advances progress/consumption at current rates; no completions.
  void integrate_component(Component& comp);
  /// Weighted progressive-filling rounds over one component, consuming the
  /// scratch state prepared by compute_component (`first_cap` = round-1 min
  /// over flow caps). Returns the earliest time-to-completion among its
  /// flows (seconds; +inf if none progress).
  double assign_max_min_rates(Component& comp, double first_cap, SolveScratch& scratch);
  void arm_timer(Component& comp, double next_completion_s);
  void on_timer(std::uint64_t key);

  /// Flow-retire bookkeeping; components over-approximate connectivity
  /// until enough flows have retired, then are recomputed from scratch
  /// (epoch rebuild) so they can split again.
  void maybe_rebuild();
  void rebuild_components();

  /// Completion bookkeeping confined to the flow's own component/resources
  /// (safe in the parallel compute phase).
  void finish_flow_local(Flow& flow);
  /// Scheduler-global completion bookkeeping (commit phase only).
  void retire_flow_global(Flow& flow);

  Simulation* sim_;
  std::vector<FlowPtr> flows_;

  // Resource registry: stable dense slots, free-listed on unregister.
  std::vector<FluidResource*> res_slots_;
  std::vector<std::uint32_t> free_res_slots_;
  std::vector<std::uint32_t> slot_comp_;

  // Component registry.
  std::vector<std::unique_ptr<Component>> comps_;
  std::vector<std::uint32_t> free_comp_ids_;
  std::size_t live_comp_count_ = 0;

  // Deferred settling: mutations mark components dirty and a zero-delay
  // callback re-solves them before any simulated time passes. When a
  // SolvePool is attached, the pool's kernel settle hook takes over: marks
  // notify the pool instead of posting, and dirty components are solved in
  // parallel at the end of the instant.
  std::vector<std::uint32_t> dirty_comps_;
  bool settle_pending_ = false;
  SolvePool* pool_ = nullptr;
  bool pool_dirty_ = false;       // this scheduler has unsettled components
  std::uint32_t pool_domain_ = 0;  // attach order = canonical domain id

  // Solve scratch/result for the serial path (ensure_settled, rebalance,
  // and every solve when no pool is attached).
  SolveScratch serial_scratch_;
  SolveResult serial_result_;

  std::size_t retired_since_rebuild_ = 0;
  std::uint32_t next_gen_ = 0;
  std::uint64_t next_flow_seq_ = 0;
  SolveMethod solve_method_ = SolveMethod::kPartialSort;
};

/// A topology shard: one independently-solved FluidScheduler over a shared
/// simulation clock. When the partition follows the modelled topology's
/// connectivity (no flow ever spans domains) the split is exact: rates in
/// one domain never depend on another domain's state, and every domain's
/// timers drain through the one simulation's (time, sequence) event queue,
/// so the merged timeline is bit-identical for every valid partitioning.
/// Flows that do span domains are admitted through FluidNet (fluid_net.h)
/// as boundary flows: the settle-time ghost-capacity exchange couples the
/// domains' solves and converges to the same max-min rates the merged
/// scheduler would compute — see DESIGN.md §6. Either way domains are safe
/// to construct in parallel (each worker thread touches only its own
/// scheduler; the shared Simulation takes no posts during the parallel
/// phase) — see bench_scalability and sim_sharding_test.
class FluidDomain {
 public:
  FluidDomain(Simulation& sim, std::string name)
      : name_(std::move(name)), scheduler_(std::make_unique<FluidScheduler>(sim)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] FluidScheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] Simulation& simulation() { return scheduler_->simulation(); }

 private:
  std::string name_;
  // unique_ptr so resources keep a stable scheduler address if the owning
  // container of domains reallocates.
  std::unique_ptr<FluidScheduler> scheduler_;
};

}  // namespace nm::sim
