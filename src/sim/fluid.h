// Fluid-flow resource model with max-min fair sharing. One mechanism
// models every rate-limited resource in the system:
//   - a node's CPU (capacity = cores; a vCPU flow is capped at 1.0 core),
//   - a NIC's tx/rx bandwidth (capacity = bytes/s),
//   - QEMU's single-threaded migration sender (capacity = its CPU-bound
//     throughput).
// A *flow* progresses at one rate and consumes `rate * weight` from every
// resource it crosses. Weights convert between units: a TCP flow moving R
// bytes/s can cross the host CPU with weight = core-seconds-per-byte, which
// is how protocol-processing cost (virtio/TCP) is charged. The scheduler
// continuously assigns each flow its max-min fair rate and fires a
// completion event when its work is done. CPU over-commit contention
// (Fig 8 "2 hosts (TCP)") and the 1.3 Gb/s migration cap fall out of this.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"
#include "util/error.h"

namespace nm::sim {

class FluidScheduler;

/// A capacity-bearing resource. Units are caller-defined (cores, bytes/s).
class FluidResource {
 public:
  FluidResource(std::string name, double capacity) : name_(std::move(name)), capacity_(capacity) {
    NM_CHECK(capacity >= 0.0, "negative capacity for " << name_);
  }
  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double capacity() const { return capacity_; }
  /// Changing capacity immediately re-balances all flows crossing it.
  void set_capacity(double capacity);

  /// Number of flows currently crossing this resource.
  [[nodiscard]] std::size_t active_flows() const { return active_flows_; }

  /// Integrated consumption (resource-unit-seconds, e.g. core-seconds for
  /// a CPU): utilization accounting for experiments like the paper's
  /// "one CPU core is saturated at 100 %" migration observation.
  [[nodiscard]] double consumed() const { return consumed_; }
  /// Mean utilization (fraction of capacity) over [since, until].
  [[nodiscard]] double utilization_over(double consumed_before, Duration window) const {
    const double window_s = window.to_seconds();
    if (window_s <= 0.0 || capacity_ <= 0.0) {
      return 0.0;
    }
    return (consumed_ - consumed_before) / (capacity_ * window_s);
  }

 private:
  friend class FluidScheduler;
  std::string name_;
  double capacity_;
  std::size_t active_flows_ = 0;
  double consumed_ = 0.0;
  FluidScheduler* scheduler_ = nullptr;
};

/// One resource crossed by a flow, with the flow's consumption weight on it
/// (resource units consumed per unit of flow rate).
struct ResourceShare {
  FluidResource* resource = nullptr;
  double weight = 1.0;
};

/// Handle to an in-flight flow. Shared so both the issuing task and
/// modelling code (e.g. "pause the VM") can reach it.
class Flow {
 public:
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] double remaining() const { return remaining_; }
  [[nodiscard]] double current_rate() const { return rate_; }
  [[nodiscard]] Event& completion() { return *done_; }

  /// Caps this flow's rate; 0 pauses it (e.g. its VM was paused).
  void set_max_rate(double max_rate);
  [[nodiscard]] double max_rate() const { return max_rate_; }
  [[nodiscard]] const std::vector<ResourceShare>& shares() const { return shares_; }

  /// Pause/resume preserving the original rate cap. Used when a VM is
  /// paused: all its flows stall without forgetting their caps.
  void suspend();
  void resume();
  [[nodiscard]] bool suspended() const { return suspended_; }

 private:
  friend class FluidScheduler;
  Flow(Simulation& sim, double work, std::vector<ResourceShare> shares, double max_rate)
      : remaining_(work),
        max_rate_(max_rate),
        shares_(std::move(shares)),
        done_(std::make_unique<Event>(sim)) {}

  double remaining_;
  double rate_ = 0.0;
  double max_rate_;
  double saved_max_rate_ = 0.0;
  bool suspended_ = false;
  bool finished_ = false;
  std::vector<ResourceShare> shares_;
  std::unique_ptr<Event> done_;
  FluidScheduler* scheduler_ = nullptr;
  TimePoint last_update_;
};

using FlowPtr = std::shared_ptr<Flow>;

class FluidScheduler {
 public:
  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  explicit FluidScheduler(Simulation& sim) : sim_(&sim) {}
  FluidScheduler(const FluidScheduler&) = delete;
  FluidScheduler& operator=(const FluidScheduler&) = delete;

  [[nodiscard]] Simulation& simulation() { return *sim_; }

  /// Starts a flow of `work` units across weighted `shares`. A zero-work
  /// flow completes immediately. Every resource must outlive the flow.
  FlowPtr start(double work, std::vector<ResourceShare> shares, double max_rate = kUncapped);
  /// Convenience overload: unit weight on every resource.
  FlowPtr start(double work, const std::vector<FluidResource*>& resources,
                double max_rate = kUncapped);

  /// Coroutine helpers: start a flow and wait for completion.
  [[nodiscard]] Task run(double work, std::vector<ResourceShare> shares,
                         double max_rate = kUncapped);
  [[nodiscard]] Task run(double work, std::vector<FluidResource*> resources,
                         double max_rate = kUncapped);

  [[nodiscard]] std::size_t active_flow_count() const { return flows_.size(); }

  /// Re-balances rates now. Called automatically on start/finish/changes.
  void rebalance();

 private:
  friend class Flow;
  friend class FluidResource;

  void integrate_progress();
  void assign_max_min_rates();
  void schedule_next_completion();

  Simulation* sim_;
  std::vector<FlowPtr> flows_;
  std::uint64_t generation_ = 0;
};

}  // namespace nm::sim
