// A persistent worker pool that parallelizes the fluid solve across dirty
// components at each settle point, without perturbing the deterministic
// event schedule.
//
// How it keeps the timeline bit-identical to the single-threaded run:
//   1. Dirty marks never post: attached schedulers route mark_dirty (and
//      completion-timer firings) to the pool, which arms the kernel's
//      settle hook. The hook runs at the end of the simulated instant, so
//      every component dirtied at that instant — across all domains — is
//      collected into one batch.
//   2. The batch is sorted by (domain id, component id) — a canonical
//      order independent of mark order and of worker count.
//   3. Workers (plus the simulation thread) run only the *pure compute*
//      phase (FluidScheduler::compute_component): each task touches its own
//      component's flows/resources and a per-worker scratch, nothing else.
//   4. After a barrier, the simulation thread runs every *commit* phase
//      serially in the canonical order. Commits are the only place timer
//      posts and completion events enter the shared Simulation queue, so
//      they draw exactly the sequence numbers the serial schedule would.
// See DESIGN.md §5 "Parallel dirty-domain solving".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/fluid.h"
#include "sim/simulation.h"

namespace nm::sim {

/// Cross-domain coupling hook (implemented by FluidNet). When boundary
/// flows exist the pool interleaves compute rounds with exchange() calls —
/// solve dirty components against the current ghost caps, publish the
/// boundary rates, re-solve whatever moved — until a fixed point, then
/// commits every touched component exactly once in canonical order.
class SettleExchange {
 public:
  virtual ~SettleExchange() = default;
  /// True when at least one boundary flow is registered (enables
  /// multi-round settling; with none the pool keeps its single-round path).
  [[nodiscard]] virtual bool active() const = 0;
  /// Runs one Jacobi exchange over the boundary registry: publish each
  /// freshly-solved home rate into its ghosts' caps and fold the ghosts'
  /// capacity offers back into the home flow's boundary cap. Appends every
  /// (scheduler, component id) whose inputs moved to `dirtied`. Called
  /// serially on the simulation thread between compute rounds.
  virtual void exchange(std::vector<std::pair<FluidScheduler*, std::uint32_t>>& dirtied) = 0;
};

class SolvePool {
 public:
  /// Spawns `workers` persistent threads (>= 0; with 0 the simulation
  /// thread computes every batch itself — the pool then only provides the
  /// settle-hook batching and the exchange loop) and registers the settle
  /// hook with `sim`. The pool must outlive no scheduler attached to it and
  /// must be destroyed before `sim`.
  SolvePool(Simulation& sim, int workers);
  ~SolvePool();
  SolvePool(const SolvePool&) = delete;
  SolvePool& operator=(const SolvePool&) = delete;

  /// Takes over settling for `scheduler`. Attach order defines the
  /// scheduler's canonical domain id. Must happen before the scheduler has
  /// any pending settle (i.e. right after construction).
  void attach(FluidScheduler& scheduler);
  void detach(FluidScheduler& scheduler);

  /// Registers (or clears, with nullptr) the cross-domain exchange driver.
  void set_exchange(SettleExchange* exchange) { exchange_ = exchange; }
  [[nodiscard]] bool exchange_active() const {
    return exchange_ != nullptr && exchange_->active();
  }
  /// True when any attached scheduler has components waiting for the next
  /// settle point. Readers use it to decide whether a coupled (exchange)
  /// settle must run before rates can be observed.
  [[nodiscard]] bool any_dirty() const;

  [[nodiscard]] int worker_count() const { return static_cast<int>(workers_.size()); }
  /// Settle points executed so far, and how many of them had 2+ components
  /// to solve (the ones where parallelism could help).
  [[nodiscard]] std::size_t settle_count() const { return settles_; }
  [[nodiscard]] std::size_t parallel_settle_count() const { return parallel_settles_; }
  [[nodiscard]] std::size_t solved_component_count() const { return solved_comps_; }
  [[nodiscard]] std::size_t max_batch_size() const { return max_batch_; }
  /// Compute rounds run inside exchanging settles (1 round = solve all
  /// pending components once), and how many settles hit the round cap
  /// before the exchange reached its fixed point.
  [[nodiscard]] std::size_t exchange_round_count() const { return exchange_rounds_; }
  [[nodiscard]] std::size_t unconverged_exchange_count() const { return unconverged_exchanges_; }
  /// Per-settle visibility on the same counter: rounds of the most recent
  /// exchanging settle, and the worst settle observed since construction.
  /// A healthy scenario stays far below kMaxExchangeRounds; tests gate on
  /// the max to catch convergence regressions before the safety valve
  /// silently absorbs them.
  [[nodiscard]] std::size_t last_settle_exchange_rounds() const { return last_settle_rounds_; }
  [[nodiscard]] std::size_t max_exchange_rounds_per_settle() const { return max_settle_rounds_; }

 private:
  friend class FluidScheduler;
  friend class FluidNet;

  /// Safety valve for a non-converging exchange: commit whatever the last
  /// round produced (all dirty flags are already cleared by then, so
  /// nothing is stranded) and count it in unconverged_exchange_count().
  /// The Jacobi iteration contracts geometrically (observed worst case
  /// ~0.7/round on coupled-bottleneck chains, ~75 rounds to 1e-12), so 256
  /// leaves a wide margin while still bounding a pathological settle.
  static constexpr std::size_t kMaxExchangeRounds = 256;
  /// Indices a thread claims per mutex round-trip: batches of tiny
  /// singleton components stop paying one lock handoff each.
  static constexpr std::size_t kClaimChunk = 4;

  struct TaskEntry {
    FluidScheduler* sched = nullptr;
    FluidScheduler::Component* comp = nullptr;
    std::uint32_t domain = 0;
    FluidScheduler::SolveResult result;
    /// Completions banked across exchange rounds (each recompute clears
    /// result.finished); swapped back into result before the final commit.
    std::vector<FlowPtr> finished_acc;
    std::exception_ptr error;
  };

  /// Called by an attached scheduler on every dirty mark; arms the kernel
  /// settle hook for the current instant.
  void notify_dirty(FluidScheduler& scheduler);
  /// The settle hook body: collect → (parallel compute ↔ serial exchange)*
  /// → serial commit in canonical order.
  void settle();
  /// Computes every task listed in pending_ (parallel when workers exist
  /// and the round has 2+ tasks), then rethrows the first compute error in
  /// canonical order.
  void compute_pending();
  void run_compute(std::size_t task_index, std::size_t scratch_index);
  void worker_main(std::size_t worker_index);

  Simulation* sim_;
  std::uint64_t hook_id_ = 0;
  /// Attach-ordered; detach leaves a null hole so domain ids stay stable.
  std::vector<FluidScheduler*> attached_;
  SettleExchange* exchange_ = nullptr;

  // The task batch for the current settle. Published to workers under
  // `mutex_` by bumping `epoch_`; pending indices are claimed under the
  // same mutex (the compute runs unlocked), and the `done_tasks_` count
  // both signals completion and gives the commit phase a happens-before
  // edge over every compute phase.
  std::vector<TaskEntry> tasks_;
  /// Indices into tasks_ to compute this round, in canonical order. Round
  /// 0 lists every collected task; later (exchange) rounds list just the
  /// components the exchange re-dirtied.
  std::vector<std::size_t> pending_;
  std::vector<std::pair<FluidScheduler*, std::uint32_t>> dirtied_;
  std::vector<FluidScheduler::SolveScratch> scratch_;  // workers + sim thread
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t round_count_ = 0;
  std::size_t next_claim_ = 0;
  std::size_t done_tasks_ = 0;
  bool stop_ = false;

  std::size_t settles_ = 0;
  std::size_t parallel_settles_ = 0;
  std::size_t solved_comps_ = 0;
  std::size_t max_batch_ = 0;
  std::size_t exchange_rounds_ = 0;
  std::size_t unconverged_exchanges_ = 0;
  std::size_t last_settle_rounds_ = 0;
  std::size_t max_settle_rounds_ = 0;
};

}  // namespace nm::sim
