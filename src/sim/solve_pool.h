// A persistent worker pool that parallelizes the fluid solve across dirty
// components at each settle point, without perturbing the deterministic
// event schedule.
//
// How it keeps the timeline bit-identical to the single-threaded run:
//   1. Dirty marks never post: attached schedulers route mark_dirty (and
//      completion-timer firings) to the pool, which arms the kernel's
//      settle hook. The hook runs at the end of the simulated instant, so
//      every component dirtied at that instant — across all domains — is
//      collected into one batch.
//   2. The batch is sorted by (domain id, component id) — a canonical
//      order independent of mark order and of worker count.
//   3. Workers (plus the simulation thread) run only the *pure compute*
//      phase (FluidScheduler::compute_component): each task touches its own
//      component's flows/resources and a per-worker scratch, nothing else.
//   4. After a barrier, the simulation thread runs every *commit* phase
//      serially in the canonical order. Commits are the only place timer
//      posts and completion events enter the shared Simulation queue, so
//      they draw exactly the sequence numbers the serial schedule would.
// See DESIGN.md §5 "Parallel dirty-domain solving".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/fluid.h"
#include "sim/simulation.h"

namespace nm::sim {

class SolvePool {
 public:
  /// Spawns `workers` persistent threads (>= 1) and registers the settle
  /// hook with `sim`. The pool must outlive no scheduler attached to it and
  /// must be destroyed before `sim`.
  SolvePool(Simulation& sim, int workers);
  ~SolvePool();
  SolvePool(const SolvePool&) = delete;
  SolvePool& operator=(const SolvePool&) = delete;

  /// Takes over settling for `scheduler`. Attach order defines the
  /// scheduler's canonical domain id. Must happen before the scheduler has
  /// any pending settle (i.e. right after construction).
  void attach(FluidScheduler& scheduler);
  void detach(FluidScheduler& scheduler);

  [[nodiscard]] int worker_count() const { return static_cast<int>(workers_.size()); }
  /// Settle points executed so far, and how many of them had 2+ components
  /// to solve (the ones where parallelism could help).
  [[nodiscard]] std::size_t settle_count() const { return settles_; }
  [[nodiscard]] std::size_t parallel_settle_count() const { return parallel_settles_; }
  [[nodiscard]] std::size_t solved_component_count() const { return solved_comps_; }
  [[nodiscard]] std::size_t max_batch_size() const { return max_batch_; }

 private:
  friend class FluidScheduler;

  struct TaskEntry {
    FluidScheduler* sched = nullptr;
    FluidScheduler::Component* comp = nullptr;
    std::uint32_t domain = 0;
    FluidScheduler::SolveResult result;
    std::exception_ptr error;
  };

  /// Called by an attached scheduler on every dirty mark; arms the kernel
  /// settle hook for the current instant.
  void notify_dirty(FluidScheduler& scheduler);
  /// The settle hook body: collect → parallel compute → serial commit.
  void settle();
  void run_compute(std::size_t task_index, std::size_t scratch_index);
  void worker_main(std::size_t worker_index);

  Simulation* sim_;
  std::uint64_t hook_id_ = 0;
  /// Attach-ordered; detach leaves a null hole so domain ids stay stable.
  std::vector<FluidScheduler*> attached_;

  // The task batch for the current settle. Published to workers under
  // `mutex_` by bumping `epoch_`; task indices are claimed under the same
  // mutex (the compute runs unlocked), and the `done_tasks_` count both
  // signals completion and gives the commit phase a happens-before edge
  // over every compute phase.
  std::vector<TaskEntry> tasks_;
  std::vector<FluidScheduler::SolveScratch> scratch_;  // workers + sim thread
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t task_count_ = 0;
  std::size_t next_task_ = 0;
  std::size_t done_tasks_ = 0;
  bool stop_ = false;

  std::size_t settles_ = 0;
  std::size_t parallel_settles_ = 0;
  std::size_t solved_comps_ = 0;
  std::size_t max_batch_ = 0;
};

}  // namespace nm::sim
