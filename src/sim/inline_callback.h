// Fixed-capacity, allocation-free callable for the event hot path.
//
// `std::function<void()>` type-erases through the heap as soon as a capture
// outgrows libstdc++'s 16-byte small-buffer (a shared_ptr plus one word
// already does), which put one allocation on the simulator's per-event
// path. InlineCallback stores the callable inline in a fixed buffer and
// refuses — at compile time — anything that would not fit, so posting a
// timer never allocates. It is move-only, which `std::function` is not:
// callbacks can own resources (e.g. a retiring Event kept alive until its
// waiters have resumed) and release them when the queue entry is executed
// *or* destroyed, so a simulation torn down with pending posts cannot leak.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nm::sim {

template <std::size_t Capacity>
class InlineCallback {
 public:
  InlineCallback() noexcept = default;

  template <typename F, typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InlineCallback> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    static_assert(sizeof(Fn) <= Capacity,
                  "callback capture exceeds the inline event budget; shrink the capture "
                  "(capture pointers, not objects) or raise the InlineCallback capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callback capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callbacks must be nothrow-movable (the queue relocates them)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = &kOpsFor<Fn>;
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs the callable into `dst` and destroys the source.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static Fn* as(void* p) noexcept {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static constexpr Ops kOpsFor{
      [](void* self) { (*as<Fn>(self))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn(std::move(*as<Fn>(src)));
        as<Fn>(src)->~Fn();
      },
      [](void* self) noexcept { as<Fn>(self)->~Fn(); },
  };

  void move_from(InlineCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

/// The simulator-wide event callback type. 48 bytes holds every capture in
/// the codebase (the largest is a shared_ptr + owner pointer + epoch) with
/// room to spare; growing a capture past it is a compile error, not a
/// silent return to heap allocation.
using EventCallback = InlineCallback<48>;

}  // namespace nm::sim
