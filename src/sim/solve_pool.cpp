#include "sim/solve_pool.h"

#include <algorithm>

#include "util/error.h"

namespace nm::sim {

SolvePool::SolvePool(Simulation& sim, int workers) : sim_(&sim) {
  NM_CHECK(workers >= 0, "negative SolvePool worker count");
  scratch_.resize(static_cast<std::size_t>(workers) + 1);  // + the sim thread
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
  hook_id_ = sim.add_settle_hook([this] { settle(); });
}

SolvePool::~SolvePool() {
  for (auto* sched : attached_) {
    if (sched != nullptr) {
      detach(*sched);
    }
  }
  sim_->remove_settle_hook(hook_id_);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

void SolvePool::attach(FluidScheduler& scheduler) {
  NM_CHECK(scheduler.pool_ == nullptr, "scheduler already attached to a pool");
  NM_CHECK(scheduler.sim_ == sim_, "scheduler runs on a different simulation");
  NM_CHECK(!scheduler.settle_pending_ && scheduler.dirty_comps_.empty(),
           "attach the pool before the scheduler has pending settles");
  scheduler.pool_ = this;
  scheduler.pool_dirty_ = false;
  scheduler.pool_domain_ = static_cast<std::uint32_t>(attached_.size());
  attached_.push_back(&scheduler);
}

void SolvePool::detach(FluidScheduler& scheduler) {
  NM_CHECK(scheduler.pool_ == this, "scheduler not attached to this pool");
  attached_[scheduler.pool_domain_] = nullptr;
  scheduler.pool_ = nullptr;
  scheduler.pool_dirty_ = false;
  // Hand any still-unsettled components back to the legacy zero-delay
  // settle so nothing is stranded mid-instant.
  if (!scheduler.dirty_comps_.empty() && !scheduler.settle_pending_) {
    scheduler.settle_pending_ = true;
    sim_->post(Duration::zero(), [sched = &scheduler] {
      sched->settle_pending_ = false;
      sched->settle_dirty();
    });
  }
}

bool SolvePool::any_dirty() const {
  for (const auto* sched : attached_) {
    if (sched != nullptr && sched->pool_dirty_) {
      return true;
    }
  }
  return false;
}

void SolvePool::notify_dirty(FluidScheduler& scheduler) {
  scheduler.pool_dirty_ = true;
  sim_->request_settle();
}

void SolvePool::settle() {
  // Phase 0 (serial): collect the batch in canonical order. Schedulers are
  // walked in attach (= domain id) order and their dirty lists re-checked
  // against the authoritative per-component flag (ensure_settled may have
  // already solved some serially; merges retire components). Component ids
  // are unique within a dirty list (the flag dedups marks) and ascending
  // within it is not guaranteed, so sort below.
  tasks_.clear();
  for (std::uint32_t domain = 0; domain < attached_.size(); ++domain) {
    FluidScheduler* sched = attached_[domain];
    if (sched == nullptr || !sched->pool_dirty_) {
      continue;
    }
    sched->pool_dirty_ = false;
    for (const auto id : sched->dirty_comps_) {
      auto* comp = id < sched->comps_.size() ? sched->comps_[id].get() : nullptr;
      if (comp != nullptr && comp->dirty) {
        TaskEntry entry;
        entry.sched = sched;
        entry.comp = comp;
        entry.domain = domain;
        tasks_.push_back(std::move(entry));
      }
    }
    sched->dirty_comps_.clear();
  }
  if (tasks_.empty()) {
    return;
  }
  const auto canonical = [](const TaskEntry& a, const TaskEntry& b) {
    return a.domain != b.domain ? a.domain < b.domain : a.comp->id < b.comp->id;
  };
  // Dirty lists are appended in mark order, which is ascending in the
  // common single-instant case — checking beats unconditionally sorting.
  if (!std::is_sorted(tasks_.begin(), tasks_.end(), canonical)) {
    std::sort(tasks_.begin(), tasks_.end(), canonical);
  }

  ++settles_;
  solved_comps_ += tasks_.size();
  max_batch_ = std::max(max_batch_, tasks_.size());
  if (tasks_.size() > 1 && !workers_.empty()) {
    ++parallel_settles_;
  }

  // Phase 1: compute. Round 0 solves every collected component; when a
  // SettleExchange with live boundary flows is registered, further rounds
  // alternate a serial exchange (publish boundary rates, refresh ghost
  // caps) with a recompute of whatever the exchange moved, until the
  // coupled rates reach a fixed point. Nothing is committed until every
  // round is done, so the event queue sees no posts mid-iteration.
  pending_.resize(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    pending_[i] = i;
  }
  if (!exchange_active()) {
    compute_pending();
  } else {
    std::size_t rounds = 0;
    while (true) {
      compute_pending();
      ++rounds;
      // Bank completions: a later recompute of the same component clears
      // result.finished, so move them aside in canonical round order.
      for (const auto i : pending_) {
        auto& task = tasks_[i];
        for (auto& flow : task.result.finished) {
          task.finished_acc.push_back(std::move(flow));
        }
        task.result.finished.clear();
      }
      // The cap breaks *after* a full compute: every component the last
      // exchange re-dirtied has been re-solved (its dirty flag cleared),
      // so the commit below strands nothing.
      if (rounds >= kMaxExchangeRounds) {
        ++unconverged_exchanges_;
        break;
      }
      dirtied_.clear();
      exchange_->exchange(dirtied_);
      if (dirtied_.empty()) {
        break;  // fixed point
      }
      // Map the re-dirtied components onto tasks, appending entries for
      // components first touched by the exchange (e.g. a ghost's foreign
      // component that was clean when the batch was collected).
      pending_.clear();
      for (const auto& [sched, comp_id] : dirtied_) {
        std::size_t idx = tasks_.size();
        for (std::size_t t = 0; t < tasks_.size(); ++t) {
          if (tasks_[t].sched == sched && tasks_[t].comp->id == comp_id) {
            idx = t;
            break;
          }
        }
        if (idx == tasks_.size()) {
          auto* comp = comp_id < sched->comps_.size() ? sched->comps_[comp_id].get() : nullptr;
          NM_CHECK(comp != nullptr, "exchange dirtied a retired component");
          TaskEntry entry;
          entry.sched = sched;
          entry.comp = comp;
          entry.domain = sched->pool_domain_;
          tasks_.push_back(std::move(entry));
        }
        if (std::find(pending_.begin(), pending_.end(), idx) == pending_.end()) {
          pending_.push_back(idx);
        }
      }
      const auto pending_canonical = [this](std::size_t a, std::size_t b) {
        const TaskEntry& ta = tasks_[a];
        const TaskEntry& tb = tasks_[b];
        return ta.domain != tb.domain ? ta.domain < tb.domain : ta.comp->id < tb.comp->id;
      };
      if (!std::is_sorted(pending_.begin(), pending_.end(), pending_canonical)) {
        std::sort(pending_.begin(), pending_.end(), pending_canonical);
      }
      solved_comps_ += pending_.size();
    }
    exchange_rounds_ += rounds;
    last_settle_rounds_ = rounds;
    max_settle_rounds_ = std::max(max_settle_rounds_, rounds);
    // Exchange-appended tasks arrived out of canonical order; restore it
    // for the commit, then hand each task its banked completions.
    if (!std::is_sorted(tasks_.begin(), tasks_.end(), canonical)) {
      std::sort(tasks_.begin(), tasks_.end(), canonical);
    }
    for (auto& task : tasks_) {
      task.result.finished = std::move(task.finished_acc);
      task.finished_acc.clear();
    }
  }

  // Phase 2 (serial): commit in canonical order. This is the only phase
  // that posts timers or fires events, so the sequence numbers drawn from
  // the shared queue are independent of how phase 1 interleaved (and, in
  // exchange mode, of how many rounds it took to converge).
  for (auto& task : tasks_) {
    task.sched->commit_component(*task.comp, task.result);
  }
  // Per-scheduler epilogue (epoch rebuilds), still in domain order.
  FluidScheduler* last = nullptr;
  for (auto& task : tasks_) {
    if (task.sched != last) {
      last = task.sched;
      task.sched->maybe_rebuild();
    }
  }
  tasks_.clear();
}

void SolvePool::compute_pending() {
  // Single-task rounds (the common case for small episodes) and 0-worker
  // pools skip the handoff entirely; otherwise the simulation thread
  // steals alongside the workers (scratch slot workers_.size() is reserved
  // for it). Threads claim kClaimChunk pending indices per mutex
  // round-trip — the compute itself runs unlocked, and the lock gives
  // every thread a consistent view of the round (no stale-epoch stealing)
  // plus the happens-before edge the commit phase needs.
  if (pending_.size() == 1 || workers_.empty()) {
    for (const auto idx : pending_) {
      run_compute(idx, workers_.size());
    }
  } else {
    std::unique_lock<std::mutex> lk(mutex_);
    round_count_ = pending_.size();
    next_claim_ = 0;
    done_tasks_ = 0;
    ++epoch_;
    work_cv_.notify_all();
    while (next_claim_ < round_count_) {
      const std::size_t begin = next_claim_;
      const std::size_t end = std::min(begin + kClaimChunk, round_count_);
      next_claim_ = end;
      lk.unlock();
      for (std::size_t i = begin; i < end; ++i) {
        run_compute(pending_[i], workers_.size());
      }
      lk.lock();
      done_tasks_ += end - begin;
    }
    done_cv_.wait(lk, [this] { return done_tasks_ == round_count_; });
    round_count_ = 0;
    next_claim_ = 0;
  }
  // Surface the first compute error in canonical order (nothing has been
  // committed yet, so the failure point is deterministic).
  for (const auto idx : pending_) {
    if (tasks_[idx].error) {
      std::rethrow_exception(tasks_[idx].error);
    }
  }
}

void SolvePool::run_compute(std::size_t task_index, std::size_t scratch_index) {
  TaskEntry& task = tasks_[task_index];
  try {
    task.sched->compute_component(*task.comp, scratch_[scratch_index], task.result);
  } catch (...) {
    task.error = std::current_exception();
  }
}

void SolvePool::worker_main(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) {
      return;
    }
    seen_epoch = epoch_;
    while (next_claim_ < round_count_) {
      const std::size_t begin = next_claim_;
      const std::size_t end = std::min(begin + kClaimChunk, round_count_);
      next_claim_ = end;
      lk.unlock();
      for (std::size_t i = begin; i < end; ++i) {
        run_compute(pending_[i], worker_index);
      }
      lk.lock();
      done_tasks_ += end - begin;
      if (done_tasks_ == round_count_) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace nm::sim
