#include "sim/solve_pool.h"

#include <algorithm>

#include "util/error.h"

namespace nm::sim {

SolvePool::SolvePool(Simulation& sim, int workers) : sim_(&sim) {
  NM_CHECK(workers >= 1, "SolvePool needs at least one worker");
  scratch_.resize(static_cast<std::size_t>(workers) + 1);  // + the sim thread
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
  hook_id_ = sim.add_settle_hook([this] { settle(); });
}

SolvePool::~SolvePool() {
  for (auto* sched : attached_) {
    if (sched != nullptr) {
      detach(*sched);
    }
  }
  sim_->remove_settle_hook(hook_id_);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

void SolvePool::attach(FluidScheduler& scheduler) {
  NM_CHECK(scheduler.pool_ == nullptr, "scheduler already attached to a pool");
  NM_CHECK(scheduler.sim_ == sim_, "scheduler runs on a different simulation");
  NM_CHECK(!scheduler.settle_pending_ && scheduler.dirty_comps_.empty(),
           "attach the pool before the scheduler has pending settles");
  scheduler.pool_ = this;
  scheduler.pool_dirty_ = false;
  scheduler.pool_domain_ = static_cast<std::uint32_t>(attached_.size());
  attached_.push_back(&scheduler);
}

void SolvePool::detach(FluidScheduler& scheduler) {
  NM_CHECK(scheduler.pool_ == this, "scheduler not attached to this pool");
  attached_[scheduler.pool_domain_] = nullptr;
  scheduler.pool_ = nullptr;
  scheduler.pool_dirty_ = false;
  // Hand any still-unsettled components back to the legacy zero-delay
  // settle so nothing is stranded mid-instant.
  if (!scheduler.dirty_comps_.empty() && !scheduler.settle_pending_) {
    scheduler.settle_pending_ = true;
    sim_->post(Duration::zero(), [sched = &scheduler] {
      sched->settle_pending_ = false;
      sched->settle_dirty();
    });
  }
}

void SolvePool::notify_dirty(FluidScheduler& scheduler) {
  scheduler.pool_dirty_ = true;
  sim_->request_settle();
}

void SolvePool::settle() {
  // Phase 0 (serial): collect the batch in canonical order. Schedulers are
  // walked in attach (= domain id) order and their dirty lists re-checked
  // against the authoritative per-component flag (ensure_settled may have
  // already solved some serially; merges retire components). Component ids
  // are unique within a dirty list (the flag dedups marks) and ascending
  // within it is not guaranteed, so sort below.
  tasks_.clear();
  for (std::uint32_t domain = 0; domain < attached_.size(); ++domain) {
    FluidScheduler* sched = attached_[domain];
    if (sched == nullptr || !sched->pool_dirty_) {
      continue;
    }
    sched->pool_dirty_ = false;
    for (const auto id : sched->dirty_comps_) {
      auto* comp = id < sched->comps_.size() ? sched->comps_[id].get() : nullptr;
      if (comp != nullptr && comp->dirty) {
        TaskEntry entry;
        entry.sched = sched;
        entry.comp = comp;
        entry.domain = domain;
        tasks_.push_back(std::move(entry));
      }
    }
    sched->dirty_comps_.clear();
  }
  if (tasks_.empty()) {
    return;
  }
  std::sort(tasks_.begin(), tasks_.end(), [](const TaskEntry& a, const TaskEntry& b) {
    return a.domain != b.domain ? a.domain < b.domain : a.comp->id < b.comp->id;
  });

  ++settles_;
  solved_comps_ += tasks_.size();
  max_batch_ = std::max(max_batch_, tasks_.size());

  // Phase 1: compute. Single-task batches skip the handoff entirely — the
  // common case for small episodes stays free of synchronization. For
  // larger batches the simulation thread steals alongside the workers
  // (scratch slot workers_.size() is reserved for it); indices are claimed
  // under the mutex — batches are at most a few dozen components and the
  // compute itself runs unlocked, so claim contention is noise, and the
  // lock gives every thread a consistent view of the batch (no stale-epoch
  // stealing) plus the happens-before edge the commit phase needs.
  if (tasks_.size() == 1) {
    run_compute(0, workers_.size());
  } else {
    ++parallel_settles_;
    std::unique_lock<std::mutex> lk(mutex_);
    task_count_ = tasks_.size();
    next_task_ = 0;
    done_tasks_ = 0;
    ++epoch_;
    work_cv_.notify_all();
    while (next_task_ < task_count_) {
      const std::size_t i = next_task_++;
      lk.unlock();
      run_compute(i, workers_.size());
      lk.lock();
      ++done_tasks_;
    }
    done_cv_.wait(lk, [this] { return done_tasks_ == task_count_; });
    task_count_ = 0;
    next_task_ = 0;
  }

  // Phase 2 (serial): commit in canonical order. This is the only phase
  // that posts timers or fires events, so the sequence numbers drawn from
  // the shared queue are independent of how phase 1 interleaved.
  for (auto& task : tasks_) {
    if (task.error) {
      std::rethrow_exception(task.error);
    }
    task.sched->commit_component(*task.comp, task.result);
  }
  // Per-scheduler epilogue (epoch rebuilds), still in domain order.
  FluidScheduler* last = nullptr;
  for (auto& task : tasks_) {
    if (task.sched != last) {
      last = task.sched;
      task.sched->maybe_rebuild();
    }
  }
  tasks_.clear();
}

void SolvePool::run_compute(std::size_t task_index, std::size_t scratch_index) {
  TaskEntry& task = tasks_[task_index];
  try {
    task.sched->compute_component(*task.comp, scratch_[scratch_index], task.result);
  } catch (...) {
    task.error = std::current_exception();
  }
}

void SolvePool::worker_main(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) {
      return;
    }
    seen_epoch = epoch_;
    while (next_task_ < task_count_) {
      const std::size_t i = next_task_++;
      lk.unlock();
      run_compute(i, worker_index);
      lk.lock();
      ++done_tasks_;
      if (done_tasks_ == task_count_) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace nm::sim
