// FluidNet: the domain-aware flow façade. It owns a set of FluidDomains
// (topology shards, each an independently-solved FluidScheduler on the
// shared clock) and routes every FlowSpec to the domain owning its
// resources. A spec whose resources span domains becomes a *boundary
// flow*: the flow itself lives in its home domain, and each foreign domain
// hosts a ghost flow mirroring the boundary flow's demand onto the foreign
// resources it crosses.
//
// The coupling runs at settle points, driven by the SolvePool (see
// solve_pool.h): after each parallel compute round the net publishes every
// boundary flow's freshly-solved home rate into its ghosts' rate caps, and
// folds the ghosts' *capacity offers* — the rate each foreign resource
// could grant the ghost, read off the last solve's binding level and free
// capacity — back into the home flow's boundary cap. Components whose
// inputs moved are re-solved, and the loop repeats until a fixed point (at
// which the cross-domain rates equal the merged single-domain max-min
// solution; see DESIGN.md §6). The exchange is serial and the commit order
// canonical, so timelines stay bit-identical at every worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/fluid.h"
#include "sim/solve_pool.h"

namespace nm::sim {

class FluidNet final : public FlowRouter, private SettleExchange {
 public:
  /// A net over `sim` whose SolvePool (created lazily: only when `workers`
  /// > 0 or a second domain is added) runs `workers` compute threads. A
  /// single-domain net with no workers never creates a pool, so it keeps
  /// the legacy zero-delay settle path exactly.
  explicit FluidNet(Simulation& sim, int workers = 0);
  ~FluidNet() override;
  FluidNet(const FluidNet&) = delete;
  FluidNet& operator=(const FluidNet&) = delete;

  /// Adds a topology shard. Add every domain before starting flows (pool
  /// attachment requires schedulers with no pending settles).
  FluidDomain& add_domain(std::string name);
  [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }
  [[nodiscard]] FluidDomain& domain(std::size_t index);
  /// The domain owning `res`, or nullptr when the resource is unregistered
  /// or owned by a scheduler outside this net.
  [[nodiscard]] FluidDomain* domain_of(const FluidResource& res);

  [[nodiscard]] Simulation& simulation() override { return *sim_; }

  /// Routes `spec` to the domain owning its resources (unowned resources
  /// register into the home domain, first-touch). A spec spanning domains
  /// starts a boundary flow: the returned handle is the home flow — its
  /// rate/remaining/completion behave exactly like a local flow's, while
  /// ghost flows mirror its consumption into the foreign domains.
  FlowPtr start(FlowSpec spec) override;

  /// The pool driving parallel solves and the boundary exchange; nullptr
  /// for a single-domain, zero-worker net.
  [[nodiscard]] SolvePool* pool() { return pool_.get(); }

  [[nodiscard]] std::size_t boundary_flow_count() const { return boundary_.size(); }
  [[nodiscard]] std::size_t exchange_round_count() const {
    return pool_ != nullptr ? pool_->exchange_round_count() : 0;
  }
  [[nodiscard]] std::size_t unconverged_exchange_count() const {
    return pool_ != nullptr ? pool_->unconverged_exchange_count() : 0;
  }
  /// Exchange rounds the most recent coupled settle needed, and the worst
  /// any settle has needed — the regression gate for the round-cap safety
  /// valve (a healthy scenario stays far below SolvePool's cap).
  [[nodiscard]] std::size_t last_settle_exchange_rounds() const {
    return pool_ != nullptr ? pool_->last_settle_exchange_rounds() : 0;
  }
  [[nodiscard]] std::size_t max_exchange_rounds_per_settle() const {
    return pool_ != nullptr ? pool_->max_exchange_rounds_per_settle() : 0;
  }
  /// Cap publishes the exchange stored but did not re-solve for, because
  /// the cap stayed slack (non-binding) on both sides of the move. Each
  /// skip is a component re-solve (and possibly a whole extra exchange
  /// round) avoided; deep domain chains rely on this to keep settles from
  /// rippling caps across domains the change cannot affect.
  [[nodiscard]] std::size_t exchange_skip_count() const { return exchange_skips_; }

 private:
  /// One registered boundary flow: the home flow plus one ghost per
  /// foreign domain it crosses.
  struct GhostLink {
    FluidScheduler* sched = nullptr;
    FlowPtr ghost;
  };
  struct BoundaryFlow {
    FluidScheduler* home_sched = nullptr;
    FlowPtr home;
    std::vector<GhostLink> ghosts;
  };

  // SettleExchange:
  [[nodiscard]] bool active() const override { return !boundary_.empty(); }
  void exchange(std::vector<std::pair<FluidScheduler*, std::uint32_t>>& dirtied) override;

  /// Creates the pool and attaches every existing domain.
  void ensure_pool();
  /// Serially removes a finished boundary flow's ghost from its foreign
  /// component (preserving flow order) and retires it without firing its
  /// completion event.
  void retire_ghost(FluidScheduler& sched, Flow& ghost,
                    std::vector<std::pair<FluidScheduler*, std::uint32_t>>& dirtied);
  static void mark(FluidScheduler* sched, const Flow& flow,
                   std::vector<std::pair<FluidScheduler*, std::uint32_t>>& dirtied);

  Simulation* sim_;
  int workers_;
  std::vector<std::unique_ptr<FluidDomain>> domains_;
  /// Registration order is the exchange's iteration order (deterministic,
  /// independent of worker count).
  std::vector<BoundaryFlow> boundary_;
  std::size_t exchange_skips_ = 0;
  /// Declared last: destroyed first, detaching every scheduler before any
  /// domain (and the flows it still tracks) goes away.
  std::unique_ptr<SolvePool> pool_;
};

}  // namespace nm::sim
