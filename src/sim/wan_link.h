// A calibrated inter-datacenter link: one boundary resource per side, in
// two different FluidNet domains, whose published ghost caps follow a
// latency/bandwidth/loss model instead of the plain fair-share offer.
//
// The link is a shared medium: a cross-site flow routed over both endpoints
// always has exactly one endpoint foreign to its home domain, so the
// FluidNet exchange consults the link's CapPolicy for every such flow —
// regardless of direction — and folds
//
//     min(fair_offer, effective_rate() / weight)
//
// into the flow's boundary cap. `effective_rate()` is the line rate scaled
// by the current congestion factor, ceilinged by the Mathis TCP throughput
// model when the link has both RTT and loss:
//
//     mathis = MSS / RTT * sqrt(3/2) / sqrt(loss)        [bytes/s]
//
// (Mathis, Semke, Mahdavi, Ott: "The Macroscopic Behavior of the TCP
// Congestion Avoidance Algorithm", CCR 1997.) With zero loss or zero RTT
// the ceiling is +inf and the link degrades to a plain fair-share
// boundary pair — the golden-reference equivalence tests depend on that.
//
// A WanLinkConfig::schedule describes time-varying congestion: each phase
// is posted as a simulation event at construction, and applying a phase
// republishes both endpoint capacities through set_capacity(), which marks
// the crossing components dirty so the settle's exchange re-folds every
// boundary cap against the new factor/RTT before any simulated time
// passes. Phases fire at fixed (time, sequence) slots in the event queue,
// so determinism across solve-worker counts is untouched (DESIGN.md §7).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/fluid.h"
#include "sim/simulation.h"
#include "util/units.h"

namespace nm::sim {

/// One step of a WAN link's congestion schedule.
struct WanLinkPhase {
  /// When the phase takes effect, relative to WanLink construction.
  Duration at = Duration::zero();
  /// Fraction of the line rate available from this phase on. 0 partitions
  /// the link (all crossing flows freeze at rate 0 until a later phase
  /// heals it).
  double capacity_factor = 1.0;
  /// RTT in effect from this phase on; zero keeps the previous RTT.
  Duration rtt = Duration::zero();
};

struct WanLinkConfig {
  Bandwidth line_rate = Bandwidth::gbps(1);
  /// Round-trip time. Feeds the Mathis ceiling and the one-way latency a
  /// fabric adds to cross-site transfers; zero disables the ceiling.
  Duration rtt = Duration::zero();
  /// Packet-loss probability in [0, 1); zero disables the Mathis ceiling.
  double loss = 0.0;
  /// Effective segment size for the Mathis ceiling, bytes. Bulk senders on
  /// calibrated WAN paths run segmentation offload, so the loss-recovery
  /// unit is a ~64 KiB burst, not one 1460-byte wire MSS; calibrate this
  /// (together with `loss`) against a measured path.
  double mss_bytes = 65536.0;
  /// Time-varying congestion, ascending by `at`.
  std::vector<WanLinkPhase> schedule;
};

class WanLink final : public CapPolicy {
 public:
  /// Registers one endpoint resource in each scheduler (they must belong to
  /// different FluidNet domains) and attaches itself as both endpoints'
  /// CapPolicy. Schedule phases are posted on `sim` immediately.
  WanLink(Simulation& sim, FluidScheduler& side_a, FluidScheduler& side_b, std::string name,
          WanLinkConfig config = {});
  ~WanLink() override;
  WanLink(const WanLink&) = delete;
  WanLink& operator=(const WanLink&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const WanLinkConfig& config() const { return config_; }
  /// The two boundary resources. Cross-site flows take a share on each
  /// (wire-rate units, weight 1 for plain byte streams).
  [[nodiscard]] FluidResource& a() { return a_; }
  [[nodiscard]] FluidResource& b() { return b_; }

  /// Congestion state as of the most recently applied schedule phase.
  [[nodiscard]] double current_factor() const { return factor_; }
  [[nodiscard]] Duration current_rtt() const { return rtt_; }
  /// Propagation delay a one-way crossing adds (RTT / 2).
  [[nodiscard]] Duration one_way_latency() const { return rtt_ / 2.0; }

  /// Mathis TCP throughput ceiling for the current RTT/loss, bytes/s
  /// (+inf when either is zero).
  [[nodiscard]] double mathis_rate() const;
  /// What the link can actually carry now: line rate × congestion factor,
  /// min the Mathis ceiling. This is the rate migration estimators should
  /// plan with (Fabric::path_rate reads it).
  [[nodiscard]] double effective_rate() const;
  /// The rate the link would carry at congestion factor 1 (line rate min
  /// Mathis at the current RTT). Planners snapshot this as the edge's
  /// nominal capacity; drivers read effective_rate() live at grant time.
  [[nodiscard]] double nominal_rate() const;
  /// True when the current factor partitions the link.
  [[nodiscard]] bool partitioned() const { return factor_ <= 0.0; }

  /// Applies a congestion change immediately — same semantics as a
  /// schedule phase firing now (failure injectors partition with factor 0
  /// and later heal with factor 1; `rtt` zero keeps the current RTT).
  /// Call from task context only: determinism across worker counts needs
  /// the injection to sit at a fixed (time, sequence) event-queue slot.
  void inject_phase(double capacity_factor, Duration rtt = Duration::zero());

  // CapPolicy: fold the model into the fair-share offer the endpoint would
  // publish. Called from the serial exchange phase only.
  [[nodiscard]] double offer(const FluidResource& res, double weight, double fair_offer,
                             TimePoint now) override;

 private:
  void apply_phase(std::size_t index);
  void apply(double capacity_factor, Duration rtt);

  Simulation* sim_;
  std::string name_;
  WanLinkConfig config_;
  double factor_ = 1.0;
  Duration rtt_;
  /// Keeps posted schedule callbacks from touching a destroyed link (the
  /// simulation queue has no cancellation; callbacks hold a weak_ptr).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  FluidResource a_;
  FluidResource b_;
};

}  // namespace nm::sim
