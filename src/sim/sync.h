// Synchronization primitives for simulation tasks: Gate (level-triggered),
// Channel<T> (unbounded mailbox), Semaphore, and Mutex. All wakeups are
// scheduled through the event queue (never resumed inline), which keeps
// execution order deterministic.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"
#include "util/error.h"

namespace nm::sim {

/// A level-triggered gate: tasks awaiting `opened()` pass through while the
/// gate is open and park while it is closed. Models "the VM is paused".
class Gate {
 public:
  explicit Gate(Simulation& sim, bool initially_open = true)
      : sim_(&sim), open_(initially_open) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  [[nodiscard]] bool is_open() const { return open_; }

  void open() {
    if (open_) {
      return;
    }
    open_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_->post_resume(Duration::zero(), h);
    }
  }

  void close() { open_ = false; }

  /// Awaitable: passes immediately when open, parks until open() otherwise.
  [[nodiscard]] auto opened() {
    struct Awaiter {
      Gate& gate;
      [[nodiscard]] bool await_ready() const noexcept { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) { gate.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation* sim_;
  bool open_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel. Multiple receivers are served in arrival order.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    if (!receivers_.empty()) {
      RecvAwaiter* recv_waiter = receivers_.front();
      receivers_.pop_front();
      recv_waiter->value = std::move(value);
      sim_->post_resume(Duration::zero(), recv_waiter->handle);
    } else {
      buffer_.push_back(std::move(value));
    }
  }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] bool empty() const { return buffer_.empty(); }

  /// Awaitable receive.
  [[nodiscard]] auto recv() { return RecvAwaiter{this, std::nullopt, nullptr}; }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<T> try_recv() {
    if (buffer_.empty()) {
      return std::nullopt;
    }
    T v = std::move(buffer_.front());
    buffer_.pop_front();
    return v;
  }

 private:
  struct RecvAwaiter {
    Channel* ch;
    std::optional<T> value;
    std::coroutine_handle<> handle;

    [[nodiscard]] bool await_ready() {
      if (!ch->buffer_.empty()) {
        value = std::move(ch->buffer_.front());
        ch->buffer_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch->receivers_.push_back(this);
    }
    [[nodiscard]] T await_resume() {
      NM_CHECK(value.has_value(), "channel resumed without a value");
      return std::move(*value);
    }
  };

  Simulation* sim_;
  std::deque<T> buffer_;
  // Suspended recv() awaiters; they live in coroutine frames, which stay
  // alive while suspended.
  std::deque<RecvAwaiter*> receivers_;
};

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::size_t initial) : sim_(&sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::size_t available() const { return count_; }

  void release(std::size_t n = 1) {
    count_ += n;
    while (count_ > 0 && !waiters_.empty()) {
      --count_;
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->post_resume(Duration::zero(), h);
    }
  }

  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      [[nodiscard]] bool await_ready() const noexcept {
        if (sem.count_ > 0 && sem.waiters_.empty()) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation* sim_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Scoped-lock style mutex built on Semaphore.
class Mutex {
 public:
  explicit Mutex(Simulation& sim) : sem_(sim, 1) {}

  [[nodiscard]] auto lock() { return sem_.acquire(); }
  void unlock() { sem_.release(); }

 private:
  Semaphore sem_;
};

/// Coroutine that joins every task in `refs`.
inline Task join_all(std::vector<TaskRef> refs) {
  for (auto& ref : refs) {
    if (!ref.done()) {
      co_await ref.completion().wait();
    }
  }
}

/// A cyclic counting barrier for a fixed party count. Reusable: the cycle
/// resets once everyone has arrived.
class Barrier {
 public:
  Barrier(Simulation& sim, std::size_t parties)
      : sim_(&sim), parties_(parties), cycle_(std::make_unique<Event>(sim)) {
    NM_CHECK(parties > 0, "barrier needs at least one party");
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  [[nodiscard]] std::size_t parties() const { return parties_; }
  [[nodiscard]] std::size_t arrived() const { return arrived_; }

  [[nodiscard]] Task arrive_and_wait() {
    ++arrived_;
    if (arrived_ >= parties_) {
      arrived_ = 0;
      auto old = std::move(cycle_);
      cycle_ = std::make_unique<Event>(*sim_);
      old->set();
      // Keep the fired event alive until its waiters have been resumed;
      // the callback owns it, so teardown with the post still pending
      // frees it instead of leaking.
      sim_->post(Duration::zero(), [owned = std::move(old)]() mutable { owned.reset(); });
      co_return;
    }
    Event& cycle = *cycle_;
    co_await cycle.wait();
  }

 private:
  Simulation* sim_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::unique_ptr<Event> cycle_;
};

/// Condition-variable-style notifier: waiters park on the current cycle;
/// notify_all() wakes every current waiter (and only them).
class Notifier {
 public:
  explicit Notifier(Simulation& sim)
      : sim_(&sim), cycle_(std::make_unique<Event>(sim)) {}
  Notifier(const Notifier&) = delete;
  Notifier& operator=(const Notifier&) = delete;

  [[nodiscard]] Task wait() {
    Event& cycle = *cycle_;
    co_await cycle.wait();
  }

  void notify_all() {
    auto old = std::move(cycle_);
    cycle_ = std::make_unique<Event>(*sim_);
    old->set();
    // As in Barrier: the post owns the retired cycle, so it is released
    // whether the callback runs or the simulation is torn down first.
    sim_->post(Duration::zero(), [owned = std::move(old)]() mutable { owned.reset(); });
  }

 private:
  Simulation* sim_;
  std::unique_ptr<Event> cycle_;
};

}  // namespace nm::sim
