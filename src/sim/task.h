// Coroutine task type for the discrete-event simulator. Every modelled
// activity (an MPI rank, a vCPU, a migration worker, a SymVirt agent) is a
// `Task` coroutine. Tasks are lazily started:
//   - `co_await child_task()` runs the child to completion as a structured
//     sub-activity of the parent (exceptions propagate to the parent), or
//   - `Simulation::spawn(std::move(task))` runs it as a detached activity
//     owned by the simulation (join via the returned TaskRef).
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

namespace nm::sim {

class Simulation;

class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept;
    void await_resume() const noexcept {}
  };

  struct promise_type {
    /// Parent coroutine awaiting this task, if any.
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    /// Set when the task was detached via Simulation::spawn.
    Simulation* detached_owner = nullptr;
    std::uint64_t detach_id = 0;

    Task get_return_object() noexcept { return Task{Handle::from_promise(*this)}; }
    [[nodiscard]] std::suspend_always initial_suspend() const noexcept { return {}; }
    [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Awaiting a task starts it immediately (symmetric transfer) and resumes
  /// the parent when it finishes; a child exception rethrows in the parent.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) const noexcept {
        h.promise().continuation = parent;
        return h;  // start the child now
      }
      void await_resume() const {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
      }
    };
    return Awaiter{h_};
  }

  /// Transfers ownership of the coroutine handle (used by Simulation::spawn).
  [[nodiscard]] Handle release() noexcept { return std::exchange(h_, {}); }

 private:
  explicit Task(Handle h) noexcept : h_(h) {}

  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  Handle h_{};
};

}  // namespace nm::sim
