#include "sim/fluid.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iterator>
#include <sstream>
#include <utility>

#include "sim/solve_pool.h"

namespace nm::sim {

namespace {
// Work below this is treated as complete (work units are bytes or
// core-seconds, so 1e-6 is far below anything observable).
constexpr double kEpsilon = 1e-6;
}  // namespace

// --- FluidResource ---------------------------------------------------------

FluidResource::FluidResource(FluidScheduler& scheduler, std::string name, double capacity)
    : FluidResource(std::move(name), capacity) {
  scheduler.register_resource(*this);
}

FluidResource::~FluidResource() {
  if (scheduler_ != nullptr) {
    scheduler_->unregister_resource(*this);
  }
}

void FluidResource::set_capacity(double capacity) {
  NM_CHECK(capacity >= 0.0, "negative capacity for " << name_);
  capacity_ = capacity;
  if (scheduler_ != nullptr && slot_ != kNoSlot) {
    if (auto* comp = scheduler_->component_of_slot(slot_)) {
      scheduler_->mark_dirty(*comp);
    }
  }
}

double FluidResource::consumed() const {
  // Pure read: rates are piecewise constant between solves, so the exact
  // integral is the solve-time prefix plus a linear extrapolation. No
  // component is integrated or settled — readers cannot perturb the
  // simulation, and idle resources cost nothing.
  if (scheduler_ == nullptr || consume_rate_ == 0.0) {
    return consumed_;
  }
  const Duration elapsed = scheduler_->simulation().now() - rate_since_;
  return consumed_ + consume_rate_ * elapsed.to_seconds();
}

double FluidResource::utilization_over(double consumed_before, Duration window) const {
  const double window_s = window.to_seconds();
  if (window_s <= 0.0 || capacity_ <= 0.0) {
    return 0.0;
  }
  return (consumed() - consumed_before) / (capacity_ * window_s);
}

// --- Flow ------------------------------------------------------------------

bool Flow::finished() const {
  if (!finished_ && scheduler_ != nullptr) {
    scheduler_->ensure_settled(*this);
  }
  return finished_;
}

double Flow::remaining() const {
  if (!finished_ && scheduler_ != nullptr) {
    scheduler_->ensure_settled(*this);
  }
  return remaining_;
}

double Flow::current_rate() const {
  if (!finished_ && scheduler_ != nullptr) {
    scheduler_->ensure_settled(*this);
  }
  return rate_;
}

void Flow::set_max_rate(double max_rate) {
  NM_CHECK(max_rate >= 0.0, "negative flow rate cap");
  if (suspended_) {
    // Applied on resume(); the flow stays paused in the meantime.
    saved_max_rate_ = max_rate;
    return;
  }
  max_rate_ = max_rate;
  if (scheduler_ != nullptr && !finished_) {
    if (auto* comp = scheduler_->component_of_flow(*this)) {
      scheduler_->mark_dirty(*comp);
    }
  }
}

void Flow::suspend() {
  if (suspended_ || finished_) {
    return;
  }
  saved_max_rate_ = max_rate_;
  suspended_ = true;
  max_rate_ = 0.0;
  if (scheduler_ != nullptr) {
    if (auto* comp = scheduler_->component_of_flow(*this)) {
      scheduler_->mark_dirty(*comp);
    }
  }
}

void Flow::resume() {
  if (!suspended_) {
    return;
  }
  suspended_ = false;
  max_rate_ = saved_max_rate_;
  if (scheduler_ != nullptr && !finished_) {
    if (auto* comp = scheduler_->component_of_flow(*this)) {
      scheduler_->mark_dirty(*comp);
    }
  }
}

// --- FluidScheduler: lifecycle and registry --------------------------------

FluidScheduler::~FluidScheduler() {
  if (pool_ != nullptr) {
    pool_->detach(*this);
  }
  for (auto* res : res_slots_) {
    if (res != nullptr) {
      // Fold the pending constant-rate window into the prefix while the
      // clock is still reachable; afterwards the resource reads flat.
      res->consumed_ = res->consumed();
      res->consume_rate_ = 0.0;
      res->scheduler_ = nullptr;
      res->slot_ = FluidResource::kNoSlot;
    }
  }
  for (auto& flow : flows_) {
    flow->scheduler_ = nullptr;
    flow->comp_ = kNone;
  }
}

void FluidScheduler::register_resource(FluidResource& res) {
  NM_CHECK(res.scheduler_ == nullptr || res.scheduler_ == this,
           "resource " << res.name_ << " belongs to another scheduler");
  if (res.slot_ != FluidResource::kNoSlot) {
    return;
  }
  res.scheduler_ = this;
  if (!free_res_slots_.empty()) {
    res.slot_ = free_res_slots_.back();
    free_res_slots_.pop_back();
    res_slots_[res.slot_] = &res;
  } else {
    res.slot_ = static_cast<std::uint32_t>(res_slots_.size());
    res_slots_.push_back(&res);
    slot_comp_.push_back(kNone);
  }
}

void FluidScheduler::unregister_resource(FluidResource& res) {
  const auto slot = res.slot_;
  res.consumed_ = res.consumed();  // fold before the clock becomes unreachable
  res.consume_rate_ = 0.0;
  if (slot == FluidResource::kNoSlot) {
    res.scheduler_ = nullptr;
    return;
  }
  if (auto* comp = component_of_slot(slot)) {
    auto& rs = comp->res_slots;
    const auto it = std::find(rs.begin(), rs.end(), slot);
    if (it != rs.end()) {
      *it = rs.back();
      rs.pop_back();
      ++comp->admission_gen;  // local resource indices shifted
    }
  }
  slot_comp_[slot] = kNone;
  res_slots_[slot] = nullptr;
  free_res_slots_.push_back(slot);
  res.slot_ = FluidResource::kNoSlot;
  res.scheduler_ = nullptr;
}

std::size_t FluidScheduler::component_count() const { return live_comp_count_; }

// --- FluidScheduler: flow admission ----------------------------------------

FlowPtr FluidScheduler::start(FlowSpec spec) {
  NM_CHECK(spec.work >= 0.0, "negative flow work");
  NM_CHECK(!spec.shares.empty(), "a flow must cross at least one resource");
  for (const auto& share : spec.shares) {
    NM_CHECK(share.resource != nullptr, "null resource in flow");
    NM_CHECK(share.weight > 0.0, "non-positive weight on " << share.resource->name());
    register_resource(*share.resource);
  }
  // One allocation per flow: make_shared fuses the control block with the
  // (64-byte aligned) Flow. The local subclass just re-exports the private
  // constructor to make_shared; it adds no members.
  struct FlowMaker : Flow {
    FlowMaker(Simulation& sim, double work, std::vector<ResourceShare> shares, double max_rate,
              std::string name)
        : Flow(sim, work, std::move(shares), max_rate, std::move(name)) {}
  };
  FlowPtr flow = std::make_shared<FlowMaker>(*sim_, spec.work, std::move(spec.shares),
                                             spec.max_rate, spec.name.str());
  flow->scheduler_ = this;
  flow->last_update_ = sim_->now();
  flow->seq_ = next_flow_seq_++;
  if (spec.work <= kEpsilon) {
    flow->finished_ = true;
    flow->remaining_ = 0.0;
    flow->done_.set();
    return flow;
  }
  for (const auto& share : flow->shares_) {
    ++share.resource->active_flows_;
    share.resource->active_wsum_ += share.weight;
  }
  flow->global_index_ = static_cast<std::uint32_t>(flows_.size());
  flows_.push_back(flow);

  // Place the flow in the component connecting all its resources, merging
  // components it bridges.
  Component* target = nullptr;
  for (const auto& share : flow->shares_) {
    Component* c = component_of_slot(share.resource->slot_);
    if (c == nullptr || c == target) {
      continue;
    }
    if (target == nullptr) {
      target = c;
      continue;
    }
    if (c->flows.size() > target->flows.size()) {
      std::swap(target, c);
    }
    merge_into(*target, *c);
  }
  if (target == nullptr) {
    target = &make_component();
  }
  for (const auto& share : flow->shares_) {
    const auto slot = share.resource->slot_;
    if (slot_comp_[slot] == kNone) {
      slot_comp_[slot] = target->id;
      target->res_slots.push_back(slot);
    }
  }
  flow->comp_ = target->id;
  flow->comp_index_ = static_cast<std::uint32_t>(target->flows.size());
  target->flows.push_back(flow.get());
  ++target->admission_gen;
  mark_dirty(*target);
  return flow;
}

Task FlowRouter::run(FlowSpec spec) {
  auto flow = start(std::move(spec));
  if (!flow->finished()) {
    co_await flow->completion().wait();
  }
}

// --- FluidScheduler: components --------------------------------------------

FluidScheduler::Component& FluidScheduler::make_component() {
  std::uint32_t id;
  if (!free_comp_ids_.empty()) {
    id = free_comp_ids_.back();
    free_comp_ids_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(comps_.size());
    comps_.emplace_back();
  }
  comps_[id] = std::make_unique<Component>();
  comps_[id]->id = id;
  comps_[id]->last_solved = sim_->now();
  ++live_comp_count_;
  return *comps_[id];
}

void FluidScheduler::merge_into(Component& dst, Component& src) {
  // The two sides were last solved at different instants; bank progress to
  // `now` on both so the merged component has one uniform rate window.
  integrate_component(dst);
  integrate_component(src);
  // Both lists are sorted by admission seq; keep the merged list sorted so
  // solves sum floats in the same order the seed's global solver did.
  std::vector<Flow*> merged;
  merged.reserve(dst.flows.size() + src.flows.size());
  std::merge(dst.flows.begin(), dst.flows.end(), src.flows.begin(), src.flows.end(),
             std::back_inserter(merged),
             [](const Flow* a, const Flow* b) { return a->seq_ < b->seq_; });
  dst.flows = std::move(merged);
  for (std::size_t i = 0; i < dst.flows.size(); ++i) {
    dst.flows[i]->comp_ = dst.id;
    dst.flows[i]->comp_index_ = static_cast<std::uint32_t>(i);
  }
  for (const auto slot : src.res_slots) {
    slot_comp_[slot] = dst.id;
    dst.res_slots.push_back(slot);
  }
  ++dst.admission_gen;
  if (src.dirty) {
    mark_dirty(dst);
  }
  const auto id = src.id;
  comps_[id].reset();  // outstanding timers die on the null check
  free_comp_ids_.push_back(id);
  --live_comp_count_;
}

void FluidScheduler::mark_dirty(Component& comp) {
  if (!comp.dirty) {
    comp.dirty = true;
    dirty_comps_.push_back(comp.id);
  }
  if (pool_ != nullptr) {
    // Pool mode: no zero-delay post — the kernel's settle hook fires the
    // pool at the end of the current instant, batching marks from every
    // attached domain into one parallel solve.
    pool_->notify_dirty(*this);
    return;
  }
  if (!settle_pending_) {
    // Re-solve before any simulated time passes: rates are continuous in
    // time, so deferring to the end of the current instant is exact and
    // batches all mutations made at this instant into one solve.
    settle_pending_ = true;
    sim_->post(Duration::zero(), [this] {
      settle_pending_ = false;
      settle_dirty();
    });
  }
}

void FluidScheduler::settle_dirty() {
  for (std::size_t i = 0; i < dirty_comps_.size(); ++i) {
    const auto id = dirty_comps_[i];
    auto* comp = id < comps_.size() ? comps_[id].get() : nullptr;
    if (comp != nullptr && comp->dirty) {
      solve_component(*comp);
    }
  }
  dirty_comps_.clear();
  maybe_rebuild();
}

void FluidScheduler::ensure_settled(const Flow& flow) {
  if (pool_ != nullptr && pool_->exchange_active()) {
    // Boundary flows couple domains: dirt anywhere in the pool can move
    // this flow's rate through the ghost-capacity exchange even while its
    // own component is clean (e.g. a foreign capacity change releases a
    // ghost, raising a local flow's fair share). A lone component solve
    // could also observe rates the exchange would still move. Run the
    // pool's full multi-round settle whenever anything is pending — it
    // solves every dirty component to the coupled fixed point.
    if (pool_->any_dirty()) {
      pool_->settle();
    }
    return;
  }
  if (auto* comp = component_of_flow(flow)) {
    if (comp->dirty) {
      solve_component(*comp);
    }
  }
}

void FluidScheduler::rebalance() {
  if (pool_ != nullptr && pool_->exchange_active()) {
    for (auto& comp : comps_) {
      if (comp != nullptr) {
        mark_dirty(*comp);
      }
    }
    pool_->settle();
    return;
  }
  for (auto& comp : comps_) {
    if (comp != nullptr) {
      solve_component(*comp);
    }
  }
}

// --- FluidScheduler: the incremental solve ---------------------------------

void FluidScheduler::integrate_component(Component& comp) {
  const TimePoint now = sim_->now();
  comp.last_solved = now;
  // Rates are unchanged, so each resource's aggregate consume_rate_ stays
  // valid; the prefix just advances to `now`, so re-stamp the window start
  // (otherwise readers would double-count the integrated span).
  for (const auto slot : comp.res_slots) {
    res_slots_[slot]->rate_since_ = now;
  }
  for (Flow* f : comp.flows) {
    const Duration elapsed = now - f->last_update_;
    if (elapsed.is_zero()) {
      continue;
    }
    if (f->rate_ > 0.0) {
      const double el = elapsed.to_seconds();
      f->remaining_ -= f->rate_ * el;
      // Utilization accounting: each crossed resource absorbed
      // rate * weight over the elapsed window.
      for (const auto& share : f->shares_) {
        share.resource->consumed_ += f->rate_ * share.weight * el;
      }
    }
    f->last_update_ = now;
  }
}

void FluidScheduler::solve_component(Component& comp) {
  compute_component(comp, serial_scratch_, serial_result_);
  commit_component(comp, serial_result_);
}

void FluidScheduler::compute_component(Component& comp, SolveScratch& scratch, SolveResult& out) {
  if (solve_method_ == SolveMethod::kFullScanReference) {
    compute_component_reference(comp, scratch, out);
    return;
  }
  const TimePoint now = sim_->now();
  const auto nslots = res_slots_.size();
  if (scratch.res_residual.size() < nslots) {
    scratch.res_residual.resize(nslots);
    scratch.res_wsum.resize(nslots);
    scratch.res_unfrozen.resize(nslots);
    scratch.res_binding.resize(nslots);
  }
  // Pass 1 (fused): integrate progress at the rates valid since the last
  // solve, collect completions, compact the flow list, and gather the dense
  // filling inputs (caps, residual work, heap seeds) for the survivors in
  // one walk. The elapsed window is hoisted: every member with a nonzero
  // rate was last integrated at comp.last_solved (the solve that assigned
  // the rate, or integrate_component on a merge/retire), and flows admitted
  // since then carry rate 0, so one uniform `rate * el` per flow is exact.
  // A flow is done when its residual work cannot be represented on the
  // nanosecond clock (less than half a tick at the current rate) — this
  // avoids endless zero-delay reschedules.
  out.finished.clear();
  out.next_completion_s = std::numeric_limits<double>::infinity();
  const double el = (now - comp.last_solved).to_seconds();
  comp.last_solved = now;
  auto& cf = comp.flows;
  if (scratch.f_frozen.size() < cf.size()) {
    scratch.f_frozen.resize(cf.size());
  }
  scratch.cap_heap.clear();
  std::size_t out_idx = 0;  // stable compaction: completions fire in start order
  for (std::size_t i = 0; i < cf.size(); ++i) {
    Flow* f = cf[i];
    f->remaining_ -= f->rate_ * el;
    f->last_update_ = now;
    const double sub_tick = f->rate_ * 0.5e-9;
    if (f->remaining_ <= std::max(kEpsilon, sub_tick)) {
      // `flows_` is read-only during the compute phase (the swap-remove
      // happens in commit), so taking the strong ref here is safe even when
      // other components of this scheduler are computing concurrently.
      out.finished.push_back(flows_[f->global_index_]);
      finish_flow_local(*f);
      continue;
    }
    cf[out_idx] = f;
    f->comp_index_ = static_cast<std::uint32_t>(out_idx);
    const double cap = f->effective_cap();
    if (std::isfinite(cap)) {
      scratch.cap_heap.emplace_back(cap, static_cast<std::uint32_t>(out_idx));
    }
    ++out_idx;
  }
  if (out_idx != cf.size()) {
    cf.resize(out_idx);
    ++comp.admission_gen;  // membership changed: the cached layout is stale
  }
  std::fill_n(scratch.f_frozen.begin(), cf.size(), std::uint8_t{0});
  for (const auto slot : comp.res_slots) {
    FluidResource* res = res_slots_[slot];
    // Close the constant-rate window with one fused multiply per resource:
    // rates are piecewise constant since the last solve, so the aggregate
    // consume_rate_ integrates the whole window exactly (flows admitted at
    // this instant carry rate 0 and contribute nothing). This replaces the
    // reference path's per-flow-share consumed_ accumulation.
    if (res->consume_rate_ != 0.0) {
      const Duration elapsed = now - res->rate_since_;
      if (!elapsed.is_zero()) {
        res->consumed_ += res->consume_rate_ * elapsed.to_seconds();
      }
    }
    res->consume_rate_ = 0.0;
    res->rate_since_ = now;
    // Re-stamped by water_fill in the round (if any) where the resource
    // binds; FluidNet offers read the post-solve value.
    res->bound_level_ = -std::numeric_limits<double>::infinity();
    scratch.res_residual[slot] = res->capacity_;
    // Seeded from the incrementally maintained aggregates (start /
    // finish_flow_local), read after pass 1 so this solve's completions are
    // already reflected — pass 1 needs no per-share walk at all.
    scratch.res_wsum[slot] = res->active_wsum_;
    scratch.res_unfrozen[slot] = static_cast<std::uint32_t>(res->active_flows_);
    scratch.res_binding[slot] = 0;
  }
  comp.dirty = false;
  if (cf.empty()) {
    return;
  }

  // (cap, admission index) min-heap: the partial sort. Pair comparison
  // breaks cap ties by admission index.
  std::make_heap(scratch.cap_heap.begin(), scratch.cap_heap.end(), std::greater<>{});
  scratch.r_live.clear();
  for (std::uint32_t j = 0; j < comp.res_slots.size(); ++j) {
    if (scratch.res_unfrozen[comp.res_slots[j]] > 0) {
      scratch.r_live.push_back(j);
    }
  }
  ensure_layout(comp, scratch);

  out.next_completion_s = water_fill(comp, scratch);

  // Resource writeback (flow rates were written as their freeze batches
  // ran): the filling left each resource's residual behind, so its
  // aggregate consumption rate is capacity − residual — one deterministic
  // subtraction per resource, valid until the next solve (see
  // FluidResource::consumed()).
  for (const auto slot : comp.res_slots) {
    FluidResource* res = res_slots_[slot];
    res->consume_rate_ = res->capacity_ - scratch.res_residual[slot];
  }
}

void FluidScheduler::ensure_layout(Component& comp, SolveScratch& scratch) {
  auto& lay = comp.layout;
  if (lay.built_gen == comp.admission_gen) {
    return;
  }
  if (lay.seen_gen != comp.admission_gen) {
    // First solve at this membership: don't build — churning components
    // (admissions or completions every solve) would pay a full transpose
    // rebuild per solve only to use it once. water_fill falls back to the
    // admission-order flow scan until the membership proves stable.
    lay.seen_gen = comp.admission_gen;
    return;
  }
  const auto nf = static_cast<std::uint32_t>(comp.flows.size());
  const auto nr = static_cast<std::uint32_t>(comp.res_slots.size());
  lay.n_res = nr;
  if (scratch.slot_local.size() < res_slots_.size()) {
    scratch.slot_local.resize(res_slots_.size());
  }
  for (std::uint32_t j = 0; j < nr; ++j) {
    scratch.slot_local[comp.res_slots[j]] = j;
  }
  // Transpose via counting sort: per-resource flow lists, admission order.
  lay.rflow_off.assign(nr + 1, 0);
  std::uint32_t total = 0;
  for (std::uint32_t i = 0; i < nf; ++i) {
    for (const auto& share : comp.flows[i]->shares_) {
      ++lay.rflow_off[scratch.slot_local[share.resource->slot_] + 1];
      ++total;
    }
  }
  for (std::uint32_t j = 0; j < nr; ++j) {
    lay.rflow_off[j + 1] += lay.rflow_off[j];
  }
  lay.rflow_ids.resize(total);
  if (scratch.rflow_cursor.size() < nr) {
    scratch.rflow_cursor.resize(nr);
  }
  std::copy(lay.rflow_off.begin(), lay.rflow_off.begin() + nr, scratch.rflow_cursor.begin());
  for (std::uint32_t i = 0; i < nf; ++i) {
    for (const auto& share : comp.flows[i]->shares_) {
      lay.rflow_ids[scratch.rflow_cursor[scratch.slot_local[share.resource->slot_]]++] = i;
    }
  }
  lay.built_gen = comp.admission_gen;
}

double FluidScheduler::water_fill(Component& comp, SolveScratch& scratch) {
  // Water-level filling over the dense arrays: each round takes the
  // tightest constraint (a resource's equal-share or the heap-top cap),
  // freezing tied capped flows straight off the cap heap and every flow
  // crossing a binding resource — through the cached transpose list when
  // the membership is stable, or an admission-order flow scan when it is
  // churning. Across a whole solve each flow is batched exactly once and
  // each heap entry pops once.
  const auto& lay = comp.layout;
  const bool transposed = lay.built_gen == comp.admission_gen;
  auto& cf = comp.flows;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto heap_cmp = std::greater<>{};
  auto& heap = scratch.cap_heap;
  double next = kInf;
  std::uint32_t left = static_cast<std::uint32_t>(cf.size());
  while (left > 0) {
    // Resource water level: the tightest equal-share among live resources,
    // compacting out resources whose flows all froze in earlier rounds.
    // Guard on the integer count, not wsum: subtractive updates of tiny
    // weights (1e-9 core-sec/byte) leave fp residue behind.
    auto& live = scratch.r_live;
    double bound_r = kInf;
    std::size_t lw = 0;
    for (const std::uint32_t j : live) {
      const auto slot = comp.res_slots[j];
      if (scratch.res_unfrozen[slot] == 0) {
        continue;
      }
      live[lw++] = j;
      if (scratch.res_wsum[slot] > 0.0) {
        bound_r = std::min(bound_r,
                           std::max(0.0, scratch.res_residual[slot]) / scratch.res_wsum[slot]);
      }
    }
    live.resize(lw);
    // Lazy deletion: drop already-frozen flows off the cap heap.
    while (!heap.empty() && scratch.f_frozen[heap.front().second] != 0) {
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      heap.pop_back();
    }
    const double cap_min = heap.empty() ? kInf : heap.front().first;
    NM_CHECK(std::isfinite(std::min(bound_r, cap_min)),
             "unbounded fluid rate (flow with no finite constraint) in "
                 << describe_component(comp));

    const double bound = std::min(bound_r, cap_min);
    if (heap.empty() && live.size() == 1) {
      // Fast round: a single live resource and no unfrozen capped flows. A
      // live flow keeps every resource it crosses live, so each unfrozen
      // flow has exactly one share, on this resource — the whole remainder
      // freezes at `bound` in one admission-order sweep over the dense
      // arrays, no binding flags or batch needed. The residual subtractions
      // run in the same per-flow sequence as the general path, so the
      // committed consume_rate_ is bit-identical.
      const auto slot = comp.res_slots[live.front()];
      res_slots_[slot]->bound_level_ = bound;
      const auto nf = static_cast<std::uint32_t>(cf.size());
      double bound_min_remaining = kInf;
      double residual = scratch.res_residual[slot];
      for (std::uint32_t i = 0; i < nf; ++i) {
        if (scratch.f_frozen[i] != 0) {
          continue;
        }
        Flow* f = cf[i];
        const double rate = std::min(bound, f->effective_cap());
        f->rate_ = rate;
        residual -= rate * f->w0_;
        if (rate == bound) {
          bound_min_remaining = std::min(bound_min_remaining, f->remaining_);
        } else if (rate > 0.0) {
          next = std::min(next, f->remaining_ / rate);
        }
      }
      scratch.res_residual[slot] = residual;
      scratch.res_unfrozen[slot] = 0;
      if (bound > 0.0 && std::isfinite(bound_min_remaining)) {
        next = std::min(next, bound_min_remaining / bound);
      }
      break;  // every remaining flow froze this round
    }
    auto& batch = scratch.freeze_batch;
    batch.clear();
    // Tied caps (the tiny-flow fast path) come straight off the heap: one
    // pop per capped flow across the whole solve, no scan over the rest.
    while (!heap.empty()) {
      const auto [cap, idx] = heap.front();
      if (scratch.f_frozen[idx] == 0) {
        if (cap > bound * (1.0 + 1e-12)) {
          break;
        }
        scratch.f_frozen[idx] = 1;
        batch.push_back(idx);
      }
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      heap.pop_back();
    }
    // Resources whose equal-share sits at the level freeze every unfrozen
    // flow they carry. A cap and a resource can tie within the same round
    // (the tolerance band below); handling both here keeps the round
    // structure — and crucially the bound_level_ stamps the FluidNet
    // exchange reads for its capacity offers — identical to the reference
    // solver's.
    bool any_binding = false;
    for (const std::uint32_t j : live) {
      const auto slot = comp.res_slots[j];
      if (scratch.res_wsum[slot] <= 0.0 ||
          std::max(0.0, scratch.res_residual[slot]) / scratch.res_wsum[slot] >
              bound * (1.0 + 1e-12)) {
        continue;
      }
      // The max-min level this resource saturated at; stable until the
      // next solve, so FluidNet's exchange can read it after compute.
      res_slots_[slot]->bound_level_ = bound;
      any_binding = true;
      if (transposed) {
        for (std::uint32_t s = lay.rflow_off[j]; s < lay.rflow_off[j + 1]; ++s) {
          const std::uint32_t idx = lay.rflow_ids[s];
          if (scratch.f_frozen[idx] == 0) {
            scratch.f_frozen[idx] = 1;
            batch.push_back(idx);
          }
        }
      } else {
        scratch.res_binding[slot] = 1;
      }
    }
    if (!transposed && any_binding && batch.empty()) {
      // Fused fallback for the common pure-resource round on churning
      // membership (no caps tied this round): freeze and apply in one
      // admission-order pass. The scan order *is* the batch order, so the
      // subtractive float updates run in the exact sequence the two-phase
      // path below would use — bit-identical, half the memory traffic.
      const auto nf = static_cast<std::uint32_t>(cf.size());
      std::uint32_t frozen_this_round = 0;
      double bound_min_remaining = kInf;
      for (std::uint32_t i = 0; i < nf; ++i) {
        if (scratch.f_frozen[i] != 0) {
          continue;
        }
        Flow* f = cf[i];
        bool binding = false;
        for (const auto& share : f->shares_) {
          if (scratch.res_binding[share.resource->slot_] != 0) {
            binding = true;
            break;
          }
        }
        if (!binding) {
          continue;
        }
        scratch.f_frozen[i] = 1;
        ++frozen_this_round;
        const double rate = std::min(bound, f->effective_cap());
        f->rate_ = rate;
        for (const auto& share : f->shares_) {
          const auto slot = share.resource->slot_;
          scratch.res_residual[slot] -= rate * share.weight;
          scratch.res_wsum[slot] -= share.weight;
          NM_CHECK(scratch.res_unfrozen[slot] > 0, "fluid unfrozen-count underflow");
          --scratch.res_unfrozen[slot];
        }
        if (rate == bound) {
          bound_min_remaining = std::min(bound_min_remaining, f->remaining_);
        } else if (rate > 0.0) {
          next = std::min(next, f->remaining_ / rate);
        }
      }
      for (const std::uint32_t j : live) {
        scratch.res_binding[comp.res_slots[j]] = 0;
      }
      NM_CHECK(frozen_this_round > 0,
               "progressive filling made no progress in " << describe_component(comp));
      if (bound > 0.0 && std::isfinite(bound_min_remaining)) {
        next = std::min(next, bound_min_remaining / bound);
      }
      left -= frozen_this_round;
      continue;
    }
    if (!transposed && any_binding) {
      // Mixed round (caps and resources tied at one level) on churning
      // membership: gather into the batch so cap-popped and resource-bound
      // flows freeze together in admission order.
      const auto nf = static_cast<std::uint32_t>(cf.size());
      for (std::uint32_t i = 0; i < nf; ++i) {
        if (scratch.f_frozen[i] != 0) {
          continue;
        }
        for (const auto& share : cf[i]->shares_) {
          if (scratch.res_binding[share.resource->slot_] != 0) {
            scratch.f_frozen[i] = 1;
            batch.push_back(i);
            break;
          }
        }
      }
      for (const std::uint32_t j : live) {
        scratch.res_binding[comp.res_slots[j]] = 0;
      }
    }
    NM_CHECK(!batch.empty(),
             "progressive filling made no progress in " << describe_component(comp));

    // Freeze the batch in admission order so the subtractive float updates
    // run in one deterministic order for every solver and worker count.
    // (Pure cap rounds arrive in cap order; resource rounds are usually
    // already admission-sorted.)
    if (!std::is_sorted(batch.begin(), batch.end())) {
      std::sort(batch.begin(), batch.end());
    }
    // Flows frozen exactly at `bound` share one division: min(remaining)
    // over the group, divided once. Monotone, so bit-identical to dividing
    // each and taking the min.
    double bound_min_remaining = kInf;
    for (const std::uint32_t idx : batch) {
      Flow* f = cf[idx];
      const double rate = std::min(bound, f->effective_cap());
      f->rate_ = rate;
      for (const auto& share : f->shares_) {
        const auto slot = share.resource->slot_;
        scratch.res_residual[slot] -= rate * share.weight;
        scratch.res_wsum[slot] -= share.weight;
        NM_CHECK(scratch.res_unfrozen[slot] > 0, "fluid unfrozen-count underflow");
        --scratch.res_unfrozen[slot];
      }
      if (rate == bound) {
        bound_min_remaining = std::min(bound_min_remaining, f->remaining_);
      } else if (rate > 0.0) {
        next = std::min(next, f->remaining_ / rate);
      }
    }
    if (bound > 0.0 && std::isfinite(bound_min_remaining)) {
      next = std::min(next, bound_min_remaining / bound);
    }
    left -= static_cast<std::uint32_t>(batch.size());
  }
  return next;
}

std::string FluidScheduler::describe_component(const Component& comp) const {
  std::ostringstream os;
  os.precision(17);
  os << "component " << comp.id << " (" << comp.flows.size() << " flows, "
     << comp.res_slots.size() << " resources)";
  for (const auto slot : comp.res_slots) {
    const FluidResource* res = res_slots_[slot];
    os << "\n  resource[" << slot << "] " << res->name_ << ": capacity=" << res->capacity_
       << " bound_level=" << res->bound_level_ << " active_flows=" << res->active_flows_;
  }
  constexpr std::size_t kMaxFlows = 64;
  const std::size_t shown = std::min(comp.flows.size(), kMaxFlows);
  for (std::size_t i = 0; i < shown; ++i) {
    const Flow* f = comp.flows[i];
    os << "\n  flow seq=" << f->seq_;
    if (!f->name_.empty()) {
      os << " '" << f->name_ << "'";
    }
    os << ": remaining=" << f->remaining_ << " rate=" << f->rate_
       << " cap=" << f->effective_cap();
    if (f->ghost_) {
      os << " ghost";
    }
    if (f->suspended_) {
      os << " suspended";
    }
    os << " demands";
    for (const auto& share : f->shares_) {
      os << " " << share.resource->name_ << "*" << share.weight;
    }
  }
  if (shown < comp.flows.size()) {
    os << "\n  ... (" << (comp.flows.size() - shown) << " more flows)";
  }
  return os.str();
}

void FluidScheduler::compute_component_reference(Component& comp, SolveScratch& scratch,
                                                 SolveResult& out) {
  const TimePoint now = sim_->now();
  // Keep the dense path's hoisted-elapsed invariant valid even if the
  // solve method is switched mid-run: every member leaves this solve
  // integrated to `now`.
  comp.last_solved = now;
  if (scratch.res_residual.size() < res_slots_.size()) {
    scratch.res_residual.resize(res_slots_.size());
    scratch.res_wsum.resize(res_slots_.size());
    scratch.res_unfrozen.resize(res_slots_.size());
    scratch.res_binding.resize(res_slots_.size());
  }
  for (const auto slot : comp.res_slots) {
    FluidResource* res = res_slots_[slot];
    scratch.res_residual[slot] = res->capacity_;
    scratch.res_wsum[slot] = 0.0;
    scratch.res_unfrozen[slot] = 0;
    scratch.res_binding[slot] = 0;
    // Close the constant-rate window: pass 1 below re-integrates consumed_
    // to `now` per flow-share, and assign_max_min_rates re-accumulates the
    // aggregate rate as it freezes flows at their new rates.
    res->consume_rate_ = 0.0;
    res->rate_since_ = now;
    // Re-stamped by assign_max_min_rates in the round (if any) where the
    // resource binds; FluidNet offers read the post-solve value.
    res->bound_level_ = -std::numeric_limits<double>::infinity();
  }

  // Pass 1 (fused): integrate progress at the rates valid since the last
  // solve, collect completions, and build the filling inputs (weight sums,
  // unfrozen counts, first-round cap) for the survivors in one walk. A flow
  // is done when its residual work cannot be represented on the nanosecond
  // clock (less than half a tick at the current rate) — this avoids endless
  // zero-delay reschedules.
  out.finished.clear();
  out.next_completion_s = std::numeric_limits<double>::infinity();
  scratch.unfrozen.clear();
  double first_cap = std::numeric_limits<double>::infinity();
  auto& cf = comp.flows;
  std::size_t out_idx = 0;  // stable compaction: completions fire in start order
  for (std::size_t i = 0; i < cf.size(); ++i) {
    Flow* f = cf[i];
    const Duration elapsed = now - f->last_update_;
    if (!elapsed.is_zero() && f->rate_ > 0.0) {
      const double el = elapsed.to_seconds();
      f->remaining_ -= f->rate_ * el;
      for (const auto& share : f->shares_) {
        share.resource->consumed_ += f->rate_ * share.weight * el;
      }
    }
    f->last_update_ = now;
    const double sub_tick = f->rate_ * 0.5e-9;
    if (f->remaining_ <= std::max(kEpsilon, sub_tick)) {
      // `flows_` is read-only during the compute phase (the swap-remove
      // happens in commit), so taking the strong ref here is safe even when
      // other components of this scheduler are computing concurrently.
      out.finished.push_back(flows_[f->global_index_]);
      finish_flow_local(*f);
      continue;
    }
    cf[out_idx] = f;
    f->comp_index_ = static_cast<std::uint32_t>(out_idx);
    ++out_idx;
    f->rate_ = 0.0;
    scratch.unfrozen.push_back(f);
    for (const auto& share : f->shares_) {
      const auto slot = share.resource->slot_;
      scratch.res_wsum[slot] += share.weight;
      ++scratch.res_unfrozen[slot];
    }
    first_cap = std::min(first_cap, f->effective_cap());
  }
  if (out_idx != cf.size()) {
    cf.resize(out_idx);
    ++comp.admission_gen;  // membership changed: the cached layout is stale
  }

  // Pass 2: re-solve rates and find the earliest completion.
  comp.dirty = false;
  if (!cf.empty()) {
    out.next_completion_s = assign_max_min_rates(comp, first_cap, scratch);
    // O(1)-read accounting: the filling left each resource's residual
    // behind, so its aggregate consumption rate is capacity − residual —
    // one deterministic subtraction per resource, valid until the next
    // solve (see FluidResource::consumed()).
    for (const auto slot : comp.res_slots) {
      FluidResource* res = res_slots_[slot];
      res->consume_rate_ = res->capacity_ - scratch.res_residual[slot];
    }
  }
}

void FluidScheduler::commit_component(Component& comp, SolveResult& out) {
  for (const auto& flow : out.finished) {
    retire_flow_global(*flow);
  }
  if (!comp.flows.empty()) {
    arm_timer(comp, out.next_completion_s);
  } else {
    // Dissolve: a later flow on these resources starts a fresh component.
    // Outstanding timers die on the null/generation check.
    for (const auto slot : comp.res_slots) {
      slot_comp_[slot] = kNone;
    }
    const auto id = comp.id;
    comps_[id].reset();
    free_comp_ids_.push_back(id);
    --live_comp_count_;
  }

  // Fire completions after bookkeeping so waiters observe a settled state.
  for (auto& flow : out.finished) {
    flow->done_.set();
  }
  out.finished.clear();
}

void FluidScheduler::finish_flow_local(Flow& flow) {
  flow.remaining_ = 0.0;
  flow.finished_ = true;
  flow.comp_ = kNone;
  flow.comp_index_ = Flow::kNoIndex;
  for (const auto& share : flow.shares_) {
    NM_CHECK(share.resource->active_flows_ > 0,
             "resource flow count underflow on " << share.resource->name());
    --share.resource->active_flows_;
    share.resource->active_wsum_ -= share.weight;
  }
}

void FluidScheduler::retire_flow_global(Flow& flow) {
  const auto idx = flow.global_index_;
  if (idx + 1 != flows_.size()) {
    flows_[idx] = std::move(flows_.back());
    flows_[idx]->global_index_ = idx;
  }
  flows_.pop_back();
  flow.global_index_ = Flow::kNoIndex;
  ++retired_since_rebuild_;
}

double FluidScheduler::assign_max_min_rates(Component& comp, double first_cap,
                                            SolveScratch& scratch) {
  // Progressive filling with weighted consumption: in each round find the
  // tightest constraint — a resource's equal-rate share
  // (residual / Σ weights of unfrozen flows on it) or a flow's own cap —
  // freeze the flows it binds, subtract their consumption, repeat.
  // Slot-indexed scratch rows and the unfrozen list were prepared by
  // compute_component's fused pass; `first_cap` is the round-1 cap minimum
  // (later rounds must recompute it over the still-unfrozen flows).
  double next = std::numeric_limits<double>::infinity();
  bool first_round = true;
  while (!scratch.unfrozen.empty()) {
    // Tightest constraint this round. Guard on the integer count, not
    // weight_sum: subtractive updates of tiny weights (1e-9 core-sec/byte)
    // leave fp residue behind.
    double bound = std::numeric_limits<double>::infinity();
    for (const auto slot : comp.res_slots) {
      if (scratch.res_unfrozen[slot] > 0 && scratch.res_wsum[slot] > 0.0) {
        bound = std::min(bound,
                         std::max(0.0, scratch.res_residual[slot]) / scratch.res_wsum[slot]);
      }
    }
    if (first_round) {
      bound = std::min(bound, first_cap);
      first_round = false;
    } else {
      for (const Flow* f : scratch.unfrozen) {
        bound = std::min(bound, f->effective_cap());
      }
    }
    NM_CHECK(std::isfinite(bound), "unbounded fluid rate (flow with no finite constraint) in "
                                       << describe_component(comp));

    // Freeze every flow bound at `bound`: flows whose cap equals the bound,
    // plus all flows on resources whose share equals the bound.
    for (const auto slot : comp.res_slots) {
      const bool binding =
          scratch.res_unfrozen[slot] > 0 && scratch.res_wsum[slot] > 0.0 &&
          std::max(0.0, scratch.res_residual[slot]) / scratch.res_wsum[slot] <=
              bound * (1.0 + 1e-12);
      scratch.res_binding[slot] = binding ? 1 : 0;
      if (binding) {
        // The max-min level this resource saturated at; stable until the
        // next solve, so FluidNet's exchange can read it after compute.
        res_slots_[slot]->bound_level_ = bound;
      }
    }
    // Flows frozen exactly at `bound` share one division: min(remaining)
    // over the group, divided once. Monotone, so bit-identical to dividing
    // each and taking the min.
    double bound_min_remaining = std::numeric_limits<double>::infinity();
    bool froze_any = false;
    for (std::size_t i = 0; i < scratch.unfrozen.size();) {
      Flow* f = scratch.unfrozen[i];
      bool freeze = f->effective_cap() <= bound * (1.0 + 1e-12);
      if (!freeze) {
        for (const auto& share : f->shares_) {
          if (scratch.res_binding[share.resource->slot_] != 0) {
            freeze = true;
            break;
          }
        }
      }
      if (!freeze) {
        ++i;
        continue;
      }
      const double rate = std::min(bound, f->effective_cap());
      f->rate_ = rate;
      for (const auto& share : f->shares_) {
        const auto slot = share.resource->slot_;
        scratch.res_residual[slot] -= rate * share.weight;
        scratch.res_wsum[slot] -= share.weight;
        NM_CHECK(scratch.res_unfrozen[slot] > 0, "fluid unfrozen-count underflow");
        --scratch.res_unfrozen[slot];
      }
      if (rate == bound) {
        bound_min_remaining = std::min(bound_min_remaining, f->remaining_);
      } else if (rate > 0.0) {
        next = std::min(next, f->remaining_ / rate);
      }
      froze_any = true;
      scratch.unfrozen[i] = scratch.unfrozen.back();
      scratch.unfrozen.pop_back();
    }
    if (bound > 0.0 && std::isfinite(bound_min_remaining)) {
      next = std::min(next, bound_min_remaining / bound);
    }
    NM_CHECK(froze_any,
             "progressive filling made no progress in " << describe_component(comp));
  }
  return next;
}

void FluidScheduler::arm_timer(Component& comp, double next_completion_s) {
  comp.gen = ++next_gen_;
  if (!std::isfinite(next_completion_s)) {
    return;  // nothing is progressing; a future mutation will re-arm
  }
  // Round up to the next nanosecond tick so the completing solve runs
  // at-or-after the true completion instant (never an instant before, which
  // would strand sub-tick work). Completions beyond the int64 nanosecond
  // horizon are clamped: the solve at the clamped instant simply re-arms.
  constexpr double kMaxDelayNs = 4.0e18;  // ~127 sim-years, safely below int64 max
  const double ns = std::ceil(std::max(next_completion_s, 0.0) * 1e9);
  const auto delay_ns = static_cast<std::int64_t>(std::min(ns, kMaxDelayNs));
  const std::uint64_t key = (static_cast<std::uint64_t>(comp.id) << 32) | comp.gen;
  sim_->post(Duration::nanos(std::max<std::int64_t>(delay_ns, 1)),
             [this, key] { on_timer(key); });
}

void FluidScheduler::on_timer(std::uint64_t key) {
  const auto id = static_cast<std::uint32_t>(key >> 32);
  const auto gen = static_cast<std::uint32_t>(key);
  auto* comp = id < comps_.size() ? comps_[id].get() : nullptr;
  if (comp == nullptr || comp->gen != gen) {
    return;  // superseded by a later solve, merge, or rebuild
  }
  if (pool_ != nullptr) {
    // Pool mode: completion timers mark instead of solving inline, so every
    // timer firing at this instant — across all attached domains — lands in
    // one parallel settle (the pool also drives maybe_rebuild afterwards).
    mark_dirty(*comp);
    return;
  }
  solve_component(*comp);
  maybe_rebuild();
}

// --- FluidScheduler: epoch rebuild -----------------------------------------

void FluidScheduler::maybe_rebuild() {
  // Components only over-approximate connectivity (flow retirement never
  // splits them eagerly). Once enough flows have retired, recompute the
  // partition from scratch so independent subgraphs separate again.
  if (retired_since_rebuild_ <= 64 || retired_since_rebuild_ <= flows_.size()) {
    return;
  }
  if (settle_pending_ || !dirty_comps_.empty()) {
    return;  // solve the pending mutations first; rebuild on a later event
  }
  rebuild_components();
}

void FluidScheduler::rebuild_components() {
  // Rates are unaffected by partitioning, so integrate everything to `now`
  // once and carry rates over; only timers need re-arming.
  for (auto& comp : comps_) {
    if (comp != nullptr) {
      integrate_component(*comp);
    }
  }
  comps_.clear();
  free_comp_ids_.clear();
  live_comp_count_ = 0;
  std::fill(slot_comp_.begin(), slot_comp_.end(), kNone);
  dirty_comps_.clear();

  // Union-find over resource slots, driven by the live flows in admission
  // order (the global list is swap-removed, so restore canonical order).
  std::vector<Flow*> order;
  order.reserve(flows_.size());
  for (const auto& flow : flows_) {
    order.push_back(flow.get());
  }
  std::sort(order.begin(), order.end(), [](const Flow* a, const Flow* b) {
    return a->seq_ < b->seq_;
  });
  std::vector<std::uint32_t> parent(res_slots_.size());
  for (std::uint32_t i = 0; i < parent.size(); ++i) {
    parent[i] = i;
  }
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (Flow* flow : order) {
    const auto first = find(flow->shares_.front().resource->slot_);
    for (const auto& share : flow->shares_) {
      parent[find(share.resource->slot_)] = first;
    }
  }

  std::vector<std::uint32_t> root_comp(res_slots_.size(), kNone);
  for (Flow* flow : order) {
    const auto root = find(flow->shares_.front().resource->slot_);
    if (root_comp[root] == kNone) {
      root_comp[root] = make_component().id;
    }
    auto& comp = *comps_[root_comp[root]];
    flow->comp_ = comp.id;
    flow->comp_index_ = static_cast<std::uint32_t>(comp.flows.size());
    comp.flows.push_back(flow);
    for (const auto& share : flow->shares_) {
      const auto slot = share.resource->slot_;
      if (slot_comp_[slot] == kNone) {
        slot_comp_[slot] = comp.id;
        comp.res_slots.push_back(slot);
      }
    }
  }

  for (auto& comp : comps_) {
    if (comp == nullptr) {
      continue;
    }
    double next = std::numeric_limits<double>::infinity();
    for (const Flow* f : comp->flows) {
      if (f->rate_ > 0.0) {
        next = std::min(next, f->remaining_ / f->rate_);
      }
    }
    arm_timer(*comp, next);
    comp->dirty = false;
  }
  retired_since_rebuild_ = 0;
}

}  // namespace nm::sim
