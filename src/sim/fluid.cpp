#include "sim/fluid.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "sim/solve_pool.h"

namespace nm::sim {

namespace {
// Work below this is treated as complete (work units are bytes or
// core-seconds, so 1e-6 is far below anything observable).
constexpr double kEpsilon = 1e-6;
}  // namespace

// --- FluidResource ---------------------------------------------------------

FluidResource::FluidResource(FluidScheduler& scheduler, std::string name, double capacity)
    : FluidResource(std::move(name), capacity) {
  scheduler.register_resource(*this);
}

FluidResource::~FluidResource() {
  if (scheduler_ != nullptr) {
    scheduler_->unregister_resource(*this);
  }
}

void FluidResource::set_capacity(double capacity) {
  NM_CHECK(capacity >= 0.0, "negative capacity for " << name_);
  capacity_ = capacity;
  if (scheduler_ != nullptr && slot_ != kNoSlot) {
    if (auto* comp = scheduler_->component_of_slot(slot_)) {
      scheduler_->mark_dirty(*comp);
    }
  }
}

double FluidResource::consumed() const {
  // Pure read: rates are piecewise constant between solves, so the exact
  // integral is the solve-time prefix plus a linear extrapolation. No
  // component is integrated or settled — readers cannot perturb the
  // simulation, and idle resources cost nothing.
  if (scheduler_ == nullptr || consume_rate_ == 0.0) {
    return consumed_;
  }
  const Duration elapsed = scheduler_->simulation().now() - rate_since_;
  return consumed_ + consume_rate_ * elapsed.to_seconds();
}

double FluidResource::utilization_over(double consumed_before, Duration window) const {
  const double window_s = window.to_seconds();
  if (window_s <= 0.0 || capacity_ <= 0.0) {
    return 0.0;
  }
  return (consumed() - consumed_before) / (capacity_ * window_s);
}

// --- Flow ------------------------------------------------------------------

bool Flow::finished() const {
  if (!finished_ && scheduler_ != nullptr) {
    scheduler_->ensure_settled(*this);
  }
  return finished_;
}

double Flow::remaining() const {
  if (!finished_ && scheduler_ != nullptr) {
    scheduler_->ensure_settled(*this);
  }
  return remaining_;
}

double Flow::current_rate() const {
  if (!finished_ && scheduler_ != nullptr) {
    scheduler_->ensure_settled(*this);
  }
  return rate_;
}

void Flow::set_max_rate(double max_rate) {
  NM_CHECK(max_rate >= 0.0, "negative flow rate cap");
  if (suspended_) {
    // Applied on resume(); the flow stays paused in the meantime.
    saved_max_rate_ = max_rate;
    return;
  }
  max_rate_ = max_rate;
  if (scheduler_ != nullptr && !finished_) {
    if (auto* comp = scheduler_->component_of_flow(*this)) {
      scheduler_->mark_dirty(*comp);
    }
  }
}

void Flow::suspend() {
  if (suspended_ || finished_) {
    return;
  }
  saved_max_rate_ = max_rate_;
  suspended_ = true;
  max_rate_ = 0.0;
  if (scheduler_ != nullptr) {
    if (auto* comp = scheduler_->component_of_flow(*this)) {
      scheduler_->mark_dirty(*comp);
    }
  }
}

void Flow::resume() {
  if (!suspended_) {
    return;
  }
  suspended_ = false;
  max_rate_ = saved_max_rate_;
  if (scheduler_ != nullptr && !finished_) {
    if (auto* comp = scheduler_->component_of_flow(*this)) {
      scheduler_->mark_dirty(*comp);
    }
  }
}

// --- FluidScheduler: lifecycle and registry --------------------------------

FluidScheduler::~FluidScheduler() {
  if (pool_ != nullptr) {
    pool_->detach(*this);
  }
  for (auto* res : res_slots_) {
    if (res != nullptr) {
      // Fold the pending constant-rate window into the prefix while the
      // clock is still reachable; afterwards the resource reads flat.
      res->consumed_ = res->consumed();
      res->consume_rate_ = 0.0;
      res->scheduler_ = nullptr;
      res->slot_ = FluidResource::kNoSlot;
    }
  }
  for (auto& flow : flows_) {
    flow->scheduler_ = nullptr;
    flow->comp_ = kNone;
  }
}

void FluidScheduler::register_resource(FluidResource& res) {
  NM_CHECK(res.scheduler_ == nullptr || res.scheduler_ == this,
           "resource " << res.name_ << " belongs to another scheduler");
  if (res.slot_ != FluidResource::kNoSlot) {
    return;
  }
  res.scheduler_ = this;
  if (!free_res_slots_.empty()) {
    res.slot_ = free_res_slots_.back();
    free_res_slots_.pop_back();
    res_slots_[res.slot_] = &res;
  } else {
    res.slot_ = static_cast<std::uint32_t>(res_slots_.size());
    res_slots_.push_back(&res);
    slot_comp_.push_back(kNone);
  }
}

void FluidScheduler::unregister_resource(FluidResource& res) {
  const auto slot = res.slot_;
  res.consumed_ = res.consumed();  // fold before the clock becomes unreachable
  res.consume_rate_ = 0.0;
  if (slot == FluidResource::kNoSlot) {
    res.scheduler_ = nullptr;
    return;
  }
  if (auto* comp = component_of_slot(slot)) {
    auto& rs = comp->res_slots;
    const auto it = std::find(rs.begin(), rs.end(), slot);
    if (it != rs.end()) {
      *it = rs.back();
      rs.pop_back();
    }
  }
  slot_comp_[slot] = kNone;
  res_slots_[slot] = nullptr;
  free_res_slots_.push_back(slot);
  res.slot_ = FluidResource::kNoSlot;
  res.scheduler_ = nullptr;
}

std::size_t FluidScheduler::component_count() const { return live_comp_count_; }

// --- FluidScheduler: flow admission ----------------------------------------

FlowPtr FluidScheduler::start(FlowSpec spec) {
  NM_CHECK(spec.work >= 0.0, "negative flow work");
  NM_CHECK(!spec.shares.empty(), "a flow must cross at least one resource");
  for (const auto& share : spec.shares) {
    NM_CHECK(share.resource != nullptr, "null resource in flow");
    NM_CHECK(share.weight > 0.0, "non-positive weight on " << share.resource->name());
    register_resource(*share.resource);
  }
  auto flow = FlowPtr(
      new Flow(*sim_, spec.work, std::move(spec.shares), spec.max_rate, spec.name.str()));
  flow->scheduler_ = this;
  flow->last_update_ = sim_->now();
  flow->seq_ = next_flow_seq_++;
  if (spec.work <= kEpsilon) {
    flow->finished_ = true;
    flow->remaining_ = 0.0;
    flow->done_->set();
    return flow;
  }
  for (const auto& share : flow->shares_) {
    ++share.resource->active_flows_;
  }
  flow->global_index_ = static_cast<std::uint32_t>(flows_.size());
  flows_.push_back(flow);

  // Place the flow in the component connecting all its resources, merging
  // components it bridges.
  Component* target = nullptr;
  for (const auto& share : flow->shares_) {
    Component* c = component_of_slot(share.resource->slot_);
    if (c == nullptr || c == target) {
      continue;
    }
    if (target == nullptr) {
      target = c;
      continue;
    }
    if (c->flows.size() > target->flows.size()) {
      std::swap(target, c);
    }
    merge_into(*target, *c);
  }
  if (target == nullptr) {
    target = &make_component();
  }
  for (const auto& share : flow->shares_) {
    const auto slot = share.resource->slot_;
    if (slot_comp_[slot] == kNone) {
      slot_comp_[slot] = target->id;
      target->res_slots.push_back(slot);
    }
  }
  flow->comp_ = target->id;
  flow->comp_index_ = static_cast<std::uint32_t>(target->flows.size());
  target->flows.push_back(flow.get());
  mark_dirty(*target);
  return flow;
}

Task FlowRouter::run(FlowSpec spec) {
  auto flow = start(std::move(spec));
  if (!flow->finished()) {
    co_await flow->completion().wait();
  }
}

// --- FluidScheduler: components --------------------------------------------

FluidScheduler::Component& FluidScheduler::make_component() {
  std::uint32_t id;
  if (!free_comp_ids_.empty()) {
    id = free_comp_ids_.back();
    free_comp_ids_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(comps_.size());
    comps_.emplace_back();
  }
  comps_[id] = std::make_unique<Component>();
  comps_[id]->id = id;
  ++live_comp_count_;
  return *comps_[id];
}

void FluidScheduler::merge_into(Component& dst, Component& src) {
  // Both lists are sorted by admission seq; keep the merged list sorted so
  // solves sum floats in the same order the seed's global solver did.
  std::vector<Flow*> merged;
  merged.reserve(dst.flows.size() + src.flows.size());
  std::merge(dst.flows.begin(), dst.flows.end(), src.flows.begin(), src.flows.end(),
             std::back_inserter(merged),
             [](const Flow* a, const Flow* b) { return a->seq_ < b->seq_; });
  dst.flows = std::move(merged);
  for (std::size_t i = 0; i < dst.flows.size(); ++i) {
    dst.flows[i]->comp_ = dst.id;
    dst.flows[i]->comp_index_ = static_cast<std::uint32_t>(i);
  }
  for (const auto slot : src.res_slots) {
    slot_comp_[slot] = dst.id;
    dst.res_slots.push_back(slot);
  }
  if (src.dirty) {
    mark_dirty(dst);
  }
  const auto id = src.id;
  comps_[id].reset();  // outstanding timers die on the null check
  free_comp_ids_.push_back(id);
  --live_comp_count_;
}

void FluidScheduler::mark_dirty(Component& comp) {
  if (!comp.dirty) {
    comp.dirty = true;
    dirty_comps_.push_back(comp.id);
  }
  if (pool_ != nullptr) {
    // Pool mode: no zero-delay post — the kernel's settle hook fires the
    // pool at the end of the current instant, batching marks from every
    // attached domain into one parallel solve.
    pool_->notify_dirty(*this);
    return;
  }
  if (!settle_pending_) {
    // Re-solve before any simulated time passes: rates are continuous in
    // time, so deferring to the end of the current instant is exact and
    // batches all mutations made at this instant into one solve.
    settle_pending_ = true;
    sim_->post(Duration::zero(), [this] {
      settle_pending_ = false;
      settle_dirty();
    });
  }
}

void FluidScheduler::settle_dirty() {
  for (std::size_t i = 0; i < dirty_comps_.size(); ++i) {
    const auto id = dirty_comps_[i];
    auto* comp = id < comps_.size() ? comps_[id].get() : nullptr;
    if (comp != nullptr && comp->dirty) {
      solve_component(*comp);
    }
  }
  dirty_comps_.clear();
  maybe_rebuild();
}

void FluidScheduler::ensure_settled(const Flow& flow) {
  if (pool_ != nullptr && pool_->exchange_active()) {
    // Boundary flows couple domains: dirt anywhere in the pool can move
    // this flow's rate through the ghost-capacity exchange even while its
    // own component is clean (e.g. a foreign capacity change releases a
    // ghost, raising a local flow's fair share). A lone component solve
    // could also observe rates the exchange would still move. Run the
    // pool's full multi-round settle whenever anything is pending — it
    // solves every dirty component to the coupled fixed point.
    if (pool_->any_dirty()) {
      pool_->settle();
    }
    return;
  }
  if (auto* comp = component_of_flow(flow)) {
    if (comp->dirty) {
      solve_component(*comp);
    }
  }
}

void FluidScheduler::rebalance() {
  if (pool_ != nullptr && pool_->exchange_active()) {
    for (auto& comp : comps_) {
      if (comp != nullptr) {
        mark_dirty(*comp);
      }
    }
    pool_->settle();
    return;
  }
  for (auto& comp : comps_) {
    if (comp != nullptr) {
      solve_component(*comp);
    }
  }
}

// --- FluidScheduler: the incremental solve ---------------------------------

void FluidScheduler::integrate_component(Component& comp) {
  const TimePoint now = sim_->now();
  // Rates are unchanged, so each resource's aggregate consume_rate_ stays
  // valid; the prefix just advances to `now`, so re-stamp the window start
  // (otherwise readers would double-count the integrated span).
  for (const auto slot : comp.res_slots) {
    res_slots_[slot]->rate_since_ = now;
  }
  for (Flow* f : comp.flows) {
    const Duration elapsed = now - f->last_update_;
    if (elapsed.is_zero()) {
      continue;
    }
    if (f->rate_ > 0.0) {
      const double el = elapsed.to_seconds();
      f->remaining_ -= f->rate_ * el;
      // Utilization accounting: each crossed resource absorbed
      // rate * weight over the elapsed window.
      for (const auto& share : f->shares_) {
        share.resource->consumed_ += f->rate_ * share.weight * el;
      }
    }
    f->last_update_ = now;
  }
}

void FluidScheduler::solve_component(Component& comp) {
  compute_component(comp, serial_scratch_, serial_result_);
  commit_component(comp, serial_result_);
}

void FluidScheduler::compute_component(Component& comp, SolveScratch& scratch, SolveResult& out) {
  const TimePoint now = sim_->now();
  if (scratch.res_residual.size() < res_slots_.size()) {
    scratch.res_residual.resize(res_slots_.size());
    scratch.res_wsum.resize(res_slots_.size());
    scratch.res_unfrozen.resize(res_slots_.size());
    scratch.res_binding.resize(res_slots_.size());
  }
  for (const auto slot : comp.res_slots) {
    FluidResource* res = res_slots_[slot];
    scratch.res_residual[slot] = res->capacity_;
    scratch.res_wsum[slot] = 0.0;
    scratch.res_unfrozen[slot] = 0;
    scratch.res_binding[slot] = 0;
    // Close the constant-rate window: pass 1 below re-integrates consumed_
    // to `now` per flow-share, and assign_max_min_rates re-accumulates the
    // aggregate rate as it freezes flows at their new rates.
    res->consume_rate_ = 0.0;
    res->rate_since_ = now;
    // Re-stamped by assign_max_min_rates in the round (if any) where the
    // resource binds; FluidNet offers read the post-solve value.
    res->bound_level_ = -std::numeric_limits<double>::infinity();
  }

  // Pass 1 (fused): integrate progress at the rates valid since the last
  // solve, collect completions, and build the filling inputs (weight sums,
  // unfrozen counts, first-round cap) for the survivors in one walk. A flow
  // is done when its residual work cannot be represented on the nanosecond
  // clock (less than half a tick at the current rate) — this avoids endless
  // zero-delay reschedules.
  out.finished.clear();
  out.next_completion_s = std::numeric_limits<double>::infinity();
  scratch.unfrozen.clear();
  double first_cap = std::numeric_limits<double>::infinity();
  auto& cf = comp.flows;
  std::size_t out_idx = 0;  // stable compaction: completions fire in start order
  for (std::size_t i = 0; i < cf.size(); ++i) {
    Flow* f = cf[i];
    const Duration elapsed = now - f->last_update_;
    if (!elapsed.is_zero() && f->rate_ > 0.0) {
      const double el = elapsed.to_seconds();
      f->remaining_ -= f->rate_ * el;
      for (const auto& share : f->shares_) {
        share.resource->consumed_ += f->rate_ * share.weight * el;
      }
    }
    f->last_update_ = now;
    const double sub_tick = f->rate_ * 0.5e-9;
    if (f->remaining_ <= std::max(kEpsilon, sub_tick)) {
      // `flows_` is read-only during the compute phase (the swap-remove
      // happens in commit), so taking the strong ref here is safe even when
      // other components of this scheduler are computing concurrently.
      out.finished.push_back(flows_[f->global_index_]);
      finish_flow_local(*f);
      continue;
    }
    cf[out_idx] = f;
    f->comp_index_ = static_cast<std::uint32_t>(out_idx);
    ++out_idx;
    f->rate_ = 0.0;
    scratch.unfrozen.push_back(f);
    for (const auto& share : f->shares_) {
      const auto slot = share.resource->slot_;
      scratch.res_wsum[slot] += share.weight;
      ++scratch.res_unfrozen[slot];
    }
    first_cap = std::min(first_cap, f->effective_cap());
  }
  cf.resize(out_idx);

  // Pass 2: re-solve rates and find the earliest completion.
  comp.dirty = false;
  if (!cf.empty()) {
    out.next_completion_s = assign_max_min_rates(comp, first_cap, scratch);
    // O(1)-read accounting: the filling left each resource's residual
    // behind, so its aggregate consumption rate is capacity − residual —
    // one deterministic subtraction per resource, valid until the next
    // solve (see FluidResource::consumed()).
    for (const auto slot : comp.res_slots) {
      FluidResource* res = res_slots_[slot];
      res->consume_rate_ = res->capacity_ - scratch.res_residual[slot];
    }
  }
}

void FluidScheduler::commit_component(Component& comp, SolveResult& out) {
  for (const auto& flow : out.finished) {
    retire_flow_global(*flow);
  }
  if (!comp.flows.empty()) {
    arm_timer(comp, out.next_completion_s);
  } else {
    // Dissolve: a later flow on these resources starts a fresh component.
    // Outstanding timers die on the null/generation check.
    for (const auto slot : comp.res_slots) {
      slot_comp_[slot] = kNone;
    }
    const auto id = comp.id;
    comps_[id].reset();
    free_comp_ids_.push_back(id);
    --live_comp_count_;
  }

  // Fire completions after bookkeeping so waiters observe a settled state.
  for (auto& flow : out.finished) {
    flow->done_->set();
  }
  out.finished.clear();
}

void FluidScheduler::finish_flow_local(Flow& flow) {
  flow.remaining_ = 0.0;
  flow.finished_ = true;
  flow.comp_ = kNone;
  flow.comp_index_ = Flow::kNoIndex;
  for (const auto& share : flow.shares_) {
    NM_CHECK(share.resource->active_flows_ > 0,
             "resource flow count underflow on " << share.resource->name());
    --share.resource->active_flows_;
  }
}

void FluidScheduler::retire_flow_global(Flow& flow) {
  const auto idx = flow.global_index_;
  if (idx + 1 != flows_.size()) {
    flows_[idx] = std::move(flows_.back());
    flows_[idx]->global_index_ = idx;
  }
  flows_.pop_back();
  flow.global_index_ = Flow::kNoIndex;
  ++retired_since_rebuild_;
}

double FluidScheduler::assign_max_min_rates(Component& comp, double first_cap,
                                            SolveScratch& scratch) {
  // Progressive filling with weighted consumption: in each round find the
  // tightest constraint — a resource's equal-rate share
  // (residual / Σ weights of unfrozen flows on it) or a flow's own cap —
  // freeze the flows it binds, subtract their consumption, repeat.
  // Slot-indexed scratch rows and the unfrozen list were prepared by
  // compute_component's fused pass; `first_cap` is the round-1 cap minimum
  // (later rounds must recompute it over the still-unfrozen flows).
  double next = std::numeric_limits<double>::infinity();
  bool first_round = true;
  while (!scratch.unfrozen.empty()) {
    // Tightest constraint this round. Guard on the integer count, not
    // weight_sum: subtractive updates of tiny weights (1e-9 core-sec/byte)
    // leave fp residue behind.
    double bound = std::numeric_limits<double>::infinity();
    for (const auto slot : comp.res_slots) {
      if (scratch.res_unfrozen[slot] > 0 && scratch.res_wsum[slot] > 0.0) {
        bound = std::min(bound,
                         std::max(0.0, scratch.res_residual[slot]) / scratch.res_wsum[slot]);
      }
    }
    if (first_round) {
      bound = std::min(bound, first_cap);
      first_round = false;
    } else {
      for (const Flow* f : scratch.unfrozen) {
        bound = std::min(bound, f->effective_cap());
      }
    }
    NM_CHECK(std::isfinite(bound), "unbounded fluid rate (flow with no finite constraint)");

    // Freeze every flow bound at `bound`: flows whose cap equals the bound,
    // plus all flows on resources whose share equals the bound.
    for (const auto slot : comp.res_slots) {
      const bool binding =
          scratch.res_unfrozen[slot] > 0 && scratch.res_wsum[slot] > 0.0 &&
          std::max(0.0, scratch.res_residual[slot]) / scratch.res_wsum[slot] <=
              bound * (1.0 + 1e-12);
      scratch.res_binding[slot] = binding ? 1 : 0;
      if (binding) {
        // The max-min level this resource saturated at; stable until the
        // next solve, so FluidNet's exchange can read it after compute.
        res_slots_[slot]->bound_level_ = bound;
      }
    }
    // Flows frozen exactly at `bound` share one division: min(remaining)
    // over the group, divided once. Monotone, so bit-identical to dividing
    // each and taking the min.
    double bound_min_remaining = std::numeric_limits<double>::infinity();
    bool froze_any = false;
    for (std::size_t i = 0; i < scratch.unfrozen.size();) {
      Flow* f = scratch.unfrozen[i];
      bool freeze = f->effective_cap() <= bound * (1.0 + 1e-12);
      if (!freeze) {
        for (const auto& share : f->shares_) {
          if (scratch.res_binding[share.resource->slot_] != 0) {
            freeze = true;
            break;
          }
        }
      }
      if (!freeze) {
        ++i;
        continue;
      }
      const double rate = std::min(bound, f->effective_cap());
      f->rate_ = rate;
      for (const auto& share : f->shares_) {
        const auto slot = share.resource->slot_;
        scratch.res_residual[slot] -= rate * share.weight;
        scratch.res_wsum[slot] -= share.weight;
        NM_CHECK(scratch.res_unfrozen[slot] > 0, "fluid unfrozen-count underflow");
        --scratch.res_unfrozen[slot];
      }
      if (rate == bound) {
        bound_min_remaining = std::min(bound_min_remaining, f->remaining_);
      } else if (rate > 0.0) {
        next = std::min(next, f->remaining_ / rate);
      }
      froze_any = true;
      scratch.unfrozen[i] = scratch.unfrozen.back();
      scratch.unfrozen.pop_back();
    }
    if (bound > 0.0 && std::isfinite(bound_min_remaining)) {
      next = std::min(next, bound_min_remaining / bound);
    }
    NM_CHECK(froze_any, "progressive filling made no progress");
  }
  return next;
}

void FluidScheduler::arm_timer(Component& comp, double next_completion_s) {
  comp.gen = ++next_gen_;
  if (!std::isfinite(next_completion_s)) {
    return;  // nothing is progressing; a future mutation will re-arm
  }
  // Round up to the next nanosecond tick so the completing solve runs
  // at-or-after the true completion instant (never an instant before, which
  // would strand sub-tick work). Completions beyond the int64 nanosecond
  // horizon are clamped: the solve at the clamped instant simply re-arms.
  constexpr double kMaxDelayNs = 4.0e18;  // ~127 sim-years, safely below int64 max
  const double ns = std::ceil(std::max(next_completion_s, 0.0) * 1e9);
  const auto delay_ns = static_cast<std::int64_t>(std::min(ns, kMaxDelayNs));
  const std::uint64_t key = (static_cast<std::uint64_t>(comp.id) << 32) | comp.gen;
  sim_->post(Duration::nanos(std::max<std::int64_t>(delay_ns, 1)),
             [this, key] { on_timer(key); });
}

void FluidScheduler::on_timer(std::uint64_t key) {
  const auto id = static_cast<std::uint32_t>(key >> 32);
  const auto gen = static_cast<std::uint32_t>(key);
  auto* comp = id < comps_.size() ? comps_[id].get() : nullptr;
  if (comp == nullptr || comp->gen != gen) {
    return;  // superseded by a later solve, merge, or rebuild
  }
  if (pool_ != nullptr) {
    // Pool mode: completion timers mark instead of solving inline, so every
    // timer firing at this instant — across all attached domains — lands in
    // one parallel settle (the pool also drives maybe_rebuild afterwards).
    mark_dirty(*comp);
    return;
  }
  solve_component(*comp);
  maybe_rebuild();
}

// --- FluidScheduler: epoch rebuild -----------------------------------------

void FluidScheduler::maybe_rebuild() {
  // Components only over-approximate connectivity (flow retirement never
  // splits them eagerly). Once enough flows have retired, recompute the
  // partition from scratch so independent subgraphs separate again.
  if (retired_since_rebuild_ <= 64 || retired_since_rebuild_ <= flows_.size()) {
    return;
  }
  if (settle_pending_ || !dirty_comps_.empty()) {
    return;  // solve the pending mutations first; rebuild on a later event
  }
  rebuild_components();
}

void FluidScheduler::rebuild_components() {
  // Rates are unaffected by partitioning, so integrate everything to `now`
  // once and carry rates over; only timers need re-arming.
  for (auto& comp : comps_) {
    if (comp != nullptr) {
      integrate_component(*comp);
    }
  }
  comps_.clear();
  free_comp_ids_.clear();
  live_comp_count_ = 0;
  std::fill(slot_comp_.begin(), slot_comp_.end(), kNone);
  dirty_comps_.clear();

  // Union-find over resource slots, driven by the live flows in admission
  // order (the global list is swap-removed, so restore canonical order).
  std::vector<Flow*> order;
  order.reserve(flows_.size());
  for (const auto& flow : flows_) {
    order.push_back(flow.get());
  }
  std::sort(order.begin(), order.end(), [](const Flow* a, const Flow* b) {
    return a->seq_ < b->seq_;
  });
  std::vector<std::uint32_t> parent(res_slots_.size());
  for (std::uint32_t i = 0; i < parent.size(); ++i) {
    parent[i] = i;
  }
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (Flow* flow : order) {
    const auto first = find(flow->shares_.front().resource->slot_);
    for (const auto& share : flow->shares_) {
      parent[find(share.resource->slot_)] = first;
    }
  }

  std::vector<std::uint32_t> root_comp(res_slots_.size(), kNone);
  for (Flow* flow : order) {
    const auto root = find(flow->shares_.front().resource->slot_);
    if (root_comp[root] == kNone) {
      root_comp[root] = make_component().id;
    }
    auto& comp = *comps_[root_comp[root]];
    flow->comp_ = comp.id;
    flow->comp_index_ = static_cast<std::uint32_t>(comp.flows.size());
    comp.flows.push_back(flow);
    for (const auto& share : flow->shares_) {
      const auto slot = share.resource->slot_;
      if (slot_comp_[slot] == kNone) {
        slot_comp_[slot] = comp.id;
        comp.res_slots.push_back(slot);
      }
    }
  }

  for (auto& comp : comps_) {
    if (comp == nullptr) {
      continue;
    }
    double next = std::numeric_limits<double>::infinity();
    for (const Flow* f : comp->flows) {
      if (f->rate_ > 0.0) {
        next = std::min(next, f->remaining_ / f->rate_);
      }
    }
    arm_timer(*comp, next);
    comp->dirty = false;
  }
  retired_since_rebuild_ = 0;
}

}  // namespace nm::sim
