#include "sim/fluid.h"

#include <algorithm>
#include <cmath>

namespace nm::sim {

namespace {
// Work below this is treated as complete (work units are bytes or
// core-seconds, so 1e-6 is far below anything observable).
constexpr double kEpsilon = 1e-6;
}  // namespace

void FluidResource::set_capacity(double capacity) {
  NM_CHECK(capacity >= 0.0, "negative capacity for " << name_);
  capacity_ = capacity;
  if (scheduler_ != nullptr) {
    scheduler_->rebalance();
  }
}

void Flow::set_max_rate(double max_rate) {
  NM_CHECK(max_rate >= 0.0, "negative flow rate cap");
  max_rate_ = max_rate;
  if (scheduler_ != nullptr && !finished_) {
    scheduler_->rebalance();
  }
}

void Flow::suspend() {
  if (suspended_ || finished_) {
    return;
  }
  suspended_ = true;
  saved_max_rate_ = max_rate_;
  set_max_rate(0.0);
}

void Flow::resume() {
  if (!suspended_) {
    return;
  }
  suspended_ = false;
  set_max_rate(saved_max_rate_);
}

FlowPtr FluidScheduler::start(double work, std::vector<ResourceShare> shares, double max_rate) {
  NM_CHECK(work >= 0.0, "negative flow work");
  NM_CHECK(!shares.empty(), "a flow must cross at least one resource");
  for (const auto& share : shares) {
    NM_CHECK(share.resource != nullptr, "null resource in flow");
    NM_CHECK(share.weight > 0.0, "non-positive weight on " << share.resource->name());
    NM_CHECK(share.resource->scheduler_ == nullptr || share.resource->scheduler_ == this,
             "resource " << share.resource->name() << " belongs to another scheduler");
    share.resource->scheduler_ = this;
  }
  auto flow = FlowPtr(new Flow(*sim_, work, std::move(shares), max_rate));
  flow->scheduler_ = this;
  flow->last_update_ = sim_->now();
  if (work <= kEpsilon) {
    flow->finished_ = true;
    flow->remaining_ = 0.0;
    flow->done_->set();
    return flow;
  }
  for (const auto& share : flow->shares_) {
    ++share.resource->active_flows_;
  }
  flows_.push_back(flow);
  rebalance();
  return flow;
}

FlowPtr FluidScheduler::start(double work, const std::vector<FluidResource*>& resources,
                              double max_rate) {
  std::vector<ResourceShare> shares;
  shares.reserve(resources.size());
  for (auto* r : resources) {
    shares.push_back(ResourceShare{r, 1.0});
  }
  return start(work, std::move(shares), max_rate);
}

Task FluidScheduler::run(double work, std::vector<ResourceShare> shares, double max_rate) {
  auto flow = start(work, std::move(shares), max_rate);
  if (!flow->finished()) {
    co_await flow->completion().wait();
  }
}

Task FluidScheduler::run(double work, std::vector<FluidResource*> resources, double max_rate) {
  auto flow = start(work, resources, max_rate);
  if (!flow->finished()) {
    co_await flow->completion().wait();
  }
}

void FluidScheduler::rebalance() {
  ++generation_;
  integrate_progress();
  assign_max_min_rates();
  schedule_next_completion();
}

void FluidScheduler::integrate_progress() {
  const TimePoint now = sim_->now();
  std::vector<FlowPtr> finished;
  for (auto& flow : flows_) {
    const Duration elapsed = now - flow->last_update_;
    flow->remaining_ -= flow->rate_ * elapsed.to_seconds();
    // Utilization accounting: each crossed resource absorbed
    // rate * weight over the elapsed window.
    if (!elapsed.is_zero() && flow->rate_ > 0.0) {
      for (const auto& share : flow->shares_) {
        share.resource->consumed_ += flow->rate_ * share.weight * elapsed.to_seconds();
      }
    }
    flow->last_update_ = now;
    // A flow is done when its residual work cannot be represented on the
    // nanosecond clock (less than half a tick at the current rate) — this
    // avoids endless zero-delay reschedules for fast flows.
    const double sub_tick = flow->rate_ * 0.5e-9;
    if (flow->remaining_ <= std::max(kEpsilon, sub_tick)) {
      flow->remaining_ = 0.0;
      flow->finished_ = true;
      for (const auto& share : flow->shares_) {
        NM_CHECK(share.resource->active_flows_ > 0,
                 "resource flow count underflow on " << share.resource->name());
        --share.resource->active_flows_;
      }
      finished.push_back(flow);
    }
  }
  if (!finished.empty()) {
    std::erase_if(flows_, [](const FlowPtr& f) { return f->finished_; });
    // Fire completions after bookkeeping so waiters observe a settled state.
    for (auto& flow : finished) {
      flow->done_->set();
    }
  }
}

void FluidScheduler::assign_max_min_rates() {
  // Progressive filling with weighted consumption: in each round find the
  // tightest constraint — a resource's equal-rate share
  // (residual / Σ weights of unfrozen flows on it) or a flow's own cap —
  // freeze the flows it binds, subtract their consumption, repeat.
  struct ResState {
    double residual;
    double weight_sum;
    std::size_t unfrozen = 0;  // flows still unfrozen on this resource
  };
  std::vector<FluidResource*> resources;
  std::vector<ResState> state;
  auto res_index = [&](FluidResource* r) -> std::size_t {
    for (std::size_t i = 0; i < resources.size(); ++i) {
      if (resources[i] == r) {
        return i;
      }
    }
    resources.push_back(r);
    state.push_back(ResState{r->capacity_, 0.0, 0});
    return resources.size() - 1;
  };

  // flow_res[f] holds (resource index, weight) pairs for flow f.
  std::vector<std::vector<std::pair<std::size_t, double>>> flow_res(flows_.size());
  std::vector<bool> frozen(flows_.size(), false);
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    flows_[f]->rate_ = 0.0;
    for (const auto& share : flows_[f]->shares_) {
      const std::size_t idx = res_index(share.resource);
      flow_res[f].emplace_back(idx, share.weight);
      state[idx].weight_sum += share.weight;
      ++state[idx].unfrozen;
    }
  }

  std::size_t remaining_flows = flows_.size();
  while (remaining_flows > 0) {
    // Tightest constraint this round.
    double bound = std::numeric_limits<double>::infinity();
    for (const auto& rs : state) {
      // Guard on the integer count, not weight_sum: subtractive updates of
      // tiny weights (1e-9 core-sec/byte) leave fp residue behind.
      if (rs.unfrozen > 0 && rs.weight_sum > 0.0) {
        bound = std::min(bound, std::max(0.0, rs.residual) / rs.weight_sum);
      }
    }
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (!frozen[f]) {
        bound = std::min(bound, flows_[f]->max_rate_);
      }
    }
    NM_CHECK(std::isfinite(bound), "unbounded fluid rate (flow with no finite constraint)");

    // Freeze every flow bound at `bound`: flows whose cap equals the bound,
    // plus all flows on resources whose share equals the bound.
    std::vector<bool> freeze_now(flows_.size(), false);
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (!frozen[f] && flows_[f]->max_rate_ <= bound * (1.0 + 1e-12)) {
        freeze_now[f] = true;
      }
    }
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].unfrozen == 0 || state[i].weight_sum <= 0.0) {
        continue;
      }
      const double share = std::max(0.0, state[i].residual) / state[i].weight_sum;
      if (share <= bound * (1.0 + 1e-12)) {
        for (std::size_t f = 0; f < flows_.size(); ++f) {
          if (!frozen[f]) {
            for (const auto& [idx, weight] : flow_res[f]) {
              if (idx == i) {
                freeze_now[f] = true;
              }
            }
          }
        }
      }
    }

    bool froze_any = false;
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (freeze_now[f] && !frozen[f]) {
        frozen[f] = true;
        froze_any = true;
        flows_[f]->rate_ = std::min(bound, flows_[f]->max_rate_);
        --remaining_flows;
        for (const auto& [idx, weight] : flow_res[f]) {
          state[idx].residual -= flows_[f]->rate_ * weight;
          state[idx].weight_sum -= weight;
          NM_CHECK(state[idx].unfrozen > 0, "fluid unfrozen-count underflow");
          --state[idx].unfrozen;
        }
      }
    }
    NM_CHECK(froze_any, "progressive filling made no progress");
  }
}

void FluidScheduler::schedule_next_completion() {
  double next = std::numeric_limits<double>::infinity();
  for (const auto& flow : flows_) {
    if (flow->rate_ > 0.0) {
      next = std::min(next, flow->remaining_ / flow->rate_);
    }
  }
  if (!std::isfinite(next)) {
    return;  // nothing is progressing; a future rebalance will reschedule
  }
  const auto gen = generation_;
  // Round up to the next nanosecond tick so the completing rebalance runs
  // at-or-after the true completion instant (never an instant before, which
  // would strand sub-tick work).
  const auto delay_ns = static_cast<std::int64_t>(std::ceil(std::max(next, 0.0) * 1e9));
  sim_->post(Duration::nanos(std::max<std::int64_t>(delay_ns, 1)), [this, gen] {
    if (gen == generation_) {
      rebalance();
    }
  });
}

}  // namespace nm::sim
