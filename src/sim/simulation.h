// The discrete-event simulation kernel. Single-threaded, deterministic:
// pending resumptions are ordered by (simulated time, insertion sequence),
// so a given program always executes identically for a given seed.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/task.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace nm::sim {

class Event;

/// A joinable reference to a detached (spawned) task.
class TaskRef {
 public:
  TaskRef() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const;
  /// Awaitable: suspends until the task finishes. Safe to call after
  /// completion (returns immediately).
  [[nodiscard]] Event& completion() const;

 private:
  friend class Simulation;
  struct State;
  explicit TaskRef(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// Derives a deterministic, consumer-private random stream.
  [[nodiscard]] Rng make_rng(std::string_view stream_name) const {
    return Rng::stream(seed_, stream_name);
  }

  /// Schedules a plain callback after `delay`. The callback is stored
  /// inline in the queue entry (no heap allocation) and may be move-only,
  /// so it can own resources that must be released even if the simulation
  /// is destroyed before the entry fires.
  void post(Duration delay, EventCallback fn);
  /// Schedules a plain callback at the absolute instant `at` (must not be
  /// in the past). Open-loop workload generators use this to pin a
  /// pre-drawn arrival sequence to absolute wall-clock instants — far
  /// enough out, the entries park on the timer wheel, so a whole window of
  /// arrivals costs no near-term heap sifts.
  void post_at(TimePoint at, EventCallback fn);
  /// Schedules a coroutine resumption after `delay` (used by awaitables).
  void post_resume(Duration delay, std::coroutine_handle<> h);

  /// Starts `task` as a detached activity at the current time.
  TaskRef spawn(Task task, std::string name = {});

  /// Awaitable that suspends the current task for `d` of simulated time.
  [[nodiscard]] auto delay(Duration d) {
    struct Awaiter {
      Simulation& sim;
      Duration d;
      [[nodiscard]] bool await_ready() const noexcept { return d.is_zero(); }
      void await_suspend(std::coroutine_handle<> h) const { sim.post_resume(d, h); }
      void await_resume() const noexcept {}
    };
    NM_CHECK(!d.is_negative(), "cannot delay by negative duration " << d.count_nanos() << "ns");
    return Awaiter{*this, d};
  }

  /// Runs until the event queue is empty. Returns the final time.
  TimePoint run();
  /// Runs until `deadline` (events at exactly `deadline` are executed).
  TimePoint run_until(TimePoint deadline);
  TimePoint run_for(Duration d) { return run_until(now_ + d); }

  /// Registers a settle hook: a callback the kernel runs at the *end* of a
  /// simulated instant — after a settle was requested, just before the
  /// clock would advance past `now()` (or the queue drains). Lazily-settled
  /// models (the fluid SolvePool) use this to batch every same-instant
  /// dirty mark into one settle point instead of posting zero-delay events.
  /// Returns an id for remove_settle_hook(). Hooks run in registration
  /// order; they may post new events at `now()`, which then execute before
  /// time advances.
  std::uint64_t add_settle_hook(std::function<void()> hook);
  void remove_settle_hook(std::uint64_t id);
  /// Arms the settle hooks for the current instant. Idempotent; cleared
  /// once the hooks have run.
  void request_settle() { settle_requested_ = true; }

  /// Number of spawned tasks that have not yet finished. Tests use this to
  /// assert that scenarios quiesce (no deadlocked activity).
  [[nodiscard]] std::size_t live_task_count() const { return live_tasks_; }
  /// Number of pending queue entries (timers + ready resumptions),
  /// including far-future entries parked on the timer wheel.
  [[nodiscard]] std::size_t pending_event_count() const { return queue_.size() + wheel_count_; }

 private:
  friend struct Task::FinalAwaiter;

  static constexpr std::uint32_t kNoCallback = 0xffffffffU;

  /// Heap entry: a trivially-copyable 32-byte key. Callback payloads live
  /// in `callback_pool_` (referenced by `slot`), so heap sifts move plain
  /// PODs — no per-level type-erased relocation — and a callback is moved
  /// exactly once on post and once on pop.
  struct QueueEntry {
    TimePoint at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;  // resumption entries; null otherwise
    std::uint32_t slot;              // callback entries; kNoCallback otherwise
    bool operator>(const QueueEntry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void enqueue(TimePoint at, std::coroutine_handle<> h, EventCallback fn);
  void on_detached_done(std::uint64_t id, std::exception_ptr exception);
  bool step();  // runs due settle hooks + one queue entry; false when empty
  void dispatch_one();  // executes the front queue entry (queue non-empty)
  // Runs the settle hooks if a settle is pending and the current instant is
  // over (no queued entry at `now_`). Same-instant entries defer the settle
  // so all marks from one instant batch into a single hook invocation.
  void maybe_settle();
  void drain_destroy_list();
  QueueEntry pop_next();
  void heap_push(const QueueEntry& e);

  // ---- Hierarchical timer wheel -------------------------------------------
  //
  // Far-future entries (>= kWheelMinDelayNs from `now_`) are parked in a
  // three-level hashed wheel instead of the min-heap, so a large population
  // of distant timers (background-flow completion etas, WAN keepalives) does
  // not inflate every near-term heap sift from O(log n_near) to
  // O(log n_total). Level L buckets entries by bits [shift_L, shift_L+8) of
  // their absolute nanosecond deadline; deltas beyond the top level land in
  // a flat overflow list. Buckets are flushed lazily, on demand: before the
  // kernel inspects the heap front, sync_wheel() promotes every bucket whose
  // minimum deadline is <= the heap front (ties included), so the heap front
  // is always the true global minimum. Promoted entries keep their original
  // `seq`, and all entries of a given instant reach the heap before any of
  // them is popped, so the dispatch order remains the exact (at, seq) total
  // order — the wheel is invisible to simulation results. Bucket vectors,
  // the refile scratch, and the overflow list all retain capacity across
  // flushes, keeping the steady state allocation-free.
  static constexpr int kWheelLevels = 3;
  static constexpr std::size_t kWheelSlots = 256;  // per level; index mask 0xff
  // Level L holds deltas in [2^kWheelShift[L], 2^kWheelShift[L+1]) — roughly
  // [1ms, 268ms), [268ms, 69s), [69s, 4.9h); beyond that: overflow.
  static constexpr std::array<int, kWheelLevels + 1> kWheelShift = {20, 28, 36, 44};
  // Entries closer than this (~2.1ms) go straight to the heap: they are due
  // soon enough that parking + promoting would cost more than one sift.
  static constexpr std::int64_t kWheelMinDelayNs = std::int64_t{1} << 21;

  struct WheelBucket {
    std::vector<QueueEntry> entries;  // unordered; capacity retained
    TimePoint min_at = TimePoint::max();
  };

  // Files `e` into the wheel level matching `at - cursor_ns` (or the heap
  // when nearer than kWheelMinDelayNs, or overflow when beyond the top
  // level). `cursor_ns` is `now_` for fresh entries; refiles from a coarse
  // bucket use the bucket's own minimum so the due entry always reaches the
  // heap and refiled siblings spread by their distance from it (using `now_`
  // there could refile a wrapped entry back into its source bucket forever).
  void wheel_insert(const QueueEntry& e, std::int64_t cursor_ns);
  // Promotes due buckets until the heap front is the global minimum.
  void sync_wheel();
  // Flushes the bucket (or overflow list) holding `wheel_min_at_`.
  void flush_min_bucket();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t seed_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_task_id_ = 1;
  // Min-heap on (at, seq), maintained by hand with push_heap/pop_heap
  // (std::priority_queue::top() returns a const reference, which cannot
  // hand ownership of a move-only callback to step()). Pop order — and
  // therefore execution order — is the total order (at, seq) regardless of
  // internal heap layout, so determinism is unaffected.
  std::vector<QueueEntry> queue_;
  // Slab of pending callbacks, free-listed; slots are recycled so the
  // steady state allocates nothing. Destroying the simulation destroys
  // pending callbacks here, releasing whatever they still own.
  std::vector<EventCallback> callback_pool_;
  std::vector<std::uint32_t> free_callback_slots_;

  // Timer-wheel state. `wheel_count_` counts entries parked in buckets plus
  // the overflow list; `wheel_min_at_` caches the global minimum across all
  // bucket minima and `overflow_min_` (TimePoint::max() when empty) so the
  // hot-path sync check is a single comparison.
  std::array<WheelBucket, kWheelLevels * kWheelSlots> wheel_;
  std::vector<QueueEntry> overflow_;
  std::vector<QueueEntry> wheel_scratch_;  // refile staging; capacity retained
  // Indices of non-empty buckets, unordered. Min-finding and min-recompute
  // scan this list instead of all 768 buckets, so a sparsely-populated wheel
  // (the common case: one far completion eta per quiet component) costs O(1)
  // per flush rather than two 24KB sweeps.
  std::vector<std::uint32_t> active_buckets_;
  TimePoint overflow_min_ = TimePoint::max();
  TimePoint wheel_min_at_ = TimePoint::max();
  std::size_t wheel_count_ = 0;

  struct Detached;
  std::map<std::uint64_t, std::unique_ptr<Detached>> detached_;
  std::vector<std::coroutine_handle<>> destroy_list_;
  std::size_t live_tasks_ = 0;
  std::exception_ptr pending_exception_;

  std::vector<std::pair<std::uint64_t, std::function<void()>>> settle_hooks_;
  std::uint64_t next_settle_hook_id_ = 1;
  bool settle_requested_ = false;
};

/// A broadcast event. `set()` wakes every waiter; waiting on an already-set
/// event does not suspend. `reset()` re-arms it.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool is_set() const { return set_; }

  void set() {
    if (set_) {
      return;
    }
    set_ = true;
    auto tokens = std::move(waiters_);
    waiters_.clear();
    for (auto& tok : tokens) {
      if (!tok->fired) {
        tok->fired = true;
        tok->woken_by_event = true;
        sim_->post_resume(Duration::zero(), tok->handle);
      }
    }
  }

  void reset() { set_ = false; }

  /// Awaitable: suspend until set.
  [[nodiscard]] auto wait() {
    struct Awaiter {
      Event& ev;
      [[nodiscard]] bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        auto tok = std::make_shared<WaitToken>();
        tok->handle = h;
        ev.waiters_.push_back(std::move(tok));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Awaitable: suspend until set or until `timeout` elapses; resumes with
  /// true if the event fired, false on timeout.
  [[nodiscard]] auto wait_for(Duration timeout) {
    struct Awaiter {
      Event& ev;
      Duration timeout;
      std::shared_ptr<WaitToken> tok;
      [[nodiscard]] bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        tok = std::make_shared<WaitToken>();
        tok->handle = h;
        ev.waiters_.push_back(tok);
        ev.sim_->post(timeout, [tok = tok, sim = ev.sim_] {
          if (!tok->fired) {
            tok->fired = true;
            tok->woken_by_event = false;
            sim->post_resume(Duration::zero(), tok->handle);
          }
        });
      }
      [[nodiscard]] bool await_resume() const noexcept {
        return tok == nullptr || tok->woken_by_event;
      }
    };
    return Awaiter{*this, timeout, nullptr};
  }

 private:
  struct WaitToken {
    std::coroutine_handle<> handle;
    bool fired = false;
    bool woken_by_event = false;
  };

  Simulation* sim_;
  bool set_ = false;
  std::vector<std::shared_ptr<WaitToken>> waiters_;
};

}  // namespace nm::sim
