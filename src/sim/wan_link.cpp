#include "sim/wan_link.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace nm::sim {

WanLink::WanLink(Simulation& sim, FluidScheduler& side_a, FluidScheduler& side_b, std::string name,
                 WanLinkConfig config)
    : sim_(&sim),
      name_(std::move(name)),
      config_(std::move(config)),
      rtt_(config_.rtt),
      a_(side_a, "wan:" + name_ + ":a", config_.line_rate.bytes_per_second()),
      b_(side_b, "wan:" + name_ + ":b", config_.line_rate.bytes_per_second()) {
  NM_CHECK(&side_a != &side_b, "WAN link " << name_ << " endpoints must be in different domains");
  NM_CHECK(config_.loss >= 0.0 && config_.loss < 1.0,
           "WAN link " << name_ << " loss " << config_.loss << " outside [0, 1)");
  NM_CHECK(config_.mss_bytes > 0.0, "WAN link " << name_ << " needs a positive MSS");
  NM_CHECK(!config_.rtt.is_negative(), "WAN link " << name_ << " has a negative RTT");
  a_.set_cap_policy(this);
  b_.set_cap_policy(this);

  Duration prev = Duration::zero();
  for (std::size_t i = 0; i < config_.schedule.size(); ++i) {
    const WanLinkPhase& phase = config_.schedule[i];
    NM_CHECK(phase.at >= prev, "WAN link " << name_ << " schedule must be time-ordered");
    NM_CHECK(phase.capacity_factor >= 0.0,
             "WAN link " << name_ << " phase has a negative capacity factor");
    NM_CHECK(!phase.rtt.is_negative(), "WAN link " << name_ << " phase has a negative RTT");
    prev = phase.at;
    if (phase.at.is_zero()) {
      apply_phase(i);
    } else {
      sim_->post(phase.at, [this, i, alive = std::weak_ptr<bool>(alive_)] {
        if (alive.lock() != nullptr) {
          apply_phase(i);
        }
      });
    }
  }
}

WanLink::~WanLink() {
  a_.set_cap_policy(nullptr);
  b_.set_cap_policy(nullptr);
}

double WanLink::mathis_rate() const {
  if (config_.loss <= 0.0 || rtt_.is_zero()) {
    return std::numeric_limits<double>::infinity();
  }
  return config_.mss_bytes * std::sqrt(1.5 / config_.loss) / rtt_.to_seconds();
}

double WanLink::effective_rate() const {
  return std::min(config_.line_rate.bytes_per_second() * factor_, mathis_rate());
}

double WanLink::nominal_rate() const {
  return std::min(config_.line_rate.bytes_per_second(), mathis_rate());
}

void WanLink::inject_phase(double capacity_factor, Duration rtt) {
  NM_CHECK(capacity_factor >= 0.0,
           "WAN link " << name_ << " injected a negative capacity factor");
  NM_CHECK(!rtt.is_negative(), "WAN link " << name_ << " injected a negative RTT");
  apply(capacity_factor, rtt);
}

double WanLink::offer(const FluidResource& /*res*/, double weight, double fair_offer,
                      TimePoint /*now*/) {
  // fair_offer is in flow-rate units; the model rate is a wire rate, so a
  // share with weight w may progress at most effective_rate() / w. Taking
  // the min (never the model rate alone) keeps the exchange's fixed point
  // at or below the merged solver's rate, so an unimpaired link is exactly
  // the fair-share boundary pair.
  return std::min(fair_offer, effective_rate() / weight);
}

void WanLink::apply_phase(std::size_t index) {
  const WanLinkPhase& phase = config_.schedule[index];
  apply(phase.capacity_factor, phase.rtt);
}

void WanLink::apply(double capacity_factor, Duration rtt) {
  factor_ = capacity_factor;
  if (!rtt.is_zero()) {
    rtt_ = rtt;
  }
  // Republish through set_capacity on both endpoints even when only the RTT
  // moved: set_capacity unconditionally marks the owning components dirty,
  // so the settle at this instant re-folds every crossing boundary cap
  // against the new effective rate before any simulated time passes.
  const double cap = config_.line_rate.bytes_per_second() * factor_;
  a_.set_capacity(cap);
  b_.set_capacity(cap);
}

}  // namespace nm::sim
