// The guest operating system: consumes ACPI hotplug notifications
// (acpiphp), tracks which adapters are present, and exposes the driver
// stack (verbs for the passthrough HCA, virtio for the para-virtual NIC)
// plus the SymVirt hypercall used by libsymvirt.so inside MPI processes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/sync.h"
#include "sim/task.h"
#include "vmm/vm.h"

namespace nm::guest {

class GuestOs {
 public:
  /// Boots the guest OS on `vm`: starts the acpiphp task and scans the
  /// initially-present devices.
  explicit GuestOs(std::shared_ptr<vmm::Vm> vm);
  GuestOs(const GuestOs&) = delete;
  GuestOs& operator=(const GuestOs&) = delete;

  [[nodiscard]] vmm::Vm& vm() { return *vm_; }
  [[nodiscard]] sim::Simulation& simulation() { return vm_->simulation(); }

  // --- PCI device visibility (acpiphp-maintained) ------------------------
  /// Gate that is open while an InfiniBand HCA is plugged in.
  [[nodiscard]] sim::Gate& ib_present() { return ib_present_; }
  /// Gate that is open while a virtio NIC is plugged in.
  [[nodiscard]] sim::Gate& eth_present() { return eth_present_; }
  [[nodiscard]] vmm::VmDevice* ib_device();
  [[nodiscard]] vmm::VmDevice* eth_device();

  /// Every hotplug event acpiphp has processed (diagnostics & tests).
  [[nodiscard]] const std::vector<vmm::HotplugEvent>& hotplug_log() const {
    return hotplug_log_;
  }

  // --- Guest execution ----------------------------------------------------
  /// Runs guest work (respects VM pause and CPU contention).
  [[nodiscard]] sim::Task compute(double core_seconds) { return vm_->compute(core_seconds); }

  // --- SymVirt hypercalls -------------------------------------------------
  [[nodiscard]] sim::Task symvirt_wait() { return vm_->symvirt_wait(); }

 private:
  [[nodiscard]] sim::Task acpiphp_loop();
  void refresh_gates();

  std::shared_ptr<vmm::Vm> vm_;
  sim::Gate ib_present_;
  sim::Gate eth_present_;
  std::vector<vmm::HotplugEvent> hotplug_log_;
};

}  // namespace nm::guest
