#include "guestos/guest_os.h"

#include "util/log.h"

namespace nm::guest {

namespace {
constexpr std::string_view kIbKind = "ib-hca-passthrough";
constexpr std::string_view kEthKind = "virtio-net";
}  // namespace

GuestOs::GuestOs(std::shared_ptr<vmm::Vm> vm)
    : vm_(std::move(vm)),
      ib_present_(vm_->simulation(), /*initially_open=*/false),
      eth_present_(vm_->simulation(), /*initially_open=*/false) {
  refresh_gates();
  vm_->simulation().spawn(acpiphp_loop(), "acpiphp:" + vm_->name());
}

vmm::VmDevice* GuestOs::ib_device() { return vm_->find_device_by_kind(kIbKind); }
vmm::VmDevice* GuestOs::eth_device() { return vm_->find_device_by_kind(kEthKind); }

void GuestOs::refresh_gates() {
  if (ib_device() != nullptr) {
    ib_present_.open();
  } else {
    ib_present_.close();
  }
  if (eth_device() != nullptr) {
    eth_present_.open();
  } else {
    eth_present_.close();
  }
}

sim::Task GuestOs::acpiphp_loop() {
  // The guest's ACPI hotplug driver: reacts to add/remove notifications.
  // It can only run while the VM runs (a paused VM processes nothing) —
  // which is why SymVirt signals the VM back to life between the detach,
  // migrate, and re-attach windows (Fig 4).
  while (true) {
    auto event = co_await vm_->hotplug_events().recv();
    co_await vm_->run_gate().opened();
    hotplug_log_.push_back(event);
    NM_LOG_DEBUG("acpiphp") << vm_->name() << ": "
                            << (event.kind == vmm::HotplugEvent::Kind::kAdded ? "add" : "remove")
                            << " " << event.tag << " (" << event.device_kind << ")";
    refresh_gates();
  }
}

}  // namespace nm::guest
