// Guest network drivers. Both resolve their device through the guest OS at
// every call — after a recovery migration the HCA the guest sees is a new
// device instance (new LID, new QPN space), and resolving late is exactly
// what lets the MPI layer rebuild its transports without restart.
#pragma once

#include <cstdint>
#include <string_view>

#include "guestos/guest_os.h"
#include "net/fabric.h"
#include "net/ib_fabric.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::guest {

/// Common surface the MPI BTLs program against.
class NetworkDriver {
 public:
  explicit NetworkDriver(GuestOs& os) : os_(&os) {}
  virtual ~NetworkDriver() = default;
  NetworkDriver(const NetworkDriver&) = delete;
  NetworkDriver& operator=(const NetworkDriver&) = delete;

  [[nodiscard]] virtual std::string_view transport_name() const = 0;
  /// Device plugged in and link trained?
  [[nodiscard]] virtual bool ready() const = 0;
  /// Device merely present (may still be training)?
  [[nodiscard]] virtual bool present() const = 0;
  /// Current fabric address (LID / IP); kInvalidAddress when not attached.
  [[nodiscard]] virtual net::FabricAddress address() const = 0;
  /// Waits (polling, like a real link watcher) until ready().
  [[nodiscard]] sim::Task wait_ready();
  /// Moves `bytes` to `dst`. Requires ready().
  [[nodiscard]] virtual sim::Task send(net::FabricAddress dst, Bytes bytes) = 0;

 protected:
  [[nodiscard]] GuestOs& os() { return *os_; }
  [[nodiscard]] const GuestOs& os() const { return *os_; }

 private:
  GuestOs* os_;
};

/// OFED-style verbs driver for the VMM-bypass HCA.
class IbVerbsDriver final : public NetworkDriver {
 public:
  explicit IbVerbsDriver(GuestOs& os) : NetworkDriver(os) {}

  [[nodiscard]] std::string_view transport_name() const override { return "openib"; }
  [[nodiscard]] bool present() const override;
  [[nodiscard]] bool ready() const override;
  [[nodiscard]] net::FabricAddress address() const override;

  /// Allocates a queue pair on the current HCA (requires ready()).
  [[nodiscard]] net::IbFabric::QueuePair create_queue_pair();
  /// Releases all QPs (Open MPI CRS pre-checkpoint resource teardown).
  void release_resources();
  [[nodiscard]] std::size_t queue_pair_count() const;

  [[nodiscard]] sim::Task send(net::FabricAddress dst, Bytes bytes) override;

 private:
  [[nodiscard]] vmm::IbHcaPassthroughDevice* device() const;
};

/// virtio_net driver: TCP/IP over the para-virtual NIC.
class VirtioNetDriver final : public NetworkDriver {
 public:
  explicit VirtioNetDriver(GuestOs& os) : NetworkDriver(os) {}

  [[nodiscard]] std::string_view transport_name() const override { return "tcp"; }
  [[nodiscard]] bool present() const override;
  [[nodiscard]] bool ready() const override;
  [[nodiscard]] net::FabricAddress address() const override;

  [[nodiscard]] sim::Task send(net::FabricAddress dst, Bytes bytes) override;

 private:
  [[nodiscard]] vmm::VirtioNetDevice* device() const;
};

}  // namespace nm::guest
