#include "guestos/drivers.h"

#include "util/error.h"

namespace nm::guest {

namespace {
/// Link watcher poll period. The guest really does poll the port state
/// (the paper observes the HCA stuck in "polling" during training).
constexpr Duration kLinkPoll = Duration::millis(100);
}  // namespace

sim::Task NetworkDriver::wait_ready() {
  while (!ready()) {
    co_await os_->simulation().delay(kLinkPoll);
  }
}

// --- IbVerbsDriver ---------------------------------------------------------

vmm::IbHcaPassthroughDevice* IbVerbsDriver::device() const {
  auto* dev = const_cast<GuestOs&>(os()).ib_device();
  return static_cast<vmm::IbHcaPassthroughDevice*>(dev);
}

bool IbVerbsDriver::present() const { return device() != nullptr; }

bool IbVerbsDriver::ready() const {
  auto* dev = device();
  return dev != nullptr && dev->attachment() != nullptr &&
         dev->attachment()->state() == net::LinkState::kActive;
}

net::FabricAddress IbVerbsDriver::address() const {
  auto* dev = device();
  if (dev == nullptr || dev->attachment() == nullptr) {
    return net::kInvalidAddress;
  }
  return dev->attachment()->address();
}

net::IbFabric::QueuePair IbVerbsDriver::create_queue_pair() {
  auto* dev = device();
  if (dev == nullptr) {
    throw OperationError("verbs: no HCA present in " + os().vm().name());
  }
  return dev->ib_fabric().create_queue_pair(dev->attachment());
}

void IbVerbsDriver::release_resources() {
  auto* dev = device();
  if (dev != nullptr && dev->attachment() != nullptr) {
    dev->ib_fabric().destroy_queue_pairs(dev->attachment());
  }
}

std::size_t IbVerbsDriver::queue_pair_count() const {
  auto* dev = device();
  if (dev == nullptr || dev->attachment() == nullptr) {
    return 0;
  }
  return dev->ib_fabric().queue_pair_count(dev->attachment());
}

sim::Task IbVerbsDriver::send(net::FabricAddress dst, Bytes bytes) {
  auto* dev = device();
  if (dev == nullptr) {
    throw OperationError("verbs send: no HCA present in " + os().vm().name());
  }
  co_await dev->ib_fabric().rdma_transfer(dev->attachment(), dst, bytes);
}

// --- VirtioNetDriver ---------------------------------------------------------

vmm::VirtioNetDevice* VirtioNetDriver::device() const {
  auto* dev = const_cast<GuestOs&>(os()).eth_device();
  return static_cast<vmm::VirtioNetDevice*>(dev);
}

bool VirtioNetDriver::present() const { return device() != nullptr; }

bool VirtioNetDriver::ready() const {
  auto* dev = device();
  return dev != nullptr && dev->attachment() != nullptr &&
         dev->attachment()->state() == net::LinkState::kActive;
}

net::FabricAddress VirtioNetDriver::address() const {
  auto* dev = device();
  if (dev == nullptr || dev->attachment() == nullptr) {
    return net::kInvalidAddress;
  }
  return dev->attachment()->address();
}

sim::Task VirtioNetDriver::send(net::FabricAddress dst, Bytes bytes) {
  auto* dev = device();
  if (dev == nullptr) {
    throw OperationError("virtio send: no NIC present in " + os().vm().name());
  }
  co_await dev->fabric().transfer(dev->attachment(), dst, bytes, dev->transfer_options());
}

}  // namespace nm::guest
