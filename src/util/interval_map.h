// IntervalMap: a total map from a [0, size) integer domain to values, stored
// as maximal runs of equal values. Guest memory page classes and dirty-page
// logs are interval maps, which keeps 20 GiB guests cheap to model: cost is
// proportional to the number of distinct runs, not the number of pages.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "util/error.h"

namespace nm {

template <typename V>
class IntervalMap {
 public:
  using Key = std::uint64_t;

  struct Segment {
    Key lo;   // inclusive
    Key hi;   // exclusive
    V value;  // value over [lo, hi)
    [[nodiscard]] Key length() const { return hi - lo; }
    bool operator==(const Segment&) const = default;
  };

  IntervalMap(Key size, V initial) : size_(size) {
    NM_CHECK(size > 0, "interval map domain must be non-empty");
    runs_[0] = std::move(initial);
  }

  [[nodiscard]] Key size() const { return size_; }

  /// Value at a single key.
  [[nodiscard]] const V& at(Key k) const {
    NM_CHECK(k < size_, "key " << k << " out of domain [0," << size_ << ")");
    auto it = runs_.upper_bound(k);
    --it;
    return it->second;
  }

  /// Assigns `value` over [lo, hi). No-op for an empty range.
  void assign(Key lo, Key hi, const V& value) {
    NM_CHECK(lo <= hi && hi <= size_, "bad range [" << lo << "," << hi << ")");
    if (lo == hi) {
      return;
    }
    // Value that resumes at hi (captured before we erase anything).
    const V resume = at_internal(hi);
    // Ensure a run boundary exists at lo.
    auto it_lo = runs_.upper_bound(lo);
    --it_lo;
    if (it_lo->first < lo) {
      it_lo = runs_.emplace_hint(std::next(it_lo), lo, it_lo->second);
    }
    // Erase all run starts in [lo, hi).
    auto it_hi = runs_.lower_bound(hi);
    runs_.erase(it_lo, it_hi);
    // Insert the new run and the resume boundary.
    runs_[lo] = value;
    if (hi < size_) {
      runs_[hi] = resume;
    }
    coalesce_around(lo);
    if (hi < size_) {
      coalesce_around(hi);
    }
  }

  /// Applies `fn(old) -> new` to every run overlapping [lo, hi), splitting
  /// runs at the boundaries.
  void transform(Key lo, Key hi, const std::function<V(const V&)>& fn) {
    NM_CHECK(lo <= hi && hi <= size_, "bad range [" << lo << "," << hi << ")");
    if (lo == hi) {
      return;
    }
    std::vector<Segment> pieces;
    for_each_in(lo, hi, [&](Key s_lo, Key s_hi, const V& v) {
      pieces.push_back(Segment{s_lo, s_hi, fn(v)});
    });
    for (const auto& p : pieces) {
      assign(p.lo, p.hi, p.value);
    }
  }

  /// Visits each maximal run overlapping [lo, hi), clipped to the range.
  template <typename Fn>
  void for_each_in(Key lo, Key hi, Fn&& fn) const {
    NM_CHECK(lo <= hi && hi <= size_, "bad range [" << lo << "," << hi << ")");
    if (lo == hi) {
      return;
    }
    auto it = runs_.upper_bound(lo);
    --it;
    while (it != runs_.end() && it->first < hi) {
      auto next = std::next(it);
      const Key run_hi = next == runs_.end() ? size_ : next->first;
      fn(std::max(lo, it->first), std::min(hi, run_hi), it->second);
      it = next;
    }
  }

  /// Total length of keys in [lo, hi) whose value satisfies `pred`.
  template <typename Pred>
  [[nodiscard]] Key measure_where(Key lo, Key hi, Pred&& pred) const {
    Key total = 0;
    for_each_in(lo, hi, [&](Key s_lo, Key s_hi, const V& v) {
      if (pred(v)) {
        total += s_hi - s_lo;
      }
    });
    return total;
  }

  /// All maximal runs, in order. Mostly for tests and debugging.
  [[nodiscard]] std::vector<Segment> segments() const {
    std::vector<Segment> out;
    out.reserve(runs_.size());
    for_each_in(0, size_, [&](Key lo, Key hi, const V& v) { out.push_back(Segment{lo, hi, v}); });
    return out;
  }

  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }

  /// Invariant checker (used by property tests): runs cover [0, size) and
  /// adjacent runs hold distinct values.
  [[nodiscard]] bool invariants_hold() const {
    if (runs_.empty() || runs_.begin()->first != 0) {
      return false;
    }
    auto it = runs_.begin();
    for (auto next = std::next(it); next != runs_.end(); ++it, ++next) {
      if (next->first >= size_ || it->second == next->second) {
        return false;
      }
    }
    return true;
  }

 private:
  [[nodiscard]] const V& at_internal(Key k) const {
    // Like at(), but k == size_ is allowed and maps to the last run (the
    // value is only used when it will be re-inserted below size_).
    auto it = runs_.upper_bound(k == size_ ? size_ - 1 : k);
    --it;
    return it->second;
  }

  void coalesce_around(Key boundary) {
    auto it = runs_.find(boundary);
    if (it == runs_.end() || it == runs_.begin()) {
      return;
    }
    auto prev = std::prev(it);
    if (prev->second == it->second) {
      runs_.erase(it);
    }
  }

  Key size_;
  std::map<Key, V> runs_;
};

/// A set of integer keys in [0, size), stored as intervals. Used for dirty
/// page tracking.
class IntervalSet {
 public:
  using Key = std::uint64_t;
  struct Range {
    Key lo;
    Key hi;
    bool operator==(const Range&) const = default;
  };

  explicit IntervalSet(Key size) : map_(size, false) {}

  [[nodiscard]] Key size() const { return map_.size(); }
  void insert(Key lo, Key hi) { map_.assign(lo, hi, true); }
  void erase(Key lo, Key hi) { map_.assign(lo, hi, false); }
  void clear() { map_.assign(0, map_.size(), false); }
  [[nodiscard]] bool contains(Key k) const { return map_.at(k); }

  /// Number of set keys.
  [[nodiscard]] Key count() const {
    return map_.measure_where(0, map_.size(), [](bool b) { return b; });
  }
  [[nodiscard]] bool empty() const { return count() == 0; }

  /// Set ranges, in order.
  [[nodiscard]] std::vector<Range> ranges() const {
    std::vector<Range> out;
    map_.for_each_in(0, map_.size(), [&](Key lo, Key hi, bool v) {
      if (v) {
        out.push_back(Range{lo, hi});
      }
    });
    return out;
  }

  /// Removes and returns the first set range of at most `max_len` keys, or
  /// an empty range {0,0} if the set is empty. Drives migration scan loops.
  [[nodiscard]] Range pop_front(Key max_len) {
    const auto rs = ranges();
    if (rs.empty()) {
      return Range{0, 0};
    }
    Range r = rs.front();
    r.hi = std::min(r.hi, r.lo + max_len);
    map_.assign(r.lo, r.hi, false);
    return r;
  }

 private:
  IntervalMap<bool> map_;
};

}  // namespace nm
