#include "util/timeline.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace nm {

void Timeline::begin_span(std::string name, TimePoint at) {
  open_.push_back(Span{std::move(name), at, at});
}

void Timeline::end_span(const std::string& name, TimePoint at) {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->name == name) {
      Span span = *it;
      span.end = at;
      NM_CHECK(span.end >= span.begin, "span '" << name << "' ends before it begins");
      open_.erase(std::next(it).base());
      spans_.push_back(std::move(span));
      return;
    }
  }
  throw LogicError("no open span named '" + name + "'");
}

void Timeline::add_span(std::string name, TimePoint begin, TimePoint end) {
  NM_CHECK(end >= begin, "span '" << name << "' ends before it begins");
  spans_.push_back(Span{std::move(name), begin, end});
}

void Timeline::render(std::ostream& os, std::size_t width) const {
  if (spans_.empty()) {
    os << "(empty timeline)\n";
    return;
  }
  TimePoint lo = spans_.front().begin;
  TimePoint hi = spans_.front().end;
  std::size_t label_w = 0;
  for (const auto& span : spans_) {
    lo = std::min(lo, span.begin);
    hi = std::max(hi, span.end);
    label_w = std::max(label_w, span.name.size());
  }
  const double range = std::max((hi - lo).to_seconds(), 1e-9);
  for (const auto& span : spans_) {
    const auto begin_col = static_cast<std::size_t>((span.begin - lo).to_seconds() / range *
                                                    static_cast<double>(width));
    auto end_col = static_cast<std::size_t>((span.end - lo).to_seconds() / range *
                                            static_cast<double>(width));
    end_col = std::max(end_col, begin_col + 1);
    os << "  " << std::left << std::setw(static_cast<int>(label_w)) << span.name << " |"
       << std::string(begin_col, ' ') << std::string(end_col - begin_col, '#')
       << std::string(width > end_col ? width - end_col : 0, ' ') << "| "
       << std::fixed << std::setprecision(2) << span.length().to_seconds() << "s\n";
  }
  os << "  " << std::string(label_w, ' ') << "  t=" << std::fixed << std::setprecision(2)
     << lo.to_seconds() << "s" << std::string(width > 16 ? width - 16 : 0, ' ')
     << "t=" << hi.to_seconds() << "s\n";
}

std::string Timeline::to_string(std::size_t width) const {
  std::ostringstream os;
  render(os, width);
  return os.str();
}

}  // namespace nm
