// Minimal leveled logger. The simulation installs a time provider so every
// record is stamped with simulated (not wall-clock) time. Logging is off by
// default in tests and benches; examples turn it on for narration.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "util/units.h"

namespace nm {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Process-wide logging configuration. Single-threaded by design (the whole
/// simulator runs on one thread), so no synchronization is needed.
class Logger {
 public:
  using TimeProvider = std::function<TimePoint()>;
  using Sink = std::function<void(LogLevel, const std::string&)>;

  [[nodiscard]] static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// The active simulation registers itself here so records carry sim time.
  void set_time_provider(TimeProvider provider) { time_provider_ = std::move(provider); }
  void clear_time_provider() { time_provider_ = nullptr; }

  /// Redirect output (default: stderr). Used by tests to capture records.
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }

  void write(LogLevel level, std::string_view component, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
  TimeProvider time_provider_;
  Sink sink_;
};

namespace detail {
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() { Logger::instance().write(level_, component_, os_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace nm

#define NM_LOG(level, component)                      \
  if (!::nm::Logger::instance().enabled(level)) {     \
  } else                                              \
    ::nm::detail::LogStatement((level), (component))

#define NM_LOG_TRACE(component) NM_LOG(::nm::LogLevel::kTrace, component)
#define NM_LOG_DEBUG(component) NM_LOG(::nm::LogLevel::kDebug, component)
#define NM_LOG_INFO(component) NM_LOG(::nm::LogLevel::kInfo, component)
#define NM_LOG_WARN(component) NM_LOG(::nm::LogLevel::kWarn, component)
#define NM_LOG_ERROR(component) NM_LOG(::nm::LogLevel::kError, component)
