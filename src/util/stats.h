// Small statistics helpers for the benchmark harness and the
// request-serving workload layer. The paper reports "measured three times
// and the best is taken"; BestOf mirrors that. LatencyHistogram is the
// SLO-reporting primitive: fixed log-scale bins, so p50/p99/p999 come out
// of a bounded footprint without storing samples.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/units.h"

namespace nm {

/// Streaming accumulator: min / max / mean / population stddev.
///
/// Variance uses Welford's online recurrence, not E[x²]−E[x]². The naive
/// formula catastrophically cancels for large-offset samples: nanosecond
/// latencies sit near 1e9–1e12, so E[x²] ~ 1e24 has double granularity
/// ~1e8 and a genuine variance of a few units vanishes entirely (the old
/// code clamped the negative result to 0 and reported stddev = 0).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double min() const {
    NM_CHECK(n_ > 0, "min of empty accumulator");
    return min_;
  }
  [[nodiscard]] double max() const {
    NM_CHECK(n_ > 0, "max of empty accumulator");
    return max_;
  }
  [[nodiscard]] double mean() const {
    NM_CHECK(n_ > 0, "mean of empty accumulator");
    return mean_;
  }
  [[nodiscard]] double stddev() const {
    NM_CHECK(n_ > 0, "stddev of empty accumulator");
    return std::sqrt(std::max(0.0, m2_ / static_cast<double>(n_)));
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Σ (x − mean)² so far (Welford)
  double min_ = 0.0;
  double max_ = 0.0;
};

/// "Each value is measured N times and the best is taken" (paper §IV).
/// The paper's metrics are durations (smaller is better); throughput
/// benches (requests per second) must flip the direction or best() would
/// silently report the *worst* run.
class BestOf {
 public:
  enum class Direction { kSmallerIsBetter, kLargerIsBetter };

  explicit BestOf(Direction direction = Direction::kSmallerIsBetter)
      : direction_(direction) {}

  void add(double x) { values_.push_back(x); }
  [[nodiscard]] Direction direction() const { return direction_; }
  [[nodiscard]] double best() const {
    NM_CHECK(!values_.empty(), "best of zero runs");
    return direction_ == Direction::kSmallerIsBetter
               ? *std::min_element(values_.begin(), values_.end())
               : *std::max_element(values_.begin(), values_.end());
  }
  [[nodiscard]] double spread() const {
    NM_CHECK(!values_.empty(), "spread of zero runs");
    const auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
    return *hi - *lo;
  }
  [[nodiscard]] std::size_t count() const { return values_.size(); }

 private:
  Direction direction_;
  std::vector<double> values_;
};

/// Fixed-bin log-scale latency histogram (HdrHistogram-style bucketing):
/// nanosecond values land in 32 sub-buckets per power of two, so every bin
/// edge is exact in both directions (`bin_index`/`bin_floor` are inverse on
/// edges), relative bin width is ≤ 1/32 (~3.1%), and the footprint is a
/// fixed 1920-bin array regardless of sample count. Percentiles walk the
/// bins and report the containing bin's lower edge, which makes
/// `percentile(p)` monotone in p by construction. Merging is a plain
/// elementwise add, so it is associative and commutative bin-for-bin —
/// per-fleet or per-phase histograms can be combined in any order.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;  // 32
  /// Unit bins [0,32) + one 32-bin block per exponent 5..63.
  static constexpr std::size_t kBins = (64 - kSubBits + 1) * kSubBuckets;  // 1920

  /// Bin holding nanosecond value `ns`. Values below kSubBuckets get exact
  /// unit bins; above, the bin is (exponent block, top kSubBits mantissa
  /// bits below the leading one).
  [[nodiscard]] static constexpr std::size_t bin_index(std::uint64_t ns) {
    if (ns < kSubBuckets) {
      return static_cast<std::size_t>(ns);
    }
    const int exp = 63 - std::countl_zero(ns);
    const int shift = exp - kSubBits;
    return static_cast<std::size_t>(exp - kSubBits + 1) * kSubBuckets +
           static_cast<std::size_t>((ns >> shift) & (kSubBuckets - 1));
  }

  /// Smallest nanosecond value mapping to `bin` (the bin's lower edge):
  /// inverse of bin_index on bin edges.
  [[nodiscard]] static constexpr std::uint64_t bin_floor(std::size_t bin) {
    if (bin < kSubBuckets) {
      return bin;
    }
    const std::size_t block = bin / kSubBuckets;  // >= 1
    const std::uint64_t sub = bin % kSubBuckets;
    return (kSubBuckets + sub) << (block - 1);
  }

  void add(Duration latency) {
    add_nanos(latency.is_negative() ? 0ull
                                    : static_cast<std::uint64_t>(latency.count_nanos()));
  }

  void add_nanos(std::uint64_t ns) {
    ++counts_[bin_index(ns)];
    ++n_;
    sum_ns_ += ns;
    max_ns_ = std::max(max_ns_, ns);
    min_ns_ = n_ == 1 ? ns : std::min(min_ns_, ns);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] Duration max() const {
    NM_CHECK(n_ > 0, "max of empty histogram");
    return Duration::nanos(static_cast<std::int64_t>(max_ns_));
  }
  [[nodiscard]] Duration min() const {
    NM_CHECK(n_ > 0, "min of empty histogram");
    return Duration::nanos(static_cast<std::int64_t>(min_ns_));
  }
  [[nodiscard]] Duration mean() const {
    NM_CHECK(n_ > 0, "mean of empty histogram");
    return Duration::nanos(
        static_cast<std::int64_t>(sum_ns_ / static_cast<std::uint64_t>(n_)));
  }

  /// Quantile `q` in [0, 1]: the lower edge of the bin containing sample
  /// rank ceil(q·n) (rank clamped to [1, n]). p50/p99/p999 are
  /// percentile(0.5) / percentile(0.99) / percentile(0.999).
  [[nodiscard]] Duration percentile(double q) const {
    NM_CHECK(n_ > 0, "percentile of empty histogram");
    NM_CHECK(q >= 0.0 && q <= 1.0, "quantile " << q << " outside [0, 1]");
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(n_))));
    std::uint64_t seen = 0;
    for (std::size_t bin = 0; bin < kBins; ++bin) {
      seen += counts_[bin];
      if (seen >= rank) {
        return Duration::nanos(static_cast<std::int64_t>(bin_floor(bin)));
      }
    }
    return Duration::nanos(static_cast<std::int64_t>(max_ns_));  // unreachable
  }

  /// Elementwise accumulate; associative and commutative.
  void merge(const LatencyHistogram& other) {
    for (std::size_t bin = 0; bin < kBins; ++bin) {
      counts_[bin] += other.counts_[bin];
    }
    if (other.n_ > 0) {
      min_ns_ = n_ == 0 ? other.min_ns_ : std::min(min_ns_, other.min_ns_);
      max_ns_ = std::max(max_ns_, other.max_ns_);
    }
    n_ += other.n_;
    sum_ns_ += other.sum_ns_;
  }

  [[nodiscard]] std::uint64_t bin_count(std::size_t bin) const {
    NM_CHECK(bin < kBins, "bin " << bin << " out of range");
    return counts_[bin];
  }

  /// Deterministic FNV-1a fold of the full bin vector + moments; the
  /// worker-count bit-identity gates compare these across runs.
  [[nodiscard]] std::uint64_t digest(std::uint64_t h = 0xcbf29ce484222325ull) const {
    const auto fold = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffull;
        h *= 0x100000001b3ull;
      }
    };
    fold(n_);
    fold(sum_ns_);
    fold(max_ns_);
    for (std::size_t bin = 0; bin < kBins; ++bin) {
      if (counts_[bin] != 0) {
        fold(bin);
        fold(counts_[bin]);
      }
    }
    return h;
  }

 private:
  std::array<std::uint64_t, kBins> counts_{};
  std::size_t n_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace nm
