// Small statistics helpers for the benchmark harness. The paper reports
// "measured three times and the best is taken"; BestOf mirrors that.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/error.h"

namespace nm {

/// Streaming accumulator: min / max / mean / population stddev.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum_sq_ += x * x;
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double min() const {
    NM_CHECK(n_ > 0, "min of empty accumulator");
    return min_;
  }
  [[nodiscard]] double max() const {
    NM_CHECK(n_ > 0, "max of empty accumulator");
    return max_;
  }
  [[nodiscard]] double mean() const {
    NM_CHECK(n_ > 0, "mean of empty accumulator");
    return sum_ / static_cast<double>(n_);
  }
  [[nodiscard]] double stddev() const {
    NM_CHECK(n_ > 0, "stddev of empty accumulator");
    const double m = mean();
    const double var = std::max(0.0, sum_sq_ / static_cast<double>(n_) - m * m);
    return std::sqrt(var);
  }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// "Each value is measured N times and the best is taken" (paper §IV).
class BestOf {
 public:
  void add(double x) { values_.push_back(x); }
  [[nodiscard]] double best() const {
    NM_CHECK(!values_.empty(), "best of zero runs");
    return *std::min_element(values_.begin(), values_.end());
  }
  [[nodiscard]] double spread() const {
    NM_CHECK(!values_.empty(), "spread of zero runs");
    const auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
    return *hi - *lo;
  }
  [[nodiscard]] std::size_t count() const { return values_.size(); }

 private:
  std::vector<double> values_;
};

}  // namespace nm
