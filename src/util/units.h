// Strong unit types used throughout the simulator: simulated time, byte
// counts, and bandwidths. All simulated time is integral nanoseconds so
// that event ordering is exact and runs are bit-reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace nm {

/// A span of simulated time. Integral nanoseconds internally.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t v) { return Duration{v}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t v) { return Duration{v * 1'000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t v) { return Duration{v * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e9)};
  }
  [[nodiscard]] static constexpr Duration minutes(double v) { return seconds(v * 60.0); }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration infinite() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) / k)};
  }
  [[nodiscard]] constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock (nanoseconds since t=0).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  [[nodiscard]] static constexpr TimePoint from_nanos(std::int64_t ns) { return TimePoint{ns}; }
  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.count_nanos()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.count_nanos()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// A byte count. Strong type so API signatures are self-describing.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t b) : b_(b) {}

  [[nodiscard]] static constexpr Bytes kib(std::uint64_t v) { return Bytes{v * 1024ull}; }
  [[nodiscard]] static constexpr Bytes mib(std::uint64_t v) { return Bytes{v * 1024ull * 1024}; }
  [[nodiscard]] static constexpr Bytes gib(std::uint64_t v) {
    return Bytes{v * 1024ull * 1024 * 1024};
  }
  [[nodiscard]] static constexpr Bytes zero() { return Bytes{0}; }

  [[nodiscard]] constexpr std::uint64_t count() const { return b_; }
  [[nodiscard]] constexpr double to_gib() const {
    return static_cast<double>(b_) / (1024.0 * 1024.0 * 1024.0);
  }
  [[nodiscard]] constexpr double to_mib() const {
    return static_cast<double>(b_) / (1024.0 * 1024.0);
  }
  [[nodiscard]] constexpr bool is_zero() const { return b_ == 0; }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes operator+(Bytes o) const { return Bytes{b_ + o.b_}; }
  constexpr Bytes operator-(Bytes o) const { return Bytes{b_ >= o.b_ ? b_ - o.b_ : 0}; }
  constexpr Bytes& operator+=(Bytes o) {
    b_ += o.b_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    b_ = b_ >= o.b_ ? b_ - o.b_ : 0;
    return *this;
  }
  constexpr Bytes operator*(std::uint64_t k) const { return Bytes{b_ * k}; }
  constexpr Bytes operator/(std::uint64_t k) const { return Bytes{b_ / k}; }
  [[nodiscard]] constexpr double ratio(Bytes o) const {
    return static_cast<double>(b_) / static_cast<double>(o.b_);
  }

 private:
  std::uint64_t b_ = 0;
};

/// A data rate in bytes per second (floating point: rates are model
/// parameters, not event-ordering inputs).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bytes_per_sec(double v) { return Bandwidth{v}; }
  [[nodiscard]] static constexpr Bandwidth mib_per_sec(double v) {
    return Bandwidth{v * 1024.0 * 1024.0};
  }
  [[nodiscard]] static constexpr Bandwidth gib_per_sec(double v) {
    return Bandwidth{v * 1024.0 * 1024.0 * 1024.0};
  }
  /// Network-style gigabits per second (10^9 bits).
  [[nodiscard]] static constexpr Bandwidth gbps(double v) { return Bandwidth{v * 1e9 / 8.0}; }
  [[nodiscard]] static constexpr Bandwidth zero() { return Bandwidth{0.0}; }

  [[nodiscard]] constexpr double bytes_per_second() const { return bps_; }
  [[nodiscard]] constexpr double to_gbps() const { return bps_ * 8.0 / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ <= 0.0; }

  /// Time to move `n` bytes at this rate.
  [[nodiscard]] constexpr Duration transfer_time(Bytes n) const {
    return Duration::seconds(static_cast<double>(n.count()) / bps_);
  }
  /// Bytes moved in `d` at this rate.
  [[nodiscard]] constexpr Bytes bytes_in(Duration d) const {
    const double b = bps_ * d.to_seconds();
    return Bytes{b <= 0.0 ? 0ull : static_cast<std::uint64_t>(b)};
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;
  constexpr Bandwidth operator*(double k) const { return Bandwidth{bps_ * k}; }
  constexpr Bandwidth operator/(double k) const { return Bandwidth{bps_ / k}; }

 private:
  constexpr explicit Bandwidth(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

[[nodiscard]] constexpr Bandwidth min(Bandwidth a, Bandwidth b) { return a < b ? a : b; }

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);
std::ostream& operator<<(std::ostream& os, Bytes b);
std::ostream& operator<<(std::ostream& os, Bandwidth bw);

}  // namespace nm
