// ASCII rendering for the benchmark harness: aligned tables (Table I/II
// style) and horizontal stacked-bar charts (Figure 6/7/8 style).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nm {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` decimals.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// A horizontal stacked bar chart: one bar per row, one segment per series.
/// Mirrors the paper's stacked "overhead breakdown" figures in a terminal.
class StackedBarChart {
 public:
  StackedBarChart(std::string title, std::vector<std::string> series_names);

  void add_bar(std::string label, std::vector<double> segment_values);
  void set_unit(std::string unit) { unit_ = std::move(unit); }
  void set_width(std::size_t chars) { width_ = chars; }

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::string unit_ = "s";
  std::size_t width_ = 60;
  std::vector<std::string> series_;
  std::vector<std::pair<std::string, std::vector<double>>> bars_;
};

}  // namespace nm
