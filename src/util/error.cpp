#include "util/error.h"

namespace nm {

void throw_check_failure(const char* expr, const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw LogicError(os.str());
}

}  // namespace nm
