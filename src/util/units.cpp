#include "util/units.h"

#include <iomanip>

namespace nm {

std::ostream& operator<<(std::ostream& os, Duration d) {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(3) << d.to_seconds() << "s";
  os.flags(flags);
  return os;
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
  const auto flags = os.flags();
  os << "t=" << std::fixed << std::setprecision(3) << t.to_seconds() << "s";
  os.flags(flags);
  return os;
}

std::ostream& operator<<(std::ostream& os, Bytes b) {
  const auto flags = os.flags();
  if (b.count() >= 1024ull * 1024 * 1024) {
    os << std::fixed << std::setprecision(2) << b.to_gib() << "GiB";
  } else if (b.count() >= 1024ull * 1024) {
    os << std::fixed << std::setprecision(2) << b.to_mib() << "MiB";
  } else {
    os << b.count() << "B";
  }
  os.flags(flags);
  return os;
}

std::ostream& operator<<(std::ostream& os, Bandwidth bw) {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(2) << bw.to_gbps() << "Gbps";
  os.flags(flags);
  return os;
}

}  // namespace nm
