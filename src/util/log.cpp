#include "util/log.h"

#include <iomanip>
#include <iostream>

namespace nm {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component, const std::string& message) {
  if (!enabled(level)) {
    return;
  }
  std::ostringstream os;
  if (time_provider_) {
    os << "[" << std::fixed << std::setprecision(6) << time_provider_().to_seconds() << "s] ";
  }
  os << to_string(level) << " " << component << ": " << message;
  if (sink_) {
    sink_(level, os.str());
  } else {
    std::cerr << os.str() << "\n";
  }
}

}  // namespace nm
