// Minimal command-line argument parser for the bench/example binaries:
// `--key value`, `--key=value`, and boolean `--flag` forms, with typed
// accessors, defaults, and usage text. No external dependencies.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace nm {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv) {
    NM_CHECK(argc >= 1, "argv must contain the program name");
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        positional_.push_back(std::move(token));
        continue;
      }
      token.erase(0, 2);
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        values_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[token] = argv[++i];
      } else {
        values_[token] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] const std::string& program() const { return program_; }
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    try {
      return std::stol(it->second);
    } catch (const std::exception&) {
      throw LogicError("argument --" + key + " expects an integer, got '" + it->second + "'");
    }
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw LogicError("argument --" + key + " expects a number, got '" + it->second + "'");
    }
  }

  /// `--flag` or `--flag true|1` count as set; `--flag false|0` as unset.
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    return it->second.empty() || it->second == "1" || it->second == "true";
  }

  /// Renders a usage block from (name, description, default) rows.
  [[nodiscard]] static std::string usage(
      const std::string& program,
      const std::vector<std::array<std::string, 3>>& options) {
    std::ostringstream os;
    os << "usage: " << program << " [options]\n";
    for (const auto& [name, description, fallback] : options) {
      os << "  --" << name;
      if (!fallback.empty()) {
        os << " <" << fallback << ">";
      }
      os << "\n      " << description << "\n";
    }
    return os.str();
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace nm
