#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace nm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  NM_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  NM_CHECK(cells.size() == header_.size(),
           "row has " << cells.size() << " cells, expected " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << "\n";
  };
  auto print_rule = [&] {
    os << "+";
    for (const auto w : widths) {
      os << std::string(w + 2, '-') << "+";
    }
    os << "\n";
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

StackedBarChart::StackedBarChart(std::string title, std::vector<std::string> series_names)
    : title_(std::move(title)), series_(std::move(series_names)) {
  NM_CHECK(!series_.empty(), "chart needs at least one series");
}

void StackedBarChart::add_bar(std::string label, std::vector<double> segment_values) {
  NM_CHECK(segment_values.size() == series_.size(),
           "bar has " << segment_values.size() << " segments, expected " << series_.size());
  bars_.emplace_back(std::move(label), std::move(segment_values));
}

void StackedBarChart::render(std::ostream& os) const {
  static constexpr char kGlyphs[] = {'#', '=', ':', '.', '%', '+', '*', 'o'};
  os << title_ << "\n";
  os << "  legend:";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    os << "  [" << kGlyphs[s % sizeof(kGlyphs)] << "] " << series_[s];
  }
  os << "\n";

  double max_total = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, segs] : bars_) {
    max_total = std::max(max_total, std::accumulate(segs.begin(), segs.end(), 0.0));
    label_w = std::max(label_w, label.size());
  }
  if (max_total <= 0.0) {
    max_total = 1.0;
  }

  for (const auto& [label, segs] : bars_) {
    os << "  " << std::left << std::setw(static_cast<int>(label_w)) << label << " |";
    std::size_t drawn = 0;
    double running = 0.0;
    for (std::size_t s = 0; s < segs.size(); ++s) {
      running += segs[s];
      const auto target =
          static_cast<std::size_t>(running / max_total * static_cast<double>(width_) + 0.5);
      for (; drawn < target; ++drawn) {
        os << kGlyphs[s % sizeof(kGlyphs)];
      }
    }
    const double total = std::accumulate(segs.begin(), segs.end(), 0.0);
    os << " " << TextTable::num(total) << unit_ << " (";
    for (std::size_t s = 0; s < segs.size(); ++s) {
      os << (s == 0 ? "" : " + ") << TextTable::num(segs[s]);
    }
    os << ")\n";
  }
}

std::string StackedBarChart::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace nm
