// Deterministic random streams. Every consumer derives a named stream from
// the simulation seed, so adding a new random consumer never perturbs the
// draws seen by existing ones (important for reproducible experiments).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace nm {

/// SplitMix64: used to expand seeds into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a stream name, mixed into the seed.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// xoshiro256** — fast, high-quality, and fully deterministic across
/// platforms (unlike std::mt19937 + std::uniform distributions).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) {
      w = splitmix64(sm);
    }
  }

  /// Derives an independent stream for `name` from a base seed.
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::string_view name) {
    return Rng(seed ^ fnv1a(name));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  ///
  /// Lemire's nearly-divisionless bounded rejection (Lemire 2019, "Fast
  /// Random Integer Generation in an Interval"): multiply-shift maps a
  /// 64-bit draw onto [0, n) and the rare short low-product window is
  /// rejected, so every value is *exactly* equally likely. The previous
  /// `next_u64() % n` had modulo bias whenever n does not divide 2^64 —
  /// catastrophic for n near 2^64 (low residues were up to twice as
  /// likely), and a systematic skew for zipfian key sampling and any other
  /// bounded draw at a non-power-of-two n. NOTE: this changed the draw
  /// sequence of every stream that uses bounded draws (the raw next_u64
  /// streams are unchanged); see DESIGN.md §10 for the compatibility note.
  std::uint64_t next_below(std::uint64_t n) {
    __extension__ typedef unsigned __int128 U128;
    U128 m = static_cast<U128>(next_u64()) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = -n % n;  // (2^64 - n) mod n
      while (low < threshold) {
        m = static_cast<U128>(next_u64()) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  bool bernoulli(double p) { return next_double() < p; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nm
