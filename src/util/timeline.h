// Timeline: records named spans on the simulated clock and renders an
// ASCII Gantt chart — the observability surface for migration episodes
// (which phase ran when, what overlapped with what).
#pragma once

#include <algorithm>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.h"

namespace nm {

class Timeline {
 public:
  struct Span {
    std::string name;
    TimePoint begin;
    TimePoint end;
    [[nodiscard]] Duration length() const { return end - begin; }
  };

  /// Opens a span; close it with end_span (LIFO not required).
  void begin_span(std::string name, TimePoint at);
  /// Closes the most recent open span with this name.
  void end_span(const std::string& name, TimePoint at);
  /// Records an already-measured span.
  void add_span(std::string name, TimePoint begin, TimePoint end);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_count() const { return open_.size(); }

  /// ASCII Gantt: one row per span, proportional bars on a shared axis.
  void render(std::ostream& os, std::size_t width = 60) const;
  [[nodiscard]] std::string to_string(std::size_t width = 60) const;

 private:
  std::vector<Span> spans_;
  std::vector<Span> open_;
};

}  // namespace nm
