// Error handling: exceptions for unrecoverable modelling errors and check
// macros used at module boundaries. Simulation code is single-threaded, so
// throwing is always safe.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nm {

/// Base class for all ninjamig errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition or invariant of the simulation model was violated.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// An operation failed for a modelled (in-world) reason, e.g. a monitor
/// command was rejected or a migration precondition does not hold.
class OperationError : public Error {
 public:
  explicit OperationError(const std::string& what) : Error(what) {}
};

[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& msg);

namespace detail {
/// Builds the optional trailing message for NM_CHECK from stream-style args.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace nm

/// Always-on invariant check (models are cheap; never compiled out).
#define NM_CHECK(expr, msg_expr)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::nm::throw_check_failure(#expr, __FILE__, __LINE__,                   \
                                (::nm::detail::CheckMessage{} << msg_expr)   \
                                    .str());                                 \
    }                                                                        \
  } while (false)
