#include "plan/evacuation_planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace nm::plan {

double EdgeSpec::capacity_at(double t) const {
  double factor = 1.0;
  for (const EdgePhase& phase : schedule) {
    if (phase.at > t) {
      break;
    }
    factor = phase.capacity_factor;
  }
  return rate * factor;
}

std::vector<std::size_t> SiteGraph::route(std::size_t from, std::size_t to, double t) const {
  if (from == to || from >= sites.size() || to >= sites.size()) {
    return {};
  }
  // BFS with parent-edge recording; neighbours are visited in edge-index
  // order so the first shortest path found is deterministic.
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent_edge(sites.size(), kUnvisited);
  std::vector<std::size_t> frontier{from};
  std::vector<bool> seen(sites.size(), false);
  seen[from] = true;
  while (!frontier.empty() && !seen[to]) {
    std::vector<std::size_t> next;
    for (std::size_t site : frontier) {
      for (std::size_t e = 0; e < edges.size(); ++e) {
        const EdgeSpec& edge = edges[e];
        if (edge.capacity_at(t) <= 0.0) {
          continue;
        }
        std::size_t far = kUnvisited;
        if (edge.a == site) {
          far = edge.b;
        } else if (edge.b == site) {
          far = edge.a;
        } else {
          continue;
        }
        if (far >= sites.size() || seen[far]) {
          continue;
        }
        seen[far] = true;
        parent_edge[far] = e;
        next.push_back(far);
      }
    }
    frontier = std::move(next);
  }
  if (!seen[to]) {
    return {};
  }
  std::vector<std::size_t> hops;
  for (std::size_t site = to; site != from;) {
    std::size_t e = parent_edge[site];
    hops.push_back(e);
    site = edges[e].a == site ? edges[e].b : edges[e].a;
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

double SiteGraph::bottleneck(const std::vector<std::size_t>& route, double t) const {
  if (route.empty()) {
    return 0.0;
  }
  double rate = kNever;
  for (std::size_t e : route) {
    rate = std::min(rate, edges[e].capacity_at(t));
  }
  return rate;
}

SiteGraph SiteGraph::without_leaves() const {
  SiteGraph flat;
  flat.sites = sites;
  flat.edges = edges;
  std::vector<bool> leafy(sites.size(), false);
  std::vector<int> slots(sites.size(), 0);
  for (const LeafSpec& leaf : leaves) {
    if (leaf.site >= sites.size()) {
      continue;
    }
    leafy[leaf.site] = true;
    slots[leaf.site] += std::max(0, leaf.free_vm_slots);
  }
  for (std::size_t s = 0; s < flat.sites.size(); ++s) {
    if (leafy[s]) {
      flat.sites[s].free_vm_slots = slots[s];
    }
  }
  return flat;
}

double SiteGraph::next_phase_after(double t) const {
  double next = kNever;
  for (const EdgeSpec& edge : edges) {
    for (const EdgePhase& phase : edge.schedule) {
      if (phase.at > t) {
        next = std::min(next, phase.at);
        break;
      }
    }
  }
  return next;
}

EvacuationPlanner::EvacuationPlanner(SiteGraph graph, PlannerConfig config)
    : graph_(std::move(graph)), config_(config) {}

namespace {

double stream_duration(const VmToMove& vm, double rate, const PlannerConfig& config) {
  // Pre-copy interleaves page walks with sends chunk by chunk, so both
  // terms are serial per stream.
  return config.per_vm_setup + vm.scan_bytes / config.scan_rate + vm.bytes / rate;
}

/// Streams a leaf uplink can feed at the full per-stream rate; admitting
/// more would plan rates the fabric cannot realize, stretching blackouts.
int uplink_slots(double capacity, const PlannerConfig& config) {
  if (capacity <= 0.0) {
    return 0;
  }
  return std::max(1, static_cast<int>(capacity / config.stream_rate_cap));
}

/// Concurrent inbound streams a destination leaf accepts per wave.
int incast_slots(double capacity, const PlannerConfig& config) {
  if (capacity <= 0.0) {
    return 0;
  }
  return std::min(config.max_streams_per_dst_leaf,
                  std::max(1, static_cast<int>(capacity / config.stream_rate_cap)));
}

}  // namespace

std::vector<double> EvacuationPlanner::wave_rates(
    const std::vector<const std::vector<std::size_t>*>& routes,
    const std::vector<double>& edge_capacity) const {
  // Progressive filling: raise every unfrozen stream together; freeze the
  // streams crossing the first edge that saturates (or that hit the
  // per-stream cap). Same algorithm as the fluid solver's reference,
  // specialised to unit weights.
  const std::size_t n = routes.size();
  std::vector<double> rate(n, 0.0);
  std::vector<bool> frozen(n, false);
  std::vector<double> residual = edge_capacity;
  std::size_t active = n;
  for (;;) {
    // Freeze streams that cannot grow: at the per-stream cap, over a
    // saturated (or dead) edge, or with no route at all.
    for (std::size_t s = 0; s < n; ++s) {
      if (frozen[s]) {
        continue;
      }
      bool done = rate[s] >= config_.stream_rate_cap - 1e-9 || routes[s]->empty();
      for (std::size_t e : *routes[s]) {
        if (residual[e] <= 1e-9) {
          done = true;
          break;
        }
      }
      if (done) {
        frozen[s] = true;
        --active;
      }
    }
    if (active == 0) {
      break;
    }
    // Smallest headroom over any edge with unfrozen streams, in fair-share
    // terms, and the smallest remaining distance to the per-stream cap.
    double step = kNever;
    for (std::size_t e = 0; e < residual.size(); ++e) {
      int users = 0;
      for (std::size_t s = 0; s < n; ++s) {
        if (!frozen[s] &&
            std::find(routes[s]->begin(), routes[s]->end(), e) != routes[s]->end()) {
          ++users;
        }
      }
      if (users > 0) {
        step = std::min(step, residual[e] / users);
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (!frozen[s]) {
        step = std::min(step, config_.stream_rate_cap - rate[s]);
      }
    }
    if (!(step > 0.0) || step == kNever) {
      break;
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (frozen[s]) {
        continue;
      }
      rate[s] += step;
      for (std::size_t e : *routes[s]) {
        residual[e] -= step;
      }
    }
  }
  return rate;
}

std::vector<double> EvacuationPlanner::wave_rates(
    const std::vector<const std::vector<std::size_t>*>& routes,
    const std::vector<double>& edge_capacity, const std::vector<std::size_t>& stream_src_leaf,
    const std::vector<std::size_t>& stream_dst_leaf,
    const std::vector<double>& leaf_uplink_capacity,
    const std::vector<double>& leaf_downlink_capacity) const {
  // Extend the capacity space: WAN edges, then one uplink and one downlink
  // entry per leaf, and run the same progressive filling over it.
  const std::size_t n_edges = edge_capacity.size();
  const std::size_t n_leaves = leaf_uplink_capacity.size();
  std::vector<double> caps = edge_capacity;
  caps.insert(caps.end(), leaf_uplink_capacity.begin(), leaf_uplink_capacity.end());
  caps.insert(caps.end(), leaf_downlink_capacity.begin(), leaf_downlink_capacity.end());
  std::vector<std::vector<std::size_t>> ext(routes.size());
  std::vector<const std::vector<std::size_t>*> ptrs(routes.size());
  for (std::size_t s = 0; s < routes.size(); ++s) {
    ext[s] = *routes[s];
    // A routeless stream stays routeless (rate 0) — leaf entries would
    // make it look schedulable.
    if (!ext[s].empty()) {
      if (s < stream_src_leaf.size() && stream_src_leaf[s] < n_leaves) {
        ext[s].push_back(n_edges + stream_src_leaf[s]);
      }
      if (s < stream_dst_leaf.size() && stream_dst_leaf[s] < n_leaves) {
        ext[s].push_back(n_edges + n_leaves + stream_dst_leaf[s]);
      }
    }
    ptrs[s] = &ext[s];
  }
  return wave_rates(ptrs, caps);
}

Plan EvacuationPlanner::evaluate(std::size_t src_site, const std::vector<VmToMove>& vms,
                                 const Plan& shape, double now) const {
  const std::size_t n_leaves = graph_.leaves.size();
  Plan out;
  out.assignments.resize(vms.size());
  for (std::size_t i = 0; i < out.assignments.size(); ++i) {
    out.assignments[i].vm = i;
  }
  int max_wave = -1;
  for (const Assignment& a : shape.assignments) {
    max_wave = std::max(max_wave, a.wave);
  }
  std::vector<std::vector<std::size_t>> waves(static_cast<std::size_t>(max_wave + 1));
  for (std::size_t i = 0; i < shape.assignments.size() && i < vms.size(); ++i) {
    if (shape.assignments[i].wave >= 0) {
      waves[static_cast<std::size_t>(shape.assignments[i].wave)].push_back(i);
    } else {
      ++out.unscheduled;
    }
  }
  std::vector<std::vector<std::size_t>> site_leaves(graph_.sites.size());
  std::vector<int> leaf_slots_left(n_leaves, 0);
  std::vector<double> leaf_up(n_leaves, 0.0);
  std::vector<double> leaf_down(n_leaves, 0.0);
  for (std::size_t l = 0; l < n_leaves; ++l) {
    const LeafSpec& leaf = graph_.leaves[l];
    if (leaf.site < graph_.sites.size()) {
      site_leaves[leaf.site].push_back(l);
    }
    leaf_slots_left[l] = std::max(0, leaf.free_vm_slots);
    leaf_up[l] = std::max(0.0, leaf.uplink_rate);
    leaf_down[l] = std::max(0.0, leaf.downlink_rate);
  }

  double t = now;
  int w_out = 0;
  for (const std::vector<std::size_t>& members : waves) {
    std::vector<double> caps(graph_.edges.size());
    for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
      caps[e] = graph_.edges[e].capacity_at(t);
    }
    std::vector<std::size_t> admitted;
    for (std::size_t i : members) {
      Assignment& a = out.assignments[i];
      const std::size_t s = shape.assignments[i].dst_site;
      std::vector<std::size_t> r;
      if (s < graph_.sites.size() && s != src_site) {
        r = graph_.route(src_site, s, t);
      }
      std::size_t dl = kNoLeaf;
      if (!r.empty() && !site_leaves[s].empty()) {
        // A topology-blind driver places on the emptiest host, which
        // lands on the leaf with the most free slots (ties: lowest index).
        for (std::size_t l : site_leaves[s]) {
          if (leaf_slots_left[l] > 0 && (dl == kNoLeaf || leaf_slots_left[l] > leaf_slots_left[dl])) {
            dl = l;
          }
        }
        if (dl == kNoLeaf) {
          r.clear();
        }
      }
      if (r.empty()) {
        a.wave = -1;
        ++out.unscheduled;
        continue;
      }
      if (dl != kNoLeaf) {
        --leaf_slots_left[dl];
      }
      a.dst_site = s;
      a.dst_leaf = dl;
      a.route_edges = std::move(r);
      admitted.push_back(i);
    }
    if (admitted.empty()) {
      continue;
    }
    std::vector<const std::vector<std::size_t>*> routes;
    std::vector<std::size_t> src_leaves;
    std::vector<std::size_t> dst_leaves;
    routes.reserve(admitted.size());
    for (std::size_t i : admitted) {
      routes.push_back(&out.assignments[i].route_edges);
      src_leaves.push_back(vms[i].src_leaf < n_leaves ? vms[i].src_leaf : kNoLeaf);
      dst_leaves.push_back(out.assignments[i].dst_leaf);
    }
    std::vector<double> rates =
        n_leaves > 0 ? wave_rates(routes, caps, src_leaves, dst_leaves, leaf_up, leaf_down)
                     : wave_rates(routes, caps);
    double wave_end = t;
    bool any = false;
    for (std::size_t k = 0; k < admitted.size(); ++k) {
      Assignment& a = out.assignments[admitted[k]];
      if (rates[k] <= 0.0) {
        // Unrealizable at this instant (a dead leaf or edge on the path):
        // the shape cannot schedule this VM — count it out instead of
        // letting an infinite finish poison the comparison.
        if (a.dst_leaf != kNoLeaf) {
          ++leaf_slots_left[a.dst_leaf];
        }
        a.wave = -1;
        a.route_edges.clear();
        a.dst_leaf = kNoLeaf;
        ++out.unscheduled;
        continue;
      }
      a.wave = w_out;
      a.planned_rate = rates[k];
      a.start = t;
      a.finish = t + stream_duration(vms[admitted[k]], rates[k], config_);
      wave_end = std::max(wave_end, a.finish);
      any = true;
    }
    if (!any) {
      continue;
    }
    ++w_out;
    t = wave_end;
    out.makespan = std::max(out.makespan, wave_end - now);
  }
  out.wave_count = w_out;
  return out;
}

Plan EvacuationPlanner::plan_sequential(std::size_t src_site, const std::vector<VmToMove>& vms,
                                        double now) const {
  Plan out;
  out.assignments.resize(vms.size());
  const std::size_t n_leaves = graph_.leaves.size();
  std::vector<std::vector<std::size_t>> site_leaves(graph_.sites.size());
  for (std::size_t l = 0; l < n_leaves; ++l) {
    if (graph_.leaves[l].site < graph_.sites.size()) {
      site_leaves[graph_.leaves[l].site].push_back(l);
    }
  }
  double t = now;
  int wave = 0;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    Assignment& a = out.assignments[i];
    a.vm = i;
    // First reachable site with a free slot, preferring the fastest drain.
    std::size_t best = graph_.sites.size();
    std::size_t best_leaf = kNoLeaf;
    std::vector<std::size_t> best_route;
    double best_rate = 0.0;
    double grant = t;
    std::vector<int> used(graph_.sites.size(), 0);
    std::vector<int> used_leaf(n_leaves, 0);
    for (std::size_t j = 0; j < i; ++j) {
      if (out.assignments[j].wave >= 0) {
        ++used[out.assignments[j].dst_site];
        if (out.assignments[j].dst_leaf != kNoLeaf) {
          ++used_leaf[out.assignments[j].dst_leaf];
        }
      }
    }
    const std::size_t src_leaf = vms[i].src_leaf < n_leaves ? vms[i].src_leaf : kNoLeaf;
    for (;;) {
      for (std::size_t s = 0; s < graph_.sites.size(); ++s) {
        if (s == src_site) {
          continue;
        }
        // A site with leaves intakes through them: the VM needs a leaf
        // with a free slot and pays that leaf's downlink on top of the
        // WAN bottleneck (one stream at a time, so no incast contention).
        std::size_t leaf = kNoLeaf;
        if (!site_leaves[s].empty()) {
          double leaf_down = 0.0;
          for (std::size_t l : site_leaves[s]) {
            if (graph_.leaves[l].free_vm_slots - used_leaf[l] <= 0) {
              continue;
            }
            if (leaf == kNoLeaf || graph_.leaves[l].downlink_rate > leaf_down) {
              leaf = l;
              leaf_down = graph_.leaves[l].downlink_rate;
            }
          }
          if (leaf == kNoLeaf) {
            continue;
          }
        } else if (graph_.sites[s].free_vm_slots - used[s] <= 0) {
          continue;
        }
        std::vector<std::size_t> r = graph_.route(src_site, s, grant);
        double rate = std::min(graph_.bottleneck(r, grant), config_.stream_rate_cap);
        if (src_leaf != kNoLeaf) {
          rate = std::min(rate, graph_.leaves[src_leaf].uplink_rate);
        }
        if (leaf != kNoLeaf) {
          rate = std::min(rate, graph_.leaves[leaf].downlink_rate);
        }
        if (!r.empty() && rate > best_rate) {
          best = s;
          best_leaf = leaf;
          best_route = std::move(r);
          best_rate = rate;
        }
      }
      if (best < graph_.sites.size()) {
        break;
      }
      grant = graph_.next_phase_after(grant);
      if (grant == kNever) {
        break;
      }
    }
    if (best >= graph_.sites.size()) {
      ++out.unscheduled;
      continue;
    }
    a.dst_site = best;
    a.dst_leaf = best_leaf;
    a.route_edges = std::move(best_route);
    a.wave = wave++;
    a.planned_rate = best_rate;
    a.start = grant;
    a.finish = grant + stream_duration(vms[i], best_rate, config_);
    t = a.finish;
    out.makespan = std::max(out.makespan, a.finish - now);
  }
  out.wave_count = wave;
  return out;
}

Plan EvacuationPlanner::plan_batched(std::size_t src_site, const std::vector<VmToMove>& vms,
                                     double now) const {
  const std::size_t n_sites = graph_.sites.size();
  Plan out;
  out.assignments.resize(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i) {
    out.assignments[i].vm = i;
  }

  const std::size_t n_leaves = graph_.leaves.size();
  std::vector<std::vector<std::size_t>> site_leaves(n_sites);
  std::vector<int> leaf_slots_left(n_leaves, 0);
  for (std::size_t l = 0; l < n_leaves; ++l) {
    if (graph_.leaves[l].site < n_sites) {
      site_leaves[graph_.leaves[l].site].push_back(l);
    }
    leaf_slots_left[l] = std::max(0, graph_.leaves[l].free_vm_slots);
  }

  // --- 1. Destination selection: LPT list scheduling on drain speed. ---
  // A site's drain speed approximates how fast it can absorb load:
  // bottleneck of its route from the source, widened by the streams the
  // edge slot policy would admit, capped per stream — and, for a site with
  // leaves, never more than its aggregate leaf downlink intake.
  std::vector<double> speed(n_sites, 0.0);
  std::vector<int> slots_left(n_sites, 0);
  for (std::size_t s = 0; s < n_sites; ++s) {
    if (s == src_site) {
      continue;
    }
    std::vector<std::size_t> r = graph_.route(src_site, s, now);
    double bw = graph_.bottleneck(r, now);
    if (r.empty() || bw <= 0.0) {
      continue;
    }
    int streams = std::clamp(static_cast<int>(bw / config_.min_stream_rate), 1,
                             config_.max_streams_per_edge);
    speed[s] = std::min(bw, config_.stream_rate_cap * streams);
    if (!site_leaves[s].empty()) {
      int leaf_slots = 0;
      double down = 0.0;
      for (std::size_t l : site_leaves[s]) {
        // Slots behind a dead downlink are not admissible — counting them
        // would strand VMs on a site the waves can never drain into.
        if (incast_slots(graph_.leaves[l].downlink_rate, config_) > 0) {
          leaf_slots += leaf_slots_left[l];
        }
        down += std::max(0.0, graph_.leaves[l].downlink_rate);
      }
      speed[s] = std::min(speed[s], down);
      slots_left[s] = leaf_slots;
    } else {
      slots_left[s] = std::max(0, graph_.sites[s].free_vm_slots);
    }
  }

  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t lhs, std::size_t rhs) {
    return vms[lhs].bytes > vms[rhs].bytes;
  });

  std::vector<double> load(n_sites, 0.0);
  std::vector<std::size_t> pending;
  for (std::size_t i : order) {
    std::size_t best = n_sites;
    double best_finish = kNever;
    for (std::size_t s = 0; s < n_sites; ++s) {
      if (speed[s] <= 0.0 || slots_left[s] <= 0) {
        continue;
      }
      double finish = (load[s] + vms[i].bytes) / speed[s];
      if (finish < best_finish) {
        best_finish = finish;
        best = s;
      }
    }
    if (best == n_sites) {
      out.assignments[i].wave = -1;
      ++out.unscheduled;
      continue;
    }
    out.assignments[i].dst_site = best;
    load[best] += vms[i].bytes;
    --slots_left[best];
    pending.push_back(i);
  }

  // --- 1b. Destination-swap pass: move a VM from the slowest-draining ---
  // site to the fastest when that lowers the max estimated finish
  // ("Simple Destination-Swap Strategies"). Slot counts stay legal because
  // a swap exchanges destinations and a shift consumes a tracked slot.
  if (config_.swap_pass && !pending.empty()) {
    for (std::size_t iter = 0; iter < pending.size(); ++iter) {
      std::size_t hot = n_sites;
      std::size_t cold = n_sites;
      double hot_finish = 0.0;
      double cold_finish = kNever;
      for (std::size_t s = 0; s < n_sites; ++s) {
        if (speed[s] <= 0.0) {
          continue;
        }
        double finish = load[s] / speed[s];
        if (finish > hot_finish) {
          hot_finish = finish;
          hot = s;
        }
        if (finish < cold_finish) {
          cold_finish = finish;
          cold = s;
        }
      }
      if (hot == n_sites || cold == n_sites || hot == cold) {
        break;
      }
      // Smallest VM on the hot site whose shift improves the pair's max.
      std::size_t move = vms.size();
      double move_bytes = kNever;
      for (std::size_t i : pending) {
        if (out.assignments[i].dst_site != hot) {
          continue;
        }
        double new_hot = (load[hot] - vms[i].bytes) / speed[hot];
        double new_cold = (load[cold] + vms[i].bytes) / speed[cold];
        if (std::max(new_hot, new_cold) < hot_finish - 1e-9 && vms[i].bytes < move_bytes) {
          move = i;
          move_bytes = vms[i].bytes;
        }
      }
      if (move == vms.size() || slots_left[cold] <= 0) {
        break;
      }
      load[hot] -= vms[move].bytes;
      load[cold] += vms[move].bytes;
      ++slots_left[hot];
      --slots_left[cold];
      out.assignments[move].dst_site = cold;
    }
  }

  // --- 2 + 3. Wave batching with max-min rate assignment. ---
  // Admission at grant time t: recompute each pending VM's route on the
  // live graph, cap streams per edge and per source host, assign max-min
  // rates, run the wave to its last finish, advance t.
  double t = now;
  int wave = 0;
  // Big VMs first within a destination, destinations round-robined so
  // every egress edge fills.
  std::stable_sort(pending.begin(), pending.end(), [&](std::size_t lhs, std::size_t rhs) {
    return vms[lhs].bytes > vms[rhs].bytes;
  });
  while (!pending.empty()) {
    std::vector<std::size_t> admitted;
    std::vector<int> edge_streams(graph_.edges.size(), 0);
    std::vector<int> host_streams;
    std::vector<int> edge_slots(graph_.edges.size(), 0);
    for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
      double cap = graph_.edges[e].capacity_at(t);
      edge_slots[e] =
          cap > 0.0 ? std::clamp(static_cast<int>(cap / config_.min_stream_rate), 1,
                                 config_.max_streams_per_edge)
                    : 0;
    }
    auto host_count = [&host_streams](std::size_t host) -> int& {
      if (host >= host_streams.size()) {
        host_streams.resize(host + 1, 0);
      }
      return host_streams[host];
    };
    // Per-wave leaf admission state: uplink slots per source leaf (streams
    // the rack can feed at full per-stream rate) and an incast cap per
    // destination leaf.
    std::vector<int> src_leaf_streams(n_leaves, 0);
    std::vector<int> src_leaf_slots(n_leaves, 0);
    std::vector<int> leaf_in_streams(n_leaves, 0);
    std::vector<int> leaf_in_slots(n_leaves, 0);
    for (std::size_t l = 0; l < n_leaves; ++l) {
      src_leaf_slots[l] = uplink_slots(graph_.leaves[l].uplink_rate, config_);
      leaf_in_slots[l] = incast_slots(graph_.leaves[l].downlink_rate, config_);
    }
    // Destination-leaf pick for one admitted stream to site s: spread
    // across pods first (fewest wave streams into the pod), then the
    // least-loaded leaf, then the most free slots.
    auto pick_dst_leaf = [&](std::size_t s) -> std::size_t {
      std::size_t best_leaf = kNoLeaf;
      int best_pod_load = 0;
      for (std::size_t l : site_leaves[s]) {
        if (leaf_slots_left[l] <= 0 || leaf_in_streams[l] >= leaf_in_slots[l]) {
          continue;
        }
        int pod_load = 0;
        for (std::size_t m : site_leaves[s]) {
          if (graph_.leaves[m].pod == graph_.leaves[l].pod) {
            pod_load += leaf_in_streams[m];
          }
        }
        const bool wins =
            best_leaf == kNoLeaf || pod_load < best_pod_load ||
            (pod_load == best_pod_load &&
             (leaf_in_streams[l] < leaf_in_streams[best_leaf] ||
              (leaf_in_streams[l] == leaf_in_streams[best_leaf] &&
               leaf_slots_left[l] > leaf_slots_left[best_leaf])));
        if (wins) {
          best_leaf = l;
          best_pod_load = pod_load;
        }
      }
      return best_leaf;
    };
    // The live route to a site is a function of (site, t) only — compute
    // each once per wave.
    std::vector<std::vector<std::size_t>> site_route(n_sites);
    for (std::size_t s = 0; s < n_sites; ++s) {
      if (s != src_site) {
        site_route[s] = graph_.route(src_site, s, t);
      }
    }
    // Round-robin across destination sites: repeatedly take the first
    // admissible pending VM of each site in turn until a full sweep admits
    // nothing.
    std::vector<bool> taken(pending.size(), false);
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t s = 0; s < n_sites; ++s) {
        for (std::size_t p = 0; p < pending.size(); ++p) {
          std::size_t i = pending[p];
          if (taken[p] || out.assignments[i].dst_site != s) {
            continue;
          }
          if (host_count(vms[i].src_host) >= config_.max_streams_per_src_host) {
            continue;
          }
          const std::size_t src_leaf = vms[i].src_leaf < n_leaves ? vms[i].src_leaf : kNoLeaf;
          if (src_leaf != kNoLeaf && src_leaf_streams[src_leaf] >= src_leaf_slots[src_leaf]) {
            continue;
          }
          const std::vector<std::size_t>& r = site_route[s];
          bool fits = !r.empty();
          for (std::size_t e : r) {
            if (edge_streams[e] >= edge_slots[e]) {
              fits = false;
              break;
            }
          }
          if (!fits) {
            continue;
          }
          std::size_t dst_leaf = kNoLeaf;
          if (!site_leaves[s].empty()) {
            dst_leaf = pick_dst_leaf(s);
            if (dst_leaf == kNoLeaf) {
              continue;  // every leaf full or incast-capped this wave
            }
          }
          out.assignments[i].route_edges = r;
          for (std::size_t e : out.assignments[i].route_edges) {
            ++edge_streams[e];
          }
          ++host_count(vms[i].src_host);
          if (src_leaf != kNoLeaf) {
            ++src_leaf_streams[src_leaf];
          }
          if (dst_leaf != kNoLeaf) {
            ++leaf_in_streams[dst_leaf];
            --leaf_slots_left[dst_leaf];
            out.assignments[i].dst_leaf = dst_leaf;
          }
          taken[p] = true;
          admitted.push_back(i);
          progress = true;
          break;  // next destination site
        }
      }
    }
    if (admitted.empty()) {
      // Nothing can start now: either every remaining destination is
      // unreachable at t, or the per-host/per-edge limits pin us — the
      // latter is impossible with an empty wave, so wait for the mesh.
      double next = graph_.next_phase_after(t);
      if (next == kNever) {
        for (std::size_t i : pending) {
          out.assignments[i].wave = -1;
          ++out.unscheduled;
        }
        break;
      }
      t = next;
      continue;
    }
    std::vector<const std::vector<std::size_t>*> routes;
    std::vector<double> caps(graph_.edges.size());
    for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
      caps[e] = graph_.edges[e].capacity_at(t);
    }
    routes.reserve(admitted.size());
    std::vector<std::size_t> src_leaves;
    std::vector<std::size_t> dst_leaves;
    for (std::size_t i : admitted) {
      routes.push_back(&out.assignments[i].route_edges);
      src_leaves.push_back(vms[i].src_leaf < n_leaves ? vms[i].src_leaf : kNoLeaf);
      dst_leaves.push_back(out.assignments[i].dst_leaf);
    }
    std::vector<double> rates;
    if (n_leaves > 0) {
      std::vector<double> leaf_up(n_leaves, 0.0);
      std::vector<double> leaf_down(n_leaves, 0.0);
      for (std::size_t l = 0; l < n_leaves; ++l) {
        leaf_up[l] = std::max(0.0, graph_.leaves[l].uplink_rate);
        leaf_down[l] = std::max(0.0, graph_.leaves[l].downlink_rate);
      }
      rates = wave_rates(routes, caps, src_leaves, dst_leaves, leaf_up, leaf_down);
    } else {
      rates = wave_rates(routes, caps);
    }
    double wave_end = t;
    for (std::size_t k = 0; k < admitted.size(); ++k) {
      Assignment& a = out.assignments[admitted[k]];
      a.wave = wave;
      a.planned_rate = rates[k];
      a.start = t;
      a.finish = t + stream_duration(vms[admitted[k]], rates[k], config_);
      wave_end = std::max(wave_end, a.finish);
    }
    ++wave;
    t = wave_end;
    out.makespan = std::max(out.makespan, wave_end - now);
    std::vector<std::size_t> still_pending;
    for (std::size_t p = 0; p < pending.size(); ++p) {
      if (!taken[p]) {
        still_pending.push_back(pending[p]);
      }
    }
    pending = std::move(still_pending);
  }
  out.wave_count = wave;
  return out;
}

bool EvacuationPlanner::better(const Plan& candidate, const Plan& incumbent) {
  if (candidate.unscheduled != incumbent.unscheduled) {
    return candidate.unscheduled < incumbent.unscheduled;
  }
  return candidate.makespan < incumbent.makespan;
}

Plan EvacuationPlanner::plan(std::size_t src_site, const std::vector<VmToMove>& vms,
                             double now) const {
  Plan best = plan_batched(src_site, vms, now);
  if (!graph_.leaves.empty()) {
    // Fold in what a topology-blind plan would actually cost on this
    // topology: re-cost the blind shapes with evaluate() so the returned
    // plan is never worse than executing the blind one (the property suite
    // pins this). The leaf-aware batching usually wins; these candidates
    // make it unconditional.
    EvacuationPlanner blind(graph_.without_leaves(), config_);
    Plan blind_batched = evaluate(src_site, vms, blind.plan_batched(src_site, vms, now), now);
    blind_batched.topology_blind = true;
    if (better(blind_batched, best)) {
      best = std::move(blind_batched);
    }
    Plan blind_seq = evaluate(src_site, vms, blind.plan_sequential(src_site, vms, now), now);
    blind_seq.topology_blind = true;
    blind_seq.sequential_fallback = true;
    if (better(blind_seq, best)) {
      best = std::move(blind_seq);
    }
  }
  Plan sequential = plan_sequential(src_site, vms, now);
  if (better(sequential, best)) {
    sequential.sequential_fallback = true;
    return sequential;
  }
  return best;
}

}  // namespace nm::plan
