// Mass-evacuation planning over an N-site WAN mesh (ROADMAP: "N-site
// federation + mass-evacuation planner"). The planner is pure arithmetic —
// no simulation types — so property tests can sweep hundreds of random
// site graphs per second and a driver (core::MassEvacuation) can re-invoke
// it mid-run when the mesh changes.
//
// Model: sites are vertices, WanLinks are capacitated edges (bytes/s, with
// an optional phase schedule scaling the capacity over time — factor 0 is
// a partition). A VM migration is one stream from the source site to a
// chosen destination site along a fewest-hops route; it consumes its
// planned rate on *every* edge of the route.
//
// Intra-site topology (optional): a site built on a net::ClosFabric
// additionally exposes its leaf switches as LeafSpecs — each an uplink
// capacity (egress toward the WAN) and a downlink capacity (ingress
// toward the hosts). A stream then also consumes its rate on the source
// VM's leaf uplink and the destination leaf's downlink; wave admission
// respects leaf-uplink stream slots and a destination-leaf incast limit,
// and destination leaves are spread across pods. When `leaves` is empty
// the planner behaves exactly as before (WAN edges only).
//
// The planner answers three questions, in the shapes studied by "Virtual
// Machine Migration Planning in Software-Defined Networks" (ordering and
// bandwidth-aware batching decide makespan) and "Simple Destination-Swap
// Strategies" (cheap placement heuristics + pairwise swaps):
//   1. destination selection — spread VMs over reachable sites with free
//      slots by longest-processing-time list scheduling on each site's
//      drain speed, then a bounded destination-swap pass;
//   2. batching — waves of concurrent streams, admission capped per edge
//      (stream slots = capacity / min_stream_rate) and per source host;
//   3. rates — max-min fair allocation of every wave's streams over the
//      edge capacities at grant time, each stream capped at the per-stream
//      ceiling. Feasibility invariant: the sum of planned rates crossing
//      an edge never exceeds that edge's capacity at wave grant time.
//
// plan() always computes the naive-sequential baseline too and returns it
// when batching cannot beat it, so `plan(...).makespan <=
// plan_sequential(...).makespan` holds unconditionally — the property
// tests pin this.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace nm::plan {

inline constexpr double kNever = std::numeric_limits<double>::infinity();
/// "No leaf": a flat site, or a VM whose source rack is unknown.
inline constexpr std::size_t kNoLeaf = static_cast<std::size_t>(-1);

/// One step of an edge's capacity schedule (mirrors sim::WanLinkPhase at
/// the planning layer). `at` is in seconds from plan origin.
struct EdgePhase {
  double at = 0.0;
  double capacity_factor = 1.0;
};

struct EdgeSpec {
  std::size_t a = 0;
  std::size_t b = 0;
  /// Effective edge rate at capacity factor 1, bytes/s (for a WanLink:
  /// line rate folded with the Mathis ceiling).
  double rate = 0.0;
  /// Time-varying capacity, ascending by `at`; factor 0 partitions the
  /// edge. Empty = constant `rate`.
  std::vector<EdgePhase> schedule;

  /// Capacity in effect at time `t` (factor of the latest phase with
  /// `phase.at <= t`; 1.0 before the first phase).
  [[nodiscard]] double capacity_at(double t) const;
};

struct SiteSpec {
  std::string name;
  /// VM slots this site can accept (0 for the evacuating source). For a
  /// site with leaves the planner uses the sum of its leaves' slots
  /// instead.
  int free_vm_slots = 0;
};

/// One leaf (top-of-rack) switch of a site's internal Clos fabric: the
/// planner sees it as two capacitated intra-site edges, an aggregate
/// uplink (toward the spine/WAN) and an aggregate downlink (toward the
/// hosts racked under it).
struct LeafSpec {
  std::string name;
  std::size_t site = 0;
  /// Pod grouping: destination selection spreads incast across pods.
  int pod = 0;
  /// Aggregate leaf->spine capacity, bytes/s; 0 = every uplink dead.
  double uplink_rate = 0.0;
  /// Aggregate spine->leaf capacity, bytes/s.
  double downlink_rate = 0.0;
  /// VM slots on hosts under this leaf (0 at the evacuating source).
  int free_vm_slots = 0;
};

struct SiteGraph {
  std::vector<SiteSpec> sites;
  std::vector<EdgeSpec> edges;
  /// Intra-site leaf switches, any order; empty = every site is flat.
  std::vector<LeafSpec> leaves;

  /// This graph with the leaf layer stripped: sites that had leaves get
  /// the sum of their leaves' slots as free_vm_slots. The topology-blind
  /// baseline plans against this view (and both plan() and the property
  /// suite must build it the same way — hence a member).
  [[nodiscard]] SiteGraph without_leaves() const;

  /// Fewest-hops route `from` -> `to` over edges alive at time `t`
  /// (capacity_at(t) > 0), as edge indices in traversal order. BFS visits
  /// neighbours in edge-index order, so the route is deterministic. Empty
  /// when from == to or unreachable.
  [[nodiscard]] std::vector<std::size_t> route(std::size_t from, std::size_t to,
                                               double t) const;
  /// min over the route's edges of capacity_at(t); 0 for an empty route.
  [[nodiscard]] double bottleneck(const std::vector<std::size_t>& route, double t) const;
  /// Earliest schedule event strictly after `t` on any edge (kNever when
  /// no edge changes again).
  [[nodiscard]] double next_phase_after(double t) const;
};

struct VmToMove {
  std::string name;
  /// Wire payload to move (bytes).
  double bytes = 0.0;
  /// Guest memory the migration thread must walk (scan-cost input).
  double scan_bytes = 0.0;
  /// Opaque source-host key; waves admit at most
  /// PlannerConfig::max_streams_per_src_host streams per key.
  std::size_t src_host = 0;
  /// Index into SiteGraph::leaves of the rack the VM drains through, or
  /// kNoLeaf when the source site is flat.
  std::size_t src_leaf = kNoLeaf;
};

struct PlannerConfig {
  /// Per-stream rate ceiling, bytes/s (the migration thread's CPU-bound
  /// TCP send rate by default).
  double stream_rate_cap = 162.5e6;
  /// Streams are not admitted onto an edge already carved into slots
  /// thinner than this (bytes/s): it bounds per-stream blackout time.
  double min_stream_rate = 4e6;
  int max_streams_per_edge = 8;
  int max_streams_per_src_host = 2;
  /// Fixed per-migration overhead, seconds (setup + handshake).
  double per_vm_setup = 0.2;
  /// Page-walk rate of the migration thread, bytes/s.
  double scan_rate = 734.0e6;
  /// Run the destination-swap refinement after list scheduling.
  bool swap_pass = true;
  /// Incast limit: concurrent inbound streams a wave may aim at one
  /// destination leaf (further tightened by the leaf's downlink capacity
  /// in stream_rate_cap units).
  int max_streams_per_dst_leaf = 4;
};

struct Assignment {
  std::size_t vm = 0;
  std::size_t dst_site = 0;
  std::vector<std::size_t> route_edges;
  /// -1 when the planner could not schedule the VM (no reachable site
  /// with a free slot at any plan-visible time).
  int wave = -1;
  double planned_rate = 0.0;
  /// Wave grant time and estimated completion, seconds from plan origin.
  double start = 0.0;
  double finish = 0.0;
  /// Destination leaf (index into SiteGraph::leaves) when the chosen site
  /// has leaves; kNoLeaf otherwise. The driver places the VM on a host
  /// racked under it.
  std::size_t dst_leaf = kNoLeaf;
};

struct Plan {
  /// Index-aligned with the input VM list; every VM appears exactly once.
  std::vector<Assignment> assignments;
  int wave_count = 0;
  /// Last estimated finish minus plan start time.
  double makespan = 0.0;
  std::size_t unscheduled = 0;
  /// True when the naive-sequential order beat batching and was returned.
  bool sequential_fallback = false;
  /// True when the returned plan is a re-costed topology-blind shape
  /// (evaluate() of a without_leaves() plan beat the leaf-aware batching):
  /// its rates respect every leaf capacity, but its admission ignores the
  /// leaf slot/incast limits and its re-routed waves may exceed the
  /// per-edge/per-host stream slots the batching would have enforced.
  bool topology_blind = false;
};

class EvacuationPlanner {
 public:
  explicit EvacuationPlanner(SiteGraph graph, PlannerConfig config = {});

  [[nodiscard]] const SiteGraph& graph() const { return graph_; }
  [[nodiscard]] const PlannerConfig& config() const { return config_; }

  /// Batched, capacity/swap-aware plan evacuating `vms` from `src_site`
  /// starting at time `now`. Guaranteed no worse than plan_sequential on
  /// both makespan and scheduled-VM count.
  [[nodiscard]] Plan plan(std::size_t src_site, const std::vector<VmToMove>& vms,
                          double now = 0.0) const;
  /// Naive baseline: one migration at a time, input order, full bottleneck
  /// rate each.
  [[nodiscard]] Plan plan_sequential(std::size_t src_site, const std::vector<VmToMove>& vms,
                                     double now = 0.0) const;

  /// Max-min fair rates for concurrent streams over shared edges: stream s
  /// takes one unit of every edge in `*routes[s]`, capacities in
  /// `edge_capacity` (indexed like graph().edges), every stream capped at
  /// stream_rate_cap. Drivers re-run this at wave grant time with the live
  /// capacities so the feasibility invariant holds against the *current*
  /// mesh, not the plan-time snapshot.
  [[nodiscard]] std::vector<double> wave_rates(
      const std::vector<const std::vector<std::size_t>*>& routes,
      const std::vector<double>& edge_capacity) const;

  /// Leaf-aware overload: stream s additionally takes one unit of leaf
  /// uplink `stream_src_leaf[s]` and leaf downlink `stream_dst_leaf[s]`
  /// (kNoLeaf entries skip the respective side). Capacities are indexed
  /// like graph().leaves.
  [[nodiscard]] std::vector<double> wave_rates(
      const std::vector<const std::vector<std::size_t>*>& routes,
      const std::vector<double>& edge_capacity,
      const std::vector<std::size_t>& stream_src_leaf,
      const std::vector<std::size_t>& stream_dst_leaf,
      const std::vector<double>& leaf_uplink_capacity,
      const std::vector<double>& leaf_downlink_capacity) const;

  /// Re-costs another plan's shape (wave membership + destination sites)
  /// under *this* planner's graph: routes are recomputed per wave,
  /// destination leaves are picked the way a topology-blind driver would
  /// (most free slots, lowest index — no pod spreading, no incast cap),
  /// and each wave's rates are re-run max-min against the full topology,
  /// leaf capacities included. This is what actually executing a
  /// topology-blind plan against a Clos site costs; plan() folds the
  /// evaluated blind candidates into its best-of so the topology-aware
  /// result is never worse (the property suite pins plan() <=
  /// evaluate(without_leaves() plan)).
  [[nodiscard]] Plan evaluate(std::size_t src_site, const std::vector<VmToMove>& vms,
                              const Plan& shape, double now = 0.0) const;

 private:
  [[nodiscard]] Plan plan_batched(std::size_t src_site, const std::vector<VmToMove>& vms,
                                  double now) const;
  /// True when `candidate` strictly beats `incumbent` (fewer unscheduled,
  /// or equal and a smaller makespan).
  [[nodiscard]] static bool better(const Plan& candidate, const Plan& incumbent);

  SiteGraph graph_;
  PlannerConfig config_;
};

}  // namespace nm::plan
