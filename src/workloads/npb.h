// NAS Parallel Benchmarks models (the paper runs NPB 3.3.1 class D with 64
// processes: BT, CG, FT, LU). Each kernel model preserves what matters for
// the Ninja experiments:
//   - the communication *pattern* (halo exchange, transpose+allreduce,
//     all-to-all, wavefront sweeps) and per-iteration volume, so collective
//     and p2p cost tracks the interconnect;
//   - the per-VM resident footprint (2.3-16 GB incompressible data — the
//     migration-time segment of Fig 7 scales with it);
//   - the iteration structure and a compute budget calibrated to class D
//     on the AGC blades, so per-iteration CR service points land like the
//     real library entries do.
#pragma once

#include <string>
#include <vector>

#include "core/job.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::workloads {

enum class NpbPattern {
  kHalo3d,      // BT, MG: structured nearest-neighbour face exchanges
  kTranspose,   // CG: partner exchanges + allreduce of dot products
  kAllToAll,    // FT, IS: global transpose / key exchange
  kWavefront,   // LU: many small pipelined sweeps
  kAllreduce,   // EP: pure compute + one small reduction per iteration
};

struct NpbSpec {
  std::string name;
  NpbPattern pattern = NpbPattern::kHalo3d;
  int iterations = 100;
  /// Single-rank compute per iteration (core-seconds), class D / 64 ranks.
  double compute_per_iter = 1.0;
  /// Per-rank communication volume per iteration.
  Bytes comm_bytes_per_iter = Bytes::mib(8);
  /// Messages per neighbour per iteration (wavefront uses many small ones).
  int messages_per_iter = 1;
  /// Resident incompressible data per VM (drives migration time, Fig 7).
  Bytes footprint_per_vm = Bytes::gib(4);
  /// Fraction of the footprint rewritten each iteration (dirty-page rate
  /// for live-migration ablations; Ninja freezes ranks so it mostly
  /// matters off the paper's happy path).
  double rewrite_fraction_per_iter = 0.05;
};

/// Class D @ 64-rank calibrations (see EXPERIMENTS.md for the mapping).
[[nodiscard]] NpbSpec npb_bt_class_d();
[[nodiscard]] NpbSpec npb_cg_class_d();
[[nodiscard]] NpbSpec npb_ft_class_d();
[[nodiscard]] NpbSpec npb_lu_class_d();
/// The four kernels the paper evaluates (Fig 7).
[[nodiscard]] std::vector<NpbSpec> npb_class_d_suite();

/// Extension kernels beyond the paper's selection.
[[nodiscard]] NpbSpec npb_ep_class_d();  // embarrassingly parallel
[[nodiscard]] NpbSpec npb_mg_class_d();  // multigrid V-cycles
[[nodiscard]] NpbSpec npb_is_class_d();  // integer sort (key all-to-all)
[[nodiscard]] std::vector<NpbSpec> npb_extended_suite();

struct NpbResult {
  Duration elapsed = Duration::zero();
  int iterations_done = 0;
};

/// Rank body for one kernel run.
[[nodiscard]] sim::Task run_npb_rank(core::MpiJob& job, mpi::RankId me, NpbSpec spec,
                                     NpbResult* result);

}  // namespace nm::workloads
