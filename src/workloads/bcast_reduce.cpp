#include "workloads/bcast_reduce.h"

namespace nm::workloads {

BcastReduceBench::BcastReduceBench(core::MpiJob& job, BcastReduceConfig config)
    : job_(&job),
      config_(config),
      per_rank_(Bytes(config.per_node_bytes.count() / job.config().ranks_per_vm)),
      step_done_(job.testbed().sim()) {
  iter_seconds_.reserve(static_cast<std::size_t>(config_.iterations));
}

sim::Task BcastReduceBench::run_rank(mpi::RankId me) {
  auto& sim = job_->testbed().sim();
  auto& rank = job_->runtime().rank(me);
  auto& vm = rank.vm();

  if (config_.touch_memory) {
    // Stage the payload buffers (incompressible application data).
    const auto local =
        static_cast<std::uint64_t>(me) % static_cast<std::uint64_t>(job_->config().ranks_per_vm);
    const Bytes base = vm.spec().base_os_footprint + Bytes(local * per_rank_.count());
    if (base + per_rank_ <= vm.spec().memory) {
      vm.memory().write_data(base, per_rank_);
    }
  }

  for (int i = 0; i < config_.iterations; ++i) {
    const TimePoint t0 = sim.now();
    co_await job_->world().bcast(me, /*root=*/0, per_rank_);
    co_await job_->world().reduce(me, /*root=*/0, per_rank_, config_.reduce_compute_per_byte);
    co_await job_->world().barrier(me);
    if (me == 0) {
      iter_seconds_.push_back((sim.now() - t0).to_seconds());
      completed_steps_ = i + 1;
      step_done_.notify_all();
    }
  }
}

sim::Task BcastReduceBench::wait_step(int step) {
  while (completed_steps_ < step) {
    co_await step_done_.wait();
  }
}

}  // namespace nm::workloads
