#include "workloads/npb.h"

#include <algorithm>

#include "util/error.h"

namespace nm::workloads {

// Calibration notes (EXPERIMENTS.md): iteration counts follow NPB 3.3.1
// class D; compute budgets are tuned so the baseline 64-rank totals land in
// the several-hundred-second range of Fig 7 on the modelled 2.53 GHz
// blades; footprints span the paper's quoted 2.3-16 GB per VM, with FT the
// largest (its class D arrays dominate).

NpbSpec npb_bt_class_d() {
  NpbSpec spec;
  spec.name = "BT";
  spec.pattern = NpbPattern::kHalo3d;
  spec.iterations = 250;
  spec.compute_per_iter = 3.4;
  spec.comm_bytes_per_iter = Bytes::mib(24);
  spec.messages_per_iter = 1;
  spec.footprint_per_vm = Bytes::gib(5);
  spec.rewrite_fraction_per_iter = 0.10;
  return spec;
}

NpbSpec npb_cg_class_d() {
  NpbSpec spec;
  spec.name = "CG";
  spec.pattern = NpbPattern::kTranspose;
  spec.iterations = 100;
  spec.compute_per_iter = 7.2;
  spec.comm_bytes_per_iter = Bytes::mib(48);
  spec.messages_per_iter = 2;
  spec.footprint_per_vm = Bytes(2470ull << 20);  // 2.3 GiB (paper's minimum)
  spec.rewrite_fraction_per_iter = 0.20;
  return spec;
}

NpbSpec npb_ft_class_d() {
  NpbSpec spec;
  spec.name = "FT";
  spec.pattern = NpbPattern::kAllToAll;
  spec.iterations = 25;
  spec.compute_per_iter = 20.0;
  spec.comm_bytes_per_iter = Bytes::mib(256);
  spec.messages_per_iter = 1;
  spec.footprint_per_vm = Bytes::gib(16);  // paper's maximum
  spec.rewrite_fraction_per_iter = 0.30;
  return spec;
}

NpbSpec npb_lu_class_d() {
  NpbSpec spec;
  spec.name = "LU";
  spec.pattern = NpbPattern::kWavefront;
  spec.iterations = 300;
  spec.compute_per_iter = 2.6;
  spec.comm_bytes_per_iter = Bytes::mib(6);
  spec.messages_per_iter = 8;  // pipelined sweep: many small messages
  spec.footprint_per_vm = Bytes((3800ull) << 20);  // ~3.7 GiB
  spec.rewrite_fraction_per_iter = 0.10;
  return spec;
}

std::vector<NpbSpec> npb_class_d_suite() {
  return {npb_bt_class_d(), npb_cg_class_d(), npb_ft_class_d(), npb_lu_class_d()};
}

NpbSpec npb_ep_class_d() {
  NpbSpec spec;
  spec.name = "EP";
  spec.pattern = NpbPattern::kAllreduce;
  spec.iterations = 20;
  spec.compute_per_iter = 14.0;  // random-number tables: pure compute
  spec.comm_bytes_per_iter = Bytes::kib(2);
  spec.messages_per_iter = 1;
  spec.footprint_per_vm = Bytes::mib(512);  // tiny footprint
  spec.rewrite_fraction_per_iter = 0.9;
  return spec;
}

NpbSpec npb_mg_class_d() {
  NpbSpec spec;
  spec.name = "MG";
  spec.pattern = NpbPattern::kHalo3d;
  spec.iterations = 50;
  spec.compute_per_iter = 5.5;
  spec.comm_bytes_per_iter = Bytes::mib(36);  // faces at several grid levels
  spec.messages_per_iter = 4;
  spec.footprint_per_vm = Bytes::gib(7);
  spec.rewrite_fraction_per_iter = 0.25;
  return spec;
}

NpbSpec npb_is_class_d() {
  NpbSpec spec;
  spec.name = "IS";
  spec.pattern = NpbPattern::kAllToAll;
  spec.iterations = 10;
  spec.compute_per_iter = 3.0;
  spec.comm_bytes_per_iter = Bytes::mib(320);  // bucket exchange dominates
  spec.messages_per_iter = 1;
  spec.footprint_per_vm = Bytes::gib(8);
  spec.rewrite_fraction_per_iter = 0.6;
  return spec;
}

std::vector<NpbSpec> npb_extended_suite() {
  auto suite = npb_class_d_suite();
  suite.push_back(npb_ep_class_d());
  suite.push_back(npb_mg_class_d());
  suite.push_back(npb_is_class_d());
  return suite;
}

namespace {

constexpr int kNpbTagBase = 100'000;

/// Stage the per-VM footprint once (first local rank on each VM).
void stage_footprint(core::MpiJob& job, mpi::RankId me, const NpbSpec& spec) {
  const auto rpv = static_cast<mpi::RankId>(job.config().ranks_per_vm);
  if (me % rpv != 0) {
    return;
  }
  auto& vm = job.runtime().rank(me).vm();
  const Bytes base = vm.spec().base_os_footprint;
  const Bytes fit = std::min(spec.footprint_per_vm, vm.spec().memory - base);
  vm.memory().write_data(base, fit);
}

/// Rewrite part of the footprint (iteration dirty behaviour).
void rewrite_working_set(core::MpiJob& job, mpi::RankId me, const NpbSpec& spec) {
  const auto rpv = static_cast<mpi::RankId>(job.config().ranks_per_vm);
  if (me % rpv != 0 || spec.rewrite_fraction_per_iter <= 0.0) {
    return;
  }
  auto& vm = job.runtime().rank(me).vm();
  const Bytes base = vm.spec().base_os_footprint;
  const Bytes fit = std::min(spec.footprint_per_vm, vm.spec().memory - base);
  const auto pages = (fit.count() / 4096);
  const auto rewrite_pages =
      static_cast<std::uint64_t>(static_cast<double>(pages) * spec.rewrite_fraction_per_iter);
  vm.memory().write_data(base, Bytes(rewrite_pages * 4096));
}

sim::Task exchange(core::MpiJob& job, mpi::RankId me, mpi::RankId peer, int tag, Bytes bytes) {
  // Symmetric exchange without blocking cycles: lower rank sends first;
  // delivery is buffered, so the pattern cannot deadlock.
  auto& rt = job.runtime();
  if (me < peer) {
    co_await rt.send(me, peer, tag, bytes);
    co_await rt.recv(me, peer, tag);
  } else {
    co_await rt.recv(me, peer, tag);
    co_await rt.send(me, peer, tag, bytes);
  }
}

sim::Task communicate(core::MpiJob& job, mpi::RankId me, const NpbSpec& spec, int iter) {
  auto& rt = job.runtime();
  const auto n = static_cast<mpi::RankId>(job.rank_count());
  const int tag = kNpbTagBase + (iter % 1000) * 64;

  switch (spec.pattern) {
    case NpbPattern::kHalo3d: {
      // 8x8 process grid; exchange faces with up to 4 neighbours. Like the
      // real code (isend to all, then waitall): post every send first —
      // delivery is buffered — then drain the matching receives, which is
      // ring-deadlock-free by construction.
      const mpi::RankId cols = (n % 8 == 0) ? 8 : n;
      const Bytes face = Bytes(spec.comm_bytes_per_iter.count() / 4);
      std::vector<mpi::RankId> peers;
      peers.push_back((me + 1) % n);
      if (n > 2) {
        peers.push_back((me - 1 + n) % n);
      }
      const mpi::RankId down = (me + cols) % n;
      const mpi::RankId up = (me - cols + n) % n;
      if (down != me && std::find(peers.begin(), peers.end(), down) == peers.end()) {
        peers.push_back(down);
      }
      if (up != me && up != down &&
          std::find(peers.begin(), peers.end(), up) == peers.end()) {
        peers.push_back(up);
      }
      for (const auto peer : peers) {
        co_await rt.send(me, peer, tag, face);
      }
      for (std::size_t k = 0; k < peers.size(); ++k) {
        co_await rt.recv(me, mpi::kAnySource, tag);
      }
      break;
    }
    case NpbPattern::kTranspose: {
      // CG: partner exchange across the transpose + dot-product allreduce.
      const mpi::RankId partner = me ^ 1;
      if (partner < n) {
        co_await exchange(job, me, partner, tag, spec.comm_bytes_per_iter);
      }
      co_await job.world().allreduce(me, Bytes::kib(64), 1e-10);
      break;
    }
    case NpbPattern::kAllToAll: {
      // FT global transpose: the communicator's pairwise-exchange
      // all-to-all carries the per-pair slice.
      const Bytes slice = Bytes(spec.comm_bytes_per_iter.count() /
                                static_cast<std::uint64_t>(std::max<mpi::RankId>(n - 1, 1)));
      co_await job.world().alltoall(me, slice);
      break;
    }
    case NpbPattern::kAllreduce: {
      // EP: one small reduction of local statistics per iteration.
      co_await job.world().allreduce(me, spec.comm_bytes_per_iter, 1e-10);
      break;
    }
    case NpbPattern::kWavefront: {
      // LU: pipelined sweeps — many small messages along the rank line.
      const Bytes msg = Bytes(spec.comm_bytes_per_iter.count() /
                              static_cast<std::uint64_t>(2 * spec.messages_per_iter));
      const mpi::RankId next = (me + 1) % n;
      const mpi::RankId prev = (me - 1 + n) % n;
      for (int m = 0; m < spec.messages_per_iter; ++m) {
        co_await rt.send(me, next, tag + 10, msg);
        co_await rt.recv(me, prev, tag + 10);
        co_await rt.send(me, prev, tag + 11, msg);
        co_await rt.recv(me, next, tag + 11);
      }
      break;
    }
  }
}

}  // namespace

sim::Task run_npb_rank(core::MpiJob& job, mpi::RankId me, NpbSpec spec, NpbResult* result) {
  auto& sim = job.testbed().sim();
  auto& rt = job.runtime();
  auto& vm = rt.rank(me).vm();
  const TimePoint t0 = sim.now();

  stage_footprint(job, me, spec);
  co_await job.world().barrier(me);

  NpbResult local;
  for (int iter = 0; iter < spec.iterations; ++iter) {
    // Compute phase, chunked so checkpoint requests are serviced promptly.
    double remaining = spec.compute_per_iter;
    while (remaining > 0.0) {
      const double chunk = std::min(remaining, 1.0);
      co_await vm.compute(chunk);
      remaining -= chunk;
      co_await rt.progress(me);
    }
    rewrite_working_set(job, me, spec);
    co_await communicate(job, me, spec, iter);
    ++local.iterations_done;
  }
  co_await job.world().barrier(me);
  local.elapsed = sim.now() - t0;
  if (result != nullptr) {
    *result = local;
  }
}

}  // namespace nm::workloads
