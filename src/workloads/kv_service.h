// Open-loop KV/RPC service running *on* the simulated cluster — the
// "millions of users" whose experience Ninja migration must not ruin.
//
// Server VMs host a replicated keyspace; client fleets (the outside world,
// attached at their hosts' Ethernet uplinks) generate Poisson arrivals with
// zipfian key popularity. Every request fans out to R replicas, and each
// replica operation is real traffic on the simulated fabric: a request
// transfer into the server VM's virtio NIC (through its vhost thread), a
// slice of guest compute (which stalls while the VM is paused for
// stop-and-copy), and a response transfer back out through the same NIC
// port migration traffic leaves on. Tail latency therefore inflates for
// exactly the physical reasons the paper cares about: CPU/bandwidth
// contention during pre-copy, a frozen guest during the blackout.
//
// The load is *open-loop*: arrivals do not wait for completions, so an
// overloaded phase accumulates backlog and the tail shows it (a closed
// loop would politely slow down and hide the damage). Determinism: each
// fleet pre-draws (inter-arrival, key) pairs from its own named
// Rng::streams and pins every arrival to an absolute instant via
// Simulation::post_at — the draw sequence is fixed by generation order, so
// timelines are bit-identical at any solve-worker count (see DESIGN.md
// §10).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "policy/policy.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"
#include "vmm/migration.h"

namespace nm::core {
class Testbed;
}  // namespace nm::core

namespace nm::vmm {
class Host;
class VirtioNetDevice;
class Vm;
}  // namespace nm::vmm

namespace nm::workloads {

struct KvServiceConfig {
  /// Keyspace size; zipfian popularity ranks are scattered over it so the
  /// hottest keys do not all share a primary server.
  std::uint64_t keys = 65536;
  /// Zipf skew exponent (s = 0.99 is the YCSB-style default).
  double zipf_s = 0.99;
  /// Fan-out: each read touches this many replicas (clamped to the server
  /// count). Replica r of key k lives on server (k + r) mod S.
  int replicas = 2;
  Bytes request_bytes = Bytes(512);
  Bytes response_bytes = Bytes::kib(4);
  /// Guest CPU time per replica operation (single-threaded core-seconds).
  double service_core_seconds = 200e-6;
  /// Worker threads per server VM: at most this many operations are in
  /// service concurrently; the rest queue FIFO. Bounded concurrency is
  /// both the realistic server model (a thread pool) and what keeps an
  /// overloaded phase cheap to simulate — queued requests are parked
  /// coroutines, not active fluid flows.
  int worker_threads = 16;
  /// Per-request deadline feeding the error budget (deadline_misses).
  Duration deadline = Duration::millis(25);
  /// Fraction of requests that are writes. A write applies at *every*
  /// replica (replicated store) and appends `value_bytes` of
  /// incompressible data to the server's in-guest commit log — the dirty
  /// rate the migration engine's pre-copy rounds must outrun, and the
  /// reason the stop-and-copy blackout is non-trivial under load.
  double write_fraction = 0.0;
  Bytes value_bytes = Bytes::kib(16);
  /// Commit-log region per server (starts past the OS footprint, wraps).
  Bytes log_bytes = Bytes::mib(512);
};

struct ClientFleetConfig {
  /// Names the fleet's private Rng streams ("kv/arrivals/<name>",
  /// "kv/keys/<name>"), so adding a fleet never perturbs another's draws.
  std::string name;
  /// Poisson arrival rate (requests per second of simulated time).
  double rate_per_sec = 2500.0;
  /// Generation window, measured from start(); arrivals stop after it
  /// (in-flight requests still drain to completion).
  Duration window = Duration::seconds(10);
  /// Arrivals pre-drawn and posted per generator wake-up. At any sane rate
  /// a batch spans well past the kernel's ~2.1 ms wheel threshold, so the
  /// pending arrivals park on the timer wheel instead of bloating the
  /// near-term heap.
  int batch = 256;
};

/// Per-phase SLO bucket: latency distribution + error budget.
struct PhaseSlo {
  LatencyHistogram latency;
  std::uint64_t requests = 0;
  std::uint64_t deadline_misses = 0;
};

class KvService {
 public:
  KvService(core::Testbed& testbed, KvServiceConfig config);
  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  /// Registers a server VM (must have a virtio NIC, i.e. booted via
  /// Testbed::boot_vm). Call before start().
  void add_server(std::shared_ptr<vmm::Vm> vm);

  /// Registers a client fleet attached at `client_host`'s Ethernet uplink.
  /// Call before start().
  void add_fleet(vmm::Host& client_host, ClientFleetConfig config);

  /// Points the per-phase breakdown at a migration's *live* stats object
  /// (the `stats_out` handed to Host::migrate — mirrored mid-episode, so
  /// requests completing inside the pause classify as blackout). Multiple
  /// episodes may be observed; the most severe overlap wins.
  void observe_migration(const vmm::MigrationStats* live);

  /// Installs an admission-control PolicySet: its kAdmission hook is
  /// consulted at every arrival instant (a clocked event) and may shed the
  /// request before it touches the fabric. `seed` binds the policies' Rng
  /// streams. Without this call, every request is admitted — and the
  /// digest stays byte-identical to pre-policy builds.
  void set_admission(policy::PolicySet policies, std::uint64_t seed = 0);

  /// Spawns the fleet generators at the current simulated time.
  void start();

  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t in_flight() const {
    return generated_ - completed_ - rejected_;
  }
  [[nodiscard]] std::uint64_t deadline_misses() const { return deadline_misses_; }

  [[nodiscard]] const PhaseSlo& phase(vmm::MigrationPhase p) const {
    return phases_[static_cast<std::size_t>(p)];
  }
  /// All phases merged (merge is associative, so this equals a histogram
  /// fed every sample directly).
  [[nodiscard]] LatencyHistogram overall() const;

  /// Deterministic digest over counters and every phase histogram; the
  /// solve-worker bit-identity gates compare these across runs. (The
  /// rejected counter folds in only when admission control actually shed
  /// something, so policy-free digests match pre-policy builds.)
  [[nodiscard]] std::uint64_t digest() const;

  /// The service's live SLO digest in the policy framework's vocabulary —
  /// the Observation half of the narrow API.
  [[nodiscard]] policy::SloSnapshot slo_snapshot() const;

  /// Observation callbacks for EpisodeSpec::observe / NinjaConfig::source:
  /// the policies see this service's live per-phase tails.
  [[nodiscard]] policy::ObservationSource observation_source() const;

 private:
  struct ServerState {
    std::shared_ptr<vmm::Vm> vm;
    vmm::VirtioNetDevice* device = nullptr;
    net::FabricAddress address = net::kInvalidAddress;
    Bytes log_head = Bytes::zero();  // append cursor within the log region
    std::unique_ptr<sim::Semaphore> workers;
  };
  struct FleetState {
    ClientFleetConfig config;
    net::AttachmentPtr attachment;
    net::FabricAddress address = net::kInvalidAddress;
  };

  [[nodiscard]] sim::Task fleet_task(FleetState* fleet);
  void start_request(FleetState* fleet, std::uint64_t key, bool is_write);
  [[nodiscard]] sim::Task request_task(FleetState* fleet, std::uint64_t key, bool is_write);
  [[nodiscard]] sim::Task replica_op(FleetState* fleet, ServerState* server, bool is_write);
  void append_log(ServerState* server);
  [[nodiscard]] std::uint64_t sample_zipf(Rng& rng) const;
  [[nodiscard]] vmm::MigrationPhase classify(TimePoint begin, TimePoint end) const;
  void record(TimePoint begin, TimePoint end);

  /// The observed episode whose phase at [now, now] is most severe (null
  /// when none observed) — what the admission Observation points at.
  [[nodiscard]] const vmm::MigrationStats* dominant_migration(TimePoint now) const;

  core::Testbed* testbed_;
  KvServiceConfig config_;
  std::vector<std::unique_ptr<ServerState>> servers_;
  std::vector<std::unique_ptr<FleetState>> fleets_;
  std::vector<const vmm::MigrationStats*> observed_;
  std::vector<double> zipf_cdf_;  // built at start()
  bool started_ = false;
  bool has_admission_ = false;
  policy::PolicySet admission_;

  std::uint64_t generated_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::array<PhaseSlo, vmm::kMigrationPhases> phases_;
};

}  // namespace nm::workloads
