// The paper's `memtest` micro-benchmark: each MPI process sequentially
// writes a fixed byte pattern over an in-guest array of configurable size,
// for a configurable number of passes. Pattern writes make the pages
// *uniform* (compressible by the migration engine's is_dup_page), which is
// the key to Figure 6's weak dependence of migration time on footprint.
#pragma once

#include <vector>

#include "core/job.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::workloads {

struct MemtestConfig {
  Bytes array_size = Bytes::gib(2);
  int passes = 8;
  std::uint8_t pattern = 0x5A;
  /// Progress-point / write granularity.
  Bytes chunk = Bytes::mib(64);
};

struct MemtestResult {
  Duration elapsed = Duration::zero();
  Bytes written = Bytes::zero();
};

/// Rank body. Ranks on the same VM write disjoint array slices (offset by
/// local rank), all beyond the guest OS footprint.
[[nodiscard]] sim::Task run_memtest_rank(core::MpiJob& job, mpi::RankId me,
                                         MemtestConfig config, MemtestResult* result);

}  // namespace nm::workloads
