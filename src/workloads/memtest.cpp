#include "workloads/memtest.h"

#include "util/error.h"

namespace nm::workloads {

sim::Task run_memtest_rank(core::MpiJob& job, mpi::RankId me, MemtestConfig config,
                           MemtestResult* result) {
  auto& runtime = job.runtime();
  auto& rank = runtime.rank(me);
  auto& vm = rank.vm();
  auto& sim = job.testbed().sim();

  const auto local_rank =
      static_cast<std::uint64_t>(me) % static_cast<std::uint64_t>(job.config().ranks_per_vm);
  const Bytes base = vm.spec().base_os_footprint + Bytes(local_rank * config.array_size.count());
  NM_CHECK(base + config.array_size <= vm.spec().memory,
           "memtest array does not fit in " << vm.name() << " guest memory");

  const TimePoint t0 = sim.now();
  MemtestResult local;
  for (int pass = 0; pass < config.passes; ++pass) {
    Bytes offset = Bytes::zero();
    while (offset < config.array_size) {
      const Bytes len =
          std::min(config.chunk, config.array_size - offset);
      // The store stream costs CPU (respecting VM pause + contention) ...
      co_await vm.compute(vm.host().node().mem_write_cost(len));
      // ... and classifies the pages as uniform (compressible).
      vm.memory().write_uniform(base + offset, len, config.pattern);
      local.written += len;
      offset += len;
      // MPI progress point: a pending checkpoint is serviced here.
      co_await runtime.progress(me);
    }
  }
  local.elapsed = sim.now() - t0;
  if (result != nullptr) {
    *result = local;
  }
}

}  // namespace nm::workloads
