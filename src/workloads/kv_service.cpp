#include "workloads/kv_service.h"

#include <algorithm>
#include <cmath>

#include "core/testbed.h"
#include "util/error.h"
#include "vmm/device.h"
#include "vmm/host.h"
#include "vmm/vm.h"

namespace nm::workloads {

namespace {

/// Phase severity for multi-episode classification: a request that
/// overlapped any blackout is a blackout request, whatever else it saw.
[[nodiscard]] int severity(vmm::MigrationPhase p) {
  switch (p) {
    case vmm::MigrationPhase::kBlackout:
      return 3;
    case vmm::MigrationPhase::kPreCopy:
      return 2;
    case vmm::MigrationPhase::kPost:
      return 1;
    case vmm::MigrationPhase::kSteady:
      return 0;
  }
  return 0;
}

/// Odd multiplier (golden-ratio constant): scatters popularity ranks over
/// the keyspace so the hottest keys spread across primaries.
inline constexpr std::uint64_t kRankScatter = 0x9e3779b97f4a7c15ull;

}  // namespace

KvService::KvService(core::Testbed& testbed, KvServiceConfig config)
    : testbed_(&testbed), config_(config) {
  NM_CHECK(config_.keys > 0, "KvService needs a non-empty keyspace");
  NM_CHECK(config_.replicas >= 1, "KvService needs at least one replica");
  NM_CHECK(config_.zipf_s >= 0.0, "negative zipf exponent");
  NM_CHECK(config_.service_core_seconds >= 0.0, "negative service time");
  NM_CHECK(config_.write_fraction >= 0.0 && config_.write_fraction <= 1.0,
           "write fraction outside [0, 1]");
  NM_CHECK(config_.write_fraction == 0.0 || !config_.value_bytes.is_zero(),
           "writes need a non-zero value size");
  NM_CHECK(config_.worker_threads > 0, "KvService needs at least one worker thread");
}

void KvService::add_server(std::shared_ptr<vmm::Vm> vm) {
  NM_CHECK(vm != nullptr, "KvService::add_server(nullptr)");
  NM_CHECK(!started_, "KvService::add_server after start()");
  auto* dev = vm->find_device_by_kind("virtio-net");
  NM_CHECK(dev != nullptr, "KV server " << vm->name() << " has no virtio NIC");
  auto state = std::make_unique<ServerState>();
  state->device = static_cast<vmm::VirtioNetDevice*>(dev);
  state->address = state->device->attachment()->address();
  state->workers = std::make_unique<sim::Semaphore>(
      vm->simulation(), static_cast<std::size_t>(config_.worker_threads));
  state->vm = std::move(vm);
  servers_.push_back(std::move(state));
}

void KvService::add_fleet(vmm::Host& client_host, ClientFleetConfig config) {
  NM_CHECK(!started_, "KvService::add_fleet after start()");
  NM_CHECK(!config.name.empty(), "client fleet needs a name (it keys the Rng streams)");
  NM_CHECK(config.rate_per_sec > 0.0, "fleet " << config.name << ": non-positive rate");
  NM_CHECK(config.batch > 0, "fleet " << config.name << ": non-positive batch");
  auto state = std::make_unique<FleetState>();
  state->attachment = client_host.eth_attachment();
  NM_CHECK(state->attachment != nullptr,
           "client host " << client_host.name() << " has no Ethernet uplink");
  state->address = state->attachment->address();
  state->config = std::move(config);
  fleets_.push_back(std::move(state));
}

void KvService::observe_migration(const vmm::MigrationStats* live) {
  NM_CHECK(live != nullptr, "KvService::observe_migration(nullptr)");
  observed_.push_back(live);
}

void KvService::set_admission(policy::PolicySet policies, std::uint64_t seed) {
  policies.bind_seed(seed);
  admission_ = std::move(policies);
  has_admission_ = true;
}

void KvService::start() {
  NM_CHECK(!started_, "KvService::start called twice");
  NM_CHECK(!servers_.empty(), "KvService::start with no servers");
  NM_CHECK(!fleets_.empty(), "KvService::start with no client fleets");
  started_ = true;

  // Zipf CDF over popularity ranks: weight(r) = 1 / (r+1)^s.
  zipf_cdf_.resize(config_.keys);
  double total = 0.0;
  for (std::uint64_t r = 0; r < config_.keys; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), config_.zipf_s);
    zipf_cdf_[r] = total;
  }
  for (auto& c : zipf_cdf_) {
    c /= total;
  }
  zipf_cdf_.back() = 1.0;

  auto& sim = testbed_->sim();
  for (auto& fleet : fleets_) {
    (void)sim.spawn(fleet_task(fleet.get()), "kv-fleet:" + fleet->config.name);
  }
}

std::uint64_t KvService::sample_zipf(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  auto rank = static_cast<std::uint64_t>(it - zipf_cdf_.begin());
  rank = std::min<std::uint64_t>(rank, config_.keys - 1);
  return (rank * kRankScatter) % config_.keys;
}

sim::Task KvService::fleet_task(FleetState* fleet) {
  auto& sim = testbed_->sim();
  // Private named streams: draws happen in pure generation order, so the
  // arrival sequence cannot depend on how request tasks interleave.
  Rng arrivals = sim.make_rng("kv/arrivals/" + fleet->config.name);
  Rng keys = sim.make_rng("kv/keys/" + fleet->config.name);
  Rng writes = sim.make_rng("kv/writes/" + fleet->config.name);
  const double rate = fleet->config.rate_per_sec;
  const TimePoint window_end = sim.now() + fleet->config.window;

  while (true) {
    const TimePoint batch_start = sim.now();
    Duration offset = Duration::zero();
    bool window_over = false;
    for (int i = 0; i < fleet->config.batch; ++i) {
      const double u = arrivals.next_double();
      offset += Duration::seconds(-std::log1p(-u) / rate);
      if (batch_start + offset >= window_end) {
        window_over = true;
        break;
      }
      const std::uint64_t key = sample_zipf(keys);
      const bool is_write = writes.bernoulli(config_.write_fraction);
      FleetState* f = fleet;
      sim.post_at(batch_start + offset,
                  [this, f, key, is_write] { start_request(f, key, is_write); });
    }
    if (window_over) {
      break;
    }
    co_await sim.delay(offset);
  }
}

const vmm::MigrationStats* KvService::dominant_migration(TimePoint now) const {
  const vmm::MigrationStats* best = nullptr;
  int best_severity = -1;
  for (const auto* m : observed_) {
    const int s = severity(m->phase_of(now, now));
    if (s > best_severity) {
      best_severity = s;
      best = m;
    }
  }
  return best;
}

void KvService::start_request(FleetState* fleet, std::uint64_t key, bool is_write) {
  ++generated_;
  if (has_admission_) {
    // Arrival instants are clocked (pre-drawn and posted by the fleets),
    // so an admission decision here is deterministic at any worker count.
    policy::Observation obs;
    obs.now = testbed_->sim().now();
    obs.migration = dominant_migration(obs.now);
    obs.slo = slo_snapshot();
    if (admission_.decide(policy::Hook::kAdmission, obs).reject) {
      ++rejected_;  // fast-fail: never touches the fabric or a worker
      return;
    }
  }
  (void)testbed_->sim().spawn(request_task(fleet, key, is_write));
}

sim::Task KvService::request_task(FleetState* fleet, std::uint64_t key, bool is_write) {
  auto& sim = testbed_->sim();
  const TimePoint begin = sim.now();
  const std::size_t n = servers_.size();
  const auto primary = static_cast<std::size_t>(key % n);
  const auto fanout =
      static_cast<std::size_t>(std::min<std::uint64_t>(config_.replicas, n));

  // Fan out to the non-primary replicas in parallel; serve the primary on
  // this task's own frame (one fewer spawn per request).
  std::vector<sim::TaskRef> others;
  others.reserve(fanout - 1);
  for (std::size_t r = 1; r < fanout; ++r) {
    others.push_back(
        sim.spawn(replica_op(fleet, servers_[(primary + r) % n].get(), is_write)));
  }
  co_await replica_op(fleet, servers_[primary].get(), is_write);
  for (auto& op : others) {
    co_await op.completion().wait();
  }
  record(begin, sim.now());
}

sim::Task KvService::replica_op(FleetState* fleet, ServerState* server, bool is_write) {
  auto& fabric = server->device->fabric();
  // Request into the server: small, but still funnels through the server
  // VM's vhost thread (the attachment's rx shares) and burns guest CPU.
  net::TransferOptions request_opts;
  request_opts.dst_cpu_per_byte = server->device->costs().guest_cpu_per_byte;
  co_await fabric.transfer(fleet->attachment, server->address, config_.request_bytes,
                           request_opts);
  // Queue for a worker thread (FIFO). An overloaded or paused server backs
  // requests up right here — queue wait is the tail-latency signal.
  co_await server->workers->acquire();
  // Service time: guest compute under host contention; stalls entirely
  // while the VM is paused for stop-and-copy (the blackout story).
  co_await server->vm->compute(config_.service_core_seconds);
  if (is_write) {
    append_log(server);
  }
  // Response back out through the virtio path — the same host NIC port
  // migration traffic leaves on, so pre-copy and responses compete. The
  // worker is held until the response is on the wire.
  net::TransferOptions response_opts = server->device->transfer_options();
  co_await fabric.transfer(server->device->attachment(), fleet->address,
                           config_.response_bytes, response_opts);
  server->workers->release();
}

void KvService::append_log(ServerState* server) {
  // Writes land in an append-only commit log past the OS footprint: the
  // dirty set stays contiguous (interval-map friendly) and incompressible
  // (kData), exactly what a real WAL does to pre-copy.
  const auto& spec = server->vm->spec();
  const Bytes base = spec.base_os_footprint;
  NM_CHECK(spec.memory > base, "KV server " << spec.name << " has no room past the OS");
  const Bytes region = std::min(config_.log_bytes, spec.memory - base);
  const Bytes value = std::min(config_.value_bytes, region);
  if (server->log_head + value > region) {
    server->log_head = Bytes::zero();  // wrap
  }
  server->vm->memory().write_data(base + server->log_head, value);
  server->log_head += value;
}

vmm::MigrationPhase KvService::classify(TimePoint begin, TimePoint end) const {
  auto best = vmm::MigrationPhase::kSteady;
  for (const auto* m : observed_) {
    const auto p = m->phase_of(begin, end);
    if (severity(p) > severity(best)) {
      best = p;
    }
  }
  return best;
}

void KvService::record(TimePoint begin, TimePoint end) {
  ++completed_;
  const Duration latency = end - begin;
  auto& slo = phases_[static_cast<std::size_t>(classify(begin, end))];
  ++slo.requests;
  slo.latency.add(latency);
  if (latency > config_.deadline) {
    ++slo.deadline_misses;
    ++deadline_misses_;
  }
}

LatencyHistogram KvService::overall() const {
  LatencyHistogram all;
  for (const auto& slo : phases_) {
    all.merge(slo.latency);
  }
  return all;
}

std::uint64_t KvService::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 0x100000001b3ull;
    }
  };
  fold(generated_);
  fold(completed_);
  fold(deadline_misses_);
  // Folded only when admission control shed something: digests of
  // policy-free runs stay byte-identical to pre-policy builds.
  if (rejected_ != 0) {
    fold(rejected_);
  }
  for (const auto& slo : phases_) {
    fold(slo.requests);
    fold(slo.deadline_misses);
    h = slo.latency.digest(h);
  }
  return h;
}

policy::SloSnapshot KvService::slo_snapshot() const {
  policy::SloSnapshot snap;
  snap.valid = true;
  snap.generated = generated_;
  snap.completed = completed_;
  snap.in_flight = in_flight();
  snap.deadline_misses = deadline_misses_;
  snap.deadline = config_.deadline;
  for (int p = 0; p < vmm::kMigrationPhases; ++p) {
    const auto& slo = phases_[static_cast<std::size_t>(p)];
    auto& view = snap.phases[static_cast<std::size_t>(p)];
    view.requests = slo.requests;
    view.deadline_misses = slo.deadline_misses;
    if (slo.latency.count() > 0) {  // percentile() checks non-empty
      view.p50 = slo.latency.percentile(0.5);
      view.p99 = slo.latency.percentile(0.99);
      view.p999 = slo.latency.percentile(0.999);
    }
  }
  return snap;
}

policy::ObservationSource KvService::observation_source() const {
  policy::ObservationSource source;
  source.slo = [this] { return slo_snapshot(); };
  source.now = [this] { return testbed_->sim().now(); };
  return source;
}

}  // namespace nm::workloads
