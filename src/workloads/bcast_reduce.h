// The Fig 8 workload: "a simple MPI program that repeatedly broadcasts and
// reduces 8 GB data per node". The per-node payload is split across the
// ranks of each VM, so with 8 processes per VM each rank moves 1/8 of the
// data — which is why the paper's 8-proc runs are faster than 1-proc runs.
// Rank 0 records per-iteration wall times; an optional trigger lets the
// caller launch Ninja episodes at given step boundaries.
#pragma once

#include <functional>
#include <vector>

#include "core/job.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::workloads {

struct BcastReduceConfig {
  Bytes per_node_bytes = Bytes::gib(8);
  int iterations = 40;
  /// Reduction combine cost (core-seconds per byte at each tree step).
  double reduce_compute_per_byte = 2.0e-10;
  /// The payload is staged in guest memory (incompressible) once at start.
  bool touch_memory = true;
};

class BcastReduceBench {
 public:
  BcastReduceBench(core::MpiJob& job, BcastReduceConfig config);

  /// Rank body; launch via MpiJob::launch with a capture of *this.
  [[nodiscard]] sim::Task run_rank(mpi::RankId me);

  /// Completion of iteration `step` (1-based) on rank 0 — the hook the
  /// Fig 8 harness uses to fire Ninja at steps 10, 20, 30.
  [[nodiscard]] sim::Task wait_step(int step);

  [[nodiscard]] const std::vector<double>& iteration_seconds() const { return iter_seconds_; }
  [[nodiscard]] int completed_steps() const { return completed_steps_; }

 private:
  core::MpiJob* job_;
  BcastReduceConfig config_;
  Bytes per_rank_;
  std::vector<double> iter_seconds_;
  int completed_steps_ = 0;
  sim::Notifier step_done_;
};

}  // namespace nm::workloads
