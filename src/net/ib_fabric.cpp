#include "net/ib_fabric.h"

namespace nm::net {

namespace {
FabricSpec make_spec(const std::string& name, const IbFabricConfig& config) {
  FabricSpec spec;
  spec.name = name;
  spec.latency = config.latency;
  spec.linkup_time = config.linkup_time;
  spec.stable_addresses = false;  // LIDs are fabric-managed and reassigned
  return spec;
}
}  // namespace

IbFabric::IbFabric(sim::FlowRouter& router, std::string name, IbFabricConfig config)
    : Fabric(router, make_spec(name, config)), config_(config) {}

IbFabric::QpState& IbFabric::state_for(const AttachmentPtr& att) {
  NM_CHECK(att != nullptr, "null attachment");
  NM_CHECK(&att->fabric() == this, "attachment is not on this IB fabric");
  auto& st = qp_state_[att.get()];
  // Driver re-init after re-attach: QPN space restarts, stale QPs vanish.
  const auto epoch = att->address();  // address changes with each attach
  if (st.epoch != epoch) {
    st = QpState{};
    st.epoch = epoch;
  }
  return st;
}

IbFabric::QueuePair IbFabric::create_queue_pair(const AttachmentPtr& att) {
  if (att->state() != LinkState::kActive) {
    throw OperationError(name() + ": cannot create QP, port not active");
  }
  auto& st = state_for(att);
  ++st.live;
  return QueuePair{st.next_qpn++, att->address()};
}

void IbFabric::destroy_queue_pairs(const AttachmentPtr& att) {
  auto it = qp_state_.find(att.get());
  if (it != qp_state_.end()) {
    it->second.live = 0;
  }
}

std::size_t IbFabric::queue_pair_count(const AttachmentPtr& att) const {
  auto it = qp_state_.find(att.get());
  if (it == qp_state_.end() || it->second.epoch != att->address()) {
    return 0;
  }
  return it->second.live;
}

sim::Task IbFabric::rdma_transfer(AttachmentPtr src, FabricAddress dst_lid, Bytes bytes) {
  // VMM-bypass: the HCA moves the data; no core-seconds are charged.
  co_await transfer(std::move(src), dst_lid, bytes, TransferOptions{});
}

}  // namespace nm::net
