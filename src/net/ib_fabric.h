// InfiniBand fabric model (the paper's Mellanox M3601Q QDR switch).
// Key behaviours the migration mechanism depends on:
//   - LIDs are reassigned on every attach: after a VM's HCA is hot
//     re-attached, peers holding the old LID have a stale address;
//   - queue pair numbers restart when the driver re-initializes, so saved
//     QP state is equally stale (why Open MPI must rebuild BTL modules);
//   - link training after (re-)attach takes ~30 s (Table II's "link-up").
#pragma once

#include <cstdint>
#include <map>

#include "net/fabric.h"

namespace nm::net {

struct IbFabricConfig {
  /// QDR 4x: 40 Gb/s signalling, 32 Gb/s data rate after 8b/10b.
  Bandwidth data_rate = Bandwidth::gbps(32);
  Duration latency = Duration::micros(2);
  /// Port training time observed by the paper after HCA re-attach.
  Duration linkup_time = Duration::seconds(29.9);
};

class IbFabric : public Fabric {
 public:
  IbFabric(sim::FlowRouter& router, std::string name, IbFabricConfig config = {});

  [[nodiscard]] const IbFabricConfig& config() const { return config_; }

  /// A reliable-connected queue pair endpoint as seen by a verbs consumer.
  struct QueuePair {
    std::uint32_t qpn = 0;
    FabricAddress local_lid = kInvalidAddress;
  };

  /// Allocates the next QPN on `att`'s HCA. QPN allocation restarts when
  /// the attachment is detached and re-attached (driver re-init).
  QueuePair create_queue_pair(const AttachmentPtr& att);

  /// Destroys all QPs of an attachment (pre-checkpoint resource release).
  void destroy_queue_pairs(const AttachmentPtr& att);

  /// Number of live QPs on an attachment (tests & invariants).
  [[nodiscard]] std::size_t queue_pair_count(const AttachmentPtr& att) const;

  /// VMM-bypass RDMA transfer: no CPU cost on either node.
  [[nodiscard]] sim::Task rdma_transfer(AttachmentPtr src, FabricAddress dst_lid, Bytes bytes);

 private:
  struct QpState {
    std::uint32_t next_qpn = 1;
    std::size_t live = 0;
    std::uint64_t epoch = 0;
  };
  IbFabricConfig config_;
  std::map<const Attachment*, QpState> qp_state_;

  QpState& state_for(const AttachmentPtr& att);
};

}  // namespace nm::net
