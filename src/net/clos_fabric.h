// ClosFabric: a parameterized fat-tree / leaf-spine topology for one
// site's internal network. The flat seed enclosure models every port on
// one non-blocking switch; a ClosFabric adds the inter-switch links —
// leaf uplinks and (for 3-tier fat-trees) aggregation→core links — as
// FluidResources, so intra-site oversubscription and destination-leaf
// incast constrain flows exactly like any other fluid resource.
//
// Two parameterizations (ClosConfig):
//   * k-ary fat-tree (k even): k pods, k/2 leaf (edge) + k/2 aggregation
//     switches per pod, (k/2)^2 cores, k/2 hosts per leaf. Aggregation
//     switch a (pod-local index) connects to cores [a*k/2, (a+1)*k/2) —
//     the canonical wiring, so a core choice pins the whole path.
//   * explicit 2-tier leaf-spine: `leaves` x `spines` full bipartite,
//     `hosts_per_leaf` ports per leaf, `leaves_per_pod` grouping for the
//     planner's pod-spreading heuristic.
//
// Uplink rates derive from the configured oversubscription ratio unless
// given explicitly: uplink = hosts_per_leaf*host_rate/(uplinks*oversub).
//
// Path selection is ECMP-style but deterministic: a salt drawn once from
// a named util::Rng stream is hashed with the (src leaf, dst leaf) pair
// and a per-fabric flow sequence number. Flows start in task context, so
// under the one-event-queue rule the sequence — and therefore every pick
// — is bit-identical at every SolvePool worker count. Dead links (factor
// 0) are filtered from the candidate set; when no candidate survives the
// nominal pick is kept and the flow freezes on the dead resource until
// heal, matching sim::WanLink partition semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/fluid.h"
#include "util/units.h"

namespace nm::net {

class NicPort;

struct ClosConfig {
  /// 3-tier k-ary fat-tree parameter (even, >= 2). 0 selects the 2-tier
  /// explicit parameterization below.
  int k = 0;
  /// 2-tier leaf-spine shape (used when k == 0).
  int leaves = 0;
  int spines = 1;
  int hosts_per_leaf = 4;
  /// Pod grouping for 2-tier fabrics (planner destination spreading).
  /// 0 = every leaf is its own pod.
  int leaves_per_pod = 0;
  /// Host access-link rate (the NIC line rate of the attached ports).
  Bandwidth host_rate = Bandwidth::gbps(10);
  /// Per-link leaf→spine (and leaf→aggregation) rate. Zero derives it
  /// from `oversubscription`.
  Bandwidth uplink_rate = Bandwidth::zero();
  /// Per-link aggregation→core rate (3-tier only). Zero copies the
  /// derived uplink rate, making the upper tiers mutually non-blocking.
  Bandwidth core_rate = Bandwidth::zero();
  /// Leaf-tier oversubscription ratio: total host bandwidth under a leaf
  /// over total uplink bandwidth out of it. 1.0 = non-blocking.
  double oversubscription = 1.0;
  /// Seed for the ECMP salt stream (named "clos/<name>/ecmp").
  std::uint64_t seed = 1;

  [[nodiscard]] bool enabled() const { return k > 0 || leaves > 0; }
};

/// One directed inter-switch traversal: `link` is a physical link index
/// (see uplink_index/core_index), `up` true when crossed toward the
/// spine/core tier.
struct ClosHop {
  std::size_t link = 0;
  bool up = true;
};

class ClosFabric {
 public:
  /// A port not assigned to any leaf (a WAN gateway uplink) attaches at
  /// the top tier: paths to/from it cross only the mapped side's
  /// up/down segment.
  static constexpr int kSpineAttach = -1;

  ClosFabric(sim::FluidScheduler& scheduler, std::string name, ClosConfig config);
  ClosFabric(const ClosFabric&) = delete;
  ClosFabric& operator=(const ClosFabric&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ClosConfig& config() const { return config_; }

  // --- Shape (closed forms pinned by clos_fabric_test) ---
  [[nodiscard]] bool three_tier() const { return config_.k > 0; }
  [[nodiscard]] int leaf_count() const { return leaf_count_; }
  /// Top-tier switches: spines (2-tier) or cores (3-tier).
  [[nodiscard]] int top_count() const { return top_count_; }
  /// Aggregation switches (3-tier), 0 for 2-tier.
  [[nodiscard]] int agg_count() const { return agg_count_; }
  [[nodiscard]] int pod_count() const { return pod_count_; }
  [[nodiscard]] int switch_count() const { return leaf_count_ + agg_count_ + top_count_; }
  /// Physical inter-switch links (each carries one resource per direction).
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] int hosts_per_leaf() const { return hosts_per_leaf_; }
  [[nodiscard]] int host_ports() const { return leaf_count_ * hosts_per_leaf_; }
  [[nodiscard]] int uplinks_per_leaf() const { return uplinks_per_leaf_; }
  [[nodiscard]] int pod_of_leaf(int leaf) const;
  [[nodiscard]] double host_rate() const { return host_rate_; }
  [[nodiscard]] double uplink_rate() const { return uplink_rate_; }
  [[nodiscard]] double core_rate() const { return core_rate_; }
  /// Realized leaf-tier oversubscription ratio.
  [[nodiscard]] double oversubscription() const;
  /// Half the aggregate top-tier link bandwidth, bytes/s: the classic
  /// worst-case bisection. host_ports()*host_rate()/2 over this equals
  /// oversubscription() when the upper tiers are derived (non-blocking
  /// relative to the leaf tier).
  [[nodiscard]] double bisection_bandwidth() const;

  // --- Link table ---
  /// `up`-th uplink of `leaf` (toward spine `up` in 2-tier fabrics,
  /// toward pod-local aggregation switch `up` in 3-tier ones).
  [[nodiscard]] std::size_t uplink_index(int leaf, int up) const;
  /// 3-tier: the `j`-th core link of pod `pod`'s aggregation switch `a`
  /// (lands on core a*(k/2)+j).
  [[nodiscard]] std::size_t core_index(int pod, int a, int j) const;
  [[nodiscard]] const std::string& link_name(std::size_t link) const;
  [[nodiscard]] double link_rate(std::size_t link) const;
  [[nodiscard]] double link_factor(std::size_t link) const;
  /// Scales both directions of a link: 1 healthy, 0 dead (flows crossing
  /// it freeze in place, like a partitioned WanLink). Takes effect before
  /// any simulated time passes.
  void set_link_factor(std::size_t link, double factor);
  [[nodiscard]] bool has_dead_link() const;
  [[nodiscard]] sim::FluidResource& link_up(std::size_t link);
  [[nodiscard]] sim::FluidResource& link_down(std::size_t link);

  // --- Port ↔ leaf mapping ---
  void assign_port(const NicPort& port, int leaf);
  /// kSpineAttach when the port was never assigned.
  [[nodiscard]] int leaf_of(const NicPort& port) const;

  // --- Path selection ---
  /// Deterministic ECMP pick for the next flow src_leaf → dst_leaf
  /// (either may be kSpineAttach); advances the fabric's flow sequence.
  /// Empty when both endpoints sit under the same leaf (or at the top).
  [[nodiscard]] std::vector<ClosHop> pick_path(int src_leaf, int dst_leaf);
  /// The pick a given hash key yields, without consuming the sequence.
  [[nodiscard]] std::vector<ClosHop> path_for_key(int src_leaf, int dst_leaf,
                                                  std::uint64_t key) const;
  /// Appends one full-weight share per crossed direction to `shares`.
  void append_shares(const std::vector<ClosHop>& path, std::vector<sim::ResourceShare>& shares);
  /// Planning rate of the best *alive* path, bytes/s (0 when every
  /// candidate crosses a dead link). Fabric::path_rate folds this in so
  /// migration estimators see the intra-site bottleneck.
  [[nodiscard]] double path_rate(int src_leaf, int dst_leaf) const;

  // --- Planner view ---
  /// Aggregate uplink capacity out of (equally: down into) `leaf`:
  /// nominal sums every uplink's rate, live only the alive fraction.
  [[nodiscard]] double leaf_capacity(int leaf, bool nominal) const;

 private:
  struct Link {
    Link(sim::FluidScheduler& scheduler, const std::string& link_name, double link_rate)
        : up(scheduler, link_name + ":up", link_rate),
          down(scheduler, link_name + ":down", link_rate),
          rate(link_rate),
          name(link_name) {}
    sim::FluidResource up;
    sim::FluidResource down;
    double rate;
    double factor = 1.0;
    std::string name;
  };
  struct Candidate {
    std::vector<ClosHop> hops;
    bool alive = true;
  };
  /// Every equal-cost candidate path for the pair, in canonical order.
  [[nodiscard]] std::vector<Candidate> candidates(int src_leaf, int dst_leaf) const;
  [[nodiscard]] std::vector<ClosHop> pick(int src_leaf, int dst_leaf, std::uint64_t key) const;

  std::string name_;
  ClosConfig config_;
  int leaf_count_ = 0;
  int top_count_ = 0;
  int agg_count_ = 0;
  int pod_count_ = 0;
  int hosts_per_leaf_ = 0;
  int uplinks_per_leaf_ = 0;
  double host_rate_ = 0.0;
  double uplink_rate_ = 0.0;
  double core_rate_ = 0.0;
  std::uint64_t salt_ = 0;
  std::uint64_t seq_ = 0;
  std::deque<Link> links_;
  std::map<const NicPort*, int> leaf_by_port_;
  std::size_t dead_links_ = 0;
};

}  // namespace nm::net
