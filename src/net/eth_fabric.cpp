#include "net/eth_fabric.h"

namespace nm::net {

namespace {
FabricSpec make_spec(const std::string& name, const EthFabricConfig& config) {
  FabricSpec spec;
  spec.name = name;
  spec.latency = config.latency;
  spec.linkup_time = config.linkup_time;
  spec.stable_addresses = true;  // IPs follow the VM across hosts
  spec.address_base = config.address_base;
  return spec;
}
}  // namespace

EthFabric::EthFabric(sim::FlowRouter& router, std::string name, EthFabricConfig config)
    : Fabric(router, make_spec(name, config)), config_(config) {}

}  // namespace nm::net
