// Ethernet fabric model (the paper's Dell M8024 10 GbE switch). IP
// addresses are stable: a migrating VM keeps its address and the virtio NIC
// re-binds to the destination host's physical port. TCP is CPU-fed, so
// transfers charge per-byte core-seconds to both hosts (see
// core/calibration.h for the calibrated costs).
#pragma once

#include "net/fabric.h"

namespace nm::net {

struct EthFabricConfig {
  Bandwidth line_rate = Bandwidth::gbps(10);
  Duration latency = Duration::micros(30);
  /// Link-up after (re-)plug is negligible for Ethernet (Table II).
  Duration linkup_time = Duration::zero();
  /// Address-space offset; federated sites need disjoint bases (see
  /// FabricSpec::address_base).
  FabricAddress address_base = 0;
};

class EthFabric : public Fabric {
 public:
  EthFabric(sim::FlowRouter& router, std::string name, EthFabricConfig config = {});

  [[nodiscard]] const EthFabricConfig& config() const { return config_; }

 private:
  EthFabricConfig config_;
};

}  // namespace nm::net
