#include "net/clos_fabric.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "net/port.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"

namespace nm::net {
namespace {

// SplitMix64 finalizer over a fixed state — a stateless 64-bit mixer.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

}  // namespace

ClosFabric::ClosFabric(sim::FluidScheduler& scheduler, std::string name, ClosConfig config)
    : name_(std::move(name)), config_(config) {
  NM_CHECK(config_.enabled(), name_ << ": ClosConfig selects no topology (k == 0, leaves == 0)");
  if (config_.k > 0) {
    NM_CHECK(config_.k >= 2 && config_.k % 2 == 0,
             name_ << ": fat-tree k must be even and >= 2, got " << config_.k);
    const int half = config_.k / 2;
    pod_count_ = config_.k;
    leaf_count_ = config_.k * half;
    agg_count_ = config_.k * half;
    top_count_ = half * half;
    hosts_per_leaf_ = half;
    uplinks_per_leaf_ = half;
  } else {
    NM_CHECK(config_.leaves >= 1 && config_.spines >= 1 && config_.hosts_per_leaf >= 1,
             name_ << ": leaf-spine shape needs leaves/spines/hosts_per_leaf >= 1");
    NM_CHECK(config_.leaves_per_pod >= 0, name_ << ": negative leaves_per_pod");
    pod_count_ = config_.leaves_per_pod > 0
                     ? (config_.leaves + config_.leaves_per_pod - 1) / config_.leaves_per_pod
                     : config_.leaves;
    leaf_count_ = config_.leaves;
    agg_count_ = 0;
    top_count_ = config_.spines;
    hosts_per_leaf_ = config_.hosts_per_leaf;
    uplinks_per_leaf_ = config_.spines;
  }
  NM_CHECK(config_.oversubscription > 0.0, name_ << ": oversubscription must be > 0");
  host_rate_ = config_.host_rate.bytes_per_second();
  NM_CHECK(host_rate_ > 0.0, name_ << ": host_rate must be > 0");
  uplink_rate_ = config_.uplink_rate.is_zero()
                     ? hosts_per_leaf_ * host_rate_ /
                           (uplinks_per_leaf_ * config_.oversubscription)
                     : config_.uplink_rate.bytes_per_second();
  core_rate_ = config_.core_rate.is_zero() ? uplink_rate_ : config_.core_rate.bytes_per_second();

  Rng ecmp = Rng::stream(config_.seed, "clos/" + name_ + "/ecmp");
  salt_ = ecmp.next_u64();

  // Leaf uplinks first (leaf-major), then (3-tier) core links (pod-major,
  // aggregation-major). uplink_index/core_index mirror this layout.
  auto add_link = [this](const std::string& link_name, double rate,
                         sim::FluidScheduler& sched) { links_.emplace_back(sched, link_name, rate); };
  for (int leaf = 0; leaf < leaf_count_; ++leaf) {
    for (int up = 0; up < uplinks_per_leaf_; ++up) {
      add_link(name_ + ":l" + std::to_string(leaf) + "-u" + std::to_string(up), uplink_rate_,
               scheduler);
    }
  }
  if (three_tier()) {
    const int half = config_.k / 2;
    for (int pod = 0; pod < pod_count_; ++pod) {
      for (int a = 0; a < half; ++a) {
        for (int j = 0; j < half; ++j) {
          add_link(name_ + ":p" + std::to_string(pod) + "a" + std::to_string(a) + "-c" +
                       std::to_string(a * half + j),
                   core_rate_, scheduler);
        }
      }
    }
  }
  NM_LOG_DEBUG("net") << name_ << ": " << (three_tier() ? "fat-tree" : "leaf-spine") << " with "
                      << leaf_count_ << " leaves, " << top_count_ << " top-tier switches, "
                      << links_.size() << " links, oversubscription " << oversubscription();
}

int ClosFabric::pod_of_leaf(int leaf) const {
  NM_CHECK(leaf >= 0 && leaf < leaf_count_, name_ << ": leaf " << leaf << " out of range");
  if (three_tier()) {
    return leaf / (config_.k / 2);
  }
  return config_.leaves_per_pod > 0 ? leaf / config_.leaves_per_pod : leaf;
}

double ClosFabric::oversubscription() const {
  return hosts_per_leaf_ * host_rate_ / (uplinks_per_leaf_ * uplink_rate_);
}

double ClosFabric::bisection_bandwidth() const {
  if (three_tier()) {
    // k^3/4 aggregation->core links at core_rate_.
    const double half = config_.k / 2.0;
    return config_.k * half * half * core_rate_ / 2.0;
  }
  return static_cast<double>(leaf_count_) * top_count_ * uplink_rate_ / 2.0;
}

std::size_t ClosFabric::uplink_index(int leaf, int up) const {
  NM_CHECK(leaf >= 0 && leaf < leaf_count_ && up >= 0 && up < uplinks_per_leaf_,
           name_ << ": uplink (" << leaf << ", " << up << ") out of range");
  return static_cast<std::size_t>(leaf) * uplinks_per_leaf_ + up;
}

std::size_t ClosFabric::core_index(int pod, int a, int j) const {
  const int half = config_.k / 2;
  NM_CHECK(three_tier() && pod >= 0 && pod < pod_count_ && a >= 0 && a < half && j >= 0 &&
               j < half,
           name_ << ": core link (" << pod << ", " << a << ", " << j << ") out of range");
  return static_cast<std::size_t>(leaf_count_) * uplinks_per_leaf_ +
         (static_cast<std::size_t>(pod) * half + a) * half + j;
}

const std::string& ClosFabric::link_name(std::size_t link) const { return links_.at(link).name; }
double ClosFabric::link_rate(std::size_t link) const { return links_.at(link).rate; }
double ClosFabric::link_factor(std::size_t link) const { return links_.at(link).factor; }
sim::FluidResource& ClosFabric::link_up(std::size_t link) { return links_.at(link).up; }
sim::FluidResource& ClosFabric::link_down(std::size_t link) { return links_.at(link).down; }
bool ClosFabric::has_dead_link() const { return dead_links_ > 0; }

void ClosFabric::set_link_factor(std::size_t link, double factor) {
  NM_CHECK(factor >= 0.0, name_ << ": negative link factor");
  Link& l = links_.at(link);
  if (l.factor == 0.0 && factor > 0.0) {
    --dead_links_;
  } else if (l.factor > 0.0 && factor == 0.0) {
    ++dead_links_;
  }
  l.factor = factor;
  l.up.set_capacity(l.rate * factor);
  l.down.set_capacity(l.rate * factor);
  NM_LOG_DEBUG("net") << name_ << ": link " << l.name << " factor -> " << factor;
}

void ClosFabric::assign_port(const NicPort& port, int leaf) {
  NM_CHECK(leaf >= 0 && leaf < leaf_count_,
           name_ << ": cannot assign " << port.name() << " to leaf " << leaf);
  leaf_by_port_[&port] = leaf;
}

int ClosFabric::leaf_of(const NicPort& port) const {
  auto it = leaf_by_port_.find(&port);
  return it == leaf_by_port_.end() ? kSpineAttach : it->second;
}

std::vector<ClosFabric::Candidate> ClosFabric::candidates(int src_leaf, int dst_leaf) const {
  std::vector<Candidate> out;
  if (src_leaf == dst_leaf || (src_leaf == kSpineAttach && dst_leaf == kSpineAttach)) {
    return out;
  }
  auto alive = [this](std::size_t link) { return links_[link].factor > 0.0; };
  if (!three_tier()) {
    out.reserve(static_cast<std::size_t>(top_count_));
    for (int s = 0; s < top_count_; ++s) {
      Candidate c;
      bool ok = true;
      if (src_leaf != kSpineAttach) {
        const std::size_t l = uplink_index(src_leaf, s);
        c.hops.push_back({l, true});
        ok = ok && alive(l);
      }
      if (dst_leaf != kSpineAttach) {
        const std::size_t l = uplink_index(dst_leaf, s);
        c.hops.push_back({l, false});
        ok = ok && alive(l);
      }
      c.alive = ok;
      out.push_back(std::move(c));
    }
    return out;
  }
  const int half = config_.k / 2;
  const int src_pod = src_leaf == kSpineAttach ? -1 : pod_of_leaf(src_leaf);
  const int dst_pod = dst_leaf == kSpineAttach ? -1 : pod_of_leaf(dst_leaf);
  if (src_pod == dst_pod && src_pod >= 0) {
    // Same pod: bounce off any of the pod's aggregation switches.
    for (int a = 0; a < half; ++a) {
      Candidate c;
      const std::size_t u = uplink_index(src_leaf, a);
      const std::size_t d = uplink_index(dst_leaf, a);
      c.hops = {{u, true}, {d, false}};
      c.alive = alive(u) && alive(d);
      out.push_back(std::move(c));
    }
    return out;
  }
  // Cross-pod (or gateway at the core tier): a core choice (a, j) pins
  // the aggregation switch on both sides.
  for (int a = 0; a < half; ++a) {
    for (int j = 0; j < half; ++j) {
      Candidate c;
      bool ok = true;
      if (src_leaf != kSpineAttach) {
        const std::size_t u = uplink_index(src_leaf, a);
        const std::size_t cu = core_index(src_pod, a, j);
        c.hops.push_back({u, true});
        c.hops.push_back({cu, true});
        ok = ok && alive(u) && alive(cu);
      }
      if (dst_leaf != kSpineAttach) {
        const std::size_t cd = core_index(dst_pod, a, j);
        const std::size_t d = uplink_index(dst_leaf, a);
        c.hops.push_back({cd, false});
        c.hops.push_back({d, false});
        ok = ok && alive(cd) && alive(d);
      }
      c.alive = ok;
      out.push_back(std::move(c));
    }
  }
  return out;
}

std::vector<ClosHop> ClosFabric::pick(int src_leaf, int dst_leaf, std::uint64_t key) const {
  std::vector<Candidate> cands = candidates(src_leaf, dst_leaf);
  if (cands.empty()) {
    return {};
  }
  std::vector<std::size_t> alive;
  alive.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].alive) {
      alive.push_back(i);
    }
  }
  // No alive candidate: keep the nominal pick — the flow freezes on the
  // dead link (capacity 0) and resumes when it heals.
  if (alive.empty()) {
    return std::move(cands[key % cands.size()].hops);
  }
  return std::move(cands[alive[key % alive.size()]].hops);
}

std::vector<ClosHop> ClosFabric::pick_path(int src_leaf, int dst_leaf) {
  const std::uint64_t key =
      mix(salt_ ^ mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_leaf)) << 32) |
                      static_cast<std::uint32_t>(dst_leaf)) ^
          seq_++);
  return pick(src_leaf, dst_leaf, key);
}

std::vector<ClosHop> ClosFabric::path_for_key(int src_leaf, int dst_leaf,
                                              std::uint64_t key) const {
  return pick(src_leaf, dst_leaf, key);
}

void ClosFabric::append_shares(const std::vector<ClosHop>& path,
                               std::vector<sim::ResourceShare>& shares) {
  for (const ClosHop& hop : path) {
    shares.push_back({hop.up ? &links_[hop.link].up : &links_[hop.link].down, 1.0});
  }
}

double ClosFabric::path_rate(int src_leaf, int dst_leaf) const {
  const std::vector<Candidate> cands = candidates(src_leaf, dst_leaf);
  if (cands.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double best = 0.0;
  for (const Candidate& c : cands) {
    if (!c.alive) {
      continue;
    }
    double rate = std::numeric_limits<double>::infinity();
    for (const ClosHop& hop : c.hops) {
      const Link& l = links_[hop.link];
      rate = std::min(rate, l.rate * l.factor);
    }
    best = std::max(best, rate);
  }
  return best;
}

double ClosFabric::leaf_capacity(int leaf, bool nominal) const {
  NM_CHECK(leaf >= 0 && leaf < leaf_count_, name_ << ": leaf " << leaf << " out of range");
  double sum = 0.0;
  for (int up = 0; up < uplinks_per_leaf_; ++up) {
    const Link& l = links_[uplink_index(leaf, up)];
    sum += nominal ? l.rate : l.rate * l.factor;
  }
  return sum;
}

}  // namespace nm::net
