// Fabric: a switched interconnect with an address space. Concrete fabrics
// are IbFabric (LIDs reassigned on every attach; ~30 s link training) and
// EthFabric (stable IP addresses that follow a migrating VM via rebind()).
//
// An Attachment is the logical presence of an adapter on the fabric — the
// thing a transport layer holds. It carries the link state machine
// (Down -> Polling -> Active) whose training delay is the paper's "link-up
// time" (Table II).
#pragma once

#include <cstdint>
#include <vector>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "net/port.h"
#include "sim/fluid.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/error.h"
#include "util/units.h"

namespace nm::sim {
class WanLink;
}  // namespace nm::sim

namespace nm::net {

class ClosFabric;
class Fabric;

/// One WAN hop of a cross-fabric route: leave the current site through
/// `egress` (tx side), cross `wan` (both endpoint resources — the shared
/// medium), arrive through `ingress` (rx side) at fabric `to`.
struct WanHop {
  NicPort* egress = nullptr;
  sim::WanLink* wan = nullptr;
  NicPort* ingress = nullptr;
  Fabric* to = nullptr;
};

enum class LinkState { kDown, kPolling, kActive };
[[nodiscard]] std::string_view to_string(LinkState s);

/// Fabric-scoped address (an InfiniBand LID or a modelled IPv4 host id).
using FabricAddress = std::uint32_t;
inline constexpr FabricAddress kInvalidAddress = 0;

class Attachment {
 public:
  [[nodiscard]] LinkState state() const { return state_; }
  [[nodiscard]] FabricAddress address() const { return address_; }
  [[nodiscard]] NicPort& port() { return *port_; }
  [[nodiscard]] Fabric& fabric() { return *fabric_; }

  /// Awaitable: resumes once the link is Active (after training).
  [[nodiscard]] auto wait_active() { return active_gate_.opened(); }

  /// Receive-side resources every inbound transfer consumes (e.g. the
  /// owning VM's vhost thread). Registered by the owning device.
  void set_rx_shares(std::vector<sim::ResourceShare> shares) { rx_shares_ = std::move(shares); }
  [[nodiscard]] const std::vector<sim::ResourceShare>& rx_shares() const { return rx_shares_; }

 private:
  friend class Fabric;
  Attachment(sim::Simulation& sim, Fabric& fabric, NicPort& port)
      : fabric_(&fabric), port_(&port), active_gate_(sim, /*initially_open=*/false) {}

  Fabric* fabric_;
  NicPort* port_;
  LinkState state_ = LinkState::kDown;
  FabricAddress address_ = kInvalidAddress;
  sim::Gate active_gate_;
  std::uint64_t activation_epoch_ = 0;
  std::vector<sim::ResourceShare> rx_shares_;
};

using AttachmentPtr = std::shared_ptr<Attachment>;

/// Per-transfer cost shaping. The transport layer (virtio/TCP vs VMM-bypass
/// verbs vs migration thread) decides what a byte costs.
struct TransferOptions {
  /// Core-seconds charged to the source node's CPU per byte (TCP tx path).
  double src_cpu_per_byte = 0.0;
  /// Core-seconds charged to the destination node's CPU per byte.
  double dst_cpu_per_byte = 0.0;
  /// Hard cap on the transfer rate in bytes/s (protocol or thread limit).
  double max_rate = std::numeric_limits<double>::infinity();
  /// Extra sender-side resources the transfer consumes (e.g. the sending
  /// VM's single vhost thread).
  std::vector<sim::ResourceShare> extras;
};

struct FabricSpec {
  std::string name;
  /// One-way propagation + switching latency for a message.
  Duration latency = Duration::micros(10);
  /// Time from plug-in until the port reports Active (paper: ~29.9 s for
  /// InfiniBand after re-attach, ~0 for Ethernet).
  Duration linkup_time = Duration::zero();
  /// Whether addresses survive detach/attach cycles (IP yes, LID no).
  bool stable_addresses = false;
  /// First address handed out is address_base + 1. Federated fabrics give
  /// each site a disjoint base (core/federation.cpp) so a cross-site
  /// destination can never shadow a local one.
  FabricAddress address_base = 0;
};

class Fabric {
 public:
  /// `router` carries every transfer's bandwidth flow. A plain
  /// FluidScheduler works when all endpoints live in one domain; a FluidNet
  /// additionally lets a transfer span domains (src tx in one blade's
  /// domain, dst rx in another's) as a boundary flow.
  Fabric(sim::FlowRouter& router, FabricSpec spec);
  virtual ~Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const FabricSpec& spec() const { return spec_; }
  [[nodiscard]] Duration latency() const { return spec_.latency; }
  [[nodiscard]] sim::Simulation& simulation() { return router_->simulation(); }
  [[nodiscard]] sim::FlowRouter& router() { return *router_; }

  /// Plugs `port` into the fabric: allocates an address and starts link
  /// training. The returned attachment reaches Active after linkup_time.
  AttachmentPtr attach(NicPort& port);

  /// Unplugs: the address is released; in-flight lookups start failing.
  void detach(const AttachmentPtr& att);

  /// Re-binds a *stable-address* attachment to a new physical port (a VM's
  /// virtio NIC following the VM to another host). Keeps the address.
  void rebind(const AttachmentPtr& att, NicPort& new_port);

  /// Address lookup; nullptr when the address is stale/absent.
  [[nodiscard]] AttachmentPtr find(FabricAddress addr) const;

  /// Moves `bytes` from `src` to the attachment at `dst_addr`, honouring
  /// latency, line rates, CPU costs and caps. Throws OperationError if
  /// either end is not Active when the transfer starts.
  [[nodiscard]] sim::Task transfer(AttachmentPtr src, FabricAddress dst_addr, Bytes bytes,
                                   TransferOptions opts = {});

  [[nodiscard]] std::size_t attachment_count() const { return by_address_.size(); }

  /// Declares `port` this fabric's default federable edge: the switch
  /// uplink peer_with() rides (tx outbound, rx inbound). Multi-edge meshes
  /// skip this and hand per-edge ports to add_route() directly.
  void set_uplink(NicPort& port) { uplink_ = &port; }
  [[nodiscard]] NicPort* uplink() { return uplink_; }

  /// Registers (or replaces) the one-way WAN route to `dst`: a destination
  /// address that does not resolve locally is looked up on every routed
  /// fabric in registration order, and a matching transfer crosses each
  /// hop's egress uplink → WAN endpoint pair → ingress uplink in addition
  /// to the usual NIC/CPU shares. Every hop's `to` must be set and the last
  /// hop's `to` must be `dst`; address spaces must be disjoint. Re-routing
  /// (after a partition) replaces the hop list; transfers already past
  /// their route lookup keep the hops they copied.
  void add_route(Fabric& dst, std::vector<WanHop> hops);

  /// Two-site convenience: symmetric single-hop routes between this fabric
  /// and `other` over `wan`, riding both fabrics' set_uplink() ports.
  void peer_with(Fabric& other, sim::WanLink& wan);

  /// Planning rate for src → dst_addr, bytes/s: the min line rate along the
  /// path, folded with every crossed WAN's current *effective* (model) rate
  /// when the destination lives on a routed fabric. Migration estimators
  /// must read this — not the raw local line rate — or they under-estimate
  /// stop-and-copy time across a lossy link. Throws OperationError for an
  /// unknown address.
  [[nodiscard]] double path_rate(const AttachmentPtr& src, FabricAddress dst_addr) const;

  /// Installs an intra-site Clos topology (net/clos_fabric.h): every local
  /// transfer additionally crosses the deterministic-ECMP leaf/spine path
  /// between the two ports' leaves, a cross-site transfer crosses the
  /// source leaf's up-segment here and the destination leaf's down-segment
  /// on the landing fabric, and path_rate folds the topology bottleneck.
  /// Ports never assigned to a leaf (WAN gateway uplinks) attach at the
  /// top tier. Null (the default) keeps the flat single-switch model
  /// byte-identical to the seed.
  void set_topology(ClosFabric* topology) { topology_ = topology; }
  [[nodiscard]] ClosFabric* topology() const { return topology_; }

 protected:
  sim::FlowRouter* router_;
  FabricSpec spec_;

 private:
  struct Route {
    Fabric* dst = nullptr;
    std::vector<WanHop> hops;
  };
  /// Attachment + route for a cross-fabric address; {nullptr, nullptr}
  /// when no routed fabric owns it.
  [[nodiscard]] std::pair<AttachmentPtr, const Route*> find_remote(FabricAddress addr) const;

  FabricAddress next_address_;
  std::map<FabricAddress, std::weak_ptr<Attachment>> by_address_;
  std::uint64_t epoch_counter_ = 0;
  NicPort* uplink_ = nullptr;
  ClosFabric* topology_ = nullptr;
  std::vector<Route> routes_;
};

}  // namespace nm::net
