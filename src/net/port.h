// A physical NIC port: the hardware end of a link. Owns the tx/rx fluid
// resources (line-rate capacity) and knows its node (whose CPU is charged
// for protocol processing where the transport requires it).
#pragma once

#include <string>

#include "hw/node.h"
#include "sim/fluid.h"
#include "util/units.h"

namespace nm::net {

class NicPort {
 public:
  NicPort(hw::Node& node, std::string name, Bandwidth line_rate)
      : NicPort(node, std::move(name), line_rate, node.scheduler()) {}
  /// Places tx/rx on an explicit scheduler instead of the node's. Transfers
  /// through this port may still cross resources in other domains: routed
  /// through a FluidNet they become boundary flows solved by the
  /// ghost-capacity exchange (DESIGN.md §6); only a bare FluidScheduler
  /// requires all shares to stay in one domain.
  NicPort(hw::Node& node, std::string name, Bandwidth line_rate, sim::FluidScheduler& scheduler)
      : node_(&node),
        name_(std::move(name)),
        line_rate_(line_rate),
        tx_(scheduler, "tx:" + name_, line_rate.bytes_per_second()),
        rx_(scheduler, "rx:" + name_, line_rate.bytes_per_second()) {}
  NicPort(const NicPort&) = delete;
  NicPort& operator=(const NicPort&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] hw::Node& node() { return *node_; }
  [[nodiscard]] Bandwidth line_rate() const { return line_rate_; }
  [[nodiscard]] sim::FluidResource& tx() { return tx_; }
  [[nodiscard]] sim::FluidResource& rx() { return rx_; }

 private:
  hw::Node* node_;
  std::string name_;
  Bandwidth line_rate_;
  sim::FluidResource tx_;
  sim::FluidResource rx_;
};

}  // namespace nm::net
