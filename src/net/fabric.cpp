#include "net/fabric.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/wan_link.h"
#include "util/log.h"

namespace nm::net {

std::string_view to_string(LinkState s) {
  switch (s) {
    case LinkState::kDown:
      return "DOWN";
    case LinkState::kPolling:
      return "POLLING";
    case LinkState::kActive:
      return "ACTIVE";
  }
  return "?";
}

Fabric::Fabric(sim::FlowRouter& router, FabricSpec spec)
    : router_(&router), spec_(std::move(spec)), next_address_(spec_.address_base + 1) {}

void Fabric::peer_with(Fabric& other, sim::WanLink& wan) {
  NM_CHECK(&other != this, spec_.name << ": cannot peer a fabric with itself");
  NM_CHECK(uplink_ != nullptr, spec_.name << ": set_uplink before peer_with");
  NM_CHECK(other.uplink_ != nullptr, other.spec_.name << ": set_uplink before peer_with");
  NM_CHECK(spec_.address_base != other.spec_.address_base,
           spec_.name << " and " << other.spec_.name
                      << " share an address base; peer address spaces must be disjoint");
  peer_ = &other;
  wan_ = &wan;
  other.peer_ = this;
  other.wan_ = &wan;
  NM_LOG_DEBUG("net") << spec_.name << ": peered with " << other.spec_.name << " over WAN link "
                      << wan.name();
}

double Fabric::path_rate(const AttachmentPtr& src, FabricAddress dst_addr) const {
  NM_CHECK(src != nullptr, "path_rate from null attachment");
  const double src_rate = src->port_->line_rate().bytes_per_second();
  if (AttachmentPtr dst = find(dst_addr)) {
    return std::min(src_rate, dst->port_->line_rate().bytes_per_second());
  }
  if (peer_ != nullptr) {
    if (AttachmentPtr dst = peer_->find(dst_addr)) {
      return std::min({src_rate, uplink_->line_rate().bytes_per_second(),
                       wan_->effective_rate(), peer_->uplink_->line_rate().bytes_per_second(),
                       dst->port_->line_rate().bytes_per_second()});
    }
  }
  throw OperationError(spec_.name + ": no attachment at address " + std::to_string(dst_addr) +
                       " (stale address?)");
}

AttachmentPtr Fabric::attach(NicPort& port) {
  auto att = AttachmentPtr(new Attachment(simulation(), *this, port));
  att->address_ = next_address_++;
  att->state_ = LinkState::kPolling;
  att->activation_epoch_ = ++epoch_counter_;
  by_address_[att->address_] = att;
  NM_LOG_DEBUG("net") << spec_.name << ": " << port.name() << " attached, addr "
                      << att->address_ << ", training for " << spec_.linkup_time;
  const auto epoch = att->activation_epoch_;
  simulation().post(spec_.linkup_time, [att, epoch] {
    // Ignore if the attachment was detached (and possibly re-attached)
    // while training.
    if (att->activation_epoch_ == epoch && att->state_ == LinkState::kPolling) {
      att->state_ = LinkState::kActive;
      att->active_gate_.open();
    }
  });
  return att;
}

void Fabric::detach(const AttachmentPtr& att) {
  NM_CHECK(att != nullptr, "detach(nullptr)");
  NM_CHECK(att->fabric_ == this, "attachment belongs to fabric " << att->fabric_->name());
  if (att->state_ == LinkState::kDown) {
    return;
  }
  by_address_.erase(att->address_);
  att->state_ = LinkState::kDown;
  att->active_gate_.close();
  ++epoch_counter_;
  att->activation_epoch_ = epoch_counter_;  // invalidate pending training
  if (!spec_.stable_addresses) {
    att->address_ = kInvalidAddress;
  }
  NM_LOG_DEBUG("net") << spec_.name << ": " << att->port_->name() << " detached";
}

void Fabric::rebind(const AttachmentPtr& att, NicPort& new_port) {
  NM_CHECK(att != nullptr, "rebind(nullptr)");
  NM_CHECK(att->fabric_ == this, "attachment belongs to fabric " << att->fabric_->name());
  NM_CHECK(spec_.stable_addresses,
           spec_.name << " does not support rebinding (addresses are not stable)");
  att->port_ = &new_port;
  if (att->state_ == LinkState::kDown) {
    // Re-joining the fabric under the same address.
    att->state_ = LinkState::kPolling;
    att->activation_epoch_ = ++epoch_counter_;
    if (att->address_ == kInvalidAddress) {
      att->address_ = next_address_++;
    }
    by_address_[att->address_] = att;
    const auto epoch = att->activation_epoch_;
    simulation().post(spec_.linkup_time, [att, epoch] {
      if (att->activation_epoch_ == epoch && att->state_ == LinkState::kPolling) {
        att->state_ = LinkState::kActive;
        att->active_gate_.open();
      }
    });
  }
  NM_LOG_DEBUG("net") << spec_.name << ": addr " << att->address_ << " rebound to "
                      << new_port.name();
}

AttachmentPtr Fabric::find(FabricAddress addr) const {
  auto it = by_address_.find(addr);
  if (it == by_address_.end()) {
    return nullptr;
  }
  return it->second.lock();
}

sim::Task Fabric::transfer(AttachmentPtr src, FabricAddress dst_addr, Bytes bytes,
                           TransferOptions opts) {
  NM_CHECK(src != nullptr, "transfer from null attachment");
  if (src->state_ != LinkState::kActive) {
    throw OperationError(spec_.name + ": source link " + src->port_->name() +
                         " is not active (state " + std::string(to_string(src->state_)) + ")");
  }
  AttachmentPtr dst = find(dst_addr);
  bool via_peer = false;
  if (dst == nullptr && peer_ != nullptr) {
    // Cross-site destination: ride the uplink and the WAN endpoint pair.
    dst = peer_->find(dst_addr);
    via_peer = dst != nullptr;
  }
  if (dst == nullptr) {
    throw OperationError(spec_.name + ": no attachment at address " +
                         std::to_string(dst_addr) + " (stale address?)");
  }
  if (dst->state_ != LinkState::kActive) {
    throw OperationError(spec_.name + ": destination link " + dst->port_->name() +
                         " is not active");
  }

  // Propagation/switching latency, then the bandwidth phase. A cross-site
  // path additionally pays the WAN's one-way propagation and the peer's
  // switching latency.
  Duration lat = spec_.latency;
  if (via_peer) {
    lat += wan_->one_way_latency() + peer_->spec_.latency;
  }
  co_await simulation().delay(lat);

  if (bytes.is_zero()) {
    co_return;
  }
  std::vector<sim::ResourceShare> shares;
  shares.push_back({&src->port_->tx(), 1.0});
  if (via_peer) {
    // Both WAN endpoints are crossed (shared medium), so exactly one of
    // them is always foreign to the flow's home domain and the link's
    // CapPolicy governs the published boundary cap in either direction.
    shares.push_back({&uplink_->tx(), 1.0});
    shares.push_back({&wan_->a(), 1.0});
    shares.push_back({&wan_->b(), 1.0});
    shares.push_back({&peer_->uplink_->rx(), 1.0});
  }
  shares.push_back({&dst->port_->rx(), 1.0});
  if (opts.src_cpu_per_byte > 0.0) {
    shares.push_back({&src->port_->node().cpu(), opts.src_cpu_per_byte});
  }
  if (opts.dst_cpu_per_byte > 0.0) {
    shares.push_back({&dst->port_->node().cpu(), opts.dst_cpu_per_byte});
  }
  for (const auto& extra : opts.extras) {
    shares.push_back(extra);
  }
  for (const auto& rx_extra : dst->rx_shares_) {
    shares.push_back(rx_extra);
  }
  // Named spec, not a temporary: see the FlowLabel comment in fluid.h —
  // GCC 12 miscompiles FlowSpec temporaries that live across a co_await.
  sim::FlowSpec spec{.work = static_cast<double>(bytes.count()),
                     .shares = std::move(shares),
                     .max_rate = opts.max_rate};
  co_await router_->run(std::move(spec));
}

}  // namespace nm::net
