#include "net/fabric.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/clos_fabric.h"
#include "sim/wan_link.h"
#include "util/log.h"

namespace nm::net {

std::string_view to_string(LinkState s) {
  switch (s) {
    case LinkState::kDown:
      return "DOWN";
    case LinkState::kPolling:
      return "POLLING";
    case LinkState::kActive:
      return "ACTIVE";
  }
  return "?";
}

Fabric::Fabric(sim::FlowRouter& router, FabricSpec spec)
    : router_(&router), spec_(std::move(spec)), next_address_(spec_.address_base + 1) {}

void Fabric::add_route(Fabric& dst, std::vector<WanHop> hops) {
  NM_CHECK(&dst != this, spec_.name << ": cannot route a fabric to itself");
  NM_CHECK(!hops.empty(), spec_.name << ": route to " << dst.spec_.name << " needs >= 1 hop");
  NM_CHECK(spec_.address_base != dst.spec_.address_base,
           spec_.name << " and " << dst.spec_.name
                      << " share an address base; routed address spaces must be disjoint");
  for (const WanHop& hop : hops) {
    NM_CHECK(hop.egress != nullptr && hop.wan != nullptr && hop.ingress != nullptr &&
                 hop.to != nullptr,
             spec_.name << ": incomplete WAN hop on route to " << dst.spec_.name);
  }
  NM_CHECK(hops.back().to == &dst,
           spec_.name << ": route's last hop lands on " << hops.back().to->spec_.name
                      << ", not " << dst.spec_.name);
  for (Route& route : routes_) {
    if (route.dst == &dst) {
      route.hops = std::move(hops);
      return;
    }
  }
  routes_.push_back(Route{&dst, std::move(hops)});
  NM_LOG_DEBUG("net") << spec_.name << ": route to " << dst.spec_.name << " via "
                      << routes_.back().hops.size() << " WAN hop(s)";
}

void Fabric::peer_with(Fabric& other, sim::WanLink& wan) {
  NM_CHECK(&other != this, spec_.name << ": cannot peer a fabric with itself");
  NM_CHECK(uplink_ != nullptr, spec_.name << ": set_uplink before peer_with");
  NM_CHECK(other.uplink_ != nullptr, other.spec_.name << ": set_uplink before peer_with");
  add_route(other, {WanHop{uplink_, &wan, other.uplink_, &other}});
  other.add_route(*this, {WanHop{other.uplink_, &wan, uplink_, this}});
  NM_LOG_DEBUG("net") << spec_.name << ": peered with " << other.spec_.name << " over WAN link "
                      << wan.name();
}

std::pair<AttachmentPtr, const Fabric::Route*> Fabric::find_remote(FabricAddress addr) const {
  for (const Route& route : routes_) {
    if (AttachmentPtr dst = route.dst->find(addr)) {
      return {std::move(dst), &route};
    }
  }
  return {nullptr, nullptr};
}

double Fabric::path_rate(const AttachmentPtr& src, FabricAddress dst_addr) const {
  NM_CHECK(src != nullptr, "path_rate from null attachment");
  const double src_rate = src->port_->line_rate().bytes_per_second();
  if (AttachmentPtr dst = find(dst_addr)) {
    double rate = std::min(src_rate, dst->port_->line_rate().bytes_per_second());
    if (topology_ != nullptr) {
      rate = std::min(rate,
                      topology_->path_rate(topology_->leaf_of(*src->port_),
                                           topology_->leaf_of(*dst->port_)));
    }
    return rate;
  }
  auto [dst, route] = find_remote(dst_addr);
  if (dst != nullptr) {
    double rate = std::min(src_rate, dst->port_->line_rate().bytes_per_second());
    for (const WanHop& hop : route->hops) {
      rate = std::min({rate, hop.egress->line_rate().bytes_per_second(),
                       hop.wan->effective_rate(), hop.ingress->line_rate().bytes_per_second()});
    }
    if (topology_ != nullptr) {
      rate = std::min(rate, topology_->path_rate(topology_->leaf_of(*src->port_),
                                                 net::ClosFabric::kSpineAttach));
    }
    const Fabric* landing = route->hops.back().to;
    if (landing->topology_ != nullptr) {
      rate = std::min(rate,
                      landing->topology_->path_rate(net::ClosFabric::kSpineAttach,
                                                    landing->topology_->leaf_of(*dst->port_)));
    }
    return rate;
  }
  throw OperationError(spec_.name + ": no attachment at address " + std::to_string(dst_addr) +
                       " (stale address?)");
}

AttachmentPtr Fabric::attach(NicPort& port) {
  auto att = AttachmentPtr(new Attachment(simulation(), *this, port));
  att->address_ = next_address_++;
  att->state_ = LinkState::kPolling;
  att->activation_epoch_ = ++epoch_counter_;
  by_address_[att->address_] = att;
  NM_LOG_DEBUG("net") << spec_.name << ": " << port.name() << " attached, addr "
                      << att->address_ << ", training for " << spec_.linkup_time;
  const auto epoch = att->activation_epoch_;
  simulation().post(spec_.linkup_time, [att, epoch] {
    // Ignore if the attachment was detached (and possibly re-attached)
    // while training.
    if (att->activation_epoch_ == epoch && att->state_ == LinkState::kPolling) {
      att->state_ = LinkState::kActive;
      att->active_gate_.open();
    }
  });
  return att;
}

void Fabric::detach(const AttachmentPtr& att) {
  NM_CHECK(att != nullptr, "detach(nullptr)");
  NM_CHECK(att->fabric_ == this, "attachment belongs to fabric " << att->fabric_->name());
  if (att->state_ == LinkState::kDown) {
    return;
  }
  by_address_.erase(att->address_);
  att->state_ = LinkState::kDown;
  att->active_gate_.close();
  ++epoch_counter_;
  att->activation_epoch_ = epoch_counter_;  // invalidate pending training
  if (!spec_.stable_addresses) {
    att->address_ = kInvalidAddress;
  }
  NM_LOG_DEBUG("net") << spec_.name << ": " << att->port_->name() << " detached";
}

void Fabric::rebind(const AttachmentPtr& att, NicPort& new_port) {
  NM_CHECK(att != nullptr, "rebind(nullptr)");
  NM_CHECK(att->fabric_ == this, "attachment belongs to fabric " << att->fabric_->name());
  NM_CHECK(spec_.stable_addresses,
           spec_.name << " does not support rebinding (addresses are not stable)");
  att->port_ = &new_port;
  if (att->state_ == LinkState::kDown) {
    // Re-joining the fabric under the same address.
    att->state_ = LinkState::kPolling;
    att->activation_epoch_ = ++epoch_counter_;
    if (att->address_ == kInvalidAddress) {
      att->address_ = next_address_++;
    }
    by_address_[att->address_] = att;
    const auto epoch = att->activation_epoch_;
    simulation().post(spec_.linkup_time, [att, epoch] {
      if (att->activation_epoch_ == epoch && att->state_ == LinkState::kPolling) {
        att->state_ = LinkState::kActive;
        att->active_gate_.open();
      }
    });
  }
  NM_LOG_DEBUG("net") << spec_.name << ": addr " << att->address_ << " rebound to "
                      << new_port.name();
}

AttachmentPtr Fabric::find(FabricAddress addr) const {
  auto it = by_address_.find(addr);
  if (it == by_address_.end()) {
    return nullptr;
  }
  return it->second.lock();
}

sim::Task Fabric::transfer(AttachmentPtr src, FabricAddress dst_addr, Bytes bytes,
                           TransferOptions opts) {
  NM_CHECK(src != nullptr, "transfer from null attachment");
  if (src->state_ != LinkState::kActive) {
    throw OperationError(spec_.name + ": source link " + src->port_->name() +
                         " is not active (state " + std::string(to_string(src->state_)) + ")");
  }
  AttachmentPtr dst = find(dst_addr);
  // Cross-site destination: ride each hop's uplink and WAN endpoint pair.
  // The hop list is copied before any suspension so a concurrent re-route
  // (add_route replacing the table after a partition) cannot invalidate it
  // mid-transfer.
  std::vector<WanHop> hops;
  if (dst == nullptr) {
    auto [remote, route] = find_remote(dst_addr);
    if (remote != nullptr) {
      dst = std::move(remote);
      hops = route->hops;
    }
  }
  if (dst == nullptr) {
    throw OperationError(spec_.name + ": no attachment at address " +
                         std::to_string(dst_addr) + " (stale address?)");
  }
  if (dst->state_ != LinkState::kActive) {
    throw OperationError(spec_.name + ": destination link " + dst->port_->name() +
                         " is not active");
  }

  // Propagation/switching latency, then the bandwidth phase. A cross-site
  // path additionally pays each crossed WAN's one-way propagation and each
  // transited site's switching latency.
  Duration lat = spec_.latency;
  for (const WanHop& hop : hops) {
    lat += hop.wan->one_way_latency() + hop.to->spec_.latency;
  }
  co_await simulation().delay(lat);

  if (bytes.is_zero()) {
    co_return;
  }
  std::vector<sim::ResourceShare> shares;
  shares.push_back({&src->port_->tx(), 1.0});
  // Intra-site topology: the source fabric contributes the up-segment (or
  // the full leaf-to-leaf path for a local destination); a cross-site
  // transfer additionally crosses the landing fabric's down-segment to the
  // destination leaf. Transit sites are crossed gateway-to-gateway at the
  // top tier, so they contribute nothing.
  if (topology_ != nullptr) {
    const int src_leaf = topology_->leaf_of(*src->port_);
    const int dst_leaf =
        hops.empty() ? topology_->leaf_of(*dst->port_) : net::ClosFabric::kSpineAttach;
    topology_->append_shares(topology_->pick_path(src_leaf, dst_leaf), shares);
  }
  if (!hops.empty() && hops.back().to->topology_ != nullptr) {
    ClosFabric& landing = *hops.back().to->topology_;
    landing.append_shares(
        landing.pick_path(net::ClosFabric::kSpineAttach, landing.leaf_of(*dst->port_)), shares);
  }
  for (const WanHop& hop : hops) {
    // Both WAN endpoints are crossed (shared medium), so exactly one of
    // them is always foreign to the flow's home domain and the link's
    // CapPolicy governs the published boundary cap in either direction.
    shares.push_back({&hop.egress->tx(), 1.0});
    shares.push_back({&hop.wan->a(), 1.0});
    shares.push_back({&hop.wan->b(), 1.0});
    shares.push_back({&hop.ingress->rx(), 1.0});
  }
  shares.push_back({&dst->port_->rx(), 1.0});
  if (opts.src_cpu_per_byte > 0.0) {
    shares.push_back({&src->port_->node().cpu(), opts.src_cpu_per_byte});
  }
  if (opts.dst_cpu_per_byte > 0.0) {
    shares.push_back({&dst->port_->node().cpu(), opts.dst_cpu_per_byte});
  }
  for (const auto& extra : opts.extras) {
    shares.push_back(extra);
  }
  for (const auto& rx_extra : dst->rx_shares_) {
    shares.push_back(rx_extra);
  }
  // Named spec, not a temporary: see the FlowLabel comment in fluid.h —
  // GCC 12 miscompiles FlowSpec temporaries that live across a co_await.
  sim::FlowSpec spec{.work = static_cast<double>(bytes.count()),
                     .shares = std::move(shares),
                     .max_rate = opts.max_rate};
  co_await router_->run(std::move(spec));
}

}  // namespace nm::net
