// The shipped policies. Each is a pure function of the Observation, its
// own named Rng stream, and state it evolved at earlier (clocked) hook
// invocations — see policy.h for the determinism contract.
#pragma once

#include <cstdint>
#include <memory>

#include "policy/policy.h"

namespace nm::policy {

/// The migration guarantee: bit-identical to the pre-policy hardcoded
/// behavior. Returns a default Action at every hook — legacy round-robin
/// destinations, uncapped pre-copy, pause as soon as the estimate fits,
/// admit everything. tests/policy_test.cpp pins this against pre-refactor
/// golden digests.
class StaticPolicy final : public Policy {
 public:
  StaticPolicy() : Policy("static") {}
  [[nodiscard]] Action decide(Hook hook, const Observation& obs) override;
};

struct SloThrottleConfig {
  /// Pre-copy p99 target. zero = derive as `deadline * target_fraction`
  /// from the observed service (no throttle when no service observes).
  Duration target_p99 = Duration::zero();
  double target_fraction = 0.5;
  /// Proportional aggressiveness: cap = line_rate * (target/p99)^gamma.
  double gamma = 1.0;
  /// Never throttle below this (bytes/s) — the pre-copy must stay ahead of
  /// the guest's dirty rate or the migration cannot converge.
  double floor_rate = 40e6;
  /// Ignore a phase histogram with fewer samples than this (early-round
  /// p99 over a handful of requests is noise).
  std::uint64_t min_samples = 50;
};

/// Closes the SLO loop on pre-copy interference: before each round,
/// compares the live pre-copy-phase p99 against the target and throttles
/// the round's send bandwidth proportionally. The blackout is untouched
/// (the engine never applies round caps to the estimator or the
/// stop-and-copy drain), so max_downtime still holds.
class SloThrottlePolicy final : public Policy {
 public:
  explicit SloThrottlePolicy(SloThrottleConfig config = {})
      : Policy("slo-throttle"), config_(config) {}
  [[nodiscard]] Action decide(Hook hook, const Observation& obs) override;
  [[nodiscard]] const SloThrottleConfig& config() const { return config_; }

 private:
  SloThrottleConfig config_;
};

struct QuietPauseConfig {
  /// Pause only while the service's in-flight request count is at or below
  /// this (0 = a fully drained instant).
  std::uint64_t quiet_in_flight = 0;
  /// Give up waiting after this many deferred pauses per episode; the
  /// engine's round cap bounds deferral regardless.
  int max_extra_rounds = 4;
};

/// Picks the stop-and-copy instant off the observed arrival process: when
/// the downtime estimate fits but requests are in flight, runs another
/// pre-copy round and re-asks, so the blackout tends to land in an
/// arrival gap instead of on top of queued work.
class QuietPausePolicy final : public Policy {
 public:
  explicit QuietPausePolicy(QuietPauseConfig config = {})
      : Policy("quiet-pause"), config_(config) {}
  [[nodiscard]] Action decide(Hook hook, const Observation& obs) override;
  [[nodiscard]] const QuietPauseConfig& config() const { return config_; }

 private:
  QuietPauseConfig config_;
  /// Per-episode deferral budget, keyed on the episode's start instant
  /// (evolves only at clocked kPauseDecision invocations).
  TimePoint episode_start_ = TimePoint::origin();
  int deferred_ = 0;
};

/// Avin-style greedy destination swap (arXiv:1309.5826): starts from the
/// legacy round-robin assignment, greedily rebalances VMs onto the
/// least-loaded candidates (load = resident VMs + incoming assignment,
/// respecting free_slots where tracked), then maximizes retention of the
/// legacy choice among assignments with equal balance — balanced placement
/// at minimal reassignment distance. Fully deterministic: ties break on
/// the lowest candidate index.
class DestinationSwapPolicy final : public Policy {
 public:
  DestinationSwapPolicy() : Policy("dest-swap") {}
  [[nodiscard]] Action decide(Hook hook, const Observation& obs) override;
};

/// Admission control during the blackout: fast-fails requests that arrive
/// while the VM is paused (and would be queued into a guaranteed deadline
/// miss) instead of letting them pile onto the frozen service.
class BlackoutShedPolicy final : public Policy {
 public:
  BlackoutShedPolicy() : Policy("blackout-shed") {}
  [[nodiscard]] Action decide(Hook hook, const Observation& obs) override;
};

}  // namespace nm::policy
