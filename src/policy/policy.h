// policy:: — the pluggable decision framework that closes the SLO loop on
// live migration (ROADMAP: "decisions as plug-ins over a narrow
// stats/actuation API", the Sniper policy_code idiom).
//
// The migration *mechanism* (pre-copy + hotplug windows) is fixed; every
// *decision* — when to migrate, where to, how fast to pre-copy, when to
// pause, what to admit during the blackout — used to be a hardcoded branch
// at some call site in ninja.cpp / service_episode.cpp / the examples.
// Here those decisions are plug-ins with one narrow contract:
//
//   Observation in  — a read-only snapshot assembled at a clocked hook
//                     point: live vmm::MigrationStats, a per-phase SLO
//                     digest from the service layer, destination-candidate
//                     utilization, optionally the plan::SiteGraph mesh.
//   Action out      — start/defer, a destination assignment, a pre-copy
//                     bandwidth cap, pause/defer-pause, force stop-and-copy,
//                     admit/reject. A default-constructed Action always
//                     means "keep the legacy behavior", which is what makes
//                     StaticPolicy's bit-identity guarantee structural
//                     rather than a re-implementation that could drift.
//
// Determinism contract: decide() must be a pure function of the
// Observation plus the policy's own named Rng stream (and any state the
// policy itself evolved at earlier hook invocations). Hooks fire at
// clocked instants of simulated time from task context — never from solve
// workers — so policy-driven timelines stay bit-identical at every
// solve-worker count (tests/policy_test.cpp pins this for every shipped
// policy).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "plan/evacuation_planner.h"
#include "util/rng.h"
#include "util/units.h"
#include "vmm/migration.h"

namespace nm::policy {

/// The clocked decision points the frameworks expose. One Policy instance
/// may serve any subset; PolicySet routes each hook independently.
enum class Hook {
  kEpisodeStart,   // start or defer an episode; assign destinations
  kPreCopyRound,   // before each pre-copy round: bandwidth cap / force stop
  kPauseDecision,  // downtime estimate fits: pause now or keep pre-copying?
  kAdmission,      // service layer: admit this request in the current phase?
  kWaveGrant,      // evacuation wave grant: destination-host assignment
};
inline constexpr int kHooks = 5;
[[nodiscard]] std::string_view to_string(Hook hook);

/// One migration phase's slice of the service-layer SLO digest.
struct SloPhaseView {
  std::uint64_t requests = 0;
  std::uint64_t deadline_misses = 0;
  Duration p50 = Duration::zero();
  Duration p99 = Duration::zero();
  Duration p999 = Duration::zero();
};

/// Read-only SLO digest of a live request-serving workload
/// (workloads::KvService::slo_snapshot produces one). `valid` is false
/// when no service is wired into the hook point.
struct SloSnapshot {
  bool valid = false;
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t deadline_misses = 0;
  Duration deadline = Duration::zero();
  std::array<SloPhaseView, vmm::kMigrationPhases> phases{};

  [[nodiscard]] const SloPhaseView& phase(vmm::MigrationPhase p) const {
    return phases[static_cast<std::size_t>(p)];
  }
};

/// A destination candidate as seen at a placement hook.
struct HostCandidate {
  std::string name;
  int resident_vms = 0;
  /// Free VM slots; negative = uncapacitated / untracked (Ninja plans do
  /// not track slots, evacuation waves do).
  int free_slots = -1;
};

/// The read-only view a hook point assembles. Everything is a snapshot at
/// the hook instant; pointers are non-owning and valid only for the
/// duration of the decide() call.
struct Observation {
  TimePoint now = TimePoint::origin();
  /// Live stats of the migration this decision concerns (null before the
  /// engine publishes its first snapshot).
  const vmm::MigrationStats* migration = nullptr;
  /// Service-layer SLO digest (valid=false when no service observes).
  SloSnapshot slo;
  /// The engine's downtime promise in force.
  Duration max_downtime = Duration::zero();
  /// Send rate the engine would use uncapped (bytes/s; thread rate or the
  /// path rate, whichever binds).
  double line_rate = std::numeric_limits<double>::infinity();
  /// kPauseDecision: estimated stop-and-copy downtime at the uncapped rate.
  Duration estimated_downtime = Duration::zero();
  /// kPreCopyRound / kPauseDecision: pre-copy rounds completed so far.
  int round = 0;
  /// kEpisodeStart / kWaveGrant: destination candidates.
  std::vector<HostCandidate> candidates;
  /// kEpisodeStart / kWaveGrant: how many VMs are being placed.
  std::size_t vm_count = 0;
  /// Federation capacity view at evacuation hooks (null elsewhere).
  const plan::SiteGraph* sites = nullptr;
};

/// What a policy decided. Default-constructed == "keep the legacy
/// behavior" at every hook — StaticPolicy returns exactly this.
struct Action {
  // -- kEpisodeStart ------------------------------------------------------
  /// Defer the episode instead of starting it; the framework re-asks after
  /// `defer_for` (or its own poll period when zero).
  bool defer = false;
  Duration defer_for = Duration::zero();
  /// Per-VM candidate index (size vm_count, values in [0, candidates)).
  /// Empty = the legacy round-robin `destinations[i % size]` expansion
  /// (kEpisodeStart) or the driver's own greedy host pick (kWaveGrant).
  std::vector<int> assignment;
  // -- kPreCopyRound ------------------------------------------------------
  /// Bandwidth cap for the next pre-copy round (bytes/s; min'd with the
  /// engine's administrative and per-call caps). Infinity = uncapped.
  double bandwidth_cap = std::numeric_limits<double>::infinity();
  /// Force stop-and-copy now even though the estimate does not fit yet.
  bool force_stop_and_copy = false;
  // -- kPauseDecision -----------------------------------------------------
  /// Run another pre-copy round instead of pausing now (the engine asks
  /// again after that round; the round cap still bounds deferral).
  bool defer_pause = false;
  // -- kAdmission ---------------------------------------------------------
  /// Reject the request (fast-fail instead of queueing into the phase).
  bool reject = false;
};

/// Base class for migration/placement decision plug-ins.
class Policy {
 public:
  explicit Policy(std::string name) : name_(std::move(name)), rng_(0) {}
  Policy(const Policy&) = delete;
  Policy& operator=(const Policy&) = delete;
  virtual ~Policy() = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// The decision. Must be a pure function of `obs`, this policy's named
  /// Rng stream, and state evolved at earlier hook invocations; must not
  /// touch simulation state or block.
  [[nodiscard]] virtual Action decide(Hook hook, const Observation& obs) = 0;

  /// Derives the policy's private stream ("policy/<name>") from the
  /// simulation seed. Idempotent: the first bind wins, so a PolicySet
  /// shared between frameworks keeps one draw sequence.
  void bind_seed(std::uint64_t seed) {
    if (!bound_) {
      rng_ = Rng::stream(seed, "policy/" + name_);
      bound_ = true;
    }
  }

 protected:
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  std::string name_;
  Rng rng_;
  bool bound_ = false;
};

/// Decisions as plug-ins: one shared_ptr<Policy> per hook. Defaults to
/// StaticPolicy everywhere, so `PolicySet{}` *is* the legacy behavior.
class PolicySet {
 public:
  PolicySet();

  /// Routes every hook to `p`.
  PolicySet& use(std::shared_ptr<Policy> p);
  /// Routes one hook to `p`.
  PolicySet& use(Hook hook, std::shared_ptr<Policy> p);

  [[nodiscard]] Policy& at(Hook hook) const;
  [[nodiscard]] std::shared_ptr<Policy> share(Hook hook) const;

  /// Binds every distinct policy's Rng stream (idempotent per policy).
  void bind_seed(std::uint64_t seed) const;

  /// Convenience: bind + decide at one hook.
  [[nodiscard]] Action decide(Hook hook, const Observation& obs) const;

  /// "start=static round=slo-throttle pause=quiet-pause ..." for logs.
  [[nodiscard]] std::string describe() const;

 private:
  std::array<std::shared_ptr<Policy>, kHooks> hooks_;
};

/// Callbacks a framework uses to fill the dynamic Observation fields at
/// each hook. All must be cheap, pure reads of simulated state; null
/// members simply leave the corresponding field at its default.
struct ObservationSource {
  std::function<SloSnapshot()> slo;
  std::function<TimePoint()> now;
};

/// Resolves an Action's destination assignment: validates a non-empty
/// assignment (size == vm_count, indices in range) and expands the legacy
/// round-robin when empty. Returns one candidate index per VM.
[[nodiscard]] std::vector<int> resolve_assignment(const Action& action,
                                                  std::size_t vm_count,
                                                  std::size_t candidate_count,
                                                  std::string_view who);

/// Builds the vmm::MigrationEngine control block that routes the engine's
/// clocked decision points (per-round cap, pause instant, forced stop)
/// through `set`. `source` fills the SLO fields of each Observation;
/// `max_downtime`/`line_rate` describe the engine configuration in force.
/// The returned struct captures `set` and `source` by value (policies are
/// shared_ptrs, so decisions still land in the caller's policy objects).
[[nodiscard]] vmm::MigrationControl make_migration_control(PolicySet set,
                                                           ObservationSource source,
                                                           Duration max_downtime,
                                                           double line_rate);

}  // namespace nm::policy
