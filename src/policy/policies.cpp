#include "policy/policies.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace nm::policy {

Action StaticPolicy::decide(Hook /*hook*/, const Observation& /*obs*/) {
  return Action{};  // the default Action *is* the legacy behavior
}

Action SloThrottlePolicy::decide(Hook hook, const Observation& obs) {
  if (hook != Hook::kPreCopyRound || !obs.slo.valid) {
    return Action{};
  }
  Duration target = config_.target_p99;
  if (target == Duration::zero()) {
    if (obs.slo.deadline == Duration::zero()) {
      return Action{};  // nothing to aim at
    }
    target = Duration::seconds(obs.slo.deadline.to_seconds() * config_.target_fraction);
  }
  const SloPhaseView& precopy = obs.slo.phase(vmm::MigrationPhase::kPreCopy);
  if (precopy.requests < config_.min_samples || precopy.p99 <= target) {
    return Action{};  // not enough signal / already within target
  }
  // Proportional back-off: the further the live p99 overshoots the target,
  // the harder the next round is throttled. Floored so the pre-copy always
  // outruns the guest's dirty rate (otherwise it cannot converge and the
  // round cap would force a long blackout — the opposite of the goal).
  const double ratio = target.to_seconds() / precopy.p99.to_seconds();
  Action action;
  action.bandwidth_cap =
      std::max(config_.floor_rate, obs.line_rate * std::pow(ratio, config_.gamma));
  return action;
}

Action QuietPausePolicy::decide(Hook hook, const Observation& obs) {
  if (hook != Hook::kPauseDecision || !obs.slo.valid) {
    return Action{};
  }
  // New episode (new start instant) -> fresh deferral budget. The state
  // only ever evolves here, at clocked kPauseDecision instants, so the
  // policy stays a pure function of its observation history.
  const TimePoint start =
      obs.migration != nullptr ? obs.migration->start_at : TimePoint::origin();
  if (start != episode_start_) {
    episode_start_ = start;
    deferred_ = 0;
  }
  if (obs.slo.in_flight <= config_.quiet_in_flight ||
      deferred_ >= config_.max_extra_rounds) {
    return Action{};  // quiet enough (or out of patience): pause now
  }
  ++deferred_;
  Action action;
  action.defer_pause = true;  // one more pre-copy round, then re-ask
  return action;
}

Action DestinationSwapPolicy::decide(Hook hook, const Observation& obs) {
  if ((hook != Hook::kEpisodeStart && hook != Hook::kWaveGrant) ||
      obs.candidates.empty() || obs.vm_count == 0) {
    return Action{};
  }
  const std::size_t c_count = obs.candidates.size();

  // Pass 1 — balanced target counts: place the N incoming VMs one at a
  // time on the least-loaded candidate with capacity left (load = resident
  // VMs + incoming so far; ties break on the lowest index).
  std::vector<int> load(c_count);
  std::vector<int> counts(c_count, 0);
  for (std::size_t c = 0; c < c_count; ++c) {
    load[c] = obs.candidates[c].resident_vms;
  }
  for (std::size_t i = 0; i < obs.vm_count; ++i) {
    int best = -1;
    for (std::size_t c = 0; c < c_count; ++c) {
      const int slots = obs.candidates[c].free_slots;
      if (slots >= 0 && counts[c] >= slots) {
        continue;  // capacitated candidate is full
      }
      if (best < 0 || load[c] < load[best]) {
        best = static_cast<int>(c);
      }
    }
    if (best < 0) {
      return Action{};  // nowhere with capacity: let the legacy path decide
    }
    ++load[best];
    ++counts[best];
  }

  // Pass 2 — minimal reassignment distance (the Avin-style swap step): of
  // all assignments realizing those counts, keep as many VMs as possible
  // on their legacy round-robin choice, then fill the rest in index order.
  std::vector<int> assignment(obs.vm_count, -1);
  for (std::size_t i = 0; i < obs.vm_count; ++i) {
    const int legacy = static_cast<int>(i % c_count);
    if (counts[legacy] > 0) {
      assignment[i] = legacy;
      --counts[legacy];
    }
  }
  std::size_t next = 0;
  for (auto& a : assignment) {
    if (a >= 0) {
      continue;
    }
    while (counts[next] == 0) {
      ++next;
    }
    a = static_cast<int>(next);
    --counts[next];
  }
  Action action;
  action.assignment = std::move(assignment);
  return action;
}

Action BlackoutShedPolicy::decide(Hook hook, const Observation& obs) {
  if (hook != Hook::kAdmission || obs.migration == nullptr) {
    return Action{};
  }
  Action action;
  // A zero-length interval at the arrival instant classifies against the
  // live phase boundaries: anything arriving mid-pause sheds.
  action.reject =
      obs.migration->phase_of(obs.now, obs.now) == vmm::MigrationPhase::kBlackout;
  return action;
}

}  // namespace nm::policy
