#include "policy/policy.h"

#include <algorithm>
#include <utility>

#include "policy/policies.h"
#include "util/error.h"

namespace nm::policy {

std::string_view to_string(Hook hook) {
  switch (hook) {
    case Hook::kEpisodeStart:
      return "episode-start";
    case Hook::kPreCopyRound:
      return "pre-copy-round";
    case Hook::kPauseDecision:
      return "pause-decision";
    case Hook::kAdmission:
      return "admission";
    case Hook::kWaveGrant:
      return "wave-grant";
  }
  return "?";
}

PolicySet::PolicySet() {
  // One shared StaticPolicy serves every hook by default, so a
  // default-constructed PolicySet *is* the legacy behavior.
  auto fallback = std::make_shared<StaticPolicy>();
  hooks_.fill(std::move(fallback));
}

PolicySet& PolicySet::use(std::shared_ptr<Policy> p) {
  NM_CHECK(p != nullptr, "PolicySet::use: null policy");
  hooks_.fill(std::move(p));
  return *this;
}

PolicySet& PolicySet::use(Hook hook, std::shared_ptr<Policy> p) {
  NM_CHECK(p != nullptr, "PolicySet::use: null policy");
  hooks_[static_cast<std::size_t>(hook)] = std::move(p);
  return *this;
}

Policy& PolicySet::at(Hook hook) const {
  return *hooks_[static_cast<std::size_t>(hook)];
}

std::shared_ptr<Policy> PolicySet::share(Hook hook) const {
  return hooks_[static_cast<std::size_t>(hook)];
}

void PolicySet::bind_seed(std::uint64_t seed) const {
  for (const auto& p : hooks_) {
    p->bind_seed(seed);  // idempotent per policy object
  }
}

Action PolicySet::decide(Hook hook, const Observation& obs) const {
  return at(hook).decide(hook, obs);
}

std::string PolicySet::describe() const {
  std::string out;
  for (int h = 0; h < kHooks; ++h) {
    if (!out.empty()) {
      out += ' ';
    }
    out += to_string(static_cast<Hook>(h));
    out += '=';
    out += hooks_[static_cast<std::size_t>(h)]->name();
  }
  return out;
}

std::vector<int> resolve_assignment(const Action& action, std::size_t vm_count,
                                    std::size_t candidate_count, std::string_view who) {
  NM_CHECK(candidate_count > 0, std::string(who) + ": no destination candidates");
  std::vector<int> out;
  out.reserve(vm_count);
  if (action.assignment.empty()) {
    // Legacy expansion: VM i goes to candidates[i % size].
    for (std::size_t i = 0; i < vm_count; ++i) {
      out.push_back(static_cast<int>(i % candidate_count));
    }
    return out;
  }
  NM_CHECK(action.assignment.size() == vm_count,
           std::string(who) + ": assignment size " +
               std::to_string(action.assignment.size()) + " != vm count " +
               std::to_string(vm_count));
  for (const int c : action.assignment) {
    NM_CHECK(c >= 0 && static_cast<std::size_t>(c) < candidate_count,
             std::string(who) + ": assignment index " + std::to_string(c) +
                 " out of range [0, " + std::to_string(candidate_count) + ")");
    out.push_back(c);
  }
  return out;
}

vmm::MigrationControl make_migration_control(PolicySet set, ObservationSource source,
                                             Duration max_downtime, double line_rate) {
  // Everything is captured by value; the PolicySet copy shares the caller's
  // policy objects (shared_ptr), so per-policy state keeps accumulating in
  // one place even when several controls are built from the same set.
  auto observe = [source = std::move(source), max_downtime,
                  line_rate](const vmm::MigrationStats& live, int round) {
    Observation obs;
    if (source.now) {
      obs.now = source.now();
    }
    obs.migration = &live;
    if (source.slo) {
      obs.slo = source.slo();
    }
    obs.max_downtime = max_downtime;
    obs.line_rate = line_rate;
    obs.round = round;
    return obs;
  };
  vmm::MigrationControl control;
  control.precopy_cap = [set, observe](const vmm::MigrationStats& live, int round) {
    return set.decide(Hook::kPreCopyRound, observe(live, round)).bandwidth_cap;
  };
  control.force_stop = [set, observe](const vmm::MigrationStats& live, int round) {
    return set.decide(Hook::kPreCopyRound, observe(live, round)).force_stop_and_copy;
  };
  control.allow_pause = [set, observe](const vmm::MigrationStats& live,
                                       Duration estimated_downtime) {
    Observation obs = observe(live, live.rounds);
    obs.estimated_downtime = estimated_downtime;
    return !set.decide(Hook::kPauseDecision, obs).defer_pause;
  };
  return control;
}

}  // namespace nm::policy
