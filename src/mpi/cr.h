// The checkpoint/restart stack: OMPI CRCP (coordination protocol that
// quiesces in-flight traffic) + OPAL CRS with a SELF component
// (application-provided checkpoint/continue/restart callbacks). Ninja's
// libsymvirt registers its SymVirt coordinator as the SELF callbacks;
// between the checkpoint and continue callbacks the VMM-side controller
// detaches devices, migrates the VM, and re-attaches (Fig 4).
//
// Service flow (SPMD — every rank executes this when a checkpoint is
// pending, entering from any MPI call):
//   1. quiesce barrier  — the CRCP bookmark exchange: all ranks inside the
//      library and no bytes in flight;
//   2. release InfiniBand resources (CRS pre-checkpoint);
//   3. SELF checkpoint callback (windows A: detach, B: migrate);
//   4. SELF continue callback  (window C: re-attach, link-up wait);
//   5. reconstruction vote + BTL rebuild with a fresh modex — forced when
//      `ompi_cr_continue_like_restart` is set, otherwise only when some
//      module went stale (paper §III-C);
//   6. exit barrier; the request is then complete.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/sync.h"
#include "sim/task.h"

namespace nm::mpi {

class MpiRuntime;
class Rank;

class CrService {
 public:
  /// A SELF-component callback: a coroutine run in the context of a rank.
  using SelfCallback = std::function<sim::Task(Rank&)>;

  explicit CrService(MpiRuntime& runtime);

  /// Registers the SELF component callbacks (libsymvirt does this at load).
  void register_self(SelfCallback checkpoint, SelfCallback cont, SelfCallback restart);

  /// Initiates a coordinated checkpoint (the `ompi-checkpoint` analogue).
  /// Returns the request generation to wait on. Requires ft_enable_cr.
  std::uint64_t request();
  [[nodiscard]] bool pending() const { return pending_; }
  [[nodiscard]] std::uint64_t completed_generation() const { return completed_generation_; }
  /// Waits until request generation `gen` has fully completed.
  [[nodiscard]] sim::Task wait_complete(std::uint64_t gen);

  /// Library entry hook: participates in a pending checkpoint, else free.
  [[nodiscard]] sim::Task service_if_pending(Rank& rank);

  /// Internal: runtime state changed (delivery etc.) — re-check conditions.
  void notify_state_changed() { state_changed_.notify_all(); }
  /// Internal: called by MpiRuntime::init.
  void on_init(std::size_t rank_count);

  [[nodiscard]] std::size_t in_service() const { return in_service_; }

 private:
  [[nodiscard]] sim::Task service(Rank& rank);

  MpiRuntime* runtime_;
  SelfCallback checkpoint_cb_;
  SelfCallback continue_cb_;
  SelfCallback restart_cb_;  // kept for API parity; SymVirt does not use it

  bool pending_ = false;
  std::uint64_t requested_generation_ = 0;
  std::uint64_t completed_generation_ = 0;
  std::size_t rank_count_ = 0;
  std::size_t in_service_ = 0;
  std::size_t exited_ = 0;
  bool vote_reconstruct_ = false;
  std::unique_ptr<sim::Barrier> barrier_;
  sim::Notifier state_changed_;
  sim::Notifier completion_;
};

}  // namespace nm::mpi
