#include "mpi/btl.h"

#include "util/error.h"
#include "vmm/host.h"
#include "vmm/vm.h"

namespace nm::mpi {

// --- SmBtl ------------------------------------------------------------------

SmBtl::SmBtl(vmm::Vm& vm, Bandwidth copy_rate) : vm_(&vm), copy_rate_(copy_rate) {}

bool SmBtl::can_reach(const ModexEntry& peer) const {
  return peer.vm_id == reinterpret_cast<std::uint64_t>(vm_);
}

sim::Task SmBtl::put(const ModexEntry& peer, Bytes bytes) {
  NM_CHECK(can_reach(peer), "sm put to a peer in another VM");
  // A single-core memcpy through a shared-memory FIFO: the copying core is
  // busy for bytes/copy_rate, charged against the VM's vCPU allotment and
  // the host's cores (so over-commit slows intra-VM traffic too).
  co_await vm_->run_gate().opened();
  const double rate = copy_rate_.bytes_per_second();
  std::vector<sim::ResourceShare> shares{{&vm_->vcpu(), 1.0 / rate},
                                         {&vm_->host().node().cpu(), 1.0 / rate}};
  auto flow = vm_->host().router().start(
      sim::FlowSpec{static_cast<double>(bytes.count()), std::move(shares), rate, {}});
  vm_->track_flow(flow);
  if (!flow->finished()) {
    co_await flow->completion().wait();
  }
}

// --- TcpBtl -----------------------------------------------------------------

sim::Task TcpBtl::put(const ModexEntry& peer, Bytes bytes) {
  if (!driver_->ready()) {
    throw OperationError("tcp btl: local virtio NIC is not ready");
  }
  co_await driver_->send(peer.ip, bytes);
}

// --- OpenIbBtl ---------------------------------------------------------------

OpenIbBtl::OpenIbBtl(guest::IbVerbsDriver& driver)
    : driver_(&driver), local_lid_(driver.address()) {
  NM_CHECK(driver.ready(),
           "openib btl can only be built on an ACTIVE port (component init "
           "disqualifies itself otherwise)");
}

bool OpenIbBtl::valid() const {
  // Invalid once the HCA is gone or came back with a different LID — saved
  // QPs and the modex snapshot are then meaningless.
  return driver_->ready() && driver_->address() == local_lid_;
}

sim::Task OpenIbBtl::put(const ModexEntry& peer, Bytes bytes) {
  if (!valid()) {
    throw OperationError("openib btl: module is stale (HCA detached or LID changed)");
  }
  // Lazy reliable-connected QP setup per peer, like the real openib BTL.
  if (!peer_qps_.contains(peer.lid)) {
    peer_qps_[peer.lid] = driver_->create_queue_pair();
  }
  co_await driver_->send(peer.lid, bytes);
}

void OpenIbBtl::release_resources() {
  peer_qps_.clear();
  driver_->release_resources();
}

}  // namespace nm::mpi
