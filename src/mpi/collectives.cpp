#include "mpi/collectives.h"

#include <algorithm>

#include "util/error.h"

namespace nm::mpi {

namespace {
constexpr int kTagBase = -1'000'000'000;
constexpr int kOpBarrier = 0;
constexpr int kOpBcast = 1;
constexpr int kOpReduce = 2;
constexpr int kOpAlltoall = 3;
constexpr int kOpGather = 4;
constexpr int kOpScatter = 5;
constexpr int kOpAllgather = 6;
constexpr int kOpKinds = 8;
}  // namespace

Communicator::Communicator(MpiRuntime& runtime, std::vector<RankId> members)
    : runtime_(&runtime), members_(std::move(members)), seq_(members_.size(), 0) {
  NM_CHECK(!members_.empty(), "empty communicator");
}

Communicator Communicator::world(MpiRuntime& runtime) {
  std::vector<RankId> all(runtime.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<RankId>(i);
  }
  return Communicator(runtime, std::move(all));
}

int Communicator::index_of(RankId r) const {
  auto it = std::find(members_.begin(), members_.end(), r);
  NM_CHECK(it != members_.end(), "rank " << r << " is not a member of this communicator");
  return static_cast<int>(it - members_.begin());
}

int Communicator::next_tag(RankId me, int op_kind) {
  auto& counter = seq_[static_cast<std::size_t>(index_of(me))];
  const int tag =
      kTagBase + static_cast<int>((counter % 1'000'000) * kOpKinds) + op_kind;
  ++counter;
  return tag;
}

sim::Task Communicator::barrier(RankId me) {
  const int n = static_cast<int>(members_.size());
  const int vr = index_of(me);
  const int tag = next_tag(me, kOpBarrier);
  if (n == 1) {
    co_await runtime_->progress(me);
    co_return;
  }
  // Dissemination: round k exchanges with peers at distance 2^k.
  for (int dist = 1; dist < n; dist <<= 1) {
    const RankId to = members_[static_cast<std::size_t>((vr + dist) % n)];
    const RankId from = members_[static_cast<std::size_t>(((vr - dist) % n + n) % n)];
    co_await runtime_->send(me, to, tag, Bytes(1));
    co_await runtime_->recv(me, from, tag);
  }
}

sim::Task Communicator::bcast(RankId me, RankId root, Bytes bytes) {
  const int n = static_cast<int>(members_.size());
  const int root_idx = index_of(root);
  const int vr = (index_of(me) - root_idx + n) % n;
  const int tag = next_tag(me, kOpBcast);
  auto abs_rank = [&](int virtual_rank) {
    return members_[static_cast<std::size_t>((virtual_rank + root_idx) % n)];
  };

  // Receive from the parent in the binomial tree.
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      co_await runtime_->recv(me, abs_rank(vr - mask), tag);
      break;
    }
    mask <<= 1;
  }
  if (vr == 0) {
    // Root never receives; its mask ran to the top.
    mask = 1;
    while (mask < n) {
      mask <<= 1;
    }
    co_await runtime_->progress(me);
  }
  // Forward to children.
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n && (vr & mask) == 0) {
      co_await runtime_->send(me, abs_rank(vr + mask), tag, bytes);
    }
    mask >>= 1;
  }
}

sim::Task Communicator::reduce(RankId me, RankId root, Bytes bytes, double compute_per_byte) {
  const int n = static_cast<int>(members_.size());
  const int root_idx = index_of(root);
  const int vr = (index_of(me) - root_idx + n) % n;
  const int tag = next_tag(me, kOpReduce);
  auto abs_rank = [&](int virtual_rank) {
    return members_[static_cast<std::size_t>((virtual_rank + root_idx) % n)];
  };

  int mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      // Ship the local partial result towards the tree root.
      co_await runtime_->send(me, abs_rank(vr - mask), tag, bytes);
      break;
    }
    if (vr + mask < n) {
      co_await runtime_->recv(me, abs_rank(vr + mask), tag);
      if (compute_per_byte > 0.0) {
        co_await runtime_->rank(me).vm().compute(static_cast<double>(bytes.count()) *
                                                 compute_per_byte);
      }
    }
    mask <<= 1;
  }
  if (vr != 0) {
    co_return;
  }
  co_await runtime_->progress(me);
}

sim::Task Communicator::allreduce(RankId me, Bytes bytes, double compute_per_byte) {
  const RankId first = members_.front();
  co_await reduce(me, first, bytes, compute_per_byte);
  co_await bcast(me, first, bytes);
}

sim::Task Communicator::alltoall(RankId me, Bytes bytes_per_pair) {
  const int n = static_cast<int>(members_.size());
  const int vr = index_of(me);
  const int tag = next_tag(me, kOpAlltoall);
  if (n == 1) {
    co_await runtime_->progress(me);
    co_return;
  }
  // XOR schedule: in round r, vr exchanges with vr^r — a perfect matching
  // per round, so partners always meet in the same round.
  for (int round = 1; round < n; ++round) {
    const int pv = vr ^ round;
    if (pv >= n) {
      continue;  // non-power-of-two hole: skip this round
    }
    const RankId peer = members_[static_cast<std::size_t>(pv)];
    if (vr < pv) {
      co_await runtime_->send(me, peer, tag, bytes_per_pair);
      co_await runtime_->recv(me, peer, tag);
    } else {
      co_await runtime_->recv(me, peer, tag);
      co_await runtime_->send(me, peer, tag, bytes_per_pair);
    }
  }
}

sim::Task Communicator::gather(RankId me, RankId root, Bytes bytes) {
  const int n = static_cast<int>(members_.size());
  const int root_idx = index_of(root);
  const int vr = (index_of(me) - root_idx + n) % n;
  const int tag = next_tag(me, kOpGather);
  auto abs_rank = [&](int virtual_rank) {
    return members_[static_cast<std::size_t>((virtual_rank + root_idx) % n)];
  };
  // Mirror of binomial reduce: children fold their subtree's payload into
  // the parent, so higher tree levels carry more bytes.
  int mask = 1;
  std::uint64_t gathered = 1;  // own contribution
  while (mask < n) {
    if ((vr & mask) != 0) {
      co_await runtime_->send(me, abs_rank(vr - mask), tag, Bytes(bytes.count() * gathered));
      break;
    }
    if (vr + mask < n) {
      co_await runtime_->recv(me, abs_rank(vr + mask), tag);
      const std::uint64_t subtree =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(mask),
                                  static_cast<std::uint64_t>(n - vr - mask));
      gathered += subtree;
    }
    mask <<= 1;
  }
  if (vr == 0) {
    co_await runtime_->progress(me);
  }
}

sim::Task Communicator::scatter(RankId me, RankId root, Bytes bytes) {
  const int n = static_cast<int>(members_.size());
  const int root_idx = index_of(root);
  const int vr = (index_of(me) - root_idx + n) % n;
  const int tag = next_tag(me, kOpScatter);
  auto abs_rank = [&](int virtual_rank) {
    return members_[static_cast<std::size_t>((virtual_rank + root_idx) % n)];
  };
  // Binomial: each parent forwards its child's whole subtree payload.
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      co_await runtime_->recv(me, abs_rank(vr - mask), tag);
      break;
    }
    mask <<= 1;
  }
  if (vr == 0) {
    mask = 1;
    while (mask < n) {
      mask <<= 1;
    }
    co_await runtime_->progress(me);
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const std::uint64_t subtree =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(mask),
                                  static_cast<std::uint64_t>(n - vr - mask));
      co_await runtime_->send(me, abs_rank(vr + mask), tag, Bytes(bytes.count() * subtree));
    }
    mask >>= 1;
  }
}

sim::Task Communicator::allgather(RankId me, Bytes bytes) {
  const int n = static_cast<int>(members_.size());
  const int vr = index_of(me);
  const int tag = next_tag(me, kOpAllgather);
  if (n == 1) {
    co_await runtime_->progress(me);
    co_return;
  }
  // Ring: step s passes along the block originally owned by (vr - s).
  const RankId next = members_[static_cast<std::size_t>((vr + 1) % n)];
  const RankId prev = members_[static_cast<std::size_t>((vr - 1 + n) % n)];
  for (int step = 0; step < n - 1; ++step) {
    co_await runtime_->send(me, next, tag, bytes);
    co_await runtime_->recv(me, prev, tag);
  }
}

Communicator Communicator::split(const std::vector<int>& colors, const std::vector<int>& keys,
                                 int my_color) const {
  NM_CHECK(colors.size() == members_.size() && keys.size() == members_.size(),
           "split needs one color and key per member");
  std::vector<std::pair<std::pair<int, RankId>, RankId>> picked;  // ((key, world), rank)
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (colors[i] == my_color) {
      picked.push_back({{keys[i], members_[i]}, members_[i]});
    }
  }
  NM_CHECK(!picked.empty(), "split produced an empty communicator for color " << my_color);
  std::sort(picked.begin(), picked.end());
  std::vector<RankId> new_members;
  new_members.reserve(picked.size());
  for (const auto& [order, member] : picked) {
    new_members.push_back(member);
  }
  return Communicator(*runtime_, std::move(new_members));
}

}  // namespace nm::mpi
