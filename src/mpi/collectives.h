// Collective operations over the runtime's point-to-point layer. The
// binomial-tree algorithms make collective cost track the underlying
// transport (QDR InfiniBand vs virtio TCP), which is what Figure 8's
// per-iteration times measure.
#pragma once

#include <vector>

#include "mpi/runtime.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::mpi {

class Communicator {
 public:
  /// A communicator over an explicit rank list (world: all ranks, in order).
  Communicator(MpiRuntime& runtime, std::vector<RankId> members);
  [[nodiscard]] static Communicator world(MpiRuntime& runtime);

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] MpiRuntime& runtime() { return *runtime_; }
  /// Position of world rank `r` inside this communicator (must be member).
  [[nodiscard]] int index_of(RankId r) const;

  /// Dissemination barrier (log2 n rounds of 1-byte messages).
  [[nodiscard]] sim::Task barrier(RankId me);

  /// Binomial-tree broadcast of `bytes` from `root` (a member index is not
  /// required; pass world rank ids).
  [[nodiscard]] sim::Task bcast(RankId me, RankId root, Bytes bytes);

  /// Binomial-tree reduce to `root`. `compute_per_byte` is the combine
  /// cost in core-seconds per byte at each tree step (0 = free op).
  [[nodiscard]] sim::Task reduce(RankId me, RankId root, Bytes bytes,
                                 double compute_per_byte = 0.0);

  /// reduce-to-first-member + bcast.
  [[nodiscard]] sim::Task allreduce(RankId me, Bytes bytes, double compute_per_byte = 0.0);

  /// Pairwise-exchange all-to-all (XOR schedule): every member ships
  /// `bytes_per_pair` to every other member. FT's global transpose.
  [[nodiscard]] sim::Task alltoall(RankId me, Bytes bytes_per_pair);

  /// Binomial gather of `bytes` from every member to `root` (subtree
  /// payloads aggregate on the way up, like the real algorithm).
  [[nodiscard]] sim::Task gather(RankId me, RankId root, Bytes bytes);

  /// Binomial scatter: root distributes `bytes` to each member (subtree
  /// payloads travel together down the tree).
  [[nodiscard]] sim::Task scatter(RankId me, RankId root, Bytes bytes);

  /// Ring allgather: after n-1 steps every member holds every
  /// contribution of `bytes`.
  [[nodiscard]] sim::Task allgather(RankId me, Bytes bytes);

  /// MPI_Comm_split: members with the same `color` form a new
  /// communicator, ordered by (key, world rank). Call with identical
  /// arguments on every member and use the result for the caller's color.
  [[nodiscard]] Communicator split(const std::vector<int>& colors,
                                   const std::vector<int>& keys, int my_color) const;

 private:
  /// Per-member collective sequence counters. All members call collectives
  /// in the same order, so their counters agree; the counter isolates the
  /// tag space of concurrent/back-to-back collectives.
  [[nodiscard]] int next_tag(RankId me, int op_kind);

  MpiRuntime* runtime_;
  std::vector<RankId> members_;
  std::vector<std::uint64_t> seq_;
};

}  // namespace nm::mpi
