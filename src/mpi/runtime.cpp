#include "mpi/runtime.h"

#include <algorithm>

#include "mpi/cr.h"
#include "util/error.h"
#include "util/log.h"

namespace nm::mpi {

// --- Rank --------------------------------------------------------------------

Rank::Rank(MpiRuntime& runtime, RankId id, guest::GuestOs& os)
    : runtime_(&runtime),
      id_(id),
      os_(&os),
      ib_driver_(os),
      eth_driver_(os),
      notifier_(runtime.simulation()) {}

void Rank::build_btls() {
  teardown_btls();
  // `self`/`sm` equivalent: intra-VM shared memory is always available.
  modules_.push_back(std::make_unique<SmBtl>(vm()));
  if (eth_driver_.ready()) {
    modules_.push_back(std::make_unique<TcpBtl>(eth_driver_));
  }
  // The openib component only initializes on an ACTIVE port.
  if (ib_driver_.ready()) {
    modules_.push_back(std::make_unique<OpenIbBtl>(ib_driver_));
  }
  NM_LOG_DEBUG("mpi") << "rank " << id_ << ": built BTLs {"
                      << [&] {
                           std::string s;
                           for (const auto& m : modules_) {
                             s += std::string(m->name()) + " ";
                           }
                           return s;
                         }()
                      << "}";
}

void Rank::teardown_btls() { modules_.clear(); }

bool Rank::has_invalid_btl() const {
  return std::any_of(modules_.begin(), modules_.end(),
                     [](const auto& m) { return !m->valid(); });
}

void Rank::release_ib_resources() {
  for (auto& m : modules_) {
    m->release_resources();
  }
}

BtlModule* Rank::select_btl(const ModexEntry& peer) {
  BtlModule* best = nullptr;
  for (auto& m : modules_) {
    if (m->valid() && m->can_reach(peer) &&
        (best == nullptr || m->exclusivity() > best->exclusivity())) {
      best = m.get();
    }
  }
  return best;
}

std::vector<std::string> Rank::btl_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) {
    names.emplace_back(m->name());
  }
  return names;
}

ModexEntry Rank::make_modex_entry() const {
  ModexEntry entry;
  entry.vm_id = reinterpret_cast<std::uint64_t>(&const_cast<Rank*>(this)->vm());
  if (eth_driver_.ready()) {
    entry.ip = eth_driver_.address();
  }
  if (ib_driver_.ready()) {
    entry.lid = ib_driver_.address();
  }
  return entry;
}

const ModexEntry& Rank::peer(RankId r) const {
  NM_CHECK(r >= 0 && static_cast<std::size_t>(r) < peers_.size(),
           "rank " << id_ << " has no modex entry for peer " << r);
  return peers_[static_cast<std::size_t>(r)];
}

std::string Rank::transport_to(RankId peer_rank) {
  BtlModule* btl = select_btl(peer(peer_rank));
  return btl == nullptr ? "none" : std::string(btl->name());
}

// --- MpiRuntime ----------------------------------------------------------------

MpiRuntime::MpiRuntime(sim::Simulation& sim, Options options)
    : sim_(&sim), options_(options), cr_(std::make_unique<CrService>(*this)) {}

MpiRuntime::~MpiRuntime() = default;

Rank& MpiRuntime::add_rank(guest::GuestOs& os) {
  NM_CHECK(!initialized_, "cannot add ranks after init()");
  const RankId id = static_cast<RankId>(ranks_.size());
  ranks_.push_back(std::make_unique<Rank>(*this, id, os));
  unexpected_.emplace_back();
  return *ranks_.back();
}

void MpiRuntime::init() {
  NM_CHECK(!initialized_, "init() called twice");
  NM_CHECK(!ranks_.empty(), "no ranks added");
  for (auto& rank : ranks_) {
    rank->build_btls();
  }
  run_modex();
  cr_->on_init(ranks_.size());
  initialized_ = true;
  NM_LOG_INFO("mpi") << "job initialized with " << ranks_.size() << " ranks"
                     << (options_.ft_enable_cr ? " (ft-enable-cr)" : "");
}

Rank& MpiRuntime::rank(RankId id) {
  NM_CHECK(id >= 0 && static_cast<std::size_t>(id) < ranks_.size(),
           "rank id " << id << " out of range");
  return *ranks_[static_cast<std::size_t>(id)];
}

void MpiRuntime::run_modex() {
  std::vector<ModexEntry> table;
  table.reserve(ranks_.size());
  for (const auto& rank : ranks_) {
    table.push_back(rank->make_modex_entry());
  }
  for (auto& rank : ranks_) {
    rank->set_peers(table);
  }
}

sim::Task MpiRuntime::transfer_and_deliver(RankId from, RankId to, int tag, Bytes bytes,
                                           std::uint64_t token) {
  Rank& sender = rank(from);
  BtlModule* btl = sender.select_btl(sender.peer(to));
  if (btl == nullptr) {
    throw OperationError("rank " + std::to_string(from) + " has no transport to rank " +
                         std::to_string(to));
  }
  ++in_flight_;
  try {
    co_await btl->put(sender.peer(to), bytes);
  } catch (...) {
    --in_flight_;
    cr_->notify_state_changed();
    throw;
  }
  --in_flight_;
  deliver(to, MessageInfo{from, tag, bytes, token});
}

sim::Task MpiRuntime::send(RankId from, RankId to, int tag, Bytes bytes, std::uint64_t token) {
  NM_CHECK(initialized_, "send before init()");
  Rank& sender = rank(from);
  (void)rank(to);  // bounds check
  co_await cr_->service_if_pending(sender);

  if (bytes <= options_.eager_limit) {
    // Eager protocol: the payload travels asynchronously; the sender
    // returns as soon as the message is on the wire. The CRCP drain step
    // exists precisely to catch these in-flight bytes.
    auto request = isend_internal(from, to, tag, bytes, token);
    (void)request;
    co_return;
  }
  co_await transfer_and_deliver(from, to, tag, bytes, token);
}

RequestPtr MpiRuntime::isend_internal(RankId from, RankId to, int tag, Bytes bytes,
                                      std::uint64_t token) {
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kSend;
  request->owner = from;
  sim_->spawn(
      [](MpiRuntime& rt, RequestPtr req, RankId f, RankId t, int tg, Bytes b,
         std::uint64_t tok) -> sim::Task {
        co_await rt.transfer_and_deliver(f, t, tg, b, tok);
        req->complete_ = true;
        rt.rank(f).notify();
      }(*this, request, from, to, tag, bytes, token),
      "isend:" + std::to_string(from) + "->" + std::to_string(to));
  return request;
}

RequestPtr MpiRuntime::isend(RankId from, RankId to, int tag, Bytes bytes, std::uint64_t token) {
  NM_CHECK(initialized_, "isend before init()");
  (void)rank(to);
  return isend_internal(from, to, tag, bytes, token);
}

RequestPtr MpiRuntime::irecv(RankId me, RankId src, int tag) {
  NM_CHECK(initialized_, "irecv before init()");
  (void)rank(me);
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kRecv;
  request->owner = me;
  request->src_filter = src;
  request->tag_filter = tag;
  return request;
}

sim::Task MpiRuntime::wait(RankId me, RequestPtr request) {
  NM_CHECK(request != nullptr, "wait on null request");
  NM_CHECK(request->owner == me, "rank " << me << " waiting on rank " << request->owner
                                         << "'s request");
  Rank& waiter = rank(me);
  while (true) {
    co_await cr_->service_if_pending(waiter);
    if (request->complete_) {
      co_return;
    }
    if (request->kind == Request::Kind::kRecv) {
      auto matched = try_match(me, request->src_filter, request->tag_filter);
      if (matched.has_value()) {
        request->info_ = *matched;
        request->complete_ = true;
        co_return;
      }
    }
    co_await waiter.wait_notify();
  }
}

sim::Task MpiRuntime::wait_all(RankId me, std::vector<RequestPtr> requests) {
  for (auto& request : requests) {
    co_await wait(me, request);
  }
}

sim::Task MpiRuntime::recv(RankId me, RankId src, int tag, MessageInfo* out) {
  NM_CHECK(initialized_, "recv before init()");
  Rank& receiver = rank(me);
  while (true) {
    co_await cr_->service_if_pending(receiver);
    auto matched = try_match(me, src, tag);
    if (matched.has_value()) {
      if (out != nullptr) {
        *out = *matched;
      }
      co_return;
    }
    co_await receiver.wait_notify();
  }
}

sim::Task MpiRuntime::progress(RankId me) {
  co_await cr_->service_if_pending(rank(me));
}

void MpiRuntime::deliver(RankId to, MessageInfo msg) {
  ++messages_delivered_;
  bytes_delivered_ += msg.bytes;
  unexpected_[static_cast<std::size_t>(to)].push_back(msg);
  rank(to).notify();
  cr_->notify_state_changed();
}

std::optional<MessageInfo> MpiRuntime::try_match(RankId me, RankId src, int tag) {
  auto& queue = unexpected_[static_cast<std::size_t>(me)];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    const bool src_ok = (src == kAnySource) || (it->src == src);
    const bool tag_ok = (tag == kAnyTag) || (it->tag == tag);
    if (src_ok && tag_ok) {
      MessageInfo msg = *it;
      queue.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

std::size_t MpiRuntime::unexpected_count() const {
  std::size_t total = 0;
  for (const auto& q : unexpected_) {
    total += q.size();
  }
  return total;
}

}  // namespace nm::mpi
