// The Byte Transfer Layer (BTL) framework, after Open MPI's: one module
// per transport per process, selected per peer by *exclusivity* (higher
// wins). The paper's mechanism rests on exactly this: `tcp` has
// exclusivity 100, `openib` 1024, so whenever an InfiniBand path exists it
// is preferred, and reconstruction after a migration re-runs the selection
// against whatever devices the VM now has.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "guestos/drivers.h"
#include "net/fabric.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::mpi {

using RankId = int;

/// Exclusivity constants (Open MPI defaults cited in the paper §III-C).
inline constexpr int kExclusivitySelf = 64 * 1024;
inline constexpr int kExclusivitySm = 4 * 1024;
inline constexpr int kExclusivityOpenIb = 1024;
inline constexpr int kExclusivityTcp = 100;

/// Peer reachability info published through the modex (the out-of-band
/// address exchange run at MPI_Init and at every BTL reconstruction).
struct ModexEntry {
  std::uint64_t vm_id = 0;                              // for sm reachability
  net::FabricAddress ip = net::kInvalidAddress;         // tcp endpoint
  net::FabricAddress lid = net::kInvalidAddress;        // openib endpoint
};

class BtlModule {
 public:
  virtual ~BtlModule() = default;
  BtlModule() = default;
  BtlModule(const BtlModule&) = delete;
  BtlModule& operator=(const BtlModule&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual int exclusivity() const = 0;
  /// Can this module carry traffic to `peer` (per the modex snapshot)?
  [[nodiscard]] virtual bool can_reach(const ModexEntry& peer) const = 0;
  /// Is the module's own device still present and trained? A module that
  /// turns invalid (device hot-removed, stale LID) forces reconstruction.
  [[nodiscard]] virtual bool valid() const = 0;
  /// Moves `bytes` to the peer. Pre: can_reach(peer) at last modex.
  [[nodiscard]] virtual sim::Task put(const ModexEntry& peer, Bytes bytes) = 0;
  /// Releases transport resources (OPAL CRS pre-checkpoint phase).
  virtual void release_resources() {}
};

/// Intra-VM shared-memory transport.
class SmBtl final : public BtlModule {
 public:
  SmBtl(vmm::Vm& vm, Bandwidth copy_rate = Bandwidth::gib_per_sec(3.0));

  [[nodiscard]] std::string_view name() const override { return "sm"; }
  [[nodiscard]] int exclusivity() const override { return kExclusivitySm; }
  [[nodiscard]] bool can_reach(const ModexEntry& peer) const override;
  [[nodiscard]] bool valid() const override { return true; }
  [[nodiscard]] sim::Task put(const ModexEntry& peer, Bytes bytes) override;

 private:
  vmm::Vm* vm_;
  Bandwidth copy_rate_;
};

/// TCP over the virtio NIC.
class TcpBtl final : public BtlModule {
 public:
  explicit TcpBtl(guest::VirtioNetDriver& driver) : driver_(&driver) {}

  [[nodiscard]] std::string_view name() const override { return "tcp"; }
  [[nodiscard]] int exclusivity() const override { return kExclusivityTcp; }
  [[nodiscard]] bool can_reach(const ModexEntry& peer) const override {
    return peer.ip != net::kInvalidAddress;
  }
  [[nodiscard]] bool valid() const override { return driver_->ready(); }
  [[nodiscard]] sim::Task put(const ModexEntry& peer, Bytes bytes) override;

 private:
  guest::VirtioNetDriver* driver_;
};

/// InfiniBand verbs over the VMM-bypass HCA. Holds the LID the local port
/// had when the module was built and lazily-created queue pairs per peer —
/// both go stale across a detach/re-attach, which is why the module reports
/// invalid and must be reconstructed (paper §III-C).
class OpenIbBtl final : public BtlModule {
 public:
  explicit OpenIbBtl(guest::IbVerbsDriver& driver);

  [[nodiscard]] std::string_view name() const override { return "openib"; }
  [[nodiscard]] int exclusivity() const override { return kExclusivityOpenIb; }
  [[nodiscard]] bool can_reach(const ModexEntry& peer) const override {
    return peer.lid != net::kInvalidAddress;
  }
  [[nodiscard]] bool valid() const override;
  [[nodiscard]] sim::Task put(const ModexEntry& peer, Bytes bytes) override;
  void release_resources() override;

  [[nodiscard]] std::size_t connected_peers() const { return peer_qps_.size(); }
  [[nodiscard]] net::FabricAddress local_lid() const { return local_lid_; }

 private:
  guest::IbVerbsDriver* driver_;
  net::FabricAddress local_lid_;  // snapshot at module construction
  std::map<net::FabricAddress, net::IbFabric::QueuePair> peer_qps_;
};

}  // namespace nm::mpi
