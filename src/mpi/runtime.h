// nMPI: the mini Open-MPI-like runtime the paper's mechanism lives in.
// One MpiRuntime per job; one Rank per MPI process (a guest task on some
// VM). Point-to-point is blocking-synchronous with tag matching; every
// entry into the library is a checkpoint-service point, which is how the
// CRCP coordination interrupts the application at MPI-safe points.
#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "guestos/drivers.h"
#include "guestos/guest_os.h"
#include "mpi/btl.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/units.h"

namespace nm::mpi {

class MpiRuntime;
class CrService;

inline constexpr RankId kAnySource = std::numeric_limits<RankId>::min();
inline constexpr int kAnyTag = std::numeric_limits<int>::min();

struct MessageInfo {
  RankId src = kAnySource;
  int tag = kAnyTag;
  Bytes bytes = Bytes::zero();
  /// Opaque token carried with the message (tests verify no loss/dup).
  std::uint64_t token = 0;
};

/// A nonblocking-operation handle (isend/irecv). Completion is observed
/// with MpiRuntime::wait / wait_all (which are checkpoint-safe).
class Request {
 public:
  [[nodiscard]] bool complete() const { return complete_; }
  /// For receive requests: the matched envelope (valid once complete).
  [[nodiscard]] const MessageInfo& info() const { return info_; }

 private:
  friend class MpiRuntime;
  enum class Kind { kSend, kRecv };
  Kind kind = Kind::kSend;
  RankId owner = 0;
  RankId src_filter = kAnySource;  // recv matching
  int tag_filter = kAnyTag;
  bool complete_ = false;
  MessageInfo info_;
};

using RequestPtr = std::shared_ptr<Request>;

/// One MPI process.
class Rank {
 public:
  Rank(MpiRuntime& runtime, RankId id, guest::GuestOs& os);
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  [[nodiscard]] RankId id() const { return id_; }
  [[nodiscard]] guest::GuestOs& os() { return *os_; }
  [[nodiscard]] vmm::Vm& vm() { return os_->vm(); }
  [[nodiscard]] guest::IbVerbsDriver& ib_driver() { return ib_driver_; }
  [[nodiscard]] guest::VirtioNetDriver& eth_driver() { return eth_driver_; }

  // --- Transport stack ---------------------------------------------------
  /// Component init: builds one module per usable transport, re-running
  /// the exclusivity selection against the devices the VM has *now*.
  void build_btls();
  void teardown_btls();
  [[nodiscard]] bool has_invalid_btl() const;
  /// OPAL CRS pre-checkpoint: release InfiniBand resources.
  void release_ib_resources();
  /// Highest-exclusivity module that can reach `peer`; null if none.
  [[nodiscard]] BtlModule* select_btl(const ModexEntry& peer);
  [[nodiscard]] std::vector<std::string> btl_names() const;

  /// This rank's own modex payload, from its current devices.
  [[nodiscard]] ModexEntry make_modex_entry() const;
  void set_peers(std::vector<ModexEntry> peers) { peers_ = std::move(peers); }
  [[nodiscard]] const ModexEntry& peer(RankId r) const;
  /// Transport this rank would use towards `peer_rank` (diagnostics).
  [[nodiscard]] std::string transport_to(RankId peer_rank);

  // --- Wakeups -------------------------------------------------------------
  [[nodiscard]] sim::Task wait_notify() { return notifier_.wait(); }
  void notify() { notifier_.notify_all(); }

  /// Last checkpoint request this rank has participated in (CrService).
  std::uint64_t cr_generation = 0;

 private:
  MpiRuntime* runtime_;
  RankId id_;
  guest::GuestOs* os_;
  guest::IbVerbsDriver ib_driver_;
  guest::VirtioNetDriver eth_driver_;
  std::vector<std::unique_ptr<BtlModule>> modules_;
  std::vector<ModexEntry> peers_;  // this rank's snapshot of the modex
  sim::Notifier notifier_;
};

/// Job options (the paper runs with "--mca mpi_leave_pinned 0 -am
/// ft-enable-cr" and sets ompi_cr_continue_like_restart).
struct MpiOptions {
  /// "-am ft-enable-cr": the checkpoint/restart stack is armed.
  bool ft_enable_cr = false;
  /// "ompi_cr_continue_like_restart": force BTL reconstruction on every
  /// continue, even when the surviving modules still look valid — the
  /// paper needs this so a *recovery* migration picks InfiniBand back up.
  bool continue_like_restart = false;
  /// Messages at or below this size use the eager protocol: the sender
  /// returns immediately and the payload travels asynchronously. Eager
  /// traffic is exactly what the CRCP bookmark exchange exists to drain.
  Bytes eager_limit = Bytes::kib(64);
};

class MpiRuntime {
 public:
  using Options = MpiOptions;

  explicit MpiRuntime(sim::Simulation& sim, Options options = {});
  ~MpiRuntime();
  MpiRuntime(const MpiRuntime&) = delete;
  MpiRuntime& operator=(const MpiRuntime&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
  [[nodiscard]] Options& options() { return options_; }
  [[nodiscard]] CrService& cr() { return *cr_; }

  /// Adds a process on `os`. Call before init().
  Rank& add_rank(guest::GuestOs& os);
  /// MPI_Init: runs the modex and builds every rank's BTL stack.
  void init();
  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] std::size_t size() const { return ranks_.size(); }
  [[nodiscard]] Rank& rank(RankId id);

  // --- Point-to-point ------------------------------------------------------
  /// Blocking send. Payloads at or below the eager limit return as soon as
  /// the message is on the wire; larger ones (rendezvous) complete when
  /// the payload has fully arrived at `to`.
  [[nodiscard]] sim::Task send(RankId from, RankId to, int tag, Bytes bytes,
                               std::uint64_t token = 0);
  /// Blocking receive; src/tag may be kAnySource/kAnyTag. Fills *out when
  /// non-null.
  [[nodiscard]] sim::Task recv(RankId me, RankId src, int tag, MessageInfo* out = nullptr);

  // --- Nonblocking point-to-point -------------------------------------------
  /// Starts an asynchronous send; completion via wait()/wait_all().
  RequestPtr isend(RankId from, RankId to, int tag, Bytes bytes, std::uint64_t token = 0);
  /// Posts a receive; matching happens at wait time (in post order when
  /// waited in order).
  RequestPtr irecv(RankId me, RankId src, int tag);
  /// Checkpoint-safe completion waits.
  [[nodiscard]] sim::Task wait(RankId me, RequestPtr request);
  [[nodiscard]] sim::Task wait_all(RankId me, std::vector<RequestPtr> requests);
  /// CR-safe progress point for long compute loops (enters the checkpoint
  /// service when one is pending; otherwise free).
  [[nodiscard]] sim::Task progress(RankId me);

  /// Re-runs the address exchange and hands every rank a fresh snapshot.
  void run_modex();

  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }
  /// Messages sitting in unexpected queues (tests: no loss across CR).
  [[nodiscard]] std::size_t unexpected_count() const;
  /// Total messages delivered since init (algorithm cost assertions).
  [[nodiscard]] std::uint64_t messages_delivered() const { return messages_delivered_; }
  /// Total payload bytes delivered since init.
  [[nodiscard]] Bytes bytes_delivered() const { return bytes_delivered_; }

 private:
  friend class CrService;
  [[nodiscard]] sim::Task transfer_and_deliver(RankId from, RankId to, int tag, Bytes bytes,
                                               std::uint64_t token);
  RequestPtr isend_internal(RankId from, RankId to, int tag, Bytes bytes, std::uint64_t token);
  void deliver(RankId to, MessageInfo msg);
  [[nodiscard]] std::optional<MessageInfo> try_match(RankId me, RankId src, int tag);

  sim::Simulation* sim_;
  Options options_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<std::deque<MessageInfo>> unexpected_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t messages_delivered_ = 0;
  Bytes bytes_delivered_ = Bytes::zero();
  bool initialized_ = false;
  std::unique_ptr<CrService> cr_;
};

}  // namespace nm::mpi
