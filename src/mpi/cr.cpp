#include "mpi/cr.h"

#include "mpi/runtime.h"
#include "util/error.h"
#include "util/log.h"

namespace nm::mpi {

CrService::CrService(MpiRuntime& runtime)
    : runtime_(&runtime),
      state_changed_(runtime.simulation()),
      completion_(runtime.simulation()) {}

void CrService::register_self(SelfCallback checkpoint, SelfCallback cont,
                              SelfCallback restart) {
  checkpoint_cb_ = std::move(checkpoint);
  continue_cb_ = std::move(cont);
  restart_cb_ = std::move(restart);
}

void CrService::on_init(std::size_t rank_count) {
  rank_count_ = rank_count;
  barrier_ = std::make_unique<sim::Barrier>(runtime_->simulation(), rank_count);
}

std::uint64_t CrService::request() {
  NM_CHECK(runtime_->options().ft_enable_cr,
           "checkpoint requested but the job was not started with ft-enable-cr");
  NM_CHECK(!pending_, "a checkpoint request is already in progress");
  pending_ = true;
  ++requested_generation_;
  NM_LOG_INFO("crcp") << "checkpoint request #" << requested_generation_;
  // Wake every blocked receiver so it can participate.
  for (std::size_t r = 0; r < runtime_->size(); ++r) {
    runtime_->rank(static_cast<RankId>(r)).notify();
  }
  return requested_generation_;
}

sim::Task CrService::wait_complete(std::uint64_t gen) {
  while (completed_generation_ < gen) {
    co_await completion_.wait();
  }
}

sim::Task CrService::service_if_pending(Rank& rank) {
  // Participate at most once per request: after this rank finishes its
  // part it may re-enter the library while slower ranks are still inside.
  if (pending_ && rank.cr_generation < requested_generation_) {
    rank.cr_generation = requested_generation_;
    co_await service(rank);
  }
}

sim::Task CrService::service(Rank& rank) {
  ++in_service_;
  NM_LOG_TRACE("crcp") << "rank " << rank.id() << " entered service (" << in_service_ << "/"
                       << rank_count_ << ")";
  // 1. CRCP quiesce: the bookmark exchange. All ranks are inside the
  //    library (barrier), then everyone waits until the in-flight byte
  //    count drains to zero — eager/isend traffic posted before the
  //    request is still on the wire at this point.
  co_await barrier_->arrive_and_wait();
  while (runtime_->in_flight() > 0) {
    co_await state_changed_.wait();
  }
  co_await barrier_->arrive_and_wait();
  NM_CHECK(runtime_->in_flight() == 0,
           "quiesce drain finished with " << runtime_->in_flight() << " transfers in flight");

  // 2. OPAL CRS pre-checkpoint: release InfiniBand resources.
  rank.release_ib_resources();

  // 3./4. SELF callbacks (SymVirt windows live inside these).
  if (checkpoint_cb_) {
    co_await checkpoint_cb_(rank);
  }
  if (continue_cb_) {
    co_await continue_cb_(rank);
  }

  // 5. Reconstruction vote: any stale module anywhere, or the forced flag.
  vote_reconstruct_ =
      vote_reconstruct_ || runtime_->options().continue_like_restart || rank.has_invalid_btl();
  co_await barrier_->arrive_and_wait();
  const bool reconstruct = vote_reconstruct_;
  if (reconstruct) {
    rank.build_btls();  // component re-init against current devices
    co_await barrier_->arrive_and_wait();
    // One rank refreshes the shared modex table; everyone then re-snapshots.
    if (rank.id() == 0) {
      runtime_->run_modex();
      NM_LOG_INFO("crcp") << "modex refreshed after BTL reconstruction";
    }
    co_await barrier_->arrive_and_wait();
  }

  // 6. Exit bookkeeping.
  co_await barrier_->arrive_and_wait();
  --in_service_;
  ++exited_;
  if (exited_ == rank_count_) {
    exited_ = 0;
    vote_reconstruct_ = false;
    pending_ = false;
    completed_generation_ = requested_generation_;
    NM_LOG_INFO("crcp") << "checkpoint request #" << completed_generation_ << " complete";
    completion_.notify_all();
  }
}

}  // namespace nm::mpi
