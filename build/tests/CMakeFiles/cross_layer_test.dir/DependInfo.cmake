
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cross_layer_test.cpp" "tests/CMakeFiles/cross_layer_test.dir/cross_layer_test.cpp.o" "gcc" "tests/CMakeFiles/cross_layer_test.dir/cross_layer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/nm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/symvirt/CMakeFiles/nm_symvirt.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/nm_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/nm_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/nm_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
