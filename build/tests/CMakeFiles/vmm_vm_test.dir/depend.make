# Empty dependencies file for vmm_vm_test.
# This may be replaced when dependencies are built.
