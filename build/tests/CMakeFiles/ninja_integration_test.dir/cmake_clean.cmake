file(REMOVE_RECURSE
  "CMakeFiles/ninja_integration_test.dir/ninja_integration_test.cpp.o"
  "CMakeFiles/ninja_integration_test.dir/ninja_integration_test.cpp.o.d"
  "ninja_integration_test"
  "ninja_integration_test.pdb"
  "ninja_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ninja_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
