# Empty compiler generated dependencies file for ninja_integration_test.
# This may be replaced when dependencies are built.
