file(REMOVE_RECURSE
  "CMakeFiles/calibration_property_test.dir/calibration_property_test.cpp.o"
  "CMakeFiles/calibration_property_test.dir/calibration_property_test.cpp.o.d"
  "calibration_property_test"
  "calibration_property_test.pdb"
  "calibration_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
