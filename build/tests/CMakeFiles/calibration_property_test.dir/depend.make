# Empty dependencies file for calibration_property_test.
# This may be replaced when dependencies are built.
