file(REMOVE_RECURSE
  "CMakeFiles/hw_node_test.dir/hw_node_test.cpp.o"
  "CMakeFiles/hw_node_test.dir/hw_node_test.cpp.o.d"
  "hw_node_test"
  "hw_node_test.pdb"
  "hw_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
