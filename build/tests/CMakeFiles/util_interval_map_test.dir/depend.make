# Empty dependencies file for util_interval_map_test.
# This may be replaced when dependencies are built.
