file(REMOVE_RECURSE
  "CMakeFiles/mpi_algorithm_cost_test.dir/mpi_algorithm_cost_test.cpp.o"
  "CMakeFiles/mpi_algorithm_cost_test.dir/mpi_algorithm_cost_test.cpp.o.d"
  "mpi_algorithm_cost_test"
  "mpi_algorithm_cost_test.pdb"
  "mpi_algorithm_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_algorithm_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
