# Empty dependencies file for mpi_algorithm_cost_test.
# This may be replaced when dependencies are built.
