# Empty compiler generated dependencies file for vmm_guest_memory_test.
# This may be replaced when dependencies are built.
