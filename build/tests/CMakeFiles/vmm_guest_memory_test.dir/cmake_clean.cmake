file(REMOVE_RECURSE
  "CMakeFiles/vmm_guest_memory_test.dir/vmm_guest_memory_test.cpp.o"
  "CMakeFiles/vmm_guest_memory_test.dir/vmm_guest_memory_test.cpp.o.d"
  "vmm_guest_memory_test"
  "vmm_guest_memory_test.pdb"
  "vmm_guest_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_guest_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
