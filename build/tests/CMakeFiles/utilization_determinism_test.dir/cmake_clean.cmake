file(REMOVE_RECURSE
  "CMakeFiles/utilization_determinism_test.dir/utilization_determinism_test.cpp.o"
  "CMakeFiles/utilization_determinism_test.dir/utilization_determinism_test.cpp.o.d"
  "utilization_determinism_test"
  "utilization_determinism_test.pdb"
  "utilization_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utilization_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
