# Empty dependencies file for utilization_determinism_test.
# This may be replaced when dependencies are built.
