# Empty compiler generated dependencies file for sriov_monitor_test.
# This may be replaced when dependencies are built.
