file(REMOVE_RECURSE
  "CMakeFiles/sriov_monitor_test.dir/sriov_monitor_test.cpp.o"
  "CMakeFiles/sriov_monitor_test.dir/sriov_monitor_test.cpp.o.d"
  "sriov_monitor_test"
  "sriov_monitor_test.pdb"
  "sriov_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
