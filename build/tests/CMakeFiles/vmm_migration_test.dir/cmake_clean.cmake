file(REMOVE_RECURSE
  "CMakeFiles/vmm_migration_test.dir/vmm_migration_test.cpp.o"
  "CMakeFiles/vmm_migration_test.dir/vmm_migration_test.cpp.o.d"
  "vmm_migration_test"
  "vmm_migration_test.pdb"
  "vmm_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
