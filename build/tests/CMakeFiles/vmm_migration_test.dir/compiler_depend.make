# Empty compiler generated dependencies file for vmm_migration_test.
# This may be replaced when dependencies are built.
