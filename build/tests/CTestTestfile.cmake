# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_units_test[1]_include.cmake")
include("/root/repo/build/tests/util_interval_map_test[1]_include.cmake")
include("/root/repo/build/tests/util_misc_test[1]_include.cmake")
include("/root/repo/build/tests/sim_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/sim_fluid_test[1]_include.cmake")
include("/root/repo/build/tests/hw_node_test[1]_include.cmake")
include("/root/repo/build/tests/net_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_guest_memory_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_vm_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_migration_test[1]_include.cmake")
include("/root/repo/build/tests/guestos_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/ninja_integration_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_nonblocking_test[1]_include.cmake")
include("/root/repo/build/tests/sriov_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/util_args_timeline_test[1]_include.cmake")
include("/root/repo/build/tests/utilization_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_algorithm_cost_test[1]_include.cmake")
include("/root/repo/build/tests/cross_layer_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_property_test[1]_include.cmake")
