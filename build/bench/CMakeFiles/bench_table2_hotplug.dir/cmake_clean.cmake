file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hotplug.dir/bench_table2_hotplug.cpp.o"
  "CMakeFiles/bench_table2_hotplug.dir/bench_table2_hotplug.cpp.o.d"
  "bench_table2_hotplug"
  "bench_table2_hotplug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hotplug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
