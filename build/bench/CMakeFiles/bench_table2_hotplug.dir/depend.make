# Empty dependencies file for bench_table2_hotplug.
# This may be replaced when dependencies are built.
