file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_memtest.dir/bench_fig6_memtest.cpp.o"
  "CMakeFiles/bench_fig6_memtest.dir/bench_fig6_memtest.cpp.o.d"
  "bench_fig6_memtest"
  "bench_fig6_memtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_memtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
