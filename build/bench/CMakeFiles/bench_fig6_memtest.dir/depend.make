# Empty dependencies file for bench_fig6_memtest.
# This may be replaced when dependencies are built.
