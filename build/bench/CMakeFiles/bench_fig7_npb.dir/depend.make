# Empty dependencies file for bench_fig7_npb.
# This may be replaced when dependencies are built.
