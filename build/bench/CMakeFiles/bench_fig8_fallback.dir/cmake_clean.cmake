file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fallback.dir/bench_fig8_fallback.cpp.o"
  "CMakeFiles/bench_fig8_fallback.dir/bench_fig8_fallback.cpp.o.d"
  "bench_fig8_fallback"
  "bench_fig8_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
