# Empty dependencies file for bench_fig8_fallback.
# This may be replaced when dependencies are built.
