file(REMOVE_RECURSE
  "CMakeFiles/nm_core.dir/job.cpp.o"
  "CMakeFiles/nm_core.dir/job.cpp.o.d"
  "CMakeFiles/nm_core.dir/ninja.cpp.o"
  "CMakeFiles/nm_core.dir/ninja.cpp.o.d"
  "CMakeFiles/nm_core.dir/testbed.cpp.o"
  "CMakeFiles/nm_core.dir/testbed.cpp.o.d"
  "libnm_core.a"
  "libnm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
