file(REMOVE_RECURSE
  "CMakeFiles/nm_guestos.dir/drivers.cpp.o"
  "CMakeFiles/nm_guestos.dir/drivers.cpp.o.d"
  "CMakeFiles/nm_guestos.dir/guest_os.cpp.o"
  "CMakeFiles/nm_guestos.dir/guest_os.cpp.o.d"
  "libnm_guestos.a"
  "libnm_guestos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
