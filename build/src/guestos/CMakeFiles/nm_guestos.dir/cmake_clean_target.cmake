file(REMOVE_RECURSE
  "libnm_guestos.a"
)
