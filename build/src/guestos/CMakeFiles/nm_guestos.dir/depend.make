# Empty dependencies file for nm_guestos.
# This may be replaced when dependencies are built.
