# Empty compiler generated dependencies file for nm_workloads.
# This may be replaced when dependencies are built.
