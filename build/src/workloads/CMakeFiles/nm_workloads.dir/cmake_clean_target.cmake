file(REMOVE_RECURSE
  "libnm_workloads.a"
)
