file(REMOVE_RECURSE
  "CMakeFiles/nm_workloads.dir/bcast_reduce.cpp.o"
  "CMakeFiles/nm_workloads.dir/bcast_reduce.cpp.o.d"
  "CMakeFiles/nm_workloads.dir/memtest.cpp.o"
  "CMakeFiles/nm_workloads.dir/memtest.cpp.o.d"
  "CMakeFiles/nm_workloads.dir/npb.cpp.o"
  "CMakeFiles/nm_workloads.dir/npb.cpp.o.d"
  "libnm_workloads.a"
  "libnm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
