file(REMOVE_RECURSE
  "CMakeFiles/nm_vmm.dir/guest_memory.cpp.o"
  "CMakeFiles/nm_vmm.dir/guest_memory.cpp.o.d"
  "CMakeFiles/nm_vmm.dir/host.cpp.o"
  "CMakeFiles/nm_vmm.dir/host.cpp.o.d"
  "CMakeFiles/nm_vmm.dir/migration.cpp.o"
  "CMakeFiles/nm_vmm.dir/migration.cpp.o.d"
  "CMakeFiles/nm_vmm.dir/monitor.cpp.o"
  "CMakeFiles/nm_vmm.dir/monitor.cpp.o.d"
  "CMakeFiles/nm_vmm.dir/vm.cpp.o"
  "CMakeFiles/nm_vmm.dir/vm.cpp.o.d"
  "libnm_vmm.a"
  "libnm_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
