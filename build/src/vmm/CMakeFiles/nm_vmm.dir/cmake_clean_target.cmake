file(REMOVE_RECURSE
  "libnm_vmm.a"
)
