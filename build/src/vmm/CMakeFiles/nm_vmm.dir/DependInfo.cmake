
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/guest_memory.cpp" "src/vmm/CMakeFiles/nm_vmm.dir/guest_memory.cpp.o" "gcc" "src/vmm/CMakeFiles/nm_vmm.dir/guest_memory.cpp.o.d"
  "/root/repo/src/vmm/host.cpp" "src/vmm/CMakeFiles/nm_vmm.dir/host.cpp.o" "gcc" "src/vmm/CMakeFiles/nm_vmm.dir/host.cpp.o.d"
  "/root/repo/src/vmm/migration.cpp" "src/vmm/CMakeFiles/nm_vmm.dir/migration.cpp.o" "gcc" "src/vmm/CMakeFiles/nm_vmm.dir/migration.cpp.o.d"
  "/root/repo/src/vmm/monitor.cpp" "src/vmm/CMakeFiles/nm_vmm.dir/monitor.cpp.o" "gcc" "src/vmm/CMakeFiles/nm_vmm.dir/monitor.cpp.o.d"
  "/root/repo/src/vmm/vm.cpp" "src/vmm/CMakeFiles/nm_vmm.dir/vm.cpp.o" "gcc" "src/vmm/CMakeFiles/nm_vmm.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/nm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
