# Empty dependencies file for nm_vmm.
# This may be replaced when dependencies are built.
