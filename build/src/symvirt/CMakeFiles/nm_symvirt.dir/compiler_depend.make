# Empty compiler generated dependencies file for nm_symvirt.
# This may be replaced when dependencies are built.
