file(REMOVE_RECURSE
  "CMakeFiles/nm_symvirt.dir/controller.cpp.o"
  "CMakeFiles/nm_symvirt.dir/controller.cpp.o.d"
  "CMakeFiles/nm_symvirt.dir/coordinator.cpp.o"
  "CMakeFiles/nm_symvirt.dir/coordinator.cpp.o.d"
  "CMakeFiles/nm_symvirt.dir/generic.cpp.o"
  "CMakeFiles/nm_symvirt.dir/generic.cpp.o.d"
  "libnm_symvirt.a"
  "libnm_symvirt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_symvirt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
