file(REMOVE_RECURSE
  "libnm_symvirt.a"
)
