file(REMOVE_RECURSE
  "CMakeFiles/nm_util.dir/error.cpp.o"
  "CMakeFiles/nm_util.dir/error.cpp.o.d"
  "CMakeFiles/nm_util.dir/log.cpp.o"
  "CMakeFiles/nm_util.dir/log.cpp.o.d"
  "CMakeFiles/nm_util.dir/table.cpp.o"
  "CMakeFiles/nm_util.dir/table.cpp.o.d"
  "CMakeFiles/nm_util.dir/timeline.cpp.o"
  "CMakeFiles/nm_util.dir/timeline.cpp.o.d"
  "CMakeFiles/nm_util.dir/units.cpp.o"
  "CMakeFiles/nm_util.dir/units.cpp.o.d"
  "libnm_util.a"
  "libnm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
