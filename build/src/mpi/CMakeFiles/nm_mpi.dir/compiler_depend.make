# Empty compiler generated dependencies file for nm_mpi.
# This may be replaced when dependencies are built.
