file(REMOVE_RECURSE
  "libnm_mpi.a"
)
