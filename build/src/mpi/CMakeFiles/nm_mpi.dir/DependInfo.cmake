
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/btl.cpp" "src/mpi/CMakeFiles/nm_mpi.dir/btl.cpp.o" "gcc" "src/mpi/CMakeFiles/nm_mpi.dir/btl.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/nm_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/nm_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/cr.cpp" "src/mpi/CMakeFiles/nm_mpi.dir/cr.cpp.o" "gcc" "src/mpi/CMakeFiles/nm_mpi.dir/cr.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/mpi/CMakeFiles/nm_mpi.dir/runtime.cpp.o" "gcc" "src/mpi/CMakeFiles/nm_mpi.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guestos/CMakeFiles/nm_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/nm_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
