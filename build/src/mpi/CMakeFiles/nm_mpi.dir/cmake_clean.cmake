file(REMOVE_RECURSE
  "CMakeFiles/nm_mpi.dir/btl.cpp.o"
  "CMakeFiles/nm_mpi.dir/btl.cpp.o.d"
  "CMakeFiles/nm_mpi.dir/collectives.cpp.o"
  "CMakeFiles/nm_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/nm_mpi.dir/cr.cpp.o"
  "CMakeFiles/nm_mpi.dir/cr.cpp.o.d"
  "CMakeFiles/nm_mpi.dir/runtime.cpp.o"
  "CMakeFiles/nm_mpi.dir/runtime.cpp.o.d"
  "libnm_mpi.a"
  "libnm_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
