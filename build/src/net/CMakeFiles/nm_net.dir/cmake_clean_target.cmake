file(REMOVE_RECURSE
  "libnm_net.a"
)
