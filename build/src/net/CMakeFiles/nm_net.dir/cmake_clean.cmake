file(REMOVE_RECURSE
  "CMakeFiles/nm_net.dir/eth_fabric.cpp.o"
  "CMakeFiles/nm_net.dir/eth_fabric.cpp.o.d"
  "CMakeFiles/nm_net.dir/fabric.cpp.o"
  "CMakeFiles/nm_net.dir/fabric.cpp.o.d"
  "CMakeFiles/nm_net.dir/ib_fabric.cpp.o"
  "CMakeFiles/nm_net.dir/ib_fabric.cpp.o.d"
  "libnm_net.a"
  "libnm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
