# Empty compiler generated dependencies file for nm_net.
# This may be replaced when dependencies are built.
