file(REMOVE_RECURSE
  "CMakeFiles/nm_sim.dir/fluid.cpp.o"
  "CMakeFiles/nm_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/nm_sim.dir/simulation.cpp.o"
  "CMakeFiles/nm_sim.dir/simulation.cpp.o.d"
  "libnm_sim.a"
  "libnm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
