# Empty dependencies file for nm_sim.
# This may be replaced when dependencies are built.
