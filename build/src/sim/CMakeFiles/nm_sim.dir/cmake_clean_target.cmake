file(REMOVE_RECURSE
  "libnm_sim.a"
)
