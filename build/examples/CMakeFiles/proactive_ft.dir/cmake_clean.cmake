file(REMOVE_RECURSE
  "CMakeFiles/proactive_ft.dir/proactive_ft.cpp.o"
  "CMakeFiles/proactive_ft.dir/proactive_ft.cpp.o.d"
  "proactive_ft"
  "proactive_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
