# Empty compiler generated dependencies file for proactive_ft.
# This may be replaced when dependencies are built.
