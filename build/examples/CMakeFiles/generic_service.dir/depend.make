# Empty dependencies file for generic_service.
# This may be replaced when dependencies are built.
