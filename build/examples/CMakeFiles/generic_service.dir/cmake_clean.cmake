file(REMOVE_RECURSE
  "CMakeFiles/generic_service.dir/generic_service.cpp.o"
  "CMakeFiles/generic_service.dir/generic_service.cpp.o.d"
  "generic_service"
  "generic_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
