# Empty dependencies file for non_stop_maintenance.
# This may be replaced when dependencies are built.
