file(REMOVE_RECURSE
  "CMakeFiles/non_stop_maintenance.dir/non_stop_maintenance.cpp.o"
  "CMakeFiles/non_stop_maintenance.dir/non_stop_maintenance.cpp.o.d"
  "non_stop_maintenance"
  "non_stop_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/non_stop_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
