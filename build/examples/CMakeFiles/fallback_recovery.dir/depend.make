# Empty dependencies file for fallback_recovery.
# This may be replaced when dependencies are built.
