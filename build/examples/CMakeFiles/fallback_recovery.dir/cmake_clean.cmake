file(REMOVE_RECURSE
  "CMakeFiles/fallback_recovery.dir/fallback_recovery.cpp.o"
  "CMakeFiles/fallback_recovery.dir/fallback_recovery.cpp.o.d"
  "fallback_recovery"
  "fallback_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallback_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
