// policy:: — the decision-plug-in framework's guarantees:
//   * StaticPolicy is bit-identical to the pre-refactor hardcoded behavior
//     (pinned against golden digests captured before the policy hooks
//     landed — same scenario, old ServiceEpisode::start signature).
//   * Every shipped policy's timeline is bit-identical at 0/1/2/4 solve
//     workers (decisions fire at clocked instants, never from workers).
//   * SloThrottlePolicy keeps the downtime promise while not worsening the
//     pre-copy tail under heavy load.
//   * ServiceEpisode objects are reusable after done() and fail loudly on
//     a mid-flight double start.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/service_episode.h"
#include "core/testbed.h"
#include "policy/policies.h"
#include "util/error.h"
#include "workloads/kv_service.h"

namespace nm {
namespace {

// ---------------------------------------------------------------------------
// Unit tests: pure decide() calls, no simulation.
// ---------------------------------------------------------------------------

TEST(PolicyUnit, StaticPolicyReturnsTheDefaultActionEverywhere) {
  policy::StaticPolicy p;
  policy::Observation obs;
  for (int h = 0; h < policy::kHooks; ++h) {
    const policy::Action a = p.decide(static_cast<policy::Hook>(h), obs);
    EXPECT_FALSE(a.defer);
    EXPECT_TRUE(a.assignment.empty());
    EXPECT_TRUE(std::isinf(a.bandwidth_cap));
    EXPECT_FALSE(a.force_stop_and_copy);
    EXPECT_FALSE(a.defer_pause);
    EXPECT_FALSE(a.reject);
  }
}

TEST(PolicyUnit, ResolveAssignmentExpandsLegacyRoundRobinWhenEmpty) {
  const std::vector<int> resolved =
      policy::resolve_assignment(policy::Action{}, /*vm_count=*/5,
                                 /*candidate_count=*/2, "test");
  ASSERT_EQ(resolved.size(), 5u);
  for (std::size_t i = 0; i < resolved.size(); ++i) {
    EXPECT_EQ(resolved[i], static_cast<int>(i % 2));
  }
}

TEST(PolicyUnit, ResolveAssignmentRejectsMalformedAssignments) {
  policy::Action wrong_size;
  wrong_size.assignment = {0, 1};
  EXPECT_THROW((void)policy::resolve_assignment(wrong_size, 3, 2, "test"), LogicError);
  policy::Action out_of_range;
  out_of_range.assignment = {0, 2};
  EXPECT_THROW((void)policy::resolve_assignment(out_of_range, 2, 2, "test"), LogicError);
}

TEST(PolicyUnit, DestinationSwapBalancesLoadAndMaximizesRetention) {
  policy::DestinationSwapPolicy p;
  policy::Observation obs;
  obs.vm_count = 4;
  // Candidate 0 already carries 4 residents; 1 and 2 are empty.
  obs.candidates.push_back({.name = "a", .resident_vms = 4, .free_slots = -1});
  obs.candidates.push_back({.name = "b", .resident_vms = 0, .free_slots = -1});
  obs.candidates.push_back({.name = "c", .resident_vms = 0, .free_slots = -1});
  const policy::Action a = p.decide(policy::Hook::kEpisodeStart, obs);
  ASSERT_EQ(a.assignment.size(), 4u);
  // Balanced counts: the 4 incoming VMs split 0/2/2 (loads end 4/2/2), and
  // retention keeps VMs 1 and 2 on their legacy picks (1 and 2).
  int counts[3] = {0, 0, 0};
  for (const int c : a.assignment) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 3);
    ++counts[c];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(a.assignment[1], 1);  // legacy 1 % 3 == 1, retained
  EXPECT_EQ(a.assignment[2], 2);  // legacy 2 % 3 == 2, retained
}

TEST(PolicyUnit, DestinationSwapRespectsTrackedCapacity) {
  policy::DestinationSwapPolicy p;
  policy::Observation obs;
  obs.vm_count = 3;
  obs.candidates.push_back({.name = "a", .resident_vms = 0, .free_slots = 1});
  obs.candidates.push_back({.name = "b", .resident_vms = 0, .free_slots = 2});
  const policy::Action a = p.decide(policy::Hook::kWaveGrant, obs);
  ASSERT_EQ(a.assignment.size(), 3u);
  int counts[2] = {0, 0};
  for (const int c : a.assignment) {
    ++counts[c];
  }
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  // Nowhere with capacity -> defers to the legacy path instead of failing.
  obs.vm_count = 4;
  EXPECT_TRUE(p.decide(policy::Hook::kWaveGrant, obs).assignment.empty());
}

TEST(PolicyUnit, QuietPauseDefersUntilQuietOrBudgetExhausted) {
  policy::QuietPauseConfig cfg;
  cfg.quiet_in_flight = 0;
  cfg.max_extra_rounds = 2;
  policy::QuietPausePolicy p(cfg);
  vmm::MigrationStats live;
  live.start_at = TimePoint::origin() + Duration::seconds(1);
  policy::Observation obs;
  obs.migration = &live;
  obs.slo.valid = true;
  obs.slo.in_flight = 3;
  // Busy: defers twice, then the budget runs out.
  EXPECT_TRUE(p.decide(policy::Hook::kPauseDecision, obs).defer_pause);
  EXPECT_TRUE(p.decide(policy::Hook::kPauseDecision, obs).defer_pause);
  EXPECT_FALSE(p.decide(policy::Hook::kPauseDecision, obs).defer_pause);
  // A new episode (new start instant) resets the budget; a quiet instant
  // pauses immediately.
  live.start_at = live.start_at + Duration::seconds(5);
  obs.slo.in_flight = 0;
  EXPECT_FALSE(p.decide(policy::Hook::kPauseDecision, obs).defer_pause);
  obs.slo.in_flight = 1;
  EXPECT_TRUE(p.decide(policy::Hook::kPauseDecision, obs).defer_pause);
}

TEST(PolicyUnit, PolicySetRoutesPerHookAndDescribes) {
  policy::PolicySet set;
  EXPECT_EQ(set.at(policy::Hook::kEpisodeStart).name(), "static");
  set.use(policy::Hook::kPreCopyRound, std::make_shared<policy::SloThrottlePolicy>());
  EXPECT_EQ(set.at(policy::Hook::kPreCopyRound).name(), "slo-throttle");
  EXPECT_EQ(set.at(policy::Hook::kPauseDecision).name(), "static");
  EXPECT_NE(set.describe().find("slo-throttle"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scenario harness: the pre-refactor golden-probe scenario, run through the
// new EpisodeSpec API under each shipped policy.
// ---------------------------------------------------------------------------

enum class Variant {
  kDefault,        // PolicySet{} (implicit static)
  kStatic,         // explicit StaticPolicy at every hook
  kLegacyShim,     // deprecated start(vm, dst, delay) signature
  kSloThrottle,    // SloThrottlePolicy at kPreCopyRound
  kQuietPause,     // QuietPausePolicy at kPauseDecision
  kDestSwap,       // DestinationSwapPolicy at kEpisodeStart (+ alternate)
  kBlackoutShed,   // BlackoutShedPolicy at kAdmission (service-side)
};

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t misses = 0;
  std::int64_t episode_end_ns = 0;
  std::int64_t blackout_ns = 0;
  std::int64_t precopy_ns = 0;
};

RunOutcome run_scenario(int solve_workers, Variant variant) {
  core::TestbedConfig config;
  config.solve_workers = solve_workers;
  config.fluid_shards = 2;  // pool on even at 0 workers (see DESIGN.md §10)
  core::Testbed testbed(config);

  workloads::KvServiceConfig svc;
  svc.replicas = 2;
  svc.zipf_s = 0.7;
  svc.service_core_seconds = 1.0e-3;
  svc.worker_threads = 4;
  svc.deadline = Duration::millis(15);
  svc.write_fraction = 0.25;
  svc.value_bytes = Bytes::kib(8);
  workloads::KvService service(testbed, svc);

  std::vector<std::shared_ptr<vmm::Vm>> vms;
  for (int i = 0; i < 2; ++i) {
    vmm::VmSpec spec;
    spec.name = "kv" + std::to_string(i);
    spec.memory = Bytes::mib(192);
    spec.base_os_footprint = Bytes::mib(64);
    vms.push_back(testbed.boot_vm(testbed.eth_host(i), spec, /*with_hca=*/false));
    service.add_server(vms.back());
  }
  for (int i = 0; i < 2; ++i) {
    workloads::ClientFleetConfig fleet;
    fleet.name = "fleet" + std::to_string(i);
    fleet.rate_per_sec = 500.0;
    fleet.window = Duration::seconds(2);
    service.add_fleet(testbed.ib_host(i), fleet);
  }
  testbed.settle();

  core::ServiceEpisode episode(testbed.sim());
  service.observe_migration(&episode.live());
  service.start();

  if (variant == Variant::kLegacyShim) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    (void)episode.start(vms[0], testbed.eth_host(2), Duration::millis(300));
#pragma GCC diagnostic pop
  } else {
    core::EpisodeSpec spec(vms[0], testbed.eth_host(2));
    spec.after(Duration::millis(300)).observe(service.observation_source());
    policy::PolicySet policies;
    switch (variant) {
      case Variant::kStatic:
        policies.use(std::make_shared<policy::StaticPolicy>());
        break;
      case Variant::kSloThrottle:
        policies.use(policy::Hook::kPreCopyRound,
                     std::make_shared<policy::SloThrottlePolicy>());
        break;
      case Variant::kQuietPause:
        policies.use(policy::Hook::kPauseDecision,
                     std::make_shared<policy::QuietPausePolicy>());
        break;
      case Variant::kDestSwap:
        spec.or_to(testbed.eth_host(3));
        policies.use(policy::Hook::kEpisodeStart,
                     std::make_shared<policy::DestinationSwapPolicy>());
        break;
      case Variant::kBlackoutShed: {
        policy::PolicySet admission;
        admission.use(policy::Hook::kAdmission,
                      std::make_shared<policy::BlackoutShedPolicy>());
        service.set_admission(std::move(admission), config.seed);
        break;
      }
      default:
        break;
    }
    spec.with(std::move(policies), config.seed);
    (void)episode.start(std::move(spec));
  }

  testbed.sim().run_for(Duration::seconds(20));

  RunOutcome out;
  out.digest = service.digest();
  out.generated = service.generated();
  out.completed = service.completed();
  out.rejected = service.rejected();
  out.misses = service.deadline_misses();
  if (episode.done()) {
    const auto report = episode.report();
    out.episode_end_ns = report.end_at.count_nanos();
    out.blackout_ns = report.blackout.count_nanos();
    out.precopy_ns = report.precopy.count_nanos();
  }
  return out;
}

// Captured with the pre-refactor ServiceEpisode::start(vm, dst, delay) on
// the commit before the policy framework landed; identical at 0/1/2/4
// solve workers there.
constexpr std::uint64_t kGoldenDigest = 6056993532529786261ull;
constexpr std::int64_t kGoldenEndNs = 33127233576;
constexpr std::uint64_t kGoldenGenerated = 2002;
constexpr std::uint64_t kGoldenMisses = 0;
constexpr std::int64_t kGoldenBlackoutNs = 11069196;
constexpr std::int64_t kGoldenPrecopyNs = 896164380;

void expect_golden(const RunOutcome& out, const std::string& label) {
  EXPECT_EQ(out.digest, kGoldenDigest) << label;
  EXPECT_EQ(out.episode_end_ns, kGoldenEndNs) << label;
  EXPECT_EQ(out.generated, kGoldenGenerated) << label;
  EXPECT_EQ(out.misses, kGoldenMisses) << label;
  EXPECT_EQ(out.blackout_ns, kGoldenBlackoutNs) << label;
  EXPECT_EQ(out.precopy_ns, kGoldenPrecopyNs) << label;
}

TEST(PolicyGolden, DefaultPolicySetReproducesPreRefactorTimeline) {
  expect_golden(run_scenario(0, Variant::kDefault), "default PolicySet");
}

TEST(PolicyGolden, ExplicitStaticPolicyReproducesPreRefactorTimeline) {
  expect_golden(run_scenario(0, Variant::kStatic), "explicit StaticPolicy");
}

TEST(PolicyGolden, DeprecatedShimReproducesPreRefactorTimeline) {
  expect_golden(run_scenario(0, Variant::kLegacyShim), "deprecated start() shim");
}

class PolicyDeterminism : public ::testing::TestWithParam<Variant> {};

TEST_P(PolicyDeterminism, TimelineBitIdenticalAcrossSolveWorkers) {
  const RunOutcome base = run_scenario(0, GetParam());
  ASSERT_GT(base.episode_end_ns, 0) << "episode did not complete";
  EXPECT_EQ(base.completed + base.rejected, base.generated);
  for (const int workers : {1, 2, 4}) {
    const RunOutcome r = run_scenario(workers, GetParam());
    EXPECT_EQ(r.digest, base.digest) << workers << " solve workers";
    EXPECT_EQ(r.episode_end_ns, base.episode_end_ns) << workers << " solve workers";
    EXPECT_EQ(r.generated, base.generated) << workers << " solve workers";
    EXPECT_EQ(r.rejected, base.rejected) << workers << " solve workers";
    EXPECT_EQ(r.misses, base.misses) << workers << " solve workers";
  }
}

INSTANTIATE_TEST_SUITE_P(ShippedPolicies, PolicyDeterminism,
                         ::testing::Values(Variant::kStatic, Variant::kSloThrottle,
                                           Variant::kQuietPause, Variant::kDestSwap,
                                           Variant::kBlackoutShed),
                         [](const auto& info) {
                           switch (info.param) {
                             case Variant::kStatic: return std::string("Static");
                             case Variant::kSloThrottle: return std::string("SloThrottle");
                             case Variant::kQuietPause: return std::string("QuietPause");
                             case Variant::kDestSwap: return std::string("DestSwap");
                             case Variant::kBlackoutShed: return std::string("BlackoutShed");
                             default: return std::string("Other");
                           }
                         });

// ---------------------------------------------------------------------------
// SloThrottlePolicy property: under heavy load (the live_service regime:
// per-server utilisation ~0.9 so pre-copy interference shows up in the
// tail), throttling must not worsen the pre-copy p99 and must keep the
// engine's downtime promise — round caps never shape the stop-and-copy
// drain.
// ---------------------------------------------------------------------------

struct SloOutcome {
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  bool episode_done = false;
  bool downtime_ok = false;
  Duration precopy_p99 = Duration::zero();
  std::uint64_t precopy_requests = 0;
};

SloOutcome run_loaded(bool throttle) {
  core::TestbedConfig config;
  config.fluid_shards = 2;
  core::Testbed testbed(config);

  workloads::KvServiceConfig svc;
  svc.replicas = 2;
  svc.zipf_s = 0.7;
  svc.service_core_seconds = 1.38e-3;
  svc.worker_threads = 8;
  svc.deadline = Duration::millis(20);
  svc.write_fraction = 0.4;
  svc.value_bytes = Bytes::kib(8);
  workloads::KvService service(testbed, svc);

  std::vector<std::shared_ptr<vmm::Vm>> vms;
  for (int i = 0; i < 2; ++i) {
    vmm::VmSpec spec;
    spec.name = "kv" + std::to_string(i);
    spec.memory = Bytes::mib(256);
    spec.base_os_footprint = Bytes::mib(96);
    vms.push_back(testbed.boot_vm(testbed.eth_host(i), spec, /*with_hca=*/false));
    service.add_server(vms.back());
  }
  for (int i = 0; i < 2; ++i) {
    workloads::ClientFleetConfig fleet;
    fleet.name = "fleet" + std::to_string(i);
    fleet.rate_per_sec = 2600.0;  // ~0.9 per-server utilisation
    fleet.window = Duration::seconds(3);
    service.add_fleet(testbed.ib_host(i), fleet);
  }
  testbed.settle();

  core::ServiceEpisode episode(testbed.sim());
  service.observe_migration(&episode.live());
  service.start();
  core::EpisodeSpec spec(vms[0], testbed.eth_host(2));
  spec.after(Duration::seconds(1)).observe(service.observation_source());
  if (throttle) {
    policy::PolicySet policies;
    policies.use(policy::Hook::kPreCopyRound,
                 std::make_shared<policy::SloThrottlePolicy>());
    spec.with(std::move(policies), config.seed);
  }
  (void)episode.start(std::move(spec));
  testbed.sim().run_for(Duration::seconds(30));

  SloOutcome out;
  out.generated = service.generated();
  out.completed = service.completed();
  out.episode_done = episode.done();
  if (out.episode_done) {
    out.downtime_ok = episode.downtime_within(
        testbed.eth_host(0).migration_engine().config().max_downtime);
  }
  const auto& precopy = service.phase(vmm::MigrationPhase::kPreCopy);
  out.precopy_requests = precopy.requests;
  if (precopy.latency.count() > 0) {
    out.precopy_p99 = precopy.latency.percentile(0.99);
  }
  return out;
}

TEST(SloThrottleProperty, NoWorsePrecopyTailAndDowntimePromiseHolds) {
  const SloOutcome plain = run_loaded(/*throttle=*/false);
  const SloOutcome throttled = run_loaded(/*throttle=*/true);
  ASSERT_TRUE(plain.episode_done);
  ASSERT_TRUE(throttled.episode_done);
  // Load conservation and the downtime promise survive throttling.
  EXPECT_EQ(throttled.completed, throttled.generated);
  EXPECT_TRUE(throttled.downtime_ok);
  ASSERT_GT(plain.precopy_requests, 0u);
  ASSERT_GT(throttled.precopy_requests, 0u);
  // The whole point: backing off the pre-copy bandwidth must not make the
  // users' pre-copy tail worse than the uncapped baseline.
  EXPECT_LE(throttled.precopy_p99, plain.precopy_p99);
}

// ---------------------------------------------------------------------------
// ServiceEpisode lifecycle: reusable after done(), loud mid-flight.
// ---------------------------------------------------------------------------

TEST(ServiceEpisodeLifecycle, ReusableAfterDoneAndLoudMidFlight) {
  core::TestbedConfig config;
  core::Testbed testbed(config);
  vmm::VmSpec spec;
  spec.name = "vm0";
  spec.memory = Bytes::mib(128);
  spec.base_os_footprint = Bytes::mib(64);
  auto vm = testbed.boot_vm(testbed.eth_host(0), spec, /*with_hca=*/false);
  testbed.settle();

  core::ServiceEpisode episode(testbed.sim());
  (void)episode.start(core::EpisodeSpec(vm, testbed.eth_host(1)));
  // Mid-flight double start fails loudly instead of silently clobbering
  // the live stats of the in-flight episode.
  EXPECT_THROW((void)episode.start(core::EpisodeSpec(vm, testbed.eth_host(2))), LogicError);
  testbed.sim().run_for(Duration::minutes(5));
  ASSERT_TRUE(episode.done());
  const std::int64_t first_end = episode.report().end_at.count_nanos();
  EXPECT_GT(first_end, 0);

  // Finished episodes are reusable: live() resets and the second report
  // describes the second migration only.
  (void)episode.start(core::EpisodeSpec(vm, testbed.eth_host(0)));
  testbed.sim().run_for(Duration::minutes(5));
  ASSERT_TRUE(episode.done());
  EXPECT_GT(episode.report().start_at.count_nanos(), first_end);
  EXPECT_GT(episode.report().end_at.count_nanos(), first_end);
}

}  // namespace
}  // namespace nm
