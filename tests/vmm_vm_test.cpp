// Tests for the VM object: guest compute under pause/contention, device
// plug/unplug bookkeeping, and SymVirt wait/signal hypercall semantics.
#include <gtest/gtest.h>

#include <vector>

#include "core/testbed.h"
#include "vmm/vm.h"

namespace nm::vmm {
namespace {

using core::Testbed;
using core::TestbedConfig;

TEST(Vm, BaseOsFootprintIsResidentData) {
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  spec.memory = Bytes::gib(20);
  spec.base_os_footprint = Bytes::mib(1536);
  auto vm = tb.boot_vm(tb.ib_host(0), spec, /*with_hca=*/false);
  EXPECT_EQ(vm->memory().data_bytes(), Bytes::mib(1536));
}

TEST(Vm, ComputeRespectsPauseGate) {
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  auto vm = tb.boot_vm(tb.ib_host(0), spec, false);
  double done_at = -1;
  tb.sim().spawn([](sim::Simulation& s, Vm& v, double& t) -> sim::Task {
    co_await v.compute(2.0);
    t = s.now().to_seconds();
  }(tb.sim(), *vm, done_at));
  // Pause from t=1 to t=5: the job needs 2 core-seconds -> finishes at 6.
  tb.sim().post(Duration::seconds(1.0), [&] { vm->pause(); });
  tb.sim().post(Duration::seconds(5.0), [&] { vm->resume(); });
  tb.sim().run();
  EXPECT_NEAR(done_at, 6.0, 1e-6);
}

TEST(Vm, PauseWhileQueuedBeforeComputeStarts) {
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  auto vm = tb.boot_vm(tb.ib_host(0), spec, false);
  vm->pause();
  double done_at = -1;
  tb.sim().spawn([](sim::Simulation& s, Vm& v, double& t) -> sim::Task {
    co_await v.compute(1.0);
    t = s.now().to_seconds();
  }(tb.sim(), *vm, done_at));
  tb.sim().post(Duration::seconds(3.0), [&] { vm->resume(); });
  tb.sim().run();
  EXPECT_NEAR(done_at, 4.0, 1e-6);
}

TEST(Vm, VcpuAllotmentCapsParallelism) {
  // A 2-vCPU VM on an 8-core host: four 1-core jobs share 2 vCPUs.
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  spec.vcpus = 2.0;
  auto vm = tb.boot_vm(tb.ib_host(0), spec, false);
  std::vector<double> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    tb.sim().spawn([](sim::Simulation& s, Vm& v, double& t) -> sim::Task {
      co_await v.compute(2.0);
      t = s.now().to_seconds();
    }(tb.sim(), *vm, done[i]));
  }
  tb.sim().run();
  for (const double t : done) {
    EXPECT_NEAR(t, 4.0, 1e-6);  // 4 jobs x 2 cs over 2 vCPUs
  }
}

TEST(Vm, TwoVmsContendOnHostCpu) {
  // Two 8-vCPU VMs on one 8-core host (the paper's consolidation case):
  // each VM's 8 jobs run at half speed.
  Testbed tb;
  VmSpec a;
  a.name = "vma";
  VmSpec b;
  b.name = "vmb";
  auto vma = tb.boot_vm(tb.eth_host(0), a, false);
  auto vmb = tb.boot_vm(tb.eth_host(0), b, false);
  std::vector<double> done(16, -1);
  for (int i = 0; i < 8; ++i) {
    tb.sim().spawn([](sim::Simulation& s, Vm& v, double& t) -> sim::Task {
      co_await v.compute(3.0);
      t = s.now().to_seconds();
    }(tb.sim(), *vma, done[i]));
    tb.sim().spawn([](sim::Simulation& s, Vm& v, double& t) -> sim::Task {
      co_await v.compute(3.0);
      t = s.now().to_seconds();
    }(tb.sim(), *vmb, done[8 + i]));
  }
  tb.sim().run();
  for (const double t : done) {
    EXPECT_NEAR(t, 6.0, 1e-6);
  }
}

TEST(Vm, DeviceBookkeeping) {
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  auto vm = tb.boot_vm(tb.ib_host(0), spec, /*with_hca=*/true);
  tb.settle();
  EXPECT_NE(vm->find_device("vnet0"), nullptr);
  EXPECT_NE(vm->find_device("vf0"), nullptr);
  EXPECT_TRUE(vm->has_vmm_bypass_device());
  EXPECT_EQ(vm->devices().size(), 2u);
  EXPECT_EQ(vm->find_device_by_kind("ib-hca-passthrough"), vm->find_device("vf0"));

  auto removed = vm->unplug_device("vf0");
  EXPECT_EQ(removed->tag(), "vf0");
  EXPECT_FALSE(vm->has_vmm_bypass_device());
  EXPECT_THROW((void)vm->unplug_device("vf0"), OperationError);
}

TEST(Vm, DuplicateDeviceTagRejected) {
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  auto vm = tb.boot_vm(tb.ib_host(0), spec, false);
  EXPECT_THROW(tb.ib_host(0).add_virtio_net(*vm, "vnet0"), LogicError);
}

TEST(Vm, SymVirtWaitParksUntilSignal) {
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  auto vm = tb.boot_vm(tb.ib_host(0), spec, false);
  std::vector<double> woke(3, -1);
  for (int i = 0; i < 3; ++i) {
    tb.sim().spawn([](sim::Simulation& s, Vm& v, double& t) -> sim::Task {
      co_await v.symvirt_wait();
      t = s.now().to_seconds();
    }(tb.sim(), *vm, woke[i]));
  }
  tb.sim().post(Duration::seconds(7.0), [&] { vm->symvirt_signal(); });
  tb.sim().run();
  for (const double t : woke) {
    EXPECT_NEAR(t, 7.0, 1e-9);
  }
  EXPECT_EQ(vm->symvirt_wait_count(), 0u);
}

TEST(Vm, WaitForSymvirtEntriesObservesCount) {
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  auto vm = tb.boot_vm(tb.ib_host(0), spec, false);
  double all_parked_at = -1;
  // VMM-side observer wants 2 parked guests.
  tb.sim().spawn([](sim::Simulation& s, Vm& v, double& t) -> sim::Task {
    co_await v.wait_for_symvirt_entries(2);
    t = s.now().to_seconds();
    v.symvirt_signal();
  }(tb.sim(), *vm, all_parked_at));
  // Guests enter at t=1 and t=3.
  for (const double at : {1.0, 3.0}) {
    tb.sim().post(Duration::seconds(at), [&] {
      tb.sim().spawn([](Vm& v) -> sim::Task { co_await v.symvirt_wait(); }(*vm));
    });
  }
  tb.sim().run();
  EXPECT_NEAR(all_parked_at, 3.0, 1e-9);
}

TEST(Vm, SymVirtCyclesAreIndependent) {
  // Two consecutive wait/signal cycles: a signal must not wake tasks that
  // park afterwards.
  Testbed tb;
  VmSpec spec;
  spec.name = "vm0";
  auto vm = tb.boot_vm(tb.ib_host(0), spec, false);
  std::vector<double> woke;
  tb.sim().spawn([](sim::Simulation& s, Vm& v, std::vector<double>& out) -> sim::Task {
    co_await v.symvirt_wait();  // cycle 1
    out.push_back(s.now().to_seconds());
    co_await v.symvirt_wait();  // cycle 2
    out.push_back(s.now().to_seconds());
  }(tb.sim(), *vm, woke));
  tb.sim().post(Duration::seconds(2.0), [&] { vm->symvirt_signal(); });
  tb.sim().post(Duration::seconds(5.0), [&] { vm->symvirt_signal(); });
  tb.sim().run();
  ASSERT_EQ(woke.size(), 2u);
  EXPECT_NEAR(woke[0], 2.0, 1e-9);
  EXPECT_NEAR(woke[1], 5.0, 1e-9);
}

}  // namespace
}  // namespace nm::vmm
