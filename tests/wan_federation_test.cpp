// WAN federation golden-reference layer. Three strata:
//
//  1. Model-free equivalence: a WanLink with zero latency and zero loss is
//     a plain boundary-resource pair, so a two-site split crossed by WAN
//     flows must produce the same max-min fair rates as the identical
//     topology merged onto one scheduler (with the endpoints as ordinary
//     resources) and as a brute-force global reference — within 1e-9,
//     across ~200 random topologies and mutation schedules.
//  2. Model semantics, hand-checkable: the Mathis ceiling binds per flow
//     (it models per-connection TCP throughput; the line rate stays the
//     shared-medium sum constraint), a factor-0 phase freezes crossing
//     flows until a heal phase, and an RTT-only phase still re-folds the
//     published caps (set_capacity marks the crossing components dirty
//     even when the numeric capacity is unchanged).
//  3. Determinism: with a lossy, time-varying link active, finite-work
//     timelines are bit-identical at every SolvePool worker count — and a
//     full cross-site Federation migration completes at the same
//     nanosecond for workers 0/1/2.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/evacuation_driver.h"
#include "core/federation.h"
#include "sim/fluid.h"
#include "sim/fluid_net.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/wan_link.h"
#include "vmm/host.h"
#include "vmm/migration.h"
#include "vmm/vm.h"

namespace nm::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- Brute-force reference max-min solver (as in fluid_crossdomain_test) ----

struct RefFlow {
  std::vector<std::size_t> res;
  std::vector<double> weight;
  double cap = kInf;  // 0 when suspended
};

std::vector<double> reference_rates(const std::vector<double>& capacity,
                                    const std::vector<RefFlow>& flows) {
  const std::size_t f_count = flows.size();
  std::vector<double> rate(f_count, 0.0);
  std::vector<bool> frozen(f_count, false);
  std::size_t left = f_count;
  while (left > 0) {
    std::vector<double> residual = capacity;
    std::vector<double> wsum(capacity.size(), 0.0);
    std::vector<std::size_t> unfrozen(capacity.size(), 0);
    for (std::size_t f = 0; f < f_count; ++f) {
      for (std::size_t s = 0; s < flows[f].res.size(); ++s) {
        if (frozen[f]) {
          residual[flows[f].res[s]] -= rate[f] * flows[f].weight[s];
        } else {
          wsum[flows[f].res[s]] += flows[f].weight[s];
          ++unfrozen[flows[f].res[s]];
        }
      }
    }
    double bound = kInf;
    for (std::size_t r = 0; r < capacity.size(); ++r) {
      if (unfrozen[r] > 0 && wsum[r] > 0.0) {
        bound = std::min(bound, std::max(0.0, residual[r]) / wsum[r]);
      }
    }
    for (std::size_t f = 0; f < f_count; ++f) {
      if (!frozen[f]) {
        bound = std::min(bound, flows[f].cap);
      }
    }
    if (!std::isfinite(bound)) {
      ADD_FAILURE() << "reference solver found no finite bound";
      return rate;
    }
    std::vector<bool> binding(capacity.size(), false);
    for (std::size_t r = 0; r < capacity.size(); ++r) {
      binding[r] = unfrozen[r] > 0 && wsum[r] > 0.0 &&
                   std::max(0.0, residual[r]) / wsum[r] <= bound * (1.0 + 1e-12);
    }
    bool progress = false;
    for (std::size_t f = 0; f < f_count; ++f) {
      if (frozen[f]) {
        continue;
      }
      bool freeze = flows[f].cap <= bound * (1.0 + 1e-12);
      for (std::size_t s = 0; !freeze && s < flows[f].res.size(); ++s) {
        freeze = binding[flows[f].res[s]];
      }
      if (freeze) {
        rate[f] = std::min(bound, flows[f].cap);
        frozen[f] = true;
        --left;
        progress = true;
      }
    }
    if (!progress) {
      ADD_FAILURE() << "reference solver stalled";
      return rate;
    }
  }
  return rate;
}

// --- Topology description: two sites plus a WAN endpoint pair ---------------

struct FlowDesc {
  std::vector<std::size_t> res;
  std::vector<double> weight;
  double cap = kInf;
  double work = 1e15;
};

// Regular resource r lives at site r % 2; the last two capacity entries are
// the WAN endpoints (equal, = line rate). A flow whose regular resources
// span both sites carries shares on both endpoints (the shared-medium
// routing the Federation's fabrics use).
struct WanTopo {
  std::vector<double> capacity;
  std::vector<FlowDesc> flows;
  std::size_t wan_a = 0;
  std::size_t wan_b = 0;
  double line = 0.0;
};

WanTopo random_wan_topo(std::mt19937& rng, bool finite_work, double cap_scale,
                        double work_scale) {
  std::uniform_real_distribution<double> cap_dist(0.5, 200.0);
  std::uniform_real_distribution<double> line_dist(5.0, 150.0);
  std::uniform_real_distribution<double> weight_dist(0.01, 2.0);
  std::uniform_real_distribution<double> wan_weight_dist(0.25, 1.5);
  std::uniform_real_distribution<double> flow_cap_dist(0.1, 100.0);
  std::uniform_real_distribution<double> work_dist(0.1, 50.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  WanTopo t;
  const std::size_t r_count = 2 + rng() % 7;
  for (std::size_t r = 0; r < r_count; ++r) {
    t.capacity.push_back(cap_dist(rng) * cap_scale);
  }
  t.line = line_dist(rng) * cap_scale;
  t.wan_a = r_count;
  t.wan_b = r_count + 1;
  t.capacity.push_back(t.line);
  t.capacity.push_back(t.line);
  const std::size_t f_count = 1 + rng() % 24;
  for (std::size_t f = 0; f < f_count; ++f) {
    // Up to two regular resources; a cross-site flow adds the endpoint
    // pair, for four shares total — the span envelope the ghost exchange
    // provably solves to the global max-min point (fluid_crossdomain_test
    // pins spans up to 4; beyond that the Jacobi fold can settle on a
    // stable fixed point that is not the max-min allocation).
    const std::size_t span = 1 + rng() % std::min<std::size_t>(2, r_count);
    FlowDesc fd;
    while (fd.res.size() < span) {
      const std::size_t r = rng() % r_count;
      if (std::find(fd.res.begin(), fd.res.end(), r) == fd.res.end()) {
        fd.res.push_back(r);
        fd.weight.push_back(weight_dist(rng));
      }
    }
    fd.cap = unit(rng) < 0.4 ? flow_cap_dist(rng) * cap_scale : kUncappedRate;
    fd.work = finite_work ? work_dist(rng) * work_scale : 1e15;
    t.flows.push_back(std::move(fd));
  }
  // Force flow 0 cross-site so every seed genuinely crosses the link.
  t.flows[0].res = {0, 1};
  t.flows[0].weight = {1.0, 1.0};
  // Cross-site flows take a share on each endpoint (one stream on the
  // wire: same weight both sides, and weights != 1 exercise the policy's
  // wire-rate -> flow-rate conversion).
  for (auto& fd : t.flows) {
    bool site[2] = {false, false};
    for (const std::size_t r : fd.res) {
      site[r % 2] = true;
    }
    if (site[0] && site[1]) {
      const double w = wan_weight_dist(rng);
      fd.res.push_back(t.wan_a);
      fd.weight.push_back(w);
      fd.res.push_back(t.wan_b);
      fd.weight.push_back(w);
    }
  }
  return t;
}

// The same topology on one scheduler, endpoints as plain resources.
struct MergedTopo {
  Simulation sim;
  FluidScheduler sched{sim};
  std::vector<std::unique_ptr<FluidResource>> res;
  std::vector<FlowPtr> flows;

  explicit MergedTopo(const WanTopo& t) {
    for (std::size_t r = 0; r < t.capacity.size(); ++r) {
      std::string name = "r";
      name += std::to_string(r);
      res.push_back(std::make_unique<FluidResource>(sched, std::move(name), t.capacity[r]));
    }
    for (const auto& fd : t.flows) {
      FlowSpec spec{fd.work, {}, fd.cap, {}};
      for (std::size_t s = 0; s < fd.res.size(); ++s) {
        spec.over(*res[fd.res[s]], fd.weight[s]);
      }
      flows.push_back(sched.start(std::move(spec)));
    }
  }
};

// Two site domains coupled by a real WanLink; regular resource r lands at
// site r % 2, and the endpoint shares route through wan.a()/wan.b().
struct FederatedTopo {
  Simulation sim;
  FluidNet net;
  std::unique_ptr<WanLink> wan;
  std::vector<std::unique_ptr<FluidResource>> res;  // regular resources only
  std::vector<FlowPtr> flows;

  FederatedTopo(const WanTopo& t, int workers, WanLinkConfig cfg) : net(sim, workers) {
    auto& da = net.add_domain("site-a");
    auto& db = net.add_domain("site-b");
    cfg.line_rate = Bandwidth::bytes_per_sec(t.line);
    wan = std::make_unique<WanLink>(sim, da.scheduler(), db.scheduler(), "test", cfg);
    const std::size_t regular = t.capacity.size() - 2;
    for (std::size_t r = 0; r < regular; ++r) {
      auto& dom = net.domain(r % 2);
      std::string name = "r";
      name += std::to_string(r);
      res.push_back(
          std::make_unique<FluidResource>(dom.scheduler(), std::move(name), t.capacity[r]));
    }
    for (const auto& fd : t.flows) {
      FlowSpec spec{fd.work, {}, fd.cap, {}};
      for (std::size_t s = 0; s < fd.res.size(); ++s) {
        const std::size_t r = fd.res[s];
        if (r == t.wan_a) {
          spec.over(wan->a(), fd.weight[s]);
        } else if (r == t.wan_b) {
          spec.over(wan->b(), fd.weight[s]);
        } else {
          spec.over(*res[r], fd.weight[s]);
        }
      }
      flows.push_back(net.start(std::move(spec)));
    }
  }
};

std::vector<double> expected_rates(const MergedTopo& m, const WanTopo& t) {
  std::vector<double> capacity;
  capacity.reserve(m.res.size());
  for (const auto& r : m.res) {
    capacity.push_back(r->capacity());
  }
  std::vector<RefFlow> flows;
  flows.reserve(t.flows.size());
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    RefFlow rf;
    rf.res = t.flows[f].res;
    rf.weight = t.flows[f].weight;
    rf.cap = m.flows[f]->max_rate();  // 0 while suspended
    flows.push_back(std::move(rf));
  }
  return reference_rates(capacity, flows);
}

void check_rates(MergedTopo& merged, FederatedTopo& split, const WanTopo& t,
                 std::uint32_t seed, int step) {
  const auto want = expected_rates(merged, t);
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    const double m = merged.flows[f]->current_rate();
    const double s = split.flows[f]->current_rate();
    const double tol = 1e-9 * std::max({1.0, std::abs(m), std::abs(s), std::abs(want[f])});
    EXPECT_NEAR(m, want[f], tol)
        << "merged vs reference: seed=" << seed << " step=" << step << " flow=" << f;
    EXPECT_NEAR(s, want[f], tol)
        << "federated vs reference: seed=" << seed << " step=" << step << " flow=" << f;
  }
}

void run_golden_equivalence(std::uint32_t seed) {
  std::mt19937 rng(seed);
  const WanTopo t = random_wan_topo(rng, /*finite_work=*/false, 1.0, 1.0);
  MergedTopo merged(t);
  // Zero RTT and zero loss: the Mathis ceiling is +inf and the factor
  // stays 1, so the policy's min() must be a no-op against the fair offer.
  FederatedTopo split(t, /*workers=*/0, WanLinkConfig{});
  EXPECT_GT(split.net.boundary_flow_count(), 0u) << "seed=" << seed;
  check_rates(merged, split, t, seed, /*step=*/-1);

  std::uniform_real_distribution<double> cap_dist(0.5, 200.0);
  std::uniform_real_distribution<double> flow_cap_dist(0.1, 100.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::size_t regular = t.capacity.size() - 2;
  const int steps = static_cast<int>(rng() % 6);
  for (int step = 0; step < steps; ++step) {
    const std::size_t f = rng() % t.flows.size();
    switch (rng() % 5) {
      case 0: {
        const Duration window = Duration::millis(1 + rng() % 100);
        merged.sim.run_for(window);
        split.sim.run_for(window);
        break;
      }
      case 1: {
        const double cap = unit(rng) < 0.3 ? kUncappedRate : flow_cap_dist(rng);
        merged.flows[f]->set_max_rate(cap);
        split.flows[f]->set_max_rate(cap);
        break;
      }
      case 2:
        merged.flows[f]->suspend();
        split.flows[f]->suspend();
        break;
      case 3:
        merged.flows[f]->resume();
        split.flows[f]->resume();
        break;
      case 4: {
        // Mutate regular resources only; the endpoints belong to the link
        // (its schedule is the one allowed to move them).
        const std::size_t r = rng() % regular;
        const double cap = cap_dist(rng);
        merged.res[r]->set_capacity(cap);
        split.res[r]->set_capacity(cap);
        break;
      }
    }
    check_rates(merged, split, t, seed, step);
  }
  EXPECT_EQ(split.net.unconverged_exchange_count(), 0u) << "seed=" << seed;
}

TEST(WanGolden, ZeroImpairmentLinkMatchesMergedAndReference) {
  for (std::uint32_t seed = 1; seed <= 200; ++seed) {
    run_golden_equivalence(seed);
    if (::testing::Test::HasFailure()) {
      break;  // first failing seed is enough to debug
    }
  }
}

// --- N-site golden equivalence ----------------------------------------------
// Full-mesh N-site split: regular resource r lives at site r % N, and a
// cross-site flow rides the direct WanLink between its two sites (a full
// mesh keeps every cross flow single-hop, i.e. inside the 4-share
// exchange envelope the boundary exchange provably solves). Zero
// impairments, so the merged topology — endpoints as plain resources on
// one scheduler — and the brute-force reference must agree within 1e-9.

struct NSiteTopo {
  std::size_t n_sites = 3;
  std::vector<double> capacity;  // regular resources only
  std::vector<std::pair<std::size_t, std::size_t>> pairs;  // (i, j), i < j
  std::vector<double> line;                                // per pair
  std::vector<FlowDesc> flows;  // res = regular indices; endpoint shares appended
  // Reference-solver view: regular capacities, then endpoint pair p at
  // indices regular + 2p (a side) and regular + 2p + 1 (b side).
  [[nodiscard]] std::size_t endpoint_a(std::size_t p) const { return capacity.size() + 2 * p; }
  [[nodiscard]] std::size_t endpoint_b(std::size_t p) const {
    return capacity.size() + 2 * p + 1;
  }
};

NSiteTopo random_nsite_topo(std::mt19937& rng, std::size_t n_sites) {
  std::uniform_real_distribution<double> cap_dist(0.5, 200.0);
  std::uniform_real_distribution<double> line_dist(5.0, 150.0);
  std::uniform_real_distribution<double> weight_dist(0.01, 2.0);
  std::uniform_real_distribution<double> wan_weight_dist(0.25, 1.5);
  std::uniform_real_distribution<double> flow_cap_dist(0.1, 100.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  NSiteTopo t;
  t.n_sites = n_sites;
  for (std::size_t i = 0; i < n_sites; ++i) {
    for (std::size_t j = i + 1; j < n_sites; ++j) {
      t.pairs.emplace_back(i, j);
      t.line.push_back(line_dist(rng));
    }
  }
  const std::size_t r_count = n_sites + rng() % 7;  // >= 1 per site
  for (std::size_t r = 0; r < r_count; ++r) {
    t.capacity.push_back(cap_dist(rng));
  }
  const std::size_t f_count = 1 + rng() % 24;
  for (std::size_t f = 0; f < f_count; ++f) {
    const std::size_t span = 1 + rng() % 2;
    FlowDesc fd;
    while (fd.res.size() < span) {
      const std::size_t r = rng() % r_count;
      if (std::find(fd.res.begin(), fd.res.end(), r) == fd.res.end()) {
        fd.res.push_back(r);
        fd.weight.push_back(weight_dist(rng));
      }
    }
    fd.cap = unit(rng) < 0.4 ? flow_cap_dist(rng) : kUncappedRate;
    t.flows.push_back(std::move(fd));
  }
  // Force flow 0 cross-site so every seed crosses at least one link.
  t.flows[0].res = {0, 1};
  t.flows[0].weight = {1.0, 1.0};
  for (auto& fd : t.flows) {
    if (fd.res.size() < 2) {
      continue;
    }
    const std::size_t sa = fd.res[0] % n_sites;
    const std::size_t sb = fd.res[1] % n_sites;
    if (sa == sb) {
      continue;
    }
    const auto pair = std::make_pair(std::min(sa, sb), std::max(sa, sb));
    const std::size_t p = static_cast<std::size_t>(
        std::find(t.pairs.begin(), t.pairs.end(), pair) - t.pairs.begin());
    const double w = wan_weight_dist(rng);
    fd.res.push_back(t.endpoint_a(p));
    fd.weight.push_back(w);
    fd.res.push_back(t.endpoint_b(p));
    fd.weight.push_back(w);
  }
  return t;
}

struct MergedTopoN {
  Simulation sim;
  FluidScheduler sched{sim};
  std::vector<std::unique_ptr<FluidResource>> res;  // regular + 2 per pair
  std::vector<FlowPtr> flows;

  explicit MergedTopoN(const NSiteTopo& t) {
    for (std::size_t r = 0; r < t.capacity.size(); ++r) {
      res.push_back(
          std::make_unique<FluidResource>(sched, "r" + std::to_string(r), t.capacity[r]));
    }
    for (std::size_t p = 0; p < t.pairs.size(); ++p) {
      res.push_back(
          std::make_unique<FluidResource>(sched, "wa" + std::to_string(p), t.line[p]));
      res.push_back(
          std::make_unique<FluidResource>(sched, "wb" + std::to_string(p), t.line[p]));
    }
    for (const auto& fd : t.flows) {
      FlowSpec spec{fd.work, {}, fd.cap, {}};
      for (std::size_t s = 0; s < fd.res.size(); ++s) {
        spec.over(*res[fd.res[s]], fd.weight[s]);
      }
      flows.push_back(sched.start(std::move(spec)));
    }
  }
};

struct FederatedTopoN {
  Simulation sim;
  FluidNet net;
  std::vector<std::unique_ptr<WanLink>> wans;       // one per pair
  std::vector<std::unique_ptr<FluidResource>> res;  // regular only
  std::vector<FlowPtr> flows;

  FederatedTopoN(const NSiteTopo& t, int workers) : net(sim, workers) {
    for (std::size_t s = 0; s < t.n_sites; ++s) {
      net.add_domain("site-" + std::to_string(s));
    }
    for (std::size_t p = 0; p < t.pairs.size(); ++p) {
      WanLinkConfig cfg;  // zero impairments: plain boundary pair
      cfg.line_rate = Bandwidth::bytes_per_sec(t.line[p]);
      wans.push_back(std::make_unique<WanLink>(
          sim, net.domain(t.pairs[p].first).scheduler(),
          net.domain(t.pairs[p].second).scheduler(), "w" + std::to_string(p), cfg));
    }
    for (std::size_t r = 0; r < t.capacity.size(); ++r) {
      res.push_back(std::make_unique<FluidResource>(net.domain(r % t.n_sites).scheduler(),
                                                    "r" + std::to_string(r), t.capacity[r]));
    }
    for (const auto& fd : t.flows) {
      FlowSpec spec{fd.work, {}, fd.cap, {}};
      for (std::size_t s = 0; s < fd.res.size(); ++s) {
        const std::size_t r = fd.res[s];
        if (r >= t.capacity.size()) {
          const std::size_t p = (r - t.capacity.size()) / 2;
          spec.over((r - t.capacity.size()) % 2 == 0 ? wans[p]->a() : wans[p]->b(),
                    fd.weight[s]);
        } else {
          spec.over(*res[r], fd.weight[s]);
        }
      }
      flows.push_back(net.start(std::move(spec)));
    }
  }
};

void check_nsite_rates(MergedTopoN& merged, FederatedTopoN& split, const NSiteTopo& t,
                       std::uint32_t seed, int step) {
  std::vector<double> capacity;
  capacity.reserve(merged.res.size());
  for (const auto& r : merged.res) {
    capacity.push_back(r->capacity());
  }
  std::vector<RefFlow> ref;
  ref.reserve(t.flows.size());
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    ref.push_back(RefFlow{t.flows[f].res, t.flows[f].weight, merged.flows[f]->max_rate()});
  }
  const auto want = reference_rates(capacity, ref);
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    const double m = merged.flows[f]->current_rate();
    const double s = split.flows[f]->current_rate();
    const double tol = 1e-9 * std::max({1.0, std::abs(m), std::abs(s), std::abs(want[f])});
    EXPECT_NEAR(m, want[f], tol) << "merged vs reference: sites=" << t.n_sites
                                 << " seed=" << seed << " step=" << step << " flow=" << f;
    EXPECT_NEAR(s, want[f], tol) << "federated vs reference: sites=" << t.n_sites
                                 << " seed=" << seed << " step=" << step << " flow=" << f;
  }
}

void run_nsite_golden(std::uint32_t seed, std::size_t n_sites) {
  std::mt19937 rng(seed * 977 + static_cast<std::uint32_t>(n_sites));
  const NSiteTopo t = random_nsite_topo(rng, n_sites);
  MergedTopoN merged(t);
  FederatedTopoN split(t, /*workers=*/0);
  EXPECT_GT(split.net.boundary_flow_count(), 0u) << "sites=" << n_sites << " seed=" << seed;
  check_nsite_rates(merged, split, t, seed, /*step=*/-1);

  std::uniform_real_distribution<double> cap_dist(0.5, 200.0);
  std::uniform_real_distribution<double> flow_cap_dist(0.1, 100.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const int steps = static_cast<int>(rng() % 6);
  for (int step = 0; step < steps; ++step) {
    const std::size_t f = rng() % t.flows.size();
    switch (rng() % 5) {
      case 0: {
        const Duration window = Duration::millis(1 + rng() % 100);
        merged.sim.run_for(window);
        split.sim.run_for(window);
        break;
      }
      case 1: {
        const double cap = unit(rng) < 0.3 ? kUncappedRate : flow_cap_dist(rng);
        merged.flows[f]->set_max_rate(cap);
        split.flows[f]->set_max_rate(cap);
        break;
      }
      case 2:
        merged.flows[f]->suspend();
        split.flows[f]->suspend();
        break;
      case 3:
        merged.flows[f]->resume();
        split.flows[f]->resume();
        break;
      case 4: {
        const std::size_t r = rng() % t.capacity.size();
        const double cap = cap_dist(rng);
        merged.res[r]->set_capacity(cap);
        split.res[r]->set_capacity(cap);
        break;
      }
    }
    check_nsite_rates(merged, split, t, seed, step);
  }
  EXPECT_EQ(split.net.unconverged_exchange_count(), 0u)
      << "sites=" << n_sites << " seed=" << seed;
}

TEST(WanGolden, NSiteFullMeshMatchesMergedAndReference) {
  for (const std::size_t n_sites : {3u, 4u, 5u}) {
    for (std::uint32_t seed = 1; seed <= 40; ++seed) {
      run_nsite_golden(seed, n_sites);
      if (::testing::Test::HasFailure()) {
        return;  // first failing (sites, seed) is enough to debug
      }
    }
  }
}

// --- Model semantics, hand-checkable ----------------------------------------

// rtt 1 s, loss 0.375, mss 10 B => mathis = 10 * sqrt(1.5/0.375) / 1 = 20.
WanLinkConfig tiny_mathis_link() {
  WanLinkConfig cfg;
  cfg.line_rate = Bandwidth::bytes_per_sec(1000.0);
  cfg.rtt = Duration::seconds(1.0);
  cfg.loss = 0.375;
  cfg.mss_bytes = 10.0;
  return cfg;
}

TEST(WanModel, MathisCeilingBindsPerConnection) {
  Simulation sim;
  FluidNet net(sim, 0);
  auto& a = net.add_domain("a");
  auto& b = net.add_domain("b");
  WanLink wan(sim, a.scheduler(), b.scheduler(), "w", tiny_mathis_link());
  EXPECT_NEAR(wan.mathis_rate(), 20.0, 1e-9);
  EXPECT_NEAR(wan.effective_rate(), 20.0, 1e-9);

  auto one = net.start(FlowSpec{.work = 1e15}.over(wan.a()).over(wan.b()));
  // Mathis models a single TCP connection: the fair share of the 1000 B/s
  // line would be the whole line, but the published cap folds to 20.
  EXPECT_NEAR(one->current_rate(), 20.0, 1e-9);

  // A second connection gets its own Mathis ceiling — the line rate, not
  // the ceiling, is the shared-medium sum constraint (2 * 20 << 1000).
  auto two = net.start(FlowSpec{.work = 1e15}.over(wan.a()).over(wan.b()));
  EXPECT_NEAR(one->current_rate(), 20.0, 1e-9);
  EXPECT_NEAR(two->current_rate(), 20.0, 1e-9);
  EXPECT_EQ(net.unconverged_exchange_count(), 0u);
}

TEST(WanModel, WeightedFlowConvertsWireRateToFlowRate) {
  Simulation sim;
  FluidNet net(sim, 0);
  auto& a = net.add_domain("a");
  auto& b = net.add_domain("b");
  WanLink wan(sim, a.scheduler(), b.scheduler(), "w", tiny_mathis_link());
  // Weight 2 on the wire: each flow unit costs 2 wire bytes, so the flow
  // rate ceiling is mathis / 2 = 10.
  auto flow = net.start(FlowSpec{.work = 1e15}.over(wan.a(), 2.0).over(wan.b(), 2.0));
  EXPECT_NEAR(flow->current_rate(), 10.0, 1e-9);
}

Task watch(FlowPtr flow, Simulation& sim, std::int64_t& out) {
  co_await flow->completion().wait();
  out = sim.now().count_nanos();
}

TEST(WanModel, PartitionFreezesCrossingFlowsUntilHeal) {
  Simulation sim;
  FluidNet net(sim, 0);
  auto& a = net.add_domain("a");
  auto& b = net.add_domain("b");
  WanLinkConfig cfg;
  cfg.line_rate = Bandwidth::bytes_per_sec(10.0);
  std::vector<WanLinkPhase> schedule;
  schedule.push_back({.at = Duration::seconds(2.0), .capacity_factor = 0.0});
  schedule.push_back({.at = Duration::seconds(5.0), .capacity_factor = 1.0});
  cfg.schedule = std::move(schedule);
  WanLink wan(sim, a.scheduler(), b.scheduler(), "w", cfg);

  // 30 units at 10/s: 20 delivered by the cut at t=2, frozen for 3 s,
  // the last 10 delivered over t=5..6 — done at exactly t=6.
  auto flow = net.start(FlowSpec{.work = 30.0}.over(wan.a()).over(wan.b()));
  std::int64_t done = -1;
  sim.spawn(watch(flow, sim, done));
  sim.run_for(Duration::seconds(3.0));
  EXPECT_NEAR(flow->current_rate(), 0.0, 1e-12);  // mid-partition
  EXPECT_NEAR(wan.current_factor(), 0.0, 1e-12);
  sim.run();
  EXPECT_TRUE(flow->finished());
  EXPECT_EQ(done, 6'000'000'000);
  EXPECT_EQ(net.unconverged_exchange_count(), 0u);
}

TEST(WanModel, RttOnlyPhaseRefoldsPublishedCaps) {
  Simulation sim;
  FluidNet net(sim, 0);
  auto& a = net.add_domain("a");
  auto& b = net.add_domain("b");
  WanLinkConfig cfg = tiny_mathis_link();
  // Same capacity factor, doubled RTT: the numeric endpoint capacity does
  // not change, but the Mathis ceiling halves — the phase must still mark
  // the crossing components dirty and re-fold.
  cfg.schedule.push_back({.at = Duration::seconds(2.0), .capacity_factor = 1.0,
                          .rtt = Duration::seconds(2.0)});
  WanLink wan(sim, a.scheduler(), b.scheduler(), "w", cfg);
  auto flow = net.start(FlowSpec{.work = 1e15}.over(wan.a()).over(wan.b()));
  EXPECT_NEAR(flow->current_rate(), 20.0, 1e-9);
  sim.run_for(Duration::seconds(3.0));
  EXPECT_NEAR(wan.current_rtt().to_seconds(), 2.0, 1e-12);
  EXPECT_NEAR(flow->current_rate(), 10.0, 1e-9);
}

// --- Timeline bit-identity with a lossy, time-varying link ------------------

struct Timeline {
  std::int64_t final_ns = 0;
  std::vector<std::int64_t> done_ns;
};

// Byte-scale calibration: capacities ~5e5..2e8 B/s so a 20 ms / 0.2 % link
// (Mathis ceiling ~9e7 B/s) genuinely binds some flows, with congestion
// phases that drop, heal and re-impair the link mid-run.
WanLinkConfig lossy_schedule_link() {
  WanLinkConfig cfg;
  cfg.rtt = Duration::millis(20);
  cfg.loss = 0.002;
  std::vector<WanLinkPhase> schedule;
  schedule.push_back({.at = Duration::millis(100), .capacity_factor = 0.3});
  schedule.push_back({.at = Duration::millis(400), .capacity_factor = 1.0,
                      .rtt = Duration::millis(100)});
  schedule.push_back({.at = Duration::millis(900), .capacity_factor = 0.7,
                      .rtt = Duration::millis(10)});
  cfg.schedule = std::move(schedule);
  return cfg;
}

Timeline run_wan_timeline(const WanTopo& t, int workers) {
  FederatedTopo split(t, workers, lossy_schedule_link());
  Timeline tl;
  tl.done_ns.assign(t.flows.size(), -1);
  for (std::size_t f = 0; f < split.flows.size(); ++f) {
    split.sim.spawn(watch(split.flows[f], split.sim, tl.done_ns[f]));
  }
  tl.final_ns = split.sim.run().count_nanos();
  EXPECT_EQ(split.net.boundary_flow_count(), 0u);
  EXPECT_EQ(split.net.unconverged_exchange_count(), 0u);
  EXPECT_LT(split.net.max_exchange_rounds_per_settle(), 256u);
  return tl;
}

TEST(WanTimeline, BitIdenticalAcrossWorkerCountsWithLossyTimeVaryingLink) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    std::mt19937 rng(seed);
    const WanTopo t =
        random_wan_topo(rng, /*finite_work=*/true, /*cap_scale=*/1e6, /*work_scale=*/2e5);
    const Timeline base = run_wan_timeline(t, /*workers=*/0);
    for (const int workers : {1, 2, 4}) {
      const Timeline got = run_wan_timeline(t, workers);
      EXPECT_EQ(got.final_ns, base.final_ns) << "seed=" << seed << " workers=" << workers;
      EXPECT_EQ(got.done_ns, base.done_ns) << "seed=" << seed << " workers=" << workers;
    }
    if (::testing::Test::HasFailure()) {
      break;
    }
  }
}

}  // namespace
}  // namespace nm::sim

// --- Full-stack Federation coupling -----------------------------------------

namespace nm::core {
namespace {

sim::Task migrate_and_stamp(sim::Simulation& sim, vmm::Host& src, vmm::Vm& vm, vmm::Host& dst,
                            vmm::MigrationStats& stats, std::int64_t& done_ns) {
  co_await src.migrate(vm, dst, &stats);
  done_ns = sim.now().count_nanos();
}

FederationConfig small_federation(int solve_workers) {
  FederationConfig cfg;
  cfg.site_a.ib_nodes = 0;
  cfg.site_a.eth_nodes = 2;
  cfg.site_b.ib_nodes = 0;
  cfg.site_b.eth_nodes = 2;
  cfg.solve_workers = solve_workers;
  return cfg;
}

struct FederatedRun {
  std::int64_t done_ns = -1;
  std::int64_t final_ns = -1;
  Duration downtime = Duration::zero();
};

FederatedRun run_cross_site_migration(int solve_workers) {
  Federation fed(small_federation(solve_workers));
  auto& src = fed.site_a().eth_host(0);
  vmm::Host* dst = fed.find_host("b:eth0");
  EXPECT_NE(dst, nullptr);
  vmm::VmSpec spec;
  spec.name = "vm0";
  spec.memory = Bytes::gib(2);
  spec.base_os_footprint = Bytes::mib(256);
  auto vm = fed.site_a().boot_vm(src, spec, /*with_hca=*/false);
  fed.settle();

  FederatedRun out;
  vmm::MigrationStats stats;
  fed.sim().spawn(migrate_and_stamp(fed.sim(), src, *vm, *dst, stats, out.done_ns));
  out.final_ns = fed.sim().run().count_nanos();
  out.downtime = stats.downtime;

  EXPECT_TRUE(dst->resident(*vm)) << "workers=" << solve_workers;
  EXPECT_FALSE(src.resident(*vm)) << "workers=" << solve_workers;
  EXPECT_EQ(&vm->host(), dst) << "workers=" << solve_workers;
  EXPECT_GT(out.done_ns, 0) << "workers=" << solve_workers;
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u) << "workers=" << solve_workers;
  EXPECT_GT(fed.exchange_round_count(), 0u) << "workers=" << solve_workers;
  EXPECT_LT(fed.max_exchange_rounds_per_settle(), 256u) << "workers=" << solve_workers;
  return out;
}

TEST(WanFederation, HostsResolveAcrossSitesAndDomainsAreDistinct) {
  Federation fed(small_federation(0));
  EXPECT_EQ(fed.find_host("a:eth0"), &fed.site_a().eth_host(0));
  EXPECT_EQ(fed.find_host("b:eth1"), &fed.site_b().eth_host(1));
  EXPECT_EQ(fed.find_host("c:eth0"), nullptr);
  // The WAN endpoints live one per site zone, in different domains.
  sim::FluidDomain* da = fed.domain_of(fed.wan().a());
  sim::FluidDomain* db = fed.domain_of(fed.wan().b());
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_NE(da, db);
  // Both sites' resolvers reach both sites through the federation.
  EXPECT_EQ(fed.resolver()("a:eth1"), &fed.site_a().eth_host(1));
  EXPECT_EQ(fed.resolver()("b:eth0"), &fed.site_b().eth_host(0));
}

TEST(WanFederation, CrossSiteMigrationLandsAtSameInstantForEveryWorkerCount) {
  const FederatedRun base = run_cross_site_migration(0);
  EXPECT_FALSE(base.downtime.is_negative());
  for (const int workers : {1, 2}) {
    const FederatedRun got = run_cross_site_migration(workers);
    EXPECT_EQ(got.done_ns, base.done_ns) << "workers=" << workers;
    EXPECT_EQ(got.final_ns, base.final_ns) << "workers=" << workers;
    EXPECT_EQ(got.downtime.count_nanos(), base.downtime.count_nanos())
        << "workers=" << workers;
  }
}

// Regression: the eth address-base dedup and per-edge uplink peering used
// to assume exactly two testbeds. With three sites on default configs
// (every address_base = 0), every site must land on its own 2^16 block and
// every host address must stay globally unique — otherwise a routed
// destination could shadow a local one and traffic lands on the wrong
// site.
TEST(WanFederation, ThreeSiteFederationDoesNotAliasEthAddresses) {
  FederationConfig cfg;
  FederationSiteConfig site;
  site.testbed.ib_nodes = 0;
  site.testbed.eth_nodes = 2;
  site.name = "a";
  cfg.sites.push_back(site);
  site.name = "b";
  cfg.sites.push_back(site);
  site.name = "c";
  cfg.sites.push_back(site);
  cfg.edges = {{0, 1, {}}, {0, 2, {}}, {1, 2, {}}};
  Federation fed(cfg);

  // Dedup re-based the colliding defaults onto distinct 2^16 blocks.
  std::set<net::FabricAddress> bases;
  for (const FederationSiteConfig& s : fed.config().sites) {
    EXPECT_TRUE(bases.insert(s.testbed.eth.address_base).second)
        << "site " << s.name << " shares an address base";
    EXPECT_EQ(s.testbed.eth.address_base % (1u << 16), 0u) << "site " << s.name;
  }
  // Every host attachment address is globally unique across the mesh.
  std::set<net::FabricAddress> addresses;
  for (std::size_t s = 0; s < fed.site_count(); ++s) {
    for (vmm::Host* host : fed.site(s).all_hosts()) {
      EXPECT_TRUE(addresses.insert(host->eth_attachment()->address()).second)
          << host->name() << " aliases another host's address";
    }
  }
  // And cross-site resolution reaches the intended host on every pair.
  EXPECT_EQ(fed.find_host("c:eth1"), &fed.site(2).eth_host(1));
  EXPECT_EQ(fed.route(0, 2).size(), 1u);
  EXPECT_EQ(fed.route(1, 2).size(), 1u);
}

// --- N-site evacuation timelines: bit-identical across worker counts --------

FederationConfig evac_mesh(int solve_workers) {
  FederationConfig cfg;
  TestbedConfig source;
  source.ib_nodes = 0;
  source.eth_nodes = 2;
  TestbedConfig refuge;
  refuge.ib_nodes = 0;
  refuge.eth_nodes = 1;
  cfg.sites = {{"a", source}, {"b", refuge}, {"c", refuge}};
  // Lossy, time-varying links: the congestion phases land mid-evacuation,
  // so wave grants read different live rates than the nominal plan.
  sim::WanLinkConfig wan;
  wan.line_rate = Bandwidth::gbps(1);
  wan.rtt = Duration::millis(20);
  wan.loss = 0.002;
  wan.schedule.push_back({.at = Duration::seconds(2.0), .capacity_factor = 0.4});
  wan.schedule.push_back({.at = Duration::seconds(10.0), .capacity_factor = 1.0,
                          .rtt = Duration::millis(60)});
  sim::WanLinkConfig calm;
  calm.line_rate = Bandwidth::gbps(1);
  calm.rtt = Duration::millis(20);
  calm.loss = 0.002;
  cfg.edges = {{0, 1, wan}, {0, 2, calm}, {1, 2, calm}};
  cfg.solve_workers = solve_workers;
  return cfg;
}

struct EvacTimeline {
  std::int64_t final_ns = -1;
  std::int64_t makespan_ns = -1;
  int waves = -1;
  std::size_t evacuated = 0;
  std::vector<std::int64_t> stamps;  // per VM: start, done, downtime
  std::vector<std::string> hosts;
};

EvacTimeline run_mesh_evacuation(int solve_workers, bool sequential) {
  Federation fed(evac_mesh(solve_workers));
  for (int h = 0; h < fed.site(0).eth_host_count(); ++h) {
    for (int v = 0; v < 3; ++v) {
      vmm::VmSpec spec;
      spec.name = "vm-" + std::to_string(h) + "-" + std::to_string(v);
      spec.memory = Bytes::gib(1);
      spec.base_os_footprint = Bytes::mib(128);
      auto vm = fed.site(0).boot_vm(fed.site(0).eth_host(h), spec, /*with_hca=*/false);
      vm->memory().write_data(Bytes::mib(128), Bytes::mib(96));
    }
  }
  fed.settle();

  EvacuationConfig ecfg;
  ecfg.sequential = sequential;
  MassEvacuation evac(fed, ecfg);
  EvacuationReport report;
  fed.sim().spawn(evac.run(&report), "evacuation");
  EvacTimeline tl;
  tl.final_ns = fed.sim().run().count_nanos();
  tl.makespan_ns = report.makespan().count_nanos();
  tl.waves = report.waves;
  tl.evacuated = report.evacuated;
  for (const VmOutcome& vm : report.vms) {
    tl.stamps.push_back(vm.start_ns);
    tl.stamps.push_back(vm.done_ns);
    tl.stamps.push_back(vm.downtime.count_nanos());
    tl.hosts.push_back(vm.dst_host);
  }
  EXPECT_EQ(report.evacuated, report.vms.size())
      << "workers=" << solve_workers << " sequential=" << sequential;
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u) << "workers=" << solve_workers;
  return tl;
}

TEST(WanFederation, MeshEvacuationTimelineBitIdenticalAcrossWorkerCounts) {
  const EvacTimeline base = run_mesh_evacuation(0, /*sequential=*/false);
  EXPECT_EQ(base.evacuated, 6u);
  EXPECT_GT(base.waves, 0);
  for (const int workers : {1, 2, 4}) {
    const EvacTimeline got = run_mesh_evacuation(workers, /*sequential=*/false);
    EXPECT_EQ(got.final_ns, base.final_ns) << "workers=" << workers;
    EXPECT_EQ(got.makespan_ns, base.makespan_ns) << "workers=" << workers;
    EXPECT_EQ(got.waves, base.waves) << "workers=" << workers;
    EXPECT_EQ(got.stamps, base.stamps) << "workers=" << workers;
    EXPECT_EQ(got.hosts, base.hosts) << "workers=" << workers;
  }
  // The planner's concurrent waves beat the one-at-a-time baseline on the
  // same mesh (the full-size gate lives in examples/mass_evacuation and
  // bench_scalability sweep 9; this pins the miniature version).
  const EvacTimeline naive = run_mesh_evacuation(0, /*sequential=*/true);
  EXPECT_EQ(naive.evacuated, 6u);
  EXPECT_LT(base.makespan_ns, naive.makespan_ns);
}

}  // namespace
}  // namespace nm::core
