// Tests for the guest OS layer: acpiphp hotplug processing, device-present
// gates, and the verbs/virtio drivers (link readiness, address resolution,
// QP lifecycle across re-attach).
#include <gtest/gtest.h>

#include <memory>

#include "core/testbed.h"
#include "guestos/drivers.h"
#include "guestos/guest_os.h"

namespace nm::guest {
namespace {

using core::Testbed;

vmm::VmSpec spec(const std::string& name) {
  vmm::VmSpec s;
  s.name = name;
  s.memory = Bytes::gib(1);
  s.base_os_footprint = Bytes::mib(256);
  return s;
}

TEST(GuestOs, SeesBootDevices) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), spec("vm0"), /*with_hca=*/true);
  GuestOs os(vm);
  tb.settle();
  EXPECT_TRUE(os.eth_present().is_open());
  EXPECT_TRUE(os.ib_present().is_open());
  EXPECT_NE(os.ib_device(), nullptr);
  EXPECT_NE(os.eth_device(), nullptr);
}

TEST(GuestOs, AcpiphpTracksHotplug) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), spec("vm0"), true);
  GuestOs os(vm);
  tb.settle();
  tb.sim().spawn([](Testbed& t, vmm::Vm& v) -> sim::Task {
    co_await t.ib_host(0).device_del(v, "vf0");
    co_await t.ib_host(0).device_add(v, Testbed::kHcaPciAddr, "vf0");
  }(tb, *vm));
  tb.sim().run_for(Duration::seconds(5.0));
  EXPECT_FALSE(os.hotplug_log().empty());
  // remove then add processed.
  const auto& log = os.hotplug_log();
  bool saw_remove = false;
  bool saw_add = false;
  for (const auto& e : log) {
    if (e.tag == "vf0" && e.kind == vmm::HotplugEvent::Kind::kRemoved) {
      saw_remove = true;
    }
    if (e.tag == "vf0" && e.kind == vmm::HotplugEvent::Kind::kAdded && saw_remove) {
      saw_add = true;
    }
  }
  EXPECT_TRUE(saw_remove);
  EXPECT_TRUE(saw_add);
  EXPECT_TRUE(os.ib_present().is_open());
}

TEST(Drivers, VirtioReadyImmediatelyIbAfterTraining) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), spec("vm0"), true);
  GuestOs os(vm);
  VirtioNetDriver eth(os);
  IbVerbsDriver ib(os);
  tb.sim().run_for(Duration::seconds(2.0));  // HCA attached at 1.02 s, training
  EXPECT_TRUE(eth.ready());
  EXPECT_TRUE(ib.present());
  EXPECT_FALSE(ib.ready());  // still POLLING
  tb.settle();
  EXPECT_TRUE(ib.ready());
  EXPECT_NE(ib.address(), net::kInvalidAddress);
  EXPECT_NE(eth.address(), net::kInvalidAddress);
  EXPECT_EQ(ib.transport_name(), "openib");
  EXPECT_EQ(eth.transport_name(), "tcp");
}

TEST(Drivers, WaitReadyPollsUntilLinkUp) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), spec("vm0"), true);
  GuestOs os(vm);
  IbVerbsDriver ib(os);
  double ready_at = -1;
  tb.sim().spawn([](sim::Simulation& s, IbVerbsDriver& d, double& t) -> sim::Task {
    co_await d.wait_ready();
    t = s.now().to_seconds();
  }(tb.sim(), ib, ready_at));
  tb.sim().run_for(Duration::seconds(60.0));
  // attach at 1.02 s + 29.9 s training, plus <=100 ms poll granularity.
  EXPECT_GE(ready_at, 30.9);
  EXPECT_LE(ready_at, 31.1);
}

TEST(Drivers, QueuePairsResetAcrossReattach) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), spec("vm0"), true);
  GuestOs os(vm);
  IbVerbsDriver ib(os);
  tb.settle();
  auto qp1 = ib.create_queue_pair();
  auto qp2 = ib.create_queue_pair();
  EXPECT_EQ(qp2.qpn, qp1.qpn + 1);
  EXPECT_EQ(ib.queue_pair_count(), 2u);
  ib.release_resources();
  EXPECT_EQ(ib.queue_pair_count(), 0u);

  tb.sim().spawn([](Testbed& t, vmm::Vm& v) -> sim::Task {
    co_await t.ib_host(0).device_del(v, "vf0");
    co_await t.ib_host(0).device_add(v, Testbed::kHcaPciAddr, "vf0");
  }(tb, *vm));
  tb.sim().run_for(Duration::seconds(40.0));  // detach 2.67 + attach 1.02 + 29.9 training
  EXPECT_TRUE(ib.ready());
  auto qp3 = ib.create_queue_pair();
  EXPECT_EQ(qp3.qpn, 1u);               // fresh QPN space
  EXPECT_NE(qp3.local_lid, qp1.local_lid);  // fresh LID
}

TEST(Drivers, SendBetweenTwoGuests) {
  Testbed tb;
  auto vm0 = tb.boot_vm(tb.ib_host(0), spec("vm0"), true);
  auto vm1 = tb.boot_vm(tb.ib_host(1), spec("vm1"), true);
  GuestOs os0(vm0);
  GuestOs os1(vm1);
  IbVerbsDriver ib0(os0);
  IbVerbsDriver ib1(os1);
  VirtioNetDriver eth0(os0);
  VirtioNetDriver eth1(os1);
  tb.settle();

  // RDMA is far faster than virtio TCP for the same payload.
  double ib_done = -1;
  double eth_done = -1;
  const double t0 = tb.sim().now().to_seconds();
  tb.sim().spawn([](sim::Simulation& s, IbVerbsDriver& src, IbVerbsDriver& dst,
                    double& t) -> sim::Task {
    co_await src.send(dst.address(), Bytes::mib(512));
    t = s.now().to_seconds();
  }(tb.sim(), ib0, ib1, ib_done));
  tb.sim().run();
  tb.sim().spawn([](sim::Simulation& s, VirtioNetDriver& src, VirtioNetDriver& dst,
                    double& t) -> sim::Task {
    co_await src.send(dst.address(), Bytes::mib(512));
    t = s.now().to_seconds();
  }(tb.sim(), eth0, eth1, eth_done));
  tb.sim().run();
  const double ib_time = ib_done - t0;
  const double eth_time = eth_done - ib_done;
  EXPECT_GT(ib_time, 0.0);
  EXPECT_GT(eth_time, ib_time * 2);  // QDR IB vs CPU-bound virtio TCP
}

TEST(Drivers, SendWithoutDeviceFails) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), spec("vm0"), false);  // no HCA
  GuestOs os(vm);
  IbVerbsDriver ib(os);
  tb.settle();
  EXPECT_FALSE(ib.present());
  EXPECT_EQ(ib.address(), net::kInvalidAddress);
  bool failed = false;
  tb.sim().spawn([](IbVerbsDriver& d, bool& f) -> sim::Task {
    try {
      co_await d.send(1, Bytes::mib(1));
    } catch (const OperationError&) {
      f = true;
    }
  }(ib, failed));
  tb.sim().run();
  EXPECT_TRUE(failed);
  EXPECT_THROW((void)ib.create_queue_pair(), OperationError);
}

}  // namespace
}  // namespace nm::guest
