// Failure injection: what happens when the world misbehaves mid-protocol.
// These pin down the library's error contract:
//   - modelled (in-world) failures surface as OperationError from the
//     operation that hit them;
//   - an episode that cannot proceed leaves the system inspectable (VMs
//     parked, not corrupted);
//   - API misuse surfaces as LogicError.
#include <gtest/gtest.h>

#include <memory>

#include "core/evacuation_driver.h"
#include "core/federation.h"
#include "core/job.h"
#include "core/ninja.h"
#include "core/testbed.h"
#include "mpi/cr.h"
#include "workloads/bcast_reduce.h"

namespace nm::core {
namespace {

JobConfig small_cfg(int vms, std::size_t rpv) {
  JobConfig cfg;
  cfg.vm_count = vms;
  cfg.ranks_per_vm = rpv;
  cfg.vm_template.memory = Bytes::gib(4);
  cfg.vm_template.base_os_footprint = Bytes::mib(512);
  return cfg;
}

std::shared_ptr<workloads::BcastReduceBench> start_workload(Testbed& tb, MpiJob& job,
                                                            int iters) {
  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::mib(256);
  wcfg.iterations = iters;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });
  (void)tb;
  return bench;
}

TEST(FailureInjection, UnknownDestinationHostAbortsEpisode) {
  Testbed tb;
  MpiJob job(tb, small_cfg(2, 1));
  job.init();
  auto bench = start_workload(tb, job, 30);

  MigrationPlan plan = job.scheduler().fallback_plan(job.vms(), 2, 1);
  plan.destinations = {"no-such-host", "eth1"};
  tb.sim().spawn([](MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b,
                    MigrationPlan p) -> sim::Task {
    co_await b->wait_step(2);
    co_await j.ninja().execute(std::move(p));
  }(job, bench, plan));
  // The failing agent's exception surfaces from the simulation run.
  EXPECT_THROW(tb.sim().run(), OperationError);
}

TEST(FailureInjection, MigrationToHostWithoutSharedStorageRefused) {
  // Hand-build a 17th host on separate storage: live migration must refuse.
  Testbed tb;
  vmm::SharedStorage other_storage(tb.domain(0).scheduler(), "other-site");
  hw::Cluster other_cluster("other");
  auto& node = other_cluster.add_node(tb.domain(0), [] {
    hw::NodeSpec spec;
    spec.name = "alien0";
    return spec;
  }());
  vmm::Host alien(tb.sim(), tb.net(), node, other_storage);
  net::NicPort alien_eth(node, "alien0:eth", Bandwidth::gbps(10));
  alien.connect_eth(tb.eth_fabric(), alien_eth);

  vmm::VmSpec spec;
  spec.name = "vm0";
  spec.memory = Bytes::gib(2);
  spec.base_os_footprint = Bytes::mib(256);
  auto vm = tb.boot_vm(tb.ib_host(0), spec, false);
  tb.settle();
  bool refused = false;
  std::string msg;
  tb.sim().spawn([](Testbed& t, vmm::Host& dst, vmm::Vm& v, bool& r,
                    std::string& m) -> sim::Task {
    try {
      co_await t.ib_host(0).migrate(v, dst);
    } catch (const OperationError& e) {
      r = true;
      m = e.what();
    }
  }(tb, alien, *vm, refused, msg));
  tb.sim().run();
  EXPECT_TRUE(refused);
  EXPECT_NE(msg.find("share storage"), std::string::npos);
  EXPECT_TRUE(tb.ib_host(0).resident(*vm));  // nothing moved
}

TEST(FailureInjection, SecondCheckpointRequestWhilePendingRejected) {
  Testbed tb;
  MpiJob job(tb, small_cfg(2, 1));
  job.init();
  (void)start_workload(tb, job, 30);
  (void)job.runtime().cr().request();
  EXPECT_THROW((void)job.runtime().cr().request(), LogicError);
}

TEST(FailureInjection, LinkThatNeverTrainsLeavesJobParkedNotCorrupted) {
  TestbedConfig tcfg;
  tcfg.ib.linkup_time = Duration::minutes(60 * 24);  // "broken" port
  Testbed tb(tcfg);
  // Job starts on the Ethernet cluster (no dependence on the broken IB
  // training at boot) and attempts a recovery migration to InfiniBand.
  JobConfig cfg = small_cfg(2, 1);
  cfg.on_ib_cluster = false;
  cfg.with_hca = false;
  MpiJob job(tb, cfg);
  job.init();
  auto bench = start_workload(tb, job, 30);
  tb.sim().spawn([](MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b) -> sim::Task {
    co_await b->wait_step(2);
    co_await j.recovery_migration(2);
  }(job, bench));
  tb.sim().run_for(Duration::minutes(30));
  // The guests sit in the continue callback waiting for a link that never
  // comes; no crash, no progress, state still inspectable.
  EXPECT_LT(bench->completed_steps(), 30);
  EXPECT_TRUE(tb.ib_host(0).resident(*job.vms()[0]));  // migration happened
  EXPECT_GT(tb.sim().live_task_count(), 0u);           // parked, not dead
}

TEST(FailureInjection, HcaStolenBeforeRecoveryAttachFailsLoudly) {
  // Another tenant grabs the destination HCA between planning and window C.
  Testbed tb;
  JobConfig cfg = small_cfg(2, 1);
  cfg.on_ib_cluster = false;
  cfg.with_hca = false;
  MpiJob job(tb, cfg);
  job.init();
  auto bench = start_workload(tb, job, 40);

  // The squatter VM takes ib0's HCA.
  vmm::VmSpec squatter_spec;
  squatter_spec.name = "squatter";
  squatter_spec.memory = Bytes::gib(2);
  squatter_spec.base_os_footprint = Bytes::mib(256);
  auto squatter = tb.boot_vm(tb.ib_host(0), squatter_spec, /*with_hca=*/true);

  tb.sim().spawn([](MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b) -> sim::Task {
    co_await b->wait_step(2);
    co_await j.recovery_migration(2);
  }(job, bench));
  EXPECT_THROW(tb.sim().run(), OperationError);
  EXPECT_FALSE(tb.ib_host(0).hca_available(Testbed::kHcaPciAddr));
}

// Property: a checkpoint requested at a random iteration boundary always
// completes, regardless of where in the collective the ranks are.
class RandomTriggerProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomTriggerProperty, EpisodeCompletesFromAnyTriggerPoint) {
  Testbed tb;
  MpiJob job(tb, small_cfg(4, 2));
  job.init();
  auto bench = start_workload(tb, job, 16);
  const int trigger_step = GetParam();
  NinjaStats stats;
  tb.sim().spawn([](MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b, int step,
                    NinjaStats& st) -> sim::Task {
    co_await b->wait_step(step);
    co_await j.fallback_migration(4, &st);
  }(job, bench, trigger_step, stats));
  tb.sim().run();
  EXPECT_EQ(bench->completed_steps(), 16);
  EXPECT_EQ(job.current_transport(), "tcp");
  EXPECT_GT(stats.total.to_seconds(), 0.0);
  EXPECT_EQ(job.runtime().unexpected_count(), 0u);
  EXPECT_EQ(job.runtime().in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(TriggerSteps, RandomTriggerProperty,
                         ::testing::Values(1, 2, 3, 5, 7, 9, 11, 13));

// --- WAN failures mid-protocol ----------------------------------------------

FederationConfig eth_only_federation() {
  FederationConfig cfg;
  cfg.site_a.ib_nodes = 0;
  cfg.site_a.eth_nodes = 2;
  cfg.site_b.ib_nodes = 0;
  cfg.site_b.eth_nodes = 2;
  return cfg;
}

// When Federation::settle() returns — WAN schedule phases that must land
// mid-migration are placed relative to this.
Duration settle_window(const FederationConfig& cfg) {
  return cfg.site_a.ib.linkup_time + cfg.site_a.hotplug.attach_ib + Duration::seconds(1.0);
}

TEST(FailureInjection, WanPartitionMidMigrationStallsThenCompletesOnHeal) {
  // The inter-datacenter link partitions (capacity factor 0) while a
  // cross-site pre-copy is in flight: the transfer must freeze — not
  // error — with MigrationStats still live for an `info migrate` reader,
  // and the same migration must complete once a later phase heals the
  // link.
  FederationConfig fcfg = eth_only_federation();
  const Duration t0 = settle_window(fcfg);
  fcfg.wan.schedule.push_back({.at = t0 + Duration::seconds(7.0), .capacity_factor = 0.0});
  fcfg.wan.schedule.push_back({.at = t0 + Duration::seconds(37.0), .capacity_factor = 1.0});
  Federation fed(fcfg);

  vmm::VmSpec spec;
  spec.name = "vm0";
  spec.memory = Bytes::gib(4);
  spec.base_os_footprint = Bytes::mib(512);
  auto vm = fed.site_a().boot_vm(fed.site_a().eth_host(0), spec, false);
  vm->memory().write_data(Bytes::zero(), Bytes::gib(2) + Bytes::mib(512));
  fed.settle();

  // ~3 GiB on the wire at 125 MB/s: round 1 is mid-flight at the +7 s cut
  // and cannot finish before the +37 s heal.
  vmm::MigrationStats stats;
  fed.sim().spawn([](Federation& f, vmm::Vm& v, vmm::MigrationStats& st) -> sim::Task {
    co_await f.site_a().eth_host(0).migrate(v, *f.find_host("b:eth0"), &st);
  }(fed, *vm, stats));

  bool checked_mid_partition = false;
  fed.sim().spawn([](Federation& f, vmm::Vm& v, vmm::MigrationStats& st,
                     bool& checked) -> sim::Task {
    co_await f.sim().delay(Duration::seconds(22.0));  // inside the partition
    EXPECT_NEAR(f.wan().current_factor(), 0.0, 1e-12);
    EXPECT_TRUE(st.in_progress);                     // stalled, not aborted
    EXPECT_TRUE(f.site_a().eth_host(0).resident(v)); // still on the source
    EXPECT_GE(st.wire_bytes, Bytes::mib(256));       // progress before cut
    EXPECT_EQ(st.pause_at, TimePoint::origin());     // not in stop-and-copy
    checked = true;
  }(fed, *vm, stats, checked_mid_partition));

  fed.sim().run();
  EXPECT_TRUE(checked_mid_partition);
  EXPECT_FALSE(stats.in_progress);
  EXPECT_TRUE(fed.find_host("b:eth0")->resident(*vm));
  EXPECT_FALSE(fed.site_a().eth_host(0).resident(*vm));
  // Finished only after the heal.
  EXPECT_GT(fed.sim().now().to_seconds(), (t0 + Duration::seconds(37.0)).to_seconds());
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u);
}

TEST(FailureInjection, WanRttSpikeDuringMigrationKeepsDowntimeBounded) {
  // Cross-site cousin of Migration.SlowUplinkDowntimeStaysBounded: an RTT
  // spike mid-migration drops the Mathis-effective WAN rate to ~32 MB/s
  // while the thread could push 162.5 MB/s. The stop-and-copy estimate
  // reads the path rate through Fabric::path_rate — which folds the WAN's
  // *current* effective rate — so the loop pre-copies one more round
  // instead of entering the blackout with ~98 ms of dirty data against the
  // 30 ms cap. A model-blind estimate (line rate, 125 MB/s) would have
  // called 3 MiB converged at 24 ms and busted the cap.
  FederationConfig fcfg = eth_only_federation();
  const Duration t0 = settle_window(fcfg);
  fcfg.wan.rtt = Duration::millis(10);
  fcfg.wan.loss = 0.0001;
  // Same capacity factor; only the RTT moves (250 ms => Mathis ~32 MB/s).
  fcfg.wan.schedule.push_back({.at = t0 + Duration::seconds(9.0), .capacity_factor = 1.0,
                               .rtt = Duration::millis(250)});
  Federation fed(fcfg);

  vmm::VmSpec spec;
  spec.name = "vm0";
  spec.memory = Bytes::gib(4);
  spec.base_os_footprint = Bytes::mib(512);
  auto vm = fed.site_a().boot_vm(fed.site_a().eth_host(0), spec, false);
  vm->memory().write_data(Bytes::zero(), Bytes::gib(2) + Bytes::mib(512));
  fed.settle();

  // One mid-round write after the spike: it becomes round 2's work, and
  // draining it at the spiked rate busts the cap unless the estimator sees
  // the spike.
  fed.sim().spawn([](Federation& f, vmm::Vm& v) -> sim::Task {
    co_await f.sim().delay(Duration::seconds(17.0));  // post-spike, round 1
    v.memory().write_data(Bytes::zero(), Bytes::mib(3));
  }(fed, *vm));

  vmm::MigrationStats stats;
  fed.sim().spawn([](Federation& f, vmm::Vm& v, vmm::MigrationStats& st) -> sim::Task {
    co_await f.site_a().eth_host(0).migrate(v, *f.find_host("b:eth0"), &st);
  }(fed, *vm, stats));
  fed.sim().run();

  EXPECT_EQ(stats.rounds, 2);
  EXPECT_LE(stats.downtime,
            fed.site_a().eth_host(0).migration_engine().config().max_downtime);
  EXPECT_TRUE(fed.find_host("b:eth0")->resident(*vm));
  EXPECT_FALSE(stats.in_progress);
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u);
}

// --- Mesh failures mid-evacuation -------------------------------------------

FederationConfig evac_triangle() {
  FederationConfig cfg;
  FederationSiteConfig site;
  site.testbed.ib_nodes = 0;
  site.testbed.eth_nodes = 2;
  site.name = "a";
  cfg.sites.push_back(site);
  site.testbed.eth_nodes = 1;
  site.name = "b";
  cfg.sites.push_back(site);
  site.name = "c";
  cfg.sites.push_back(site);
  cfg.edges = {{0, 1, {}}, {0, 2, {}}, {1, 2, {}}};  // 1 Gbps, no impairments
  return cfg;
}

// Boots `per_host` VMs on each source host with ~0.6 GiB of wire payload.
std::vector<std::shared_ptr<vmm::Vm>> boot_evac_fleet(Federation& fed, int per_host) {
  std::vector<std::shared_ptr<vmm::Vm>> vms;
  for (int h = 0; h < fed.site(0).eth_host_count(); ++h) {
    for (int v = 0; v < per_host; ++v) {
      vmm::VmSpec spec;
      spec.name = "vm-" + std::to_string(h) + "-" + std::to_string(v);
      spec.memory = Bytes::gib(1);
      spec.base_os_footprint = Bytes::mib(128);
      auto vm = fed.site(0).boot_vm(fed.site(0).eth_host(h), spec, /*with_hca=*/false);
      vm->memory().write_data(Bytes::mib(128), Bytes::mib(512));
      vms.push_back(std::move(vm));
    }
  }
  fed.settle();
  return vms;
}

TEST(FailureInjection, MeshEdgePartitionMidEvacuationStallsWithoutDowntimeThenCompletes) {
  // Edge a-b is cut 2 s into the evacuation — while wave-1 pre-copies to
  // site b are mid-chunk — and heals at +200 s. The affected migrations
  // must freeze (pre-copy stall adds nothing to downtime: the VMs keep
  // running on the source), and the whole evacuation must finish after
  // the heal with every blackout still inside max_downtime.
  Federation fed(evac_triangle());
  auto vms = boot_evac_fleet(fed, 3);

  MassEvacuation evac(fed, {});
  EvacuationReport report;
  fed.sim().spawn(evac.run(&report), "evacuation");
  const Duration heal_after = Duration::seconds(200.0);
  fed.sim().spawn([](Federation& f, Duration heal) -> sim::Task {
    co_await f.sim().delay(Duration::seconds(2.0));
    f.wan_link(0).inject_phase(0.0);  // partition a-b mid-wave
    co_await f.sim().delay(heal - Duration::seconds(2.0));
    f.wan_link(0).inject_phase(1.0);
  }(fed, heal_after));

  const TimePoint t0 = fed.sim().now();
  fed.sim().run();

  EXPECT_EQ(report.evacuated, vms.size());
  // The stall happened: nothing could drain the frozen chunk before the
  // heal, so the evacuation outlives it.
  EXPECT_GT(report.makespan(), heal_after);
  // No spurious downtime from the stall — blackouts stay planned-size.
  const Duration bound = fed.site(0).eth_host(0).migration_engine().config().max_downtime;
  for (const VmOutcome& vm : report.vms) {
    EXPECT_LE(vm.downtime, bound) << vm.vm;
    EXPECT_GE(vm.done_ns, t0.count_nanos()) << vm.vm;
  }
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u);
}

TEST(FailureInjection, PartitionedEdgeWithDetourReroutesEvacuationThroughThirdSite) {
  // Edge a-b dies before the first wave grants and never heals. The
  // drivers' grant-time recompute_routes must steer both the plan and the
  // fabric onto the a-c-b detour, so site b still absorbs VMs and the
  // evacuation completes while the direct edge is down.
  Federation fed(evac_triangle());
  auto vms = boot_evac_fleet(fed, 3);

  MassEvacuation evac(fed, {});
  EvacuationReport report;
  fed.sim().spawn([](Federation& f, MassEvacuation& e, EvacuationReport& r) -> sim::Task {
    f.wan_link(0).inject_phase(0.0);  // cut a-b before any grant
    co_await f.sim().delay(Duration::millis(10));
    co_await e.run(&r);
  }(fed, evac, report), "evacuation");
  fed.sim().run();

  EXPECT_EQ(report.evacuated, vms.size());
  // The mesh routes follow the detour...
  EXPECT_EQ(fed.route(0, 1).size(), 2u);
  EXPECT_TRUE(fed.wan_link(0).partitioned());
  // ...and it was actually used: site b received VMs over it.
  int landed_on_b = 0;
  for (const VmOutcome& vm : report.vms) {
    landed_on_b += vm.dst_host.rfind("b:", 0) == 0 ? 1 : 0;
  }
  EXPECT_GT(landed_on_b, 0);
  const Duration bound = fed.site(0).eth_host(0).migration_engine().config().max_downtime;
  for (const VmOutcome& vm : report.vms) {
    EXPECT_LE(vm.downtime, bound) << vm.vm;
  }
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u);
}

// --- Intra-site fabric failures mid-evacuation ------------------------------

// Triangle mesh whose source site sits behind a 2-leaf Clos fabric. The
// leaf tier is non-blocking (oversubscription 1) so the 1 Gbps WAN edges
// stay the planned bottleneck and dead-link behaviour is isolated from
// rate effects.
FederationConfig clos_triangle(int spines) {
  FederationConfig cfg;
  FederationSiteConfig site;
  site.testbed.ib_nodes = 0;
  site.testbed.eth_nodes = 4;
  site.testbed.clos.leaves = 2;
  site.testbed.clos.spines = spines;
  site.testbed.clos.hosts_per_leaf = 2;
  site.testbed.clos.oversubscription = 1.0;
  site.name = "a";
  cfg.sites.push_back(site);
  site.testbed.eth_nodes = 2;
  site.testbed.clos = {};
  site.name = "b";
  cfg.sites.push_back(site);
  site.name = "c";
  cfg.sites.push_back(site);
  cfg.edges = {{0, 1, {}}, {0, 2, {}}, {1, 2, {}}};
  return cfg;
}

TEST(FailureInjection, ClosUplinkCutMidEvacuationStallsWithoutDowntimeThenCompletes) {
  // The single uplink of source leaf 0 dies 2 s into the evacuation —
  // pre-copies out of that rack freeze in place (capacity 0), the VMs
  // keep running, and everything drains after the +200 s heal with every
  // blackout still inside max_downtime.
  Federation fed(clos_triangle(/*spines=*/1));
  auto vms = boot_evac_fleet(fed, 2);

  MassEvacuation evac(fed, {});
  EvacuationReport report;
  fed.sim().spawn(evac.run(&report), "evacuation");
  const Duration heal_after = Duration::seconds(200.0);
  fed.sim().spawn([](Federation& f, Duration heal) -> sim::Task {
    net::ClosFabric& clos = *f.site(0).clos();
    co_await f.sim().delay(Duration::seconds(2.0));
    clos.set_link_factor(clos.uplink_index(0, 0), 0.0);
    co_await f.sim().delay(heal - Duration::seconds(2.0));
    clos.set_link_factor(clos.uplink_index(0, 0), 1.0);
  }(fed, heal_after));

  fed.sim().run();

  EXPECT_EQ(report.evacuated, vms.size());
  // Rack 0's migrations could not finish while its only uplink was dead,
  // so the evacuation outlives the heal.
  EXPECT_GT(report.makespan(), heal_after);
  const Duration bound = fed.site(0).eth_host(0).migration_engine().config().max_downtime;
  for (const VmOutcome& vm : report.vms) {
    EXPECT_LE(vm.downtime, bound) << vm.vm;
  }
  EXPECT_FALSE(fed.site(0).clos()->has_dead_link());
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u);
}

TEST(FailureInjection, ClosSpineLinkCutWithEcmpAlternativeCompletesWithoutHeal) {
  // Two spines, one uplink of leaf 0 dead before the first grant and never
  // healed: the deterministic ECMP pick filters the dead candidate, leaf
  // capacity stays positive, and the evacuation must complete while the
  // link is still down — no stall, no deferral.
  Federation fed(clos_triangle(/*spines=*/2));
  auto vms = boot_evac_fleet(fed, 2);
  net::ClosFabric& clos = *fed.site(0).clos();
  clos.set_link_factor(clos.uplink_index(0, 1), 0.0);

  MassEvacuation evac(fed, {});
  EvacuationReport report;
  fed.sim().spawn(evac.run(&report), "evacuation");
  fed.sim().run();

  EXPECT_EQ(report.evacuated, vms.size());
  EXPECT_TRUE(clos.has_dead_link());  // never healed
  const Duration bound = fed.site(0).eth_host(0).migration_engine().config().max_downtime;
  for (const VmOutcome& vm : report.vms) {
    EXPECT_LE(vm.downtime, bound) << vm.vm;
  }
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u);
}

TEST(FailureInjection, ClosDeadSourceLeafAtPlanTimeDefersThenDrainsAfterHeal) {
  // Rack 0's only uplink is already dead when the evacuation plans: the
  // planner sees a zero-capacity source leaf, so its VMs are deferred
  // while rack 1 evacuates. After the +120 s heal the driver replans and
  // drains the deferred rack; nothing is lost and no blackout grows.
  Federation fed(clos_triangle(/*spines=*/1));
  auto vms = boot_evac_fleet(fed, 2);
  net::ClosFabric& clos = *fed.site(0).clos();
  clos.set_link_factor(clos.uplink_index(0, 0), 0.0);

  MassEvacuation evac(fed, {});
  EvacuationReport report;
  fed.sim().spawn(evac.run(&report), "evacuation");
  const Duration heal_after = Duration::seconds(120.0);
  fed.sim().spawn([](Federation& f, net::ClosFabric& c, Duration heal) -> sim::Task {
    co_await f.sim().delay(heal);
    c.set_link_factor(c.uplink_index(0, 0), 1.0);
  }(fed, clos, heal_after));
  fed.sim().run();

  EXPECT_EQ(report.evacuated, vms.size());
  EXPECT_GT(report.makespan(), heal_after);
  const Duration bound = fed.site(0).eth_host(0).migration_engine().config().max_downtime;
  for (const VmOutcome& vm : report.vms) {
    EXPECT_LE(vm.downtime, bound) << vm.vm;
  }
  EXPECT_EQ(fed.unconverged_exchange_count(), 0u);
}

}  // namespace
}  // namespace nm::core
