// Tests for the collective algorithms: correctness (everyone finishes,
// synchronization holds) and cost ordering across transports and scales.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/job.h"
#include "core/testbed.h"
#include "mpi/collectives.h"

namespace nm::mpi {
namespace {

using core::JobConfig;
using core::MpiJob;
using core::Testbed;

JobConfig job_cfg(int vms, std::size_t rpv, bool ib) {
  JobConfig cfg;
  cfg.vm_count = vms;
  cfg.ranks_per_vm = rpv;
  cfg.on_ib_cluster = ib;
  cfg.with_hca = ib;
  cfg.vm_template.memory = Bytes::gib(4);
  cfg.vm_template.base_os_footprint = Bytes::mib(512);
  return cfg;
}

TEST(Collectives, BarrierSynchronizes) {
  Testbed tb;
  MpiJob job(tb, job_cfg(4, 1, true));
  job.init();
  std::vector<double> entered(4);
  std::vector<double> left(4);
  job.launch([&](RankId me) -> sim::Task {
    // Stagger arrivals.
    co_await tb.sim().delay(Duration::seconds(static_cast<double>(me)));
    entered[static_cast<std::size_t>(me)] = tb.sim().now().to_seconds();
    co_await job.world().barrier(me);
    left[static_cast<std::size_t>(me)] = tb.sim().now().to_seconds();
  });
  tb.sim().run();
  const double last_entry = *std::max_element(entered.begin(), entered.end());
  for (const double t : left) {
    EXPECT_GE(t, last_entry);  // nobody leaves before the last arrival
    EXPECT_LT(t, last_entry + 0.1);
  }
}

TEST(Collectives, BcastReachesEveryRank) {
  Testbed tb;
  MpiJob job(tb, job_cfg(4, 2, true));
  job.init();
  std::vector<double> done(8, -1);
  job.launch([&](RankId me) -> sim::Task {
    co_await job.world().bcast(me, /*root=*/0, Bytes::mib(64));
    done[static_cast<std::size_t>(me)] = tb.sim().now().to_seconds();
  });
  tb.sim().run();
  for (const double t : done) {
    EXPECT_GE(t, 0.0);
  }
  // Non-root ranks finish no earlier than the root started sending.
  EXPECT_GT(*std::max_element(done.begin(), done.end()), done[0] - 1e-9);
}

TEST(Collectives, NonZeroRootBcast) {
  Testbed tb;
  MpiJob job(tb, job_cfg(4, 1, true));
  job.init();
  std::vector<double> done(4, -1);
  job.launch([&](RankId me) -> sim::Task {
    co_await job.world().bcast(me, /*root=*/2, Bytes::mib(8));
    done[static_cast<std::size_t>(me)] = tb.sim().now().to_seconds();
  });
  tb.sim().run();
  for (const double t : done) {
    EXPECT_GE(t, 0.0);
  }
}

TEST(Collectives, ReduceAndAllreduceComplete) {
  Testbed tb;
  MpiJob job(tb, job_cfg(4, 2, true));
  job.init();
  int finished = 0;
  job.launch([&](RankId me) -> sim::Task {
    co_await job.world().reduce(me, 0, Bytes::mib(32), /*compute_per_byte=*/1e-10);
    co_await job.world().allreduce(me, Bytes::mib(32), 1e-10);
    ++finished;
  });
  tb.sim().run();
  EXPECT_EQ(finished, 8);
  EXPECT_EQ(job.runtime().unexpected_count(), 0u);
}

TEST(Collectives, BackToBackCollectivesDoNotCrossMatch) {
  Testbed tb;
  MpiJob job(tb, job_cfg(4, 1, true));
  job.init();
  int finished = 0;
  job.launch([&](RankId me) -> sim::Task {
    for (int i = 0; i < 20; ++i) {
      co_await job.world().bcast(me, i % 4, Bytes::kib(256));
      co_await job.world().reduce(me, (i + 1) % 4, Bytes::kib(256));
      co_await job.world().barrier(me);
    }
    ++finished;
  });
  tb.sim().run();
  EXPECT_EQ(finished, 4);
  EXPECT_EQ(job.runtime().unexpected_count(), 0u);
}

TEST(Collectives, TcpSlowerThanIbForBigBcast) {
  double times[2] = {0, 0};
  for (const bool ib : {true, false}) {
    Testbed tb;
    MpiJob job(tb, job_cfg(4, 1, ib));
    job.init();
    const double t0 = tb.sim().now().to_seconds();
    double done = 0;
    job.launch([&](RankId me) -> sim::Task {
      co_await job.world().bcast(me, 0, Bytes::gib(2));
      co_await job.world().barrier(me);
      if (me == 0) {
        done = tb.sim().now().to_seconds() - t0;
      }
    });
    tb.sim().run();
    times[ib ? 0 : 1] = done;
  }
  EXPECT_LT(times[0] * 2.5, times[1]);
}

TEST(Collectives, MoreRanksPerVmSpeedsUpFixedPerNodePayload) {
  // Fig 8 observation: with the per-VM payload fixed, 8 ranks/VM beat
  // 1 rank/VM because each rank moves 1/8 of the data (sm is cheap).
  double times[2] = {0, 0};
  int idx = 0;
  for (const std::size_t rpv : {std::size_t{1}, std::size_t{8}}) {
    Testbed tb;
    MpiJob job(tb, job_cfg(4, rpv, true));
    job.init();
    const Bytes per_rank = Bytes(Bytes::gib(8).count() / rpv);
    const double t0 = tb.sim().now().to_seconds();
    double done = 0;
    job.launch([&](RankId me) -> sim::Task {
      co_await job.world().bcast(me, 0, per_rank);
      co_await job.world().reduce(me, 0, per_rank, 2e-10);
      co_await job.world().barrier(me);
      if (me == 0) {
        done = tb.sim().now().to_seconds() - t0;
      }
    });
    tb.sim().run();
    times[idx++] = done;
  }
  EXPECT_LT(times[1], times[0]);
}

// Parameterized sweep: every collective completes for 1..8 VMs.
class CollectiveScale : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveScale, AllOpsCompleteAndQueuesDrain) {
  const int vms = GetParam();
  Testbed tb;
  MpiJob job(tb, job_cfg(vms, 1, true));
  job.init();
  int finished = 0;
  job.launch([&](RankId me) -> sim::Task {
    co_await job.world().barrier(me);
    co_await job.world().bcast(me, 0, Bytes::mib(4));
    co_await job.world().reduce(me, 0, Bytes::mib(4));
    co_await job.world().allreduce(me, Bytes::mib(4));
    co_await job.world().barrier(me);
    ++finished;
  });
  tb.sim().run();
  EXPECT_EQ(finished, vms);
  EXPECT_EQ(job.runtime().unexpected_count(), 0u);
  EXPECT_EQ(job.runtime().in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(VmCounts, CollectiveScale, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace nm::mpi
