// Tests for the discrete-event simulation kernel: event ordering, coroutine
// tasks, events/gates/channels/semaphores, exception propagation, and the
// allocation-free inline-callback event path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/error.h"

// GCC pairs the std::free in the replaced operator delete below against
// whatever allocation it inlined at each call site and warns; the pair is
// matched in fact (the replaced operator new routes through std::malloc).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

// Replaceable global allocation functions with an opt-in counter: the
// zero-allocation test flips the flag around the steady-state timer path.
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace nm::sim {
namespace {

TEST(Simulation, CallbacksRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.post(Duration::seconds(2.0), [&] { order.push_back(2); });
  sim.post(Duration::seconds(1.0), [&] { order.push_back(1); });
  sim.post(Duration::seconds(3.0), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 3.0);
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.post(Duration::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.post(Duration::seconds(1.0), [&] { ++fired; });
  sim.post(Duration::seconds(5.0), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

// --- Timer wheel -------------------------------------------------------------
// Far-future timers (>= ~2.1ms out, posted behind an earlier pending entry)
// are parked on the hierarchical wheel instead of the min-heap. The wheel
// must be observationally invisible: same dispatch order, same tie-breaks,
// same pending counts.

TEST(TimerWheel, FarTimersFireInOrderAcrossLevelsAndOverflow) {
  // Horizons spanning every wheel level plus the overflow list — level 0
  // (~1ms–268ms), level 1 (~268ms–69s), level 2 (~69s–4.9h), overflow
  // (beyond) — posted out of order behind a near anchor (far entries only
  // park when something earlier is pending). Dispatch follows absolute time.
  Simulation sim;
  std::vector<int> order;
  sim.post(Duration::millis(1), [&] { order.push_back(0); });
  sim.post(Duration::minutes(360.0), [&] { order.push_back(5); });  // overflow
  sim.post(Duration::seconds(100.0), [&] { order.push_back(4); });  // level 2
  sim.post(Duration::millis(10), [&] { order.push_back(2); });      // level 0
  sim.post(Duration::seconds(1.0), [&] { order.push_back(3); });    // level 1
  sim.post(Duration::millis(5), [&] { order.push_back(1); });       // level 0
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 21600.0);
}

TEST(TimerWheel, SameInstantTiesKeepPostOrderAcrossHeapAndWheel) {
  // Three entries at one far instant, landing in different structures: the
  // first goes to the heap (nothing earlier pending), the later two park on
  // the wheel. Promotion keeps the original sequence numbers, so the tie
  // still breaks in post order.
  Simulation sim;
  std::vector<int> order;
  const Duration far = Duration::seconds(2.0);
  sim.post(far, [&] { order.push_back(1); });              // heap
  sim.post(Duration::millis(1), [&] { order.push_back(0); });
  sim.post(far, [&] { order.push_back(2); });              // wheel
  sim.post(far, [&] { order.push_back(3); });              // wheel, same bucket
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimerWheel, PendingEventCountIncludesParkedTimers) {
  Simulation sim;
  sim.post(Duration::millis(1), [] {});
  sim.post(Duration::seconds(10.0), [] {});
  sim.post(Duration::minutes(5.0), [] {});
  sim.post(Duration::minutes(360.0), [] {});
  EXPECT_EQ(sim.pending_event_count(), 4u);
  sim.run();
  EXPECT_EQ(sim.pending_event_count(), 0u);
}

TEST(TimerWheel, RunUntilLeavesParkedTimersIntact) {
  Simulation sim;
  int fired = 0;
  sim.post(Duration::millis(1), [&] { ++fired; });
  sim.post(Duration::minutes(10.0), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::seconds(1.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_event_count(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 600.0);
}

TEST(TimerWheel, SteadyStateFarPostsAreAllocationFree) {
  // Bucket vectors are keyed by absolute time, so "steady state" means
  // revisiting buckets that were already grown. Aligning each round to a
  // multiple of 2^36ns (the level-1 wrap) makes every round's absolute
  // deadlines congruent modulo the level-0 and level-1 wraps — identical
  // bucket indices — so one warm round sizes everything the measured
  // rounds touch. Delays stay below the 2^36ns level-1 horizon: level-2
  // indices shift by one per aligned round and would always be cold.
  Simulation sim;
  constexpr int kBatch = 256;
  std::uint64_t sink = 0;
  std::uint64_t* sink_p = &sink;
  const auto round = [&] {
    const std::int64_t wrap = std::int64_t{1} << 36;
    const std::int64_t next = (sim.now().count_nanos() / wrap + 1) * wrap;
    sim.run_until(TimePoint::from_nanos(next));
    sim.post(Duration::nanos(1), [] {});  // anchor: lets far posts park
    for (int i = 0; i < kBatch; ++i) {
      sim.post(Duration::millis(3 + (i * 229) % 60000),
               [sink_p, a = static_cast<std::uint64_t>(i)] { *sink_p += a; });
    }
    sim.run();
  };
  round();  // warm every bucket, the refile scratch, heap, and callback slab
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int r = 0; r < 4; ++r) {
    round();
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0)
      << "far post()/run() allocated on the steady-state timer-wheel path";
  EXPECT_EQ(sink, 5ull * kBatch * (kBatch - 1) / 2);
}

TEST(Simulation, DelayAdvancesClock) {
  Simulation sim;
  std::vector<double> stamps;
  sim.spawn([](Simulation& s, std::vector<double>& out) -> Task {
    out.push_back(s.now().to_seconds());
    co_await s.delay(Duration::seconds(1.5));
    out.push_back(s.now().to_seconds());
    co_await s.delay(Duration::millis(500));
    out.push_back(s.now().to_seconds());
  }(sim, stamps));
  sim.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_DOUBLE_EQ(stamps[0], 0.0);
  EXPECT_DOUBLE_EQ(stamps[1], 1.5);
  EXPECT_DOUBLE_EQ(stamps[2], 2.0);
  EXPECT_EQ(sim.live_task_count(), 0u);
}

TEST(Simulation, NegativeDelayThrows) {
  Simulation sim;
  EXPECT_THROW(sim.post(Duration::seconds(-1.0), [] {}), LogicError);
}

Task child_accumulate(Simulation& sim, int& acc) {
  co_await sim.delay(Duration::seconds(1.0));
  acc += 10;
}

TEST(Task, AwaitedChildRunsStructured) {
  Simulation sim;
  int acc = 0;
  std::vector<double> stamps;
  sim.spawn([](Simulation& s, int& a, std::vector<double>& out) -> Task {
    co_await child_accumulate(s, a);
    out.push_back(s.now().to_seconds());
    co_await child_accumulate(s, a);
    out.push_back(s.now().to_seconds());
  }(sim, acc, stamps));
  sim.run();
  EXPECT_EQ(acc, 20);
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_DOUBLE_EQ(stamps[0], 1.0);
  EXPECT_DOUBLE_EQ(stamps[1], 2.0);
}

Task throwing_child(Simulation& sim) {
  co_await sim.delay(Duration::seconds(1.0));
  throw OperationError("child failed");
}

TEST(Task, ChildExceptionPropagatesToParent) {
  Simulation sim;
  bool caught = false;
  sim.spawn([](Simulation& s, bool& c) -> Task {
    try {
      co_await throwing_child(s);
    } catch (const OperationError&) {
      c = true;
    }
  }(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, DetachedExceptionSurfacesFromRun) {
  Simulation sim;
  sim.spawn(throwing_child(sim));
  EXPECT_THROW(sim.run(), OperationError);
}

TEST(TaskRef, JoinViaCompletionEvent) {
  Simulation sim;
  std::vector<std::string> order;
  auto worker = sim.spawn([](Simulation& s, std::vector<std::string>& out) -> Task {
    co_await s.delay(Duration::seconds(2.0));
    out.push_back("worker");
  }(sim, order));
  sim.spawn([](Simulation& s, TaskRef w, std::vector<std::string>& out) -> Task {
    co_await w.completion().wait();
    out.push_back("joiner@" + std::to_string(s.now().count_nanos()));
  }(sim, worker, order));
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "worker");
  EXPECT_EQ(order[1], "joiner@" + std::to_string(Duration::seconds(2.0).count_nanos()));
  EXPECT_TRUE(worker.done());
}

TEST(TaskRef, JoinAfterCompletionDoesNotBlock) {
  Simulation sim;
  auto worker = sim.spawn([](Simulation& s) -> Task { co_await s.delay(Duration::zero()); }(sim));
  sim.run();
  ASSERT_TRUE(worker.done());
  bool joined = false;
  sim.spawn([](TaskRef w, bool& j) -> Task {
    co_await w.completion().wait();
    j = true;
  }(worker, joined));
  sim.run();
  EXPECT_TRUE(joined);
}

TEST(Event, BroadcastWakesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Event& e, int& w) -> Task {
      co_await e.wait();
      ++w;
    }(ev, woken));
  }
  sim.post(Duration::seconds(1.0), [&] { ev.set(); });
  sim.run();
  EXPECT_EQ(woken, 5);
  EXPECT_TRUE(ev.is_set());
}

TEST(Event, WaitOnSetEventIsImmediate) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  double stamp = -1;
  sim.spawn([](Simulation& s, Event& e, double& t) -> Task {
    co_await e.wait();
    t = s.now().to_seconds();
  }(sim, ev, stamp));
  sim.run();
  EXPECT_DOUBLE_EQ(stamp, 0.0);
}

TEST(Event, WaitForTimesOut) {
  Simulation sim;
  Event ev(sim);
  bool got_event = true;
  sim.spawn([](Event& e, bool& got) -> Task {
    got = co_await e.wait_for(Duration::seconds(1.0));
  }(ev, got_event));
  sim.run();
  EXPECT_FALSE(got_event);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 1.0);
}

TEST(Event, WaitForSignaledBeforeTimeout) {
  Simulation sim;
  Event ev(sim);
  bool got_event = false;
  double stamp = -1;
  sim.spawn([](Simulation& s, Event& e, bool& got, double& t) -> Task {
    got = co_await e.wait_for(Duration::seconds(10.0));
    t = s.now().to_seconds();
  }(sim, ev, got_event, stamp));
  sim.post(Duration::seconds(2.0), [&] { ev.set(); });
  sim.run();
  EXPECT_TRUE(got_event);
  EXPECT_DOUBLE_EQ(stamp, 2.0);
}

TEST(Gate, ClosedGateParksUntilOpen) {
  Simulation sim;
  Gate gate(sim, /*initially_open=*/false);
  std::vector<double> stamps;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulation& s, Gate& g, std::vector<double>& out) -> Task {
      co_await g.opened();
      out.push_back(s.now().to_seconds());
    }(sim, gate, stamps));
  }
  sim.post(Duration::seconds(4.0), [&] { gate.open(); });
  sim.run();
  ASSERT_EQ(stamps.size(), 3u);
  for (const double t : stamps) {
    EXPECT_DOUBLE_EQ(t, 4.0);
  }
}

TEST(Gate, ReclosableBetweenWaits) {
  Simulation sim;
  Gate gate(sim, true);
  std::vector<double> stamps;
  sim.spawn([](Simulation& s, Gate& g, std::vector<double>& out) -> Task {
    co_await g.opened();  // open: immediate
    out.push_back(s.now().to_seconds());
    co_await s.delay(Duration::seconds(1.0));
    co_await g.opened();  // closed at t=0.5, reopened at t=3
    out.push_back(s.now().to_seconds());
  }(sim, gate, stamps));
  sim.post(Duration::millis(500), [&] { gate.close(); });
  sim.post(Duration::seconds(3.0), [&] { gate.open(); });
  sim.run();
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_DOUBLE_EQ(stamps[0], 0.0);
  EXPECT_DOUBLE_EQ(stamps[1], 3.0);
}

TEST(Channel, BufferedSendThenReceive) {
  Simulation sim;
  Channel<int> ch(sim);
  ch.send(1);
  ch.send(2);
  std::vector<int> got;
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task {
    out.push_back(co_await c.recv());
    out.push_back(co_await c.recv());
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, ReceiverWaitsForSender) {
  Simulation sim;
  Channel<std::string> ch(sim);
  std::string got;
  double stamp = -1;
  sim.spawn([](Simulation& s, Channel<std::string>& c, std::string& g, double& t) -> Task {
    g = co_await c.recv();
    t = s.now().to_seconds();
  }(sim, ch, got, stamp));
  sim.post(Duration::seconds(2.5), [&] { ch.send("hello"); });
  sim.run();
  EXPECT_EQ(got, "hello");
  EXPECT_DOUBLE_EQ(stamp, 2.5);
}

TEST(Channel, MultipleReceiversServedFifo) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int r = 0; r < 3; ++r) {
    sim.spawn([](Channel<int>& c, int recv_id, std::vector<std::pair<int, int>>& out) -> Task {
      const int v = co_await c.recv();
      out.emplace_back(recv_id, v);
    }(ch, r, got));
  }
  sim.post(Duration::seconds(1.0), [&] {
    ch.send(100);
    ch.send(200);
    ch.send(300);
  });
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 300}));
}

TEST(Channel, TryRecvNonBlocking) {
  Simulation sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(7);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn([](Simulation& s, Semaphore& sm, int& cur, int& pk) -> Task {
      co_await sm.acquire();
      ++cur;
      pk = std::max(pk, cur);
      co_await s.delay(Duration::seconds(1.0));
      --cur;
      sm.release();
    }(sim, sem, concurrent, peak));
  }
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 3.0);  // 6 jobs, 2 wide, 1s each
}

TEST(Mutex, MutualExclusion) {
  Simulation sim;
  Mutex mu(sim);
  bool inside = false;
  bool violated = false;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulation& s, Mutex& m, bool& in, bool& bad) -> Task {
      co_await m.lock();
      if (in) {
        bad = true;
      }
      in = true;
      co_await s.delay(Duration::millis(100));
      in = false;
      m.unlock();
    }(sim, mu, inside, violated));
  }
  sim.run();
  EXPECT_FALSE(violated);
}

TEST(JoinAll, WaitsForEveryTask) {
  Simulation sim;
  std::vector<TaskRef> refs;
  refs.reserve(4);
  for (int i = 1; i <= 4; ++i) {
    refs.push_back(sim.spawn([](Simulation& s, int k) -> Task {
      co_await s.delay(Duration::seconds(static_cast<double>(k)));
    }(sim, i)));
  }
  double done_at = -1;
  sim.spawn([](Simulation& s, std::vector<TaskRef> rs, double& t) -> Task {
    co_await join_all(std::move(rs));
    t = s.now().to_seconds();
  }(sim, refs, done_at));
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 4.0);
  EXPECT_EQ(sim.live_task_count(), 0u);
}

TEST(Simulation, DestructionWithSuspendedTasksIsClean) {
  // A simulation torn down mid-run must destroy suspended coroutines without
  // leaks or crashes (exercised under ASan in CI-style runs).
  auto sim = std::make_unique<Simulation>();
  Event ev(*sim);
  sim->spawn([](Event& e) -> Task { co_await e.wait(); }(ev));
  sim->run_for(Duration::seconds(1.0));
  EXPECT_EQ(sim->live_task_count(), 1u);
  sim.reset();  // no crash, no leak
}

// --- Inline-callback event path ---------------------------------------------

TEST(InlineEvents, SteadyStatePostIsAllocationFree) {
  Simulation sim;
  constexpr int kBatch = 512;
  // Warm the queue's heap storage and the callback pool past the batch
  // size, so steady-state posts recycle slots instead of growing anything.
  for (int i = 0; i < 4 * kBatch; ++i) {
    sim.post(Duration::nanos(i), [] {});
  }
  sim.run();

  std::uint64_t sink = 0;
  std::uint64_t* sink_p = &sink;
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < kBatch; ++i) {
      // A 24-byte capture: one pointer plus two words — the size class
      // std::function would have sent to the heap (libstdc++ SBO is 16).
      sim.post(Duration::nanos(i + 1),
               [sink_p, a = static_cast<std::uint64_t>(i),
                b = static_cast<std::uint64_t>(round)] { *sink_p += a + b; });
    }
    sim.run();
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0)
      << "post()/run() allocated on the steady-state timer path";
  EXPECT_EQ(sink, 8ull * kBatch * (kBatch - 1) / 2 + kBatch * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(InlineEvents, MoveOnlyCallbacksAreAccepted) {
  // InlineCallback is move-only-friendly, which std::function never was:
  // a posted event can own its payload outright.
  Simulation sim;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  sim.post(Duration::seconds(1.0),
           [owned = std::move(payload), &got]() mutable { got = *owned + 1; });
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(InlineEvents, TieBreakBySequenceSurvivesHeapChurn) {
  // Same-timestamp events must fire in post order (time, then sequence)
  // regardless of how the binary heap relocates entries. Interleave three
  // timestamps, posting out of time order, so sift-up/down actually moves
  // entries around.
  Simulation sim;
  std::vector<std::pair<int, int>> fired;  // (timestamp bucket, post index)
  for (int i = 0; i < 64; ++i) {
    const int bucket = (i * 7 + 3) % 3;  // 0,1,2 in scrambled order
    sim.post(Duration::seconds(1.0 + bucket), [&fired, bucket, i] {
      fired.emplace_back(bucket, i);
    });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 64u);
  // Buckets ascend; within a bucket, post indices ascend.
  for (std::size_t k = 1; k < fired.size(); ++k) {
    EXPECT_TRUE(fired[k - 1].first < fired[k].first ||
                (fired[k - 1].first == fired[k].first &&
                 fired[k - 1].second < fired[k].second))
        << "entry " << k << " fired out of (time, sequence) order";
  }
}

TEST(InlineEvents, CallbackPostedFromCallbackRunsAfterSameInstantPeers) {
  // A zero-delay post made *during* an event at time T gets a higher
  // sequence number than everything already queued for T, so it runs after
  // its same-instant peers — the ordering contract rebalance timers rely on.
  Simulation sim;
  std::vector<std::string> order;
  sim.post(Duration::seconds(1.0), [&] {
    order.push_back("first");
    sim.post(Duration::zero(), [&] { order.push_back("nested"); });
  });
  sim.post(Duration::seconds(1.0), [&] { order.push_back("second"); });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second", "nested"}));
}

TEST(InlineEvents, MixedResumeAndCallbackEntriesKeepPostOrder) {
  // Coroutine resumptions and plain callbacks share one queue; ties must
  // still break by enqueue sequence across the two entry kinds.
  Simulation sim;
  std::vector<int> order;
  Event ev(sim);
  sim.spawn([](Event& e, std::vector<int>& out) -> Task {
    co_await e.wait();  // resumed via post_resume at t=1
    out.push_back(1);
  }(ev, order));
  sim.run();  // park the waiter
  sim.post(Duration::seconds(1.0), [&] {
    ev.set();                                            // seq A: resume enqueued
    sim.post(Duration::zero(), [&] { order.push_back(2); });  // seq A+1
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(InlineEvents, PendingZeroDelayPostsReleasedOnTeardown) {
  // Regression for the Barrier/Notifier/symvirt retire pattern: the
  // zero-delay post *owns* the retired cycle event, so destroying the
  // simulation with the post still pending must free it (pre-fix this
  // leaked a raw `Event*` — caught under ASan/LSan in CI).
  struct Tracer {
    bool* destroyed;
    ~Tracer() { *destroyed = true; }
  };
  bool destroyed = false;
  {
    Simulation sim;
    sim.post(Duration::zero(),
             [owned = std::make_unique<Tracer>(&destroyed)]() mutable { owned.reset(); });
    // Destroy with the event still pending: never run.
  }
  EXPECT_TRUE(destroyed) << "pending event callback leaked its payload";
}

TEST(InlineEvents, NotifierTeardownWithPendingRetirePostIsClean) {
  // End-to-end version of the above through Notifier: notify_all() retires
  // the old cycle event into a pending zero-delay post; tearing the
  // simulation down before it fires must free the event (and the parked
  // waiter's coroutine frame).
  auto sim = std::make_unique<Simulation>();
  Notifier notifier(*sim);
  sim->spawn([](Notifier& n) -> Task { co_await n.wait(); }(notifier));
  sim->run();  // park the waiter on the current cycle
  notifier.notify_all();
  sim.reset();  // pending retire post + suspended waiter: no leak under ASan
}

TEST(InlineEvents, BarrierTeardownWithPendingRetirePostIsClean) {
  auto sim = std::make_unique<Simulation>();
  Barrier barrier(*sim, 2);
  sim->spawn([](Barrier& b) -> Task { co_await b.arrive_and_wait(); }(barrier));
  sim->run();  // first party parks
  sim->spawn([](Barrier& b) -> Task { co_await b.arrive_and_wait(); }(barrier));
  // The second arrival retired the cycle into a pending zero-delay post.
  sim.reset();  // no leak
}

}  // namespace
}  // namespace nm::sim
