// Tests for the eager protocol, nonblocking point-to-point (isend/irecv/
// wait/wait_all), and the CRCP drain of in-flight eager traffic during a
// checkpoint — the part of the bookmark exchange that blocking-only
// traffic never exercises.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/job.h"
#include "core/testbed.h"
#include "mpi/cr.h"
#include "mpi/runtime.h"

namespace nm::mpi {
namespace {

using core::JobConfig;
using core::MpiJob;
using core::Testbed;

JobConfig cfg2(int vms, std::size_t rpv, bool ib = true) {
  JobConfig cfg;
  cfg.vm_count = vms;
  cfg.ranks_per_vm = rpv;
  cfg.on_ib_cluster = ib;
  cfg.with_hca = ib;
  cfg.vm_template.memory = Bytes::gib(4);
  cfg.vm_template.base_os_footprint = Bytes::mib(512);
  return cfg;
}

TEST(EagerProtocol, SmallSendReturnsBeforeDelivery) {
  Testbed tb;
  MpiJob job(tb, cfg2(2, 1));
  job.init();
  double send_returned = -1;
  double recv_done = -1;
  job.launch([&](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      co_await rt.send(0, 1, 1, Bytes::kib(64));  // at the eager limit
      send_returned = tb.sim().now().to_seconds();
    } else {
      co_await rt.recv(1, 0, 1);
      recv_done = tb.sim().now().to_seconds();
    }
  });
  const double t0 = tb.sim().now().to_seconds();
  tb.sim().run();
  EXPECT_NEAR(send_returned, t0, 1e-9);  // sender did not wait for the wire
  EXPECT_GT(recv_done, send_returned);   // payload arrived later
}

TEST(EagerProtocol, LargeSendIsRendezvous) {
  Testbed tb;
  MpiJob job(tb, cfg2(2, 1));
  job.init();
  double send_returned = -1;
  job.launch([&](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      co_await rt.send(0, 1, 1, Bytes::mib(64));
      send_returned = tb.sim().now().to_seconds();
    } else {
      co_await rt.recv(1, 0, 1);
    }
  });
  const double t0 = tb.sim().now().to_seconds();
  tb.sim().run();
  EXPECT_GT(send_returned, t0);  // blocked until the payload landed
}

TEST(Nonblocking, IsendIrecvWaitRoundTrip) {
  Testbed tb;
  MpiJob job(tb, cfg2(2, 1));
  job.init();
  MessageInfo got;
  job.launch([&](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      auto req = rt.isend(0, 1, 9, Bytes::mib(32), /*token=*/77);
      EXPECT_FALSE(req->complete());
      co_await rt.wait(0, req);
      EXPECT_TRUE(req->complete());
    } else {
      auto req = rt.irecv(1, 0, 9);
      co_await rt.wait(1, req);
      got = req->info();
    }
  });
  tb.sim().run();
  EXPECT_EQ(got.token, 77u);
  EXPECT_EQ(got.bytes, Bytes::mib(32));
}

TEST(Nonblocking, OverlappedIsendsCompleteTogether) {
  // Four concurrent isends to distinct peers share the NIC; wait_all
  // collects them. Overlap must beat the sequential blocking time.
  Testbed tb;
  MpiJob job(tb, cfg2(5, 1));
  job.init();
  double overlapped = -1;
  job.launch([&](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      const double t0 = tb.sim().now().to_seconds();
      std::vector<RequestPtr> reqs;
      for (RankId peer = 1; peer <= 4; ++peer) {
        reqs.push_back(rt.isend(0, peer, 3, Bytes::mib(256)));
      }
      co_await rt.wait_all(0, std::move(reqs));
      overlapped = tb.sim().now().to_seconds() - t0;
    } else {
      co_await rt.recv(me, 0, 3);
    }
  });
  tb.sim().run();
  // 4 x 256 MiB from one HCA at ~32 Gb/s: the tx port serializes them, so
  // overlap ~= serial here, but it must not exceed serial + noise.
  const double serial = 4 * (256.0 * 1024 * 1024) / (32e9 / 8.0);
  EXPECT_LT(overlapped, serial * 1.2);
  EXPECT_GT(overlapped, serial * 0.8);
}

TEST(Nonblocking, WaitOnForeignRequestRejected) {
  Testbed tb;
  MpiJob job(tb, cfg2(2, 1));
  job.init();
  auto req = job.runtime().irecv(1, 0, 1);
  bool threw = false;
  job.launch([&](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      try {
        co_await rt.wait(0, req);  // rank 0 waiting on rank 1's request
      } catch (const LogicError&) {
        threw = true;
      }
      co_await rt.send(0, 1, 1, Bytes::kib(1));
    } else {
      co_await rt.recv(1, 0, 1);
    }
  });
  tb.sim().run();
  EXPECT_TRUE(threw);
}

TEST(CrcpDrain, EagerTrafficInFlightAtRequestIsDrainedBeforeCheckpoint) {
  // Fire a burst of eager messages and request a checkpoint immediately:
  // the quiesce must drain every in-flight byte before the SELF callbacks
  // run, and nothing may be lost.
  Testbed tb;
  JobConfig cfg = cfg2(2, 1);
  MpiJob job(tb, cfg);
  job.init();
  constexpr int kBurst = 32;
  int received = 0;
  job.launch([&](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      for (int i = 0; i < kBurst; ++i) {
        co_await rt.send(0, 1, 4, Bytes::kib(32), static_cast<std::uint64_t>(i));
      }
      // Keep servicing so the episode can complete.
      for (int i = 0; i < 200; ++i) {
        co_await rt.progress(0);
        co_await tb.sim().delay(Duration::millis(100));
      }
    } else {
      for (int i = 0; i < kBurst; ++i) {
        MessageInfo info;
        co_await rt.recv(1, 0, 4, &info);
        EXPECT_EQ(info.token, static_cast<std::uint64_t>(received));
        ++received;
      }
      for (int i = 0; i < 200; ++i) {
        co_await rt.progress(1);
        co_await tb.sim().delay(Duration::millis(100));
      }
    }
  });
  core::NinjaStats stats;
  tb.sim().spawn([](core::MpiJob& j, core::NinjaStats& st) -> sim::Task {
    // Request while the eager burst is (likely) still on the wire.
    co_await j.testbed().sim().delay(Duration::millis(1));
    co_await j.fallback_migration(2, &st);
  }(job, stats));
  tb.sim().run();
  EXPECT_EQ(received, kBurst);
  EXPECT_EQ(job.runtime().in_flight(), 0u);
  EXPECT_EQ(job.runtime().unexpected_count(), 0u);
  EXPECT_EQ(job.current_transport(), "tcp");
}

TEST(Collectives2, AlltoallGatherScatterAllgatherComplete) {
  for (const int vms : {2, 3, 4, 8}) {
    Testbed tb;
    MpiJob job(tb, cfg2(vms, 1));
    job.init();
    int finished = 0;
    job.launch([&](RankId me) -> sim::Task {
      auto& world = job.world();
      co_await world.alltoall(me, Bytes::mib(2));
      co_await world.gather(me, 0, Bytes::mib(2));
      co_await world.scatter(me, 0, Bytes::mib(2));
      co_await world.allgather(me, Bytes::mib(2));
      co_await world.barrier(me);
      ++finished;
    });
    tb.sim().run();
    EXPECT_EQ(finished, vms) << vms << " VMs";
    EXPECT_EQ(job.runtime().unexpected_count(), 0u) << vms << " VMs";
  }
}

TEST(Collectives2, GatherCostGrowsTowardsRoot) {
  // gather of B bytes from n ranks moves ~B*(n-1) into the root; it must
  // cost more than a single B-byte message but less than n sequential
  // full-payload hops from every rank.
  Testbed tb;
  MpiJob job(tb, cfg2(8, 1));
  job.init();
  double elapsed = -1;
  job.launch([&](RankId me) -> sim::Task {
    const double t0 = tb.sim().now().to_seconds();
    co_await job.world().gather(me, 0, Bytes::mib(128));
    if (me == 0) {
      elapsed = tb.sim().now().to_seconds() - t0;
    }
  });
  tb.sim().run();
  const double one_hop = 128.0 * 1024 * 1024 / (32e9 / 8.0);
  EXPECT_GT(elapsed, one_hop * 1.5);
  EXPECT_LT(elapsed, one_hop * 8.0);
}

TEST(Collectives2, SplitFormsWorkingSubCommunicators) {
  Testbed tb;
  MpiJob job(tb, cfg2(4, 2));  // 8 ranks
  job.init();
  // Colors: even world ranks vs odd world ranks.
  std::vector<int> colors;
  std::vector<int> keys;
  for (int r = 0; r < 8; ++r) {
    colors.push_back(r % 2);
    keys.push_back(0);
  }
  int finished = 0;
  job.launch([&, colors, keys](RankId me) -> sim::Task {
    Communicator sub = job.world().split(colors, keys, me % 2);
    EXPECT_EQ(sub.size(), 4u);
    co_await sub.barrier(me);
    co_await sub.bcast(me, me % 2, Bytes::mib(1));
    co_await sub.allreduce(me, Bytes::mib(1));
    ++finished;
  });
  tb.sim().run();
  EXPECT_EQ(finished, 8);
  EXPECT_EQ(job.runtime().unexpected_count(), 0u);
}

}  // namespace
}  // namespace nm::mpi
