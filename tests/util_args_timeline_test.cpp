// Tests for the CLI argument parser and the Timeline span recorder.
#include <gtest/gtest.h>

#include "util/args.h"
#include "util/timeline.h"

namespace nm {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, SpaceAndEqualsForms) {
  auto args = parse({"prog", "--vms", "8", "--seed=42", "--name", "fig8"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get_int("vms", 0), 8);
  EXPECT_EQ(args.get_int("seed", 0), 42);
  EXPECT_EQ(args.get_string("name", ""), "fig8");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParser, BooleanFlags) {
  auto args = parse({"prog", "--verbose", "--rdma", "false", "--fast", "1"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("rdma", true));
  EXPECT_TRUE(args.get_bool("fast", false));
  EXPECT_TRUE(args.get_bool("unset", true));
}

TEST(ArgParser, DoublesAndPositionals) {
  auto args = parse({"prog", "input.txt", "--rate", "2.5", "more.txt"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more.txt");
}

TEST(ArgParser, TypeErrorsThrow) {
  auto args = parse({"prog", "--vms", "eight"});
  EXPECT_THROW((void)args.get_int("vms", 0), LogicError);
  EXPECT_THROW((void)args.get_double("vms", 0.0), LogicError);
}

TEST(ArgParser, UsageRendering) {
  const auto text = ArgParser::usage("bench_fig8", {{"vms", "number of VMs", "4"},
                                                    {"verbose", "narrate", ""}});
  EXPECT_NE(text.find("usage: bench_fig8"), std::string::npos);
  EXPECT_NE(text.find("--vms <4>"), std::string::npos);
  EXPECT_NE(text.find("--verbose"), std::string::npos);
}

TEST(Timeline, SpansAndGantt) {
  Timeline tl;
  const auto t = [](double s) { return TimePoint::origin() + Duration::seconds(s); };
  tl.add_span("coordination", t(0.0), t(1.0));
  tl.begin_span("migration", t(1.0));
  tl.end_span("migration", t(21.0));
  tl.add_span("linkup", t(21.0), t(51.0));
  ASSERT_EQ(tl.spans().size(), 3u);
  EXPECT_NEAR(tl.spans()[1].length().to_seconds(), 20.0, 1e-9);
  EXPECT_EQ(tl.open_count(), 0u);

  const std::string gantt = tl.to_string(40);
  EXPECT_NE(gantt.find("coordination"), std::string::npos);
  EXPECT_NE(gantt.find("migration"), std::string::npos);
  EXPECT_NE(gantt.find("#"), std::string::npos);
  EXPECT_NE(gantt.find("20.00s"), std::string::npos);
}

TEST(Timeline, ErrorsOnBadSpans) {
  Timeline tl;
  const auto t = [](double s) { return TimePoint::origin() + Duration::seconds(s); };
  EXPECT_THROW(tl.end_span("never-opened", t(1.0)), LogicError);
  EXPECT_THROW(tl.add_span("backwards", t(2.0), t(1.0)), LogicError);
}

TEST(Timeline, EmptyRenders) {
  Timeline tl;
  EXPECT_NE(tl.to_string().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace nm
