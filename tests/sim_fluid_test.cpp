// Tests for the max-min fair fluid scheduler: single flows, contention,
// per-flow caps, capacity changes, pause/resume, and conservation
// properties under randomized loads.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/fluid.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "util/rng.h"

namespace nm::sim {
namespace {

TEST(Fluid, SingleFlowUsesFullCapacity) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 100.0);  // 100 units/s
  double done_at = -1;
  sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& r, double& t) -> Task {
    co_await sc.run(FlowSpec{.work = 500.0}.over(r));
    t = s.now().to_seconds();
  }(sim, sched, nic, done_at));
  sim.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
}

TEST(Fluid, ZeroWorkCompletesImmediately) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource r("r", 10.0);
  auto flow = sched.start(FlowSpec{.work = 0.0}.over(r));
  EXPECT_TRUE(flow->finished());
  EXPECT_EQ(r.active_flows(), 0u);
}

TEST(Fluid, TwoFlowsShareEqually) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 100.0);
  std::vector<double> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& r, double& t) -> Task {
      co_await sc.run(FlowSpec{.work = 500.0}.over(r));
      t = s.now().to_seconds();
    }(sim, sched, nic, done[i]));
  }
  sim.run();
  // Both run at 50 until both finish at t=10.
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST(Fluid, ShorterFlowFreesCapacityForLonger) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 100.0);
  double short_done = -1;
  double long_done = -1;
  sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& r, double& t) -> Task {
    co_await sc.run(FlowSpec{.work = 100.0}.over(r));
    t = s.now().to_seconds();
  }(sim, sched, nic, short_done));
  sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& r, double& t) -> Task {
    co_await sc.run(FlowSpec{.work = 500.0}.over(r));
    t = s.now().to_seconds();
  }(sim, sched, nic, long_done));
  sim.run();
  // Shared at 50 each until the short one finishes at t=2 (100/50); the
  // long one then has 400 left at rate 100 -> finishes at t=6.
  EXPECT_NEAR(short_done, 2.0, 1e-6);
  EXPECT_NEAR(long_done, 6.0, 1e-6);
}

TEST(Fluid, PerFlowCapLimitsRate) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource cpu("cpu", 8.0);  // 8 cores
  double done_at = -1;
  // One vCPU task: capped at 1 core even though 8 are free.
  sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& r, double& t) -> Task {
    co_await sc.run(FlowSpec{.work = 4.0, .max_rate = 1.0}.over(r));
    t = s.now().to_seconds();
  }(sim, sched, cpu, done_at));
  sim.run();
  EXPECT_NEAR(done_at, 4.0, 1e-9);
}

TEST(Fluid, OvercommitSharesFairly) {
  // 16 single-core-capped jobs on an 8-core node: each runs at 0.5 cores.
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource cpu("cpu", 8.0);
  std::vector<double> done(16, -1);
  for (int i = 0; i < 16; ++i) {
    sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& r, double& t) -> Task {
      co_await sc.run(FlowSpec{.work = 2.0, .max_rate = 1.0}.over(r));
      t = s.now().to_seconds();
    }(sim, sched, cpu, done[i]));
  }
  sim.run();
  for (const double t : done) {
    EXPECT_NEAR(t, 4.0, 1e-6);  // 2 core-seconds at 0.5 cores
  }
}

TEST(Fluid, MultiResourceFlowBottleneckedByTightest) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource tx("tx", 100.0);
  FluidResource rx("rx", 40.0);
  double done_at = -1;
  sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& a, FluidResource& b,
               double& t) -> Task {
    co_await sc.run(FlowSpec{.work = 200.0}.over(a).over(b));
    t = s.now().to_seconds();
  }(sim, sched, tx, rx, done_at));
  sim.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);  // bound by rx at 40
}

TEST(Fluid, CrossTrafficOnSharedResource) {
  // Flow A crosses tx(100) and rx1(100); flow B crosses tx and rx2(30).
  // Max-min: B is capped at 30 by rx2; A then gets 70 on tx.
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource tx("tx", 100.0);
  FluidResource rx1("rx1", 100.0);
  FluidResource rx2("rx2", 30.0);
  auto a = sched.start(FlowSpec{.work = 700.0}.over(tx).over(rx1));
  auto b = sched.start(FlowSpec{.work = 300.0}.over(tx).over(rx2));
  EXPECT_NEAR(a->current_rate(), 70.0, 1e-9);
  EXPECT_NEAR(b->current_rate(), 30.0, 1e-9);
  sim.run();
  EXPECT_TRUE(a->finished());
  EXPECT_TRUE(b->finished());
}

TEST(Fluid, CapacityChangeRebalances) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 100.0);
  double done_at = -1;
  sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& r, double& t) -> Task {
    co_await sc.run(FlowSpec{.work = 400.0}.over(r));
    t = s.now().to_seconds();
  }(sim, sched, nic, done_at));
  sim.post(Duration::seconds(2.0), [&] { nic.set_capacity(50.0); });
  sim.run();
  // 200 units in first 2 s at 100, remaining 200 at 50 -> 4 more seconds.
  EXPECT_NEAR(done_at, 6.0, 1e-6);
}

TEST(Fluid, PauseAndResumeViaMaxRate) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 100.0);
  auto flow = sched.start(FlowSpec{.work = 400.0}.over(nic));
  double done_at = -1;
  sim.spawn([](Simulation& s, FlowPtr f, double& t) -> Task {
    co_await f->completion().wait();
    t = s.now().to_seconds();
  }(sim, flow, done_at));
  sim.post(Duration::seconds(1.0), [&] { flow->set_max_rate(0.0); });   // pause (VM paused)
  sim.post(Duration::seconds(11.0), [&] { flow->set_max_rate(kUncappedRate); });
  sim.run();
  // 100 done in 1 s, 10 s paused, 300 remaining at 100 -> t=14.
  EXPECT_NEAR(done_at, 14.0, 1e-6);
}

TEST(Fluid, FlowAcrossSchedulersRejected) {
  Simulation sim;
  FluidScheduler s1(sim);
  FluidScheduler s2(sim);
  FluidResource r("r", 1.0);
  auto f = s1.start(FlowSpec{.work = 1.0}.over(r));
  EXPECT_THROW((void)s2.start(FlowSpec{.work = 1.0}.over(r)), LogicError);
  sim.run();
  EXPECT_TRUE(f->finished());
}

// Property: with arbitrary random flows, the assigned rates never exceed any
// resource capacity, never exceed flow caps, and are max-min fair (any flow
// below its cap is bottlenecked by some saturated resource).
class FluidProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidProperty, RatesAreFeasibleAndMaxMinFair) {
  Simulation sim;
  FluidScheduler sched(sim);
  Rng rng(GetParam());

  constexpr int kResources = 6;
  constexpr int kFlows = 24;
  std::vector<std::unique_ptr<FluidResource>> resources;
  resources.reserve(kResources);
  for (int i = 0; i < kResources; ++i) {
    // Named string sidesteps a GCC 12 -Wrestrict false positive on the
    // "literal + to_string" temporary under heavy inlining.
    std::string name = "r";
    name += std::to_string(i);
    resources.push_back(
        std::make_unique<FluidResource>(std::move(name), rng.uniform(10.0, 200.0)));
  }
  std::vector<FlowPtr> flows;
  for (int i = 0; i < kFlows; ++i) {
    std::vector<FluidResource*> rs;
    const auto n = 1 + rng.next_below(3);
    for (std::uint64_t k = 0; k < n; ++k) {
      auto* r = resources[rng.next_below(kResources)].get();
      if (std::find(rs.begin(), rs.end(), r) == rs.end()) {
        rs.push_back(r);
      }
    }
    const double cap = rng.bernoulli(0.3) ? rng.uniform(1.0, 50.0) : kUncappedRate;
    FlowSpec spec{.work = rng.uniform(100.0, 1000.0), .max_rate = cap};
    for (auto* r : rs) {
      spec.over(*r);
    }
    flows.push_back(sched.start(std::move(spec)));
  }

  // Feasibility: per-resource usage never exceeds capacity; per-flow rate
  // never exceeds its cap.
  for (const auto& r : resources) {
    double usage = 0.0;
    for (const auto& f : flows) {
      if (!f->finished() &&
          std::find_if(f->shares().begin(), f->shares().end(),
                       [&](const ResourceShare& sh) { return sh.resource == r.get(); }) !=
              f->shares().end()) {
        usage += f->current_rate();
      }
    }
    EXPECT_LE(usage, r->capacity() * (1.0 + 1e-9)) << r->name();
  }
  for (const auto& f : flows) {
    if (!f->finished()) {
      EXPECT_LE(f->current_rate(), f->max_rate() * (1.0 + 1e-9));
    }
  }
  // Max-min fairness: a flow strictly below its cap must cross a resource
  // that is (numerically) saturated.
  for (const auto& f : flows) {
    if (f->finished() || f->current_rate() >= f->max_rate() * (1.0 - 1e-9)) {
      continue;
    }
    bool bottlenecked = false;
    for (const auto& fshare : f->shares()) {
      const auto* fr = fshare.resource;
      double usage = 0.0;
      for (const auto& g : flows) {
        if (!g->finished() &&
            std::find_if(g->shares().begin(), g->shares().end(),
                         [&](const ResourceShare& sh) { return sh.resource == fr; }) !=
                g->shares().end()) {
          usage += g->current_rate();
        }
      }
      if (usage >= fr->capacity() * (1.0 - 1e-6)) {
        bottlenecked = true;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow below cap with no saturated resource";
  }
  // Run to completion; every flow must finish (no starvation/livelock).
  sim.run();
  for (const auto& f : flows) {
    EXPECT_TRUE(f->finished());
    EXPECT_NEAR(f->remaining(), 0.0, 1e-3);
  }
  for (const auto& r : resources) {
    EXPECT_EQ(r->active_flows(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidProperty, ::testing::Values(1, 7, 42, 1234, 99991));

TEST(Fluid, WeightedFlowChargesCpuPerByte) {
  // A "TCP" flow moving bytes across a 1.25e3 B/s NIC with a CPU weight of
  // 1e-3 core-sec/byte on a 1-core CPU: CPU limits the rate to 1e3 B/s.
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 1250.0);
  FluidResource cpu("cpu", 1.0);
  auto flow = sched.start(FlowSpec{.work = 2000.0}.over(nic).over(cpu, 1e-3));
  EXPECT_NEAR(flow->current_rate(), 1000.0, 1e-9);
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 2.0, 1e-6);
}

TEST(Fluid, WeightedFlowsCompeteForCpuWithComputeJob) {
  // A compute job (1 core cap) and a TCP flow (1e-3 core-sec/byte) share a
  // single core: max-min gives the compute job ~its share and slows the
  // transfer accordingly.
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 1e9);
  FluidResource cpu("cpu", 1.0);
  auto xfer = sched.start(FlowSpec{.work = 10000.0}.over(nic).over(cpu, 1e-3));
  auto job = sched.start(FlowSpec{.work = 10.0, .max_rate = 1.0}.over(cpu));
  // Equal-rate max-min would give both the same *rate*, which the transfer
  // cannot reach CPU-wise; the bound is cpu residual split by weights:
  // 1.0 / (1e-3 + 1.0) ~= 0.999 for the job, transfer gets the same rate.
  EXPECT_GT(job->current_rate(), 0.9);
  EXPECT_GT(xfer->current_rate(), 0.9);
  EXPECT_LE(job->current_rate() * 1.0 + xfer->current_rate() * 1e-3, 1.0 + 1e-9);
  sim.run();
  EXPECT_TRUE(xfer->finished());
  EXPECT_TRUE(job->finished());
}

TEST(Fluid, SuspendResumePreservesCap) {
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 100.0);
  auto flow = sched.start(FlowSpec{.work = 400.0, .max_rate = 40.0}.over(nic));
  EXPECT_NEAR(flow->current_rate(), 40.0, 1e-12);
  flow->suspend();
  EXPECT_TRUE(flow->suspended());
  EXPECT_NEAR(flow->current_rate(), 0.0, 1e-12);
  flow->suspend();  // idempotent
  flow->resume();
  EXPECT_FALSE(flow->suspended());
  EXPECT_NEAR(flow->current_rate(), 40.0, 1e-12);
  flow->resume();  // idempotent
  EXPECT_NEAR(flow->max_rate(), 40.0, 1e-12);
  sim.run();
  EXPECT_TRUE(flow->finished());
  EXPECT_NEAR(sim.now().to_seconds(), 10.0, 1e-6);
}

TEST(Fluid, SetMaxRateWhileSuspendedAppliesOnResume) {
  // A cap set during suspension must neither un-suspend the flow nor be
  // clobbered by the pre-suspend cap on resume().
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 100.0);
  auto flow = sched.start(FlowSpec{.work = 400.0, .max_rate = 40.0}.over(nic));
  EXPECT_NEAR(flow->current_rate(), 40.0, 1e-12);
  flow->suspend();
  flow->set_max_rate(10.0);
  EXPECT_TRUE(flow->suspended());  // still paused
  EXPECT_NEAR(flow->current_rate(), 0.0, 1e-12);
  flow->resume();
  EXPECT_FALSE(flow->suspended());
  EXPECT_NEAR(flow->max_rate(), 10.0, 1e-12);  // the new cap, not the stale one
  EXPECT_NEAR(flow->current_rate(), 10.0, 1e-12);
  sim.run();
  EXPECT_TRUE(flow->finished());
  EXPECT_NEAR(sim.now().to_seconds(), 40.0, 1e-6);
}

TEST(Fluid, ComponentsTrackConnectivity) {
  // Disjoint resources host independent components; a bridging flow merges
  // them; completions dissolve emptied components.
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource a("a", 10.0);
  FluidResource b("b", 10.0);
  EXPECT_EQ(sched.component_count(), 0u);
  auto fa = sched.start(FlowSpec{.work = 10.0}.over(a));
  auto fb = sched.start(FlowSpec{.work = 20.0}.over(b));
  EXPECT_EQ(sched.component_count(), 2u);
  auto fab = sched.start(FlowSpec{.work = 5.0}.over(a).over(b));
  EXPECT_EQ(sched.component_count(), 1u);
  sim.run();
  EXPECT_TRUE(fa->finished() && fb->finished() && fab->finished());
  EXPECT_EQ(sched.component_count(), 0u);
  // Fresh flows after dissolution get fresh components.
  auto fa2 = sched.start(FlowSpec{.work = 10.0}.over(a));
  auto fb2 = sched.start(FlowSpec{.work = 10.0}.over(b));
  EXPECT_EQ(sched.component_count(), 2u);
  sim.run();
  EXPECT_TRUE(fa2->finished() && fb2->finished());
}

TEST(Fluid, ManySequentialFlowsKeepClockExact) {
  // Chained transfers must not accumulate drift: 1000 x 1-second flows.
  Simulation sim;
  FluidScheduler sched(sim);
  FluidResource nic("nic", 10.0);
  double done_at = -1;
  sim.spawn([](Simulation& s, FluidScheduler& sc, FluidResource& r, double& t) -> Task {
    for (int i = 0; i < 1000; ++i) {
      co_await sc.run(FlowSpec{.work = 10.0}.over(r));
    }
    t = s.now().to_seconds();
  }(sim, sched, nic, done_at));
  sim.run();
  EXPECT_NEAR(done_at, 1000.0, 1e-3);
}

}  // namespace
}  // namespace nm::sim
