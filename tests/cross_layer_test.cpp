// Cross-layer behaviours that no single module owns:
//   - guest compute re-targets the destination host's cores after a
//     migration (contention follows the VM);
//   - a live (non-Ninja) migration of a busy guest converges through
//     multiple pre-copy rounds and the guest keeps computing throughout;
//   - the virtio vhost thread serializes a VM's aggregate TCP throughput
//     while distinct VMs scale independently;
//   - back-to-back Ninja episodes reuse every mechanism cleanly.
#include <gtest/gtest.h>

#include <memory>

#include "core/job.h"
#include "core/testbed.h"
#include "guestos/drivers.h"
#include "guestos/guest_os.h"
#include "workloads/bcast_reduce.h"

namespace nm::core {
namespace {

vmm::VmSpec vm_spec(const std::string& name, Bytes mem = Bytes::gib(4)) {
  vmm::VmSpec spec;
  spec.name = name;
  spec.memory = mem;
  spec.base_os_footprint = Bytes::mib(512);
  return spec;
}

TEST(CrossLayer, ComputeContendsOnDestinationAfterMigration) {
  // A VM computing in 0.1-core-second chunks migrates to a host already
  // saturated by 8 compute-bound jobs: its throughput halves after the
  // move because chunks now run on the contended destination cores.
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), vm_spec("mover"), false);
  tb.settle();
  // Saturate eth0 with 8 native jobs (one per core) for a long time.
  for (int i = 0; i < 8; ++i) {
    tb.sim().spawn([](Testbed& t) -> sim::Task {
      co_await t.eth_host(0).node().compute(10'000.0);
    }(tb));
  }
  double before_rate = 0;
  double after_rate = 0;
  bool migrated = false;
  tb.sim().spawn([](Testbed& t, vmm::Vm& v, double& before, double& after,
                    bool& moved) -> sim::Task {
    // 100 chunks on the idle source host.
    TimePoint t0 = t.sim().now();
    for (int i = 0; i < 100; ++i) {
      co_await v.compute(0.1);
    }
    before = 10.0 / (t.sim().now() - t0).to_seconds();
    co_await t.ib_host(0).migrate(v, t.eth_host(0));
    moved = true;
    t0 = t.sim().now();
    for (int i = 0; i < 100; ++i) {
      co_await v.compute(0.1);
    }
    after = 10.0 / (t.sim().now() - t0).to_seconds();
  }(tb, *vm, before_rate, after_rate, migrated));
  tb.sim().run_for(Duration::minutes(10));
  ASSERT_TRUE(migrated);
  EXPECT_NEAR(before_rate, 1.0, 0.05);  // full core on the idle source
  EXPECT_NEAR(after_rate, 8.0 / 9.0, 0.05);  // fair share among 9 jobs
}

TEST(CrossLayer, LiveMigrationOfBusyGuestConvergesInRounds) {
  // Unlike Ninja (ranks parked), a plain live migration races the guest's
  // dirty rate: moderate dirtying costs extra rounds but still converges
  // to a sub-max_downtime stop-and-copy.
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), vm_spec("busy", Bytes::gib(4)), false);
  vm->memory().write_data(Bytes::zero(), Bytes::gib(2));
  tb.settle();
  bool stop = false;
  int chunks_done = 0;
  tb.sim().spawn([](Testbed&, vmm::Vm& v, bool& stop_flag, int& done) -> sim::Task {
    while (!stop_flag) {
      co_await v.compute(0.8);
      // Rewrites 64 MiB per 0.8 s: ~80 MiB/s dirty rate, comfortably
      // below the ~160 MiB/s drain rate -> geometric convergence.
      v.memory().write_data(Bytes::zero(), Bytes::mib(64));
      ++done;
    }
  }(tb, *vm, stop, chunks_done));
  vmm::MigrationStats stats;
  tb.sim().spawn([](Testbed& t, vmm::Vm& v, vmm::MigrationStats& st, bool& stop_flag)
                     -> sim::Task {
    co_await t.sim().delay(Duration::seconds(1.0));
    co_await t.ib_host(0).migrate(v, t.eth_host(1), &st);
    stop_flag = true;
  }(tb, *vm, stats, stop));
  tb.sim().run();
  EXPECT_GT(stats.rounds, 1);
  EXPECT_LT(stats.rounds, 30);  // converged, not round-capped
  EXPECT_LE(stats.downtime, Duration::millis(100));
  EXPECT_TRUE(tb.eth_host(1).resident(*vm));
  EXPECT_GT(chunks_done, 10);  // the guest kept computing during pre-copy
}

TEST(CrossLayer, VhostSerializesOneVmButNotTwo) {
  // Two concurrent streams from ONE VM share its vhost thread; the same
  // two streams from TWO VMs on the same host run at full stream rate.
  Testbed tb;
  auto one = tb.boot_vm(tb.eth_host(0), vm_spec("one"), false);
  auto left = tb.boot_vm(tb.eth_host(1), vm_spec("left"), false);
  auto right = tb.boot_vm(tb.eth_host(1), vm_spec("right"), false);
  auto sink_a = tb.boot_vm(tb.eth_host(2), vm_spec("sink-a"), false);
  auto sink_b = tb.boot_vm(tb.eth_host(3), vm_spec("sink-b"), false);
  guest::GuestOs os_one(one);
  guest::GuestOs os_left(left);
  guest::GuestOs os_right(right);
  guest::GuestOs os_a(sink_a);
  guest::GuestOs os_b(sink_b);
  guest::VirtioNetDriver d_one(os_one);
  guest::VirtioNetDriver d_left(os_left);
  guest::VirtioNetDriver d_right(os_right);
  guest::VirtioNetDriver d_a(os_a);
  guest::VirtioNetDriver d_b(os_b);
  tb.settle();

  auto timed_pair = [&](guest::VirtioNetDriver& s1, guest::VirtioNetDriver& s2) {
    const double t0 = tb.sim().now().to_seconds();
    double done = 0;
    auto sender = [](sim::Simulation& sim, guest::VirtioNetDriver& src,
                     net::FabricAddress dst, double& out) -> sim::Task {
      co_await src.send(dst, Bytes::gib(1));
      out = std::max(out, sim.now().to_seconds());
    };
    tb.sim().spawn(sender(tb.sim(), s1, d_a.address(), done));
    tb.sim().spawn(sender(tb.sim(), s2, d_b.address(), done));
    tb.sim().run();
    return done - t0;
  };

  const double one_vm = timed_pair(d_one, d_one);
  const double two_vms = timed_pair(d_left, d_right);
  // One VM: 2 streams through an 8 Gb/s vhost -> ~2.15 s for 2 GiB.
  // Two VMs: each stream at its 4.2 Gb/s cap -> ~2.05 s... distinguish by
  // per-stream rate instead: with one VM the pair is vhost-bound (8 Gb/s
  // aggregate), with two VMs it is stream-bound (4.2 Gb/s each).
  const double vhost_bound = 2.0 * 1073741824.0 / (8e9 / 8.0);
  const double stream_bound = 1073741824.0 / (4.2e9 / 8.0);
  EXPECT_NEAR(one_vm, vhost_bound, 0.2);
  EXPECT_NEAR(two_vms, stream_bound, 0.2);
  EXPECT_GT(one_vm, two_vms * 1.04);
}

TEST(CrossLayer, RepeatedEpisodesStayConsistent) {
  // Four consecutive episodes (fallback/recovery alternating): transports
  // flip every time, VM placement is exact, queues stay clean.
  Testbed tb;
  JobConfig cfg;
  cfg.vm_count = 2;
  cfg.ranks_per_vm = 2;
  cfg.vm_template.memory = Bytes::gib(4);
  cfg.vm_template.base_os_footprint = Bytes::mib(512);
  MpiJob job(tb, cfg);
  job.init();
  workloads::BcastReduceConfig wcfg;
  wcfg.per_node_bytes = Bytes::mib(256);
  wcfg.iterations = 60;
  auto bench = std::make_shared<workloads::BcastReduceBench>(job, wcfg);
  job.launch([bench](mpi::RankId me) -> sim::Task { co_await bench->run_rank(me); });

  std::vector<std::string> transports;
  tb.sim().spawn([](MpiJob& j, std::shared_ptr<workloads::BcastReduceBench> b,
                    std::vector<std::string>& out) -> sim::Task {
    for (int episode = 0; episode < 4; ++episode) {
      co_await b->wait_step(5 + episode * 10);
      if (episode % 2 == 0) {
        co_await j.fallback_migration(2);
      } else {
        co_await j.recovery_migration(2);
      }
      out.push_back(j.current_transport());
    }
  }(job, bench, transports));
  tb.sim().run();

  ASSERT_EQ(transports.size(), 4u);
  EXPECT_EQ(transports[0], "tcp");
  EXPECT_EQ(transports[1], "openib");
  EXPECT_EQ(transports[2], "tcp");
  EXPECT_EQ(transports[3], "openib");
  EXPECT_EQ(bench->completed_steps(), 60);
  EXPECT_EQ(job.runtime().unexpected_count(), 0u);
  EXPECT_TRUE(tb.ib_host(0).resident(*job.vms()[0]));
}

}  // namespace
}  // namespace nm::core
