#include "util/interval_map.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace nm {
namespace {

TEST(IntervalMap, InitiallyOneRun) {
  IntervalMap<int> m(100, 7);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.run_count(), 1u);
  EXPECT_EQ(m.at(0), 7);
  EXPECT_EQ(m.at(99), 7);
  EXPECT_TRUE(m.invariants_hold());
}

TEST(IntervalMap, AssignMiddleSplitsRuns) {
  IntervalMap<int> m(100, 0);
  m.assign(10, 20, 1);
  EXPECT_EQ(m.at(9), 0);
  EXPECT_EQ(m.at(10), 1);
  EXPECT_EQ(m.at(19), 1);
  EXPECT_EQ(m.at(20), 0);
  EXPECT_EQ(m.run_count(), 3u);
  EXPECT_TRUE(m.invariants_hold());
}

TEST(IntervalMap, AssignSameValueCoalesces) {
  IntervalMap<int> m(100, 0);
  m.assign(10, 20, 1);
  m.assign(20, 30, 1);
  EXPECT_EQ(m.run_count(), 3u);  // [0,10)=0, [10,30)=1, [30,100)=0
  m.assign(10, 30, 0);
  EXPECT_EQ(m.run_count(), 1u);
  EXPECT_TRUE(m.invariants_hold());
}

TEST(IntervalMap, AssignAtBoundaries) {
  IntervalMap<int> m(100, 0);
  m.assign(0, 50, 1);
  m.assign(50, 100, 2);
  EXPECT_EQ(m.at(0), 1);
  EXPECT_EQ(m.at(49), 1);
  EXPECT_EQ(m.at(50), 2);
  EXPECT_EQ(m.at(99), 2);
  EXPECT_EQ(m.run_count(), 2u);
  m.assign(0, 100, 3);
  EXPECT_EQ(m.run_count(), 1u);
  EXPECT_TRUE(m.invariants_hold());
}

TEST(IntervalMap, EmptyRangeIsNoOp) {
  IntervalMap<int> m(100, 0);
  m.assign(50, 50, 9);
  EXPECT_EQ(m.run_count(), 1u);
  EXPECT_EQ(m.at(50), 0);
}

TEST(IntervalMap, OverwriteSpanningMultipleRuns) {
  IntervalMap<int> m(100, 0);
  m.assign(10, 20, 1);
  m.assign(30, 40, 2);
  m.assign(50, 60, 3);
  m.assign(15, 55, 9);
  EXPECT_EQ(m.at(14), 1);
  EXPECT_EQ(m.at(15), 9);
  EXPECT_EQ(m.at(54), 9);
  EXPECT_EQ(m.at(55), 3);
  EXPECT_TRUE(m.invariants_hold());
}

TEST(IntervalMap, MeasureWhere) {
  IntervalMap<int> m(100, 0);
  m.assign(10, 20, 1);
  m.assign(40, 45, 1);
  EXPECT_EQ(m.measure_where(0, 100, [](int v) { return v == 1; }), 15u);
  EXPECT_EQ(m.measure_where(15, 42, [](int v) { return v == 1; }), 7u);  // [15,20)+[40,42)
  EXPECT_EQ(m.measure_where(0, 100, [](int v) { return v == 2; }), 0u);
}

TEST(IntervalMap, ForEachInClipsToRange) {
  IntervalMap<char> m(10, 'a');
  m.assign(3, 7, 'b');
  std::vector<IntervalMap<char>::Segment> seen;
  m.for_each_in(2, 8, [&](auto lo, auto hi, char v) {
    seen.push_back({lo, hi, v});
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (IntervalMap<char>::Segment{2, 3, 'a'}));
  EXPECT_EQ(seen[1], (IntervalMap<char>::Segment{3, 7, 'b'}));
  EXPECT_EQ(seen[2], (IntervalMap<char>::Segment{7, 8, 'a'}));
}

TEST(IntervalMap, TransformAppliesToOverlap) {
  IntervalMap<int> m(20, 1);
  m.assign(5, 10, 2);
  m.transform(3, 12, [](const int& v) { return v * 10; });
  EXPECT_EQ(m.at(2), 1);
  EXPECT_EQ(m.at(3), 10);
  EXPECT_EQ(m.at(5), 20);
  EXPECT_EQ(m.at(11), 10);
  EXPECT_EQ(m.at(12), 1);
  EXPECT_TRUE(m.invariants_hold());
}

TEST(IntervalMap, OutOfRangeThrows) {
  IntervalMap<int> m(10, 0);
  EXPECT_THROW((void)m.at(10), LogicError);
  EXPECT_THROW(m.assign(5, 11, 1), LogicError);
  EXPECT_THROW(m.assign(7, 6, 1), LogicError);
}

// Property test: random assigns against a naive per-key reference model.
class IntervalMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalMapProperty, MatchesNaiveModelUnderRandomAssigns) {
  constexpr std::uint64_t kSize = 257;  // prime, to avoid aligned patterns
  IntervalMap<int> m(kSize, 0);
  std::vector<int> model(kSize, 0);
  Rng rng(GetParam());

  for (int step = 0; step < 500; ++step) {
    const auto a = rng.next_below(kSize + 1);
    const auto b = rng.next_below(kSize + 1);
    const auto lo = std::min(a, b);
    const auto hi = std::max(a, b);
    const int value = static_cast<int>(rng.next_below(4));
    m.assign(lo, hi, value);
    for (auto k = lo; k < hi; ++k) {
      model[k] = value;
    }
    ASSERT_TRUE(m.invariants_hold()) << "step " << step;
  }
  for (std::uint64_t k = 0; k < kSize; ++k) {
    ASSERT_EQ(m.at(k), model[k]) << "key " << k;
  }
  // Cross-check measure_where against the model.
  for (int v = 0; v < 4; ++v) {
    std::uint64_t expected = 0;
    for (auto x : model) {
      expected += (x == v) ? 1 : 0;
    }
    EXPECT_EQ(m.measure_where(0, kSize, [v](int x) { return x == v; }), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalMapProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(IntervalSet, BasicSetOperations) {
  IntervalSet s(100);
  EXPECT_TRUE(s.empty());
  s.insert(10, 20);
  s.insert(30, 40);
  EXPECT_EQ(s.count(), 20u);
  EXPECT_TRUE(s.contains(15));
  EXPECT_FALSE(s.contains(25));
  s.erase(15, 35);
  EXPECT_EQ(s.count(), 10u);  // [10,15) + [35,40)
  const auto rs = s.ranges();
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0], (IntervalSet::Range{10, 15}));
  EXPECT_EQ(rs[1], (IntervalSet::Range{35, 40}));
}

TEST(IntervalSet, PopFrontChunksInOrder) {
  IntervalSet s(100);
  s.insert(5, 25);
  s.insert(50, 53);
  auto r1 = s.pop_front(10);
  EXPECT_EQ(r1, (IntervalSet::Range{5, 15}));
  auto r2 = s.pop_front(10);
  EXPECT_EQ(r2, (IntervalSet::Range{15, 25}));
  auto r3 = s.pop_front(10);
  EXPECT_EQ(r3, (IntervalSet::Range{50, 53}));
  auto r4 = s.pop_front(10);
  EXPECT_EQ(r4.lo, r4.hi);  // empty
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, ClearEmptiesEverything) {
  IntervalSet s(64);
  s.insert(0, 64);
  EXPECT_EQ(s.count(), 64u);
  s.clear();
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace nm
