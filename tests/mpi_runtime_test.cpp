// Tests for the nMPI runtime: p2p matching, transport (BTL) selection by
// exclusivity, invalidation across hotplug, and performance ordering of
// the transports.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/job.h"
#include "core/testbed.h"
#include "mpi/runtime.h"

namespace nm::mpi {
namespace {

using core::JobConfig;
using core::MpiJob;
using core::Testbed;

JobConfig small_job(int vms, std::size_t ranks_per_vm, bool ib) {
  JobConfig cfg;
  cfg.vm_count = vms;
  cfg.ranks_per_vm = ranks_per_vm;
  cfg.on_ib_cluster = ib;
  cfg.with_hca = ib;
  cfg.vm_template.memory = Bytes::gib(4);
  cfg.vm_template.base_os_footprint = Bytes::mib(512);
  return cfg;
}

TEST(MpiRuntime, SendRecvWithTagsAndTokens) {
  Testbed tb;
  MpiJob job(tb, small_job(2, 1, true));
  job.init();
  std::vector<MessageInfo> got(3);
  job.launch([&](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      co_await rt.send(0, 1, /*tag=*/7, Bytes::kib(1), /*token=*/111);
      co_await rt.send(0, 1, /*tag=*/9, Bytes::kib(2), /*token=*/222);
      co_await rt.send(0, 1, /*tag=*/7, Bytes::kib(3), /*token=*/333);
    } else {
      co_await rt.recv(1, 0, 9, &got[0]);                    // tag 9 first
      co_await rt.recv(1, kAnySource, 7, &got[1]);           // then first tag-7
      co_await rt.recv(1, kAnySource, kAnyTag, &got[2]);     // then the rest
    }
  });
  tb.sim().run();
  EXPECT_EQ(got[0].token, 222u);
  EXPECT_EQ(got[1].token, 111u);
  EXPECT_EQ(got[2].token, 333u);
  EXPECT_EQ(got[2].bytes, Bytes::kib(3));
  EXPECT_EQ(job.runtime().unexpected_count(), 0u);
  EXPECT_EQ(job.runtime().in_flight(), 0u);
}

TEST(MpiRuntime, RecvBlocksUntilSend) {
  Testbed tb;
  MpiJob job(tb, small_job(2, 1, true));
  job.init();
  double recv_done = -1;
  const double t0 = tb.sim().now().to_seconds();
  job.launch([&](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      co_await tb.sim().delay(Duration::seconds(5.0));
      co_await rt.send(0, 1, 1, Bytes(64));
    } else {
      co_await rt.recv(1, 0, 1);
      recv_done = tb.sim().now().to_seconds();
    }
  });
  tb.sim().run();
  EXPECT_GT(recv_done, t0 + 5.0);
}

TEST(MpiRuntime, TransportSelectionByExclusivity) {
  Testbed tb;
  MpiJob job(tb, small_job(2, 2, true));  // 2 VMs x 2 ranks
  job.init();
  // Intra-VM: sm wins; inter-VM with HCA: openib beats tcp.
  EXPECT_EQ(job.runtime().rank(0).transport_to(1), "sm");
  EXPECT_EQ(job.runtime().rank(0).transport_to(2), "openib");
  EXPECT_EQ(job.current_transport(), "openib");
  auto names = job.runtime().rank(0).btl_names();
  EXPECT_EQ(names.size(), 3u);  // sm + tcp + openib
}

TEST(MpiRuntime, EthClusterJobUsesTcp) {
  Testbed tb;
  MpiJob job(tb, small_job(2, 1, false));
  job.init();
  EXPECT_EQ(job.current_transport(), "tcp");
  auto names = job.runtime().rank(0).btl_names();
  EXPECT_EQ(names.size(), 2u);  // sm + tcp (openib disqualified itself)
}

TEST(MpiRuntime, IbFasterThanTcpForSamePayload) {
  double ib_time = 0;
  double tcp_time = 0;
  for (const bool ib : {true, false}) {
    Testbed tb;
    MpiJob job(tb, small_job(2, 1, ib));
    job.init();
    const double t0 = tb.sim().now().to_seconds();
    double done = -1;
    job.launch([&job, &tb, &done](RankId me) -> sim::Task {
      auto& rt = job.runtime();
      if (me == 0) {
        co_await rt.send(0, 1, 1, Bytes::gib(1));
      } else {
        co_await rt.recv(1, 0, 1);
        done = tb.sim().now().to_seconds();
      }
    });
    tb.sim().run();
    (ib ? ib_time : tcp_time) = done - t0;
  }
  EXPECT_LT(ib_time * 3, tcp_time);  // QDR vs CPU-bound virtio TCP
}

TEST(MpiRuntime, SmTransferIsLocalAndFast) {
  Testbed tb;
  MpiJob job(tb, small_job(1, 2, true));
  job.init();
  double done = -1;
  const double t0 = tb.sim().now().to_seconds();
  job.launch([&job, &tb, &done](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    if (me == 0) {
      co_await rt.send(0, 1, 1, Bytes::mib(256));
    } else {
      co_await rt.recv(1, 0, 1);
      done = tb.sim().now().to_seconds();
    }
  });
  tb.sim().run();
  // 256 MiB at ~3 GiB/s plus scheduling noise.
  EXPECT_LT(done - t0, 0.5);
}

TEST(MpiRuntime, HcaDetachInvalidatesOpenIbModule) {
  Testbed tb;
  MpiJob job(tb, small_job(2, 1, true));
  job.init();
  EXPECT_FALSE(job.runtime().rank(0).has_invalid_btl());
  // Hot-remove rank 0's HCA behind MPI's back.
  tb.sim().spawn([](Testbed& t, MpiJob& j) -> sim::Task {
    co_await t.ib_host(0).device_del(*j.vms()[0], "vf0");
  }(tb, job));
  tb.sim().run();
  EXPECT_TRUE(job.runtime().rank(0).has_invalid_btl());
  // Selection now falls back to tcp even before reconstruction.
  EXPECT_EQ(job.runtime().rank(0).transport_to(1), "tcp");
  // Reconstruction drops the dead module.
  job.runtime().rank(0).build_btls();
  EXPECT_FALSE(job.runtime().rank(0).has_invalid_btl());
  EXPECT_EQ(job.runtime().rank(0).btl_names().size(), 2u);
}

TEST(MpiRuntime, StaleLidFailsWithoutModexRefresh) {
  // Peer re-attaches its HCA (new LID). A sender still holding the old
  // modex snapshot must fail — this is why BTL reconstruction re-runs the
  // modex.
  Testbed tb;
  MpiJob job(tb, small_job(2, 1, true));
  job.init();
  tb.sim().spawn([](Testbed& t, MpiJob& j) -> sim::Task {
    co_await t.ib_host(1).device_del(*j.vms()[1], "vf0");
    co_await t.ib_host(1).device_add(*j.vms()[1], Testbed::kHcaPciAddr, "vf0");
  }(tb, job));
  tb.sim().run_for(Duration::seconds(60.0));  // re-train

  bool failed = false;
  job.launch([&job, &failed](RankId me) -> sim::Task {
    if (me == 0) {
      try {
        co_await job.runtime().send(0, 1, 1, Bytes::mib(1));
      } catch (const OperationError&) {
        failed = true;
      }
    } else {
      co_await job.runtime().progress(1);
    }
  });
  tb.sim().run();
  EXPECT_TRUE(failed);

  // After reconstruction + modex, traffic flows again.
  job.runtime().rank(0).build_btls();
  job.runtime().rank(1).build_btls();
  job.runtime().run_modex();
  bool ok = false;
  tb.sim().spawn([](MpiJob& j, bool& k) -> sim::Task {
    co_await j.runtime().send(0, 1, 2, Bytes::mib(1));
    k = true;
  }(job, ok));
  tb.sim().spawn([](MpiJob& j) -> sim::Task { co_await j.runtime().recv(1, 0, 2); }(job));
  tb.sim().run();
  EXPECT_TRUE(ok);
}

TEST(MpiRuntime, ApiMisuseChecks) {
  Testbed tb;
  MpiJob job(tb, small_job(2, 1, true));
  EXPECT_THROW(job.launch([](RankId) -> sim::Task { co_return; }), LogicError);
  job.init();
  EXPECT_THROW((void)job.runtime().rank(99), LogicError);
}

// Parameterized: p2p works for every (cluster, payload) combination.
struct P2pCase {
  bool ib;
  std::uint64_t kib;
};
class MpiP2pMatrix : public ::testing::TestWithParam<P2pCase> {};

TEST_P(MpiP2pMatrix, RoundTripCompletes) {
  const auto param = GetParam();
  Testbed tb;
  MpiJob job(tb, small_job(2, 1, param.ib));
  job.init();
  MessageInfo echo;
  job.launch([&job, &echo, param](RankId me) -> sim::Task {
    auto& rt = job.runtime();
    const Bytes payload = Bytes::kib(param.kib);
    if (me == 0) {
      co_await rt.send(0, 1, 5, payload, 42);
      co_await rt.recv(0, 1, 6, &echo);
    } else {
      MessageInfo in;
      co_await rt.recv(1, 0, 5, &in);
      co_await rt.send(1, 0, 6, in.bytes, in.token + 1);
    }
  });
  tb.sim().run();
  EXPECT_EQ(echo.token, 43u);
  EXPECT_EQ(echo.bytes, Bytes::kib(param.kib));
}

INSTANTIATE_TEST_SUITE_P(Payloads, MpiP2pMatrix,
                         ::testing::Values(P2pCase{true, 1}, P2pCase{true, 1024},
                                           P2pCase{true, 262144}, P2pCase{false, 1},
                                           P2pCase{false, 1024}, P2pCase{false, 262144}));

}  // namespace
}  // namespace nm::mpi
