// Tests for hotplug timing (Table II components) and the pre-copy
// migration engine: preconditions, dup-page compression, convergence with
// a dirtying guest, downtime, and host re-homing.
#include <gtest/gtest.h>

#include "core/testbed.h"
#include "vmm/host.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"
#include "vmm/vm.h"

namespace nm::vmm {
namespace {

using core::Testbed;
using core::TestbedConfig;

VmSpec small_vm(const std::string& name, Bytes memory = Bytes::gib(1)) {
  VmSpec spec;
  spec.name = name;
  spec.memory = memory;
  spec.base_os_footprint = Bytes::zero();  // tests control content exactly
  return spec;
}

TEST(Hotplug, AttachTimingMatchesCalibration) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0"), false);
  double done_at = -1;
  tb.sim().spawn([](sim::Simulation& s, vmm::Host& h, Vm& v, double& t) -> sim::Task {
    co_await h.device_add(v, Testbed::kHcaPciAddr, "vf0");
    t = s.now().to_seconds();
  }(tb.sim(), tb.ib_host(0), *vm, done_at));
  tb.sim().run();
  EXPECT_NEAR(done_at, 1.02, 1e-9);  // attach_ib
  EXPECT_TRUE(vm->has_vmm_bypass_device());
}

TEST(Hotplug, DetachTimingMatchesCalibration) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0"), true);
  tb.settle();
  const double t0 = tb.sim().now().to_seconds();
  double done_at = -1;
  tb.sim().spawn([](sim::Simulation& s, vmm::Host& h, Vm& v, double& t) -> sim::Task {
    co_await h.device_del(v, "vf0");
    t = s.now().to_seconds();
  }(tb.sim(), tb.ib_host(0), *vm, done_at));
  tb.sim().run();
  EXPECT_NEAR(done_at - t0, 2.67, 1e-9);  // detach_ib
  EXPECT_FALSE(vm->has_vmm_bypass_device());
  EXPECT_TRUE(tb.ib_host(0).hca_available(Testbed::kHcaPciAddr));
}

TEST(Hotplug, NoiseFactorScalesLatency) {
  TestbedConfig cfg;
  cfg.hotplug.noise_factor = 3.0;
  Testbed tb(cfg);
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0"), false);
  double done_at = -1;
  tb.sim().spawn([](sim::Simulation& s, vmm::Host& h, Vm& v, double& t) -> sim::Task {
    co_await h.device_add(v, Testbed::kHcaPciAddr, "vf0");
    t = s.now().to_seconds();
  }(tb.sim(), tb.ib_host(0), *vm, done_at));
  tb.sim().run();
  EXPECT_NEAR(done_at, 3.06, 1e-9);  // 1.02 * 3
}

TEST(Hotplug, AddFailsWhenHcaBusy) {
  Testbed tb;
  auto vm1 = tb.boot_vm(tb.ib_host(0), small_vm("vm1"), true);
  auto vm2 = tb.boot_vm(tb.ib_host(0), small_vm("vm2"), false);
  tb.settle();
  bool failed = false;
  tb.sim().spawn([](vmm::Host& h, Vm& v, bool& f) -> sim::Task {
    try {
      co_await h.device_add(v, Testbed::kHcaPciAddr, "vf0");
    } catch (const OperationError&) {
      f = true;
    }
  }(tb.ib_host(0), *vm2, failed));
  tb.sim().run();
  EXPECT_TRUE(failed);
}

TEST(Migration, RefusesWithBypassDevice) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0"), true);
  tb.settle();
  bool failed = false;
  std::string msg;
  tb.sim().spawn([](Testbed& t, Vm& v, bool& f, std::string& m) -> sim::Task {
    try {
      co_await t.ib_host(0).migrate(v, t.ib_host(1));
    } catch (const OperationError& e) {
      f = true;
      m = e.what();
    }
  }(tb, *vm, failed, msg));
  tb.sim().run();
  EXPECT_TRUE(failed);
  EXPECT_NE(msg.find("VMM-bypass"), std::string::npos);
}

TEST(Migration, RefusesNonResidentButAllowsSelf) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0"), false);
  bool nonres_failed = false;
  MigrationStats self_stats;
  tb.sim().spawn([](Testbed& t, Vm& v, bool& b, MigrationStats& st) -> sim::Task {
    try {
      co_await t.ib_host(3).migrate(v, t.ib_host(4));
    } catch (const OperationError&) {
      b = true;
    }
    // Self-migration (Table II micro-benchmark) is legal: loopback copy.
    co_await t.ib_host(0).migrate(v, t.ib_host(0), &st);
  }(tb, *vm, nonres_failed, self_stats));
  tb.sim().run();
  EXPECT_TRUE(nonres_failed);
  EXPECT_TRUE(tb.ib_host(0).resident(*vm));
  EXPECT_GE(self_stats.rounds, 1);
}

TEST(Migration, IdleVmMovesAndResumesOnDestination) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(2)), false);
  tb.settle();
  MigrationStats stats;
  tb.sim().spawn([](Testbed& t, Vm& v, MigrationStats& st) -> sim::Task {
    co_await t.ib_host(0).migrate(v, t.eth_host(0), &st);
  }(tb, *vm, stats));
  tb.sim().run();
  EXPECT_TRUE(tb.eth_host(0).resident(*vm));
  EXPECT_FALSE(tb.ib_host(0).resident(*vm));
  EXPECT_EQ(&vm->host(), &tb.eth_host(0));
  EXPECT_TRUE(vm->running());
  EXPECT_GE(stats.rounds, 1);
  // 2 GiB of zero pages: wire bytes are tiny, scan dominates.
  EXPECT_LT(stats.wire_bytes.count(), Bytes::mib(8).count());
  EXPECT_EQ(stats.scanned, Bytes::gib(2));
}

TEST(Migration, VirtioIpSurvivesMigration) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(1)), false);
  tb.settle();
  auto* virtio = vm->find_device_by_kind("virtio-net");
  ASSERT_NE(virtio, nullptr);
  const auto ip = virtio->attachment()->address();
  tb.sim().spawn([](Testbed& t, Vm& v) -> sim::Task {
    co_await t.ib_host(0).migrate(v, t.eth_host(2));
  }(tb, *vm));
  tb.sim().run();
  EXPECT_EQ(virtio->attachment()->address(), ip);
  EXPECT_EQ(&virtio->attachment()->port(), &tb.eth_host(2).eth_uplink());
  EXPECT_EQ(virtio->attachment()->state(), net::LinkState::kActive);
}

TEST(Migration, CompressionShrinksUniformPayload) {
  // Same footprint, uniform vs data content: wire bytes differ by ~450x.
  Testbed tb;
  auto uni = tb.boot_vm(tb.ib_host(0), small_vm("uni", Bytes::gib(1)), false);
  auto dat = tb.boot_vm(tb.ib_host(1), small_vm("dat", Bytes::gib(1)), false);
  uni->memory().write_uniform(Bytes::zero(), Bytes::gib(1), 0x55);
  dat->memory().write_data(Bytes::zero(), Bytes::gib(1));
  tb.settle();
  MigrationStats s_uni;
  MigrationStats s_dat;
  tb.sim().spawn([](Testbed& t, Vm& a, Vm& b, MigrationStats& sa,
                    MigrationStats& sb) -> sim::Task {
    co_await t.ib_host(0).migrate(a, t.eth_host(0), &sa);
    co_await t.ib_host(1).migrate(b, t.eth_host(1), &sb);
  }(tb, *uni, *dat, s_uni, s_dat));
  tb.sim().run();
  EXPECT_LT(s_uni.wire_bytes.count() * 100, s_dat.wire_bytes.count());
  EXPECT_LT(s_uni.total, s_dat.total);
  // Data VM: wire ~ 1 GiB * (4104/4096) at 1.3 Gb/s -> ~6.6 s + scan.
  const double wire_time = 1073741824.0 * (4104.0 / 4096.0) / (1.3e9 / 8.0);
  const double scan_time = 1073741824.0 / (700.0 * 1024 * 1024);
  EXPECT_NEAR(s_dat.total.to_seconds(), wire_time + scan_time + 0.2, 0.5);
}

TEST(Migration, DisablingCompressionShipsFullPages) {
  TestbedConfig cfg;
  cfg.migration.compress_dup_pages = false;
  Testbed tb(cfg);
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(1)), false);
  tb.settle();
  MigrationStats stats;
  tb.sim().spawn([](Testbed& t, Vm& v, MigrationStats& st) -> sim::Task {
    co_await t.ib_host(0).migrate(v, t.eth_host(0), &st);
  }(tb, *vm, stats));
  tb.sim().run();
  // All zero pages, but uncompressed: full 1 GiB (+headers) on the wire.
  EXPECT_GT(stats.wire_bytes.count(), Bytes::gib(1).count());
  EXPECT_TRUE(stats.dup_pages_saved.is_zero());
}

TEST(Migration, DirtyingGuestForcesExtraRounds) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(2)), false);
  vm->memory().write_data(Bytes::zero(), Bytes::gib(1));
  tb.settle();
  // Guest keeps rewriting 256 MiB of data while migrating.
  bool stop = false;
  tb.sim().spawn([](Testbed&, Vm& v, bool& stop_flag) -> sim::Task {
    while (!stop_flag) {
      co_await v.compute(0.05);
      v.memory().write_data(Bytes::zero(), Bytes::mib(256));
    }
  }(tb, *vm, stop));
  MigrationStats stats;
  tb.sim().spawn([](Testbed& t, Vm& v, MigrationStats& st, bool& stop_flag) -> sim::Task {
    co_await t.ib_host(0).migrate(v, t.eth_host(0), &st);
    stop_flag = true;
  }(tb, *vm, stats, stop));
  tb.sim().run();
  EXPECT_GT(stats.rounds, 1);
  // Retransmissions: more scanned than the memory size.
  EXPECT_GT(stats.scanned.count(), vm->memory().size().count());
  EXPECT_TRUE(tb.eth_host(0).resident(*vm));
}

TEST(Migration, PausedGuestConvergesInOneRoundWithTinyDowntime) {
  // The Ninja case: ranks are parked in symvirt_wait, nothing dirties
  // memory, so pre-copy converges immediately.
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(2)), false);
  vm->memory().write_data(Bytes::zero(), Bytes::mib(512));
  tb.settle();
  MigrationStats stats;
  tb.sim().spawn([](Testbed& t, Vm& v, MigrationStats& st) -> sim::Task {
    co_await t.ib_host(0).migrate(v, t.eth_host(0), &st);
  }(tb, *vm, stats));
  tb.sim().run();
  EXPECT_EQ(stats.rounds, 1);
  EXPECT_LT(stats.downtime, Duration::millis(50));
}

TEST(Migration, RdmaAblationIsFasterThanTcp) {
  // §V: RDMA-based migration removes the CPU bottleneck.
  MigrationStats tcp_stats;
  MigrationStats rdma_stats;
  for (const bool rdma : {false, true}) {
    TestbedConfig cfg;
    cfg.migration.use_rdma = rdma;
    Testbed tb(cfg);
    auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(2)), false);
    vm->memory().write_data(Bytes::zero(), Bytes::gib(2));
    tb.settle();
    auto& stats = rdma ? rdma_stats : tcp_stats;
    tb.sim().spawn([](Testbed& t, Vm& v, MigrationStats& st) -> sim::Task {
      co_await t.ib_host(0).migrate(v, t.eth_host(0), &st);
    }(tb, *vm, stats));
    tb.sim().run();
  }
  EXPECT_LT(rdma_stats.total, tcp_stats.total);
  EXPECT_GT(tcp_stats.total.to_seconds() / rdma_stats.total.to_seconds(), 2.0);
}

TEST(Migration, SlowUplinkDowntimeStaysBounded) {
  // Regression for the uplink-blind stop-and-copy estimate: the migration
  // thread can push 1.3 Gb/s, but this host's uplink carries only
  // 0.5 Gb/s. The old estimator (min(max_bandwidth, thread_send_rate))
  // believed the blackout would run at thread speed, entered stop-and-copy
  // with ~2.6x more dirty data than max_downtime allows at wire speed, and
  // realized ~50 ms of downtime against a 30 ms cap. Clamped by the line
  // rate, the loop pre-copies one more round instead.
  TestbedConfig cfg;
  cfg.eth.line_rate = Bandwidth::gbps(0.5);
  Testbed tb(cfg);
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(2)), false);
  vm->memory().write_data(Bytes::zero(), Bytes::gib(1));
  tb.settle();
  // One mid-round write of 3 MiB: big enough that draining it at line rate
  // (~50 ms) busts the 30 ms cap, small enough that the old estimator
  // (3 MiB / 162.5 MB/s ~ 19 ms) called it converged.
  tb.sim().spawn([](Testbed& t, Vm& v) -> sim::Task {
    co_await t.sim().delay(Duration::seconds(2.0));  // round 1 is under way
    v.memory().write_data(Bytes::zero(), Bytes::mib(3));
  }(tb, *vm));
  MigrationStats stats;
  tb.sim().spawn([](Testbed& t, Vm& v, MigrationStats& st) -> sim::Task {
    co_await t.ib_host(0).migrate(v, t.eth_host(0), &st);
  }(tb, *vm, stats));
  tb.sim().run();

  // The fixed estimator spends one extra pre-copy round (± one round is
  // the contract) and the realized blackout honors the cap.
  EXPECT_EQ(stats.rounds, 2);
  EXPECT_LE(stats.downtime, tb.ib_host(0).migration_engine().config().max_downtime);
  EXPECT_TRUE(tb.eth_host(0).resident(*vm));
  EXPECT_FALSE(stats.in_progress);
}

TEST(Migration, LiveStatsStayFreshDuringStopAndCopyBlackout) {
  // An `info migrate`-style reader polls the stats mid-flight. Before the
  // fix, the caller's stats snapshot was last refreshed before the
  // stop-and-copy drain: during the whole blackout the reader saw
  // in_progress=true with frozen wire counters and no way to tell the VM
  // was paused. Now every drained chunk republishes, and pause_at marks
  // the blackout start.
  TestbedConfig cfg;
  cfg.migration.max_rounds = 1;             // force a fat stop-and-copy
  cfg.migration.chunk_pages = 4096;         // 16 MiB chunks -> many updates
  Testbed tb(cfg);
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(1)), false);
  vm->memory().write_data(Bytes::zero(), Bytes::mib(256));
  tb.settle();
  // Dirty 512 MiB while round 1 transfers: with the round cap at 1, all of
  // it drains inside the blackout.
  tb.sim().spawn([](Testbed& t, Vm& v) -> sim::Task {
    co_await t.sim().delay(Duration::millis(700));
    v.memory().write_data(Bytes::zero(), Bytes::mib(512));
  }(tb, *vm));

  struct Sample {
    MigrationStats stats;
  };
  std::vector<Sample> samples;
  bool stop = false;
  MigrationStats live;
  tb.sim().spawn([](Testbed& t, MigrationStats& l, std::vector<Sample>& out,
                    bool& stop_flag) -> sim::Task {
    while (!stop_flag) {
      out.push_back(Sample{l});
      co_await t.sim().delay(Duration::millis(100));
    }
  }(tb, live, samples, stop));
  tb.sim().spawn([](Testbed& t, Vm& v, MigrationStats& l, bool& stop_flag) -> sim::Task {
    co_await t.ib_host(0).migrate(v, t.eth_host(0), &l);
    stop_flag = true;
  }(tb, *vm, live, stop));
  tb.sim().run();

  // Collect the samples taken inside the blackout window.
  std::vector<const MigrationStats*> blackout;
  for (const auto& s : samples) {
    if (s.stats.in_progress && s.stats.pause_at != TimePoint::origin()) {
      blackout.push_back(&s.stats);
    }
  }
  ASSERT_GE(blackout.size(), 3u);  // the drain spans seconds; reader polls at 10 Hz
  // pause_at is stable across the window and wire progress is visible.
  for (const auto* s : blackout) {
    EXPECT_EQ(s->pause_at, blackout.front()->pause_at);
  }
  EXPECT_GT(blackout.back()->wire_bytes.count(), blackout.front()->wire_bytes.count());
  // The final report agrees with what the reader last saw.
  EXPECT_FALSE(live.in_progress);
  EXPECT_EQ(live.pause_at, blackout.front()->pause_at);
  EXPECT_GT(live.downtime, Duration::seconds(1.0));  // 512 MiB at thread speed
}

TEST(Monitor, CommandsDriveTheVm) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(1)), false);
  tb.settle();
  Monitor mon(vm, [&](const std::string& n) { return tb.find_host(n); });

  std::vector<MonitorResult> results(6);
  tb.sim().spawn([](Testbed&, Monitor& m, std::vector<MonitorResult>& r) -> sim::Task {
    co_await m.execute("info status", r[0]);
    co_await m.execute("stop", r[1]);
    co_await m.execute("info status", r[2]);
    co_await m.execute("cont", r[3]);
    co_await m.execute("device_add host=04:00.0,id=vf0", r[4]);
    co_await m.execute("device_del vf0", r[5]);
  }(tb, mon, results));
  tb.sim().run();
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].message, "VM status: running");
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(results[2].message, "VM status: paused");
  EXPECT_TRUE(results[3].ok);
  EXPECT_TRUE(results[4].ok);
  EXPECT_TRUE(results[5].ok);
  EXPECT_FALSE(vm->has_vmm_bypass_device());
}

TEST(Monitor, MigrateCommandAndErrors) {
  Testbed tb;
  auto vm = tb.boot_vm(tb.ib_host(0), small_vm("vm0", Bytes::gib(1)), false);
  tb.settle();
  Monitor mon(vm, [&](const std::string& n) { return tb.find_host(n); });
  std::vector<MonitorResult> results(4);
  tb.sim().spawn([](Testbed&, Monitor& m, std::vector<MonitorResult>& r) -> sim::Task {
    co_await m.execute("migrate nosuchhost", r[0]);
    co_await m.execute("bogus_command", r[1]);
    co_await m.execute("migrate eth3", r[2]);
    co_await m.execute("info migrate", r[3]);
  }(tb, mon, results));
  tb.sim().run();
  EXPECT_FALSE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_TRUE(results[2].ok);
  EXPECT_TRUE(results[3].ok);
  EXPECT_NE(results[3].message.find("rounds 1"), std::string::npos);
  EXPECT_TRUE(tb.eth_host(3).resident(*vm));
}

}  // namespace
}  // namespace nm::vmm
